package neat_test

import (
	"sync"
	"testing"
	"time"

	"neat"
	"neat/internal/netsim"
)

// toySystem is a minimal ISystem: a single counter server that loses
// availability when partitioned from its client — used to exercise the
// exported API surface end to end.
type toySystem struct {
	eng     *neat.Engine
	mu      sync.Mutex
	count   int
	started bool
}

func (s *toySystem) Name() string { return "toy" }

func (s *toySystem) Start() error {
	s.eng.Network().Register("server", func(p netsim.Packet) {
		s.mu.Lock()
		s.count++
		s.mu.Unlock()
	})
	s.started = true
	return nil
}

func (s *toySystem) Stop() error { return nil }

func (s *toySystem) Status() map[neat.NodeID]neat.NodeStatus {
	return map[neat.NodeID]neat.NodeStatus{
		"server": {Up: s.started, Role: "server"},
	}
}

func (s *toySystem) received() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func TestPublicAPIEndToEnd(t *testing.T) {
	for _, backend := range []neat.Backend{neat.SwitchBackend, neat.FirewallBackend} {
		eng := neat.NewEngine(neat.Options{Backend: backend})
		eng.AddNode("server", neat.RoleServer)
		eng.AddNode("client", neat.RoleClient)
		eng.Network().Register("client", func(netsim.Packet) {})
		sys := &toySystem{eng: eng}
		if err := eng.Deploy(sys); err != nil {
			t.Fatal(err)
		}

		send := func() { _ = eng.Network().Send("client", "server", "ping") }

		send()
		if sys.received() != 1 {
			t.Fatal("healthy delivery failed")
		}

		p, err := eng.Complete([]neat.NodeID{"server"}, []neat.NodeID{"client"})
		if err != nil {
			t.Fatal(err)
		}
		if p.Type != neat.CompletePartition {
			t.Fatalf("partition type = %v", p.Type)
		}
		send()
		if sys.received() != 1 {
			t.Fatal("partition did not block delivery")
		}
		if err := eng.Heal(p); err != nil {
			t.Fatal(err)
		}
		send()
		if sys.received() != 2 {
			t.Fatal("heal did not restore delivery")
		}

		// Crash / restart round trip.
		eng.Crash("server")
		send()
		eng.Restart("server")
		send()
		if sys.received() != 3 {
			t.Fatalf("received = %d, want 3 (crash suppressed one)", sys.received())
		}

		// Trace recorded the partition and heal.
		evs := eng.Trace().Events()
		if len(evs) < 4 {
			t.Fatalf("trace too short: %v", evs)
		}
		eng.Shutdown()
	}
}

func TestPublicRestHelper(t *testing.T) {
	cluster := []neat.NodeID{"a", "b", "c", "d"}
	rest := neat.Rest(cluster, []neat.NodeID{"b", "d"})
	if len(rest) != 2 || rest[0] != "a" || rest[1] != "c" {
		t.Fatalf("Rest = %v", rest)
	}
}

func TestPublicSimplexAndPartial(t *testing.T) {
	eng := neat.NewEngine(neat.Options{})
	defer eng.Shutdown()
	for _, id := range []neat.NodeID{"a", "b", "c"} {
		eng.AddNode(id, neat.RoleServer)
		eng.Network().Register(id, func(netsim.Packet) {})
	}
	if _, err := eng.Partial([]neat.NodeID{"a"}, []neat.NodeID{"b"}); err != nil {
		t.Fatal(err)
	}
	n := eng.Network()
	if n.Reachable("a", "b") || !n.Reachable("a", "c") || !n.Reachable("b", "c") {
		t.Fatal("partial partition semantics wrong through public API")
	}
	if err := eng.HealAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Simplex([]neat.NodeID{"a"}, []neat.NodeID{"b"}); err != nil {
		t.Fatal(err)
	}
	if !n.Reachable("a", "b") || n.Reachable("b", "a") {
		t.Fatal("simplex partition semantics wrong through public API")
	}
}

func TestWaitUntilThroughPublicAPI(t *testing.T) {
	eng := neat.NewEngine(neat.Options{})
	defer eng.Shutdown()
	//neat:allow realclock -- exercises WaitUntil against the real clock through the public API
	start := time.Now()
	if !eng.WaitUntil(time.Second, func() bool { return time.Since(start) > 5*time.Millisecond }) {
		t.Fatal("WaitUntil never satisfied")
	}
}
