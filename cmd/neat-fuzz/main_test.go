package main

import (
	"bytes"
	"testing"

	"neat/internal/campaign"
)

// fakeResult builds a Result whose Stats (and per-group recovery
// times) live in multi-key maps — the shapes where nondeterministic
// map iteration would leak straight into the rendered summary.
func fakeResult() *campaign.Result {
	return &campaign.Result{
		Seed:    42,
		Rounds:  5,
		Targets: []string{"alpha", "bravo", "charlie"},
		Stats: map[string]*campaign.TargetStats{
			"alpha": {
				Rounds: 5, Violations: 2, Unique: 1,
				ProbedRounds: 5, RecoveredRounds: 4, ProbeOps: 40, ProbeRetries: 3,
				MaxRecoveryNs: 1_500_000,
				RecoveryNs: map[string]int64{
					"g0": 1_500_000, "g1": 900_000, "g2": 400_000, "g3": 1_100_000,
				},
			},
			"bravo": {
				Rounds: 5, Violations: 0, Unique: 0,
				ProbedRounds: 5, RecoveredRounds: 5, ProbeOps: 35,
				MaxRecoveryNs: 700_000,
				RecoveryNs:    map[string]int64{"g0": 700_000, "g1": 650_000},
			},
			"charlie": {Rounds: 5, Violations: 1, Unique: 1, Errors: 1},
		},
		Findings: []campaign.Finding{
			{
				Violation: campaign.Violation{
					Target: "alpha", Invariant: "read-your-writes",
					Subject: "k1", Detail: "stale read after heal",
				},
				Round: 3, Count: 2,
				Schedule: campaign.Schedule{Seed: 7, Ops: 4},
			},
		},
		Errors: 1,
	}
}

// TestSummaryOutputStable renders the text summary repeatedly and
// requires byte-identical output: the tables walk res.Targets (a
// slice), never a map, so ordering cannot depend on the run.
func TestSummaryOutputStable(t *testing.T) {
	res := fakeResult()
	var first []byte
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		printSummary(&buf, res)
		if first == nil {
			first = buf.Bytes()
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("summary rendering differs between runs:\n--- first ---\n%s\n--- run %d ---\n%s",
				first, i, buf.Bytes())
		}
	}
}

// TestJSONReportStable does the same for the JSON artifact, whose
// recovery_ns objects are real maps — encoding/json must (and does)
// emit their keys sorted.
func TestJSONReportStable(t *testing.T) {
	res := fakeResult()
	var first []byte
	for i := 0; i < 50; i++ {
		b, err := res.Report().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
			continue
		}
		if !bytes.Equal(first, b) {
			t.Fatalf("JSON report differs between runs:\n--- first ---\n%s\n--- run %d ---\n%s", first, i, b)
		}
	}
}
