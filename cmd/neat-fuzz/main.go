// Command neat-fuzz is the paper's future-work feature grown into a
// campaign engine: automatically generated client workloads combined
// with randomly injected network partitions of all three types
// (complete, partial, simplex), node crashes, and timed heals — run as
// seeded, reproducible multi-fault schedules against every simulated
// system, not just the kvstore.
//
// Each round the engine generates a schedule from the round's seed,
// deploys a fresh instance of the target on its own fabric, drives the
// generated workload with faults injected and healed at their
// scheduled operation indices, then heals everything and checks the
// target's invariants (durability of acknowledged writes, no dirty
// values, mutual exclusion, at-most-once delivery, replica agreement,
// convergence — whichever the target defines).
//
// Under the flawed configurations the campaign reproduces the paper's
// findings within a handful of rounds: the consolidation data loss of
// the longest-log/latest-ts/lowest-id election modes, the
// request-routing window of quorum elections (Finding 4, Elasticsearch
// issue #9967), Ignite-style double locking, ActiveMQ/Kafka double
// dequeues, the Ceph silent-success divergence, and the data-plane
// failures that dominate the study's catalog — HDFS-1384/HDFS-577
// scheduling onto provably unreachable DataNodes, MooseFS #131/#132
// client-visible namespace inconsistency, MAPREDUCE-4819 double job
// completion, and DKron #379's misleading FAILED status. The safe
// configurations (raftkv, locksvc/sync, mqueue/safe, eventual/vector,
// dfs/safe, mapred/safe, jobsched/safe) are expected to report zero
// violations.
//
// Violations deduplicate by signature; each unique signature's failing
// schedule is greedily shrunk to a minimal reproducer, and the whole
// campaign is emitted as a JSON report for pipelines.
//
// Rounds run on a per-round simulated clock by default (see
// internal/clock): timing waits advance virtual time instead of
// sleeping, so campaigns run at CPU speed and identical seeds yield
// identical outcomes. Pass -realtime to fuzz against the wall clock.
//
// Schedules draw from the full fault vocabulary by default: the
// paper's three partition types, crashes, the link-level chaos faults
// (slow, loss, flaky, flap), and the gray-failure kinds — per-node
// clock skew with drift, GC-style process pauses that freeze a node
// and resume it stale, lying disks that lose or tear acknowledged
// writes (targets that declare DiskNodes), and crashes with a
// scheduled mid-round restart. Pass -faults to restrict the mix — the
// presets classic (partitions + crashes), chaos (link degradations
// only), and gray (skew, pause, disk, restart), or a comma-separated
// list of kind names.
//
// Every violation carries a witness trace: the minimal set of
// recorded client operations — timed invocation/response pairs with
// Ok/Failed/Ambiguous outcomes — that proves the breach (see
// internal/history). Pass -trace to additionally embed the first
// failing round's full operation history in the JSON report.
//
// After every round's heal the engine validates recovery: still-down
// victims are forced back up, and a deterministic probe workload is
// driven inside the -rto window (default 1s of round time). A target
// that never answers is reported as stuck-after-heal, a node or key
// that never answers while the rest do as degraded-after-heal, and an
// acknowledged write the probes prove authoritatively gone as
// data-loss-after-heal — the paper's "failures persist after the
// partition heals" turned into checked invariants. Pass -probe=false
// to skip the phase, -rto to change the window.
//
// Pass -mutate for coverage-guided search: every round emits a
// deterministic coverage signature (history shape, violation classes,
// log2-bucketed fabric packet counters, recovery verdict), schedules
// that reach novel signatures join a per-target corpus, and later
// rounds are mostly derived by seeded mutation of corpus entries —
// perturbed fault timings and magnitudes, swapped victims, one fault
// added or removed, two schedules spliced — instead of fresh random
// generation. Pass -corpus to persist the corpus as JSON between
// campaigns; the file is loaded if it exists and rewritten afterwards,
// so long-running fault searches resume where they left off. Equal
// seeds still yield byte-identical campaigns at any worker count.
// -cpuprofile and -memprofile write pprof profiles of the campaign.
//
// Usage:
//
//	neat-fuzz [-rounds N] [-seed S] [-target t1,t2|all] [-mode M]
//	          [-faults all|classic|chaos|gray|k1,k2] [-shrink]
//	          [-json path|-] [-workers W] [-list] [-list-safe]
//	          [-expect-none] [-realtime] [-trace] [-settle D]
//	          [-rto D] [-probe=false] [-mutate] [-corpus path]
//	          [-cpuprofile path] [-memprofile path]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"neat/internal/campaign"
	"neat/internal/report"
)

func main() {
	rounds := flag.Int("rounds", 10, "fuzzing rounds per target")
	seed := flag.Int64("seed", 1, "campaign seed (derives every schedule seed)")
	targetSpec := flag.String("target", "", "comma-separated targets, or 'all' (default: all)")
	modeName := flag.String("mode", "", "legacy kvstore election mode; shorthand for -target kvstore/<mode>")
	faultSpec := flag.String("faults", "all",
		"fault kinds to generate: all, classic, chaos, gray, or a comma-separated list (complete,partial,simplex,crash,slow,loss,flaky,flap,skew,pause,disk,restart)")
	shrink := flag.Bool("shrink", true, "shrink each unique failing schedule to a minimal reproducer")
	jsonPath := flag.String("json", "-", "write the JSON report to this file ('-' = stdout, '' = skip)")
	workers := flag.Int("workers", 0, "concurrent rounds (0 = auto)")
	list := flag.Bool("list", false, "list registered targets and exit")
	listSafe := flag.Bool("list-safe", false,
		"list the targets whose configurations are expected violation-free (the CI safe gate set) and exit")
	expectNone := flag.Bool("expect-none", false, "exit nonzero if any violation is found")
	realtime := flag.Bool("realtime", false,
		"run rounds on the real wall clock instead of the default per-round simulated clock (slower, but timing matches a live deployment)")
	trace := flag.Bool("trace", false,
		"embed each violation's full per-round operation history in the JSON report (witness traces are always included)")
	settle := flag.Duration("settle", campaign.DefaultSettle,
		"post-heal quiescence wait on the round's clock before the observation phase")
	rto := flag.Duration("rto", campaign.DefaultRTO,
		"recovery-time objective: how long, on the round's clock, the post-heal probe phase gives the target to come back")
	probe := flag.Bool("probe", true,
		"run the post-heal recovery-validation phase (probe workload inside the RTO window)")
	mutate := flag.Bool("mutate", false,
		"coverage-guided search: derive most schedules by seeded mutation of the coverage corpus instead of fresh random generation")
	corpusPath := flag.String("corpus", "",
		"coverage corpus JSON file: loaded if it exists, rewritten with this campaign's novel schedules afterwards")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile, taken after the campaign, to this file")
	flag.Parse()

	if *list {
		for _, name := range campaign.Names() {
			fmt.Println(name)
		}
		return
	}
	if *listSafe {
		for _, name := range campaign.SafeNames() {
			fmt.Println(name)
		}
		return
	}
	spec := *targetSpec
	if *modeName != "" {
		if spec != "" {
			fmt.Fprintln(os.Stderr, "neat-fuzz: -mode and -target are mutually exclusive")
			os.Exit(2)
		}
		spec = "kvstore/" + *modeName
	}
	targets, err := campaign.Select(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kinds, err := campaign.ParseFaultKinds(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	corpus := loadCorpus(*corpusPath)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(2)
		}
		defer f.Close()
	}

	res := campaign.Run(campaign.Config{
		Targets:     targets,
		Rounds:      *rounds,
		Seed:        *seed,
		Workers:     *workers,
		FaultKinds:  kinds,
		Shrink:      *shrink,
		VirtualTime: !*realtime,
		Settle:      *settle,
		RTO:         *rto,
		NoProbe:     !*probe,
		Trace:       *trace,
		Mutate:      *mutate,
		Corpus:      corpus,
		Log:         os.Stderr,
	})

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(2)
		}
	}
	if *corpusPath != "" {
		if err := saveCorpus(res.Corpus, *corpusPath); err != nil {
			fmt.Fprintln(os.Stderr, "corpus:", err)
			os.Exit(2)
		}
	}

	// With the JSON report on stdout, the human summary moves to
	// stderr so `neat-fuzz | jq .` receives a parseable stream.
	summaryTo := os.Stdout
	if *jsonPath == "-" {
		summaryTo = os.Stderr
	}
	printSummary(summaryTo, res)
	if *jsonPath != "" {
		if err := writeJSON(res.Report(), *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "json report:", err)
			os.Exit(2)
		}
	}
	// Round errors must fail the gate too: a campaign that could not
	// deploy its targets has verified nothing.
	if *expectNone && (res.TotalViolations() > 0 || res.Errors > 0) {
		os.Exit(1)
	}
}

func printSummary(w io.Writer, res *campaign.Result) {
	probed := false
	for _, st := range res.Stats {
		if st.ProbedRounds > 0 {
			probed = true
			break
		}
	}
	rows := make([][]string, 0, len(res.Targets))
	for _, name := range res.Targets {
		st := res.Stats[name]
		row := []string{
			name,
			fmt.Sprintf("%d", st.Rounds),
			fmt.Sprintf("%d", st.Violations),
			fmt.Sprintf("%d", st.Unique),
		}
		if probed {
			row = append(row,
				fmt.Sprintf("%d/%d", st.RecoveredRounds, st.ProbedRounds),
				maxRecovery(st))
		}
		rows = append(rows, row)
	}
	header := []string{"Target", "Rounds", "Violations", "Unique"}
	if probed {
		header = append(header, "Recovered", "MaxRTT")
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, report.Render(
		fmt.Sprintf("Campaign summary (seed=%d, %d rounds/target).", res.Seed, res.Rounds),
		header, rows))

	for _, f := range res.Findings {
		fmt.Fprintf(w, "\nVIOLATION %s  (x%d, first in round %d)\n", f.Signature(), f.Count, f.Round)
		fmt.Fprintf(w, "  %s\n", f.Detail)
		fmt.Fprintf(w, "  schedule: %s\n", f.Schedule)
		if f.Shrunk != nil {
			fmt.Fprintf(w, "  shrunk:   %s\n", f.Shrunk)
		}
		if len(f.Violation.Trace) > 0 {
			fmt.Fprintf(w, "  witness:\n")
			for _, op := range f.Violation.Trace {
				fmt.Fprintf(w, "    %s\n", op)
			}
		}
	}
	fmt.Fprintf(w, "\ntotal violations=%d unique=%d errors=%d\n",
		res.TotalViolations(), len(res.Findings), res.Errors)
	if res.Mutate && res.Corpus != nil {
		mutated, novel := 0, 0
		for _, st := range res.Stats {
			mutated += st.MutatedRounds
			novel += st.CorpusNew
		}
		fmt.Fprintf(w, "coverage: corpus=%d entries (+%d this run), mutated rounds=%d\n",
			res.Corpus.Len(), novel, mutated)
	}
}

// maxRecovery renders a target's slowest confirmed recovery (round
// time from probe start); "-" when no round confirmed one.
func maxRecovery(st *campaign.TargetStats) string {
	if st.RecoveredRounds == 0 {
		return "-"
	}
	return time.Duration(st.MaxRecoveryNs).Round(time.Millisecond).String()
}

// loadCorpus reads the corpus file when one is configured and exists;
// a missing file just starts the corpus empty (it is written at the
// end), but an unreadable or malformed one is fatal — silently fuzzing
// without the corpus the user asked for would waste the campaign.
func loadCorpus(path string) *campaign.Corpus {
	if path == "" {
		return nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(2)
	}
	defer f.Close()
	c, err := campaign.ReadCorpus(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return c
}

func saveCorpus(c *campaign.Corpus, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// One GC first so the profile reflects live objects, not whatever
	// garbage the campaign left behind.
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(c report.Campaign, path string) error {
	if path == "-" {
		return c.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
