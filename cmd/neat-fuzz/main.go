// Command neat-fuzz is the paper's future-work feature: automatically
// generated client workloads combined with randomly injected network
// partitions of all three types, hunting for consistency violations.
//
// The fuzzer targets the kvstore substrate. Each round it injects a
// random partition (complete, partial, or simplex, around a random
// node), drives concurrent single-writer-per-key client workloads on
// both sides, heals, lets the system converge, and then checks two
// invariants:
//
//   - durability: the surviving value of each key is one this key's
//     writer had acknowledged (catches lost acknowledged writes);
//   - no dirty values: no key ever reads back a value whose write was
//     reported failed and never acknowledged.
//
// Under the flawed election modes (longest-log, latest-ts, lowest-id)
// the fuzzer finds the paper's consolidation data-loss failures within
// a handful of rounds. Notably it also finds violations under the
// quorum mode: a simplex partition that drops acknowledgements but not
// requests makes a write that was reported failed survive and become
// readable — the request-routing failure class of Finding 4
// (Elasticsearch issue #9967). Quorum elections alone do not close
// that window.
//
// Usage:
//
//	neat-fuzz [-rounds N] [-mode quorum|longest-log|latest-ts|lowest-id] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"neat/internal/core"
	"neat/internal/election"
	"neat/internal/kvstore"
	"neat/internal/netsim"
)

var modes = map[string]election.Mode{
	"quorum":      election.ModeQuorum,
	"longest-log": election.ModeLongestLog,
	"latest-ts":   election.ModeLatestTS,
	"lowest-id":   election.ModeLowestID,
}

func main() {
	rounds := flag.Int("rounds", 10, "fuzzing rounds")
	modeName := flag.String("mode", "lowest-id", "election mode under test")
	seed := flag.Int64("seed", 1, "random seed")
	expectNone := flag.Bool("expect-none", false, "exit nonzero if any violation is found")
	flag.Parse()

	mode, ok := modes[*modeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeName)
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))
	totalViolations := 0
	for round := 0; round < *rounds; round++ {
		v := fuzzRound(rng, mode)
		totalViolations += v
		fmt.Printf("round %2d: %d violation(s)\n", round+1, v)
	}
	fmt.Printf("\nmode=%s rounds=%d violations=%d\n", *modeName, *rounds, totalViolations)
	if *expectNone && totalViolations > 0 {
		os.Exit(1)
	}
}

func fuzzRound(rng *rand.Rand, mode election.Mode) int {
	replicas := []netsim.NodeID{"s1", "s2", "s3"}
	eng := core.NewEngine(core.Options{})
	defer eng.Shutdown()
	for _, id := range replicas {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("c1", core.RoleClient)
	eng.AddNode("c2", core.RoleClient)
	cfg := kvstore.Config{
		Replicas:               replicas,
		ElectionMode:           mode,
		WriteConcern:           kvstore.WriteMajority,
		ApplyBeforeReplicate:   true,
		StepDownOnLostMajority: true,
		HeartbeatInterval:      10 * time.Millisecond,
		ElectionTimeout:        40 * time.Millisecond,
		LeaseMisses:            8,
		RPCTimeout:             30 * time.Millisecond,
	}
	sys := kvstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		fmt.Fprintln(os.Stderr, "deploy:", err)
		return 0
	}
	c1 := kvstore.NewClient(eng.Network(), "c1", replicas, 80*time.Millisecond)
	c2 := kvstore.NewClient(eng.Network(), "c2", replicas, 80*time.Millisecond)
	defer c1.Close()
	defer c2.Close()

	// Random partition around a random victim node.
	victim := replicas[rng.Intn(len(replicas))]
	rest := core.Rest(append(replicas, "c1", "c2"), []netsim.NodeID{victim, "c1"})
	var err error
	switch rng.Intn(3) {
	case 0:
		_, err = eng.Complete([]netsim.NodeID{victim, "c1"}, rest)
	case 1:
		_, err = eng.Partial([]netsim.NodeID{victim}, []netsim.NodeID{replicas[(indexOf(replicas, victim)+1)%3]})
	default:
		_, err = eng.Simplex([]netsim.NodeID{victim}, rest)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "inject:", err)
		return 0
	}

	// Single-writer-per-key workloads on both sides.
	acked1 := drive(rng, c1, "k1", 8)
	acked2 := drive(rng, c2, "k2", 8)

	_ = eng.HealAll()
	time.Sleep(300 * time.Millisecond) // convergence

	violations := 0
	violations += check(eng, c2, "k1", acked1)
	violations += check(eng, c2, "k2", acked2)
	return violations
}

// drive issues writes and returns the set of acknowledged values, in
// order.
func drive(rng *rand.Rand, cl *kvstore.Client, key string, n int) []string {
	var acked []string
	for i := 0; i < n; i++ {
		val := fmt.Sprintf("%s-v%d-%d", key, i, rng.Intn(1000))
		if err := cl.Put(key, val); err == nil {
			acked = append(acked, val)
		}
		time.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
	}
	return acked
}

// check verifies the durability and no-dirty-value invariants.
func check(eng *core.Engine, cl *kvstore.Client, key string, acked []string) int {
	got, err := cl.Get(key)
	if err != nil {
		if len(acked) > 0 {
			fmt.Printf("  VIOLATION %s: all %d acknowledged writes lost (%v)\n", key, len(acked), err)
			return 1
		}
		return 0
	}
	for _, v := range acked {
		if v == got {
			return 0
		}
	}
	fmt.Printf("  VIOLATION %s: read %q, never acknowledged (dirty or resurrected)\n", key, got)
	return 1
}

func indexOf(ids []netsim.NodeID, id netsim.NodeID) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return 0
}
