// Command neat-lint is the determinism-contract gate: a multichecker
// over internal/lint's analyzers, run repo-wide in CI so the
// invariants every same-seed replay rests on are machine-checked
// instead of grep-and-vigilance checked.
//
// The suite (see internal/lint for each contract):
//
//	realclock     no wall-clock reads/waits outside internal/clock
//	unseededrand  randomness flows from the seeded schedule
//	mapiter       no map-iteration order leaking into output/findings
//	goaccount     goroutines accounted to the virtual clock's tokens
//	ambiguity     transport Call errors classified, never swallowed
//	lockorder     no cycles in the mutex acquisition-order graph
//	timerleak     clock timers/tickers reach Stop on every path
//	tokenbalance  busy-token acquires balanced by releases on every path
//	checkerpurity history checkers (and their callees) stay pure
//
// Intentional exceptions are `//neat:allow <analyzer> -- <reason>`
// (or //neat:allow-file) escape comments; every escape in force is
// printed in the audit summary so exceptions stay reviewed. Stale
// escapes (suppressing nothing) are reported when the full suite
// runs.
//
// Usage:
//
//	neat-lint [-run a,b,...] [-vet] [-list] [-q] [-json] [packages ...]
//
// Packages default to ./... . Exit status: 0 clean, 1 diagnostics
// found, 2 usage/load errors. With -vet, `go vet` runs over the same
// patterns and its findings fail the gate too — one consolidated
// lint invocation for CI. With -json, diagnostics and the escape
// audit are emitted as deterministic machine-readable JSON instead of
// text: same findings, byte-identical report.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"neat/internal/lint"
)

func main() {
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	vet := flag.Bool("vet", false, "also run `go vet` over the same packages and merge its verdict")
	list := flag.Bool("list", false, "list analyzers and exit")
	quiet := flag.Bool("q", false, "suppress the escape audit summary")
	asJSON := flag.Bool("json", false, "emit diagnostics and the escape audit as deterministic JSON")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	full := true
	if *runNames != "" {
		var ok bool
		analyzers, ok = lint.ByName(strings.Split(*runNames, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "neat-lint: unknown analyzer in -run=%s\n", *runNames)
			os.Exit(2)
		}
		full = len(analyzers) == len(lint.All())
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "neat-lint:", err)
		os.Exit(2)
	}
	if err := lint.FirstTypeError(pkgs); err != nil {
		fmt.Fprintf(os.Stderr, "neat-lint: packages do not type-check:\n%v\n", err)
		os.Exit(2)
	}

	diags, escapes, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "neat-lint:", err)
		os.Exit(2)
	}

	wd, _ := os.Getwd()
	if *asJSON {
		if err := lint.WriteJSON(os.Stdout, wd, diags, escapes); err != nil {
			fmt.Fprintln(os.Stderr, "neat-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(wd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		if !*quiet {
			printAudit(wd, escapes, full)
		}
	}

	failed := len(diags) > 0
	if *vet && !runVet(patterns) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// printAudit renders the escape audit: every //neat:allow in force,
// with its reason and how many diagnostics it suppressed. Stale
// escapes are only called out when the full suite ran — under -run a
// subset, an escape for an unselected analyzer is legitimately idle.
func printAudit(wd string, escapes []*lint.Escape, full bool) {
	if len(escapes) == 0 {
		fmt.Println("neat-lint: no escapes in force")
		return
	}
	used, stale := 0, 0
	for _, e := range escapes {
		if e.Used > 0 {
			used++
		} else {
			stale++
		}
	}
	fmt.Printf("neat-lint: %d escape(s) in force (%d active, %d idle):\n", len(escapes), used, stale)
	for _, e := range escapes {
		scope := ""
		if e.FileWide {
			scope = " [file]"
		}
		staleNote := ""
		if e.Used == 0 && full {
			staleNote = "  (suppresses nothing — consider removing)"
		}
		fmt.Printf("  %s:%d:%s %s x%d -- %s%s\n",
			relPath(wd, e.Pos.Filename), e.Pos.Line, scope,
			strings.Join(e.Analyzers, ","), e.Used, e.Reason, staleNote)
	}
}

// runVet shells out to `go vet`, streaming its output; vet findings
// fail the consolidated gate.
func runVet(patterns []string) bool {
	cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "neat-lint: go vet failed")
		return false
	}
	return true
}

func relPath(wd, path string) string {
	if wd == "" {
		return path
	}
	if r, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}
