// Command neat-run executes the NEAT fault-injection scenario suite —
// the live regeneration of Table 15 plus the figure case studies —
// against the simulated systems, and reports which failures
// reproduced.
//
// Usage:
//
//	neat-run [-system NAME] [-parallel N] [-study]
//
// -system filters scenarios by archetype system (e.g. "Ignite");
// -study includes the Appendix A case-study reproductions; -parallel
// bounds concurrent scenario executions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"neat/internal/report"
	"neat/internal/scenarios"
)

func main() {
	system := flag.String("system", "", "only run scenarios for this system")
	parallel := flag.Int("parallel", 8, "max concurrent scenarios")
	study := flag.Bool("study", true, "include studied-failure case studies beyond Table 15")
	flag.Parse()

	var scens []scenarios.Scenario
	if *study {
		scens = scenarios.All()
	} else {
		scens = scenarios.Table15Scenarios()
	}
	if *system != "" {
		var filtered []scenarios.Scenario
		for _, s := range scens {
			if strings.EqualFold(s.System, *system) {
				filtered = append(filtered, s)
			}
		}
		scens = filtered
	}
	if len(scens) == 0 {
		fmt.Fprintln(os.Stderr, "no scenarios match")
		os.Exit(2)
	}

	type outcome struct {
		s   scenarios.Scenario
		err error
		dur time.Duration
	}
	results := make([]outcome, len(scens))
	sem := make(chan struct{}, *parallel)
	var wg sync.WaitGroup
	//neat:allow realclock -- CLI wall-clock timing for the run report
	start := time.Now()
	for i, s := range scens {
		wg.Add(1)
		go func(i int, s scenarios.Scenario) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			//neat:allow realclock -- CLI wall-clock timing for the run report
			t0 := time.Now()
			err := s.Run()
			results[i] = outcome{s: s, err: err, dur: time.Since(t0)}
		}(i, s)
	}
	wg.Wait()

	var rows [][]string
	reproduced := 0
	for _, r := range results {
		status := "REPRODUCED"
		if r.err != nil {
			status = "no: " + r.err.Error()
		} else {
			reproduced++
		}
		fig := r.s.Figure
		if fig == "" {
			fig = "-"
		}
		rows = append(rows, []string{
			r.s.System, r.s.Ref, r.s.Impact.String(),
			r.s.Partition.String(), fig, r.dur.Round(time.Millisecond).String(), status,
		})
	}
	fmt.Println(report.Render(
		fmt.Sprintf("NEAT scenario suite (%d scenarios, %v total)", len(scens), time.Since(start).Round(time.Millisecond)),
		[]string{"System", "Reference", "Impact", "Partition", "Figure", "Time", "Status"},
		rows))
	fmt.Printf("reproduced %d of %d failures\n", reproduced, len(scens))
	if reproduced != len(scens) {
		os.Exit(1)
	}
}
