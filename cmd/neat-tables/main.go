// Command neat-tables regenerates every table of the study (Tables
// 1-13, the findings summary, and the two appendices) from the encoded
// failure dataset and prints them in the paper's layout.
//
// Usage:
//
//	neat-tables [-table N] [-appendix]
//
// Without flags every table is printed. -table selects one table by
// number; -appendix additionally prints Tables 14 and 15.
package main

import (
	"flag"
	"fmt"
	"os"

	"neat/internal/catalog"
	"neat/internal/report"
)

func main() {
	table := flag.Int("table", 0, "print only this table number (1-15)")
	appendix := flag.Bool("appendix", false, "also print the appendices (Tables 14 and 15)")
	flag.Parse()

	fs := catalog.Load()
	printers := map[int]func(){
		1: func() { fmt.Println(report.Table1(catalog.Table1(fs))) },
		2: func() {
			fmt.Println(report.Dist("Table 2. The impacts of the failures.", catalog.Table2(fs)))
			fmt.Printf("Catastrophic impact share: %.1f%%\n\n", catalog.CatastrophicShare(fs))
		},
		3: func() {
			fmt.Println(report.Dist("Table 3. Failures involving each system mechanism.", catalog.Table3(fs)))
			fmt.Println(report.Dist("Table 3 (cont). Configuration change breakdown.", catalog.Table3ConfigBreakdown(fs)))
		},
		4: func() { fmt.Println(report.Dist("Table 4. Leader election flaws.", catalog.Table4(fs))) },
		5: func() {
			fmt.Println(report.Dist("Table 5. Client access during the network partition.", catalog.Table5(fs)))
		},
		6: func() { fmt.Println(report.Dist("Table 6. Network-partitioning fault types.", catalog.Table6(fs))) },
		7: func() {
			fmt.Println(report.Dist("Table 7. Minimum number of events required to cause a failure.", catalog.Table7(fs)))
		},
		8: func() {
			fmt.Println(report.Dist("Table 8. Percentage of faults each event is involved in.", catalog.Table8(fs)))
		},
		9: func() { fmt.Println(report.Dist("Table 9. Ordering characteristics.", catalog.Table9(fs))) },
		10: func() {
			fmt.Println(report.Dist("Table 10. System connectivity during the network partition.", catalog.Table10(fs)))
		},
		11: func() { fmt.Println(report.Dist("Table 11. Timing constraints.", catalog.Table11(fs))) },
		12: func() { fmt.Println(report.Table12(catalog.Table12(fs))) },
		13: func() {
			fmt.Println(report.Dist("Table 13. Number of nodes needed to reproduce a failure.", catalog.Table13(fs)))
		},
		14: func() {
			fmt.Println(report.Appendix("Table 14. Summary of the studied failures.", catalog.Table14(fs), false))
		},
		15: func() {
			fmt.Println(report.Appendix("Table 15. Summary of the failures discovered by NEAT.", catalog.Table15(fs), true))
		},
	}

	if *table != 0 {
		p, ok := printers[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "no table %d (valid: 1-15)\n", *table)
			os.Exit(2)
		}
		p()
		return
	}
	for i := 1; i <= 13; i++ {
		printers[i]()
	}
	fmt.Println(report.Findings(catalog.ComputeFindings(fs)))
	if *appendix {
		printers[14]()
		printers[15]()
	}
}
