// Figure 2 of the paper: the VoltDB dirty read (issue ENG-10389).
//
// A complete partition isolates the master together with client1. The
// old master accepts a write, applies it locally, fails to replicate
// it — and reports the write failed. A subsequent read at the old
// master returns the never-committed value: a dirty read.
//
// Run with: go run ./examples/dirtyread
package main

import (
	"fmt"
	"log"
	"time"

	"neat/internal/core"
	"neat/internal/election"
	"neat/internal/kvstore"
	"neat/internal/netsim"
)

func main() {
	eng := core.NewEngine(core.Options{})
	defer eng.Shutdown()

	replicas := []netsim.NodeID{"s1", "s2", "s3"}
	for _, id := range replicas {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("client1", core.RoleClient)
	eng.AddNode("client2", core.RoleClient)

	cfg := kvstore.Config{
		Replicas:               replicas,
		ElectionMode:           election.ModeQuorum,
		WriteConcern:           kvstore.WriteMajority,
		ReadConcern:            kvstore.ReadLocal, // the flaw: local reads
		ApplyBeforeReplicate:   true,              // the flaw: apply before ack
		StepDownOnLostMajority: true,
		HeartbeatInterval:      10 * time.Millisecond,
		ElectionTimeout:        40 * time.Millisecond,
		LeaseMisses:            20,
		RPCTimeout:             30 * time.Millisecond,
	}
	sys := kvstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		log.Fatal(err)
	}
	c1 := kvstore.NewClient(eng.Network(), "client1", replicas, 100*time.Millisecond)
	defer c1.Close()

	fmt.Printf("initial master: %s\n", sys.Leader())
	fmt.Println("step 1: complete partition splits the master from the other replicas")
	if _, err := eng.Complete(
		[]netsim.NodeID{"s1", "client1"}, []netsim.NodeID{"s2", "s3", "client2"}); err != nil {
		log.Fatal(err)
	}
	if id := sys.WaitForLeaderAmong([]netsim.NodeID{"s2", "s3"}, 2*time.Second); id != "" {
		fmt.Printf("        majority side elected a new master: %s\n", id)
	}

	fmt.Println("step 2: the old master receives a write request")
	err := c1.PutAt("s1", "x", "dirty-value")
	fmt.Printf("        write result: %v\n", err)
	fmt.Println("        (the local copy was updated, but replication failed)")

	fmt.Println("step 3: the old master receives a read request for the same key")
	v, err := c1.GetAt("s1", "x")
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("        read returns %q — a value that was never successfully written.\n", v)
	fmt.Println("\nDIRTY READ reproduced. The fix: ReadConcern=ReadMajority makes the")
	fmt.Println("deposed master refuse the read instead (see kvstore tests).")
}
