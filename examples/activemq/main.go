// Figure 6 of the paper: the ActiveMQ system-wide hang NEAT discovered
// (AMQ-7064).
//
// Brokers coordinate mastership through a ZooKeeper-like service. A
// partial partition isolates the master from its slaves — but not from
// ZooKeeper. The master cannot replicate, so every client operation
// fails; the slaves never take over, because ZooKeeper still sees the
// master's session. The system is unavailable until the partition
// heals.
//
// Run with: go run ./examples/activemq
package main

//neat:allow-file realclock -- examples run on the real clock by design

import (
	"fmt"
	"log"
	"time"

	"neat/internal/coord"
	"neat/internal/core"
	"neat/internal/mqueue"
	"neat/internal/netsim"
)

func main() {
	eng := core.NewEngine(core.Options{})
	defer eng.Shutdown()

	cfg := mqueue.Config{
		Brokers:            []netsim.NodeID{"b1", "b2", "b3"},
		ZK:                 "zk",
		SessionPing:        10 * time.Millisecond,
		RolePoll:           10 * time.Millisecond,
		RequireReplicaAcks: true,
		RPCTimeout:         30 * time.Millisecond,
	}
	for _, id := range cfg.Brokers {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("zk", core.RoleService)
	eng.AddNode("client", core.RoleClient)

	sys := mqueue.NewSystem(eng.Network(), cfg,
		coord.Options{SessionTTL: 60 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	if err := eng.Deploy(sys); err != nil {
		log.Fatal(err)
	}
	cl := mqueue.NewClient(eng.Network(), "client", cfg.Brokers)
	defer cl.Close()

	if err := cl.Send("orders", "o-1"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy: sent a message through master %v\n", sys.Masters())

	fmt.Println("\ninjecting a partial partition: master b1 | slaves {b2, b3}")
	fmt.Println("(ZooKeeper and the client still reach every broker)")
	if _, err := eng.Partial([]netsim.NodeID{"b1"}, []netsim.NodeID{"b2", "b3"}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)

	fmt.Printf("\nmasters according to the brokers: %v (no failover — ZK still sees b1)\n", sys.Masters())
	err := cl.Send("orders", "o-2")
	fmt.Printf("client send: %v\n", err)
	fmt.Println("\nSYSTEM HANG reproduced: the master cannot replicate, the slaves")
	fmt.Println("cannot take over, and clients get nothing until the partition heals.")

	fmt.Println("\nhealing...")
	if err := eng.HealAll(); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cl.Send("orders", "o-3") == nil {
			fmt.Println("service restored after heal.")
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("service never recovered")
}
