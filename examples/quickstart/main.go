// Quickstart: deploy a three-replica key-value store on NEAT's
// simulated fabric, isolate the leader with a complete partition,
// watch the majority elect a new leader while the old one keeps
// serving stale data, then heal and verify convergence.
//
// Run with: go run ./examples/quickstart
package main

//neat:allow-file realclock -- examples run on the real clock by design

import (
	"fmt"
	"log"
	"time"

	"neat/internal/core"
	"neat/internal/election"
	"neat/internal/kvstore"
	"neat/internal/netsim"
)

func main() {
	eng := core.NewEngine(core.Options{})
	defer eng.Shutdown()

	replicas := []netsim.NodeID{"s1", "s2", "s3"}
	for _, id := range replicas {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("client1", core.RoleClient)
	eng.AddNode("client2", core.RoleClient)

	cfg := kvstore.Config{
		Replicas:               replicas,
		ElectionMode:           election.ModeQuorum,
		WriteConcern:           kvstore.WriteMajority,
		ApplyBeforeReplicate:   true,
		StepDownOnLostMajority: true,
		HeartbeatInterval:      10 * time.Millisecond,
		ElectionTimeout:        40 * time.Millisecond,
		LeaseMisses:            20,
		RPCTimeout:             30 * time.Millisecond,
	}
	sys := kvstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		log.Fatal(err)
	}
	c1 := kvstore.NewClient(eng.Network(), "client1", replicas, 100*time.Millisecond)
	c2 := kvstore.NewClient(eng.Network(), "client2", replicas, 100*time.Millisecond)
	defer c1.Close()
	defer c2.Close()

	fmt.Println("== healthy cluster ==")
	eng.Record(core.EvWrite, "client1 write greeting=hello")
	must(c1.Put("greeting", "hello"))
	v, _ := c2.Get("greeting")
	fmt.Printf("client2 reads greeting = %q (leader: %s)\n\n", v, sys.Leader())

	fmt.Println("== injecting a complete partition: {s1, client1} | {s2, s3, client2} ==")
	p, err := eng.Complete(
		[]netsim.NodeID{"s1", "client1"}, []netsim.NodeID{"s2", "s3", "client2"})
	must(err)

	newLeader := sys.WaitForLeaderAmong([]netsim.NodeID{"s2", "s3"}, 2*time.Second)
	fmt.Printf("majority elected a new leader: %s\n", newLeader)
	eng.Record(core.EvWrite, "client2 write greeting (majority side)")
	must(c2.Put("greeting", "hello from the majority"))

	eng.Record(core.EvRead, "client1 read greeting at deposed leader")
	stale, err := c1.GetAt("s1", "greeting")
	fmt.Printf("client1 still reads from the deposed leader: %q (err=%v)\n", stale, err)
	fmt.Printf("split brain? leaders = %v\n\n", sys.Leaders())

	fmt.Println("== healing ==")
	must(eng.Heal(p))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, err := c1.GetAt("s1", "greeting"); err == nil && v == "hello from the majority" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	v, _ = c1.GetAt("s1", "greeting")
	fmt.Printf("after heal, s1 converged to %q\n\n", v)

	fmt.Println("manifestation sequence recorded by the engine:")
	fmt.Print(eng.Trace())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
