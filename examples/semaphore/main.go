// Figure 5 of the paper: the Apache Ignite semaphore double locking
// NEAT discovered (IGNITE-9767).
//
// Each replica removes unreachable peers from its replica set. A
// complete partition therefore leaves two independent "clusters", each
// holding the full pre-partition semaphore state — and clients on both
// sides acquire the same single permit.
//
// Run with: go run ./examples/semaphore
package main

//neat:allow-file realclock -- examples run on the real clock by design

import (
	"fmt"
	"log"
	"time"

	"neat/internal/core"
	"neat/internal/locksvc"
	"neat/internal/netsim"
)

func main() {
	eng := core.NewEngine(core.Options{})
	defer eng.Shutdown()

	replicas := []netsim.NodeID{"r1", "r2", "r3"}
	for _, id := range replicas {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("client1", core.RoleClient)
	eng.AddNode("client2", core.RoleClient)

	cfg := locksvc.Config{
		Replicas:          replicas,
		HeartbeatInterval: 10 * time.Millisecond,
		MissesToSuspect:   3,
		LeaseTTL:          60 * time.Millisecond,
		RPCTimeout:        30 * time.Millisecond,
	}
	sys := locksvc.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		log.Fatal(err)
	}
	c1 := locksvc.NewClient(eng.Network(), "client1", replicas, cfg.LeaseTTL)
	c2 := locksvc.NewClient(eng.Network(), "client2", replicas, cfg.LeaseTTL)
	defer c1.Close()
	defer c2.Close()

	if err := c1.SemCreate("S", 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("created semaphore S with 1 permit, replicated to r1, r2, r3")

	fmt.Println("\nstep 1: complete partition isolates r3 (with client2)")
	if _, err := eng.Complete(
		[]netsim.NodeID{"r3", "client2"}, []netsim.NodeID{"r1", "r2", "client1"}); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && len(sys.Replica("r3").View()) != 1 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("        r1's view: %v\n", sys.Replica("r1").View())
	fmt.Printf("        r3's view: %v  <- r3 formed its own cluster\n", sys.Replica("r3").View())

	fmt.Println("\nstep 2: clients on both sides acquire the semaphore")
	err1 := c1.SemAcquire("S", 1)
	err2 := c2.SemAcquire("S", 1)
	fmt.Printf("        client1 acquire: %v\n", errString(err1))
	fmt.Printf("        client2 acquire: %v\n", errString(err2))
	if err1 == nil && err2 == nil {
		fmt.Println("\nDOUBLE LOCKING reproduced: one permit, two holders.")
	}

	fmt.Println("\nand the damage is lasting (Finding 3): after healing, the clusters stay split:")
	if err := eng.HealAll(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	fmt.Printf("        r1's view after heal: %v\n", sys.Replica("r1").View())
	fmt.Printf("        r3's view after heal: %v\n", sys.Replica("r3").View())
}

func errString(err error) string {
	if err == nil {
		return "granted"
	}
	return err.Error()
}
