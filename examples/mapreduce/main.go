// Figure 3 of the paper: the MapReduce double execution
// (MAPREDUCE-4819).
//
// The user submits a job; the ResourceManager starts an AppMaster on
// w1. A partial partition then isolates the AppMaster from the
// ResourceManager — while both still reach the other worker and the
// user. The ResourceManager declares the AppMaster dead and starts a
// second attempt on w2; the first attempt keeps running. The user
// receives every task result twice and two completion notifications,
// with no client interaction after the partition at all.
//
// Run with: go run ./examples/mapreduce
package main

//neat:allow-file realclock -- examples run on the real clock by design

import (
	"fmt"
	"log"
	"sort"
	"time"

	"neat/internal/core"
	"neat/internal/mapred"
	"neat/internal/netsim"
)

func main() {
	eng := core.NewEngine(core.Options{})
	defer eng.Shutdown()

	cfg := mapred.Config{
		RM:           "rm",
		Workers:      []netsim.NodeID{"w1", "w2"},
		AMHeartbeat:  10 * time.Millisecond,
		AMMisses:     3,
		TaskDuration: 20 * time.Millisecond,
		RPCTimeout:   30 * time.Millisecond,
	}
	eng.AddNode("rm", core.RoleServer)
	eng.AddNode("w1", core.RoleServer)
	eng.AddNode("w2", core.RoleServer)
	eng.AddNode("user", core.RoleClient)

	sys := mapred.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		log.Fatal(err)
	}
	user := mapred.NewClient(eng.Network(), "user", cfg)
	defer user.Close()

	fmt.Println("(a) the user submits a task; the RM starts an AppMaster on w1")
	if err := user.Submit("job1", 3); err != nil {
		log.Fatal(err)
	}

	fmt.Println("(b) partial partition: AppMaster w1 cut from the RM (both still reach w2 and the user)")
	if _, err := eng.Partial([]netsim.NodeID{"w1"}, []netsim.NodeID{"rm"}); err != nil {
		log.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && user.FinalNotifications("job1") < 2 {
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Printf("\nthe job finished %d times\n", user.FinalNotifications("job1"))
	fmt.Println("task results delivered to the user:")
	execs := user.TaskExecutions("job1")
	tasks := make([]int, 0, len(execs))
	for task := range execs {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	for _, task := range tasks {
		fmt.Printf("  task %d: %d result(s)\n", task, execs[task])
	}
	st, err := user.JobStatus("job1")
	if err == nil {
		fmt.Printf("RM's view: attempt %d on %s, completed=%v\n", st.Attempt, st.AMNode, st.Completed)
	}
	fmt.Println("\nDOUBLE EXECUTION reproduced: the user got the output twice (data")
	fmt.Println("corruption), triggered by the partition alone — no client access needed.")
}
