//go:build !race

package clock

// Settle-window tuning. Before each advance the advancer runs
// settlePasses independent windows of settleYields scheduler yields
// each; quiescence requires the activity counter to stay unchanged
// across every window. Yields are used instead of a timed nap because
// time.Sleep granularity is around a millisecond on common kernels —
// three orders of magnitude more than a yield — and each Gosched walks
// the run queue, giving every runnable goroutine a chance to execute
// (and bump the activity counter) before time moves. Larger values are
// more conservative (fewer spurious timeouts) but put a floor under
// how fast virtual time advances.
const (
	settleYields = 8
	settlePasses = 3
	settleNap    = 0
)
