//go:build race

package clock

// Race-detector builds run every memory access through tsan, slowing
// goroutines roughly an order of magnitude: work that fits inside a
// few scheduler yields in a normal build can still be mid-flight
// here, so race builds use a wider yield window. No timed nap: the
// busy-token protocol accounts for every structured handoff (queued
// requests, replies, tick and sleep wake-ups, spawned workers), and a
// nap's real cost — about a millisecond at common kernel timer
// resolution — would dominate -race wall time.
const (
	settleYields = 16
	settlePasses = 6
	settleNap    = 0
)
