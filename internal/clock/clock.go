// Package clock abstracts time for the simulated systems so that a
// whole fault-injection round can run against either the real wall
// clock or a deterministic virtual clock.
//
// Campaign rounds spend almost all of their wall-clock time inside
// timing waits — election timeouts, heartbeat tickers, workload pacing
// sleeps. None of that waiting does work: the systems are in-memory and
// every message is delivered in microseconds. The Sim clock removes the
// waiting entirely, in the style of FoundationDB-style simulation
// testing: timers live in a heap of virtual deadlines, and virtual time
// jumps straight to the next deadline whenever the process has
// quiesced, so a 250 ms election wait completes in microseconds of CPU
// time. See sim.go for the quiescence rule.
package clock

import "time"

// Clock is the time source every simulated component draws from. The
// method set mirrors package time so call sites translate one-to-one
// (time.Sleep -> clk.Sleep, time.NewTicker -> clk.NewTicker, ...).
type Clock interface {
	// Now returns the current (real or virtual) time.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time after d.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// AfterFunc runs fn after d. The returned timer's C() is nil, as
	// with time.AfterFunc. Real runs fn on its own goroutine; Sim runs
	// same-instant callbacks serially on its advancer, in creation
	// order, so fn must be short and must not itself block on the
	// clock: virtual time is frozen while a callback runs.
	AfterFunc(d time.Duration, fn func()) Timer
	// NewTicker returns a ticker with period d (which must be > 0).
	NewTicker(d time.Duration) Ticker
}

// Timer is a one-shot timer handle.
type Timer interface {
	// C is the delivery channel (nil for AfterFunc timers).
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// Ticker is a repeating timer handle.
type Ticker interface {
	// C is the delivery channel. Ticks are dropped, never queued, when
	// the receiver falls behind — time.Ticker semantics.
	C() <-chan time.Time
	// Stop cancels the ticker.
	Stop()
}

// Busy is implemented by clocks that track outstanding work. A virtual
// clock must not advance while a handed-off unit of work (a queued
// packet, an unconsumed RPC reply) is still pending; Acquire marks such
// a unit in flight and Release retires it. The Real clock does not
// implement Busy — use the package-level helpers, which no-op for it.
//
// Two token flavours exist. Transfer tokens (Acquire/Release) are
// unbound: one goroutine may acquire and another release, which is how
// a handed-off message stays accounted across the handoff. Scoped
// tokens (AcquireScoped/ReleaseScoped) bind to the calling goroutine
// and are surrendered automatically while that goroutine blocks inside
// one of the clock's own waits (Sleep, Idle), then restored on wake —
// so a request handler can hold a scoped token for its whole execution,
// keeping virtual time frozen while it computes, yet still block on a
// virtual timeout without deadlocking the clock.
type Busy interface {
	Acquire()
	Release()
	AcquireScoped()
	ReleaseScoped()
	BecomeScoped()
	Idle(fn func())
}

// Acquire marks a unit of work in flight on c, if c tracks work.
func Acquire(c Clock) {
	if b, ok := c.(Busy); ok {
		b.Acquire()
	}
}

// Release retires a unit of work on c, if c tracks work.
func Release(c Clock) {
	if b, ok := c.(Busy); ok {
		b.Release()
	}
}

// AcquireScoped marks the calling goroutine as doing work on c until
// ReleaseScoped, if c tracks work. The token is surrendered while the
// goroutine blocks in c's own waits.
func AcquireScoped(c Clock) {
	if b, ok := c.(Busy); ok {
		b.AcquireScoped()
	}
}

// ReleaseScoped retires one of the calling goroutine's scoped tokens.
func ReleaseScoped(c Clock) {
	if b, ok := c.(Busy); ok {
		b.ReleaseScoped()
	}
}

// BecomeScoped rebinds one previously Acquire'd transfer token to the
// calling goroutine as a scoped token (a dispatcher claiming a queued
// message it is about to process). The busy count is unchanged, so
// there is no instant at which the work is unaccounted.
func BecomeScoped(c Clock) {
	if b, ok := c.(Busy); ok {
		b.BecomeScoped()
	}
}

// Idle runs fn with the calling goroutine's scoped tokens surrendered,
// restoring them before returning. Wrap waits on anything the clock
// cannot see — a WaitGroup join of RPC fan-out goroutines, a select on
// a timer — so that virtual time can advance while fn blocks. For
// clocks without work tracking fn just runs.
func Idle(c Clock, fn func()) {
	if b, ok := c.(Busy); ok {
		b.Idle(fn)
		return
	}
	fn()
}

// Gid returns an opaque identity for the calling goroutine, for use
// with AcquireScopedAs: a receiver loop publishes its identity once,
// and message producers then bind in-flight-work tokens to it.
func Gid() uint64 { return gid() }

// AcquireScopedAs binds one busy token to goroutine g's scope (rather
// than the caller's): the token freezes virtual time like any scoped
// token, is surrendered while g blocks in a clock wait, and is retired
// when g calls ReleaseScoped. This is how the transport accounts
// queued requests: the sender binds a token to the receiving
// dispatcher, so queued work freezes time while the dispatcher can
// run, yet never deadlocks the clock when the dispatcher parks inside
// a handler waiting for a virtual timeout.
func AcquireScopedAs(c Clock, g uint64) {
	if s := simOf(c); s != nil {
		s.acquireScopedAs(g)
	}
}

// ReleaseScopedAs revokes one token bound to g's scope (the sender's
// undo when its enqueue fails).
func ReleaseScopedAs(c Clock, g uint64) {
	if s := simOf(c); s != nil {
		s.releaseScopedAs(g)
	}
}

// simOf unwraps c to the underlying *Sim, looking through NodeView,
// or nil when c is not simulated.
func simOf(c Clock) *Sim {
	switch cc := c.(type) {
	case *Sim:
		return cc
	case *NodeView:
		return cc.s
	}
	return nil
}

// Go runs fn on a new goroutine accounted as in-flight work on c from
// the instant of the spawn: the spawner acquires a transfer token
// before the goroutine exists, the goroutine rebinds it as its scoped
// token, and retires it on return. Use for every goroutine that does
// system work (RPC fan-out workers, background snapshot pulls) so a
// virtual clock never advances across the gap between a spawn and the
// goroutine's first observable action — the gap that would otherwise
// let freshly spawned work land nondeterministically before or after
// the next timer fires. For clocks without work tracking this is a
// plain go statement.
func Go(c Clock, fn func()) {
	b, ok := c.(Busy)
	if !ok {
		go fn()
		return
	}
	b.Acquire()
	go func() {
		b.BecomeScoped()
		defer b.ReleaseScoped()
		fn()
	}()
}

// Real is the wall clock: every method is a thin wrapper over package
// time. It is the zero-value default everywhere a Clock is optional.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, fn func()) Timer { return realTimer{time.AfterFunc(d, fn)} }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }

// TickLoop runs body once per tick of tk until stop closes — the
// standard service-loop shape (heartbeat senders, lease sweepers, role
// pollers) expressed through the clock so a virtual implementation can
// account for tick consumption precisely. On a Sim clock each
// delivered tick hands the consumer a busy token for the duration of
// body, so virtual time cannot advance between a tick firing and its
// handler completing (or parking in a clock wait of its own); ticks
// that fire while the consumer is busy are buffered or dropped exactly
// like time.Ticker's. The caller keeps ownership of tk and should
// still Stop it when the loop exits.
func TickLoop(c Clock, tk Ticker, stop <-chan struct{}, body func()) {
	if s := simOf(c); s != nil {
		s.tickLoop(tk, stop, body)
		return
	}
	for {
		select {
		case <-stop:
			return
		case <-tk.C():
			body()
		}
	}
}

// NewWakeTimer returns a one-shot timer whose fire hands the receiving
// goroutine a busy token (on clocks that track work): virtual time
// cannot run further ahead between the fire and the receiver resuming.
// The receiver MUST call Release(c) after receiving from C(); an
// unconsumed fire's token is reclaimed by Stop, which callers should
// always defer. The transport layer uses this for RPC timeouts so that
// a caller waking from a timeout observes virtual time at its
// deadline, not at whatever later instant the scheduler resumed it.
func NewWakeTimer(c Clock, d time.Duration) Timer {
	switch cc := c.(type) {
	case *Sim:
		return cc.newWakeTimer(d)
	case *NodeView:
		return cc.newWakeTimer(d)
	}
	return c.NewTimer(d)
}
