package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestNodeViewSkewMapping pins the view arithmetic: SetSkew jumps the
// view by the offset and scales its flow by the rate; ClearSkew keeps
// the accumulated offset but returns to true rate.
func TestNodeViewSkewMapping(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	v := NewNodeView(s)
	base := v.Now()
	if !base.Equal(s.Now()) {
		t.Fatalf("identity view reads %v, sim reads %v", base, s.Now())
	}
	v.SetSkew(10*time.Millisecond, 2.0)
	if got := v.Now().Sub(base); got != 10*time.Millisecond {
		t.Fatalf("offset jump moved the view by %v, want 10ms", got)
	}
	s.Sleep(20 * time.Millisecond)
	if got := v.Now().Sub(base); got != 50*time.Millisecond {
		t.Fatalf("after 20ms of inner time at rate 2 the view is +%v, want +50ms", got)
	}
	if got := v.Rate(); got != 2.0 {
		t.Fatalf("Rate() = %v, want 2", got)
	}
	v.ClearSkew()
	mark := v.Now()
	if mark.Sub(base) != 50*time.Millisecond {
		t.Fatalf("ClearSkew jumped the view to +%v, want the residual +50ms kept", mark.Sub(base))
	}
	s.Sleep(20 * time.Millisecond)
	if got := v.Now().Sub(mark); got != 20*time.Millisecond {
		t.Fatalf("cleared view advanced %v over 20ms of inner time, want 20ms", got)
	}
}

// TestNodeViewSkewRetimesTimers: a pending timer's remaining view time
// is rescaled when the skew changes — at rate 4, a deadline 40ms of
// view time away arrives after only 10ms of cluster time.
func TestNodeViewSkewRetimesTimers(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	v := NewNodeView(s)
	var fired atomic.Bool
	v.AfterFunc(40*time.Millisecond, func() { fired.Store(true) })
	v.SetSkew(0, 4.0)
	s.Sleep(11 * time.Millisecond)
	if !fired.Load() {
		t.Fatal("rate-4 skew did not pull the 40ms deadline into 10ms of inner time")
	}
}

// TestNodeViewSkewJumpExpiresTimers: a forward jump past a pending
// deadline fires it promptly — the lease sweep that expires early on a
// node whose clock leapt ahead.
func TestNodeViewSkewJumpExpiresTimers(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	v := NewNodeView(s)
	var fired atomic.Bool
	v.AfterFunc(20*time.Millisecond, func() { fired.Store(true) })
	v.SetSkew(30*time.Millisecond, 1)
	waitUntil(t, func() bool { return fired.Load() })
}

// TestNodeViewPauseFreezesTimers: a paused view's armed timers do not
// fire no matter how far the shared clock advances; Resume delivers the
// expired deadline immediately after.
func TestNodeViewPauseFreezesTimers(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	v := NewNodeView(s)
	var fired atomic.Bool
	v.AfterFunc(10*time.Millisecond, func() { fired.Store(true) })
	v.Pause()
	if !v.Paused() {
		t.Fatal("Paused() = false after Pause")
	}
	s.Sleep(50 * time.Millisecond)
	if fired.Load() {
		t.Fatal("timer fired while its view was paused")
	}
	v.Resume()
	if v.Paused() {
		t.Fatal("Paused() = true after Resume")
	}
	waitUntil(t, func() bool { return fired.Load() })
}

// TestNodeViewArmWhilePaused: timers created during the pause start
// suspended with the rest of the node, and re-arm on Resume.
func TestNodeViewArmWhilePaused(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	v := NewNodeView(s)
	v.Pause()
	tm := v.NewTimer(10 * time.Millisecond)
	s.Sleep(50 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("timer armed under a pause fired before Resume")
	default:
	}
	v.Resume()
	select {
	case <-tm.C():
	case <-time.After(10 * time.Second):
		t.Fatal("resumed timer never fired")
	}
}

// TestNodeViewStopDrainsSuspended: stopping the shared clock releases
// timers frozen behind a pause, so teardown cannot hang on a node that
// was never resumed.
func TestNodeViewStopDrainsSuspended(t *testing.T) {
	s := NewSim()
	v := NewNodeView(s)
	v.Pause()
	tm := v.NewTimer(time.Hour)
	s.Stop()
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("Stop left a suspended timer armed")
	}
}

// TestNodeViewNowAdvancesWhilePaused: a frozen process's clock keeps
// running — only its threads stop — so code checking freshness after
// the stall must see the lost time.
func TestNodeViewNowAdvancesWhilePaused(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	v := NewNodeView(s)
	v.Pause()
	before := v.Now()
	s.Sleep(30 * time.Millisecond)
	if got := v.Now().Sub(before); got != 30*time.Millisecond {
		t.Fatalf("paused view's Now moved %v over a 30ms inner advance, want 30ms", got)
	}
	v.Resume()
}
