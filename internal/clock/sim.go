package clock

import (
	"container/heap"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Sim is a deterministic virtual clock. Virtual time never flows on its
// own: it jumps from one timer deadline to the next, and only when the
// process has quiesced, so timed waits cost CPU time instead of wall
// time.
//
// # Quiescence rule
//
// A background advancer goroutine moves time forward when, and only
// when, both of these hold:
//
//  1. The busy count is zero. Busy counts tracked in-flight work:
//     transfer tokens (Acquire/Release) for handed-off messages such
//     as RPC replies, scoped tokens (AcquireScoped and friends) bound
//     to working goroutines — request handlers, tick handlers, fan-out
//     workers spawned through clock.Go, queued requests bound to their
//     dispatcher — and wake grants attached to firing sleeps, wake
//     timers, and AfterFunc callbacks. Scoped tokens are surrendered
//     while their goroutine parks inside a clock wait (Sleep, Idle)
//     and restored on resume, so a handler blocked on its own virtual
//     timeout never freezes the clock it is waiting on.
//  2. An activity counter — bumped by every clock interaction from any
//     goroutine — stays unchanged across a settle window of scheduler
//     yields. This catches the few stretches the tokens cannot see: a
//     goroutine between a channel wake-up and its first clock call, a
//     garbage-collection stall.
//
// When both hold, the advancer pops the single earliest timer
// (creation order breaking deadline ties), sets virtual now to its
// deadline, and fires it. Firing one timer per advance serializes
// same-instant work into deterministic supersteps: each fired timer's
// handler chain runs to quiescence before the next timer of the same
// virtual instant fires. Goroutines blocked in Sleep or in a timer or
// ticker wait wake, run, and the cycle repeats; a goroutine blocked on
// something a timer will eventually resolve (an RPC timeout for a
// partitioned peer, an election deadline) never waits more than a
// settle window of real time.
//
// The settle window makes the rule robust rather than strict: a
// goroutine that is runnable but does no clock-visible work for longer
// than the window can be overtaken by virtual time, which manifests as
// a spurious timeout — indistinguishable from a slow host, which the
// systems under test must tolerate anyway.
type Sim struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers timerHeap
	busy   int
	// scoped counts tokens bound to each goroutine; parkDepth marks
	// goroutines currently blocked inside one of the clock's own waits.
	// A goroutine's scoped tokens count toward busy only while it is
	// not parked: tokens arriving for a parked goroutine (queued
	// requests binding to a handler that is off waiting on its own
	// virtual timeout) must not freeze the clock the goroutine is
	// waiting on.
	scoped    map[uint64]int
	parkDepth map[uint64]int
	stopped   bool
	// suspended holds timers lifted out of the heap by a paused
	// NodeView: their absolute deadlines are preserved but they cannot
	// fire until resumeTimers re-arms them (or Stop flushes them).
	suspended map[*simTimer]struct{}

	activity atomic.Uint64
	wakeCh   chan struct{}
	doneCh   chan struct{}

	// journal, when non-nil, records every fired timer (diagnostic).
	journal []string
	Journal bool
}

// simEpoch is the fixed virtual start time: runs of the same seed see
// identical timestamps, which keeps timestamp-based tie-breaking (LWW
// consolidation, lease expiries) reproducible.
var simEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// The settle-window constants (settleYields, settlePasses, settleNap)
// live in sim_settle.go and sim_settle_race.go: the race detector
// slows every memory access by an order of magnitude, so race-enabled
// builds need a wider window to observe the same quiescence.

// stopFlush is how far Stop jumps virtual now forward, so that
// deadline-polling loops (commit waits, lease checks) still in flight
// observe an expired deadline and unwind promptly.
const stopFlush = 1000 * time.Hour

// NewSim creates a virtual clock starting at a fixed epoch and launches
// its advancer. Call Stop when the run is over to fire every pending
// timer and release the advancer goroutine.
func NewSim() *Sim {
	s := &Sim{
		now:       simEpoch,
		scoped:    make(map[uint64]int),
		parkDepth: make(map[uint64]int),
		suspended: make(map[*simTimer]struct{}),
		wakeCh:    make(chan struct{}, 1),
		doneCh:    make(chan struct{}),
	}
	go s.run()
	return s
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.activity.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep implements Clock. The calling goroutine's scoped tokens are
// surrendered for the duration, and the wake-up carries a busy token
// that the sleeper retires once it is running again, so virtual time
// cannot skip ahead between a sleep firing and the sleeper resuming.
func (s *Sim) Sleep(d time.Duration) {
	s.activity.Add(1)
	if d <= 0 {
		runtime.Gosched()
		return
	}
	t := &simTimer{s: s, done: make(chan struct{})}
	if !s.schedule(t, d) {
		return // clock stopped: waits complete immediately
	}
	g := gid()
	s.park(g)
	<-t.done
	// Restore our scoped tokens before retiring the wake grant, so
	// there is no instant where the resuming sleeper is unaccounted.
	s.unpark(g)
	s.Release()
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time { return s.NewTimer(d).C() }

// NewTimer implements Clock.
func (s *Sim) NewTimer(d time.Duration) Timer {
	s.activity.Add(1)
	t := &simTimer{s: s, ch: make(chan time.Time, 1)}
	if !s.schedule(t, d) {
		t.ch <- s.Now() // clock stopped: fire immediately
	}
	return t
}

// AfterFunc implements Clock. fn runs with a busy token held, so
// everything it hands off (a delivered packet, a queued request) is
// registered before virtual time can move again. fn must not block on
// the clock.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	s.activity.Add(1)
	t := &simTimer{s: s, fn: fn}
	if !s.schedule(t, d) {
		go fn() // clock stopped: run immediately
	}
	return t
}

// NewTicker implements Clock.
func (s *Sim) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	s.activity.Add(1)
	t := &simTimer{s: s, ch: make(chan time.Time, 1), period: d}
	s.schedule(t, d) // on a stopped clock the ticker simply never ticks
	return simTicker{t}
}

// Acquire implements Busy.
func (s *Sim) Acquire() {
	s.activity.Add(1)
	s.mu.Lock()
	s.busy++
	s.mu.Unlock()
}

// Release implements Busy.
func (s *Sim) Release() {
	s.activity.Add(1)
	s.mu.Lock()
	s.busy--
	if s.busy == 0 && len(s.timers) > 0 && !s.stopped {
		s.signalLocked()
	}
	s.mu.Unlock()
}

// AcquireScoped implements Busy: one busy token bound to the calling
// goroutine, surrendered while it blocks in Sleep or Idle.
func (s *Sim) AcquireScoped() {
	s.acquireScopedAs(gid())
}

// ReleaseScoped implements Busy.
func (s *Sim) ReleaseScoped() {
	g := gid()
	s.activity.Add(1)
	s.mu.Lock()
	if s.scoped[g] > 0 {
		s.scoped[g]--
		if s.scoped[g] == 0 {
			delete(s.scoped, g)
		}
		if s.parkDepth[g] == 0 {
			s.busy--
			if s.busy == 0 && len(s.timers) > 0 && !s.stopped {
				s.signalLocked()
			}
		}
	}
	s.mu.Unlock()
}

// BecomeScoped implements Busy: rebinds one transfer token to the
// calling goroutine without the busy count ever dipping.
func (s *Sim) BecomeScoped() {
	g := gid()
	s.activity.Add(1)
	s.mu.Lock()
	s.scoped[g]++
	if s.parkDepth[g] > 0 {
		// Rebinding into a parked scope: the transfer token stops
		// counting until the goroutine resumes.
		s.busy--
		if s.busy == 0 && len(s.timers) > 0 && !s.stopped {
			s.signalLocked()
		}
	}
	s.mu.Unlock()
}

// acquireScopedAs binds one busy token to goroutine g's scope. Tokens
// bound to a parked goroutine do not count toward busy until it
// resumes.
func (s *Sim) acquireScopedAs(g uint64) {
	s.activity.Add(1)
	s.mu.Lock()
	s.scoped[g]++
	if s.parkDepth[g] == 0 {
		s.busy++
	}
	s.mu.Unlock()
}

// releaseScopedAs revokes one token from goroutine g's scope.
func (s *Sim) releaseScopedAs(g uint64) {
	s.activity.Add(1)
	s.mu.Lock()
	if s.scoped[g] > 0 {
		s.scoped[g]--
		if s.scoped[g] == 0 {
			delete(s.scoped, g)
		}
		if s.parkDepth[g] == 0 {
			s.busy--
			if s.busy == 0 && len(s.timers) > 0 && !s.stopped {
				s.signalLocked()
			}
		}
	}
	s.mu.Unlock()
}

// Idle implements Busy: fn runs with the goroutine's scoped tokens
// surrendered so virtual time can advance while fn blocks on something
// the clock cannot see (a WaitGroup join, a select on a timer).
func (s *Sim) Idle(fn func()) {
	g := gid()
	s.park(g)
	fn()
	s.unpark(g)
}

// park marks goroutine g as blocked in a clock wait: its scoped tokens
// (current and any bound to it while parked) stop counting toward
// busy until unpark.
func (s *Sim) park(g uint64) {
	s.activity.Add(1)
	s.mu.Lock()
	s.parkDepth[g]++
	if s.parkDepth[g] == 1 && s.scoped[g] > 0 {
		s.busy -= s.scoped[g]
	}
	if s.busy == 0 && len(s.timers) > 0 && !s.stopped {
		s.signalLocked()
	}
	s.mu.Unlock()
}

// unpark reverses park, restoring g's scoped tokens to the busy count.
func (s *Sim) unpark(g uint64) {
	s.activity.Add(1)
	s.mu.Lock()
	s.parkDepth[g]--
	if s.parkDepth[g] == 0 {
		delete(s.parkDepth, g)
		s.busy += s.scoped[g]
	}
	s.mu.Unlock()
}

// Stop shuts the clock down: virtual now jumps far forward, every
// pending timer fires at once (waking any goroutine still blocked in a
// clock wait so teardown cannot hang), and the advancer exits. Timed
// waits issued after Stop complete immediately.
func (s *Sim) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.now = s.now.Add(stopFlush)
	due := make([]*simTimer, 0, len(s.timers)+len(s.suspended))
	for len(s.timers) > 0 {
		t := heap.Pop(&s.timers).(*simTimer)
		t.period = 0
		due = append(due, t)
	}
	// Timers suspended by a paused NodeView must flush too, or the
	// goroutines parked on them (sleeps, RPC wake timers) hang teardown.
	susp := make([]*simTimer, 0, len(s.suspended))
	for t := range s.suspended {
		susp = append(susp, t)
	}
	sort.Slice(susp, func(i, j int) bool {
		if !susp[i].when.Equal(susp[j].when) {
			return susp[i].when.Before(susp[j].when)
		}
		return susp[i].seq < susp[j].seq
	})
	for _, t := range susp {
		delete(s.suspended, t)
		t.suspendedFlag = false
		t.period = 0
		due = append(due, t)
	}
	now := s.now
	s.mu.Unlock()
	close(s.doneCh)
	for _, t := range due {
		switch {
		case t.done != nil:
			close(t.done)
		case t.fn != nil:
			go t.fn()
		default:
			select {
			case t.ch <- now:
			default:
			}
		}
	}
}

// Elapsed returns how much virtual time has passed since the epoch
// (excluding the Stop flush). It is a test and reporting helper.
func (s *Sim) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.now.Sub(simEpoch)
	if s.stopped {
		d -= stopFlush
	}
	return d
}

// schedule arms t after d of virtual time, reporting false if the
// clock is already stopped.
func (s *Sim) schedule(t *simTimer, d time.Duration) bool {
	// A timer that never reaches the heap must not look active to
	// Stop(): the zero pos (0) would otherwise alias the heap root and
	// make Stop call heap.Remove on an empty or unrelated heap.
	t.pos = -1
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return false
	}
	t.when = s.now.Add(d)
	t.seq = s.seq
	s.seq++
	heap.Push(&s.timers, t)
	if s.busy == 0 {
		s.signalLocked()
	}
	s.mu.Unlock()
	return true
}

func (s *Sim) signalLocked() {
	select {
	case s.wakeCh <- struct{}{}:
	default:
	}
}

// run is the advancer loop: wait until something suggests the process
// may be quiescent, confirm it, and advance.
func (s *Sim) run() {
	for {
		select {
		case <-s.doneCh:
			return
		case <-s.wakeCh:
		}
		for s.settle() && s.advanceOnce() {
		}
	}
}

// settle reports whether the process has quiesced with timers pending.
// It returns false when there is nothing to do or work is provably in
// flight; the caller then re-blocks until the next signal.
func (s *Sim) settle() bool {
	for {
		select {
		case <-s.doneCh:
			return false
		default:
		}
		s.mu.Lock()
		ready := !s.stopped && s.busy == 0 && len(s.timers) > 0
		s.mu.Unlock()
		if !ready {
			return false
		}
		before := s.activity.Load()
		quiet := true
		for pass := 0; pass < settlePasses && quiet; pass++ {
			for i := 0; i < settleYields; i++ {
				runtime.Gosched()
			}
			quiet = s.activity.Load() == before
		}
		if quiet && settleNap > 0 {
			time.Sleep(settleNap)
			quiet = s.activity.Load() == before
		}
		if !quiet {
			continue
		}
		return true
	}
}

// advanceOnce jumps virtual now to the earliest pending deadline and
// fires exactly one timer — the earliest-created one due there. Firing
// one timer per advance serializes same-instant work: each fired
// timer's handler chain runs to quiescence (the caller re-settles
// between advances) before the next timer of the same virtual instant
// fires, so the relative order of, say, three replicas' heartbeat
// broadcasts is the deterministic creation order rather than a
// scheduler race. The busy token for a sleep wake-up or AfterFunc
// callback is granted under the lock, before time can be observed past
// the jump.
func (s *Sim) advanceOnce() bool {
	s.mu.Lock()
	if s.stopped || s.busy != 0 || len(s.timers) == 0 {
		s.mu.Unlock()
		return false
	}
	t := heap.Pop(&s.timers).(*simTimer)
	if t.when.After(s.now) {
		s.now = t.when
	}
	if t.done != nil || t.fn != nil {
		s.busy++
	}
	now := s.now
	if s.Journal {
		kind := "timer"
		switch {
		case t.done != nil:
			kind = "sleep"
		case t.fn != nil:
			kind = "afterfunc"
		case t.period > 0:
			kind = "tick"
		case t.wake:
			kind = "wake"
		}
		s.journal = append(s.journal, kind+" seq="+strconv.FormatUint(t.seq, 10)+" at="+now.Sub(simEpoch).String())
	}
	s.activity.Add(1)
	s.mu.Unlock()
	t.deliver(now)
	return true
}

// JournalLines returns the fired-timer journal (diagnostic).
func (s *Sim) JournalLines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.journal...)
}

// simTimer is one heap entry. Exactly one of done (Sleep), fn
// (AfterFunc), or ch (After/NewTimer/NewTicker) is set.
type simTimer struct {
	s    *Sim
	when time.Time
	seq  uint64
	pos  int // heap index; -1 once fired or stopped

	period time.Duration // ticker reschedule interval; 0 for one-shot
	// waiting marks a consumer currently blocked in TickLoop: only then
	// does a fire hand over a busy token with the tick (granted records
	// the handover so an exiting consumer can return it). wake marks a
	// one-shot timer from NewWakeTimer, which grants unconditionally.
	// suspendedFlag marks a timer lifted out of the heap by a paused
	// NodeView; it keeps its absolute deadline but cannot fire.
	waiting       bool
	granted       bool
	wake          bool
	suspendedFlag bool
	ch            chan time.Time
	done          chan struct{}
	fn            func()
}

// C implements Timer.
func (t *simTimer) C() <-chan time.Time { return t.ch }

// Stop implements Timer.
func (t *simTimer) Stop() bool {
	s := t.s
	s.activity.Add(1)
	s.mu.Lock()
	active := t.pos >= 0
	if active {
		heap.Remove(&s.timers, t.pos)
	}
	if t.suspendedFlag {
		// A timer parked by a paused NodeView is still pending: cancel
		// it here so a later Resume cannot re-arm a stopped timer.
		delete(s.suspended, t)
		t.suspendedFlag = false
		active = true
	}
	t.period = 0
	if t.granted {
		// Reclaim the token of a delivered-but-unconsumed tick, or
		// one whose consumer received it but exited via its stop
		// channel instead of BecomeScoped.
		select {
		case <-t.ch:
			t.granted = false
			s.busy--
			if s.busy == 0 && len(s.timers) > 0 && !s.stopped {
				s.signalLocked()
			}
		default:
		}
	}
	s.mu.Unlock()
	return active
}

// deliver fires the timer. It runs on the advancer goroutine (or on
// Stop's caller) after the timer left the heap.
func (t *simTimer) deliver(now time.Time) {
	s := t.s
	switch {
	case t.done != nil:
		close(t.done)
	case t.fn != nil:
		// Callbacks run serially on the advancer, in creation order, so
		// same-instant deliveries (netsim's delayed packets) are
		// deterministic. This is why they must not block on the clock.
		t.fn()
		s.Release()
	default:
		// t.period is mutated by Stop under s.mu, so it must be read
		// under the lock here too (t.wake, t.done, and t.fn are
		// immutable after creation).
		s.mu.Lock()
		if t.period > 0 {
			// A tick delivered to a consumer blocked in TickLoop carries
			// a busy token: virtual time stays frozen until the consumer
			// rebinds it and finishes its tick handling. A consumer that
			// is NOT waiting — it is off processing, possibly parked on
			// its own RPC timeout — gets the tick buffered without a
			// token (granting would freeze the very clock it is waiting
			// on), or dropped if one is already buffered, time.Ticker
			// style.
			select {
			case t.ch <- now:
				if t.waiting {
					s.busy++
					t.granted = true
					t.waiting = false
				}
			default:
			}
			if !s.stopped && !t.suspendedFlag {
				t.when = now.Add(t.period)
				t.seq = s.seq
				s.seq++
				heap.Push(&s.timers, t)
			}
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		if t.wake {
			s.mu.Lock()
			select {
			case t.ch <- now:
				s.busy++
				t.granted = true
			default:
			}
			s.mu.Unlock()
			return
		}
		select {
		case t.ch <- now:
		default:
		}
	}
}

// simTicker adapts simTimer to the Ticker interface.
type simTicker struct{ t *simTimer }

func (st simTicker) C() <-chan time.Time { return st.t.ch }
func (st simTicker) Stop()               { st.t.Stop() }

// timerHeap orders timers by (deadline, creation sequence).
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*simTimer)
	t.pos = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.pos = -1
	*h = old[:n-1]
	return t
}

// gid returns the calling goroutine's id, parsed from the first stack
// line ("goroutine N [running]:"). The runtime offers no cheaper
// public accessor; a 64-byte Stack call costs on the order of a
// microsecond, which the scoped-token call sites amortize over whole
// RPC executions.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Snapshot reports the clock's internal accounting — busy tokens,
// scoped holders, pending timers, and virtual now — for tests and
// stall diagnostics.
func (s *Sim) Snapshot() (busy int, scoped map[uint64]int, timers int, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc := make(map[uint64]int, len(s.scoped))
	for g, n := range s.scoped {
		sc[g] = n
	}
	return s.busy, sc, len(s.timers), s.now
}

// tickLoop is the Sim implementation behind clock.TickLoop. Each
// iteration either claims an already-buffered tick under the clock
// lock (acquiring a scoped token with no unprotected gap) or declares
// itself waiting so the next fire hands a token over with the tick.
func (s *Sim) tickLoop(tk Ticker, stop <-chan struct{}, body func()) {
	st, ok := tk.(simTicker)
	if !ok {
		for {
			select {
			case <-stop:
				return
			case <-tk.C():
				body()
			}
		}
	}
	t := st.t
	g := gid()
	for {
		select {
		case <-stop:
			return
		default:
		}
		s.mu.Lock()
		select {
		case <-t.ch:
			// A buffered tick from a fire that found us busy: claim it
			// and a scoped token in one step.
			t.granted = false
			s.scoped[g]++
			s.busy++
		default:
			t.waiting = true
			s.mu.Unlock()
			select {
			case <-stop:
				s.mu.Lock()
				t.waiting = false
				if t.granted {
					// A fire handed us a token between the park and the
					// stop: return it.
					select {
					case <-t.ch:
						t.granted = false
						s.busy--
						if s.busy == 0 && len(s.timers) > 0 && !s.stopped {
							s.signalLocked()
						}
					default:
					}
				}
				s.mu.Unlock()
				return
			case <-t.ch:
				s.mu.Lock()
				if t.granted {
					// Rebind the fire's transfer token as our scoped
					// token; busy stays put.
					t.granted = false
					s.scoped[g]++
				} else {
					// Tick from a stopped clock's flush: no token came
					// with it, take a scoped one so the release below
					// balances.
					s.scoped[g]++
					s.busy++
				}
			}
		}
		s.mu.Unlock()
		s.activity.Add(1)
		body()
		s.ReleaseScoped()
	}
}

// newWakeTimer backs clock.NewWakeTimer: a one-shot timer that grants
// a busy token on fire (reclaimed by Stop if never consumed).
func (s *Sim) newWakeTimer(d time.Duration) Timer {
	s.activity.Add(1)
	t := &simTimer{s: s, ch: make(chan time.Time, 1), wake: true}
	if !s.schedule(t, d) {
		t.ch <- s.Now() // clock stopped: fire immediately, no token
	}
	return t
}

// scheduleSuspended arms t directly into the suspended set — used for
// timers created through a NodeView that is currently paused, so a
// frozen node's new timers (its dispatcher is not consuming, but
// in-flight handlers may still finish and arm retries) stay frozen with
// the rest of the node until Resume.
func (s *Sim) scheduleSuspended(t *simTimer, d time.Duration) bool {
	t.pos = -1
	if d < 0 {
		d = 0
	}
	s.activity.Add(1)
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return false
	}
	t.when = s.now.Add(d)
	t.seq = s.seq
	s.seq++
	t.suspendedFlag = true
	s.suspended[t] = struct{}{}
	s.mu.Unlock()
	return true
}

// suspendTimers lifts every pending timer in ts out of the heap,
// preserving absolute deadlines. Suspended timers cannot fire until
// resumeTimers (or Stop's flush).
func (s *Sim) suspendTimers(ts map[*simTimer]struct{}) {
	s.activity.Add(1)
	s.mu.Lock()
	for t := range ts {
		if t.pos >= 0 {
			heap.Remove(&s.timers, t.pos)
			t.suspendedFlag = true
			s.suspended[t] = struct{}{}
		}
	}
	s.mu.Unlock()
}

// resumeTimers re-arms the suspended timers in ts. Deadlines already in
// the past are clamped to now, so a paused node's expired tickers and
// lease sweeps fire immediately on resume — the coalesced catch-up tick
// a real process observes after a GC stall. Fresh sequence numbers are
// assigned in (deadline, original-sequence) order so same-instant
// catch-up fires replay deterministically.
func (s *Sim) resumeTimers(ts map[*simTimer]struct{}) {
	s.activity.Add(1)
	s.mu.Lock()
	due := make([]*simTimer, 0, len(ts))
	for t := range ts {
		if t.suspendedFlag {
			due = append(due, t)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if !due[i].when.Equal(due[j].when) {
			return due[i].when.Before(due[j].when)
		}
		return due[i].seq < due[j].seq
	})
	for _, t := range due {
		delete(s.suspended, t)
		t.suspendedFlag = false
		if t.when.Before(s.now) {
			t.when = s.now
		}
		t.seq = s.seq
		s.seq++
		heap.Push(&s.timers, t)
	}
	if s.busy == 0 && len(s.timers) > 0 && !s.stopped {
		s.signalLocked()
	}
	s.mu.Unlock()
}

// retimeTimers remaps the deadlines of every pending or suspended timer
// in ts when the owning NodeView's skew changes. A timer that had
// remView of view-time left to run now has (remView−offset)/newRate of
// inner time left (clamped at zero: a forward jump past a deadline makes
// it due immediately); ticker periods rescale by oldRate/newRate.
// Re-armed timers take fresh sequence numbers in (deadline, sequence)
// order, keeping same-instant fires deterministic.
func (s *Sim) retimeTimers(ts map[*simTimer]struct{}, oldRate, newRate float64, offset time.Duration) {
	s.activity.Add(1)
	s.mu.Lock()
	pend := make([]*simTimer, 0, len(ts))
	for t := range ts {
		if t.pos >= 0 || t.suspendedFlag {
			pend = append(pend, t)
		}
	}
	sort.Slice(pend, func(i, j int) bool {
		if !pend[i].when.Equal(pend[j].when) {
			return pend[i].when.Before(pend[j].when)
		}
		return pend[i].seq < pend[j].seq
	})
	for _, t := range pend {
		remInner := t.when.Sub(s.now)
		if remInner < 0 {
			remInner = 0
		}
		remView := time.Duration(float64(remInner)*oldRate) - offset
		if remView < 0 {
			remView = 0
		}
		newRem := time.Duration(float64(remView) / newRate)
		if t.period > 0 {
			t.period = time.Duration(float64(t.period) * oldRate / newRate)
			if t.period <= 0 {
				t.period = 1
			}
		}
		if t.pos >= 0 {
			heap.Remove(&s.timers, t.pos)
			t.when = s.now.Add(newRem)
			t.seq = s.seq
			s.seq++
			heap.Push(&s.timers, t)
		} else {
			t.when = s.now.Add(newRem)
			t.seq = s.seq
			s.seq++
		}
	}
	if s.busy == 0 && len(s.timers) > 0 && !s.stopped {
		s.signalLocked()
	}
	s.mu.Unlock()
}

// pruneDead drops fired and stopped one-shot timers from a NodeView's
// registry so a long round's RPC wake timers do not accumulate. Tickers
// (period > 0) are never pruned: they leave the heap transiently while
// the advancer re-arms them.
func (s *Sim) pruneDead(ts map[*simTimer]struct{}) {
	s.activity.Add(1)
	s.mu.Lock()
	for t := range ts {
		if t.pos < 0 && !t.suspendedFlag && t.period == 0 {
			delete(ts, t)
		}
	}
	s.mu.Unlock()
}
