package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSimSleepAdvances is the core promise: a long virtual sleep
// completes in a sliver of real time, and virtual now moved by exactly
// the slept duration.
func TestSimSleepAdvances(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	start := s.Now()
	realStart := time.Now()
	s.Sleep(250 * time.Millisecond)
	if realTook := time.Since(realStart); realTook > 5*time.Second {
		t.Fatalf("virtual 250ms sleep took %v of real time", realTook)
	}
	if got := s.Now().Sub(start); got != 250*time.Millisecond {
		t.Fatalf("virtual time advanced by %v, want 250ms", got)
	}
}

// TestSimTimerOrdering schedules callbacks out of order and checks they
// fire in deadline order, with creation order breaking ties.
func TestSimTimerOrdering(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	var mu sync.Mutex
	var order []string
	log := func(name string) func() {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	s.AfterFunc(30*time.Millisecond, log("c"))
	s.AfterFunc(10*time.Millisecond, log("a"))
	s.AfterFunc(20*time.Millisecond, log("b1"))
	s.AfterFunc(20*time.Millisecond, log("b2"))
	s.Sleep(40 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	want := []string{"a", "b1", "b2", "c"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestSimAfterFuncCancel stops an AfterFunc before its deadline and
// checks it never runs; stopping after the fire reports false.
func TestSimAfterFuncCancel(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	var fired atomic.Bool
	tm := s.AfterFunc(50*time.Millisecond, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop before the deadline reported the timer already fired")
	}
	s.Sleep(100 * time.Millisecond)
	if fired.Load() {
		t.Fatal("cancelled AfterFunc ran anyway")
	}
	var ran atomic.Bool
	tm2 := s.AfterFunc(10*time.Millisecond, func() { ran.Store(true) })
	s.Sleep(20 * time.Millisecond)
	if !ran.Load() {
		t.Fatal("AfterFunc never ran")
	}
	if tm2.Stop() {
		t.Fatal("Stop after the fire claimed the timer was still pending")
	}
}

// TestSimQuiescenceAutoAdvance blocks several goroutines in staggered
// clock waits with no external driver: the clock must notice the
// process is idle and walk through every deadline on its own.
func TestSimQuiescenceAutoAdvance(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	const n = 8
	var wg sync.WaitGroup
	woke := make([]time.Time, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Sleep(time.Duration(i+1) * 10 * time.Millisecond)
			woke[i] = s.Now()
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("auto-advance never released the sleepers")
	}
	for i := 0; i < n; i++ {
		if want := simEpoch.Add(time.Duration(i+1) * 10 * time.Millisecond); woke[i].Before(want) {
			t.Fatalf("sleeper %d woke at %v, before its deadline %v", i, woke[i], want)
		}
	}
}

// TestSimTicker checks virtual cadence: a ticker consumed in a loop
// delivers ticks exactly one period apart.
func TestSimTicker(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	tk := s.NewTicker(10 * time.Millisecond)
	defer tk.Stop()
	prev := s.Now()
	for i := 0; i < 5; i++ {
		tick := <-tk.C()
		if got := tick.Sub(prev); got != 10*time.Millisecond {
			t.Fatalf("tick %d arrived %v after the previous, want 10ms", i, got)
		}
		prev = tick
	}
	tk.Stop()
}

// TestSimTimerSelect exercises the transport.Call shape: a select over
// a result channel and a timeout timer, under both outcomes.
func TestSimTimerSelect(t *testing.T) {
	s := NewSim()
	defer s.Stop()

	// Timeout wins when no result ever arrives.
	tm := s.NewTimer(30 * time.Millisecond)
	res := make(chan int, 1)
	select {
	case <-res:
		t.Fatal("received from an empty result channel")
	case now := <-tm.C():
		if got := now.Sub(simEpoch); got < 30*time.Millisecond {
			t.Fatalf("timeout fired after %v of virtual time, want >= 30ms", got)
		}
	}
	tm.Stop()

	// The result wins when it is produced before the deadline.
	tm2 := s.NewTimer(500 * time.Millisecond)
	s.AfterFunc(10*time.Millisecond, func() { res <- 42 })
	select {
	case v := <-res:
		if v != 42 {
			t.Fatalf("got %d, want 42", v)
		}
	case <-tm2.C():
		t.Fatal("timeout fired before the earlier result")
	}
	tm2.Stop()
}

// TestSimStopReleasesWaiters checks Stop wakes a blocked sleeper and
// that waits issued after Stop return immediately with an expired
// deadline, so deadline-polling loops unwind.
func TestSimStopReleasesWaiters(t *testing.T) {
	s := NewSim()
	deadline := s.Now().Add(time.Hour)
	released := make(chan struct{})
	go func() {
		s.Sleep(time.Hour * 24 * 365)
		close(released)
	}()
	// Give the sleeper a moment to park, then stop the clock.
	time.Sleep(time.Millisecond)
	s.Stop()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop left a sleeper blocked")
	}
	s.Sleep(time.Hour) // must not block
	if !s.Now().After(deadline) {
		t.Fatal("Stop did not push virtual now past pending deadlines")
	}
}

// TestSimBusyBlocksAdvance checks the handoff protocol: while a unit of
// work is held via Acquire, timers must not fire.
func TestSimBusyBlocksAdvance(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	s.Acquire()
	var fired atomic.Bool
	s.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	time.Sleep(20 * time.Millisecond) // real time: ample settle windows
	if fired.Load() {
		t.Fatal("timer fired while a busy token was held")
	}
	s.Release()
	waitUntil(t, func() bool { return fired.Load() })
}

// TestRealClockBasics sanity-checks the passthrough implementation.
func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	start := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(start) {
		t.Fatal("real clock did not advance")
	}
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("fresh real timer reported already fired")
	}
	tk := c.NewTicker(time.Millisecond)
	<-tk.C()
	tk.Stop()
	// Acquire/Release must be no-ops on a clock without Busy.
	Acquire(c)
	Release(c)
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSimTickLoop runs the service-loop primitive: bodies execute once
// per virtual period and the loop exits promptly on stop.
func TestSimTickLoop(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	tk := s.NewTicker(10 * time.Millisecond)
	defer tk.Stop()
	stop := make(chan struct{})
	var n atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		TickLoop(s, tk, stop, func() {
			if n.Add(1) == 5 {
				close(stop)
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("tick loop never processed five virtual ticks")
	}
	if got := s.Now().Sub(simEpoch); got < 50*time.Millisecond {
		t.Fatalf("five 10ms ticks advanced virtual time by only %v", got)
	}
}

// TestSimScopedParking: a scoped token freezes time while its holder
// runs, but Idle surrenders it so waits it depends on can fire.
func TestSimScopedParking(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	s.AcquireScoped()
	var fired atomic.Bool
	s.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	time.Sleep(10 * time.Millisecond)
	if fired.Load() {
		t.Fatal("timer fired while a scoped token was held")
	}
	s.Idle(func() {
		waitUntil(t, func() bool { return fired.Load() })
	})
	s.ReleaseScoped()
}

// TestSimGoAccountsSpawn: work spawned through Go is accounted from
// the spawn instant, so a timer cannot fire between the spawn and the
// goroutine's first action.
func TestSimGoAccountsSpawn(t *testing.T) {
	s := NewSim()
	defer s.Stop()
	order := make(chan string, 2)
	s.AfterFunc(time.Millisecond, func() { order <- "timer" })
	Go(s, func() { order <- "spawned" })
	if first := <-order; first != "spawned" {
		t.Fatalf("timer fired before the already-spawned work ran (first = %q)", first)
	}
}

// TestSimTimersAfterStop: clock operations on a stopped clock complete
// immediately and their handles stay safe to Stop (a timer that never
// reached the heap must not panic in heap.Remove).
func TestSimTimersAfterStop(t *testing.T) {
	s := NewSim()
	s.Stop()
	tm := s.NewTimer(time.Second)
	<-tm.C() // fires immediately on a stopped clock
	tm.Stop()
	wt := NewWakeTimer(s, time.Second)
	<-wt.C()
	wt.Stop()
	var ran atomic.Bool
	af := s.AfterFunc(time.Second, func() { ran.Store(true) })
	waitUntil(t, func() bool { return ran.Load() })
	af.Stop()
	tk := s.NewTicker(time.Second)
	tk.Stop()
	s.Sleep(time.Hour) // returns immediately
}
