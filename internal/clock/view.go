package clock

import (
	"runtime"
	"sync"
	"time"
)

// NodeView is one simulated node's private view of a shared Sim: the
// same virtual timeline, optionally skewed (a constant offset plus a
// drift rate, so the node's Now diverges from its peers') and pausable
// (every timer the node armed freezes in place while the rest of the
// cluster keeps running — a GC stall or VM freeze, as opposed to a
// crash). Campaign fault injection drives SetSkew/ClearSkew and
// Pause/Resume; everything a node does with time goes through its view,
// so a skewed lease sweeper really does expire leases early and a
// paused broker really does miss its session pings.
//
// The mapping is viewNow = baseView + rate·(innerNow − baseInner).
// SetSkew rebases at the current instant and applies the offset as a
// jump, so repeated skew faults compose; ClearSkew rebases to rate 1
// without jumping backwards — the residual offset stays, keeping the
// view monotonic, and since every duration a node computes subtracts
// two readings of the same view the residual cancels out.
//
// Timers armed through a view are registered with it so pause and skew
// can find them, and their durations are translated view→inner (d/rate)
// at creation; a skew change retimes the pending set (see
// Sim.retimeTimers).
type NodeView struct {
	s *Sim

	mu        sync.Mutex
	baseInner time.Time
	baseView  time.Time
	rate      float64
	paused    bool
	timers    map[*simTimer]struct{}
	pruneAt   int
}

// NewNodeView creates an identity view over s: no skew, not paused.
func NewNodeView(s *Sim) *NodeView {
	now := s.Now()
	return &NodeView{
		s:         s,
		baseInner: now,
		baseView:  now,
		rate:      1,
		timers:    make(map[*simTimer]struct{}),
		pruneAt:   64,
	}
}

// Sim returns the underlying shared clock.
func (v *NodeView) Sim() *Sim { return v.s }

// viewAtLocked maps an inner instant to this view's time. v.mu held.
func (v *NodeView) viewAtLocked(inner time.Time) time.Time {
	d := inner.Sub(v.baseInner)
	if v.rate != 1 {
		d = time.Duration(float64(d) * v.rate)
	}
	return v.baseView.Add(d)
}

// innerDurLocked translates a duration of view time into inner time.
func (v *NodeView) innerDurLocked(d time.Duration) time.Duration {
	if v.rate != 1 && d > 0 {
		d = time.Duration(float64(d) / v.rate)
		if d <= 0 {
			d = 1
		}
	}
	return d
}

// Now implements Clock. It keeps advancing while the view is paused:
// a frozen process's TSC does not stop — only its threads do — so code
// that checks freshness after a stall must see how much time it lost.
func (v *NodeView) Now() time.Time {
	inner := v.s.Now()
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.viewAtLocked(inner)
}

// arm registers t with the view and schedules it after d of view time.
// Timers created while the view is paused start suspended, frozen with
// the rest of the node. Reports false if the clock is stopped.
func (v *NodeView) arm(t *simTimer, d time.Duration) bool {
	v.mu.Lock()
	if len(v.timers) >= v.pruneAt {
		v.s.pruneDead(v.timers)
		v.pruneAt = 2*len(v.timers) + 64
	}
	in := v.innerDurLocked(d)
	var ok bool
	if v.paused {
		ok = v.s.scheduleSuspended(t, in)
	} else {
		ok = v.s.schedule(t, in)
	}
	if ok {
		v.timers[t] = struct{}{}
	}
	v.mu.Unlock()
	return ok
}

// Sleep implements Clock. Identical to Sim.Sleep except the timer is
// registered with the view, so a pause freezes in-progress sleeps too.
func (v *NodeView) Sleep(d time.Duration) {
	s := v.s
	s.activity.Add(1)
	if d <= 0 {
		runtime.Gosched()
		return
	}
	t := &simTimer{s: s, done: make(chan struct{})}
	if !v.arm(t, d) {
		return // clock stopped: waits complete immediately
	}
	g := gid()
	s.park(g)
	<-t.done
	s.unpark(g)
	s.Release()
}

// After implements Clock.
func (v *NodeView) After(d time.Duration) <-chan time.Time { return v.NewTimer(d).C() }

// NewTimer implements Clock.
func (v *NodeView) NewTimer(d time.Duration) Timer {
	s := v.s
	s.activity.Add(1)
	t := &simTimer{s: s, ch: make(chan time.Time, 1)}
	if !v.arm(t, d) {
		t.ch <- v.Now() // clock stopped: fire immediately
	}
	return t
}

// AfterFunc implements Clock.
func (v *NodeView) AfterFunc(d time.Duration, fn func()) Timer {
	s := v.s
	s.activity.Add(1)
	t := &simTimer{s: s, fn: fn}
	if !v.arm(t, d) {
		go fn() // clock stopped: run immediately
	}
	return t
}

// NewTicker implements Clock. The period is translated once at
// creation; a later skew change rescales it along with every other
// pending timer of the view.
func (v *NodeView) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	s := v.s
	s.activity.Add(1)
	v.mu.Lock()
	in := v.innerDurLocked(d)
	v.mu.Unlock()
	t := &simTimer{s: s, ch: make(chan time.Time, 1), period: in}
	v.arm(t, d) // on a stopped clock the ticker simply never ticks
	return simTicker{t}
}

// newWakeTimer mirrors Sim.newWakeTimer with view registration, so a
// paused node's pending RPC timeouts freeze rather than fire.
func (v *NodeView) newWakeTimer(d time.Duration) Timer {
	s := v.s
	s.activity.Add(1)
	t := &simTimer{s: s, ch: make(chan time.Time, 1), wake: true}
	if !v.arm(t, d) {
		t.ch <- v.Now() // clock stopped: fire immediately, no token
	}
	return t
}

// Busy delegation: work accounting is a property of the shared clock,
// not of any one node's view of it.

// Acquire implements Busy.
func (v *NodeView) Acquire() { v.s.Acquire() }

// Release implements Busy.
func (v *NodeView) Release() { v.s.Release() }

// AcquireScoped implements Busy.
func (v *NodeView) AcquireScoped() { v.s.AcquireScoped() }

// ReleaseScoped implements Busy.
func (v *NodeView) ReleaseScoped() { v.s.ReleaseScoped() }

// BecomeScoped implements Busy.
func (v *NodeView) BecomeScoped() { v.s.BecomeScoped() }

// Idle implements Busy.
func (v *NodeView) Idle(fn func()) { v.s.Idle(fn) }

// SetSkew rebases the view at the current instant: view time jumps by
// offset (negative allowed — the jump is applied to the base, and the
// view stays monotonic because readings only ever move forward from
// there) and subsequently flows at rate × inner time. Pending timers
// are retimed so a deadline that was remView away in view time is now
// (remView − offset)/rate of inner time away.
func (v *NodeView) SetSkew(offset time.Duration, rate float64) {
	if rate <= 0 {
		rate = 1
	}
	inner := v.s.Now()
	v.mu.Lock()
	cur := v.viewAtLocked(inner)
	old := v.rate
	v.baseInner = inner
	v.baseView = cur.Add(offset)
	v.rate = rate
	// v.mu stays held across the retime so a concurrent arm cannot
	// mutate the registry mid-iteration (lock order v.mu → s.mu, the
	// same as arm's).
	v.s.retimeTimers(v.timers, old, rate, offset)
	v.mu.Unlock()
}

// ClearSkew rebases to rate 1 with no jump: the residual offset a past
// skew accumulated stays (going backwards would break monotonicity),
// and cancels out of any duration the node computes from two readings.
func (v *NodeView) ClearSkew() {
	inner := v.s.Now()
	v.mu.Lock()
	cur := v.viewAtLocked(inner)
	old := v.rate
	v.baseInner = inner
	v.baseView = cur
	v.rate = 1
	v.s.retimeTimers(v.timers, old, 1, 0)
	v.mu.Unlock()
}

// Rate returns the view's current drift rate (1 = no skew), diagnostic.
func (v *NodeView) Rate() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.rate
}

// Pause freezes every timer the node has armed — tickers, lease sweeps,
// sleeps, RPC timeouts — in place, preserving deadlines. The node's
// goroutines are not descheduled (in-flight handlers run to completion,
// as real threads mid-syscall do when a VM is frozen), but nothing
// timed happens until Resume. Idempotent.
func (v *NodeView) Pause() {
	v.mu.Lock()
	if v.paused {
		v.mu.Unlock()
		return
	}
	v.paused = true
	v.s.suspendTimers(v.timers)
	v.mu.Unlock()
}

// Resume re-arms the frozen timers. Deadlines that passed during the
// pause fire immediately, in deterministic order — the burst of
// coalesced ticks and expired timeouts a process observes coming out of
// a long stall. Idempotent.
func (v *NodeView) Resume() {
	v.mu.Lock()
	if !v.paused {
		v.mu.Unlock()
		return
	}
	v.paused = false
	v.s.resumeTimers(v.timers)
	v.mu.Unlock()
}

// Paused reports whether the view is currently paused.
func (v *NodeView) Paused() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.paused
}
