package dfs

import (
	"neat/internal/core"
	"neat/internal/netsim"
)

// System bundles the NameNode and DataNodes into NEAT's ISystem
// interface.
type System struct {
	cfg   Config
	net   *netsim.Network
	nn    *NameNode
	nodes map[netsim.NodeID]*DataNode
}

// NewSystem creates the file system, unstarted.
func NewSystem(n *netsim.Network, cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{cfg: cfg, net: n, nn: NewNameNode(n, cfg), nodes: make(map[netsim.NodeID]*DataNode)}
	for _, id := range cfg.DataNodes() {
		s.nodes[id] = NewDataNode(n, id, cfg)
	}
	return s
}

// Name implements core.ISystem.
func (s *System) Name() string { return "dfs" }

// Start implements core.ISystem.
func (s *System) Start() error {
	s.nn.Start()
	for _, dn := range s.nodes {
		dn.Start()
	}
	return nil
}

// Stop implements core.ISystem.
func (s *System) Stop() error {
	for _, dn := range s.nodes {
		dn.Stop()
	}
	s.nn.Stop()
	return nil
}

// Status implements core.ISystem.
func (s *System) Status() map[netsim.NodeID]core.NodeStatus {
	out := make(map[netsim.NodeID]core.NodeStatus, len(s.nodes)+1)
	out[s.cfg.NameNode] = core.NodeStatus{Up: s.net.IsUp(s.cfg.NameNode), Role: "namenode"}
	for id := range s.nodes {
		out[id] = core.NodeStatus{Up: s.net.IsUp(id), Role: "datanode"}
	}
	return out
}

// NameNode returns the metadata server.
func (s *System) NameNode() *NameNode { return s.nn }

// DataNode returns the DataNode on a host.
func (s *System) DataNode(id netsim.NodeID) *DataNode { return s.nodes[id] }
