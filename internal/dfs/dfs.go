// Package dfs implements an HDFS/MooseFS-style distributed file
// system: a NameNode holding the namespace and block locations,
// DataNodes storing chunks and reporting liveness by heartbeat, and a
// pipeline-writing client.
//
// Three studied failures live here:
//
//   - HDFS-1384: rack-aware placement keeps suggesting DataNodes from
//     the same rack the client cannot reach across a partial partition;
//     the client gives up after five attempts.
//   - HDFS-577: a simplex partition lets a DataNode send heartbeats but
//     not receive requests, so the NameNode keeps scheduling work onto a
//     node nobody can use.
//   - MooseFS #131/#132: a partial partition between the client and a
//     chunk server makes the file system look inconsistent to the
//     client — the metadata says the file exists, but reads fail.
package dfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"neat/internal/netsim"
	"neat/internal/transport"
)

// RPC method names.
const (
	mAllocate  = "dfs.allocate"
	mCommit    = "dfs.commit"
	mLocations = "dfs.locations"
	mHealth    = "dfs.health"
	mHeartbeat = "dfs.heartbeat"
	mStore     = "dfs.store"
	mFetch     = "dfs.fetch"
)

type allocateReq struct {
	File     string
	Excluded []netsim.NodeID
}

type commitReq struct {
	File string
	Node netsim.NodeID
}

type locationsReq struct{ File string }

type hbMsg struct{ Node netsim.NodeID }

type storeReq struct{ File, Data string }

type fetchReq struct{ File string }

// ErrNoDataNodes is returned when allocation cannot find a candidate.
var ErrNoDataNodes = errors.New("dfs: no datanode available")

// ErrNotFound is returned for unknown files.
var ErrNotFound = errors.New("dfs: file not found")

// ErrWriteFailed is returned when the client exhausts its placement
// retries — the HDFS-1384 give-up-after-five behaviour.
var ErrWriteFailed = errors.New("dfs: write failed after placement retries")

// MaxPlacementRetries is HDFS's pipeline-recovery retry budget ("the
// process repeats five times before the client gives up").
const MaxPlacementRetries = 5

// Config configures the file system.
type Config struct {
	// NameNode is the metadata server's node.
	NameNode netsim.NodeID
	// Racks maps each DataNode to its rack.
	Racks map[netsim.NodeID]string
	// CrossRackRetry makes allocation switch racks once a node from a
	// rack has been excluded — the fix for HDFS-1384. Off by default:
	// rack-aware placement prefers the rack it already chose.
	CrossRackRetry bool
	// HeartbeatInterval is the DataNode liveness period.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is missed periods before a DataNode is dead.
	HeartbeatMisses int
	// RPCTimeout bounds data-path calls.
	RPCTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 10 * time.Millisecond
	}
	if c.HeartbeatMisses == 0 {
		c.HeartbeatMisses = 3
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Millisecond
	}
	return c
}

// DataNodes returns the configured DataNode IDs in sorted order.
func (c Config) DataNodes() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(c.Racks))
	for id := range c.Racks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------
// NameNode
// ---------------------------------------------------------------------

// NameNode is the metadata server.
type NameNode struct {
	cfg Config
	ep  *transport.Endpoint

	mu        sync.Mutex
	lastHeard map[netsim.NodeID]time.Time
	files     map[string][]netsim.NodeID // file -> committed replica nodes
	stopped   bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewNameNode creates the NameNode, unstarted.
func NewNameNode(n *netsim.Network, cfg Config) *NameNode {
	cfg = cfg.withDefaults()
	nn := &NameNode{
		cfg:       cfg,
		ep:        transport.NewEndpoint(n, cfg.NameNode),
		lastHeard: make(map[netsim.NodeID]time.Time),
		files:     make(map[string][]netsim.NodeID),
		stopCh:    make(chan struct{}),
	}
	now := time.Now()
	for id := range cfg.Racks {
		nn.lastHeard[id] = now
	}
	nn.ep.DefaultTimeout = cfg.RPCTimeout
	nn.ep.Handle(mAllocate, nn.onAllocate)
	nn.ep.Handle(mCommit, nn.onCommit)
	nn.ep.Handle(mLocations, nn.onLocations)
	nn.ep.Handle(mHealth, nn.onHealth)
	nn.ep.Handle(mHeartbeat, nn.onHeartbeat)
	return nn
}

// Start is a no-op (the NameNode is passive); present for symmetry.
func (nn *NameNode) Start() {}

// Stop detaches the NameNode.
func (nn *NameNode) Stop() {
	nn.mu.Lock()
	if nn.stopped {
		nn.mu.Unlock()
		return
	}
	nn.stopped = true
	nn.mu.Unlock()
	close(nn.stopCh)
	nn.wg.Wait()
	nn.ep.Close()
}

func (nn *NameNode) healthyLocked() []netsim.NodeID {
	cutoff := time.Duration(nn.cfg.HeartbeatMisses) * nn.cfg.HeartbeatInterval
	now := time.Now()
	var out []netsim.NodeID
	for _, id := range nn.cfg.DataNodes() {
		if now.Sub(nn.lastHeard[id]) <= cutoff {
			out = append(out, id)
		}
	}
	return out
}

// Healthy returns the DataNodes the NameNode currently believes are
// alive. Under a simplex partition this includes nodes that cannot
// actually serve anything (HDFS-577).
func (nn *NameNode) Healthy() []netsim.NodeID {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	return nn.healthyLocked()
}

func (nn *NameNode) onHeartbeat(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(hbMsg)
	if !ok {
		return nil, errors.New("bad heartbeat")
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.lastHeard[msg.Node] = time.Now()
	return nil, nil
}

// onAllocate picks a DataNode for a write. The flawed rack-aware
// policy sticks with the rack of its first (healthy, lowest-ID)
// choice, even when the client has excluded nodes from that rack.
func (nn *NameNode) onAllocate(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(allocateReq)
	if !ok {
		return nil, errors.New("bad allocate")
	}
	excluded := make(map[netsim.NodeID]bool, len(req.Excluded))
	for _, id := range req.Excluded {
		excluded[id] = true
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	healthy := nn.healthyLocked()
	if len(healthy) == 0 {
		return nil, ErrNoDataNodes
	}
	var candidates []netsim.NodeID
	if nn.cfg.CrossRackRetry && len(req.Excluded) > 0 {
		// Fixed behaviour: after a reported failure, avoid the racks
		// of every excluded node entirely.
		badRacks := make(map[string]bool)
		for id := range excluded {
			badRacks[nn.cfg.Racks[id]] = true
		}
		for _, id := range healthy {
			if !excluded[id] && !badRacks[nn.cfg.Racks[id]] {
				candidates = append(candidates, id)
			}
		}
	} else {
		// Flawed behaviour: pick the preferred rack (that of the first
		// healthy node) and only offer nodes from it.
		prefRack := nn.cfg.Racks[healthy[0]]
		for _, id := range healthy {
			if !excluded[id] && nn.cfg.Racks[id] == prefRack {
				candidates = append(candidates, id)
			}
		}
		// HDFS-1384: "will likely suggest another node from the same
		// rack". If the whole preferred rack is excluded, it keeps
		// suggesting excluded-rack nodes' peers — i.e. nothing else —
		// so allocation fails only when the rack is exhausted of
		// distinct nodes; then it re-offers excluded ones.
		if len(candidates) == 0 {
			for _, id := range healthy {
				if nn.cfg.Racks[id] == prefRack {
					candidates = append(candidates, id)
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoDataNodes
	}
	return candidates[0], nil
}

func (nn *NameNode) onCommit(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(commitReq)
	if !ok {
		return nil, errors.New("bad commit")
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.files[req.File] = append(nn.files[req.File], req.Node)
	return nil, nil
}

func (nn *NameNode) onLocations(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(locationsReq)
	if !ok {
		return nil, errors.New("bad locations")
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	locs, exists := nn.files[req.File]
	if !exists {
		return nil, ErrNotFound
	}
	return append([]netsim.NodeID(nil), locs...), nil
}

func (nn *NameNode) onHealth(netsim.NodeID, any) (any, error) {
	return nn.Healthy(), nil
}

// ---------------------------------------------------------------------
// DataNode
// ---------------------------------------------------------------------

// DataNode stores chunks and heartbeats the NameNode.
type DataNode struct {
	cfg Config
	id  netsim.NodeID
	ep  *transport.Endpoint

	mu      sync.Mutex
	chunks  map[string]string
	stopped bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewDataNode creates a DataNode, unstarted.
func NewDataNode(n *netsim.Network, id netsim.NodeID, cfg Config) *DataNode {
	cfg = cfg.withDefaults()
	dn := &DataNode{
		cfg:    cfg,
		id:     id,
		ep:     transport.NewEndpoint(n, id),
		chunks: make(map[string]string),
		stopCh: make(chan struct{}),
	}
	dn.ep.DefaultTimeout = cfg.RPCTimeout
	dn.ep.Handle(mStore, dn.onStore)
	dn.ep.Handle(mFetch, dn.onFetch)
	return dn
}

// ID returns the DataNode's node ID.
func (dn *DataNode) ID() netsim.NodeID { return dn.id }

// Start launches the heartbeat loop.
func (dn *DataNode) Start() {
	dn.wg.Add(1)
	go dn.heartbeatLoop()
}

// Stop halts the DataNode.
func (dn *DataNode) Stop() {
	dn.mu.Lock()
	if dn.stopped {
		dn.mu.Unlock()
		return
	}
	dn.stopped = true
	dn.mu.Unlock()
	close(dn.stopCh)
	dn.wg.Wait()
	dn.ep.Close()
}

func (dn *DataNode) heartbeatLoop() {
	defer dn.wg.Done()
	t := time.NewTicker(dn.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-dn.stopCh:
			return
		case <-t.C:
			_ = dn.ep.Notify(dn.cfg.NameNode, mHeartbeat, hbMsg{Node: dn.id})
		}
	}
}

func (dn *DataNode) onStore(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(storeReq)
	if !ok {
		return nil, errors.New("bad store")
	}
	dn.mu.Lock()
	defer dn.mu.Unlock()
	dn.chunks[req.File] = req.Data
	return nil, nil
}

func (dn *DataNode) onFetch(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(fetchReq)
	if !ok {
		return nil, errors.New("bad fetch")
	}
	dn.mu.Lock()
	defer dn.mu.Unlock()
	data, exists := dn.chunks[req.File]
	if !exists {
		return nil, ErrNotFound
	}
	return data, nil
}

// HasChunk reports whether the DataNode stores the file (for tests).
func (dn *DataNode) HasChunk(file string) bool {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	_, ok := dn.chunks[file]
	return ok
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

// Client writes and reads files.
type Client struct {
	cfg     Config
	ep      *transport.Endpoint
	timeout time.Duration

	mu       sync.Mutex
	attempts int // placement attempts used by the last Write
}

// NewClient attaches a DFS client.
func NewClient(n *netsim.Network, id netsim.NodeID, cfg Config) *Client {
	return &Client{cfg: cfg.withDefaults(), ep: transport.NewEndpoint(n, id), timeout: 100 * time.Millisecond}
}

// ID returns the client's node ID.
func (c *Client) ID() netsim.NodeID { return c.ep.ID() }

// Close detaches the client.
func (c *Client) Close() { c.ep.Close() }

// LastWriteAttempts reports how many placement attempts the most
// recent Write used — the observable performance degradation of
// HDFS-1384 and HDFS-577.
func (c *Client) LastWriteAttempts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts
}

// Write stores a file: ask the NameNode for a DataNode, push the
// chunk, report failures, retry with exclusions up to the budget.
func (c *Client) Write(file, data string) error {
	var excluded []netsim.NodeID
	attempts := 0
	defer func() {
		c.mu.Lock()
		c.attempts = attempts
		c.mu.Unlock()
	}()
	for attempts < MaxPlacementRetries {
		attempts++
		resp, err := c.ep.Call(c.cfg.NameNode, mAllocate, allocateReq{File: file, Excluded: excluded}, c.timeout)
		if err != nil {
			return fmt.Errorf("dfs: allocate: %w", err)
		}
		node, _ := resp.(netsim.NodeID)
		if _, err := c.ep.Call(node, mStore, storeReq{File: file, Data: data}, c.timeout); err != nil {
			// Unreachable DataNode: exclude it and ask again.
			excluded = append(excluded, node)
			continue
		}
		if _, err := c.ep.Call(c.cfg.NameNode, mCommit, commitReq{File: file, Node: node}, c.timeout); err != nil {
			return fmt.Errorf("dfs: commit: %w", err)
		}
		return nil
	}
	return ErrWriteFailed
}

// Read fetches a file by resolving its locations at the NameNode and
// trying each replica.
func (c *Client) Read(file string) (string, error) {
	resp, err := c.ep.Call(c.cfg.NameNode, mLocations, locationsReq{File: file}, c.timeout)
	if err != nil {
		return "", err
	}
	locs, _ := resp.([]netsim.NodeID)
	var lastErr error = ErrNotFound
	for _, node := range locs {
		data, err := c.ep.Call(node, mFetch, fetchReq{File: file}, c.timeout)
		if err == nil {
			s, _ := data.(string)
			return s, nil
		}
		lastErr = err
	}
	return "", fmt.Errorf("dfs: all replicas unreachable: %w", lastErr)
}

// Health asks the NameNode which DataNodes it believes are alive.
func (c *Client) Health() ([]netsim.NodeID, error) {
	resp, err := c.ep.Call(c.cfg.NameNode, mHealth, nil, c.timeout)
	if err != nil {
		return nil, err
	}
	ids, _ := resp.([]netsim.NodeID)
	return ids, nil
}

// IsWriteFailed reports whether err is the exhausted-retries failure.
func IsWriteFailed(err error) bool {
	if errors.Is(err, ErrWriteFailed) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == ErrWriteFailed.Error()
}
