// Package dfs implements an HDFS/MooseFS-style distributed file
// system: a NameNode holding the namespace and block locations,
// DataNodes storing chunks and reporting liveness by heartbeat, and a
// pipeline-writing client.
//
// Three studied failures live here:
//
//   - HDFS-1384: rack-aware placement keeps suggesting DataNodes from
//     the same rack the client cannot reach across a partial partition;
//     the client gives up after five attempts.
//   - HDFS-577: a simplex partition lets a DataNode send heartbeats but
//     not receive requests, so the NameNode keeps scheduling work onto a
//     node nobody can use.
//   - MooseFS #131/#132: a partial partition between the client and a
//     chunk server makes the file system look inconsistent to the
//     client — the metadata says the file exists, but reads fail.
package dfs

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// RPC method names.
const (
	mAllocate  = "dfs.allocate"
	mCommit    = "dfs.commit"
	mLocations = "dfs.locations"
	mHealth    = "dfs.health"
	mHeartbeat = "dfs.heartbeat"
	mStore     = "dfs.store"
	mFetch     = "dfs.fetch"
)

type allocateReq struct {
	File     string
	Excluded []netsim.NodeID
}

type commitReq struct {
	File string
	Node netsim.NodeID
	// Ver is the client-assigned write version. Commits install the
	// version's replica set atomically: a newer version replaces the
	// older one's locations, and a stale commit arriving late (a delayed
	// or retried packet) is ignored, so a reordered pipeline cannot
	// resurrect overwritten locations.
	Ver uint64
}

type locationsReq struct{ File string }

// locationsResp carries the committed replica set and the version the
// reader must fetch, so reads can never observe the staged chunks of an
// uncommitted (possibly failed) pipeline write.
type locationsResp struct {
	Nodes []netsim.NodeID
	Ver   uint64
}

type hbMsg struct{ Node netsim.NodeID }

type storeReq struct {
	File string
	Ver  uint64
	Data string
	// Sum is the client-computed end-to-end checksum of Data. It is
	// stored verbatim beside whatever bytes actually hit the disk, so a
	// torn write (bytes truncated after the ack) is detectable by any
	// reader that bothers to verify — HDFS's client-side block
	// checksum.
	Sum uint32
}

// fetchResp returns the stored bytes with the checksum recorded at
// store time. A torn replica returns truncated bytes under the original
// checksum; only checksum-verifying clients notice.
type fetchResp struct {
	Data string
	Sum  uint32
}

type fetchReq struct {
	File string
	Ver  uint64
}

// ErrNoDataNodes is returned when allocation cannot find a candidate.
var ErrNoDataNodes = errors.New("dfs: no datanode available")

// ErrNotFound is returned for unknown files.
var ErrNotFound = errors.New("dfs: file not found")

// ErrWriteFailed is returned when the client exhausts its placement
// retries — the HDFS-1384 give-up-after-five behaviour.
var ErrWriteFailed = errors.New("dfs: write failed after placement retries")

// ErrCorrupt is returned when a fetched chunk fails checksum
// verification — the client-visible face of a torn disk write.
var ErrCorrupt = errors.New("dfs: chunk checksum mismatch")

// MaxPlacementRetries is HDFS's pipeline-recovery retry budget ("the
// process repeats five times before the client gives up").
const MaxPlacementRetries = 5

// checksum is the end-to-end chunk checksum (FNV-1a over the bytes).
func checksum(data string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(data))
	return h.Sum32()
}

// Config configures the file system.
type Config struct {
	// NameNode is the metadata server's node.
	NameNode netsim.NodeID
	// Racks maps each DataNode to its rack.
	Racks map[netsim.NodeID]string
	// CrossRackRetry makes allocation switch racks once a node from a
	// rack has been excluded — the fix for HDFS-1384. Off by default:
	// rack-aware placement prefers the rack it already chose.
	CrossRackRetry bool
	// HeartbeatInterval is the DataNode liveness period.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is missed periods before a DataNode is dead.
	HeartbeatMisses int
	// RPCTimeout bounds data-path calls.
	RPCTimeout time.Duration
	// ReplicaCount is how many DataNodes a Write must commit to before
	// acknowledging. The default 1 is the flawed single-replica
	// pipeline: one torn or lost disk loses the acknowledged data. The
	// safe variant sets 2, so a durability claim survives any single
	// disk fault.
	ReplicaCount int
	// VerifyChecksums makes reads verify each replica's end-to-end
	// checksum, skip corrupt replicas, and read-repair them from a good
	// copy — the hardening that turns a torn disk write from a silent
	// dirty read into a recovered replica.
	VerifyChecksums bool
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 10 * time.Millisecond
	}
	if c.HeartbeatMisses == 0 {
		c.HeartbeatMisses = 3
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Millisecond
	}
	if c.ReplicaCount == 0 {
		c.ReplicaCount = 1
	}
	return c
}

// DataNodes returns the configured DataNode IDs in sorted order.
func (c Config) DataNodes() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(c.Racks))
	for id := range c.Racks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------
// NameNode
// ---------------------------------------------------------------------

// fileEntry is one committed file: the replica set of its newest
// committed version.
type fileEntry struct {
	ver   uint64
	nodes []netsim.NodeID
}

// NameNode is the metadata server.
type NameNode struct {
	cfg Config
	ep  *transport.Endpoint
	clk clock.Clock

	mu        sync.Mutex
	lastHeard map[netsim.NodeID]time.Time
	files     map[string]*fileEntry // file -> newest committed version
	stopped   bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewNameNode creates the NameNode, unstarted.
func NewNameNode(n *netsim.Network, cfg Config) *NameNode {
	cfg = cfg.withDefaults()
	nn := &NameNode{
		cfg:       cfg,
		ep:        transport.NewEndpoint(n, cfg.NameNode),
		clk:       n.ClockFor(cfg.NameNode),
		lastHeard: make(map[netsim.NodeID]time.Time),
		files:     make(map[string]*fileEntry),
		stopCh:    make(chan struct{}),
	}
	now := nn.clk.Now()
	for id := range cfg.Racks {
		nn.lastHeard[id] = now
	}
	nn.ep.DefaultTimeout = cfg.RPCTimeout
	nn.ep.Handle(mAllocate, nn.onAllocate)
	nn.ep.Handle(mCommit, nn.onCommit)
	nn.ep.Handle(mLocations, nn.onLocations)
	nn.ep.Handle(mHealth, nn.onHealth)
	nn.ep.Handle(mHeartbeat, nn.onHeartbeat)
	return nn
}

// Start is a no-op (the NameNode is passive); present for symmetry.
func (nn *NameNode) Start() {}

// Stop detaches the NameNode.
func (nn *NameNode) Stop() {
	nn.mu.Lock()
	if nn.stopped {
		nn.mu.Unlock()
		return
	}
	nn.stopped = true
	nn.mu.Unlock()
	close(nn.stopCh)
	nn.wg.Wait()
	nn.ep.Close()
}

func (nn *NameNode) healthyLocked() []netsim.NodeID {
	cutoff := time.Duration(nn.cfg.HeartbeatMisses) * nn.cfg.HeartbeatInterval
	now := nn.clk.Now()
	var out []netsim.NodeID
	for _, id := range nn.cfg.DataNodes() {
		if now.Sub(nn.lastHeard[id]) <= cutoff {
			out = append(out, id)
		}
	}
	return out
}

// Healthy returns the DataNodes the NameNode currently believes are
// alive. Under a simplex partition this includes nodes that cannot
// actually serve anything (HDFS-577).
func (nn *NameNode) Healthy() []netsim.NodeID {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	return nn.healthyLocked()
}

func (nn *NameNode) onHeartbeat(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(hbMsg)
	if !ok {
		return nil, errors.New("bad heartbeat")
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.lastHeard[msg.Node] = nn.clk.Now()
	return nil, nil
}

// onAllocate picks a DataNode for a write. The flawed rack-aware
// policy sticks with the rack of its first (healthy, lowest-ID)
// choice, even when the client has excluded nodes from that rack.
func (nn *NameNode) onAllocate(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(allocateReq)
	if !ok {
		return nil, errors.New("bad allocate")
	}
	excluded := make(map[netsim.NodeID]bool, len(req.Excluded))
	for _, id := range req.Excluded {
		excluded[id] = true
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	healthy := nn.healthyLocked()
	if len(healthy) == 0 {
		return nil, ErrNoDataNodes
	}
	var candidates []netsim.NodeID
	if nn.cfg.CrossRackRetry && len(req.Excluded) > 0 {
		// Fixed behaviour: after a reported failure, avoid the racks
		// of every excluded node entirely.
		badRacks := make(map[string]bool)
		for id := range excluded {
			badRacks[nn.cfg.Racks[id]] = true
		}
		for _, id := range healthy {
			if !excluded[id] && !badRacks[nn.cfg.Racks[id]] {
				candidates = append(candidates, id)
			}
		}
	} else {
		// Flawed behaviour: pick the preferred rack (that of the first
		// healthy node) and only offer nodes from it.
		prefRack := nn.cfg.Racks[healthy[0]]
		for _, id := range healthy {
			if !excluded[id] && nn.cfg.Racks[id] == prefRack {
				candidates = append(candidates, id)
			}
		}
		// HDFS-1384: "will likely suggest another node from the same
		// rack". If the whole preferred rack is excluded, it keeps
		// suggesting excluded-rack nodes' peers — i.e. nothing else —
		// so allocation fails only when the rack is exhausted of
		// distinct nodes; then it re-offers excluded ones.
		if len(candidates) == 0 {
			for _, id := range healthy {
				if nn.cfg.Racks[id] == prefRack {
					candidates = append(candidates, id)
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoDataNodes
	}
	return candidates[0], nil
}

func (nn *NameNode) onCommit(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(commitReq)
	if !ok {
		return nil, errors.New("bad commit")
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	e := nn.files[req.File]
	switch {
	case e == nil || req.Ver > e.ver:
		nn.files[req.File] = &fileEntry{ver: req.Ver, nodes: []netsim.NodeID{req.Node}}
	case req.Ver == e.ver:
		e.nodes = append(e.nodes, req.Node)
	default:
		// Stale commit (delayed packet of an older write): ignore.
	}
	return nil, nil
}

func (nn *NameNode) onLocations(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(locationsReq)
	if !ok {
		return nil, errors.New("bad locations")
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	e, exists := nn.files[req.File]
	if !exists {
		return nil, ErrNotFound
	}
	return locationsResp{Nodes: append([]netsim.NodeID(nil), e.nodes...), Ver: e.ver}, nil
}

func (nn *NameNode) onHealth(netsim.NodeID, any) (any, error) {
	return nn.Healthy(), nil
}

// ---------------------------------------------------------------------
// DataNode
// ---------------------------------------------------------------------

// chunkData is one stored chunk version: the bytes that actually made
// it to disk plus the checksum recorded from the writer's request.
// Under a torn-write fault the two disagree.
type chunkData struct {
	data string
	sum  uint32
}

// Disk-fault modes for SetDiskFault.
const (
	// DiskLost acks stores without persisting anything: the bytes are
	// simply gone at read time (a write-back cache that never flushed).
	DiskLost = "lost"
	// DiskTorn acks stores but truncates the bytes, keeping the
	// writer's checksum — a partial sector write behind a successful
	// ack.
	DiskTorn = "torn"
)

// DataNode stores chunks and heartbeats the NameNode.
type DataNode struct {
	cfg Config
	id  netsim.NodeID
	ep  *transport.Endpoint

	mu       sync.Mutex
	chunks   map[string]chunkData
	diskMode string // "", DiskLost, or DiskTorn
	stopped  bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewDataNode creates a DataNode, unstarted.
func NewDataNode(n *netsim.Network, id netsim.NodeID, cfg Config) *DataNode {
	cfg = cfg.withDefaults()
	dn := &DataNode{
		cfg:    cfg,
		id:     id,
		ep:     transport.NewEndpoint(n, id),
		chunks: make(map[string]chunkData),
		stopCh: make(chan struct{}),
	}
	dn.ep.DefaultTimeout = cfg.RPCTimeout
	dn.ep.Handle(mStore, dn.onStore)
	dn.ep.Handle(mFetch, dn.onFetch)
	return dn
}

// ID returns the DataNode's node ID.
func (dn *DataNode) ID() netsim.NodeID { return dn.id }

// Start launches the heartbeat loop. The ticker is created here, on
// the deploying goroutine, so that under a virtual clock the timer
// creation order follows deployment order (the determinism rule).
func (dn *DataNode) Start() {
	dn.wg.Add(1)
	t := dn.ep.Clock().NewTicker(dn.cfg.HeartbeatInterval)
	go dn.heartbeatLoop(t)
}

// Stop halts the DataNode.
func (dn *DataNode) Stop() {
	dn.mu.Lock()
	if dn.stopped {
		dn.mu.Unlock()
		return
	}
	dn.stopped = true
	dn.mu.Unlock()
	close(dn.stopCh)
	dn.wg.Wait()
	dn.ep.Close()
}

func (dn *DataNode) heartbeatLoop(t clock.Ticker) {
	defer dn.wg.Done()
	defer t.Stop()
	clock.TickLoop(dn.ep.Clock(), t, dn.stopCh, func() {
		_ = dn.ep.Notify(dn.cfg.NameNode, mHeartbeat, hbMsg{Node: dn.id})
	})
}

// chunkKey names one stored chunk version. Chunks are immutable once
// written — a pipeline write stages its data under its own version, so
// readers of the committed version can never observe the bytes of an
// uncommitted (possibly abandoned) write.
func chunkKey(file string, ver uint64) string { return fmt.Sprintf("%s#%d", file, ver) }

// SetDiskFault installs (mode DiskLost or DiskTorn) or clears (mode "")
// a disk fault: subsequent stores ack as usual, but the bytes are lost
// or torn. The fault is invisible at store time — exactly the
// acknowledged-then-gone write the paper's durability findings hinge
// on — and only surfaces when a reader fetches the chunk.
func (dn *DataNode) SetDiskFault(mode string) {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	dn.diskMode = mode
}

func (dn *DataNode) onStore(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(storeReq)
	if !ok {
		return nil, errors.New("bad store")
	}
	dn.mu.Lock()
	defer dn.mu.Unlock()
	switch dn.diskMode {
	case DiskLost:
		// Ack without persisting: the chunk never reaches disk.
	case DiskTorn:
		dn.chunks[chunkKey(req.File, req.Ver)] = chunkData{
			data: req.Data[:len(req.Data)/2], sum: req.Sum}
	default:
		dn.chunks[chunkKey(req.File, req.Ver)] = chunkData{data: req.Data, sum: req.Sum}
	}
	return nil, nil
}

func (dn *DataNode) onFetch(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(fetchReq)
	if !ok {
		return nil, errors.New("bad fetch")
	}
	dn.mu.Lock()
	defer dn.mu.Unlock()
	c, exists := dn.chunks[chunkKey(req.File, req.Ver)]
	if !exists {
		return nil, ErrNotFound
	}
	return fetchResp{Data: c.data, Sum: c.sum}, nil
}

// HasChunk reports whether the DataNode stores any version of the file
// (for tests).
func (dn *DataNode) HasChunk(file string) bool {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	prefix := file + "#"
	for key := range dn.chunks {
		if strings.HasPrefix(key, prefix) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

// Client writes and reads files.
type Client struct {
	cfg     Config
	ep      *transport.Endpoint
	timeout time.Duration

	mu       sync.Mutex
	attempts int    // placement attempts used by the last Write
	ver      uint64 // monotonically increasing write version
}

// NewClient attaches a DFS client.
func NewClient(n *netsim.Network, id netsim.NodeID, cfg Config) *Client {
	return &Client{cfg: cfg.withDefaults(), ep: transport.NewEndpoint(n, id), timeout: 100 * time.Millisecond}
}

// ID returns the client's node ID.
func (c *Client) ID() netsim.NodeID { return c.ep.ID() }

// Close detaches the client.
func (c *Client) Close() { c.ep.Close() }

// LastWriteAttempts reports how many placement attempts the most
// recent Write used — the observable performance degradation of
// HDFS-1384 and HDFS-577.
func (c *Client) LastWriteAttempts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts
}

// NewVersion assigns the next write version. A pipeline write stages
// and commits under one version, so stale or abandoned pipelines can
// never shadow a newer committed write. The low bits carry a salt
// derived from the client's node ID so distinct clients' counters do
// not mint equal versions — concurrent writers produce distinct
// versions whose order the NameNode resolves, rather than a merged
// replica set with divergent data.
func (c *Client) NewVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ver++
	h := fnv.New32a()
	h.Write([]byte(c.ep.ID()))
	return c.ver<<16 | uint64(h.Sum32()&0xffff)
}

// Allocate asks the NameNode for a DataNode to place a chunk on,
// reporting the nodes the client already found unreachable.
func (c *Client) Allocate(file string, excluded []netsim.NodeID) (netsim.NodeID, error) {
	resp, err := c.ep.Call(c.cfg.NameNode, mAllocate, allocateReq{File: file, Excluded: excluded}, c.timeout)
	if err != nil {
		return "", err
	}
	node, _ := resp.(netsim.NodeID)
	return node, nil
}

// Store pushes one version of a chunk to a DataNode, stamped with its
// end-to-end checksum.
func (c *Client) Store(node netsim.NodeID, file string, ver uint64, data string) error {
	_, err := c.ep.Call(node, mStore,
		storeReq{File: file, Ver: ver, Data: data, Sum: checksum(data)}, c.timeout)
	return err
}

// Commit records the stored replica at the NameNode, making the
// version readable. A transport failure is marked maybe-executed: the
// commit can have been applied with only the reply lost — the partial
// pipeline write whose ambiguity the history checkers account for.
func (c *Client) Commit(file string, node netsim.NodeID, ver uint64) error {
	if _, err := c.ep.Call(c.cfg.NameNode, mCommit, commitReq{File: file, Node: node, Ver: ver}, c.timeout); err != nil {
		return transport.MarkMaybeExecuted(fmt.Errorf("dfs: commit: %w", err))
	}
	return nil
}

// Locations resolves the committed replica set and version of a file.
func (c *Client) Locations(file string) ([]netsim.NodeID, uint64, error) {
	resp, err := c.ep.Call(c.cfg.NameNode, mLocations, locationsReq{File: file}, c.timeout)
	if err != nil {
		return nil, 0, err
	}
	lr, _ := resp.(locationsResp)
	return lr.Nodes, lr.Ver, nil
}

// Fetch reads one version of a chunk from a DataNode. When the client
// verifies checksums, a replica whose stored bytes do not match the
// checksum recorded at store time returns ErrCorrupt instead of the
// torn data.
func (c *Client) Fetch(node netsim.NodeID, file string, ver uint64) (string, error) {
	resp, err := c.ep.Call(node, mFetch, fetchReq{File: file, Ver: ver}, c.timeout)
	if err != nil {
		return "", err
	}
	fr, _ := resp.(fetchResp)
	if c.cfg.VerifyChecksums && checksum(fr.Data) != fr.Sum {
		return "", fmt.Errorf("%w: node %s file %s", ErrCorrupt, node, file)
	}
	return fr.Data, nil
}

// Write stores a file: ask the NameNode for a DataNode, push the
// chunk, report failures, retry with exclusions up to the budget.
// With ReplicaCount > 1 the pipeline repeats until that many distinct
// replicas are stored and committed; an acknowledgment then means the
// data survives any single replica's disk. A write that committed some
// but not all of its replicas is reported ambiguous, not successful —
// the data may be readable, but the durability contract was not met.
func (c *Client) Write(file, data string) error {
	var excluded []netsim.NodeID
	attempts := 0
	ver := c.NewVersion()
	defer func() {
		c.mu.Lock()
		c.attempts = attempts
		c.mu.Unlock()
	}()
	committed := 0
	var allocErr error
	for attempts < MaxPlacementRetries && committed < c.cfg.ReplicaCount {
		attempts++
		node, err := c.Allocate(file, excluded)
		if err != nil {
			allocErr = fmt.Errorf("dfs: allocate: %w", err)
			break
		}
		if err := c.Store(node, file, ver, data); err != nil {
			// Unreachable DataNode: exclude it and ask again.
			excluded = append(excluded, node)
			continue
		}
		if err := c.Commit(file, node, ver); err != nil {
			// The commit may have been applied with only the reply
			// lost: the write as a whole is ambiguous.
			return err
		}
		committed++
		// A placed replica is excluded from further allocation so the
		// remaining replicas land on distinct nodes (distinct racks,
		// under the cross-rack policy).
		excluded = append(excluded, node)
	}
	switch {
	case committed >= c.cfg.ReplicaCount:
		return nil
	case committed > 0:
		// Partially replicated: readable, but not durably placed.
		return transport.MarkMaybeExecuted(
			fmt.Errorf("dfs: %w (committed %d of %d replicas)", ErrWriteFailed, committed, c.cfg.ReplicaCount))
	case allocErr != nil:
		return allocErr
	default:
		return ErrWriteFailed
	}
}

// ErrUnreachable is returned by Read when the namespace lists the file
// but no replica could serve its data — the client-visible
// inconsistency of MooseFS #131/#132.
var ErrUnreachable = errors.New("dfs: all replicas unreachable")

// Read fetches a file by resolving its locations at the NameNode and
// trying each replica. A checksum-verifying client skips corrupt and
// missing replicas and, once a good copy is found, read-repairs the bad
// ones from it — so one torn disk degrades a replica only until the
// next read touches it.
func (c *Client) Read(file string) (string, error) {
	locs, ver, err := c.Locations(file)
	if err != nil {
		return "", err
	}
	var lastErr error = ErrNotFound
	var bad []netsim.NodeID
	for _, node := range locs {
		data, err := c.Fetch(node, file, ver)
		if err == nil {
			if c.cfg.VerifyChecksums {
				for _, b := range bad {
					_ = c.Store(b, file, ver, data) // best-effort repair
				}
			}
			return data, nil
		}
		bad = append(bad, node)
		lastErr = err
	}
	return "", fmt.Errorf("%w: %w", ErrUnreachable, lastErr)
}

// Health asks the NameNode which DataNodes it believes are alive.
func (c *Client) Health() ([]netsim.NodeID, error) {
	resp, err := c.ep.Call(c.cfg.NameNode, mHealth, nil, c.timeout)
	if err != nil {
		return nil, err
	}
	ids, _ := resp.([]netsim.NodeID)
	return ids, nil
}

// IsWriteFailed reports whether err is the exhausted-retries failure.
func IsWriteFailed(err error) bool {
	if errors.Is(err, ErrWriteFailed) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == ErrWriteFailed.Error()
}

// IsNotFound reports whether err is the namespace's authoritative
// "no such file" answer (locally or from the NameNode).
func IsNotFound(err error) bool {
	if errors.Is(err, ErrUnreachable) {
		// Replicas were listed; whatever the last fetch said, the
		// namespace asserted existence.
		return false
	}
	if errors.Is(err, ErrNotFound) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == ErrNotFound.Error()
}

// IsUnreachable reports whether err is the metadata-says-exists but
// data-unreachable read failure (MooseFS #131/#132).
func IsUnreachable(err error) bool { return errors.Is(err, ErrUnreachable) }

// MaybeExecuted reports whether a failed operation may nevertheless
// have been applied: any transport-level attempt (the request can have
// executed with only the reply lost), including the partial pipeline
// commit Write marks explicitly.
func MaybeExecuted(err error) bool { return transport.MaybeExecuted(err) }
