package dfs

import (
	"testing"
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
)

func testConfig() Config {
	return Config{
		NameNode: "nn",
		Racks: map[netsim.NodeID]string{
			"d1": "rack0", "d2": "rack0",
			"d3": "rack1", "d4": "rack1",
		},
		HeartbeatInterval: 10 * time.Millisecond,
		// Generous miss budget so scheduler hiccups (e.g. under the
		// race detector) cannot fake a dead DataNode.
		HeartbeatMisses: 10,
		RPCTimeout:      30 * time.Millisecond,
	}
}

type fixture struct {
	eng *core.Engine
	sys *System
	cl  *Client
}

func deploy(t *testing.T, cfg Config) *fixture {
	t.Helper()
	eng := core.NewEngine(core.Options{})
	eng.AddNode(cfg.NameNode, core.RoleServer)
	for _, id := range cfg.DataNodes() {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("cl", core.RoleClient)
	sys := NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	f := &fixture{eng: eng, sys: sys, cl: NewClient(eng.Network(), "cl", cfg)}
	t.Cleanup(func() {
		f.cl.Close()
		eng.Shutdown()
	})
	return f
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.cl.Write("f1", "data"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if n := f.cl.LastWriteAttempts(); n != 1 {
		t.Fatalf("attempts = %d, want 1 on a healthy cluster", n)
	}
	got, err := f.cl.Read("f1")
	if err != nil || got != "data" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestReadMissingFile(t *testing.T) {
	f := deploy(t, testConfig())
	if _, err := f.cl.Read("ghost"); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestHDFS1384SameRackPlacementFailure: a partial partition separates
// the client from rack0 while the NameNode reaches everything. The
// flawed rack-aware allocator keeps offering rack0 nodes; after five
// attempts the client gives up even though rack1 is fully reachable.
func TestHDFS1384SameRackPlacementFailure(t *testing.T) {
	f := deploy(t, testConfig())
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"cl"}, []netsim.NodeID{"d1", "d2"}); err != nil {
		t.Fatal(err)
	}
	err := f.cl.Write("f1", "data")
	if !IsWriteFailed(err) {
		t.Fatalf("write = %v, want placement-retry exhaustion", err)
	}
	if n := f.cl.LastWriteAttempts(); n != MaxPlacementRetries {
		t.Fatalf("attempts = %d, want the full budget of %d", n, MaxPlacementRetries)
	}
}

// TestCrossRackRetryFixesPlacement is the control: with the fix the
// second attempt jumps to rack1 and the write succeeds.
func TestCrossRackRetryFixesPlacement(t *testing.T) {
	cfg := testConfig()
	cfg.CrossRackRetry = true
	f := deploy(t, cfg)
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"cl"}, []netsim.NodeID{"d1", "d2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.cl.Write("f1", "data"); err != nil {
		t.Fatalf("write with cross-rack retry: %v", err)
	}
	if n := f.cl.LastWriteAttempts(); n != 2 {
		t.Fatalf("attempts = %d, want 2 (one failure, one cross-rack success)", n)
	}
	// The chunk landed on rack1.
	if !f.sys.DataNode("d3").HasChunk("f1") && !f.sys.DataNode("d4").HasChunk("f1") {
		t.Fatal("chunk not on rack1")
	}
}

// TestHDFS577SimplexHeartbeatKeepsDeadNodeHealthy: a simplex partition
// lets d1 send heartbeats but not receive anything. The NameNode keeps
// believing d1 is healthy and keeps allocating to it; clients pay
// retries for every write (performance degradation).
func TestHDFS577SimplexHeartbeatKeepsDeadNodeHealthy(t *testing.T) {
	f := deploy(t, testConfig())
	// Traffic flows d1 -> everyone (heartbeats out), nothing -> d1.
	if _, err := f.eng.Simplex(
		[]netsim.NodeID{"d1"}, []netsim.NodeID{"nn", "d2", "d3", "d4", "cl"}); err != nil {
		t.Fatal(err)
	}
	f.eng.Sleep(100 * time.Millisecond) // many heartbeat periods
	// The NameNode still lists d1 healthy — the HDFS-577 confusion.
	healthy, err := f.cl.Health()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range healthy {
		if id == "d1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("healthy = %v; d1's one-way heartbeats must keep it listed", healthy)
	}
	// Writes still complete but pay a retry: degradation, not loss.
	if err := f.cl.Write("f1", "data"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if n := f.cl.LastWriteAttempts(); n < 2 {
		t.Fatalf("attempts = %d; expected retries caused by the unusable node", n)
	}
}

// TestMooseFSClientSeesInconsistentState: a partial partition between
// the client and the only replica holding a chunk makes the namespace
// claim a file the client cannot read (MooseFS #131).
func TestMooseFSClientSeesInconsistentState(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.cl.Write("f1", "data"); err != nil {
		t.Fatal(err)
	}
	// The chunk is on d1 (first allocation). Cut the client from d1
	// only; the NameNode still reaches it, so no re-replication
	// triggers.
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"cl"}, []netsim.NodeID{"d1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.cl.Read("f1"); err == nil {
		t.Fatal("read should fail: metadata says the file exists but no replica is reachable")
	}
	// Metadata still lists the file — the inconsistency the client sees.
	healthy, err := f.cl.Health()
	if err != nil || len(healthy) != 4 {
		t.Fatalf("health = %v, %v; NameNode view must be intact", healthy, err)
	}
}

// TestVersionedOverwriteReadsLatest: rewriting a file replaces its
// committed locations; reads always return the newest committed
// version even when the replica set moved.
func TestVersionedOverwriteReadsLatest(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.cl.Write("f1", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := f.cl.Write("f1", "v2"); err != nil {
		t.Fatal(err)
	}
	got, err := f.cl.Read("f1")
	if err != nil || got != "v2" {
		t.Fatalf("read = %q, %v; want the newest committed version", got, err)
	}
}

// TestStaleCommitIgnored: a commit carrying an older version than the
// committed one (a delayed packet of an overwritten write) must not
// replace the newer locations.
func TestStaleCommitIgnored(t *testing.T) {
	f := deploy(t, testConfig())
	v1 := f.cl.NewVersion()
	v2 := f.cl.NewVersion()
	if err := f.cl.Store("d3", "f1", v2, "new"); err != nil {
		t.Fatal(err)
	}
	if err := f.cl.Commit("f1", "d3", v2); err != nil {
		t.Fatal(err)
	}
	if err := f.cl.Store("d1", "f1", v1, "old"); err != nil {
		t.Fatal(err)
	}
	if err := f.cl.Commit("f1", "d1", v1); err != nil {
		t.Fatal(err)
	}
	got, err := f.cl.Read("f1")
	if err != nil || got != "new" {
		t.Fatalf("read = %q, %v; the stale commit must be ignored", got, err)
	}
}

// TestReadErrorClassification: a missing file is the namespace's
// authoritative answer; a listed file with no reachable replica is the
// MooseFS-style inconsistency, distinguishable by the client.
func TestReadErrorClassification(t *testing.T) {
	f := deploy(t, testConfig())
	if _, err := f.cl.Read("ghost"); !IsNotFound(err) || IsUnreachable(err) {
		t.Fatalf("missing file: err = %v; want IsNotFound and not IsUnreachable", err)
	}
	if err := f.cl.Write("f1", "data"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"cl"}, []netsim.NodeID{"d1"}); err != nil {
		t.Fatal(err)
	}
	_, err := f.cl.Read("f1")
	if !IsUnreachable(err) || IsNotFound(err) {
		t.Fatalf("unreachable replica: err = %v; want IsUnreachable and not IsNotFound", err)
	}
}

func TestCrashedDataNodeLeavesHealthyList(t *testing.T) {
	f := deploy(t, testConfig())
	f.eng.Crash("d1")
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		healthy := f.sys.NameNode().Healthy()
		for _, id := range healthy {
			if id == "d1" {
				return false
			}
		}
		return len(healthy) == 3
	})
	if !ok {
		t.Fatalf("healthy = %v; crashed node must drop out", f.sys.NameNode().Healthy())
	}
	// Writes route around the dead node on the first allocation.
	if err := f.cl.Write("f1", "data"); err != nil {
		t.Fatal(err)
	}
	if f.sys.DataNode("d1").HasChunk("f1") {
		t.Fatal("chunk allocated to a crashed node")
	}
}

// TestDiskLostLosesAckedWrite: a lying disk in lost mode acks the
// store without persisting anything. The flawed single-replica,
// no-checksum configuration acknowledges the write and then cannot
// serve it — the acked-then-gone gray failure.
func TestDiskLostLosesAckedWrite(t *testing.T) {
	f := deploy(t, testConfig())
	for _, id := range testConfig().DataNodes() {
		f.sys.DataNode(id).SetDiskFault(DiskLost)
	}
	if err := f.cl.Write("f1", "data"); err != nil {
		t.Fatalf("lying disk must ack the write, got %v", err)
	}
	if _, err := f.cl.Read("f1"); !IsUnreachable(err) {
		t.Fatalf("read = %v, want all-replicas-unreachable for the lost chunk", err)
	}
}

// TestDiskTornDirtyRead: torn mode keeps a truncated prefix. Without
// checksums the read succeeds and hands the client corrupt bytes — the
// dirty read the campaign's disk fault reproduces.
func TestDiskTornDirtyRead(t *testing.T) {
	f := deploy(t, testConfig())
	for _, id := range testConfig().DataNodes() {
		f.sys.DataNode(id).SetDiskFault(DiskTorn)
	}
	if err := f.cl.Write("f1", "payload"); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := f.cl.Read("f1")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got == "payload" {
		t.Fatal("torn disk returned intact data; the fault did nothing")
	}
}

// TestChecksumReplicaMasksTornDisk drives the safe configuration's
// defense by hand: one replica stored through a torn disk, one good.
// A verifying read condemns the corrupt copy by checksum, serves the
// good one, and read-repairs the bad replica in place.
func TestChecksumReplicaMasksTornDisk(t *testing.T) {
	cfg := testConfig()
	cfg.ReplicaCount = 2
	cfg.VerifyChecksums = true
	f := deploy(t, cfg)
	ver := f.cl.NewVersion()
	f.sys.DataNode("d1").SetDiskFault(DiskTorn)
	for _, node := range []netsim.NodeID{"d1", "d2"} {
		if err := f.cl.Store(node, "f1", ver, "payload"); err != nil {
			t.Fatalf("store %s: %v", node, err)
		}
		if err := f.cl.Commit("f1", node, ver); err != nil {
			t.Fatalf("commit %s: %v", node, err)
		}
	}
	f.sys.DataNode("d1").SetDiskFault("")
	got, err := f.cl.Read("f1")
	if err != nil || got != "payload" {
		t.Fatalf("verifying read = %q, %v; want the good replica's payload", got, err)
	}
	// The read repaired d1 from d2: a direct fetch from the formerly
	// torn replica now verifies.
	if got, err := f.cl.Fetch("d1", "f1", ver); err != nil || got != "payload" {
		t.Fatalf("post-repair fetch from d1 = %q, %v; want repaired payload", got, err)
	}
}
