package catalog

import (
	"neat/internal/core"
)

// Pct returns count as a percentage of total.
func Pct(count, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(count) / float64(total)
}

// Table1Row is one system's line in Table 1.
type Table1Row struct {
	System       string
	Consistency  string
	Failures     int
	Catastrophic int
}

// Table1 regenerates the studied-systems table.
func Table1(fs []*Failure) []Table1Row {
	counts := map[string]*Table1Row{}
	for _, s := range Systems() {
		counts[s.Name] = &Table1Row{System: s.Name, Consistency: s.Consistency}
	}
	for _, f := range fs {
		r := counts[f.System]
		r.Failures++
		if f.Catastrophic {
			r.Catastrophic++
		}
	}
	var out []Table1Row
	for _, s := range Systems() {
		out = append(out, *counts[s.Name])
	}
	return out
}

// DistRow is a generic labelled count/percentage row.
type DistRow struct {
	Label   string
	Count   int
	Percent float64
}

// Table2 regenerates the failure-impact distribution.
func Table2(fs []*Failure) []DistRow {
	counts := map[Impact]int{}
	for _, f := range fs {
		counts[f.Impact]++
	}
	var out []DistRow
	for _, i := range AllImpacts() {
		out = append(out, DistRow{Label: i.String(), Count: counts[i], Percent: Pct(counts[i], len(fs))})
	}
	return out
}

// CatastrophicShare returns the fraction of failures whose impact
// category is catastrophic (Table 2's 79.5% headline).
func CatastrophicShare(fs []*Failure) float64 {
	n := 0
	for _, f := range fs {
		if f.Impact.CatastrophicCategory() {
			n++
		}
	}
	return Pct(n, len(fs))
}

// Table3 regenerates the vulnerable-mechanism distribution. A failure
// can involve several mechanisms, so percentages sum above 100.
func Table3(fs []*Failure) []DistRow {
	counts := map[Mechanism]int{}
	for _, f := range fs {
		for _, m := range f.Mechanisms {
			counts[m]++
		}
	}
	var out []DistRow
	for _, m := range AllMechanisms() {
		out = append(out, DistRow{Label: m.String(), Count: counts[m], Percent: Pct(counts[m], len(fs))})
	}
	return out
}

// Table3ConfigBreakdown regenerates Table 3's configuration-change
// sub-rows, as percentages of all failures.
func Table3ConfigBreakdown(fs []*Failure) []DistRow {
	counts := map[ConfigSubtype]int{}
	for _, f := range fs {
		if f.ConfigSubtype != ConfigNone {
			counts[f.ConfigSubtype]++
		}
	}
	order := []ConfigSubtype{ConfigAddNode, ConfigRemoveNode, ConfigMembership, ConfigOther}
	var out []DistRow
	for _, c := range order {
		out = append(out, DistRow{Label: c.String(), Count: counts[c], Percent: Pct(counts[c], len(fs))})
	}
	return out
}

// Table4 regenerates the leader-election flaw distribution, as
// percentages of leader-election failures.
func Table4(fs []*Failure) []DistRow {
	total := 0
	counts := map[ElectionFlaw]int{}
	for _, f := range fs {
		if f.HasMechanism(LeaderElection) {
			total++
			counts[f.ElectionFlaw]++
		}
	}
	order := []ElectionFlaw{FlawOverlap, FlawBadLeader, FlawDoubleVote, FlawConflictingCriteria}
	var out []DistRow
	for _, fl := range order {
		out = append(out, DistRow{Label: fl.String(), Count: counts[fl], Percent: Pct(counts[fl], total)})
	}
	return out
}

// Table5 regenerates the client-access distribution.
func Table5(fs []*Failure) []DistRow {
	counts := map[ClientAccess]int{}
	for _, f := range fs {
		counts[f.ClientAccess]++
	}
	order := []ClientAccess{NoClientAccess, OneSideAccess, BothSidesAccess}
	var out []DistRow
	for _, a := range order {
		out = append(out, DistRow{Label: a.String(), Count: counts[a], Percent: Pct(counts[a], len(fs))})
	}
	return out
}

// Table6 regenerates the partition-type distribution.
func Table6(fs []*Failure) []DistRow {
	counts := map[core.PartitionType]int{}
	for _, f := range fs {
		counts[f.Partition]++
	}
	order := []core.PartitionType{core.CompletePartition, core.PartialPartition, core.SimplexPartition}
	labels := []string{"complete partition", "partial partition", "simplex partition"}
	var out []DistRow
	for i, p := range order {
		out = append(out, DistRow{Label: labels[i], Count: counts[p], Percent: Pct(counts[p], len(fs))})
	}
	return out
}

// Table7 regenerates the minimum-event-count distribution.
func Table7(fs []*Failure) []DistRow {
	counts := map[int]int{}
	for _, f := range fs {
		counts[clamp5(f.EventCount)]++
	}
	labels := map[int]string{
		1: "1 (just a network partition)", 2: "2", 3: "3", 4: "4", 5: "> 4",
	}
	var out []DistRow
	for _, k := range []int{1, 2, 3, 4, 5} {
		out = append(out, DistRow{Label: labels[k], Count: counts[k], Percent: Pct(counts[k], len(fs))})
	}
	return out
}

// Table8 regenerates the event-involvement distribution. The first
// row counts failures whose only event is the partition; the rest
// count membership, so percentages sum above 100.
func Table8(fs []*Failure) []DistRow {
	partitionOnly := 0
	counts := map[EventType]int{}
	for _, f := range fs {
		if f.EventCount == 1 {
			partitionOnly++
		}
		for _, e := range f.Events {
			if e != EvPartitionOnly {
				counts[e]++
			}
		}
	}
	out := []DistRow{{Label: EvPartitionOnly.String(), Count: partitionOnly, Percent: Pct(partitionOnly, len(fs))}}
	order := []EventType{EvWriteReq, EvReadReq, EvAcquire, EvAdminOp, EvDeleteReq, EvRelease, EvClusterReboot}
	for _, e := range order {
		out = append(out, DistRow{Label: e.String(), Count: counts[e], Percent: Pct(counts[e], len(fs))})
	}
	return out
}

// Table9 regenerates the ordering-characteristics distribution.
func Table9(fs []*Failure) []DistRow {
	counts := map[OrderingClass]int{}
	for _, f := range fs {
		counts[f.Ordering]++
	}
	order := []OrderingClass{PartitionNotFirst, OrderUnimportant, NaturalOrder, OtherOrder}
	var out []DistRow
	for _, o := range order {
		out = append(out, DistRow{Label: o.String(), Count: counts[o], Percent: Pct(counts[o], len(fs))})
	}
	return out
}

// Table10 regenerates the connectivity distribution.
func Table10(fs []*Failure) []DistRow {
	counts := map[Connectivity]int{}
	for _, f := range fs {
		counts[f.Connectivity]++
	}
	order := []Connectivity{AnyReplica, IsolateLeader, IsolateCentralService, IsolateSpecialRole, IsolateOther}
	var out []DistRow
	for _, c := range order {
		out = append(out, DistRow{Label: c.String(), Count: counts[c], Percent: Pct(counts[c], len(fs))})
	}
	return out
}

// Table11 regenerates the timing-constraint distribution.
func Table11(fs []*Failure) []DistRow {
	counts := map[TimingClass]int{}
	for _, f := range fs {
		counts[f.Timing]++
	}
	labels := map[TimingClass]string{
		Deterministic: "no timing constraints",
		FixedTiming:   "has timing constraints - known",
		BoundedTiming: "has timing constraints - unknown, but still can be tested",
		UnknownTiming: "nondeterministic",
	}
	order := []TimingClass{Deterministic, FixedTiming, BoundedTiming, UnknownTiming}
	var out []DistRow
	for _, t := range order {
		out = append(out, DistRow{Label: labels[t], Count: counts[t], Percent: Pct(counts[t], len(fs))})
	}
	return out
}

// Table12Row is one Table 12 line: flaw class share of tracker tickets
// plus mean resolution time.
type Table12Row struct {
	Label       string
	Count       int
	Percent     float64
	AvgDays     float64
	HasDuration bool
}

// Table12 regenerates the design/implementation-flaw distribution over
// issue-tracker failures.
func Table12(fs []*Failure) []Table12Row {
	total := 0
	counts := map[FlawClass]int{}
	days := map[FlawClass]int{}
	for _, f := range fs {
		if f.Source != SourceTracker {
			continue
		}
		total++
		counts[f.Flaw]++
		days[f.Flaw] += f.ResolutionDays
	}
	order := []FlawClass{DesignFlaw, ImplementationFlaw, Unresolved}
	var out []Table12Row
	for _, fl := range order {
		r := Table12Row{Label: fl.String(), Count: counts[fl], Percent: Pct(counts[fl], total)}
		if fl != Unresolved && counts[fl] > 0 {
			r.AvgDays = float64(days[fl]) / float64(counts[fl])
			r.HasDuration = true
		}
		out = append(out, r)
	}
	return out
}

// Table13 regenerates the nodes-to-reproduce distribution.
func Table13(fs []*Failure) []DistRow {
	counts := map[int]int{}
	for _, f := range fs {
		counts[f.Nodes]++
	}
	return []DistRow{
		{Label: "3 nodes", Count: counts[3], Percent: Pct(counts[3], len(fs))},
		{Label: "5 nodes", Count: counts[5], Percent: Pct(counts[5], len(fs))},
	}
}

// Finding aggregates for the numbered findings not covered by a table.
type Findings struct {
	SilentPct        float64 // Finding 2: ~90%
	LastingPct       float64 // Finding 3: ~21%
	SingleNodePct    float64 // Finding 9: ~88%
	NoOrOneSidePct   float64 // Intro: 64% need no or one-side access
	DeterministicPct float64 // ~62%
	SinglePartition  float64 // Finding 6 note: ~99% need one partition
}

// ComputeFindings derives the findings from the dataset.
func ComputeFindings(fs []*Failure) Findings {
	var silent, lasting, single, noOrOne, det, onePart int
	for _, f := range fs {
		if f.PartitionsRequired <= 1 {
			onePart++
		}
		if f.SilentFailure {
			silent++
		}
		if f.LeavesLastingDamage {
			lasting++
		}
		if f.SingleNodeIsolation {
			single++
		}
		if f.ClientAccess != BothSidesAccess {
			noOrOne++
		}
		if f.Timing == Deterministic {
			det++
		}
	}
	n := len(fs)
	return Findings{
		SilentPct:        Pct(silent, n),
		LastingPct:       Pct(lasting, n),
		SingleNodePct:    Pct(single, n),
		NoOrOneSidePct:   Pct(noOrOne, n),
		DeterministicPct: Pct(det, n),
		SinglePartition:  Pct(onePart, n),
	}
}

// Table14 returns the studied failures (Appendix A rows).
func Table14(fs []*Failure) []*Failure {
	var out []*Failure
	for _, f := range fs {
		if f.Source != SourceNEAT {
			out = append(out, f)
		}
	}
	return out
}

// Table15 returns the NEAT-discovered failures (Appendix B rows).
func Table15(fs []*Failure) []*Failure {
	var out []*Failure
	for _, f := range fs {
		if f.Source == SourceNEAT {
			out = append(out, f)
		}
	}
	return out
}
