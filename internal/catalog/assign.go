package catalog

// This file implements the deterministic quota assigner described in
// DESIGN.md. The paper publishes several failure attributes only as
// aggregate distributions (Tables 3-5, 7-10, 12-13 and Findings 2, 3,
// 9). The assigner gives every row concrete values such that the
// regenerated tables match the published aggregates exactly, while a
// set of semantic pins keeps the rows the paper discusses individually
// (Figure 2's VoltDB dirty read, Listing 1's Elasticsearch split
// brain, the RethinkDB membership change, ...) faithful to their
// published descriptions.

// Integer quotas over the 136 rows, derived from the published
// percentages (see catalog_test.go for the published-value assertions).
var (
	quotaEventCount = map[int]int{1: 17, 2: 19, 3: 58, 4: 19, 5: 23}

	quotaMechanism = map[Mechanism]int{
		LeaderElection:           54,
		ConfigChange:             27,
		DataConsolidation:        19,
		RequestRouting:           18,
		ReplicationProtocol:      17,
		PartitionReconfiguration: 16,
		Scheduling:               4,
		DataMigration:            5,
		SystemIntegration:        2,
	}

	// Table 3's configuration-change breakdown over the 27 rows:
	// adding 14 (10.3%), removing 5 (3.7%), membership 5 (3.7%),
	// other 3 (2.2%).
	quotaConfigSubtype = map[ConfigSubtype]int{
		ConfigAddNode:    14,
		ConfigRemoveNode: 5,
		ConfigMembership: 5,
		ConfigOther:      3,
	}

	quotaElectionFlaw = map[ElectionFlaw]int{
		FlawOverlap:             31,
		FlawBadLeader:           11,
		FlawDoubleVote:          10,
		FlawConflictingCriteria: 2,
	}

	quotaAccess = map[ClientAccess]int{
		NoClientAccess:  38,
		OneSideAccess:   49,
		BothSidesAccess: 49,
	}

	quotaEvents = map[EventType]int{
		EvWriteReq:      66,
		EvReadReq:       47,
		EvAcquire:       11,
		EvAdminOp:       11,
		EvDeleteReq:     6,
		EvRelease:       5,
		EvClusterReboot: 2,
	}

	quotaOrdering = map[OrderingClass]int{
		PartitionNotFirst: 22,
		OrderUnimportant:  38,
		NaturalOrder:      37,
		OtherOrder:        39,
	}

	quotaConnectivity = map[Connectivity]int{
		AnyReplica:            61,
		IsolateLeader:         49,
		IsolateCentralService: 12,
		IsolateSpecialRole:    5,
		IsolateOther:          9,
	}

	quotaNodes = map[int]int{3: 113, 5: 23}

	// Table 12 covers the 88 tracker rows only.
	quotaFlaw = map[FlawClass]int{
		DesignFlaw:         41,
		ImplementationFlaw: 28,
		Unresolved:         19,
	}

	// Findings 2, 3, 9.
	quotaLasting = 29 // 21% leave lasting damage
	quotaSilent  = 122
	quotaSingle  = 120

	// Mean resolution times (days) for Table 12.
	meanDesignDays = 205
	meanImplDays   = 81
)

// pin is a partial specification for rows the paper discusses.
type pin struct {
	mechanisms   []Mechanism
	flaw         ElectionFlaw
	access       ClientAccess
	hasAccess    bool
	eventCount   int
	events       []EventType
	ordering     OrderingClass
	hasOrdering  bool
	connectivity Connectivity
	hasConn      bool
	nodes        int
	lasting      bool
	hasLasting   bool
}

var pins = map[string]pin{
	// Figure 2: VoltDB dirty read — old leader serves a failed write.
	"ENG-10389": {
		mechanisms: []Mechanism{LeaderElection}, flaw: FlawOverlap,
		access: OneSideAccess, hasAccess: true,
		eventCount: 3, events: []EventType{EvWriteReq, EvReadReq},
		ordering: NaturalOrder, hasOrdering: true,
		connectivity: IsolateLeader, hasConn: true, nodes: 3,
	},
	// Listing 1: Elasticsearch intersecting split brain.
	"elastic-2488": {
		mechanisms: []Mechanism{LeaderElection}, flaw: FlawDoubleVote,
		access: BothSidesAccess, hasAccess: true,
		eventCount: 4, events: []EventType{EvWriteReq, EvReadReq},
		connectivity: IsolateLeader, hasConn: true, nodes: 3,
	},
	// MongoDB conflicting election criteria.
	"SERVER-14885": {
		mechanisms: []Mechanism{LeaderElection}, flaw: FlawConflictingCriteria,
		access: NoClientAccess, hasAccess: true,
		eventCount:   1,
		connectivity: IsolateLeader, hasConn: true, nodes: 3,
	},
	// RethinkDB configuration-change split brain (Section 4.4).
	"rethinkdb-5289": {
		mechanisms: []Mechanism{ConfigChange},
		access:     BothSidesAccess, hasAccess: true,
		eventCount: 4, events: []EventType{EvAdminOp, EvWriteReq},
		connectivity: IsolateOther, hasConn: true, nodes: 5,
	},
	// Figure 3: MapReduce double execution — no client access after
	// the partition.
	"MAPREDUCE-4819": {
		mechanisms: []Mechanism{Scheduling},
		access:     NoClientAccess, hasAccess: true,
		eventCount: 2, events: []EventType{EvWriteReq},
		connectivity: IsolateSpecialRole, hasConn: true, nodes: 3,
	},
	// HDFS rack-aware placement retry loop.
	"HDFS-1384": {
		mechanisms: []Mechanism{RequestRouting},
		access:     OneSideAccess, hasAccess: true,
		eventCount: 2, events: []EventType{EvWriteReq},
		connectivity: AnyReplica, hasConn: true, nodes: 3,
	},
	// Redis PSYNC backlog corruption: a partition alone corrupts the
	// log.
	"redis-3899": {
		mechanisms: []Mechanism{ReplicationProtocol},
		access:     NoClientAccess, hasAccess: true,
		eventCount:   1,
		connectivity: AnyReplica, hasConn: true, nodes: 3,
	},
	// RabbitMQ peer-discovery split: lasting independent clusters.
	"rabbitmq-1455": {
		mechanisms: []Mechanism{ConfigChange},
		access:     NoClientAccess, hasAccess: true,
		eventCount: 2, events: []EventType{EvAdminOp},
		connectivity: IsolateOther, hasConn: true, nodes: 3,
		lasting: true, hasLasting: true,
	},
	// ActiveMQ/ZooKeeper integration hang (Figure 6).
	"AMQ-7064": {
		mechanisms: []Mechanism{SystemIntegration},
		access:     OneSideAccess, hasAccess: true,
		eventCount: 2, events: []EventType{EvWriteReq},
		connectivity: IsolateLeader, hasConn: true, nodes: 3,
	},
	// Kafka leader serving while disconnected from ZooKeeper.
	"KAFKA-6173": {
		mechanisms:   []Mechanism{SystemIntegration},
		connectivity: IsolateCentralService, hasConn: true, nodes: 3,
	},
	// Hazelcast data loss on migration.
	"hazelcast-migration": {
		mechanisms: []Mechanism{DataMigration},
	},
	// Cassandra hinted-handoff sync hang: needs a second partition.
	"CASSANDRA-13562": {
		mechanisms: []Mechanism{DataMigration},
		access:     OneSideAccess, hasAccess: true,
		eventCount: 4, events: []EventType{EvWriteReq},
		nodes: 3,
	},
	// ZooKeeper txnlog/snapshot consolidation corruption.
	"ZOOKEEPER-2099": {
		mechanisms: []Mechanism{DataConsolidation},
	},
	// Ignite semaphore double locking (Figure 5): lasting damage.
	"IGNITE-9767": {
		mechanisms: []Mechanism{PartitionReconfiguration},
		access:     BothSidesAccess, hasAccess: true,
		eventCount: 3, events: []EventType{EvAcquire},
		ordering: OrderUnimportant, hasOrdering: true,
		connectivity: AnyReplica, hasConn: true, nodes: 3,
		lasting: true, hasLasting: true,
	},
}

// assign populates every non-transcribed attribute. It first applies
// the semantic pins, then deals the remaining quota out to the
// remaining rows in ID order, so the process is deterministic and the
// aggregates land exactly on the quotas.
func assign(fs []*Failure) {
	assignCatastrophic(fs)
	assignEventCount(fs)
	assignMechanisms(fs)
	assignConfigSubtypes(fs)
	assignElectionFlaws(fs)
	assignAccess(fs)
	assignEvents(fs)
	assignOrdering(fs)
	assignConnectivity(fs)
	assignNodes(fs)
	assignFlawAndResolution(fs)
	assignFindings(fs)
}

// assignCatastrophic distributes each system's Table 1 catastrophic
// quota: catastrophic-category impacts first (data loss before stale
// reads, which depend on the consistency promise), then performance
// rows if the quota demands it.
func assignCatastrophic(fs []*Failure) {
	for _, sys := range Systems() {
		quota := sys.CatastrophicQuota
		var rows []*Failure
		for _, f := range fs {
			if f.System == sys.Name {
				rows = append(rows, f)
			}
		}
		// Priority: hard catastrophic impacts, then stale/dirty reads,
		// then crashes, then the rest.
		rank := func(f *Failure) int {
			switch f.Impact {
			case DataLoss, DataCorruption, Reappearance, BrokenLocks, DataUnavailability:
				return 0
			case DirtyRead:
				return 1
			case StaleRead:
				return 2
			case SystemCrash:
				return 3
			default:
				return 4
			}
		}
		for pass := 0; pass <= 4 && quota > 0; pass++ {
			for _, f := range rows {
				if quota == 0 {
					break
				}
				if !f.Catastrophic && rank(f) == pass {
					f.Catastrophic = true
					quota--
				}
			}
		}
	}
}

func pinned(f *Failure) (pin, bool) {
	p, ok := pins[f.Ref]
	return p, ok
}

func assignEventCount(fs []*Failure) {
	remaining := copyIntMap(quotaEventCount)
	var rest []*Failure
	for _, f := range fs {
		if p, ok := pinned(f); ok && p.eventCount > 0 {
			f.EventCount = p.eventCount
			remaining[clamp5(p.eventCount)]--
			continue
		}
		rest = append(rest, f)
	}
	deal := dealList(remaining, []int{1, 2, 3, 4, 5})
	for i, f := range rest {
		f.EventCount = deal[i]
	}
}

func assignMechanisms(fs []*Failure) {
	remaining := copyMechMap(quotaMechanism)
	var rest []*Failure
	for _, f := range fs {
		if p, ok := pinned(f); ok && len(p.mechanisms) > 0 {
			f.Mechanisms = append([]Mechanism(nil), p.mechanisms...)
			for _, m := range p.mechanisms {
				remaining[m]--
			}
			continue
		}
		rest = append(rest, f)
	}
	order := AllMechanisms()
	// First pass: one mechanism per remaining row.
	var seq []Mechanism
	for _, m := range order {
		for i := 0; i < remaining[m]; i++ {
			seq = append(seq, m)
		}
	}
	for i, f := range rest {
		if i < len(seq) {
			f.Mechanisms = []Mechanism{seq[i]}
		} else {
			f.Mechanisms = []Mechanism{ReplicationProtocol}
		}
	}
	// Leftover memberships become second mechanisms, dealt from the
	// end of the sequence onto the earliest rows that lack them.
	if len(seq) > len(rest) {
		extra := seq[len(rest):]
		j := 0
		for _, m := range extra {
			for ; j < len(rest); j++ {
				if !rest[j].HasMechanism(m) {
					rest[j].Mechanisms = append(rest[j].Mechanisms, m)
					j++
					break
				}
			}
		}
	}
}

func assignConfigSubtypes(fs []*Failure) {
	remaining := map[ConfigSubtype]int{}
	for k, v := range quotaConfigSubtype {
		remaining[k] = v
	}
	var rest []*Failure
	for _, f := range fs {
		if !f.HasMechanism(ConfigChange) {
			f.ConfigSubtype = ConfigNone
			continue
		}
		switch f.Ref {
		case "rethinkdb-5289": // replica-set shrink: membership management
			f.ConfigSubtype = ConfigMembership
			remaining[ConfigMembership]--
		case "rabbitmq-1455": // peer discovery while joining: adding a node
			f.ConfigSubtype = ConfigAddNode
			remaining[ConfigAddNode]--
		default:
			rest = append(rest, f)
		}
	}
	order := []ConfigSubtype{ConfigAddNode, ConfigRemoveNode, ConfigMembership, ConfigOther}
	i := 0
	for _, sub := range order {
		for n := 0; n < remaining[sub] && i < len(rest); n++ {
			rest[i].ConfigSubtype = sub
			i++
		}
	}
	for ; i < len(rest); i++ {
		rest[i].ConfigSubtype = ConfigOther
	}
}

func assignElectionFlaws(fs []*Failure) {
	remaining := map[ElectionFlaw]int{}
	for k, v := range quotaElectionFlaw {
		remaining[k] = v
	}
	var rest []*Failure
	for _, f := range fs {
		if !f.HasMechanism(LeaderElection) {
			f.ElectionFlaw = FlawNone
			continue
		}
		if p, ok := pinned(f); ok && p.flaw != FlawNone {
			f.ElectionFlaw = p.flaw
			remaining[p.flaw]--
			continue
		}
		rest = append(rest, f)
	}
	order := []ElectionFlaw{FlawOverlap, FlawBadLeader, FlawDoubleVote, FlawConflictingCriteria}
	i := 0
	for _, fl := range order {
		for n := 0; n < remaining[fl] && i < len(rest); n++ {
			rest[i].ElectionFlaw = fl
			i++
		}
	}
	for ; i < len(rest); i++ {
		rest[i].ElectionFlaw = FlawOverlap
	}
}

func assignAccess(fs []*Failure) {
	remaining := map[ClientAccess]int{}
	for k, v := range quotaAccess {
		remaining[k] = v
	}
	var rest []*Failure
	for _, f := range fs {
		if p, ok := pinned(f); ok && p.hasAccess {
			f.ClientAccess = p.access
			remaining[p.access]--
			continue
		}
		if f.EventCount == 1 {
			// A partition-only failure needs no client access.
			f.ClientAccess = NoClientAccess
			remaining[NoClientAccess]--
			continue
		}
		rest = append(rest, f)
	}
	order := []ClientAccess{NoClientAccess, OneSideAccess, BothSidesAccess}
	i := 0
	for _, a := range order {
		for n := 0; n < remaining[a] && i < len(rest); n++ {
			rest[i].ClientAccess = a
			i++
		}
	}
	for ; i < len(rest); i++ {
		rest[i].ClientAccess = BothSidesAccess
	}
}

func assignEvents(fs []*Failure) {
	remaining := map[EventType]int{}
	for k, v := range quotaEvents {
		remaining[k] = v
	}
	// Every row's sequence includes the partition; EventCount-1 rows
	// are partition-only.
	var multi []*Failure
	for _, f := range fs {
		f.Events = []EventType{EvPartitionOnly}
		if f.EventCount == 1 {
			continue
		}
		if p, ok := pinned(f); ok && len(p.events) > 0 {
			f.Events = append(f.Events, p.events...)
			for _, e := range p.events {
				remaining[e]--
			}
			continue
		}
		multi = append(multi, f)
	}
	order := []EventType{EvWriteReq, EvReadReq, EvAcquire, EvAdminOp, EvDeleteReq, EvRelease, EvClusterReboot}
	// First pass: one event type per row.
	var seq []EventType
	for _, e := range order {
		for i := 0; i < remaining[e]; i++ {
			seq = append(seq, e)
		}
	}
	for i, f := range multi {
		if i < len(seq) {
			f.Events = append(f.Events, seq[i])
		} else {
			f.Events = append(f.Events, EvWriteReq)
		}
	}
	// Extra memberships go to rows with spare distinct slots.
	if len(seq) > len(multi) {
		extra := seq[len(multi):]
		j := 0
		for _, e := range extra {
			for ; j < len(multi); j++ {
				f := multi[j]
				if len(f.Events) < f.EventCount && !f.HasEvent(e) {
					f.Events = append(f.Events, e)
					j++
					break
				}
			}
		}
	}
}

func assignOrdering(fs []*Failure) {
	remaining := map[OrderingClass]int{}
	for k, v := range quotaOrdering {
		remaining[k] = v
	}
	var rest []*Failure
	for _, f := range fs {
		if p, ok := pinned(f); ok && p.hasOrdering {
			f.Ordering = p.ordering
			remaining[p.ordering]--
			continue
		}
		if f.EventCount == 1 {
			// Partition-only: trivially partition-first, no ordering.
			f.Ordering = OrderUnimportant
			remaining[OrderUnimportant]--
			continue
		}
		rest = append(rest, f)
	}
	// PartitionNotFirst requires at least two events — all remaining
	// rows qualify. Deal deterministically.
	order := []OrderingClass{PartitionNotFirst, OrderUnimportant, NaturalOrder, OtherOrder}
	i := 0
	for _, o := range order {
		for n := 0; n < remaining[o] && i < len(rest); n++ {
			rest[i].Ordering = o
			i++
		}
	}
	for ; i < len(rest); i++ {
		rest[i].Ordering = OtherOrder
	}
}

func assignConnectivity(fs []*Failure) {
	remaining := map[Connectivity]int{}
	for k, v := range quotaConnectivity {
		remaining[k] = v
	}
	var rest []*Failure
	for _, f := range fs {
		if p, ok := pinned(f); ok && p.hasConn {
			f.Connectivity = p.connectivity
			remaining[p.connectivity]--
			continue
		}
		rest = append(rest, f)
	}
	order := []Connectivity{AnyReplica, IsolateLeader, IsolateCentralService, IsolateSpecialRole, IsolateOther}
	i := 0
	for _, c := range order {
		for n := 0; n < remaining[c] && i < len(rest); n++ {
			rest[i].Connectivity = c
			i++
		}
	}
	for ; i < len(rest); i++ {
		rest[i].Connectivity = AnyReplica
	}
}

func assignNodes(fs []*Failure) {
	remaining := copyIntMap(quotaNodes)
	var rest []*Failure
	for _, f := range fs {
		if p, ok := pinned(f); ok && p.nodes > 0 {
			f.Nodes = p.nodes
			remaining[p.nodes]--
			continue
		}
		rest = append(rest, f)
	}
	deal := dealList(remaining, []int{3, 5})
	for i, f := range rest {
		f.Nodes = deal[i]
	}
}

// assignFlawAndResolution covers Table 12 (tracker tickets only) and
// spreads resolution days around the published means deterministically
// (a +/-30% triangle with zero mean error).
func assignFlawAndResolution(fs []*Failure) {
	remaining := map[FlawClass]int{}
	for k, v := range quotaFlaw {
		remaining[k] = v
	}
	var tracker []*Failure
	for _, f := range fs {
		if f.Source == SourceTracker {
			tracker = append(tracker, f)
		} else {
			// The paper classifies partial-partition failures as
			// design flaws; Jepsen/NEAT rows default there but are
			// excluded from Table 12.
			f.Flaw = DesignFlaw
		}
	}
	order := []FlawClass{DesignFlaw, ImplementationFlaw, Unresolved}
	i := 0
	for _, fl := range order {
		for n := 0; n < remaining[fl] && i < len(tracker); n++ {
			tracker[i].Flaw = fl
			i++
		}
	}
	for ; i < len(tracker); i++ {
		tracker[i].Flaw = Unresolved
	}
	spread := []int{-60, -30, 0, 30, 60, 0} // zero-sum pattern
	di, ii := 0, 0
	var design, impl []*Failure
	for _, f := range tracker {
		switch f.Flaw {
		case DesignFlaw:
			f.ResolutionDays = meanDesignDays + spread[di%len(spread)]
			design = append(design, f)
			di++
		case ImplementationFlaw:
			f.ResolutionDays = meanImplDays + spread[ii%len(spread)]/2
			impl = append(impl, f)
			ii++
		}
	}
	fixMean(design, meanDesignDays)
	fixMean(impl, meanImplDays)
}

// fixMean adjusts the last row so the mean is exact.
func fixMean(rows []*Failure, mean int) {
	if len(rows) == 0 {
		return
	}
	sum := 0
	for _, f := range rows {
		sum += f.ResolutionDays
	}
	rows[len(rows)-1].ResolutionDays += mean*len(rows) - sum
}

// assignFindings sets the boolean Finding attributes (silent, lasting
// damage, single-node isolation) by quota, honouring pins.
func assignFindings(fs []*Failure) {
	lasting := quotaLasting
	for _, f := range fs {
		if p, ok := pinned(f); ok && p.hasLasting && p.lasting {
			f.LeavesLastingDamage = true
			lasting--
		}
	}
	for _, f := range fs {
		if lasting == 0 {
			break
		}
		if f.LeavesLastingDamage {
			continue
		}
		// Lasting damage concentrates in data-level impacts.
		switch f.Impact {
		case DataLoss, DataCorruption, Reappearance:
			f.LeavesLastingDamage = true
			lasting--
		}
	}

	// Silent failures: the 14 warned failures are dealt evenly.
	warn := len(fs) - quotaSilent
	step := len(fs) / warn
	for i, f := range fs {
		f.SilentFailure = true
		if warn > 0 && i%step == step-1 {
			f.SilentFailure = false
			warn--
		}
	}

	for _, f := range fs {
		f.PartitionsRequired = 1
		if f.Ref == "CASSANDRA-13562" {
			// Partition -> heal -> partition during the handoff sync.
			f.PartitionsRequired = 2
		}
	}

	single := quotaSingle
	for _, f := range fs {
		if single == 0 {
			break
		}
		// Simplex rows and a handful of partial rows need specific
		// multi-node cuts; everything else isolates one node.
		if f.Partition == simp {
			continue
		}
		f.SingleNodeIsolation = true
		single--
	}
}

// --- helpers ---

func clamp5(n int) int {
	if n > 5 {
		return 5
	}
	return n
}

func copyIntMap(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyMechMap(m map[Mechanism]int) map[Mechanism]int {
	out := make(map[Mechanism]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// dealList expands quota counts into a deterministic sequence.
func dealList(quota map[int]int, order []int) []int {
	var out []int
	for _, k := range order {
		for i := 0; i < quota[k]; i++ {
			out = append(out, k)
		}
	}
	return out
}
