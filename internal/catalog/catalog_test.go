package catalog

import (
	"math"
	"testing"

	"neat/internal/core"
)

// tolerance (percentage points) for transcribed columns, which carry
// the paper's own rounding.
const tol = 1.6

func within(t *testing.T, label string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.1f%%, paper reports %.1f%% (tolerance %.1f)", label, got, want, tol)
	}
}

func TestDatasetSize(t *testing.T) {
	fs := Load()
	if len(fs) != 136 {
		t.Fatalf("dataset has %d failures, want 136", len(fs))
	}
	var tracker, jepsen, neat int
	for _, f := range fs {
		switch f.Source {
		case SourceTracker:
			tracker++
		case SourceJepsen:
			jepsen++
		case SourceNEAT:
			neat++
		}
	}
	if tracker != 88 || jepsen != 16 || neat != 32 {
		t.Fatalf("sources = %d tracker / %d jepsen / %d neat, want 88/16/32", tracker, jepsen, neat)
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, b := Load(), Load()
	for i := range a {
		if a[i].Mechanisms[0] != b[i].Mechanisms[0] ||
			a[i].EventCount != b[i].EventCount ||
			a[i].ClientAccess != b[i].ClientAccess ||
			a[i].Nodes != b[i].Nodes {
			t.Fatalf("row %d differs between loads", i)
		}
	}
}

func TestTable1MatchesPaperExactly(t *testing.T) {
	fs := Load()
	rows := Table1(fs)
	want := map[string][2]int{ // total, catastrophic — Table 1
		"MongoDB": {19, 11}, "VoltDB": {4, 4}, "RethinkDB": {3, 3},
		"HBase": {5, 3}, "Riak": {1, 1}, "Cassandra": {4, 4},
		"Aerospike": {3, 3}, "Geode": {2, 2}, "Redis": {3, 2},
		"Hazelcast": {7, 5}, "Elasticsearch": {22, 21}, "ZooKeeper": {3, 3},
		"HDFS": {4, 2}, "Kafka": {5, 3}, "RabbitMQ": {7, 4},
		"MapReduce": {6, 2}, "Chronos": {2, 1}, "Mesos": {4, 0},
		"Infinispan": {1, 1}, "Ignite": {15, 13}, "Terracotta": {9, 9},
		"Ceph": {2, 2}, "MooseFS": {2, 2}, "ActiveMQ": {2, 2}, "DKron": {1, 1},
	}
	if len(rows) != 25 {
		t.Fatalf("%d systems, want 25", len(rows))
	}
	totF, totC := 0, 0
	for _, r := range rows {
		w, ok := want[r.System]
		if !ok {
			t.Fatalf("unexpected system %s", r.System)
		}
		if r.Failures != w[0] || r.Catastrophic != w[1] {
			t.Errorf("%s: %d/%d, paper reports %d/%d", r.System, r.Failures, r.Catastrophic, w[0], w[1])
		}
		totF += r.Failures
		totC += r.Catastrophic
	}
	if totF != 136 || totC != 104 {
		t.Fatalf("totals %d/%d, want 136/104", totF, totC)
	}
}

func TestTable2ImpactDistribution(t *testing.T) {
	fs := Load()
	rows := Table2(fs)
	want := map[string]float64{ // Table 2
		"data loss":                    26.6,
		"stale read":                   13.2,
		"broken locks":                 8.2,
		"system crash/hang":            8.1,
		"data unavailability":          6.6,
		"reappearance of deleted data": 6.6,
		"data corruption":              5.1,
		"dirty read":                   5.1,
		"performance degradation":      19.1,
		"other":                        1.4,
	}
	for _, r := range rows {
		within(t, "Table2 "+r.Label, r.Percent, want[r.Label])
	}
	// Finding 1: ~80% catastrophic.
	within(t, "catastrophic share", CatastrophicShare(fs), 79.5)
}

func TestTable3MechanismDistribution(t *testing.T) {
	rows := Table3(Load())
	want := map[string]float64{ // Table 3
		"leader election":                            39.7,
		"configuration change":                       19.9,
		"data consolidation":                         14.0,
		"request routing":                            13.2,
		"replication protocol":                       12.5,
		"reconfiguration due to a network partition": 11.8,
		"scheduling":                                 2.9,
		"data migration":                             3.7,
		"system integration":                         1.5,
	}
	for _, r := range rows {
		within(t, "Table3 "+r.Label, r.Percent, want[r.Label])
	}
}

func TestTable4ElectionFlaws(t *testing.T) {
	rows := Table4(Load())
	want := map[string]float64{ // Table 4
		"overlapping between successive leaders": 57.4,
		"electing bad leaders":                   20.4,
		"voting for two candidates":              18.5,
		"conflicting election criteria":          3.7,
	}
	total := 0
	for _, r := range rows {
		within(t, "Table4 "+r.Label, r.Percent, want[r.Label])
		total += r.Count
	}
	if total != 54 {
		t.Fatalf("leader-election failures = %d, want 54 (39.7%% of 136)", total)
	}
}

func TestTable5ClientAccess(t *testing.T) {
	rows := Table5(Load())
	want := []float64{28, 36, 36} // Table 5
	for i, r := range rows {
		within(t, "Table5 "+r.Label, r.Percent, want[i])
	}
}

func TestTable6PartitionTypes(t *testing.T) {
	rows := Table6(Load())
	want := []float64{69.1, 28.7, 2.2} // Table 6
	for i, r := range rows {
		within(t, "Table6 "+r.Label, r.Percent, want[i])
	}
}

func TestTable7EventCounts(t *testing.T) {
	rows := Table7(Load())
	want := []float64{12.6, 13.9, 42.6, 14.0, 16.9} // Table 7
	for i, r := range rows {
		within(t, "Table7 "+r.Label, r.Percent, want[i])
	}
}

func TestTable8EventInvolvement(t *testing.T) {
	rows := Table8(Load())
	want := map[string]float64{ // Table 8
		"only a network-partitioning fault": 12.6,
		"write request":                     48.5,
		"read request":                      34.6,
		"acquire lock":                      8.1,
		"admin adding/removing a node":      8.0,
		"delete request":                    4.4,
		"release lock":                      3.7,
		"whole cluster reboot":              1.5,
	}
	for _, r := range rows {
		within(t, "Table8 "+r.Label, r.Percent, want[r.Label])
	}
}

func TestTable9Ordering(t *testing.T) {
	rows := Table9(Load())
	want := []float64{16.0, 27.7, 26.9, 29.4} // Table 9
	for i, r := range rows {
		within(t, "Table9 "+r.Label, r.Percent, want[i])
	}
	// 84% of sequences start with the partition.
	first := rows[1].Percent + rows[2].Percent + rows[3].Percent
	within(t, "partition comes first", first, 84.0)
}

func TestTable10Connectivity(t *testing.T) {
	rows := Table10(Load())
	want := []float64{44.9, 36.0, 8.8, 3.7, 6.6} // Table 10
	for i, r := range rows {
		within(t, "Table10 "+r.Label, r.Percent, want[i])
	}
}

func TestTable11Timing(t *testing.T) {
	rows := Table11(Load())
	want := []float64{61.8, 18.4, 12.8, 7.0} // Table 11
	for i, r := range rows {
		within(t, "Table11 "+r.Label, r.Percent, want[i])
	}
}

func TestTable12FlawsAndResolution(t *testing.T) {
	rows := Table12(Load())
	want := []float64{46.6, 32.2, 21.2} // Table 12
	for i, r := range rows {
		within(t, "Table12 "+r.Label, r.Percent, want[i])
	}
	if d := rows[0].AvgDays; math.Abs(d-205) > 0.01 {
		t.Errorf("design resolution = %.1f days, paper reports 205", d)
	}
	if d := rows[1].AvgDays; math.Abs(d-81) > 0.01 {
		t.Errorf("implementation resolution = %.1f days, paper reports 81", d)
	}
	// Design flaws take ~2.5x longer.
	if ratio := rows[0].AvgDays / rows[1].AvgDays; ratio < 2.3 || ratio > 2.7 {
		t.Errorf("design/impl resolution ratio = %.2f, want ~2.5", ratio)
	}
}

func TestTable13Nodes(t *testing.T) {
	rows := Table13(Load())
	want := []float64{83.1, 16.9} // Table 13
	for i, r := range rows {
		within(t, "Table13 "+r.Label, r.Percent, want[i])
	}
	// Finding 12: ALL failures reproducible with at most five nodes.
	for _, f := range Load() {
		if f.Nodes != 3 && f.Nodes != 5 {
			t.Fatalf("failure %d needs %d nodes", f.ID, f.Nodes)
		}
	}
}

func TestFindings(t *testing.T) {
	f := ComputeFindings(Load())
	within(t, "Finding 2 silent", f.SilentPct, 90)
	within(t, "Finding 3 lasting damage", f.LastingPct, 21)
	within(t, "Finding 9 single-node isolation", f.SingleNodePct, 88)
	within(t, "no-or-one-side access", f.NoOrOneSidePct, 64)
	within(t, "deterministic share", f.DeterministicPct, 62)
}

func TestTable14And15Split(t *testing.T) {
	fs := Load()
	if n := len(Table14(fs)); n != 104 {
		t.Fatalf("Table 14 rows = %d, want 104", n)
	}
	t15 := Table15(fs)
	if len(t15) != 32 {
		t.Fatalf("Table 15 rows = %d, want 32", len(t15))
	}
	// 30 of the 32 NEAT-discovered failures are catastrophic.
	cat := 0
	for _, f := range t15 {
		if f.Catastrophic {
			cat++
		}
	}
	if cat != 30 {
		t.Fatalf("NEAT catastrophic = %d, want 30", cat)
	}
}

func TestEventConsistencyInvariants(t *testing.T) {
	for _, f := range Load() {
		if len(f.Events) == 0 || f.Events[0] != EvPartitionOnly {
			t.Fatalf("failure %d: every sequence includes the partition", f.ID)
		}
		if f.EventCount == 1 && len(f.Events) != 1 {
			t.Fatalf("failure %d: partition-only rows must have no other events", f.ID)
		}
		if len(f.Events) > f.EventCount {
			t.Fatalf("failure %d: %d distinct events exceed event count %d", f.ID, len(f.Events), f.EventCount)
		}
		if f.EventCount == 1 && f.ClientAccess != NoClientAccess {
			t.Fatalf("failure %d: partition-only rows need no client access", f.ID)
		}
		if f.Ordering == PartitionNotFirst && f.EventCount < 2 {
			t.Fatalf("failure %d: partition-not-first needs >= 2 events", f.ID)
		}
		if len(f.Mechanisms) == 0 {
			t.Fatalf("failure %d: no mechanism assigned", f.ID)
		}
		if f.HasMechanism(LeaderElection) != (f.ElectionFlaw != FlawNone) {
			t.Fatalf("failure %d: election flaw inconsistent with mechanism", f.ID)
		}
	}
}

func TestPinnedRowsMatchPaperDescriptions(t *testing.T) {
	fs := Load()
	byRef := map[string][]*Failure{}
	for _, f := range fs {
		byRef[f.Ref] = append(byRef[f.Ref], f)
	}
	// Figure 2's VoltDB dirty read: leader-overlap flaw, one-side
	// access, write-then-read.
	for _, f := range byRef["ENG-10389"] {
		if f.ElectionFlaw != FlawOverlap || f.ClientAccess != OneSideAccess {
			t.Errorf("ENG-10389 row mispinned: %+v", f)
		}
	}
	// Listing 1's split brain: double voting.
	for _, f := range byRef["elastic-2488"] {
		if f.ElectionFlaw != FlawDoubleVote {
			t.Errorf("elastic-2488 row mispinned: %+v", f)
		}
	}
	// RethinkDB config change: five nodes.
	for _, f := range byRef["rethinkdb-5289"] {
		if f.Nodes != 5 || !f.HasMechanism(ConfigChange) {
			t.Errorf("rethinkdb-5289 row mispinned: %+v", f)
		}
	}
	// Figure 3: no client access after the partition.
	for _, f := range byRef["MAPREDUCE-4819"] {
		if f.ClientAccess != NoClientAccess || !f.HasMechanism(Scheduling) {
			t.Errorf("MAPREDUCE-4819 row mispinned: %+v", f)
		}
	}
	// One failure requires a second partition: encoded via timing
	// bounded + data migration (CASSANDRA-13562); check it exists.
	if len(byRef["CASSANDRA-13562"]) != 1 {
		t.Error("CASSANDRA-13562 missing")
	}
}

func TestPartitionTypeCounts(t *testing.T) {
	fs := Load()
	counts := map[core.PartitionType]int{}
	for _, f := range fs {
		counts[f.Partition]++
	}
	if counts[core.CompletePartition] != 94 || counts[core.PartialPartition] != 39 || counts[core.SimplexPartition] != 3 {
		t.Fatalf("partition counts = %v, want 94/39/3", counts)
	}
}

func TestSinglePartitionFinding(t *testing.T) {
	// "The overwhelming majority (99%) of the failures were caused by
	// a single network partition."
	f := ComputeFindings(Load())
	if f.SinglePartition < 97.5 {
		t.Fatalf("single-partition share = %.1f%%, paper reports 99%%", f.SinglePartition)
	}
	multi := 0
	for _, fl := range Load() {
		if fl.PartitionsRequired > 1 {
			multi++
		}
	}
	if multi != 1 {
		t.Fatalf("multi-partition failures = %d, want 1 (the Cassandra handoff)", multi)
	}
}

func TestTable3ConfigBreakdown(t *testing.T) {
	rows := Table3ConfigBreakdown(Load())
	want := map[string]float64{ // Table 3 sub-rows
		"adding a node":         10.3,
		"removing a node":       3.7,
		"membership management": 3.7,
		"other":                 2.2,
	}
	total := 0
	for _, r := range rows {
		within(t, "Table3b "+r.Label, r.Percent, want[r.Label])
		total += r.Count
	}
	if total != 27 {
		t.Fatalf("config-change rows = %d, want 27", total)
	}
	// Subtype assigned exactly to config-change failures.
	for _, f := range Load() {
		if f.HasMechanism(ConfigChange) != (f.ConfigSubtype != ConfigNone) {
			t.Fatalf("failure %d: subtype inconsistent with mechanism", f.ID)
		}
	}
}
