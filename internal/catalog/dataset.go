package catalog

import (
	"neat/internal/core"
)

// SystemInfo carries Table 1's per-system metadata.
type SystemInfo struct {
	Name        string
	Consistency string
	// CatastrophicQuota is Table 1's catastrophic count, used by the
	// assigner to set per-row flags.
	CatastrophicQuota int
}

// Systems lists the 25 studied systems in Table 1's row order.
func Systems() []SystemInfo {
	return []SystemInfo{
		{"MongoDB", "Strong", 11},
		{"VoltDB", "Strong", 4},
		{"RethinkDB", "Strong", 3},
		{"HBase", "Strong", 3},
		{"Riak", "Strong/Eventual", 1},
		{"Cassandra", "Strong", 4},
		{"Aerospike", "Eventual", 3},
		{"Geode", "Strong", 2},
		{"Redis", "Eventual", 2},
		{"Hazelcast", "Best Effort", 5},
		{"Elasticsearch", "Eventual", 21},
		{"ZooKeeper", "Strong", 3},
		{"HDFS", "Custom", 2},
		{"Kafka", "-", 3},
		{"RabbitMQ", "-", 4},
		{"MapReduce", "-", 2},
		{"Chronos", "-", 1},
		{"Mesos", "-", 0},
		{"Infinispan", "Strong", 1},
		{"Ignite", "Strong", 13},
		{"Terracotta", "Strong", 9},
		{"Ceph", "Strong", 2},
		{"MooseFS", "Eventual", 2},
		{"ActiveMQ", "-", 2},
		{"DKron", "-", 1},
	}
}

// Short aliases keep the 136-row literal readable.
const (
	comp = core.CompletePartition
	part = core.PartialPartition
	simp = core.SimplexPartition

	det = Deterministic
	fix = FixedTiming
	bnd = BoundedTiming
	unk = UnknownTiming
)

type row struct {
	sys    string
	ref    string
	impact Impact
	ptype  core.PartitionType
	timing TimingClass
	src    Source
	status string
}

// appendixA transcribes Table 14: the 104 failures from issue-tracking
// systems and Jepsen reports. Rows whose Ref is a Jepsen analysis are
// tagged SourceJepsen; the rest are tracker tickets.
func appendixA() []row {
	j := SourceJepsen
	t := SourceTracker
	return []row{
		// The first MongoDB data-loss failure appears both in a Jepsen
		// analysis and as a tracker ticket; the paper's 88/16 source
		// split counts it with the tickets.
		{"MongoDB", "jepsen-284", DataLoss, comp, fix, t, ""},
		{"MongoDB", "jepsen-322", DirtyRead, comp, fix, j, ""},
		{"MongoDB", "jepsen-322", StaleRead, comp, fix, j, ""},
		{"MongoDB", "SERVER-9756", DataLoss, comp, fix, t, ""},
		{"MongoDB", "SERVER-9730", DataLoss, part, fix, t, ""},
		{"MongoDB", "SERVER-9730", StaleRead, part, fix, t, ""},
		{"MongoDB", "SERVER-23003", PerfDegradation, part, fix, t, ""},
		{"MongoDB", "SERVER-19550", PerfDegradation, part, det, t, ""},
		{"MongoDB", "SERVER-2544", DataLoss, part, fix, t, ""},
		{"MongoDB", "SERVER-2544", StaleRead, part, fix, t, ""},
		{"MongoDB", "SERVER-30797", StaleRead, comp, fix, t, ""},
		{"MongoDB", "SERVER-27160", DataLoss, comp, unk, t, ""},
		{"MongoDB", "SERVER-27160", StaleRead, comp, unk, t, ""},
		{"MongoDB", "SERVER-27125", PerfDegradation, part, det, t, ""},
		{"MongoDB", "SERVER-26216", DataLoss, part, det, t, ""},
		{"MongoDB", "SERVER-15254", SystemCrash, comp, bnd, t, ""},
		{"MongoDB", "SERVER-7008", PerfDegradation, comp, det, t, ""},
		{"MongoDB", "SERVER-8145", DataLoss, simp, det, t, ""},
		{"MongoDB", "SERVER-14885", SystemCrash, comp, det, t, ""},
		{"VoltDB", "ENG-10486", DataLoss, comp, fix, t, ""},
		{"VoltDB", "ENG-10453", DataLoss, comp, fix, t, ""},
		{"VoltDB", "ENG-10389", DirtyRead, comp, fix, t, ""},
		{"VoltDB", "ENG-10389", StaleRead, comp, fix, t, ""},
		{"RethinkDB", "rethinkdb-5289", DataLoss, comp, bnd, t, ""},
		{"RethinkDB", "rethinkdb-5289", DirtyRead, comp, bnd, t, ""},
		{"RethinkDB", "rethinkdb-5289", StaleRead, comp, bnd, t, ""},
		{"HBase", "HBASE-2312", DataLoss, part, unk, t, ""},
		{"HBase", "HBASE-5606", PerfDegradation, part, bnd, t, ""},
		{"HBase", "HBASE-3446", DataUnavailability, part, det, t, ""},
		{"HBase", "HBASE-3403", DataUnavailability, comp, unk, t, ""},
		{"HBase", "HBASE-5063", SystemCrash, comp, det, t, ""},
		{"Riak", "jepsen-285", DataLoss, comp, det, j, ""},
		{"Cassandra", "CASSANDRA-150", StaleRead, comp, det, t, ""},
		{"Cassandra", "CASSANDRA-150", DataUnavailability, comp, det, t, ""},
		{"Cassandra", "CASSANDRA-10143", DataLoss, comp, bnd, t, ""},
		{"Cassandra", "CASSANDRA-13562", SystemCrash, comp, bnd, t, ""},
		{"Aerospike", "aerospike-1250", DataLoss, comp, det, t, ""},
		{"Aerospike", "aerospike-1250", StaleRead, comp, det, t, ""},
		{"Aerospike", "aerospike-1250", Reappearance, comp, det, t, ""},
		{"Geode", "GEODE-2718", DataUnavailability, comp, det, t, ""},
		{"Geode", "GEODE-3780", StaleRead, comp, unk, t, ""},
		{"Redis", "redis-3899", DataCorruption, comp, bnd, t, ""},
		{"Redis", "redis-3138", SystemCrash, comp, det, t, ""},
		{"Redis", "jepsen-283", DataLoss, comp, fix, j, ""},
		{"Hazelcast", "hazelcast-5529", DataLoss, comp, fix, t, ""},
		{"Hazelcast", "hazelcast-migration", DataLoss, comp, bnd, t, ""},
		{"Hazelcast", "hazelcast-5444", DataLoss, comp, bnd, t, ""},
		{"Hazelcast", "hazelcast-8156", PerfDegradation, comp, bnd, t, ""},
		{"Hazelcast", "hazelcast-8827", PerfDegradation, comp, det, t, ""},
		{"Hazelcast", "jepsen-hazelcast-383", DataLoss, comp, fix, j, ""},
		{"Hazelcast", "jepsen-hazelcast-383", BrokenLocks, comp, fix, j, ""},
		{"ZooKeeper", "ZOOKEEPER-2355", Reappearance, comp, det, t, ""},
		{"ZooKeeper", "ZOOKEEPER-2348", Reappearance, comp, det, t, ""},
		{"ZooKeeper", "ZOOKEEPER-2099", DataCorruption, comp, det, t, ""},
		{"Elasticsearch", "elastic-20031", StaleRead, comp, fix, t, ""},
		{"Elasticsearch", "elastic-20031", DataLoss, comp, fix, t, ""},
		{"Elasticsearch", "elastic-19269", DirtyRead, comp, det, t, ""},
		{"Elasticsearch", "elastic-14671", StaleRead, comp, det, t, ""},
		{"Elasticsearch", "elastic-14671", DataLoss, comp, det, t, ""},
		{"Elasticsearch", "elastic-7572", DataLoss, comp, det, t, ""},
		{"Elasticsearch", "elastic-9495", StaleRead, part, det, t, ""},
		{"Elasticsearch", "elastic-9495", DataLoss, part, det, t, ""},
		{"Elasticsearch", "elastic-6469", StaleRead, part, det, t, ""},
		{"Elasticsearch", "elastic-6469", DataLoss, part, det, t, ""},
		{"Elasticsearch", "elastic-2488", StaleRead, part, det, t, ""},
		{"Elasticsearch", "elastic-2488", DataLoss, part, det, t, ""},
		{"Elasticsearch", "elastic-9967", DataCorruption, comp, bnd, t, ""},
		{"Elasticsearch", "elastic-14252", DataLoss, comp, det, t, ""},
		{"Elasticsearch", "elastic-12573", PerfDegradation, comp, bnd, t, ""},
		{"Elasticsearch", "elastic-28405", DataLoss, comp, det, t, ""},
		{"Elasticsearch", "elastic-14739", DataLoss, part, det, t, ""},
		{"Elasticsearch", "jepsen-317", StaleRead, part, det, j, ""},
		{"Elasticsearch", "jepsen-317", DataLoss, part, det, j, ""},
		{"Elasticsearch", "jepsen-317", StaleRead, comp, bnd, j, ""},
		{"Elasticsearch", "jepsen-317", DataLoss, comp, bnd, j, ""},
		{"Elasticsearch", "jepsen-317", DirtyRead, comp, fix, j, ""},
		{"HDFS", "HDFS-2791", DataCorruption, part, det, t, ""},
		{"HDFS", "HDFS-5014", PerfDegradation, part, det, t, ""},
		{"HDFS", "HDFS-577", PerfDegradation, simp, bnd, t, ""},
		{"HDFS", "HDFS-1384", PerfDegradation, part, det, t, ""},
		{"Kafka", "KAFKA-2553", SystemCrash, comp, det, t, ""},
		{"Kafka", "KAFKA-6173", DataUnavailability, comp, det, t, ""},
		{"Kafka", "KAFKA-6173b", PerfDegradation, comp, det, t, ""},
		{"Kafka", "KAFKA-3686", SystemCrash, part, det, t, ""},
		{"Kafka", "jepsen-293", DataLoss, comp, det, j, ""},
		{"RabbitMQ", "rabbitmq-1455", DataLoss, comp, det, t, ""},
		{"RabbitMQ", "rabbitmq-1006", PerfDegradation, part, det, t, ""},
		{"RabbitMQ", "rabbitmq-887", PerfDegradation, comp, det, t, ""},
		{"RabbitMQ", "rabbitmq-714", SystemCrash, part, det, t, ""},
		{"RabbitMQ", "rabbitmq-1003", PerfDegradation, part, det, t, ""},
		{"RabbitMQ", "jepsen-315", BrokenLocks, comp, det, j, ""},
		{"RabbitMQ", "jepsen-315", Reappearance, comp, det, j, ""},
		{"MapReduce", "MAPREDUCE-1800", PerfDegradation, part, det, t, ""},
		{"MapReduce", "MAPREDUCE-3272", PerfDegradation, comp, det, t, ""},
		{"MapReduce", "MAPREDUCE-3963", PerfDegradation, part, det, t, ""},
		{"MapReduce", "MAPREDUCE-4832", DataCorruption, part, det, t, ""},
		{"MapReduce", "MAPREDUCE-4819", DataCorruption, part, det, t, ""},
		{"MapReduce", "MAPREDUCE-4833", PerfDegradation, comp, bnd, t, ""},
		{"Chronos", "jepsen-326", PerfDegradation, comp, det, j, ""},
		{"Chronos", "jepsen-326", SystemCrash, comp, det, j, ""},
		{"Mesos", "MESOS-1529", PerfDegradation, part, det, t, ""},
		{"Mesos", "MESOS-284", PerfDegradation, part, det, t, ""},
		{"Mesos", "MESOS-6419", PerfDegradation, comp, det, t, ""},
		{"Mesos", "MESOS-5181", PerfDegradation, simp, det, t, ""},
	}
}

// appendixB transcribes Table 15: the 32 NEAT-discovered failures. The
// appendix has no timing column; the timing classes here are assigned
// (documented in DESIGN.md) so the combined Table 11 matches the
// published distribution: the hang/contention failures carry the
// unknown (nondeterministic) class, lease/timeout-gated ones are
// fixed, the rest deterministic.
func appendixB() []row {
	n := SourceNEAT
	return []row{
		{"Ceph", "ceph-24193", DataLoss, part, det, n, "confirmed"},
		{"Ceph", "ceph-24193", DataCorruption, part, det, n, "confirmed"},
		{"ActiveMQ", "AMQ-7064", SystemCrash, part, unk, n, "confirmed"},
		{"ActiveMQ", "AMQ-6978", OtherImpact, comp, fix, n, "confirmed"}, // double dequeueing
		{"Terracotta", "terracotta-907", StaleRead, comp, det, n, "confirmed"},
		{"Terracotta", "terracotta-904", BrokenLocks, comp, det, n, "confirmed"},
		{"Terracotta", "terracotta-908", DataLoss, comp, det, n, "confirmed"},
		{"Terracotta", "terracotta-905a", DataLoss, comp, det, n, "confirmed"},
		{"Terracotta", "terracotta-905b", DataLoss, comp, det, n, "confirmed"},
		{"Terracotta", "terracotta-905c", DataLoss, comp, det, n, "confirmed"},
		{"Terracotta", "terracotta-906a", Reappearance, comp, det, n, "confirmed"},
		{"Terracotta", "terracotta-906b", Reappearance, comp, det, n, "confirmed"},
		{"Terracotta", "terracotta-906c", Reappearance, comp, det, n, "confirmed"},
		{"Ignite", "IGNITE-9762a", StaleRead, comp, det, n, "open"},
		{"Ignite", "IGNITE-9765a", DataUnavailability, comp, unk, n, "open"},
		{"Ignite", "IGNITE-9762b", DataUnavailability, comp, det, n, "open"},
		{"Ignite", "IGNITE-9765b", OtherImpact, comp, fix, n, "open"}, // double dequeueing
		{"Ignite", "IGNITE-9766", DataUnavailability, comp, det, n, "open"},
		{"Ignite", "IGNITE-9768a", BrokenLocks, comp, det, n, "open"},
		{"Ignite", "IGNITE-9768b", BrokenLocks, comp, det, n, "open"},
		{"Ignite", "IGNITE-9768c", BrokenLocks, comp, det, n, "open"},
		{"Ignite", "IGNITE-9768d", BrokenLocks, comp, det, n, "open"},
		{"Ignite", "IGNITE-9768e", DataLoss, comp, det, n, "open"},
		{"Ignite", "IGNITE-9767", BrokenLocks, comp, fix, n, "open"},
		{"Ignite", "IGNITE-8882", BrokenLocks, comp, det, n, "open"},
		{"Ignite", "IGNITE-8883", BrokenLocks, comp, fix, n, "open"},
		{"Ignite", "IGNITE-8881", SystemCrash, comp, unk, n, "open"},
		{"Ignite", "IGNITE-8593", OtherImpact, comp, det, n, "open"},
		{"Infinispan", "ISPN-9304", DirtyRead, comp, det, n, "open"},
		{"DKron", "dkron-379", DataCorruption, part, det, n, "confirmed"},
		{"MooseFS", "moosefs-131", DataUnavailability, part, det, n, "open"},
		{"MooseFS", "moosefs-132", SystemCrash, part, unk, n, "open"},
	}
}

// buildRaw materializes the 136 failures with transcribed fields only.
func buildRaw() []*Failure {
	rows := append(appendixA(), appendixB()...)
	out := make([]*Failure, len(rows))
	for i, r := range rows {
		out[i] = &Failure{
			ID:        i + 1,
			System:    r.sys,
			Ref:       r.ref,
			Source:    r.src,
			Impact:    r.impact,
			Partition: r.ptype,
			Timing:    r.timing,
			Status:    r.status,
		}
	}
	return out
}

// Load returns the full dataset with every attribute populated: the
// transcribed fields from the appendices plus the quota-assigned
// study attributes. The result is deterministic.
func Load() []*Failure {
	fs := buildRaw()
	assign(fs)
	return fs
}
