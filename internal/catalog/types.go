// Package catalog encodes the paper's dataset: 136 network-partitioning
// failures from 25 production distributed systems (88 issue-tracker
// tickets, 16 Jepsen reports, 32 NEAT-discovered failures), and the
// analysis functions that regenerate Tables 1-13.
//
// Fields present in the appendices (system, reference, impact,
// partition type, timing class, report status) are transcribed
// verbatim from Tables 14 and 15. Attributes the paper reports only in
// aggregate — mechanism, client access, event counts, ordering class,
// connectivity, nodes-to-reproduce, flaw class, resolution time — are
// assigned per row by the deterministic quota assigner in assign.go so
// that every regenerated table matches the published aggregate; see
// DESIGN.md for the methodology note.
package catalog

import (
	"neat/internal/core"
)

// Source is where a failure report came from.
type Source int

const (
	// SourceTracker is a public issue-tracking system ticket.
	SourceTracker Source = iota
	// SourceJepsen is a Jepsen analysis report.
	SourceJepsen
	// SourceNEAT is a failure found by the NEAT framework (Table 15).
	SourceNEAT
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceJepsen:
		return "jepsen"
	case SourceNEAT:
		return "neat"
	default:
		return "tracker"
	}
}

// Impact is the failure-impact taxonomy of Table 2.
type Impact int

const (
	// DataLoss is permanently lost acknowledged data.
	DataLoss Impact = iota
	// StaleRead returns an outdated value where fresh data was
	// promised.
	StaleRead
	// BrokenLocks covers double locking, lock corruption, failure to
	// unlock, and violated synchronization primitives (atomics).
	BrokenLocks
	// SystemCrash covers whole-system crashes and hangs.
	SystemCrash
	// DataUnavailability is stored data that cannot be served.
	DataUnavailability
	// Reappearance is deleted data coming back (including re-delivered
	// dequeued messages).
	Reappearance
	// DataCorruption is wrong or duplicated stored state.
	DataCorruption
	// DirtyRead returns a value from a failed write.
	DirtyRead
	// PerfDegradation is degraded but correct service.
	PerfDegradation
	// OtherImpact is everything else (e.g. a broken status API).
	OtherImpact
)

var impactNames = map[Impact]string{
	DataLoss:           "data loss",
	StaleRead:          "stale read",
	BrokenLocks:        "broken locks",
	SystemCrash:        "system crash/hang",
	DataUnavailability: "data unavailability",
	Reappearance:       "reappearance of deleted data",
	DataCorruption:     "data corruption",
	DirtyRead:          "dirty read",
	PerfDegradation:    "performance degradation",
	OtherImpact:        "other",
}

// String returns the Table 2 row name.
func (i Impact) String() string { return impactNames[i] }

// CatastrophicCategory reports whether the impact category counts as
// catastrophic in Table 2 (violates system guarantees or crashes the
// system). Per-row catastrophic flags additionally depend on the
// system's consistency promises — see Failure.Catastrophic.
func (i Impact) CatastrophicCategory() bool {
	return i != PerfDegradation && i != OtherImpact
}

// AllImpacts lists the impacts in Table 2's row order.
func AllImpacts() []Impact {
	return []Impact{DataLoss, StaleRead, BrokenLocks, SystemCrash,
		DataUnavailability, Reappearance, DataCorruption, DirtyRead,
		PerfDegradation, OtherImpact}
}

// TimingClass is the Table 11/14 timing-constraint taxonomy.
type TimingClass int

const (
	// Deterministic failures manifest given the input events alone.
	Deterministic TimingClass = iota
	// FixedTiming failures have known, configured constraints (e.g.
	// issue the write within three heartbeats of the partition).
	FixedTiming
	// BoundedTiming failures must overlap an internal operation (e.g.
	// partition during a data sync) but can still be tested.
	BoundedTiming
	// UnknownTiming failures depend on thread interleavings — the
	// nondeterministic 7%.
	UnknownTiming
)

var timingNames = map[TimingClass]string{
	Deterministic: "deterministic",
	FixedTiming:   "fixed",
	BoundedTiming: "bounded",
	UnknownTiming: "unknown",
}

// String returns the appendix spelling.
func (t TimingClass) String() string { return timingNames[t] }

// Mechanism is the Table 3 vulnerable-mechanism taxonomy.
type Mechanism int

const (
	// LeaderElection failures involve electing or deposing leaders.
	LeaderElection Mechanism = iota
	// ConfigChange covers node join/leave and membership management.
	ConfigChange
	// DataConsolidation is post-partition reconciliation.
	DataConsolidation
	// RequestRouting is delivering requests/responses to the right
	// node.
	RequestRouting
	// ReplicationProtocol is the data replication path itself.
	ReplicationProtocol
	// PartitionReconfiguration is reacting to the partition by
	// removing unreachable nodes from replica sets.
	PartitionReconfiguration
	// Scheduling is task/job scheduling.
	Scheduling
	// DataMigration is moving data between nodes.
	DataMigration
	// SystemIntegration is the coupling with an external coordination
	// service.
	SystemIntegration
)

var mechanismNames = map[Mechanism]string{
	LeaderElection:           "leader election",
	ConfigChange:             "configuration change",
	DataConsolidation:        "data consolidation",
	RequestRouting:           "request routing",
	ReplicationProtocol:      "replication protocol",
	PartitionReconfiguration: "reconfiguration due to a network partition",
	Scheduling:               "scheduling",
	DataMigration:            "data migration",
	SystemIntegration:        "system integration",
}

// String returns the Table 3 row name.
func (m Mechanism) String() string { return mechanismNames[m] }

// AllMechanisms lists mechanisms in Table 3's row order.
func AllMechanisms() []Mechanism {
	return []Mechanism{LeaderElection, ConfigChange, DataConsolidation,
		RequestRouting, ReplicationProtocol, PartitionReconfiguration,
		Scheduling, DataMigration, SystemIntegration}
}

// ConfigSubtype is Table 3's breakdown of configuration-change
// failures.
type ConfigSubtype int

const (
	// ConfigNone marks failures not involving configuration change.
	ConfigNone ConfigSubtype = iota
	// ConfigAddNode failures involve adding a node.
	ConfigAddNode
	// ConfigRemoveNode failures involve removing a node.
	ConfigRemoveNode
	// ConfigMembership failures involve membership management.
	ConfigMembership
	// ConfigOther is the remainder.
	ConfigOther
)

var configSubtypeNames = map[ConfigSubtype]string{
	ConfigNone:       "none",
	ConfigAddNode:    "adding a node",
	ConfigRemoveNode: "removing a node",
	ConfigMembership: "membership management",
	ConfigOther:      "other",
}

// String returns the Table 3 sub-row name.
func (c ConfigSubtype) String() string { return configSubtypeNames[c] }

// ElectionFlaw is the Table 4 taxonomy.
type ElectionFlaw int

const (
	// FlawNone marks failures not involving leader election.
	FlawNone ElectionFlaw = iota
	// FlawOverlap is two simultaneous leaders during the step-down
	// window.
	FlawOverlap
	// FlawBadLeader is electing a node with an incomplete data set.
	FlawBadLeader
	// FlawDoubleVote is voting while connected to a live leader.
	FlawDoubleVote
	// FlawConflictingCriteria is mutually vetoing election rules.
	FlawConflictingCriteria
)

var flawNames = map[ElectionFlaw]string{
	FlawNone:                "none",
	FlawOverlap:             "overlapping between successive leaders",
	FlawBadLeader:           "electing bad leaders",
	FlawDoubleVote:          "voting for two candidates",
	FlawConflictingCriteria: "conflicting election criteria",
}

// String returns the Table 4 row name.
func (f ElectionFlaw) String() string { return flawNames[f] }

// ClientAccess is the Table 5 taxonomy.
type ClientAccess int

const (
	// NoClientAccess failures need no client requests during the
	// partition.
	NoClientAccess ClientAccess = iota
	// OneSideAccess failures need clients on one side only.
	OneSideAccess
	// BothSidesAccess failures need clients on both sides.
	BothSidesAccess
)

var accessNames = map[ClientAccess]string{
	NoClientAccess:  "no client access necessary",
	OneSideAccess:   "client access to one side only",
	BothSidesAccess: "client access to both sides",
}

// String returns the Table 5 row name.
func (c ClientAccess) String() string { return accessNames[c] }

// EventType is the Table 8 input-event taxonomy.
type EventType int

const (
	// EvPartitionOnly marks the failure's partition event itself.
	EvPartitionOnly EventType = iota
	// EvWriteReq is a client write.
	EvWriteReq
	// EvReadReq is a client read.
	EvReadReq
	// EvAcquire is a lock acquisition.
	EvAcquire
	// EvAdminOp is an administrator adding/removing a node.
	EvAdminOp
	// EvDeleteReq is a client delete.
	EvDeleteReq
	// EvRelease is a lock release.
	EvRelease
	// EvClusterReboot is a whole-cluster reboot.
	EvClusterReboot
)

var eventNames = map[EventType]string{
	EvPartitionOnly: "only a network-partitioning fault",
	EvWriteReq:      "write request",
	EvReadReq:       "read request",
	EvAcquire:       "acquire lock",
	EvAdminOp:       "admin adding/removing a node",
	EvDeleteReq:     "delete request",
	EvRelease:       "release lock",
	EvClusterReboot: "whole cluster reboot",
}

// String returns the Table 8 row name.
func (e EventType) String() string { return eventNames[e] }

// OrderingClass is the Table 9 taxonomy.
type OrderingClass int

const (
	// PartitionNotFirst sequences begin with a client event.
	PartitionNotFirst OrderingClass = iota
	// OrderUnimportant sequences start with the partition; the rest
	// may occur in any order.
	OrderUnimportant
	// NaturalOrder sequences follow API-natural order (lock before
	// unlock, write before read).
	NaturalOrder
	// OtherOrder sequences need a specific non-natural order.
	OtherOrder
)

var orderingNames = map[OrderingClass]string{
	PartitionNotFirst: "network partition does not come first",
	OrderUnimportant:  "order is not important",
	NaturalOrder:      "natural order",
	OtherOrder:        "other",
}

// String returns the Table 9 row name.
func (o OrderingClass) String() string { return orderingNames[o] }

// Connectivity is the Table 10 taxonomy.
type Connectivity int

const (
	// AnyReplica failures manifest by isolating any replica.
	AnyReplica Connectivity = iota
	// IsolateLeader failures need the leader isolated.
	IsolateLeader
	// IsolateCentralService failures need a central service (e.g.
	// ZooKeeper) isolated.
	IsolateCentralService
	// IsolateSpecialRole failures need a special-role node (arbiter,
	// AppMaster) isolated.
	IsolateSpecialRole
	// IsolateOther failures need some other specific node (new node,
	// migration source).
	IsolateOther
)

var connectivityNames = map[Connectivity]string{
	AnyReplica:            "partition any replica",
	IsolateLeader:         "partition the leader",
	IsolateCentralService: "partition a central service",
	IsolateSpecialRole:    "partition a node with a special role",
	IsolateOther:          "other (e.g., new node, source of data migration)",
}

// String returns the Table 10 row name.
func (c Connectivity) String() string { return connectivityNames[c] }

// FlawClass is the Table 12 taxonomy.
type FlawClass int

const (
	// DesignFlaw resolutions redesigned a mechanism.
	DesignFlaw FlawClass = iota
	// ImplementationFlaw resolutions fixed a bug.
	ImplementationFlaw
	// Unresolved tickets have no fix.
	Unresolved
)

var flawClassNames = map[FlawClass]string{
	DesignFlaw:         "design",
	ImplementationFlaw: "implementation",
	Unresolved:         "unresolved",
}

// String returns the Table 12 row name.
func (f FlawClass) String() string { return flawClassNames[f] }

// Failure is one row of the dataset.
type Failure struct {
	// Transcribed fields (Appendix A/B).
	ID        int
	System    string
	Ref       string
	Source    Source
	Impact    Impact
	Partition core.PartitionType
	Timing    TimingClass
	Status    string // NEAT rows: "confirmed" or "open"

	// Catastrophic is per-row: the impact category adjusted for the
	// system's consistency promise, matching Table 1's per-system
	// catastrophic counts.
	Catastrophic bool

	// Quota-assigned fields (see assign.go).
	Mechanisms    []Mechanism
	ConfigSubtype ConfigSubtype
	ElectionFlaw  ElectionFlaw
	ClientAccess  ClientAccess
	EventCount    int // >4 encoded as 5
	Events        []EventType
	Ordering      OrderingClass
	Connectivity  Connectivity
	Nodes         int // nodes needed to reproduce: 3 or 5
	Flaw          FlawClass
	// ResolutionDays is meaningful for resolved tracker tickets.
	ResolutionDays int
	// LeavesLastingDamage marks the 21% whose erroneous state
	// persists after the partition heals (Finding 3).
	LeavesLastingDamage bool
	// SilentFailure marks the 90% returning no error or warning
	// (Finding 2).
	SilentFailure bool
	// SingleNodeIsolation marks the 88% that manifest by isolating a
	// single node (Finding 9).
	SingleNodeIsolation bool
	// PartitionsRequired is how many distinct network partitions the
	// manifestation needs. 99% of failures need one; the Cassandra
	// handoff failure needs a partition, a heal, and a second
	// partition during the resulting sync.
	PartitionsRequired int
}

// HasMechanism reports whether the failure involves m.
func (f *Failure) HasMechanism(m Mechanism) bool {
	for _, x := range f.Mechanisms {
		if x == m {
			return true
		}
	}
	return false
}

// HasEvent reports whether the failure's manifestation sequence
// involves the event type.
func (f *Failure) HasEvent(e EventType) bool {
	for _, x := range f.Events {
		if x == e {
			return true
		}
	}
	return false
}
