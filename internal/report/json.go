package report

import (
	"encoding/json"
	"io"
)

// Campaign is the machine-readable result of one fuzzing campaign —
// the JSON counterpart of the text tables, so campaign runs become
// comparable artifacts in a pipeline rather than one-off logs.
type Campaign struct {
	Tool            string              `json:"tool"`
	Seed            int64               `json:"seed"`
	RoundsPerTarget int                 `json:"rounds_per_target"`
	Targets         []CampaignTarget    `json:"targets"`
	Violations      []CampaignViolation `json:"violations"`
	Errors          int                 `json:"errors,omitempty"`
}

// CampaignTarget is one target's aggregate outcome.
type CampaignTarget struct {
	Name       string `json:"name"`
	Rounds     int    `json:"rounds"`
	Violations int    `json:"violations"`
	Unique     int    `json:"unique_signatures"`
	Errors     int    `json:"errors,omitempty"`
}

// CampaignViolation is one deduplicated invariant breach with the
// schedule that produced it and, when shrinking ran, the minimal
// reproducer.
type CampaignViolation struct {
	Target       string   `json:"target"`
	Invariant    string   `json:"invariant"`
	Subject      string   `json:"subject"`
	Detail       string   `json:"detail"`
	Signature    string   `json:"signature"`
	Count        int      `json:"count"`
	FirstRound   int      `json:"first_round"`
	ScheduleSeed int64    `json:"schedule_seed"`
	Schedule     []string `json:"schedule"`
	Shrunk       []string `json:"shrunk,omitempty"`
}

// JSON renders the campaign report as indented JSON.
func (c Campaign) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// WriteJSON writes the campaign report to w with a trailing newline.
func (c Campaign) WriteJSON(w io.Writer) error {
	b, err := c.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
