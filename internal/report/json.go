package report

import (
	"encoding/json"
	"io"
)

// Campaign is the machine-readable result of one fuzzing campaign —
// the JSON counterpart of the text tables, so campaign runs become
// comparable artifacts in a pipeline rather than one-off logs.
type Campaign struct {
	Tool            string              `json:"tool"`
	Seed            int64               `json:"seed"`
	RoundsPerTarget int                 `json:"rounds_per_target"`
	Targets         []CampaignTarget    `json:"targets"`
	Violations      []CampaignViolation `json:"violations"`
	Errors          int                 `json:"errors,omitempty"`
	// Mutate records whether the campaign ran the coverage-guided
	// search; CorpusSize is the total number of corpus entries after
	// the run (pre-seeded plus newly added).
	Mutate     bool `json:"mutate,omitempty"`
	CorpusSize int  `json:"corpus_size,omitempty"`
}

// CampaignTarget is one target's aggregate outcome. The recovery
// fields summarize the post-heal recovery-validation phase: how many
// rounds probed and confirmed recovery inside the RTO window, the
// probe traffic spent doing so, and the worst observed recovery times
// (virtual nanoseconds from probe start) — overall and per probed
// group. All are zero/absent when the campaign ran with probing off.
type CampaignTarget struct {
	Name       string `json:"name"`
	Rounds     int    `json:"rounds"`
	Violations int    `json:"violations"`
	Unique     int    `json:"unique_signatures"`
	Errors     int    `json:"errors,omitempty"`

	ProbedRounds    int              `json:"probed_rounds,omitempty"`
	RecoveredRounds int              `json:"recovered_rounds,omitempty"`
	ProbeOps        int              `json:"probe_ops,omitempty"`
	ProbeRetries    int              `json:"probe_retries,omitempty"`
	MaxRecoveryNs   int64            `json:"max_recovery_ns,omitempty"`
	RecoveryNs      map[string]int64 `json:"recovery_ns,omitempty"`

	// Coverage accounting: distinct coverage signatures the target's
	// rounds produced this run, rounds whose schedule came from corpus
	// mutation, and schedules added to the corpus as novel.
	CoverageSignatures int `json:"coverage_signatures,omitempty"`
	MutatedRounds      int `json:"mutated_rounds,omitempty"`
	CorpusNew          int `json:"corpus_new,omitempty"`
}

// CampaignViolation is one deduplicated invariant breach with the
// schedule that produced it, a witness trace — the minimal set of
// recorded client operations proving the breach — and, when shrinking
// ran, the minimal reproducer.
type CampaignViolation struct {
	Target       string   `json:"target"`
	Invariant    string   `json:"invariant"`
	Subject      string   `json:"subject"`
	Detail       string   `json:"detail"`
	Signature    string   `json:"signature"`
	Count        int      `json:"count"`
	FirstRound   int      `json:"first_round"`
	ScheduleSeed int64    `json:"schedule_seed"`
	Schedule     []string `json:"schedule"`
	Shrunk       []string `json:"shrunk,omitempty"`
	// Trace is the witness: the operations that prove the violation,
	// in invocation order.
	Trace []TraceOp `json:"trace"`
	// History is the first failing round's full operation history,
	// present only when the campaign ran with tracing on.
	History []TraceOp `json:"history,omitempty"`
}

// TraceOp is one recorded client operation as it appears in reports.
// Timestamps are offsets from the round's start on the round's clock,
// in nanoseconds; under virtual time they are deterministic, so
// same-seed reports stay byte-identical. A return offset of -1 means
// no response was recorded.
type TraceOp struct {
	Index    int    `json:"i"`
	Client   string `json:"client"`
	Kind     string `json:"kind"`
	Phase    string `json:"phase,omitempty"`
	Key      string `json:"key,omitempty"`
	Node     string `json:"node,omitempty"`
	Input    string `json:"in,omitempty"`
	Output   string `json:"out,omitempty"`
	Outcome  string `json:"outcome"`
	Note     string `json:"note,omitempty"`
	Aux      string `json:"aux,omitempty"`
	Faults   int    `json:"faults,omitempty"`
	InvokeNs int64  `json:"invoke_ns"`
	ReturnNs int64  `json:"return_ns"`
}

// JSON renders the campaign report as indented JSON.
func (c Campaign) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// WriteJSON writes the campaign report to w with a trailing newline.
func (c Campaign) WriteJSON(w io.Writer) error {
	b, err := c.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
