// Package report renders the study's tables as aligned text, matching
// the layout of the paper's Tables 1-15.
package report

import (
	"fmt"
	"strings"

	"neat/internal/catalog"
)

// Render draws a titled, column-aligned table.
func Render(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(headers)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Dist renders a label/percentage table.
func Dist(title string, rows []catalog.DistRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Label, fmt.Sprintf("%.1f%%", r.Percent), fmt.Sprintf("%d", r.Count)})
	}
	return Render(title, []string{"Category", "%", "Count"}, out)
}

// Table1 renders the studied-systems table.
func Table1(rows []catalog.Table1Row) string {
	var out [][]string
	totF, totC := 0, 0
	for _, r := range rows {
		out = append(out, []string{r.System, r.Consistency,
			fmt.Sprintf("%d", r.Failures), fmt.Sprintf("%d", r.Catastrophic)})
		totF += r.Failures
		totC += r.Catastrophic
	}
	out = append(out, []string{"Total", "-", fmt.Sprintf("%d", totF), fmt.Sprintf("%d", totC)})
	return Render("Table 1. List of studied systems.",
		[]string{"System", "Consistency", "Failures", "Catastrophic"}, out)
}

// Table12 renders the flaw-class table with resolution times.
func Table12(rows []catalog.Table12Row) string {
	var out [][]string
	for _, r := range rows {
		days := "-"
		if r.HasDuration {
			days = fmt.Sprintf("%.0f days", r.AvgDays)
		}
		out = append(out, []string{r.Label, fmt.Sprintf("%.1f%%", r.Percent), days})
	}
	return Render("Table 12. Design and implementation flaws.",
		[]string{"Category", "%", "Avg. resolution"}, out)
}

// Findings renders the numbered-findings summary.
func Findings(f catalog.Findings) string {
	rows := [][]string{
		{"silent failures (Finding 2)", fmt.Sprintf("%.1f%%", f.SilentPct)},
		{"lasting damage after heal (Finding 3)", fmt.Sprintf("%.1f%%", f.LastingPct)},
		{"manifest by isolating a single node (Finding 9)", fmt.Sprintf("%.1f%%", f.SingleNodePct)},
		{"no or one-side client access", fmt.Sprintf("%.1f%%", f.NoOrOneSidePct)},
		{"deterministic", fmt.Sprintf("%.1f%%", f.DeterministicPct)},
	}
	return Render("Findings summary", []string{"Finding", "%"}, rows)
}

// Appendix renders failure rows in the Appendix A/B layout.
func Appendix(title string, fs []*catalog.Failure, withStatus bool) string {
	headers := []string{"System", "Reference", "Impact", "Partition", "Timing"}
	if withStatus {
		headers = append(headers, "Status")
	}
	var out [][]string
	for _, f := range fs {
		row := []string{f.System, f.Ref, f.Impact.String(), f.Partition.String(), f.Timing.String()}
		if withStatus {
			row = append(row, f.Status)
		}
		out = append(out, row)
	}
	return Render(title, headers, out)
}
