package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"neat/internal/catalog"
)

func TestRenderAlignsColumns(t *testing.T) {
	out := Render("Title", []string{"A", "BB"}, [][]string{
		{"x", "y"},
		{"longer", "z"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Fatalf("title line = %q", lines[0])
	}
	// Column B starts at the same offset in every body line.
	headerIdx := strings.Index(lines[1], "BB")
	for _, l := range lines[3:] {
		if len(l) <= headerIdx {
			t.Fatalf("row %q shorter than header offset", l)
		}
	}
	if !strings.Contains(lines[2], "--") {
		t.Fatalf("separator missing: %q", lines[2])
	}
}

func TestDistIncludesPercentAndCount(t *testing.T) {
	out := Dist("T", []catalog.DistRow{{Label: "data loss", Count: 38, Percent: 27.9}})
	for _, want := range []string{"data loss", "27.9%", "38"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output %q missing %q", out, want)
		}
	}
}

func TestTable1IncludesTotals(t *testing.T) {
	fs := catalog.Load()
	out := Table1(catalog.Table1(fs))
	for _, want := range []string{"MongoDB", "Total", "136", "104"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 output missing %q", want)
		}
	}
}

func TestTable12FormatsDurations(t *testing.T) {
	out := Table12(catalog.Table12(catalog.Load()))
	if !strings.Contains(out, "205 days") || !strings.Contains(out, "81 days") {
		t.Fatalf("durations missing: %q", out)
	}
	if !strings.Contains(out, "unresolved") {
		t.Fatal("unresolved row missing")
	}
}

func TestFindingsLists(t *testing.T) {
	out := Findings(catalog.ComputeFindings(catalog.Load()))
	for _, want := range []string{"Finding 2", "Finding 3", "Finding 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("findings output missing %q", want)
		}
	}
}

func TestCampaignJSONRoundTrips(t *testing.T) {
	c := Campaign{
		Tool:            "neat-fuzz",
		Seed:            1,
		RoundsPerTarget: 20,
		Targets: []CampaignTarget{
			{Name: "kvstore/lowest-id", Rounds: 20, Violations: 7, Unique: 2},
			{Name: "raftkv", Rounds: 20},
		},
		Violations: []CampaignViolation{{
			Target:       "kvstore/lowest-id",
			Invariant:    "durability",
			Subject:      "k1",
			Detail:       "all acknowledged writes lost",
			Signature:    "kvstore/lowest-id|durability|k1",
			Count:        7,
			ScheduleSeed: 42,
			Schedule:     []string{"ops=8 seed=42", "complete [s1 c1]|[s2 s3 c2] at=2 heal=end"},
			Shrunk:       []string{"ops=4 seed=42", "complete [s1 c1]|[s2 s3 c2] at=2 heal=end"},
		}},
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatal("JSON report must end with a newline")
	}
	var back Campaign
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Violations[0].Signature != c.Violations[0].Signature ||
		len(back.Violations[0].Shrunk) != 2 || back.Targets[1].Name != "raftkv" {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
}

func TestAppendixRendersRows(t *testing.T) {
	fs := catalog.Load()
	a := Appendix("Table 14.", catalog.Table14(fs), false)
	if strings.Contains(a, "Status") {
		t.Fatal("Appendix A must not have a status column")
	}
	if !strings.Contains(a, "SERVER-9756") {
		t.Fatal("Appendix A missing a known ticket")
	}
	b := Appendix("Table 15.", catalog.Table15(fs), true)
	if !strings.Contains(b, "Status") || !strings.Contains(b, "confirmed") {
		t.Fatal("Appendix B must include status")
	}
	if !strings.Contains(b, "IGNITE-9767") {
		t.Fatal("Appendix B missing a known NEAT failure")
	}
}
