package scenarios

import (
	"time"

	"neat/internal/core"
	"neat/internal/election"
	"neat/internal/kvstore"
	"neat/internal/netsim"
)

var kvReplicas = []netsim.NodeID{"s1", "s2", "s3"}

type kvFixture struct {
	eng *core.Engine
	sys *kvstore.System
	c1  *kvstore.Client
	c2  *kvstore.Client
}

func kvConfig(mode election.Mode) kvstore.Config {
	return kvstore.Config{
		Replicas:               kvReplicas,
		ElectionMode:           mode,
		WriteConcern:           kvstore.WriteMajority,
		ReadConcern:            kvstore.ReadLocal,
		ApplyBeforeReplicate:   true,
		StepDownOnLostMajority: true,
		HeartbeatInterval:      10 * time.Millisecond,
		ElectionTimeout:        40 * time.Millisecond,
		// A wide overlap window (~1s): these scenarios exercise what
		// happens WHILE the deposed leader still serves, and must not
		// race its step-down under heavy parallel test load.
		LeaseMisses: 100,
		RPCTimeout:  30 * time.Millisecond,
	}
}

func deployKV(cfg kvstore.Config) (*kvFixture, func()) {
	eng := core.NewEngine(core.Options{})
	for _, id := range cfg.Replicas {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("c1", core.RoleClient)
	eng.AddNode("c2", core.RoleClient)
	sys := kvstore.NewSystem(eng.Network(), cfg)
	_ = eng.Deploy(sys)
	f := &kvFixture{
		eng: eng, sys: sys,
		c1: kvstore.NewClient(eng.Network(), "c1", cfg.Replicas, 80*time.Millisecond),
		c2: kvstore.NewClient(eng.Network(), "c2", cfg.Replicas, 80*time.Millisecond),
	}
	return f, func() {
		f.c1.Close()
		f.c2.Close()
		eng.Shutdown()
	}
}

// DirtyReadAtDeposedLeader reproduces Figure 2 (VoltDB ENG-10389) and
// the Infinispan dirty read: a failed write at the isolated leader is
// visible to a subsequent local read.
func DirtyReadAtDeposedLeader() error {
	f, done := deployKV(kvConfig(election.ModeQuorum))
	defer done()
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		return err
	}
	err := f.c1.PutAt("s1", "k", "dirty")
	if !kvstore.IsWriteFailed(err) {
		return notReproduced("write at deposed leader returned %v, want concern failure", err)
	}
	got, err := f.c1.GetAt("s1", "k")
	if err != nil || got != "dirty" {
		return notReproduced("read at deposed leader = %q, %v; want the dirty value", got, err)
	}
	return nil
}

// StaleReadDuringOverlap reproduces the MongoDB stale read
// (SERVER-17975): the deposed leader serves a superseded value.
func StaleReadDuringOverlap() error {
	cfg := kvConfig(election.ModeQuorum)
	cfg.LeaseMisses = 200
	f, done := deployKV(cfg)
	defer done()
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		return f.c1.Put("k", "old") == nil
	}) {
		return notReproduced("seed write never succeeded")
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		return err
	}
	if f.sys.WaitForLeaderAmong([]netsim.NodeID{"s2", "s3"}, 4*time.Second) == "" {
		return notReproduced("majority never elected")
	}
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		return f.c2.Put("k", "new") == nil
	}) {
		return notReproduced("majority write never succeeded")
	}
	var got string
	var err error
	if !f.eng.WaitUntil(2*time.Second, func() bool {
		got, err = f.c1.GetAt("s1", "k")
		return err == nil
	}) {
		return notReproduced("old leader never answered: %v", err)
	}
	if got != "old" {
		return notReproduced("old leader read = %q; want stale value", got)
	}
	return nil
}

// SplitBrainDataLoss reproduces Listing 1 (Elasticsearch #2488): a
// partial partition plus lowest-ID voting yields two leaders; the
// healed cluster keeps only the lower ID's writes.
func SplitBrainDataLoss() error {
	f, done := deployKV(kvConfig(election.ModeLowestID))
	defer done()
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "c2"}); err != nil {
		return err
	}
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		return f.sys.Replica("s2").Status().Role == kvstore.Leader
	}) {
		return notReproduced("no second leader emerged")
	}
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		return f.c1.PutAt("s1", "obj1", "v1") == nil
	}) {
		return notReproduced("side-1 write never succeeded")
	}
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		return f.c2.PutAt("s2", "obj2", "v2") == nil
	}) {
		return notReproduced("side-2 write never succeeded")
	}
	if err := f.eng.HealAll(); err != nil {
		return err
	}
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		_, err := f.c2.Get("obj2")
		return kvstore.IsNotFound(err)
	}) {
		return notReproduced("obj2 survived the heal")
	}
	return nil
}

// BadLeaderLosesAcknowledgedWrites reproduces the longest-log
// bad-leader election: the minority's padded log wins at heal and an
// acknowledged majority write vanishes.
func BadLeaderLosesAcknowledgedWrites() error {
	f, done := deployKV(kvConfig(election.ModeLongestLog))
	defer done()
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		_ = f.c1.PutAt("s1", "junk", "x")
	}
	if f.sys.WaitForLeaderAmong([]netsim.NodeID{"s2", "s3"}, 4*time.Second) == "" {
		return notReproduced("majority never elected")
	}
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		return f.c2.Put("k", "acknowledged") == nil
	}) {
		return notReproduced("acknowledged write never succeeded")
	}
	if err := f.eng.HealAll(); err != nil {
		return err
	}
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		_, err := f.c2.GetAt("s1", "k")
		return kvstore.IsNotFound(err)
	}) {
		return notReproduced("acknowledged write survived")
	}
	return nil
}

// DeletedDataReappears reproduces the resurrection class
// (ZOOKEEPER-2355, Aerospike): a majority-side delete is undone by
// consolidation with the minority's padded log.
func DeletedDataReappears() error {
	f, done := deployKV(kvConfig(election.ModeLongestLog))
	defer done()
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		return f.c1.Put("k", "precious") == nil
	}) {
		return notReproduced("seed write never succeeded")
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		_ = f.c1.PutAt("s1", "junk", "x")
	}
	if f.sys.WaitForLeaderAmong([]netsim.NodeID{"s2", "s3"}, 4*time.Second) == "" {
		return notReproduced("majority never elected")
	}
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		return f.c2.Delete("k") == nil
	}) {
		return notReproduced("majority delete never succeeded")
	}
	if err := f.eng.HealAll(); err != nil {
		return err
	}
	if !f.eng.WaitUntil(4*time.Second, func() bool {
		got, err := f.c2.Get("k")
		return err == nil && got == "precious"
	}) {
		return notReproduced("deleted key never reappeared")
	}
	return nil
}

// ConflictingCriteriaLeaderless reproduces MongoDB SERVER-14885: the
// arbiter's priority rule and the data node's latest-timestamp rule
// veto each other and the majority side stays leaderless.
func ConflictingCriteriaLeaderless() error {
	cfg := kvConfig(election.ModePriority)
	cfg.Priorities = map[netsim.NodeID]int{"s1": 1, "s2": 5, "s3": 9}
	cfg.Arbiters = map[netsim.NodeID]bool{"s3": true}
	f, done := deployKV(cfg)
	defer done()
	if err := f.c1.Put("k", "v"); err != nil {
		return err
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		return err
	}
	f.eng.Sleep(400 * time.Millisecond)
	for _, id := range []netsim.NodeID{"s2", "s3"} {
		if f.sys.Replica(id).Status().Role == kvstore.Leader {
			return notReproduced("%s was elected despite conflicting criteria", id)
		}
	}
	if err := f.c2.PutAt("s2", "k", "v2"); err == nil {
		return notReproduced("write succeeded on a leaderless side")
	}
	return nil
}
