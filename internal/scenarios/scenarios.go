// Package scenarios packages the paper's reproducible failures as
// executable NEAT tests: the 32 failures NEAT discovered in seven
// systems (Table 15), the four figure case studies (Figures 2, 3, 5,
// 6), the two listing tests (Listings 1 and 2), and a set of studied
// ticket reproductions.
//
// Each scenario deploys a fresh simulated system on its own fabric,
// injects the partition with the NEAT partitioner, drives the clients
// in the global order the paper's test engine provides, and verifies
// the failure manifests. A scenario returns nil when the failure was
// REPRODUCED (that is the expected outcome on the flawed
// configuration), and an error describing what did not manifest
// otherwise.
package scenarios

import (
	"fmt"

	"neat/internal/catalog"
	"neat/internal/core"
)

// Scenario is one executable failure reproduction.
type Scenario struct {
	// Name is a short slug.
	Name string
	// System is the archetype system the failure was reported in.
	System string
	// Ref is the failure reference (ticket / report).
	Ref string
	// Impact is the expected failure class.
	Impact catalog.Impact
	// Partition is the injected fault type.
	Partition core.PartitionType
	// Figure notes the paper figure/listing this reproduces, if any.
	Figure string
	// Run reproduces the failure; nil means it manifested.
	Run func() error
}

// Result is the outcome of one scenario execution.
type Result struct {
	Scenario   Scenario
	Reproduced bool
	Err        error
}

// All returns every scenario: the 32 Table 15 reproductions followed
// by the studied-failure case studies.
func All() []Scenario {
	out := append([]Scenario(nil), Table15Scenarios()...)
	out = append(out, StudyScenarios()...)
	return out
}

// Table15Scenarios returns one scenario per Table 15 row, in the
// appendix's row order.
func Table15Scenarios() []Scenario {
	return []Scenario{
		{Name: "ceph-write-timeout", System: "Ceph", Ref: "ceph-24193",
			Impact: catalog.DataLoss, Partition: core.PartialPartition,
			Run: CephWriteSucceedsButTimesOut},
		{Name: "ceph-delete-divergence", System: "Ceph", Ref: "ceph-24193",
			Impact: catalog.DataCorruption, Partition: core.PartialPartition,
			Run: CephDeleteDivergence},
		{Name: "activemq-partial-hang", System: "ActiveMQ", Ref: "AMQ-7064",
			Impact: catalog.SystemCrash, Partition: core.PartialPartition,
			Figure: "Figure 6", Run: ActiveMQPartialPartitionHang},
		{Name: "activemq-double-dequeue", System: "ActiveMQ", Ref: "AMQ-6978",
			Impact: catalog.OtherImpact, Partition: core.CompletePartition,
			Figure: "Listing 2", Run: ActiveMQDoubleDequeue},
		{Name: "terracotta-stale-read", System: "Terracotta", Ref: "terracotta-907",
			Impact: catalog.StaleRead, Partition: core.CompletePartition,
			Run: CacheStaleRead},
		{Name: "terracotta-double-lock", System: "Terracotta", Ref: "terracotta-904",
			Impact: catalog.BrokenLocks, Partition: core.CompletePartition,
			Run: LockDoubleAcquire},
		{Name: "terracotta-cache-loss", System: "Terracotta", Ref: "terracotta-908",
			Impact: catalog.DataLoss, Partition: core.CompletePartition,
			Run: minoritySideValueLost("cache")},
		{Name: "terracotta-list-loss", System: "Terracotta", Ref: "terracotta-905a",
			Impact: catalog.DataLoss, Partition: core.CompletePartition,
			Run: minoritySideValueLost("list")},
		{Name: "terracotta-set-loss", System: "Terracotta", Ref: "terracotta-905b",
			Impact: catalog.DataLoss, Partition: core.CompletePartition,
			Run: minoritySideValueLost("set")},
		{Name: "terracotta-queue-loss", System: "Terracotta", Ref: "terracotta-905c",
			Impact: catalog.DataLoss, Partition: core.CompletePartition,
			Run: minoritySideValueLost("queue")},
		{Name: "terracotta-list-reappear", System: "Terracotta", Ref: "terracotta-906a",
			Impact: catalog.Reappearance, Partition: core.CompletePartition,
			Run: deletedValueReappears("list")},
		{Name: "terracotta-set-reappear", System: "Terracotta", Ref: "terracotta-906b",
			Impact: catalog.Reappearance, Partition: core.CompletePartition,
			Run: deletedValueReappears("set")},
		{Name: "terracotta-queue-reappear", System: "Terracotta", Ref: "terracotta-906c",
			Impact: catalog.Reappearance, Partition: core.CompletePartition,
			Run: deletedValueReappears("queue")},
		{Name: "ignite-cache-stale-read", System: "Ignite", Ref: "IGNITE-9762a",
			Impact: catalog.StaleRead, Partition: core.CompletePartition,
			Run: CacheStaleRead},
		{Name: "ignite-queue-unavailable", System: "Ignite", Ref: "IGNITE-9765a",
			Impact: catalog.DataUnavailability, Partition: core.CompletePartition,
			Run: syncBackupsUnavailable("queue")},
		{Name: "ignite-cache-unavailable", System: "Ignite", Ref: "IGNITE-9762b",
			Impact: catalog.DataUnavailability, Partition: core.CompletePartition,
			Run: syncBackupsUnavailable("cache")},
		{Name: "ignite-double-dequeue", System: "Ignite", Ref: "IGNITE-9765b",
			Impact: catalog.OtherImpact, Partition: core.CompletePartition,
			Run: QueueDoubleDequeue},
		{Name: "ignite-set-unavailable", System: "Ignite", Ref: "IGNITE-9766",
			Impact: catalog.DataUnavailability, Partition: core.CompletePartition,
			Run: syncBackupsUnavailable("set")},
		{Name: "ignite-broken-sequence", System: "Ignite", Ref: "IGNITE-9768a",
			Impact: catalog.BrokenLocks, Partition: core.CompletePartition,
			Run: brokenAtomicCounter("sequence")},
		{Name: "ignite-broken-long", System: "Ignite", Ref: "IGNITE-9768b",
			Impact: catalog.BrokenLocks, Partition: core.CompletePartition,
			Run: brokenAtomicCounter("long")},
		{Name: "ignite-broken-ref", System: "Ignite", Ref: "IGNITE-9768c",
			Impact: catalog.BrokenLocks, Partition: core.CompletePartition,
			Run: BrokenCompareAndSet},
		{Name: "ignite-broken-counters", System: "Ignite", Ref: "IGNITE-9768d",
			Impact: catalog.BrokenLocks, Partition: core.CompletePartition,
			Run: brokenAtomicCounter("counter")},
		{Name: "ignite-atomic-loss", System: "Ignite", Ref: "IGNITE-9768e",
			Impact: catalog.DataLoss, Partition: core.CompletePartition,
			Run: minoritySideValueLost("atomic")},
		{Name: "ignite-semaphore-double-lock", System: "Ignite", Ref: "IGNITE-9767",
			Impact: catalog.BrokenLocks, Partition: core.CompletePartition,
			Figure: "Figure 5", Run: SemaphoreDoubleLocking},
		{Name: "ignite-lock-double-acquire", System: "Ignite", Ref: "IGNITE-8882",
			Impact: catalog.BrokenLocks, Partition: core.CompletePartition,
			Run: LockDoubleAcquire},
		{Name: "ignite-semaphore-corruption", System: "Ignite", Ref: "IGNITE-8883",
			Impact: catalog.BrokenLocks, Partition: core.CompletePartition,
			Run: SemaphoreCorruptionAfterReclaim},
		{Name: "ignite-semaphore-hang", System: "Ignite", Ref: "IGNITE-8881",
			Impact: catalog.SystemCrash, Partition: core.CompletePartition,
			Run: syncBackupsUnavailable("semaphore")},
		{Name: "ignite-broken-status", System: "Ignite", Ref: "IGNITE-8593",
			Impact: catalog.OtherImpact, Partition: core.CompletePartition,
			Run: LastingClusterSplit},
		{Name: "infinispan-dirty-read", System: "Infinispan", Ref: "ISPN-9304",
			Impact: catalog.DirtyRead, Partition: core.CompletePartition,
			Run: DirtyReadAtDeposedLeader},
		{Name: "dkron-misleading-status", System: "DKron", Ref: "dkron-379",
			Impact: catalog.DataCorruption, Partition: core.PartialPartition,
			Run: DKronMisleadingStatus},
		{Name: "moosefs-inconsistent-state", System: "MooseFS", Ref: "moosefs-131",
			Impact: catalog.DataUnavailability, Partition: core.PartialPartition,
			Run: MooseFSInconsistentState},
		{Name: "moosefs-client-hang", System: "MooseFS", Ref: "moosefs-132",
			Impact: catalog.SystemCrash, Partition: core.PartialPartition,
			Run: MooseFSClientHang},
	}
}

// StudyScenarios returns reproductions of studied (Appendix A)
// failures and the remaining figure case studies.
func StudyScenarios() []Scenario {
	return []Scenario{
		{Name: "voltdb-dirty-read", System: "VoltDB", Ref: "ENG-10389",
			Impact: catalog.DirtyRead, Partition: core.CompletePartition,
			Figure: "Figure 2", Run: DirtyReadAtDeposedLeader},
		{Name: "mongodb-stale-read", System: "MongoDB", Ref: "SERVER-17975",
			Impact: catalog.StaleRead, Partition: core.CompletePartition,
			Run: StaleReadDuringOverlap},
		{Name: "elastic-split-brain-loss", System: "Elasticsearch", Ref: "elastic-2488",
			Impact: catalog.DataLoss, Partition: core.PartialPartition,
			Figure: "Listing 1", Run: SplitBrainDataLoss},
		{Name: "bad-leader-data-loss", System: "VoltDB", Ref: "ENG-10486",
			Impact: catalog.DataLoss, Partition: core.CompletePartition,
			Run: BadLeaderLosesAcknowledgedWrites},
		{Name: "deleted-data-reappears", System: "ZooKeeper", Ref: "ZOOKEEPER-2355",
			Impact: catalog.Reappearance, Partition: core.CompletePartition,
			Run: DeletedDataReappears},
		{Name: "conflicting-criteria-leaderless", System: "MongoDB", Ref: "SERVER-14885",
			Impact: catalog.SystemCrash, Partition: core.CompletePartition,
			Run: ConflictingCriteriaLeaderless},
		{Name: "mapreduce-double-execution", System: "MapReduce", Ref: "MAPREDUCE-4819",
			Impact: catalog.DataCorruption, Partition: core.PartialPartition,
			Figure: "Figure 3", Run: MapReduceDoubleExecution},
		{Name: "rethinkdb-config-split-brain", System: "RethinkDB", Ref: "rethinkdb-5289",
			Impact: catalog.DataLoss, Partition: core.PartialPartition,
			Run: RethinkDBConfigSplitBrain},
		{Name: "redis-lww-data-loss", System: "Redis", Ref: "jepsen-283",
			Impact: catalog.DataLoss, Partition: core.CompletePartition,
			Run: LWWLosesAcknowledgedWrite},
		{Name: "hdfs-placement-failure", System: "HDFS", Ref: "HDFS-1384",
			Impact: catalog.PerfDegradation, Partition: core.PartialPartition,
			Run: HDFSPlacementFailure},
		{Name: "hdfs-simplex-degradation", System: "HDFS", Ref: "HDFS-577",
			Impact: catalog.PerfDegradation, Partition: core.SimplexPartition,
			Run: HDFSSimplexDegradation},
		{Name: "rabbitmq-lasting-split", System: "RabbitMQ", Ref: "rabbitmq-1455",
			Impact: catalog.DataLoss, Partition: core.CompletePartition,
			Run: LastingClusterSplit},
	}
}

// RunAll executes every scenario sequentially and collects results.
func RunAll() []Result {
	var out []Result
	for _, s := range All() {
		err := s.Run()
		out = append(out, Result{Scenario: s, Reproduced: err == nil, Err: err})
	}
	return out
}

// notReproduced builds the standard error.
func notReproduced(format string, args ...any) error {
	return fmt.Errorf("not reproduced: "+format, args...)
}
