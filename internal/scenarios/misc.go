package scenarios

import (
	"time"

	"neat/internal/coord"
	"neat/internal/core"
	"neat/internal/dfs"
	"neat/internal/eventual"
	"neat/internal/jobsched"
	"neat/internal/mapred"
	"neat/internal/mqueue"
	"neat/internal/netsim"
	"neat/internal/objstore"
	"neat/internal/raftkv"
)

// ActiveMQPartialPartitionHang reproduces Figure 6 (AMQ-7064): the
// master isolated from its slaves but not from ZooKeeper keeps its
// leadership while being unable to serve; no failover occurs.
func ActiveMQPartialPartitionHang() error {
	eng := core.NewEngine(core.Options{})
	cfg := mqueue.Config{
		Brokers: []netsim.NodeID{"b1", "b2", "b3"}, ZK: "zk",
		SessionPing: 10 * time.Millisecond, RolePoll: 10 * time.Millisecond,
		RequireReplicaAcks: true, RPCTimeout: 30 * time.Millisecond,
	}
	for _, id := range cfg.Brokers {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("zk", core.RoleService)
	eng.AddNode("c1", core.RoleClient)
	sys := mqueue.NewSystem(eng.Network(), cfg,
		coord.Options{SessionTTL: 60 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	if err := eng.Deploy(sys); err != nil {
		return err
	}
	cl := mqueue.NewClient(eng.Network(), "c1", cfg.Brokers)
	defer func() {
		cl.Close()
		eng.Shutdown()
	}()
	if _, err := eng.Partial([]netsim.NodeID{"b1"}, []netsim.NodeID{"b2", "b3"}); err != nil {
		return err
	}
	eng.Sleep(150 * time.Millisecond)
	if m := sys.Masters(); len(m) != 1 || m[0] != "b1" {
		return notReproduced("masters = %v; slaves must not take over", m)
	}
	if err := cl.Send("q", "m"); !mqueue.IsUnavailable(err) {
		return notReproduced("send returned %v, want unavailability", err)
	}
	return nil
}

// ActiveMQDoubleDequeue reproduces Listing 2 (AMQ-6978).
func ActiveMQDoubleDequeue() error {
	eng := core.NewEngine(core.Options{})
	cfg := mqueue.Config{
		Brokers: []netsim.NodeID{"b1", "b2", "b3"}, ZK: "zk",
		SessionPing: 10 * time.Millisecond, RolePoll: 10 * time.Millisecond,
		RPCTimeout: 30 * time.Millisecond,
	}
	for _, id := range cfg.Brokers {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("zk", core.RoleService)
	eng.AddNode("c1", core.RoleClient)
	eng.AddNode("c2", core.RoleClient)
	sys := mqueue.NewSystem(eng.Network(), cfg,
		coord.Options{SessionTTL: 60 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	if err := eng.Deploy(sys); err != nil {
		return err
	}
	c1 := mqueue.NewClient(eng.Network(), "c1", cfg.Brokers)
	c2 := mqueue.NewClient(eng.Network(), "c2", cfg.Brokers)
	defer func() {
		c1.Close()
		c2.Close()
		eng.Shutdown()
	}()
	if err := c1.Send("q1", "msg1"); err != nil {
		return err
	}
	if err := c1.Send("q1", "msg2"); err != nil {
		return err
	}
	if !eng.WaitUntil(time.Second, func() bool {
		return sys.Broker("b2").QueueLen("q1") == 2 && sys.Broker("b3").QueueLen("q1") == 2
	}) {
		return notReproduced("messages never replicated")
	}
	if _, err := eng.Complete(
		[]netsim.NodeID{"b1", "c1"}, []netsim.NodeID{"b2", "b3", "zk", "c2"}); err != nil {
		return err
	}
	minMsg, err := c1.RecvFrom("b1", "q1")
	if err != nil {
		return err
	}
	majMsg := ""
	if !eng.WaitUntil(2*time.Second, func() bool {
		var e error
		majMsg, e = c2.Recv("q1")
		return e == nil
	}) {
		return notReproduced("majority never served")
	}
	if minMsg != majMsg {
		return notReproduced("messages differ (%q vs %q)", minMsg, majMsg)
	}
	return nil
}

// MapReduceDoubleExecution reproduces Figure 3 (MAPREDUCE-4819).
func MapReduceDoubleExecution() error {
	eng := core.NewEngine(core.Options{})
	cfg := mapred.Config{
		RM: "rm", Workers: []netsim.NodeID{"w1", "w2"},
		AMHeartbeat: 10 * time.Millisecond, AMMisses: 3,
		TaskDuration: 20 * time.Millisecond, RPCTimeout: 30 * time.Millisecond,
	}
	eng.AddNode("rm", core.RoleServer)
	eng.AddNode("w1", core.RoleServer)
	eng.AddNode("w2", core.RoleServer)
	eng.AddNode("user", core.RoleClient)
	sys := mapred.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return err
	}
	cl := mapred.NewClient(eng.Network(), "user", cfg)
	defer func() {
		cl.Close()
		eng.Shutdown()
	}()
	if err := cl.Submit("job1", 3); err != nil {
		return err
	}
	if _, err := eng.Partial([]netsim.NodeID{"w1"}, []netsim.NodeID{"rm"}); err != nil {
		return err
	}
	if !eng.WaitUntil(3*time.Second, func() bool {
		return cl.FinalNotifications("job1") >= 2
	}) {
		return notReproduced("job finished %d times, want 2", cl.FinalNotifications("job1"))
	}
	return nil
}

// RethinkDBConfigSplitBrain reproduces issue #5289: the delete-log
// membership tweak leaves two replica sets committing the same keys.
func RethinkDBConfigSplitBrain() error {
	eng := core.NewEngine(core.Options{})
	peers := []netsim.NodeID{"A", "B", "C", "D", "E"}
	cfg := raftkv.Config{
		Peers:              peers,
		HeartbeatInterval:  10 * time.Millisecond,
		ElectionTimeoutMin: 50 * time.Millisecond,
		ElectionTimeoutMax: 100 * time.Millisecond,
		RPCTimeout:         30 * time.Millisecond,
		CommitWait:         500 * time.Millisecond,
		DeleteLogOnRemoval: true,
	}
	for _, id := range peers {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("cl", core.RoleClient)
	eng.AddNode("cl2", core.RoleClient)
	sys := raftkv.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return err
	}
	cl := raftkv.NewClient(eng.Network(), "cl", peers)
	cl2 := raftkv.NewClient(eng.Network(), "cl2", peers)
	defer func() {
		cl.Close()
		cl2.Close()
		eng.Shutdown()
	}()
	if sys.WaitForLeaderAmong(peers, 3*time.Second) == "" {
		return notReproduced("no initial leader")
	}
	if _, err := eng.Partial(
		[]netsim.NodeID{"A", "B", "cl"}, []netsim.NodeID{"D", "E", "cl2"}); err != nil {
		return err
	}
	if err := cl2.ChangeConfig("D", []netsim.NodeID{"D", "E"}); err != nil {
		return err
	}
	if sys.WaitForLeaderAmong([]netsim.NodeID{"A", "B", "C"}, 6*time.Second) == "" {
		return notReproduced("old configuration never elected")
	}
	if sys.WaitForLeaderAmong([]netsim.NodeID{"D", "E"}, 6*time.Second) == "" {
		return notReproduced("new configuration never elected")
	}
	if !eng.WaitUntil(5*time.Second, func() bool { return cl.Put("k", "old-config") == nil }) {
		return notReproduced("old-config write never committed")
	}
	if !eng.WaitUntil(5*time.Second, func() bool { return cl2.Put("k", "new-config") == nil }) {
		return notReproduced("new-config write never committed")
	}
	var vOld, vNew string
	if !eng.WaitUntil(3*time.Second, func() bool {
		v, err := cl.Get("k")
		vOld = v
		return err == nil
	}) {
		return notReproduced("old-config read never succeeded")
	}
	if !eng.WaitUntil(3*time.Second, func() bool {
		v, err := cl2.Get("k")
		vNew = v
		return err == nil
	}) {
		return notReproduced("new-config read never succeeded")
	}
	if vOld == vNew {
		return notReproduced("no divergence: both read %q", vOld)
	}
	return nil
}

// LWWLosesAcknowledgedWrite reproduces the consolidation data loss of
// eventually consistent stores (Jepsen's Redis analysis).
func LWWLosesAcknowledgedWrite() error {
	eng := core.NewEngine(core.Options{})
	ids := []netsim.NodeID{"e1", "e2", "e3"}
	cfg := eventual.Config{
		Replicas: ids, Policy: eventual.LastWriterWins,
		AntiEntropyInterval: 10 * time.Millisecond, RPCTimeout: 30 * time.Millisecond,
	}
	for _, id := range ids {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("c1", core.RoleClient)
	eng.AddNode("c2", core.RoleClient)
	sys := eventual.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return err
	}
	c1 := eventual.NewClient(eng.Network(), "c1")
	c2 := eventual.NewClient(eng.Network(), "c2")
	defer func() {
		c1.Close()
		c2.Close()
		eng.Shutdown()
	}()
	if _, err := eng.Complete(
		[]netsim.NodeID{"e1", "c1"}, []netsim.NodeID{"e2", "e3", "c2"}); err != nil {
		return err
	}
	if err := c1.Put("e1", "k", "first"); err != nil {
		return err
	}
	// Clock-driven separation between the two writes so "second" gets
	// the later LWW timestamp — engine time, not a bare wall sleep.
	eng.Sleep(2 * time.Millisecond)
	if err := c2.Put("e2", "k", "second"); err != nil {
		return err
	}
	if err := eng.HealAll(); err != nil {
		return err
	}
	if !eng.WaitUntil(2*time.Second, func() bool {
		vals, err := c1.Get("e1", "k")
		return err == nil && len(vals) == 1 && vals[0] == "second"
	}) {
		return notReproduced("stores never converged on the later write")
	}
	return nil
}

// CephWriteSucceedsButTimesOut reproduces Ceph tracker #24193 (write).
func CephWriteSucceedsButTimesOut() error {
	f, done := deployCeph()
	defer done()
	if _, err := f.eng.Partial([]netsim.NodeID{"o1"}, []netsim.NodeID{"o2"}); err != nil {
		return err
	}
	if err := f.cl.Write("obj", "data"); !objstore.IsTimeout(err) {
		return notReproduced("write returned %v, want timeout", err)
	}
	if got, err := f.cl.ReadFrom("o1", "obj"); err != nil || got != "data" {
		return notReproduced("'failed' write did not persist: %q, %v", got, err)
	}
	if f.sys.OSD("o2").Has("obj") {
		return notReproduced("no divergence: o2 has the object")
	}
	return nil
}

// CephDeleteDivergence reproduces Ceph tracker #24193 (delete).
func CephDeleteDivergence() error {
	f, done := deployCeph()
	defer done()
	if err := f.cl.Write("obj", "data"); err != nil {
		return err
	}
	if _, err := f.eng.Partial([]netsim.NodeID{"o1"}, []netsim.NodeID{"o2"}); err != nil {
		return err
	}
	if err := f.cl.Delete("obj"); !objstore.IsTimeout(err) {
		return notReproduced("delete returned %v, want timeout", err)
	}
	if f.sys.OSD("o1").Has("obj") || !f.sys.OSD("o2").Has("obj") {
		return notReproduced("replicas did not diverge as expected")
	}
	return nil
}

type cephFixture struct {
	eng *core.Engine
	sys *objstore.System
	cl  *objstore.Client
}

func deployCeph() (*cephFixture, func()) {
	eng := core.NewEngine(core.Options{})
	cfg := objstore.Config{OSDs: []netsim.NodeID{"o1", "o2", "o3"}, RPCTimeout: 30 * time.Millisecond}
	for _, id := range cfg.OSDs {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("cl", core.RoleClient)
	sys := objstore.NewSystem(eng.Network(), cfg)
	_ = eng.Deploy(sys)
	cl := objstore.NewClient(eng.Network(), "cl", cfg)
	return &cephFixture{eng: eng, sys: sys, cl: cl}, func() {
		cl.Close()
		eng.Shutdown()
	}
}

// DKronMisleadingStatus reproduces DKron issue #379.
func DKronMisleadingStatus() error {
	eng := core.NewEngine(core.Options{})
	cfg := jobsched.Config{
		Nodes: []netsim.NodeID{"s1", "s2", "s3"}, Store: "store",
		RPCTimeout: 30 * time.Millisecond,
	}
	for _, id := range cfg.Nodes {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("store", core.RoleService)
	eng.AddNode("cl", core.RoleClient)
	sys := jobsched.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return err
	}
	cl := jobsched.NewClient(eng.Network(), "cl", cfg)
	defer func() {
		cl.Close()
		eng.Shutdown()
	}()
	if _, err := eng.Partial([]netsim.NodeID{"s1"}, []netsim.NodeID{"s2", "s3"}); err != nil {
		return err
	}
	status, err := cl.Run("backup")
	if err == nil || status == jobsched.StatusSucceeded {
		return notReproduced("leader reported %q", status)
	}
	if n := sys.Node("s1").Executions("backup"); n != 1 {
		return notReproduced("job executed %d times on the leader", n)
	}
	rec, err := cl.RecordedStatus("backup")
	if err != nil || rec != jobsched.StatusFailed {
		return notReproduced("recorded status %q, %v", rec, err)
	}
	return nil
}

type dfsFixture struct {
	eng *core.Engine
	sys *dfs.System
	cl  *dfs.Client
}

func deployDFS() (*dfsFixture, func()) {
	eng := core.NewEngine(core.Options{})
	cfg := dfs.Config{
		NameNode: "nn",
		Racks: map[netsim.NodeID]string{
			"d1": "rack0", "d2": "rack0", "d3": "rack1", "d4": "rack1",
		},
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMisses:   10,
		RPCTimeout:        30 * time.Millisecond,
	}
	eng.AddNode("nn", core.RoleServer)
	for _, id := range cfg.DataNodes() {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("cl", core.RoleClient)
	sys := dfs.NewSystem(eng.Network(), cfg)
	_ = eng.Deploy(sys)
	cl := dfs.NewClient(eng.Network(), "cl", cfg)
	return &dfsFixture{eng: eng, sys: sys, cl: cl}, func() {
		cl.Close()
		eng.Shutdown()
	}
}

// HDFSPlacementFailure reproduces HDFS-1384.
func HDFSPlacementFailure() error {
	f, done := deployDFS()
	defer done()
	if _, err := f.eng.Partial([]netsim.NodeID{"cl"}, []netsim.NodeID{"d1", "d2"}); err != nil {
		return err
	}
	if err := f.cl.Write("f1", "data"); !dfs.IsWriteFailed(err) {
		return notReproduced("write returned %v, want retry exhaustion", err)
	}
	return nil
}

// HDFSSimplexDegradation reproduces HDFS-577.
func HDFSSimplexDegradation() error {
	f, done := deployDFS()
	defer done()
	if _, err := f.eng.Simplex(
		[]netsim.NodeID{"d1"}, []netsim.NodeID{"nn", "d2", "d3", "d4", "cl"}); err != nil {
		return err
	}
	f.eng.Sleep(100 * time.Millisecond)
	healthy, err := f.cl.Health()
	if err != nil {
		return err
	}
	seen := false
	for _, id := range healthy {
		if id == "d1" {
			seen = true
		}
	}
	if !seen {
		return notReproduced("NameNode dropped the half-dead node")
	}
	if err := f.cl.Write("f1", "data"); err != nil {
		return err
	}
	if f.cl.LastWriteAttempts() < 2 {
		return notReproduced("no retry overhead observed")
	}
	return nil
}

// MooseFSInconsistentState reproduces MooseFS issue #131.
func MooseFSInconsistentState() error {
	f, done := deployDFS()
	defer done()
	if err := f.cl.Write("f1", "data"); err != nil {
		return err
	}
	if _, err := f.eng.Partial([]netsim.NodeID{"cl"}, []netsim.NodeID{"d1"}); err != nil {
		return err
	}
	if _, err := f.cl.Read("f1"); err == nil {
		return notReproduced("read succeeded; expected metadata/data inconsistency")
	}
	return nil
}

// MooseFSClientHang reproduces MooseFS issue #132: the read blocks on
// the unreachable chunk server until the client's timeout fires.
func MooseFSClientHang() error {
	f, done := deployDFS()
	defer done()
	if err := f.cl.Write("f1", "data"); err != nil {
		return err
	}
	if _, err := f.eng.Partial([]netsim.NodeID{"cl"}, []netsim.NodeID{"d1"}); err != nil {
		return err
	}
	clk := f.eng.Clock()
	start := clk.Now()
	_, err := f.cl.Read("f1")
	if err == nil {
		return notReproduced("read succeeded")
	}
	if clk.Now().Sub(start) < 50*time.Millisecond {
		return notReproduced("read failed fast; expected it to block on the dead replica")
	}
	return nil
}
