package scenarios

import (
	"fmt"
	"time"

	"neat/internal/core"
	"neat/internal/locksvc"
	"neat/internal/netsim"
)

var lockReplicas = []netsim.NodeID{"r1", "r2", "r3"}

type lockFixture struct {
	eng *core.Engine
	sys *locksvc.System
	c1  *locksvc.Client
	c2  *locksvc.Client
}

func lockConfig() locksvc.Config {
	return locksvc.Config{
		Replicas:          lockReplicas,
		HeartbeatInterval: 10 * time.Millisecond,
		// Six misses (60 ms) of tolerance: a false suspicion would
		// permanently evict a healthy peer (RejoinAfterHeal is off, as
		// in the studied systems), so scheduler stalls under heavy
		// parallelism must not masquerade as partitions.
		MissesToSuspect: 6,
		LeaseTTL:        120 * time.Millisecond,
		RPCTimeout:      30 * time.Millisecond,
	}
}

func deployLocks(cfg locksvc.Config) (*lockFixture, func()) {
	eng := core.NewEngine(core.Options{})
	for _, id := range cfg.Replicas {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("c1", core.RoleClient)
	eng.AddNode("c2", core.RoleClient)
	sys := locksvc.NewSystem(eng.Network(), cfg)
	_ = eng.Deploy(sys)
	f := &lockFixture{
		eng: eng, sys: sys,
		c1: locksvc.NewClient(eng.Network(), "c1", cfg.Replicas, cfg.LeaseTTL),
		c2: locksvc.NewClient(eng.Network(), "c2", cfg.Replicas, cfg.LeaseTTL),
	}
	return f, func() {
		f.c1.Close()
		f.c2.Close()
		eng.Shutdown()
	}
}

// splitR3 isolates r3 with client c2 and waits for the views to split.
func (f *lockFixture) splitR3() error {
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"}); err != nil {
		return err
	}
	if !f.eng.WaitUntil(2*time.Second, func() bool {
		return len(f.sys.Replica("r3").View()) == 1 && len(f.sys.Replica("r1").View()) == 2
	}) {
		return notReproduced("membership views never split")
	}
	return nil
}

// SemaphoreDoubleLocking reproduces Figure 5 (IGNITE-9767): both sides
// of a complete partition grant the same single-permit semaphore.
func SemaphoreDoubleLocking() error {
	f, done := deployLocks(lockConfig())
	defer done()
	if err := f.c1.SemCreate("S", 1); err != nil {
		return err
	}
	if err := f.splitR3(); err != nil {
		return err
	}
	if err := f.c1.SemAcquire("S", 1); err != nil {
		return fmt.Errorf("majority-side acquire: %w", err)
	}
	if err := f.c2.SemAcquire("S", 1); err != nil {
		return notReproduced("minority-side acquire failed (%v); double locking needs both", err)
	}
	return nil
}

// LockDoubleAcquire reproduces the exclusive-lock variant
// (terracotta-904, IGNITE-8882).
func LockDoubleAcquire() error {
	f, done := deployLocks(lockConfig())
	defer done()
	if err := f.splitR3(); err != nil {
		return err
	}
	if err := f.c1.Lock("L"); err != nil {
		return err
	}
	if err := f.c2.Lock("L"); err != nil {
		return notReproduced("second acquire failed (%v)", err)
	}
	return nil
}

// SemaphoreCorruptionAfterReclaim reproduces IGNITE-8883: a reclaimed
// permit released late pushes the count past capacity.
func SemaphoreCorruptionAfterReclaim() error {
	f, done := deployLocks(lockConfig())
	defer done()
	if err := f.c1.SemCreate("S", 1); err != nil {
		return err
	}
	if err := f.c1.SemAcquire("S", 1); err != nil {
		return err
	}
	p, err := f.eng.Complete(
		[]netsim.NodeID{"c1"}, []netsim.NodeID{"r1", "r2", "r3", "c2"})
	if err != nil {
		return err
	}
	if !f.eng.WaitUntil(2*time.Second, func() bool {
		permits, _, _ := f.sys.Replica("r1").SemStatus("S")
		return permits == 1
	}) {
		return notReproduced("permit never reclaimed")
	}
	if err := f.eng.Heal(p); err != nil {
		return err
	}
	if err := f.c1.SemRelease("S", 1); err != nil {
		return err
	}
	if _, _, corrupted := f.sys.Replica("r1").SemStatus("S"); !corrupted {
		return notReproduced("semaphore not corrupted after late release")
	}
	return nil
}

// CacheStaleRead reproduces IGNITE-9762 / terracotta-907: the isolated
// side serves the pre-partition value after the other side updated it.
func CacheStaleRead() error {
	f, done := deployLocks(lockConfig())
	defer done()
	if err := f.c1.CachePut("k", "v1"); err != nil {
		return err
	}
	if !f.eng.WaitUntil(time.Second, func() bool {
		got, found, err := f.c2.CacheGet("k")
		return err == nil && found && got == "v1"
	}) {
		return notReproduced("initial value never replicated")
	}
	if err := f.splitR3(); err != nil {
		return err
	}
	if err := f.c1.CachePut("k", "v2"); err != nil {
		return err
	}
	got, _, err := f.c2.CacheGet("k")
	if err != nil {
		return err
	}
	if got != "v1" {
		return notReproduced("minority read %q, want stale v1", got)
	}
	return nil
}

// QueueDoubleDequeue reproduces IGNITE-9765: both sides pop the same
// element.
func QueueDoubleDequeue() error {
	f, done := deployLocks(lockConfig())
	defer done()
	if err := f.c1.QueuePush("q", "m1"); err != nil {
		return err
	}
	if !f.eng.WaitUntil(time.Second, func() bool {
		v, err := f.c2.QueuePop("q")
		if err == nil {
			_ = f.c2.QueuePush("q", v) // peek via pop+push
			return true
		}
		return false
	}) {
		return notReproduced("element never replicated")
	}
	if err := f.splitR3(); err != nil {
		return err
	}
	a, err := f.c1.QueuePop("q")
	if err != nil {
		return err
	}
	b, err := f.c2.QueuePop("q")
	if err != nil {
		return err
	}
	if a != b {
		return notReproduced("popped %q and %q", a, b)
	}
	return nil
}

// BrokenCompareAndSet reproduces IGNITE-9768 (AtomicRef): the same CAS
// succeeds on both sides.
func BrokenCompareAndSet() error {
	f, done := deployLocks(lockConfig())
	defer done()
	if err := f.c1.CompareAndSet("ref", "", "base"); err != nil {
		return err
	}
	if !f.eng.WaitUntil(time.Second, func() bool {
		return f.c2.CompareAndSet("ref", "base", "base") == nil
	}) {
		return notReproduced("base value never replicated")
	}
	if err := f.splitR3(); err != nil {
		return err
	}
	if err := f.c1.CompareAndSet("ref", "base", "x"); err != nil {
		return err
	}
	if err := f.c2.CompareAndSet("ref", "base", "y"); err != nil {
		return notReproduced("second CAS failed (%v)", err)
	}
	return nil
}

// brokenAtomicCounter reproduces IGNITE-9768 for sequences, longs and
// counters: both sides hand out the same next value.
func brokenAtomicCounter(name string) func() error {
	return func() error {
		f, done := deployLocks(lockConfig())
		defer done()
		if _, err := f.c1.IncrementAndGet(name, 5); err != nil {
			return err
		}
		if !f.eng.WaitUntil(time.Second, func() bool {
			v, err := f.c2.IncrementAndGet(name, 0)
			return err == nil && v == 5
		}) {
			return notReproduced("base value never replicated")
		}
		if err := f.splitR3(); err != nil {
			return err
		}
		a, err := f.c1.IncrementAndGet(name, 1)
		if err != nil {
			return err
		}
		b, err := f.c2.IncrementAndGet(name, 1)
		if err != nil {
			return err
		}
		if a != b {
			return notReproduced("sides returned %d and %d", a, b)
		}
		return nil
	}
}

// minoritySideValueLost reproduces terracotta-905/908 and
// IGNITE-9768e: a value acknowledged on the isolated side is invisible
// to the rest of the cluster (and stays lost, since the views never
// merge).
func minoritySideValueLost(structure string) func() error {
	return func() error {
		f, done := deployLocks(lockConfig())
		defer done()
		if err := f.splitR3(); err != nil {
			return err
		}
		key := structure + "-elem"
		switch structure {
		case "atomic":
			if _, err := f.c2.IncrementAndGet(key, 7); err != nil {
				return err
			}
		case "queue", "list", "set":
			if err := f.c2.QueuePush(key, "added"); err != nil {
				return err
			}
		default:
			if err := f.c2.CachePut(key, "added"); err != nil {
				return err
			}
		}
		if err := f.eng.HealAll(); err != nil {
			return err
		}
		f.eng.Sleep(100 * time.Millisecond)
		// The majority side never sees the acknowledged value.
		switch structure {
		case "atomic":
			v, err := f.c1.IncrementAndGet(key, 0)
			if err != nil {
				return err
			}
			if v != 0 {
				return notReproduced("majority sees counter %d", v)
			}
		case "queue", "list", "set":
			if _, err := f.c1.QueuePop(key); !locksvc.IsEmpty(err) {
				return notReproduced("majority popped the minority's element (%v)", err)
			}
		default:
			if _, found, err := f.c1.CacheGet(key); err != nil || found {
				return notReproduced("majority sees the value (found=%v err=%v)", found, err)
			}
		}
		return nil
	}
}

// deletedValueReappears reproduces terracotta-906: an element removed
// on the majority side is still served by the isolated side.
func deletedValueReappears(structure string) func() error {
	return func() error {
		f, done := deployLocks(lockConfig())
		defer done()
		key := structure + "-elem"
		if err := f.c1.QueuePush(key, "kept"); err != nil {
			return err
		}
		if !f.eng.WaitUntil(time.Second, func() bool {
			return f.sys.Replica("r3").QueueLen(key) == 1
		}) {
			return notReproduced("element never replicated to r3")
		}
		if err := f.splitR3(); err != nil {
			return err
		}
		// Majority deletes (pops) the element.
		if _, err := f.c1.QueuePop(key); err != nil {
			return err
		}
		// The isolated side still serves it: the deleted value is back.
		got, err := f.c2.QueuePop(key)
		if err != nil || got != "kept" {
			return notReproduced("minority pop = %q, %v", got, err)
		}
		return nil
	}
}

// syncBackupsUnavailable reproduces the Ignite unavailability class
// (IGNITE-9762/9765/9766/8881): in the synchronous-backup
// configuration, operations on the named structure fail for the whole
// duration of the partition.
func syncBackupsUnavailable(structure string) func() error {
	return func() error {
		cfg := lockConfig()
		cfg.SyncBackups = true
		f, done := deployLocks(cfg)
		defer done()
		if structure == "semaphore" {
			if err := f.c1.SemCreate("S", 1); err != nil {
				return err
			}
		}
		if err := f.splitR3(); err != nil {
			return err
		}
		var err error
		switch structure {
		case "queue", "set":
			err = f.c1.QueuePush("q", "m")
		case "semaphore":
			err = f.c1.SemAcquire("S", 1)
		default:
			err = f.c1.CachePut("k", "v")
		}
		if !locksvc.IsUnavailable(err) {
			return notReproduced("operation on %s returned %v, want unavailability", structure, err)
		}
		return nil
	}
}

// LastingClusterSplit reproduces the Finding 3 lasting damage
// (rabbitmq-1455, Ignite): the membership views never merge after the
// partition heals, so status APIs keep reporting two clusters.
func LastingClusterSplit() error {
	f, done := deployLocks(lockConfig())
	defer done()
	p, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"})
	if err != nil {
		return err
	}
	if !f.eng.WaitUntil(2*time.Second, func() bool {
		return len(f.sys.Replica("r3").View()) == 1 && len(f.sys.Replica("r1").View()) == 2
	}) {
		return notReproduced("views never split")
	}
	if err := f.eng.Heal(p); err != nil {
		return err
	}
	f.eng.Sleep(200 * time.Millisecond)
	if len(f.sys.Replica("r3").View()) != 1 || len(f.sys.Replica("r1").View()) != 2 {
		return notReproduced("views merged after heal")
	}
	return nil
}
