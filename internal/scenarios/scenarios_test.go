package scenarios

import (
	"testing"

	"neat/internal/catalog"
)

// TestTable15Coverage checks the scenario suite covers every Table 15
// row: same count, and per-system counts matching the appendix.
func TestTable15Coverage(t *testing.T) {
	scens := Table15Scenarios()
	if len(scens) != 32 {
		t.Fatalf("scenarios = %d, want 32", len(scens))
	}
	perSystem := map[string]int{}
	for _, s := range scens {
		perSystem[s.System]++
	}
	want := map[string]int{
		"Ceph": 2, "ActiveMQ": 2, "Terracotta": 9, "Ignite": 15,
		"Infinispan": 1, "DKron": 1, "MooseFS": 2,
	}
	for sys, n := range want {
		if perSystem[sys] != n {
			t.Errorf("%s scenarios = %d, want %d", sys, perSystem[sys], n)
		}
	}
	// Catastrophic coverage: Table 15 reports 30 of 32 catastrophic.
	// Count through the catalog's per-row flags (the double-dequeue
	// rows are catastrophic despite their "other" impact category).
	cat := 0
	for _, f := range catalog.Table15(catalog.Load()) {
		if f.Catastrophic {
			cat++
		}
	}
	if cat != 30 {
		t.Errorf("catastrophic Table 15 rows = %d, want 30", cat)
	}
}

// TestFiguresCovered checks every paper figure/listing has a scenario.
func TestFiguresCovered(t *testing.T) {
	want := map[string]bool{
		"Figure 2": false, "Figure 3": false, "Figure 5": false,
		"Figure 6": false, "Listing 1": false, "Listing 2": false,
	}
	for _, s := range All() {
		if s.Figure != "" {
			want[s.Figure] = true
		}
	}
	for fig, seen := range want {
		if !seen {
			t.Errorf("%s has no scenario", fig)
		}
	}
}

// Individual scenario executions. Each subtest runs one live
// fault-injection reproduction end to end.
func TestScenariosReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("live fault-injection scenarios skipped in -short mode")
	}
	// Bound concurrency: dozens of engines with live heartbeaters can
	// starve each other (especially under -race) and fake partitions.
	sem := make(chan struct{}, 8)
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := s.Run(); err != nil {
				t.Fatalf("%s (%s, %s): %v", s.Name, s.System, s.Ref, err)
			}
		})
	}
}

// TestScenarioMetadataConsistent cross-checks scenario metadata with
// the catalog rows they reproduce.
func TestScenarioMetadataConsistent(t *testing.T) {
	byRef := map[string][]*catalog.Failure{}
	for _, f := range catalog.Load() {
		byRef[f.Ref] = append(byRef[f.Ref], f)
	}
	for _, s := range Table15Scenarios() {
		rows := byRef[s.Ref]
		if len(rows) == 0 {
			t.Errorf("scenario %s references %s, not in the catalog", s.Name, s.Ref)
			continue
		}
		found := false
		for _, f := range rows {
			if f.Impact == s.Impact && f.Partition == s.Partition {
				found = true
			}
		}
		if !found {
			t.Errorf("scenario %s (%s %v/%v) matches no catalog row",
				s.Name, s.Ref, s.Impact, s.Partition)
		}
	}
}
