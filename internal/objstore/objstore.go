// Package objstore implements a Ceph-style replicated object store: a
// primary OSD per placement group applies client operations locally,
// replicates them to the secondary OSDs, and acknowledges the client
// only when every replica confirmed.
//
// The NEAT-discovered Ceph failure (tracker #24193) lives in the gap
// between "applied" and "acknowledged": under a partial partition the
// primary applies a write or delete and replicates to the reachable
// secondaries, then times out waiting for the rest — so the client
// receives a timeout for an operation that actually succeeded, and the
// replicas are left divergent (data loss or reappearance depending on
// which replica is consulted later).
package objstore

import (
	"errors"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// RPC method names.
const (
	mWrite  = "osd.write"
	mDelete = "osd.delete"
	mRead   = "osd.read"
	mRepl   = "osd.repl"
)

type writeReq struct{ Obj, Data string }

type deleteReq struct{ Obj string }

type readReq struct{ Obj string }

type replMsg struct {
	Obj    string
	Data   string
	Delete bool
}

// ErrNotFound is returned for missing objects.
var ErrNotFound = errors.New("objstore: object not found")

// ErrTimeout is returned to the client when replication did not fully
// acknowledge — even though the operation was applied on the primary
// and the reachable secondaries. This is the silent-success failure.
var ErrTimeout = errors.New("objstore: operation timed out")

// ErrNotPrimary redirects clients to the primary OSD.
var ErrNotPrimary = errors.New("objstore: not the primary OSD")

// Config configures the object store.
type Config struct {
	// OSDs is the replica set; the first is the primary.
	OSDs []netsim.NodeID
	// RPCTimeout bounds one replication round trip.
	RPCTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Millisecond
	}
	return c
}

// OSD is one object storage daemon.
type OSD struct {
	cfg Config
	id  netsim.NodeID
	ep  *transport.Endpoint

	mu      sync.Mutex
	objects map[string]string
	stopped bool
}

// NewOSD creates an OSD attached to the fabric.
func NewOSD(n *netsim.Network, id netsim.NodeID, cfg Config) *OSD {
	cfg = cfg.withDefaults()
	o := &OSD{cfg: cfg, id: id, ep: transport.NewEndpoint(n, id), objects: make(map[string]string)}
	o.ep.DefaultTimeout = cfg.RPCTimeout
	o.ep.Handle(mWrite, o.onWrite)
	o.ep.Handle(mDelete, o.onDelete)
	o.ep.Handle(mRead, o.onRead)
	o.ep.Handle(mRepl, o.onRepl)
	return o
}

// ID returns the OSD's node ID.
func (o *OSD) ID() netsim.NodeID { return o.id }

// Stop detaches the OSD.
func (o *OSD) Stop() { o.ep.Close() }

func (o *OSD) isPrimary() bool { return len(o.cfg.OSDs) > 0 && o.cfg.OSDs[0] == o.id }

func (o *OSD) secondaries() []netsim.NodeID {
	if !o.isPrimary() {
		return nil
	}
	return append([]netsim.NodeID(nil), o.cfg.OSDs[1:]...)
}

func (o *OSD) onWrite(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(writeReq)
	if !ok {
		return nil, errors.New("bad write")
	}
	if !o.isPrimary() {
		return nil, ErrNotPrimary
	}
	// Apply locally FIRST — this is what makes the later timeout a
	// lie: the operation has already happened.
	o.mu.Lock()
	o.objects[req.Obj] = req.Data
	o.mu.Unlock()
	if o.replicate(replMsg{Obj: req.Obj, Data: req.Data}) < len(o.secondaries()) {
		return nil, ErrTimeout
	}
	return nil, nil
}

func (o *OSD) onDelete(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(deleteReq)
	if !ok {
		return nil, errors.New("bad delete")
	}
	if !o.isPrimary() {
		return nil, ErrNotPrimary
	}
	o.mu.Lock()
	delete(o.objects, req.Obj)
	o.mu.Unlock()
	if o.replicate(replMsg{Obj: req.Obj, Delete: true}) < len(o.secondaries()) {
		return nil, ErrTimeout
	}
	return nil, nil
}

func (o *OSD) replicate(msg replMsg) int {
	acked := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range o.secondaries() {
		s := s
		wg.Add(1)
		clock.Go(o.ep.Clock(), func() {
			defer wg.Done()
			//neat:allow ambiguity -- modeled replication counts only acked secondaries; ambiguity surfaces as the studied divergence
			if _, err := o.ep.Call(s, mRepl, msg, o.cfg.RPCTimeout); err == nil {
				mu.Lock()
				acked++
				mu.Unlock()
			}
		})
	}
	clock.Idle(o.ep.Clock(), wg.Wait)
	return acked
}

func (o *OSD) onRepl(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(replMsg)
	if !ok {
		return nil, errors.New("bad repl")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if msg.Delete {
		delete(o.objects, msg.Obj)
	} else {
		o.objects[msg.Obj] = msg.Data
	}
	return nil, nil
}

func (o *OSD) onRead(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(readReq)
	if !ok {
		return nil, errors.New("bad read")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	data, exists := o.objects[req.Obj]
	if !exists {
		return nil, ErrNotFound
	}
	return data, nil
}

// Has reports whether the OSD stores the object (for divergence
// checks).
func (o *OSD) Has(obj string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	_, ok := o.objects[obj]
	return ok
}

// Client is an object-store client talking to the primary.
type Client struct {
	cfg     Config
	ep      *transport.Endpoint
	timeout time.Duration
}

// NewClient attaches a client.
func NewClient(n *netsim.Network, id netsim.NodeID, cfg Config) *Client {
	return &Client{cfg: cfg.withDefaults(), ep: transport.NewEndpoint(n, id), timeout: 150 * time.Millisecond}
}

// ID returns the client's node ID.
func (c *Client) ID() netsim.NodeID { return c.ep.ID() }

// Close detaches the client.
func (c *Client) Close() { c.ep.Close() }

func (c *Client) primary() netsim.NodeID { return c.cfg.OSDs[0] }

// Write stores an object through the primary.
func (c *Client) Write(obj, data string) error {
	_, err := c.ep.Call(c.primary(), mWrite, writeReq{Obj: obj, Data: data}, c.timeout)
	return err
}

// Delete removes an object through the primary.
func (c *Client) Delete(obj string) error {
	_, err := c.ep.Call(c.primary(), mDelete, deleteReq{Obj: obj}, c.timeout)
	return err
}

// ReadFrom reads an object from a specific OSD (replica divergence is
// the point of several tests).
func (c *Client) ReadFrom(osd netsim.NodeID, obj string) (string, error) {
	resp, err := c.ep.Call(osd, mRead, readReq{Obj: obj}, c.timeout)
	if err != nil {
		return "", err
	}
	s, _ := resp.(string)
	return s, nil
}

// IsTimeout reports whether err is the lying timeout.
func IsTimeout(err error) bool {
	if errors.Is(err, ErrTimeout) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == ErrTimeout.Error()
}

// MaybeExecuted reports whether a failed operation may nevertheless
// have been applied: the primary's own timeout verdict comes after it
// already applied the operation locally (the lying timeout, tracker
// #24193), and a transport-level failure may have reached the primary
// with only the reply lost.
func MaybeExecuted(err error) bool {
	return err != nil && (IsTimeout(err) || !transport.IsRemote(err))
}

// IsNotFound reports whether err is a missing object.
func IsNotFound(err error) bool {
	if errors.Is(err, ErrNotFound) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == ErrNotFound.Error()
}
