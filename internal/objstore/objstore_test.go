package objstore

import (
	"testing"
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
)

var osdIDs = []netsim.NodeID{"o1", "o2", "o3"}

func testConfig() Config {
	return Config{OSDs: osdIDs, RPCTimeout: 30 * time.Millisecond}
}

type fixture struct {
	eng *core.Engine
	sys *System
	cl  *Client
}

func deploy(t *testing.T) *fixture {
	t.Helper()
	eng := core.NewEngine(core.Options{})
	for _, id := range osdIDs {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("cl", core.RoleClient)
	sys := NewSystem(eng.Network(), testConfig())
	if err := eng.Deploy(sys); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	f := &fixture{eng: eng, sys: sys, cl: NewClient(eng.Network(), "cl", testConfig())}
	t.Cleanup(func() {
		f.cl.Close()
		eng.Shutdown()
	})
	return f
}

func TestWriteReadDeleteRoundTrip(t *testing.T) {
	f := deploy(t)
	if err := f.cl.Write("obj", "data"); err != nil {
		t.Fatalf("write: %v", err)
	}
	for _, id := range osdIDs {
		got, err := f.cl.ReadFrom(id, "obj")
		if err != nil || got != "data" {
			t.Fatalf("read from %s = %q, %v", id, got, err)
		}
	}
	if err := f.cl.Delete("obj"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	for _, id := range osdIDs {
		if _, err := f.cl.ReadFrom(id, "obj"); !IsNotFound(err) {
			t.Fatalf("read from %s after delete = %v", id, err)
		}
	}
}

func TestSecondaryRejectsClientOps(t *testing.T) {
	f := deploy(t)
	err := f.cl.Write("obj", "data")
	if err != nil {
		t.Fatal(err)
	}
	// Direct write at a secondary is refused.
	if _, err := f.cl.ep.Call("o2", mWrite, writeReq{Obj: "x", Data: "y"}, time.Second); err == nil {
		t.Fatal("secondary accepted a client write")
	}
}

// TestCeph24193WriteSucceedsButTimesOut reproduces the NEAT Ceph
// finding: a partial partition between the primary and one secondary
// makes writes report a timeout while they in fact persist (on the
// primary and the reachable secondary).
func TestCeph24193WriteSucceedsButTimesOut(t *testing.T) {
	f := deploy(t)
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"o1"}, []netsim.NodeID{"o2"}); err != nil {
		t.Fatal(err)
	}
	err := f.cl.Write("obj", "data")
	if !IsTimeout(err) {
		t.Fatalf("write = %v, want the lying timeout", err)
	}
	// The operation actually succeeded where replication reached.
	got, err := f.cl.ReadFrom("o1", "obj")
	if err != nil || got != "data" {
		t.Fatalf("primary read = %q, %v; the 'failed' write persisted", got, err)
	}
	got, err = f.cl.ReadFrom("o3", "obj")
	if err != nil || got != "data" {
		t.Fatalf("o3 read = %q, %v", got, err)
	}
	// And the replicas diverged: o2 never got it (data loss if o2 is
	// later consulted).
	if f.sys.OSD("o2").Has("obj") {
		t.Fatal("o2 should have missed the write")
	}
}

// TestCeph24193DeleteSucceedsButTimesOut: the delete variant — the
// object is gone from the reachable replicas but survives on the
// partitioned one, so it can reappear later.
func TestCeph24193DeleteSucceedsButTimesOut(t *testing.T) {
	f := deploy(t)
	if err := f.cl.Write("obj", "data"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"o1"}, []netsim.NodeID{"o2"}); err != nil {
		t.Fatal(err)
	}
	err := f.cl.Delete("obj")
	if !IsTimeout(err) {
		t.Fatalf("delete = %v, want timeout", err)
	}
	if f.sys.OSD("o1").Has("obj") {
		t.Fatal("primary should have deleted the object")
	}
	// The partitioned secondary still has it: reappearance material.
	if !f.sys.OSD("o2").Has("obj") {
		t.Fatal("o2 should still hold the deleted object")
	}
}

func TestHealedPartitionKeepsDivergence(t *testing.T) {
	// The divergence is lasting damage: nothing reconciles the
	// replicas after the heal (the studied systems require manual
	// scrubbing).
	f := deploy(t)
	p, err := f.eng.Partial([]netsim.NodeID{"o1"}, []netsim.NodeID{"o2"})
	if err != nil {
		t.Fatal(err)
	}
	_ = f.cl.Write("obj", "data")
	if err := f.eng.Heal(p); err != nil {
		t.Fatal(err)
	}
	f.eng.Sleep(100 * time.Millisecond)
	if f.sys.OSD("o2").Has("obj") {
		t.Fatal("no background repair exists; o2 must still miss the object")
	}
}
