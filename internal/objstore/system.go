package objstore

import (
	"neat/internal/core"
	"neat/internal/netsim"
)

// System bundles the OSDs into NEAT's ISystem interface.
type System struct {
	cfg  Config
	net  *netsim.Network
	osds map[netsim.NodeID]*OSD
}

// NewSystem creates the object store.
func NewSystem(n *netsim.Network, cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{cfg: cfg, net: n, osds: make(map[netsim.NodeID]*OSD)}
	for _, id := range cfg.OSDs {
		s.osds[id] = NewOSD(n, id, cfg)
	}
	return s
}

// Name implements core.ISystem.
func (s *System) Name() string { return "objstore" }

// Start implements core.ISystem (OSDs are passive RPC servers).
func (s *System) Start() error { return nil }

// Stop implements core.ISystem.
func (s *System) Stop() error {
	for _, o := range s.osds {
		o.Stop()
	}
	return nil
}

// Status implements core.ISystem.
func (s *System) Status() map[netsim.NodeID]core.NodeStatus {
	out := make(map[netsim.NodeID]core.NodeStatus, len(s.osds))
	for id := range s.osds {
		role := "secondary"
		if id == s.cfg.OSDs[0] {
			role = "primary"
		}
		out[id] = core.NodeStatus{Up: s.net.IsUp(id), Role: role}
	}
	return out
}

// OSD returns the daemon on a host.
func (s *System) OSD(id netsim.NodeID) *OSD { return s.osds[id] }
