// Package coverage defines the deterministic coverage signal that
// guides the campaign's feedback-directed schedule search.
//
// A round's coverage signature is a 64-bit FNV-1a hash over the
// behaviors the round exhibited — the shape of its recorded history,
// the violation classes it triggered, log2-bucketed fabric packet
// outcomes, and the recovery-phase verdict. Two rounds that drove the
// system through the same states hash identically; a round that
// reached a new state (a different retry pattern, a new drop class, a
// first-ever violation) hashes to something unseen. The campaign
// keeps schedules with novel signatures as mutation seeds, AFL-style.
//
// Everything here is pure computation over values the caller already
// ordered deterministically: the hasher folds inputs in call order
// and holds no maps, so equal input sequences always produce equal
// signatures — on any host, at any worker count.
package coverage

import (
	"fmt"
	"math/bits"
	"strconv"
)

// Signature is one round's 64-bit coverage signature.
type Signature uint64

// String renders the signature as fixed-width hex, the form used in
// corpus files and reports.
func (s Signature) String() string {
	return fmt.Sprintf("%016x", uint64(s))
}

// Parse decodes a signature rendered by String.
func Parse(text string) (Signature, error) {
	v, err := strconv.ParseUint(text, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("coverage: bad signature %q: %w", text, err)
	}
	return Signature(v), nil
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hasher accumulates a coverage signature. The zero value is ready to
// use. Every Write* folds a one-byte domain tag before its payload,
// so adjacent fields cannot alias ("ab"+"c" vs "a"+"bc").
type Hasher struct {
	sum uint64
}

// NewHasher returns a hasher seeded with the FNV-1a offset basis.
func NewHasher() *Hasher {
	return &Hasher{sum: fnvOffset64}
}

func (h *Hasher) byte(b byte) {
	h.sum = (h.sum ^ uint64(b)) * fnvPrime64
}

// WriteString folds a length-prefixed string.
func (h *Hasher) WriteString(s string) {
	h.byte(1)
	h.WriteUint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// WriteUint folds an unsigned value, fixed-width.
func (h *Hasher) WriteUint(v uint64) {
	h.byte(2)
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

// WriteInt folds a signed value, fixed-width.
func (h *Hasher) WriteInt(v int64) {
	h.byte(3)
	for i := 0; i < 8; i++ {
		h.byte(byte(uint64(v) >> (8 * i)))
	}
}

// WriteBool folds a boolean.
func (h *Hasher) WriteBool(b bool) {
	if b {
		h.byte(5)
	} else {
		h.byte(4)
	}
}

// Signature returns the accumulated signature.
func (h *Hasher) Signature() Signature {
	return Signature(h.sum)
}

// Bucket maps a counter to its log2 bucket: 0 stays 0, and n > 0 maps
// to 1+floor(log2 n). Coverage hashes bucketed counters so a round
// that dropped 17 packets instead of 19 is the same behavior, while
// 0 vs 2 vs 40 are different behaviors — the AFL count-bucketing
// insight applied to fabric statistics.
func Bucket(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return uint64(bits.Len64(n))
}

// Set tracks distinct signatures.
type Set struct {
	m map[Signature]struct{}
}

// Add records sig and reports whether it was novel.
func (s *Set) Add(sig Signature) bool {
	if s.m == nil {
		s.m = make(map[Signature]struct{})
	}
	if _, ok := s.m[sig]; ok {
		return false
	}
	s.m[sig] = struct{}{}
	return true
}

// Has reports whether sig was already recorded.
func (s *Set) Has(sig Signature) bool {
	_, ok := s.m[sig]
	return ok
}

// Len is the number of distinct signatures recorded.
func (s *Set) Len() int {
	return len(s.m)
}
