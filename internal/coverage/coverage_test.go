package coverage

import "testing"

// TestHasherDeterministic: equal input sequences produce equal
// signatures, repeatedly — the property the whole search rests on.
func TestHasherDeterministic(t *testing.T) {
	mk := func() Signature {
		h := NewHasher()
		h.WriteString("kvstore")
		h.WriteInt(-42)
		h.WriteUint(7)
		h.WriteBool(true)
		h.WriteString("")
		return h.Signature()
	}
	first := mk()
	for i := 0; i < 50; i++ {
		if got := mk(); got != first {
			t.Fatalf("iteration %d: signature %v, want %v", i, got, first)
		}
	}
}

// TestHasherFieldBoundaries: adjacent fields must not alias — the
// length prefix and domain tags keep "ab"+"c" distinct from "a"+"bc",
// and a string distinct from the equivalent numeric folds.
func TestHasherFieldBoundaries(t *testing.T) {
	sig := func(fold func(h *Hasher)) Signature {
		h := NewHasher()
		fold(h)
		return h.Signature()
	}
	a := sig(func(h *Hasher) { h.WriteString("ab"); h.WriteString("c") })
	b := sig(func(h *Hasher) { h.WriteString("a"); h.WriteString("bc") })
	if a == b {
		t.Fatal("string boundary aliased: ab|c == a|bc")
	}
	if sig(func(h *Hasher) { h.WriteUint(1) }) == sig(func(h *Hasher) { h.WriteInt(1) }) {
		t.Fatal("uint and int folds aliased")
	}
	if sig(func(h *Hasher) { h.WriteBool(true) }) == sig(func(h *Hasher) { h.WriteBool(false) }) {
		t.Fatal("bool folds aliased")
	}
}

func TestSignatureStringParseRoundTrip(t *testing.T) {
	for _, s := range []Signature{0, 1, 0xdeadbeef, ^Signature(0)} {
		text := s.String()
		if len(text) != 16 {
			t.Fatalf("signature %v rendered %q, want fixed 16 hex chars", uint64(s), text)
		}
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if back != s {
			t.Fatalf("round trip %v -> %q -> %v", uint64(s), text, uint64(back))
		}
	}
	if _, err := Parse("not-hex"); err == nil {
		t.Fatal("Parse accepted garbage")
	}
}

func TestBucket(t *testing.T) {
	cases := []struct{ n, want uint64 }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := Bucket(c.n); got != c.want {
			t.Fatalf("Bucket(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSet(t *testing.T) {
	var s Set
	if !s.Add(7) {
		t.Fatal("first Add reported not novel")
	}
	if s.Add(7) {
		t.Fatal("second Add reported novel")
	}
	if !s.Add(8) {
		t.Fatal("distinct Add reported not novel")
	}
	if !s.Has(7) || s.Has(9) {
		t.Fatal("Has answered wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}
