package eventual

import (
	"errors"
	"sort"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// ConsolidationPolicy selects how divergent versions reconcile.
type ConsolidationPolicy int

const (
	// LastWriterWins keeps the version with the newest wall-clock
	// timestamp — the flawed policy the studied systems use. It
	// discards acknowledged writes without checking replication
	// status.
	LastWriterWins ConsolidationPolicy = iota
	// VectorCausality keeps the causally newest version and retains
	// both as siblings when they are concurrent, so nothing
	// acknowledged is silently dropped.
	VectorCausality
)

// String names the policy.
func (p ConsolidationPolicy) String() string {
	if p == VectorCausality {
		return "vector-causality"
	}
	return "last-writer-wins"
}

// Version is one stored version of a key.
type Version struct {
	Val   string
	TS    int64 // wall-clock timestamp (LWW attribute)
	Clock VClock
	Node  netsim.NodeID // coordinator that accepted the write
}

// RPC method names.
const (
	mPut       = "ev.put"
	mGet       = "ev.get"
	mRepl      = "ev.repl"
	mSyncChunk = "ev.syncChunk"
	mSyncBegin = "ev.syncBegin"
	mSyncEnd   = "ev.syncEnd"
	mDigest    = "ev.digest"
)

type putReq struct{ Key, Val string }

// putResp returns the version the coordinator created, vector clock
// included — the write context a Dynamo-style client receives.
type putResp struct{ Ver Version }

type getReq struct{ Key string }

// getResp carries all current siblings of a key.
type getResp struct{ Versions []Version }

type replMsg struct {
	Key      string
	Versions []Version
}

type digestResp map[string][]Version

type syncBeginMsg struct{ Total int }

type syncChunkMsg struct {
	Key      string
	Versions []Version
	Index    int
}

type syncEndMsg struct{ Sent int }

// ErrNotFound is returned for missing keys.
var ErrNotFound = errors.New("eventual: key not found")

// Config configures a replica group.
type Config struct {
	// Replicas is the static membership.
	Replicas []netsim.NodeID
	// Policy is the consolidation policy.
	Policy ConsolidationPolicy
	// AntiEntropyInterval is the gossip period (0 disables background
	// anti-entropy; tests then drive reconciliation explicitly).
	AntiEntropyInterval time.Duration
	// HintedHandoff stores failed replications and replays them later.
	HintedHandoff bool
	// AtomicSync discards a partially received bulk sync instead of
	// applying the prefix. Off by default — applying the prefix is the
	// Redis PSYNC corruption (issue #3899).
	AtomicSync bool
	// SyncChunkDelay paces the bulk transfer (one pause per chunk),
	// modelling the wire time of a large dataset. It widens the
	// window in which a partition can interrupt the sync — the
	// "bounded" timing constraint of Table 11.
	SyncChunkDelay time.Duration
	// RPCTimeout bounds replication calls.
	RPCTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Millisecond
	}
	return c
}

type hint struct {
	peer netsim.NodeID
	msg  replMsg
}

// Replica is one store node.
type Replica struct {
	cfg Config
	id  netsim.NodeID
	ep  *transport.Endpoint

	mu      sync.Mutex
	data    map[string][]Version // current siblings per key
	hints   []hint
	lastTS  int64
	stopped bool

	// syncState tracks an in-progress inbound bulk sync.
	syncRecv    map[string][]Version
	syncExpect  int
	syncGot     int
	corrupted   bool // a partial sync was applied
	syncApplied int

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewReplica creates a replica, unstarted.
func NewReplica(n *netsim.Network, id netsim.NodeID, cfg Config) *Replica {
	cfg = cfg.withDefaults()
	r := &Replica{
		cfg:    cfg,
		id:     id,
		ep:     transport.NewEndpoint(n, id),
		data:   make(map[string][]Version),
		stopCh: make(chan struct{}),
	}
	r.ep.DefaultTimeout = cfg.RPCTimeout
	r.ep.Handle(mPut, r.onPut)
	r.ep.Handle(mGet, r.onGet)
	r.ep.Handle(mRepl, r.onRepl)
	r.ep.Handle(mDigest, r.onDigest)
	r.ep.Handle(mSyncBegin, r.onSyncBegin)
	r.ep.Handle(mSyncChunk, r.onSyncChunk)
	r.ep.Handle(mSyncEnd, r.onSyncEnd)
	return r
}

// ID returns the replica's node ID.
func (r *Replica) ID() netsim.NodeID { return r.id }

// Start launches anti-entropy and hint replay, if configured. The
// ticker is created on the caller for deterministic creation order.
func (r *Replica) Start() {
	if r.cfg.AntiEntropyInterval > 0 {
		r.wg.Add(1)
		t := r.ep.Clock().NewTicker(r.cfg.AntiEntropyInterval)
		go r.antiEntropyLoop(t)
	}
}

// Stop halts the replica.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	close(r.stopCh)
	r.wg.Wait()
	r.ep.Close()
}

func (r *Replica) peers() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(r.cfg.Replicas)-1)
	for _, id := range r.cfg.Replicas {
		if id != r.id {
			out = append(out, id)
		}
	}
	return out
}

func (r *Replica) nextTSLocked() int64 {
	ts := r.ep.Clock().Now().UnixNano()
	if ts <= r.lastTS {
		ts = r.lastTS + 1
	}
	r.lastTS = ts
	return ts
}

// --- consolidation ---

// reconcile merges incoming versions into the current sibling set
// according to the policy, returning the new sibling set.
func (r *Replica) reconcile(current, incoming []Version) []Version {
	switch r.cfg.Policy {
	case VectorCausality:
		return reconcileVector(current, incoming)
	default:
		return reconcileLWW(current, incoming)
	}
}

// reconcileLWW keeps exactly one version: the newest timestamp. No
// replication-status check — the flaw. Timestamp ties break on
// (coordinator, value), the way production LWW stores compare cell
// values: without a total order, two replicas whose versions carry
// equal timestamps (likely under a virtual clock, possible under NTP
// skew) would each keep their own version and never converge.
func reconcileLWW(current, incoming []Version) []Version {
	var best Version
	found := false
	for _, v := range append(append([]Version(nil), current...), incoming...) {
		if !found || lwwLess(best, v) {
			best = v
			found = true
		}
	}
	if !found {
		return nil
	}
	return []Version{best}
}

// lwwLess reports whether b beats a under last-writer-wins.
func lwwLess(a, b Version) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Val < b.Val
}

// reconcileVector drops versions causally dominated by another and
// keeps concurrent versions side by side as siblings.
func reconcileVector(current, incoming []Version) []Version {
	all := append(append([]Version(nil), current...), incoming...)
	var out []Version
	for i, v := range all {
		dominated := false
		for j, w := range all {
			if i == j {
				continue
			}
			switch v.Clock.Compare(w.Clock) {
			case Before:
				dominated = true
			case Equal:
				// Keep the first of identical versions only.
				if j < i {
					dominated = true
				}
			}
			if dominated {
				break
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	return out
}

// --- write path ---

func (r *Replica) onPut(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(putReq)
	if !ok {
		return nil, errors.New("bad put")
	}
	r.mu.Lock()
	// Build the new version: advance past every sibling we know.
	vc := NewVClock()
	for _, v := range r.data[req.Key] {
		vc = vc.Merge(v.Clock)
	}
	vc = vc.Copy().Tick(r.id)
	ver := Version{Val: req.Val, TS: r.nextTSLocked(), Clock: vc, Node: r.id}
	r.data[req.Key] = r.reconcile(r.data[req.Key], []Version{ver})
	msg := replMsg{Key: req.Key, Versions: []Version{ver}}
	peers := r.peers()
	// Register the replication goroutines while the lock still orders
	// us against Stop: Add must never race a Wait on a zero counter.
	spawn := !r.stopped
	if spawn {
		r.wg.Add(len(peers))
	}
	r.mu.Unlock()

	// Asynchronous replication: the client is acknowledged regardless.
	if spawn {
		for _, p := range peers {
			p := p
			clock.Go(r.ep.Clock(), func() {
				defer r.wg.Done()
				//neat:allow ambiguity -- modeled async replication: a maybe-executed replicate re-sends via hints; version merges are idempotent
				if _, err := r.ep.Call(p, mRepl, msg, r.cfg.RPCTimeout); err != nil && r.cfg.HintedHandoff {
					r.mu.Lock()
					r.hints = append(r.hints, hint{peer: p, msg: msg})
					r.mu.Unlock()
				}
			})
		}
	}
	return putResp{Ver: ver}, nil
}

func (r *Replica) onRepl(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(replMsg)
	if !ok {
		return nil, errors.New("bad repl")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.data[msg.Key] = r.reconcile(r.data[msg.Key], msg.Versions)
	for _, v := range msg.Versions {
		if v.TS > r.lastTS {
			r.lastTS = v.TS
		}
	}
	return nil, nil
}

func (r *Replica) onGet(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(getReq)
	if !ok {
		return nil, errors.New("bad get")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions, exists := r.data[req.Key]
	if !exists || len(versions) == 0 {
		return nil, ErrNotFound
	}
	return getResp{Versions: append([]Version(nil), versions...)}, nil
}

func (r *Replica) onDigest(netsim.NodeID, any) (any, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(digestResp, len(r.data))
	for k, vs := range r.data {
		out[k] = append([]Version(nil), vs...)
	}
	return out, nil
}

// --- anti-entropy and hint replay ---

func (r *Replica) antiEntropyLoop(t clock.Ticker) {
	defer r.wg.Done()
	defer t.Stop()
	i := 0
	clock.TickLoop(r.ep.Clock(), t, r.stopCh, func() {
		if peers := r.peers(); len(peers) > 0 {
			r.GossipWith(peers[i%len(peers)])
			i++
			r.replayHints()
		}
	})
}

// GossipWith pulls a peer's digest and merges it (one anti-entropy
// round, callable explicitly from tests).
func (r *Replica) GossipWith(peer netsim.NodeID) {
	//neat:allow ambiguity -- read-only digest pull: a missed gossip round is retried on the next tick
	resp, err := r.ep.Call(peer, mDigest, nil, r.cfg.RPCTimeout)
	if err != nil {
		return
	}
	digest, ok := resp.(digestResp)
	if !ok {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, vs := range digest {
		r.data[k] = r.reconcile(r.data[k], vs)
	}
}

// replayHints attempts to deliver stored hints.
func (r *Replica) replayHints() {
	r.mu.Lock()
	pending := r.hints
	r.hints = nil
	r.mu.Unlock()
	var failed []hint
	for _, h := range pending {
		//neat:allow ambiguity -- hint replay is an idempotent version merge; failures simply re-queue
		if _, err := r.ep.Call(h.peer, mRepl, h.msg, r.cfg.RPCTimeout); err != nil {
			failed = append(failed, h)
		}
	}
	if len(failed) > 0 {
		r.mu.Lock()
		r.hints = append(r.hints, failed...)
		r.mu.Unlock()
	}
}

// HintCount returns how many hints are queued (for tests).
func (r *Replica) HintCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.hints)
}

// --- bulk sync (the Redis PSYNC-style full transfer) ---

// SyncTo pushes this replica's full store to a peer in per-key chunks.
// If the connection dies mid-transfer, the peer is left with whatever
// arrived — see onSyncEnd for how the two configurations differ.
func (r *Replica) SyncTo(peer netsim.NodeID) error {
	r.mu.Lock()
	type kv struct {
		k  string
		vs []Version
	}
	var chunks []kv
	for k, vs := range r.data {
		chunks = append(chunks, kv{k, append([]Version(nil), vs...)})
	}
	r.mu.Unlock()
	// Transfer in key order: the store is a map, and chunk order is
	// visible on the wire (and in any interrupted partial sync).
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].k < chunks[j].k })

	if _, err := r.ep.Call(peer, mSyncBegin, syncBeginMsg{Total: len(chunks)}, r.cfg.RPCTimeout); err != nil {
		return err
	}
	sent := 0
	for i, c := range chunks {
		if r.cfg.SyncChunkDelay > 0 {
			r.ep.Clock().Sleep(r.cfg.SyncChunkDelay)
		}
		if _, err := r.ep.Call(peer, mSyncChunk, syncChunkMsg{Key: c.k, Versions: c.vs, Index: i}, r.cfg.RPCTimeout); err != nil {
			return err // transfer interrupted
		}
		sent++
	}
	_, err := r.ep.Call(peer, mSyncEnd, syncEndMsg{Sent: sent}, r.cfg.RPCTimeout)
	return err
}

func (r *Replica) onSyncBegin(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(syncBeginMsg)
	if !ok {
		return nil, errors.New("bad sync begin")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.syncRecv = make(map[string][]Version)
	r.syncExpect = msg.Total
	r.syncGot = 0
	return nil, nil
}

func (r *Replica) onSyncChunk(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(syncChunkMsg)
	if !ok {
		return nil, errors.New("bad sync chunk")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.syncRecv == nil {
		return nil, errors.New("sync not started")
	}
	r.syncRecv[msg.Key] = msg.Versions
	r.syncGot++
	if !r.cfg.AtomicSync {
		// The flawed behaviour: chunks are applied as they arrive. An
		// interrupted transfer leaves a silently inconsistent store —
		// the Redis partial-backlog corruption.
		r.data[msg.Key] = append([]Version(nil), msg.Versions...)
		r.syncApplied++
		if r.syncGot < r.syncExpect {
			r.corrupted = true // provisional: cleared when sync completes
		}
	}
	return nil, nil
}

func (r *Replica) onSyncEnd(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(syncEndMsg)
	if !ok {
		return nil, errors.New("bad sync end")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	complete := msg.Sent == r.syncExpect && r.syncGot == r.syncExpect
	if complete {
		if r.cfg.AtomicSync {
			// Apply atomically now that everything arrived.
			for k, vs := range r.syncRecv {
				r.data[k] = append([]Version(nil), vs...)
			}
		}
		r.corrupted = false
	}
	r.syncRecv = nil
	return nil, nil
}

// Corrupted reports whether a partial bulk sync was applied and never
// completed (cleared when a later sync finishes).
func (r *Replica) Corrupted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.corrupted
}

// SyncProgress reports the state of an inbound bulk sync: chunks
// received and chunks expected (0,0 when no sync is active).
func (r *Replica) SyncProgress() (got, expect int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.syncRecv == nil {
		return 0, 0
	}
	return r.syncGot, r.syncExpect
}

// Keys returns the number of keys stored (for tests).
func (r *Replica) Keys() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.data)
}

// Versions returns the current siblings of a key (for verification).
func (r *Replica) Versions(key string) []Version {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Version(nil), r.data[key]...)
}
