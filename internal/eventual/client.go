package eventual

import (
	"errors"
	"time"

	"neat/internal/netsim"
	"neat/internal/transport"
)

// Client is bound to one coordinator replica, the way a partitioned
// application instance keeps talking to the replicas on its side.
type Client struct {
	ep      *transport.Endpoint
	timeout time.Duration
}

// NewClient attaches a client to the fabric.
func NewClient(n *netsim.Network, id netsim.NodeID) *Client {
	return &Client{ep: transport.NewEndpoint(n, id), timeout: 100 * time.Millisecond}
}

// ID returns the client's node ID.
func (c *Client) ID() netsim.NodeID { return c.ep.ID() }

// Close detaches the client.
func (c *Client) Close() { c.ep.Close() }

// Put writes through the given coordinator. The write is acknowledged
// as soon as the coordinator applies it locally (asynchronous
// replication — the availability choice).
func (c *Client) Put(coordinator netsim.NodeID, key, val string) error {
	_, err := c.PutV(coordinator, key, val)
	return err
}

// PutV writes like Put and additionally returns the version the
// coordinator created — the write context, vector clock included,
// that a Dynamo-style client receives with its acknowledgement.
func (c *Client) PutV(coordinator netsim.NodeID, key, val string) (Version, error) {
	resp, err := c.ep.Call(coordinator, mPut, putReq{Key: key, Val: val}, c.timeout)
	if err != nil {
		return Version{}, err
	}
	pr, _ := resp.(putResp)
	return pr.Ver, nil
}

// Get reads the sibling values of key from the given coordinator. One
// value means no conflict; multiple values are concurrent siblings the
// application must resolve.
func (c *Client) Get(coordinator netsim.NodeID, key string) ([]string, error) {
	resp, err := c.ep.Call(coordinator, mGet, getReq{Key: key}, c.timeout)
	if err != nil {
		return nil, err
	}
	gr, _ := resp.(getResp)
	out := make([]string, len(gr.Versions))
	for i, v := range gr.Versions {
		out[i] = v.Val
	}
	return out, nil
}

// GetVersions reads the full sibling versions of key — values plus
// vector clocks — from the given coordinator.
func (c *Client) GetVersions(coordinator netsim.NodeID, key string) ([]Version, error) {
	resp, err := c.ep.Call(coordinator, mGet, getReq{Key: key}, c.timeout)
	if err != nil {
		return nil, err
	}
	gr, _ := resp.(getResp)
	return gr.Versions, nil
}

// IsNotFound reports whether err is a missing-key error.
func IsNotFound(err error) bool {
	if errors.Is(err, ErrNotFound) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == ErrNotFound.Error()
}

// MaybeExecuted reports whether a failed operation may nevertheless
// have been applied: client calls go straight to one coordinator, so
// any transport-level failure means the coordinator may have accepted
// the write with only the acknowledgement lost.
func MaybeExecuted(err error) bool {
	return err != nil && !transport.IsRemote(err)
}
