package eventual

import (
	"testing"
	"testing/quick"

	"neat/internal/netsim"
)

func TestCompareBasics(t *testing.T) {
	a := NewVClock().Tick("x")
	b := a.Copy().Tick("x")
	if a.Compare(b) != Before {
		t.Fatal("a must be before b")
	}
	if b.Compare(a) != After {
		t.Fatal("b must be after a")
	}
	if a.Compare(a.Copy()) != Equal {
		t.Fatal("copies must be equal")
	}
}

func TestCompareConcurrent(t *testing.T) {
	base := NewVClock().Tick("x")
	a := base.Copy().Tick("a")
	b := base.Copy().Tick("b")
	if a.Compare(b) != Concurrent || b.Compare(a) != Concurrent {
		t.Fatal("divergent ticks must be concurrent")
	}
}

func TestMergeDominatesBoth(t *testing.T) {
	a := NewVClock().Tick("a").Tick("a")
	b := NewVClock().Tick("b")
	m := a.Merge(b)
	if m.Compare(a) != After && m.Compare(a) != Equal {
		t.Fatal("merge must dominate a")
	}
	if m.Compare(b) != After {
		t.Fatal("merge must dominate b")
	}
	if m["a"] != 2 || m["b"] != 1 {
		t.Fatalf("merge = %v", m)
	}
}

func TestStringDeterministic(t *testing.T) {
	v := VClock{"b": 2, "a": 1}
	if v.String() != "{a:1,b:2}" {
		t.Fatalf("String = %q", v.String())
	}
}

func clockFrom(ticks []uint8, nodes []netsim.NodeID) VClock {
	v := NewVClock()
	for _, tk := range ticks {
		v.Tick(nodes[int(tk)%len(nodes)])
	}
	return v
}

var quickNodes = []netsim.NodeID{"a", "b", "c"}

func TestCompareAntisymmetryProperty(t *testing.T) {
	// Property: Compare(a,b) and Compare(b,a) are always consistent
	// inverses.
	f := func(t1, t2 []uint8) bool {
		a := clockFrom(t1, quickNodes)
		b := clockFrom(t2, quickNodes)
		switch a.Compare(b) {
		case Before:
			return b.Compare(a) == After
		case After:
			return b.Compare(a) == Before
		case Equal:
			return b.Compare(a) == Equal
		case Concurrent:
			return b.Compare(a) == Concurrent
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeUpperBoundProperty(t *testing.T) {
	// Property: a.Merge(b) is never Before or Concurrent with either
	// input.
	f := func(t1, t2 []uint8) bool {
		a := clockFrom(t1, quickNodes)
		b := clockFrom(t2, quickNodes)
		m := a.Merge(b)
		oa, ob := m.Compare(a), m.Compare(b)
		okA := oa == After || oa == Equal
		okB := ob == After || ob == Equal
		return okA && okB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCommutativeProperty(t *testing.T) {
	f := func(t1, t2 []uint8) bool {
		a := clockFrom(t1, quickNodes)
		b := clockFrom(t2, quickNodes)
		return a.Merge(b).Compare(b.Merge(a)) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTickAlwaysAdvancesProperty(t *testing.T) {
	f := func(ticks []uint8, who uint8) bool {
		v := clockFrom(ticks, quickNodes)
		w := v.Copy().Tick(quickNodes[int(who)%len(quickNodes)])
		return v.Compare(w) == Before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrderStrings(t *testing.T) {
	for o, want := range map[Order]string{
		Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent",
	} {
		if o.String() != want {
			t.Fatalf("%d.String() = %q", int(o), o.String())
		}
	}
}
