// Package eventual implements a leaderless, eventually consistent
// replicated store in the mould of Dynamo, Cassandra, Redis, and
// Hazelcast: any replica coordinates a write, replication is
// asynchronous, anti-entropy reconciles divergence, and conflicting
// versions are resolved by a configurable consolidation policy.
//
// The paper's Finding 4 singles out data consolidation as the third
// most failure-prone mechanism: "Redis, MongoDB, Aerospike,
// Elasticsearch, and Hazelcast employ simple policies to automate data
// consolidation, such as the write with the latest timestamp wins...
// because these policies do not check the replication or operation
// status, they can lose data that is replicated on the majority of
// nodes and that was acknowledged to the client." Both the flawed
// policy (last-writer-wins) and the safe alternative (vector-clock
// causality with sibling retention) are implemented so tests can
// demonstrate the difference.
package eventual

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"neat/internal/netsim"
)

// VClock is a vector clock: per-node event counters.
type VClock map[netsim.NodeID]uint64

// NewVClock returns an empty clock.
func NewVClock() VClock { return make(VClock) }

// Copy returns an independent copy.
func (v VClock) Copy() VClock {
	out := make(VClock, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// Tick increments the counter of one node, returning the clock.
func (v VClock) Tick(id netsim.NodeID) VClock {
	v[id]++
	return v
}

// Order is the causal relationship between two clocks.
type Order int

const (
	// Equal means identical clocks.
	Equal Order = iota
	// Before means the receiver causally precedes the argument.
	Before
	// After means the receiver causally follows the argument.
	After
	// Concurrent means neither precedes the other: a true conflict.
	Concurrent
)

// String names the order.
func (o Order) String() string {
	switch o {
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return "equal"
	}
}

// Compare returns the causal order of v relative to w.
func (v VClock) Compare(w VClock) Order {
	vLess, wLess := false, false
	for id, n := range v {
		if n > w[id] {
			wLess = true
		}
	}
	for id, n := range w {
		if n > v[id] {
			vLess = true
		}
	}
	switch {
	case vLess && wLess:
		return Concurrent
	case vLess:
		return Before
	case wLess:
		return After
	default:
		return Equal
	}
}

// Merge returns the element-wise maximum of the two clocks.
func (v VClock) Merge(w VClock) VClock {
	out := v.Copy()
	for id, n := range w {
		if n > out[id] {
			out[id] = n
		}
	}
	return out
}

// String renders the clock deterministically.
func (v VClock) String() string {
	ids := make([]netsim.NodeID, 0, len(v))
	for id := range v {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%s:%d", id, v[id])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ParseVClock is the inverse of String: it rebuilds a clock from its
// deterministic rendering, so a clock that traveled through a
// recorded operation history can be compared again.
func ParseVClock(s string) (VClock, error) {
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return nil, fmt.Errorf("eventual: malformed vclock %q", s)
	}
	out := NewVClock()
	body := s[1 : len(s)-1]
	if body == "" {
		return out, nil
	}
	for _, part := range strings.Split(body, ",") {
		i := strings.LastIndexByte(part, ':')
		if i <= 0 {
			return nil, fmt.Errorf("eventual: malformed vclock entry %q", part)
		}
		n, err := strconv.ParseUint(part[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("eventual: malformed vclock count %q: %w", part, err)
		}
		out[netsim.NodeID(part[:i])] = n
	}
	return out, nil
}
