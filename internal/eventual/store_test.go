package eventual

import (
	"testing"
	"testing/quick"
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
)

var storeIDs = []netsim.NodeID{"e1", "e2", "e3"}

func testConfig(policy ConsolidationPolicy) Config {
	return Config{
		Replicas:            storeIDs,
		Policy:              policy,
		AntiEntropyInterval: 10 * time.Millisecond,
		RPCTimeout:          30 * time.Millisecond,
	}
}

type fixture struct {
	eng *core.Engine
	sys *System
	c1  *Client
	c2  *Client
}

func deploy(t *testing.T, cfg Config) *fixture {
	t.Helper()
	eng := core.NewEngine(core.Options{})
	for _, id := range cfg.Replicas {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("c1", core.RoleClient)
	eng.AddNode("c2", core.RoleClient)
	sys := NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	f := &fixture{
		eng: eng, sys: sys,
		c1: NewClient(eng.Network(), "c1"),
		c2: NewClient(eng.Network(), "c2"),
	}
	t.Cleanup(func() {
		f.c1.Close()
		f.c2.Close()
		eng.Shutdown()
	})
	return f
}

func (f *fixture) waitValue(t *testing.T, node netsim.NodeID, key, want string) {
	t.Helper()
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		vals, err := f.c1.Get(node, key)
		return err == nil && len(vals) == 1 && vals[0] == want
	})
	if !ok {
		vals, err := f.c1.Get(node, key)
		t.Fatalf("%s never converged: %v, %v (want %q)", node, vals, err, want)
	}
}

func TestWriteConvergesToAllReplicas(t *testing.T) {
	f := deploy(t, testConfig(LastWriterWins))
	if err := f.c1.Put("e1", "k", "v"); err != nil {
		t.Fatal(err)
	}
	for _, id := range storeIDs {
		f.waitValue(t, id, "k", "v")
	}
}

func TestReadMissingKey(t *testing.T) {
	f := deploy(t, testConfig(LastWriterWins))
	if _, err := f.c1.Get("e1", "nope"); !IsNotFound(err) {
		t.Fatalf("missing key = %v, want not-found", err)
	}
}

// TestLWWLosesAcknowledgedWrite demonstrates Finding 4's consolidation
// data loss: during a partition both sides accept writes to the same
// key; on heal the later wall-clock timestamp silently wins, and the
// other acknowledged write vanishes everywhere.
func TestLWWLosesAcknowledgedWrite(t *testing.T) {
	f := deploy(t, testConfig(LastWriterWins))
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"e1", "c1"}, []netsim.NodeID{"e2", "e3", "c2"}); err != nil {
		t.Fatal(err)
	}
	// Acknowledged on side 1 first, then side 2 (a later timestamp).
	if err := f.c1.Put("e1", "k", "first"); err != nil {
		t.Fatal(err)
	}
	//neat:allow realclock -- LWW needs two distinct real timestamps here
	time.Sleep(2 * time.Millisecond) // ensure distinct wall-clock order
	if err := f.c2.Put("e2", "k", "second"); err != nil {
		t.Fatal(err)
	}
	if err := f.eng.HealAll(); err != nil {
		t.Fatal(err)
	}
	// Anti-entropy converges everyone onto "second"; "first" is lost
	// with no conflict surfaced.
	for _, id := range storeIDs {
		f.waitValue(t, id, "k", "second")
	}
	vals, err := f.c1.Get("e1", "k")
	if err != nil || len(vals) != 1 {
		t.Fatalf("siblings = %v, %v; LWW must silently keep exactly one", vals, err)
	}
}

// TestVectorCausalityKeepsSiblings is the control: the same scenario
// under vector-clock consolidation surfaces both writes as concurrent
// siblings instead of dropping one.
func TestVectorCausalityKeepsSiblings(t *testing.T) {
	f := deploy(t, testConfig(VectorCausality))
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"e1", "c1"}, []netsim.NodeID{"e2", "e3", "c2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.c1.Put("e1", "k", "first"); err != nil {
		t.Fatal(err)
	}
	if err := f.c2.Put("e2", "k", "second"); err != nil {
		t.Fatal(err)
	}
	if err := f.eng.HealAll(); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		vals, err := f.c1.Get("e1", "k")
		return err == nil && len(vals) == 2
	})
	if !ok {
		vals, _ := f.c1.Get("e1", "k")
		t.Fatalf("siblings = %v, want both concurrent writes preserved", vals)
	}
}

func TestCausalOverwriteLeavesOneVersion(t *testing.T) {
	// A write that has seen the previous version dominates it — no
	// sibling explosion for ordinary sequential updates.
	f := deploy(t, testConfig(VectorCausality))
	if err := f.c1.Put("e1", "k", "v1"); err != nil {
		t.Fatal(err)
	}
	f.waitValue(t, "e1", "k", "v1")
	if err := f.c1.Put("e1", "k", "v2"); err != nil {
		t.Fatal(err)
	}
	for _, id := range storeIDs {
		f.waitValue(t, id, "k", "v2")
	}
}

// TestHintedHandoffDeliversAfterHeal: writes to a partitioned peer are
// stored as hints and replayed once the partition heals.
func TestHintedHandoffDeliversAfterHeal(t *testing.T) {
	cfg := testConfig(LastWriterWins)
	cfg.HintedHandoff = true
	cfg.AntiEntropyInterval = 10 * time.Millisecond
	f := deploy(t, cfg)
	p, err := f.eng.Complete(
		[]netsim.NodeID{"e3"}, []netsim.NodeID{"e1", "e2", "c1", "c2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.c1.Put("e1", "k", "v"); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return f.sys.Replica("e1").HintCount() > 0
	})
	if !ok {
		t.Fatal("hint never stored for the unreachable replica")
	}
	if err := f.eng.Heal(p); err != nil {
		t.Fatal(err)
	}
	f.waitValue(t, "e3", "k", "v")
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		return f.sys.Replica("e1").HintCount() == 0
	})
	if !ok {
		t.Fatal("hints never drained after heal")
	}
}

// TestInterruptedSyncCorruptsNonAtomicReceiver reproduces the Redis
// PSYNC corruption (issue #3899): a partition in the middle of a bulk
// sync leaves the receiver with a silently applied prefix.
func TestInterruptedSyncCorruptsNonAtomicReceiver(t *testing.T) {
	cfg := testConfig(LastWriterWins)
	cfg.AntiEntropyInterval = 0               // no background repair; isolate the sync path
	cfg.SyncChunkDelay = 3 * time.Millisecond // pace the transfer: a ~30ms window
	f := deploy(t, cfg)
	for i := 0; i < 10; i++ {
		if err := f.c1.Put("e1", string(rune('a'+i)), "v"); err != nil {
			t.Fatal(err)
		}
	}
	src := f.sys.Replica("e1")
	// Interrupt the transfer partway: wait until the receiver has some
	// (but not all) chunks, then partition — exactly the "partition
	// during a sync operation" timing constraint (Table 11's Bounded
	// class).
	done := make(chan error, 1)
	go func() { done <- src.SyncTo("e3") }()
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		got, _ := f.sys.Replica("e3").SyncProgress()
		return got >= 1
	})
	if !ok {
		t.Fatal("sync never started")
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"e3"}, []netsim.NodeID{"e1", "e2", "c1", "c2"}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("sync should have been interrupted by the partition")
	}
	if !f.sys.Replica("e3").Corrupted() {
		t.Fatalf("receiver got %d keys and is not marked corrupted", f.sys.Replica("e3").Keys())
	}
}

// TestAtomicSyncDiscardsPartialTransfer is the fix control.
func TestAtomicSyncDiscardsPartialTransfer(t *testing.T) {
	cfg := testConfig(LastWriterWins)
	cfg.AntiEntropyInterval = 0
	cfg.AtomicSync = true
	cfg.SyncChunkDelay = 3 * time.Millisecond
	f := deploy(t, cfg)
	for i := 0; i < 10; i++ {
		if err := f.c1.Put("e1", string(rune('a'+i)), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Replication was asynchronous: e3 may have some keys already.
	// What matters is that an interrupted SYNC doesn't corrupt it.
	src := f.sys.Replica("e1")
	done := make(chan error, 1)
	go func() { done <- src.SyncTo("e3") }()
	f.eng.WaitUntil(2*time.Second, func() bool {
		got, _ := f.sys.Replica("e3").SyncProgress()
		return got >= 1
	})
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"e3"}, []netsim.NodeID{"e1", "e2", "c1", "c2"}); err != nil {
		t.Fatal(err)
	}
	<-done
	if f.sys.Replica("e3").Corrupted() {
		t.Fatal("atomic receiver must never be corrupted by an interrupted sync")
	}
}

func TestGossipWithMergesExplicitly(t *testing.T) {
	cfg := testConfig(LastWriterWins)
	cfg.AntiEntropyInterval = 0
	f := deploy(t, cfg)
	if err := f.c1.Put("e1", "k", "v"); err != nil {
		t.Fatal(err)
	}
	// e3 may have missed the async replication; explicit gossip fixes it.
	f.sys.Replica("e3").GossipWith("e1")
	vals, err := f.c1.Get("e3", "k")
	if err != nil || len(vals) != 1 || vals[0] != "v" {
		t.Fatalf("after gossip: %v, %v", vals, err)
	}
}

func TestReconcileLWWKeepsExactlyNewestProperty(t *testing.T) {
	// Property: LWW reconciliation returns exactly one version — the
	// maximum timestamp — for any non-empty inputs.
	f := func(curTS, incTS []int16) bool {
		var cur, inc []Version
		max := int64(-1 << 16)
		for _, ts := range curTS {
			cur = append(cur, Version{Val: "c", TS: int64(ts)})
			if int64(ts) > max {
				max = int64(ts)
			}
		}
		for _, ts := range incTS {
			inc = append(inc, Version{Val: "i", TS: int64(ts)})
			if int64(ts) > max {
				max = int64(ts)
			}
		}
		out := reconcileLWW(cur, inc)
		if len(cur)+len(inc) == 0 {
			return len(out) == 0
		}
		return len(out) == 1 && out[0].TS == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReconcileVectorNeverKeepsDominatedProperty(t *testing.T) {
	// Property: after vector reconciliation, no surviving version is
	// causally dominated by another survivor.
	f := func(seqs [][]uint8) bool {
		if len(seqs) > 6 {
			seqs = seqs[:6]
		}
		var versions []Version
		for i, ticks := range seqs {
			v := NewVClock()
			for _, tk := range ticks {
				v.Tick(quickNodes[int(tk)%len(quickNodes)])
			}
			versions = append(versions, Version{Val: string(rune('a' + i)), Clock: v})
		}
		out := reconcileVector(nil, versions)
		for i, a := range out {
			for j, b := range out {
				if i != j && a.Clock.Compare(b.Clock) == Before {
					return false
				}
			}
		}
		// And every input is either kept or dominated by a survivor.
		for _, in := range versions {
			kept := false
			for _, s := range out {
				o := in.Clock.Compare(s.Clock)
				if o == Equal || o == Before {
					kept = true
					break
				}
			}
			if !kept {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
