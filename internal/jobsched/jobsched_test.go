package jobsched

import (
	"testing"
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
)

var schedIDs = []netsim.NodeID{"s1", "s2", "s3"}

func testConfig() Config {
	return Config{
		Nodes:      schedIDs,
		Store:      "store",
		RPCTimeout: 30 * time.Millisecond,
	}
}

type fixture struct {
	eng *core.Engine
	sys *System
	cl  *Client
}

func deploy(t *testing.T) *fixture {
	t.Helper()
	eng := core.NewEngine(core.Options{})
	for _, id := range schedIDs {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("store", core.RoleService)
	eng.AddNode("cl", core.RoleClient)
	sys := NewSystem(eng.Network(), testConfig())
	if err := eng.Deploy(sys); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	f := &fixture{eng: eng, sys: sys, cl: NewClient(eng.Network(), "cl", testConfig())}
	t.Cleanup(func() {
		f.cl.Close()
		eng.Shutdown()
	})
	return f
}

func TestJobRunsOnAllAgentsAndSucceeds(t *testing.T) {
	f := deploy(t)
	status, err := f.cl.Run("backup")
	if err != nil || status != StatusSucceeded {
		t.Fatalf("run = %q, %v", status, err)
	}
	for _, id := range schedIDs {
		if n := f.sys.Node(id).Executions("backup"); n != 1 {
			t.Fatalf("%s executed %d times, want 1", id, n)
		}
	}
	rec, err := f.cl.RecordedStatus("backup")
	if err != nil || rec != StatusSucceeded {
		t.Fatalf("recorded = %q, %v", rec, err)
	}
}

// TestDKron379MisleadingTaskStatus reproduces the NEAT DKron finding:
// a partial partition separates the leader from the other agents but
// not from the central store. The job executes on the leader, yet the
// store records FAILED.
func TestDKron379MisleadingTaskStatus(t *testing.T) {
	f := deploy(t)
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"s1"}, []netsim.NodeID{"s2", "s3"}); err != nil {
		t.Fatal(err)
	}
	status, err := f.cl.Run("backup")
	if err == nil || status == StatusSucceeded {
		t.Fatalf("run = %q, %v; leader should report failure", status, err)
	}
	// The job DID execute on the leader.
	if n := f.sys.Node("s1").Executions("backup"); n != 1 {
		t.Fatalf("leader executed %d times, want 1", n)
	}
	// And the central store says it failed: misleading information.
	rec, err := f.cl.RecordedStatus("backup")
	if err != nil || rec != StatusFailed {
		t.Fatalf("recorded = %q, %v; want the misleading FAILED", rec, err)
	}
}

// TestUserRetryCausesDoubleExecution follows the misleading status to
// its consequence: the user reruns the "failed" job after the heal and
// it executes a second time everywhere.
func TestUserRetryCausesDoubleExecution(t *testing.T) {
	f := deploy(t)
	p, err := f.eng.Partial([]netsim.NodeID{"s1"}, []netsim.NodeID{"s2", "s3"})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.cl.Run("backup")
	if err := f.eng.Heal(p); err != nil {
		t.Fatal(err)
	}
	if status, err := f.cl.Run("backup"); err != nil || status != StatusSucceeded {
		t.Fatalf("retry = %q, %v", status, err)
	}
	if n := f.sys.Node("s1").Executions("backup"); n != 2 {
		t.Fatalf("leader executed %d times; the retry doubled the work", n)
	}
}

// TestTruthfulStatusUnderPartition is the safe-mode control for DKron
// #379: same partial partition, but the status records what actually
// happened — the job ran on the leader, so the user is told it
// succeeded and has no reason to retry it into double execution.
func TestTruthfulStatusUnderPartition(t *testing.T) {
	eng := core.NewEngine(core.Options{})
	cfg := testConfig()
	cfg.TruthfulStatus = true
	for _, id := range schedIDs {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("store", core.RoleService)
	eng.AddNode("cl", core.RoleClient)
	sys := NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	cl := NewClient(eng.Network(), "cl", cfg)
	t.Cleanup(func() {
		cl.Close()
		eng.Shutdown()
	})
	if _, err := eng.Partial(
		[]netsim.NodeID{"s1"}, []netsim.NodeID{"s2", "s3"}); err != nil {
		t.Fatal(err)
	}
	status, err := cl.Run("backup")
	if err != nil || status != StatusSucceeded {
		t.Fatalf("run = %q, %v; truthful status must report the execution that happened", status, err)
	}
	if n := sys.Node("s1").Executions("backup"); n != 1 {
		t.Fatalf("leader executed %d times, want 1", n)
	}
	rec, err := cl.RecordedStatus("backup")
	if err != nil || rec != StatusSucceeded {
		t.Fatalf("recorded = %q, %v; the store must not call a job that ran FAILED", rec, err)
	}
	if n, err := cl.ExecutionsOn("s1", "backup"); err != nil || n != 1 {
		t.Fatalf("ExecutionsOn(s1) = %d, %v", n, err)
	}
}

func TestNonLeaderRejectsRun(t *testing.T) {
	f := deploy(t)
	if _, err := f.cl.ep.Call("s2", mRunJob, runReq{Job: "x"}, time.Second); err == nil {
		t.Fatal("agent accepted a run request")
	}
}
