package jobsched

import (
	"neat/internal/coord"
	"neat/internal/core"
	"neat/internal/netsim"
)

// System bundles the scheduler nodes and the central store into NEAT's
// ISystem interface.
type System struct {
	cfg   Config
	net   *netsim.Network
	store *coord.Service
	nodes map[netsim.NodeID]*Node
}

// NewSystem creates the scheduler.
func NewSystem(n *netsim.Network, cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{
		cfg:   cfg,
		net:   n,
		store: coord.NewService(n, cfg.Store, coord.Options{}),
		nodes: make(map[netsim.NodeID]*Node),
	}
	for _, id := range cfg.Nodes {
		s.nodes[id] = NewNode(n, id, cfg)
	}
	return s
}

// Name implements core.ISystem.
func (s *System) Name() string { return "jobsched" }

// Start implements core.ISystem.
func (s *System) Start() error {
	s.store.Start()
	return nil
}

// Stop implements core.ISystem.
func (s *System) Stop() error {
	for _, nd := range s.nodes {
		nd.Stop()
	}
	s.store.Stop()
	return nil
}

// Status implements core.ISystem.
func (s *System) Status() map[netsim.NodeID]core.NodeStatus {
	out := make(map[netsim.NodeID]core.NodeStatus, len(s.nodes)+1)
	for id := range s.nodes {
		role := "agent"
		if id == s.cfg.Nodes[0] {
			role = "leader"
		}
		out[id] = core.NodeStatus{Up: s.net.IsUp(id), Role: role}
	}
	out[s.cfg.Store] = core.NodeStatus{Up: s.net.IsUp(s.cfg.Store), Role: "store"}
	return out
}

// Node returns the scheduler member on a host.
func (s *System) Node(id netsim.NodeID) *Node { return s.nodes[id] }
