// Package jobsched implements a DKron/Chronos-style distributed job
// scheduler: a leader node dispatches job executions to agent nodes
// and records each execution's status in a central data store.
//
// The NEAT-discovered DKron failure (issue #379) is the gap between
// execution and bookkeeping: when a partial partition separates the
// leader from its agents — but not from the data store — the leader
// runs the job locally (it is an agent too), the job genuinely
// executes, and yet the status written to the store says FAILED
// because the agent acknowledgements never arrived. The user is told
// the task failed when it ran: misleading status, and double execution
// if the user retries by hand.
package jobsched

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/coord"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// RPC method names.
const (
	mRunJob    = "job.run"
	mExecute   = "job.execute"
	mExecCount = "job.execCount"
)

type runReq struct{ Job string }

type executeReq struct{ Job string }

type execCountReq struct{ Job string }

// StatusSucceeded and StatusFailed are the status strings recorded in
// the central store.
const (
	StatusSucceeded = "succeeded"
	StatusFailed    = "failed"
)

// ErrNotLeader redirects to the scheduling leader.
var ErrNotLeader = errors.New("jobsched: not the leader")

// Config configures the scheduler.
type Config struct {
	// Nodes are the scheduler members; the first is the leader.
	Nodes []netsim.NodeID
	// Store is the central data store (a coord.Service node).
	Store netsim.NodeID
	// QuorumAcks is how many agent acknowledgements the leader wants
	// before declaring an execution successful.
	QuorumAcks int
	// TruthfulStatus is the fix for DKron issue #379's misleading
	// status: the recorded outcome reflects whether the job actually
	// executed (any confirmed execution, the leader's own included)
	// rather than whether an ack quorum was reached. The user is never
	// told "failed" about a job that ran, so a manual retry cannot
	// double-execute it. Off by default — the studied flaw judges by
	// ack count alone.
	TruthfulStatus bool
	// RPCTimeout bounds dispatch calls.
	RPCTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.QuorumAcks == 0 {
		c.QuorumAcks = len(c.Nodes)/2 + 1
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Millisecond
	}
	return c
}

// Node is one scheduler member. Every node can execute jobs; the
// leader additionally coordinates and records statuses.
type Node struct {
	cfg Config
	id  netsim.NodeID
	ep  *transport.Endpoint

	mu         sync.Mutex
	executions map[string]int // job -> times executed locally
}

// NewNode creates a scheduler node.
func NewNode(n *netsim.Network, id netsim.NodeID, cfg Config) *Node {
	cfg = cfg.withDefaults()
	nd := &Node{cfg: cfg, id: id, ep: transport.NewEndpoint(n, id), executions: make(map[string]int)}
	nd.ep.DefaultTimeout = cfg.RPCTimeout
	nd.ep.Handle(mRunJob, nd.onRunJob)
	nd.ep.Handle(mExecute, nd.onExecute)
	nd.ep.Handle(mExecCount, nd.onExecCount)
	return nd
}

// ID returns the node's ID.
func (nd *Node) ID() netsim.NodeID { return nd.id }

// Stop detaches the node.
func (nd *Node) Stop() { nd.ep.Close() }

func (nd *Node) isLeader() bool { return len(nd.cfg.Nodes) > 0 && nd.cfg.Nodes[0] == nd.id }

// Executions reports how many times a job ran on this node.
func (nd *Node) Executions(job string) int {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.executions[job]
}

func (nd *Node) onExecute(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(executeReq)
	if !ok {
		return nil, errors.New("bad execute")
	}
	nd.mu.Lock()
	nd.executions[req.Job]++
	nd.mu.Unlock()
	return "ok", nil
}

func (nd *Node) onExecCount(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(execCountReq)
	if !ok {
		return nil, errors.New("bad execCount")
	}
	return nd.Executions(req.Job), nil
}

// onRunJob is the leader's dispatch path: execute on every member
// (including itself), then record the outcome in the central store.
// The outcome is judged by acknowledgement count — not by whether the
// job actually ran — which is the DKron flaw.
func (nd *Node) onRunJob(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(runReq)
	if !ok {
		return nil, errors.New("bad run")
	}
	if !nd.isLeader() {
		return nil, ErrNotLeader
	}
	acks := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	clk := nd.ep.Clock()
	for _, member := range nd.cfg.Nodes {
		if member == nd.id {
			// The leader is an agent too and executes in-process — it
			// cannot RPC itself (the request would queue behind this
			// very handler), and its own execution is first-hand
			// knowledge, not an acknowledgement that can be lost.
			nd.mu.Lock()
			nd.executions[req.Job]++
			nd.mu.Unlock()
			acks++
			continue
		}
		member := member
		wg.Add(1)
		// clock.Go accounts each dispatch worker as in-flight work, so a
		// virtual clock cannot advance across the spawn gap; the join
		// runs under clock.Idle so the workers' RPC timeouts can fire.
		clock.Go(clk, func() {
			defer wg.Done()
			//neat:allow ambiguity -- modeled DKron dispatch: only acked executes count; the maybe-executed gap is the reproduced double-run
			if _, err := nd.ep.Call(member, mExecute, executeReq{Job: req.Job}, nd.cfg.RPCTimeout); err == nil {
				mu.Lock()
				acks++
				mu.Unlock()
			}
		})
	}
	clock.Idle(clk, wg.Wait)

	status := StatusSucceeded
	if nd.cfg.TruthfulStatus {
		// The fix: the status records what actually happened — failed
		// only if the job verifiably ran nowhere. While the leader
		// co-hosts an agent that branch is unreachable (its own
		// in-process execution is always evidence), which is the point:
		// the user is never told "failed" about work that was done, and
		// never retries it into double execution.
		if acks == 0 {
			status = StatusFailed
		}
	} else if acks < nd.cfg.QuorumAcks {
		status = StatusFailed
	}
	// Record in the central store — reachable even when the agents
	// are not, which is exactly how the misleading status is born.
	_ = coord.Put(nd.ep, nd.cfg.Store, "/jobs/"+req.Job, status, nd.cfg.RPCTimeout)
	if status == StatusFailed {
		return status, fmt.Errorf("jobsched: job %s: only %d of %d acks", req.Job, acks, nd.cfg.QuorumAcks)
	}
	return status, nil
}

// Client triggers jobs and inspects recorded statuses.
type Client struct {
	cfg     Config
	ep      *transport.Endpoint
	timeout time.Duration
}

// NewClient attaches a scheduler client.
func NewClient(n *netsim.Network, id netsim.NodeID, cfg Config) *Client {
	return &Client{cfg: cfg.withDefaults(), ep: transport.NewEndpoint(n, id), timeout: 150 * time.Millisecond}
}

// ID returns the client's node ID.
func (c *Client) ID() netsim.NodeID { return c.ep.ID() }

// Close detaches the client.
func (c *Client) Close() { c.ep.Close() }

// Run triggers a job on the leader and returns the status the leader
// reported. A transport-level failure is marked maybe-executed: the
// leader can have dispatched (and run) the job with only the reply
// lost.
func (c *Client) Run(job string) (string, error) {
	resp, err := c.ep.Call(c.cfg.Nodes[0], mRunJob, runReq{Job: job}, c.timeout)
	s, _ := resp.(string)
	if err != nil && !transport.IsRemote(err) {
		return s, transport.MarkMaybeExecuted(err)
	}
	return s, err
}

// ExecutionsOn asks one scheduler member how many times it executed a
// job — the per-node observation the exactly-once checker judges.
func (c *Client) ExecutionsOn(node netsim.NodeID, job string) (int, error) {
	resp, err := c.ep.Call(node, mExecCount, execCountReq{Job: job}, c.timeout)
	if err != nil {
		return 0, err
	}
	n, _ := resp.(int)
	return n, nil
}

// RecordedStatus reads the job status from the central store.
func (c *Client) RecordedStatus(job string) (string, error) {
	return coord.Get(c.ep, c.cfg.Store, "/jobs/"+job, c.timeout)
}

// MaybeExecuted reports whether a failed operation may nevertheless
// have been applied — the ambiguity classification the history
// checkers consume.
func MaybeExecuted(err error) bool { return transport.MaybeExecuted(err) }
