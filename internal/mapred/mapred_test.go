package mapred

import (
	"testing"
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
)

func testConfig() Config {
	return Config{
		RM:          "rm",
		Workers:     []netsim.NodeID{"w1", "w2"},
		AMHeartbeat: 10 * time.Millisecond,
		// Six missed periods before declaring the AM dead: scheduler
		// jitter on a healthy cluster must not trigger a spurious
		// second attempt.
		AMMisses:     6,
		TaskDuration: 20 * time.Millisecond,
		RPCTimeout:   30 * time.Millisecond,
	}
}

type fixture struct {
	eng *core.Engine
	sys *System
	cl  *Client
}

func deploy(t *testing.T, cfg Config) *fixture {
	t.Helper()
	eng := core.NewEngine(core.Options{})
	eng.AddNode(cfg.RM, core.RoleServer)
	for _, id := range cfg.Workers {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("user", core.RoleClient)
	sys := NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	f := &fixture{eng: eng, sys: sys, cl: NewClient(eng.Network(), "user", cfg)}
	t.Cleanup(func() {
		f.cl.Close()
		eng.Shutdown()
	})
	return f
}

func TestJobRunsOnceOnHealthyCluster(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.cl.Submit("job1", 3); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Wait for both the RM's view and the client's notification — the
	// AM notifies the client just before reporting to the RM, but the
	// client processes its inbox asynchronously.
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		st, err := f.cl.JobStatus("job1")
		return err == nil && st.Completed && f.cl.FinalNotifications("job1") >= 1
	})
	if !ok {
		t.Fatal("job never completed")
	}
	if n := f.cl.FinalNotifications("job1"); n != 1 {
		t.Fatalf("final notifications = %d, want exactly 1", n)
	}
	execs := f.cl.TaskExecutions("job1")
	if len(execs) != 3 {
		t.Fatalf("task results = %v, want 3 tasks", execs)
	}
	for task, n := range execs {
		if n != 1 {
			t.Fatalf("task %d executed %d times on a healthy cluster", task, n)
		}
	}
	// First attempt, on the first worker.
	st, _ := f.cl.JobStatus("job1")
	if st.Attempt != 1 {
		t.Fatalf("attempt = %d, want 1", st.Attempt)
	}
}

// TestFigure3DoubleExecution reproduces MAPREDUCE-4819: a partial
// partition isolates the AppMaster from the ResourceManager (both
// still reach the other worker and the user). The RM starts a second
// AppMaster; the first keeps running; the user receives everything
// twice. Note there is NO client operation after the partition.
func TestFigure3DoubleExecution(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.cl.Submit("job1", 3); err != nil {
		t.Fatal(err)
	}
	// The AM of attempt 1 runs on w1. Partial partition: w1 vs rm.
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"w1"}, []netsim.NodeID{"rm"}); err != nil {
		t.Fatal(err)
	}
	// Both attempts finish: the user is told "done" twice.
	ok := f.eng.WaitUntil(3*time.Second, func() bool {
		return f.cl.FinalNotifications("job1") >= 2
	})
	if !ok {
		t.Fatalf("final notifications = %d, want 2 (double execution)",
			f.cl.FinalNotifications("job1"))
	}
	// And task outputs were delivered twice: data corruption.
	dup := false
	for _, n := range f.cl.TaskExecutions("job1") {
		if n >= 2 {
			dup = true
		}
	}
	if !dup {
		t.Fatalf("no duplicated task output: %v", f.cl.TaskExecutions("job1"))
	}
	// The second attempt ran on the other worker.
	st, err := f.cl.JobStatus("job1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempt < 2 || st.AMNode != "w2" {
		t.Fatalf("status = %+v, want attempt 2 on w2", st)
	}
}

func TestCrashDrivenAMRestartIsLegitimate(t *testing.T) {
	// The control case: an actually crashed AM must be restarted —
	// this is the recovery path working as designed. The flaw is only
	// that unreachable and crashed are indistinguishable.
	f := deploy(t, testConfig())
	if err := f.cl.Submit("job1", 3); err != nil {
		t.Fatal(err)
	}
	f.eng.Crash("w1")
	ok := f.eng.WaitUntil(3*time.Second, func() bool {
		st, err := f.cl.JobStatus("job1")
		return err == nil && st.Completed && st.Attempt >= 2 &&
			f.cl.FinalNotifications("job1") >= 1
	})
	if !ok {
		t.Fatal("job never completed on the second attempt")
	}
	if n := f.cl.FinalNotifications("job1"); n != 1 {
		t.Fatalf("final notifications = %d; a crashed AM cannot double-report", n)
	}
}

// TestFencedCompletionSingleFinal is the safe-mode control for
// Figure 3: same partial partition, but the AM commits completion at
// the RM before telling the user, and the RM fences stale attempts —
// the user hears "done" exactly once.
func TestFencedCompletionSingleFinal(t *testing.T) {
	cfg := testConfig()
	cfg.FencedCompletion = true
	f := deploy(t, cfg)
	if err := f.cl.Submit("job1", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"w1"}, []netsim.NodeID{"rm"}); err != nil {
		t.Fatal(err)
	}
	// The second attempt completes; the isolated first attempt cannot
	// commit at the RM and must stay silent.
	ok := f.eng.WaitUntil(3*time.Second, func() bool {
		st, err := f.cl.JobStatus("job1")
		return err == nil && st.Completed && f.cl.FinalNotifications("job1") >= 1
	})
	if !ok {
		t.Fatal("job never completed")
	}
	// Give any wrongly-emitted duplicate time to arrive before counting.
	f.eng.Sleep(100 * time.Millisecond)
	if n := f.cl.FinalNotifications("job1"); n != 1 {
		t.Fatalf("final notifications = %d, want exactly 1 under fencing", n)
	}
}

func TestDuplicateSubmitRejected(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.cl.Submit("job1", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.cl.Submit("job1", 1); err == nil {
		t.Fatal("duplicate submit must be rejected")
	}
}

func TestJobStatusUnknownJob(t *testing.T) {
	f := deploy(t, testConfig())
	if _, err := f.cl.JobStatus("ghost"); err == nil {
		t.Fatal("unknown job must error")
	}
}
