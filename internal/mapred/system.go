package mapred

import (
	"neat/internal/core"
	"neat/internal/netsim"
)

// System bundles the ResourceManager and workers into NEAT's ISystem
// interface.
type System struct {
	cfg     Config
	net     *netsim.Network
	rm      *ResourceManager
	workers map[netsim.NodeID]*Worker
}

// NewSystem creates the control plane and workers, unstarted.
func NewSystem(n *netsim.Network, cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{
		cfg:     cfg,
		net:     n,
		rm:      NewResourceManager(n, cfg),
		workers: make(map[netsim.NodeID]*Worker),
	}
	for _, id := range cfg.Workers {
		s.workers[id] = NewWorker(n, id, cfg)
	}
	return s
}

// Name implements core.ISystem.
func (s *System) Name() string { return "mapreduce" }

// Start implements core.ISystem.
func (s *System) Start() error {
	s.rm.Start()
	return nil
}

// Stop implements core.ISystem.
func (s *System) Stop() error {
	s.rm.Stop()
	for _, w := range s.workers {
		w.Stop()
	}
	return nil
}

// Status implements core.ISystem.
func (s *System) Status() map[netsim.NodeID]core.NodeStatus {
	out := make(map[netsim.NodeID]core.NodeStatus, len(s.workers)+1)
	out[s.cfg.RM] = core.NodeStatus{Up: s.net.IsUp(s.cfg.RM), Role: "resource-manager"}
	for id := range s.workers {
		out[id] = core.NodeStatus{Up: s.net.IsUp(id), Role: "worker"}
	}
	return out
}

// RM returns the ResourceManager.
func (s *System) RM() *ResourceManager { return s.rm }

// Worker returns the worker on a node.
func (s *System) Worker(id netsim.NodeID) *Worker { return s.workers[id] }
