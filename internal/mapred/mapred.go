// Package mapred implements a MapReduce-style execution framework with
// the Hadoop/YARN control plane the paper studies: a ResourceManager
// that starts an ApplicationMaster for each submitted job, AppMasters
// that launch task containers on worker nodes and stream results to
// the client, and AppMaster heartbeats that let the ResourceManager
// detect (apparent) AppMaster death.
//
// Figure 3's failure is a design flaw reproduced here faithfully
// (MAPREDUCE-4819): when a partial partition isolates the AppMaster
// from the ResourceManager — while both still reach the workers and
// the client — the ResourceManager declares the AppMaster dead and
// starts a second attempt, while the first attempt keeps executing and
// reporting results. The user receives the job output twice, with no
// client interaction after the partition at all.
package mapred

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// RPC method names.
const (
	mSubmit    = "mr.submit"
	mStartAM   = "mr.startAM"
	mAMBeat    = "mr.amHeartbeat"
	mComplete  = "mr.jobComplete"
	mContainer = "mr.runContainer"
	mResult    = "mr.result"
	mJobStatus = "mr.jobStatus"
)

type submitReq struct {
	JobID  string
	Tasks  int
	Client netsim.NodeID
}

type startAMReq struct {
	JobID   string
	Attempt int
	Tasks   int
	Client  netsim.NodeID
}

type amBeatMsg struct {
	JobID   string
	Attempt int
}

type completeMsg struct {
	JobID   string
	Attempt int
}

type containerReq struct {
	JobID   string
	Attempt int
	Task    int
}

// Result is one task output delivered to the submitting client.
type Result struct {
	JobID   string
	Attempt int
	Task    int
	Output  string
	Final   bool // true for the job-done notification
}

type jobStatusReq struct{ JobID string }

// JobState is the ResourceManager's view of a job.
type JobState struct {
	JobID     string
	Attempt   int
	AMNode    netsim.NodeID
	Completed bool
}

// Config configures the framework.
type Config struct {
	// RM is the ResourceManager node.
	RM netsim.NodeID
	// Workers host AppMasters and containers.
	Workers []netsim.NodeID
	// AMHeartbeat is the AppMaster -> RM heartbeat period.
	AMHeartbeat time.Duration
	// AMMisses is how many missed heartbeats the RM tolerates before
	// starting a new AppMaster attempt.
	AMMisses int
	// TaskDuration is how long one container takes.
	TaskDuration time.Duration
	// RPCTimeout bounds control-plane calls.
	RPCTimeout time.Duration
	// FencedCompletion is the fix for MAPREDUCE-4819's user-visible
	// double execution: the AppMaster reports completion to the
	// ResourceManager FIRST — which fences stale attempts and rejects a
	// second completion — and notifies the user only if the RM accepted
	// it. Off by default: the studied flaw tells the user "done" before
	// (and regardless of) the RM.
	FencedCompletion bool
}

func (c Config) withDefaults() Config {
	if c.AMHeartbeat == 0 {
		c.AMHeartbeat = 10 * time.Millisecond
	}
	if c.AMMisses == 0 {
		c.AMMisses = 3
	}
	if c.TaskDuration == 0 {
		c.TaskDuration = 20 * time.Millisecond
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Millisecond
	}
	return c
}

// ---------------------------------------------------------------------
// ResourceManager
// ---------------------------------------------------------------------

type rmJob struct {
	jobID     string
	tasks     int
	client    netsim.NodeID
	attempt   int
	amNode    netsim.NodeID
	lastBeat  time.Time
	completed bool
}

// ResourceManager tracks jobs and replaces AppMasters it believes dead.
type ResourceManager struct {
	cfg Config
	ep  *transport.Endpoint
	clk clock.Clock

	mu      sync.Mutex
	jobs    map[string]*rmJob
	nextWkr int
	stopped bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewResourceManager creates the RM, unstarted.
func NewResourceManager(n *netsim.Network, cfg Config) *ResourceManager {
	cfg = cfg.withDefaults()
	rm := &ResourceManager{
		cfg:    cfg,
		ep:     transport.NewEndpoint(n, cfg.RM),
		clk:    n.Clock(),
		jobs:   make(map[string]*rmJob),
		stopCh: make(chan struct{}),
	}
	rm.ep.DefaultTimeout = cfg.RPCTimeout
	rm.ep.Handle(mSubmit, rm.onSubmit)
	rm.ep.Handle(mAMBeat, rm.onAMBeat)
	rm.ep.Handle(mComplete, rm.onComplete)
	rm.ep.Handle(mJobStatus, rm.onJobStatus)
	return rm
}

// Start launches the AppMaster liveness monitor. The ticker is
// created here, on the deploying goroutine, so timer creation order
// follows deployment order under a virtual clock.
func (rm *ResourceManager) Start() {
	rm.wg.Add(1)
	t := rm.ep.Clock().NewTicker(rm.cfg.AMHeartbeat)
	go rm.monitorLoop(t)
}

// Stop halts the RM.
func (rm *ResourceManager) Stop() {
	rm.mu.Lock()
	if rm.stopped {
		rm.mu.Unlock()
		return
	}
	rm.stopped = true
	rm.mu.Unlock()
	close(rm.stopCh)
	rm.wg.Wait()
	rm.ep.Close()
}

func (rm *ResourceManager) onSubmit(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(submitReq)
	if !ok {
		return nil, errors.New("bad submit")
	}
	rm.mu.Lock()
	if _, dup := rm.jobs[req.JobID]; dup {
		rm.mu.Unlock()
		return nil, fmt.Errorf("mapred: job %s already submitted", req.JobID)
	}
	j := &rmJob{
		jobID: req.JobID, tasks: req.Tasks, client: req.Client,
		attempt: 1, lastBeat: rm.clk.Now(),
	}
	rm.jobs[req.JobID] = j
	am := rm.pickWorkerLocked()
	j.amNode = am
	rm.mu.Unlock()

	// Start the AppMaster (Figure 3.a step 2). Submission is accepted
	// regardless: the job is registered, and if this first launch fails
	// the liveness monitor will start a fresh attempt — so an
	// acknowledged submission always runs, and the acknowledgement
	// never lies about a job that will execute anyway.
	//neat:allow ambiguity -- safe to drop: the liveness monitor restarts any attempt that never beats
	_, _ = rm.ep.Call(am, mStartAM, startAMReq{
		JobID: req.JobID, Attempt: 1, Tasks: req.Tasks, Client: req.Client,
	}, rm.cfg.RPCTimeout)
	return nil, nil
}

func (rm *ResourceManager) pickWorkerLocked() netsim.NodeID {
	w := rm.cfg.Workers[rm.nextWkr%len(rm.cfg.Workers)]
	rm.nextWkr++
	return w
}

func (rm *ResourceManager) onAMBeat(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(amBeatMsg)
	if !ok {
		return nil, errors.New("bad AM heartbeat")
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if j, exists := rm.jobs[msg.JobID]; exists && j.attempt == msg.Attempt {
		j.lastBeat = rm.clk.Now()
	}
	return nil, nil
}

func (rm *ResourceManager) onComplete(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(completeMsg)
	if !ok {
		return nil, errors.New("bad complete")
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	j, exists := rm.jobs[msg.JobID]
	if !exists {
		return nil, fmt.Errorf("mapred: unknown job %s", msg.JobID)
	}
	if rm.cfg.FencedCompletion {
		// Fencing: only the current attempt may complete the job, and
		// only once. A superseded attempt (its heartbeats were lost, a
		// replacement was started) learns here that it must not tell
		// the user anything.
		if j.completed {
			return nil, fmt.Errorf("mapred: job %s already completed", msg.JobID)
		}
		if j.attempt != msg.Attempt {
			return nil, fmt.Errorf("mapred: job %s attempt %d superseded by %d", msg.JobID, msg.Attempt, j.attempt)
		}
	}
	j.completed = true
	return nil, nil
}

func (rm *ResourceManager) onJobStatus(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(jobStatusReq)
	if !ok {
		return nil, errors.New("bad status request")
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	j, exists := rm.jobs[req.JobID]
	if !exists {
		return nil, fmt.Errorf("mapred: unknown job %s", req.JobID)
	}
	return JobState{JobID: j.jobID, Attempt: j.attempt, AMNode: j.amNode, Completed: j.completed}, nil
}

// monitorLoop restarts AppMasters whose heartbeats stopped. An
// unreachable AppMaster is indistinguishable from a dead one — the
// assumption Figure 3 exploits.
func (rm *ResourceManager) monitorLoop(t clock.Ticker) {
	defer rm.wg.Done()
	defer t.Stop()
	clock.TickLoop(rm.ep.Clock(), t, rm.stopCh, rm.checkAMs)
}

func (rm *ResourceManager) checkAMs() {
	cutoff := time.Duration(rm.cfg.AMMisses) * rm.cfg.AMHeartbeat
	type restart struct {
		job *rmJob
		req startAMReq
		am  netsim.NodeID
	}
	var restarts []restart
	now := rm.clk.Now()
	rm.mu.Lock()
	// Sorted iteration: map order must not decide which job gets the
	// next worker, or same-seed campaigns diverge.
	jobIDs := make([]string, 0, len(rm.jobs))
	for id := range rm.jobs {
		jobIDs = append(jobIDs, id)
	}
	sort.Strings(jobIDs)
	for _, id := range jobIDs {
		j := rm.jobs[id]
		if j.completed || now.Sub(j.lastBeat) <= cutoff {
			continue
		}
		// The AM looks dead: start a new attempt on the next worker.
		j.attempt++
		j.lastBeat = now
		j.amNode = rm.pickWorkerLocked()
		restarts = append(restarts, restart{
			job: j,
			am:  j.amNode,
			req: startAMReq{JobID: j.jobID, Attempt: j.attempt, Tasks: j.tasks, Client: j.client},
		})
	}
	rm.mu.Unlock()
	for _, r := range restarts {
		//neat:allow ambiguity -- AM restart is fire-and-forget; the monitor re-fires until an attempt beats
		_, _ = rm.ep.Call(r.am, mStartAM, r.req, rm.cfg.RPCTimeout)
	}
}

// ---------------------------------------------------------------------
// Worker (hosts AppMasters and containers)
// ---------------------------------------------------------------------

// Worker executes containers and hosts AppMaster instances.
type Worker struct {
	cfg Config
	id  netsim.NodeID
	ep  *transport.Endpoint

	mu      sync.Mutex
	stopped bool
	wg      sync.WaitGroup
}

// NewWorker creates a worker, ready immediately.
func NewWorker(n *netsim.Network, id netsim.NodeID, cfg Config) *Worker {
	cfg = cfg.withDefaults()
	w := &Worker{cfg: cfg, id: id, ep: transport.NewEndpoint(n, id)}
	w.ep.DefaultTimeout = cfg.RPCTimeout
	w.ep.Handle(mStartAM, w.onStartAM)
	w.ep.Handle(mContainer, w.onRunContainer)
	return w
}

// ID returns the worker's node ID.
func (w *Worker) ID() netsim.NodeID { return w.id }

// Stop halts the worker after in-flight AppMasters finish. The join
// runs under clock.Idle so a virtual clock can keep advancing while
// AppMasters parked in clock waits (task durations, RPC timeouts)
// run to completion.
func (w *Worker) Stop() {
	w.mu.Lock()
	w.stopped = true
	w.mu.Unlock()
	clock.Idle(w.ep.Clock(), w.wg.Wait)
	w.ep.Close()
}

func (w *Worker) onStartAM(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(startAMReq)
	if !ok {
		return nil, errors.New("bad startAM")
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return nil, errors.New("worker stopped")
	}
	w.wg.Add(1)
	w.mu.Unlock()
	// clock.Go accounts the AppMaster goroutine as in-flight work from
	// the instant of the spawn, so a virtual clock cannot advance past
	// the gap between this handler returning and the AM's first action.
	clock.Go(w.ep.Clock(), func() { w.runAppMaster(req) })
	return nil, nil
}

// runAppMaster is one AppMaster attempt (Figure 3.a step 2-3): run the
// containers, stream results to the client, then report completion to
// the RM. The heartbeat goroutine keeps the RM convinced we are alive
// — when it can reach the RM.
func (w *Worker) runAppMaster(req startAMReq) {
	defer w.wg.Done()
	clk := w.ep.Clock()
	stopBeat := make(chan struct{})
	var beatWG sync.WaitGroup
	beatWG.Add(1)
	t := clk.NewTicker(w.cfg.AMHeartbeat)
	// A plain goroutine, not clock.Go: a service loop parked in
	// TickLoop must hold no busy token of its own (tick consumption is
	// accounted by TickLoop itself), or the virtual clock could never
	// advance.
	go func() {
		defer beatWG.Done()
		defer t.Stop()
		clock.TickLoop(clk, t, stopBeat, func() {
			_ = w.ep.Notify(w.cfg.RM, mAMBeat, amBeatMsg{JobID: req.JobID, Attempt: req.Attempt})
		})
	}()

	// Run every task in a container, spreading over the workers.
	for task := 0; task < req.Tasks; task++ {
		target := w.cfg.Workers[task%len(w.cfg.Workers)]
		//neat:allow ambiguity -- failure falls back to the co-hosted runtime; a doubly executed task is the reproduced flaw
		out, err := w.ep.Call(target, mContainer, containerReq{
			JobID: req.JobID, Attempt: req.Attempt, Task: task,
		}, w.cfg.TaskDuration+w.cfg.RPCTimeout)
		if err != nil {
			// Container host unreachable: retry on ourselves. The AM
			// always co-hosts a container runtime.
			//neat:allow ambiguity -- retry on self after an unreachable host: the maybe-executed first try is MAPREDUCE-4819's double run
			out, err = w.ep.Call(w.id, mContainer, containerReq{
				JobID: req.JobID, Attempt: req.Attempt, Task: task,
			}, w.cfg.TaskDuration+w.cfg.RPCTimeout)
			if err != nil {
				continue
			}
		}
		output, _ := out.(string)
		// Stream the task result to the user (Figure 3.b: results keep
		// flowing even when the RM is unreachable).
		_ = w.ep.Notify(req.Client, mResult, Result{
			JobID: req.JobID, Attempt: req.Attempt, Task: task, Output: output,
		})
	}

	if w.cfg.FencedCompletion {
		// The fix: commit completion at the RM first. The RM fences —
		// only the current attempt, only once — so a superseded or
		// duplicate attempt is refused and must stay silent. Only an
		// accepted completion is reported to the user.
		//neat:allow ambiguity -- fenced completion treats an ambiguous commit as refused, so the worker stays silent (conservative)
		if _, err := w.ep.Call(w.cfg.RM, mComplete, completeMsg{JobID: req.JobID, Attempt: req.Attempt}, w.cfg.RPCTimeout); err == nil {
			_ = w.ep.Notify(req.Client, mResult, Result{JobID: req.JobID, Attempt: req.Attempt, Final: true})
		}
	} else {
		// Report final status to the client FIRST, then to the RM. This
		// ordering is MAPREDUCE-4819's flaw: if the RM is unreachable,
		// the user has already been told the job finished — and the RM
		// will rerun it anyway.
		_ = w.ep.Notify(req.Client, mResult, Result{JobID: req.JobID, Attempt: req.Attempt, Final: true})
		//neat:allow ambiguity -- the flaw under study: completion reaches the user before (and regardless of) the RM ack
		_, _ = w.ep.Call(w.cfg.RM, mComplete, completeMsg{JobID: req.JobID, Attempt: req.Attempt}, w.cfg.RPCTimeout)
	}
	close(stopBeat)
	clock.Idle(clk, beatWG.Wait)
}

func (w *Worker) onRunContainer(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(containerReq)
	if !ok {
		return nil, errors.New("bad container request")
	}
	// The container's work time comes from the clock, so a virtual
	// round pays CPU microseconds, not wall-clock milliseconds, per
	// task.
	w.ep.Clock().Sleep(w.cfg.TaskDuration)
	return fmt.Sprintf("%s/t%d", req.JobID, req.Task), nil
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

// Client submits jobs and collects results.
type Client struct {
	ep  *transport.Endpoint
	cfg Config

	mu      sync.Mutex
	results []Result
}

// NewClient attaches a MapReduce client.
func NewClient(n *netsim.Network, id netsim.NodeID, cfg Config) *Client {
	c := &Client{ep: transport.NewEndpoint(n, id), cfg: cfg.withDefaults()}
	c.ep.Handle(mResult, c.onResult)
	return c
}

// ID returns the client's node ID.
func (c *Client) ID() netsim.NodeID { return c.ep.ID() }

// Close detaches the client.
func (c *Client) Close() { c.ep.Close() }

func (c *Client) onResult(from netsim.NodeID, body any) (any, error) {
	res, ok := body.(Result)
	if !ok {
		return nil, errors.New("bad result")
	}
	c.mu.Lock()
	c.results = append(c.results, res)
	c.mu.Unlock()
	return nil, nil
}

// Submit sends a job with the given task count to the ResourceManager
// (Figure 3.a step 1). A transport-level failure is marked
// maybe-executed: the RM can have accepted the job with only the reply
// lost, and the job will then run without the user ever being told.
func (c *Client) Submit(jobID string, tasks int) error {
	_, err := c.ep.Call(c.cfg.RM, mSubmit, submitReq{
		JobID: jobID, Tasks: tasks, Client: c.ep.ID(),
	}, 0)
	if err != nil && !transport.IsRemote(err) {
		return transport.MarkMaybeExecuted(err)
	}
	return err
}

// MaybeExecuted reports whether a failed operation may nevertheless
// have been applied — the ambiguity classification the history
// checkers consume.
func MaybeExecuted(err error) bool { return transport.MaybeExecuted(err) }

// Results returns the results received so far.
func (c *Client) Results() []Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Result(nil), c.results...)
}

// FinalNotifications counts how many times the job was reported
// finished — more than once means double execution.
func (c *Client) FinalNotifications(jobID string) int {
	n := 0
	for _, r := range c.Results() {
		if r.JobID == jobID && r.Final {
			n++
		}
	}
	return n
}

// TaskExecutions returns how many times each task's result was
// delivered; any count above 1 is duplicate output (data corruption).
func (c *Client) TaskExecutions(jobID string) map[int]int {
	out := make(map[int]int)
	for _, r := range c.Results() {
		if r.JobID == jobID && !r.Final {
			out[r.Task]++
		}
	}
	return out
}

// JobStatus queries the RM's view of a job.
func (c *Client) JobStatus(jobID string) (JobState, error) {
	resp, err := c.ep.Call(c.cfg.RM, mJobStatus, jobStatusReq{JobID: jobID}, 0)
	if err != nil {
		return JobState{}, err
	}
	st, _ := resp.(JobState)
	return st, nil
}
