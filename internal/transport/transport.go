// Package transport provides a request/response RPC layer over the
// netsim fabric. Each node owns an Endpoint; requests are dispatched to
// registered handlers serially (preserving per-node receive order, as a
// TCP connection with a single service loop would), while responses are
// matched to waiting callers directly so that a handler may itself
// issue nested calls without deadlocking.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
)

// ErrTimeout is returned when the peer does not answer in time. A
// partitioned or crashed peer is indistinguishable from a slow one,
// which is precisely the ambiguity the studied systems mishandle.
var ErrTimeout = errors.New("transport: request timed out")

// ErrClosed is returned after the endpoint is closed.
var ErrClosed = errors.New("transport: endpoint closed")

// Handler processes one request and returns the response body.
type Handler func(from netsim.NodeID, body any) (any, error)

// envelope is the wire format carried as the netsim packet payload.
type envelope struct {
	Kind    string
	ID      uint64
	IsReply bool
	Body    any
	Err     string
	// Seq is the sender's per-endpoint wire sequence number. The
	// receiving endpoint uses it to absorb link-level duplicates, the
	// way a TCP connection would: a chaos overlay that duplicates
	// packets must not make an application see the same request (and
	// execute its side effects) twice. Application-level duplication —
	// a client retrying after a timeout — is untouched.
	Seq uint64
}

// dedupWindowSize bounds how many recent sequence numbers are
// remembered per peer. Reordering never spans anywhere near this many
// in-flight packets on one link (the inbox itself holds only
// InboxDepth requests).
const dedupWindowSize = 1024

// seqWindow is the receive-side half of the reliable connection: the
// most recently seen sequence numbers from one peer, evicted FIFO.
type seqWindow struct {
	seen map[uint64]bool
	ring [dedupWindowSize]uint64
	n    int
}

// observe records seq and reports whether it is fresh (not a
// duplicate).
func (w *seqWindow) observe(seq uint64) bool {
	if w.seen[seq] {
		return false
	}
	i := w.n % dedupWindowSize
	if w.n >= dedupWindowSize {
		delete(w.seen, w.ring[i])
	}
	w.ring[i] = seq
	w.n++
	w.seen[seq] = true
	return true
}

type pendingCall struct {
	ch chan envelope
}

// Endpoint is one node's attachment to the RPC layer.
type Endpoint struct {
	id  netsim.NodeID
	net *netsim.Network
	clk clock.Clock

	mu       sync.RWMutex
	handlers map[string]Handler
	pending  map[uint64]*pendingCall
	closed   bool

	seq     atomic.Uint64
	wireSeq atomic.Uint64
	dedupMu sync.Mutex
	dedup   map[netsim.NodeID]*seqWindow
	inbox   chan netsim.Packet
	done    chan struct{}
	// dispGid identifies the dispatcher goroutine: queued requests bind
	// their busy tokens to its scope (see receive).
	dispGid uint64

	// DefaultTimeout is used by Call when the caller passes 0.
	DefaultTimeout time.Duration
}

// InboxDepth is the request queue length per endpoint. If the queue
// fills (a node overwhelmed or hung), further requests are dropped,
// matching a saturated accept queue.
const InboxDepth = 1024

// NewEndpoint registers id on the fabric and starts its dispatcher.
func NewEndpoint(n *netsim.Network, id netsim.NodeID) *Endpoint {
	e := &Endpoint{
		id:             id,
		net:            n,
		clk:            n.ClockFor(id),
		handlers:       make(map[string]Handler),
		pending:        make(map[uint64]*pendingCall),
		dedup:          make(map[netsim.NodeID]*seqWindow),
		inbox:          make(chan netsim.Packet, InboxDepth),
		done:           make(chan struct{}),
		DefaultTimeout: 250 * time.Millisecond,
	}
	// The dispatcher publishes its goroutine identity before the
	// endpoint goes on the fabric, so every received request can bind
	// its token to the dispatcher's scope.
	gidCh := make(chan uint64)
	go e.dispatch(gidCh)
	e.dispGid = <-gidCh
	n.Register(id, e.receive)
	return e
}

// ID returns the node this endpoint serves.
func (e *Endpoint) ID() netsim.NodeID { return e.id }

// Network returns the underlying fabric.
func (e *Endpoint) Network() *netsim.Network { return e.net }

// Clock returns the fabric's time source. Systems built on an endpoint
// take every ticker, sleep, and deadline from here, which is what lets
// a campaign run a whole deployment on virtual time.
func (e *Endpoint) Clock() clock.Clock { return e.clk }

// Handle registers the handler for a method name. Registering twice
// replaces the handler; registering a nil handler removes it.
func (e *Endpoint) Handle(kind string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if h == nil {
		delete(e.handlers, kind)
		return
	}
	e.handlers[kind] = h
}

// Close detaches the endpoint from the fabric and fails waiting calls.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	pend := e.pending
	e.pending = make(map[uint64]*pendingCall)
	// Reclaim the busy tokens of requests still queued when the
	// dispatcher exits: without this, a request that arrived just
	// before teardown would hold its token forever and freeze the
	// round's virtual clock (hanging any goroutine still parked on a
	// virtual timeout). Safe against the dispatcher racing us: it
	// either dequeued a packet (and releases after serving it) or we
	// drain it here — the write lock excludes concurrent enqueuers.
	for {
		drained := false
		select {
		case <-e.inbox:
			clock.ReleaseScopedAs(e.clk, e.dispGid)
			drained = true
		default:
		}
		if !drained {
			break
		}
	}
	e.mu.Unlock()

	e.net.Unregister(e.id)
	close(e.done)
	for _, p := range pend {
		close(p.ch)
	}
}

// send stamps the wire sequence number and puts the envelope on the
// fabric.
func (e *Endpoint) send(dst netsim.NodeID, env envelope) error {
	env.Seq = e.wireSeq.Add(1)
	return e.net.Send(e.id, dst, env)
}

// isDuplicate reports (and records) whether the peer's sequence number
// was already seen.
func (e *Endpoint) isDuplicate(src netsim.NodeID, seq uint64) bool {
	e.dedupMu.Lock()
	defer e.dedupMu.Unlock()
	w := e.dedup[src]
	if w == nil {
		w = &seqWindow{seen: make(map[uint64]bool)}
		e.dedup[src] = w
	}
	return !w.observe(seq)
}

// receive is the netsim delivery handler. Replies are matched to
// waiting calls inline; requests are queued for the dispatcher.
func (e *Endpoint) receive(pkt netsim.Packet) {
	env, ok := pkt.Payload.(envelope)
	if !ok {
		return
	}
	// Link-level duplicates are absorbed here, as the receive side of
	// a TCP connection would absorb a retransmitted segment.
	if env.Seq != 0 && e.isDuplicate(pkt.Src, env.Seq) {
		return
	}
	if env.IsReply {
		// A delivered reply is a unit of in-flight work under a virtual
		// clock: the busy token acquired here keeps virtual time from
		// advancing (and spuriously firing the caller's timeout) until
		// the waiting Call consumes the reply and releases it. The send
		// stays under the read lock so that Call's cleanup — which
		// deletes the pending entry and drains the channel under the
		// write lock — can never miss a token.
		e.mu.RLock()
		if p := e.pending[env.ID]; p != nil {
			//neat:allow tokenbalance -- transfer handoff: the send moves the token to the waiting Call, which releases it after consuming the reply
			clock.Acquire(e.clk)
			select {
			case p.ch <- env:
			default:
				clock.Release(e.clk)
			}
		}
		e.mu.RUnlock()
		return
	}
	// A queued request is in-flight work, accounted as a busy token
	// bound to the dispatcher goroutine's scope: virtual time stays
	// frozen while the request waits for, and is served by, a runnable
	// dispatcher — but because the token lives in the dispatcher's
	// scope, it is surrendered automatically whenever a handler parks
	// in a clock wait of its own (a commit-wait sleep, a nested RPC
	// timeout, a replication fan-out join) and restored when the
	// handler resumes. Queued requests therefore cannot deadlock the
	// clock; a request overtaken by virtual time while its server was
	// parked is a request timing out against a busy server —
	// realistic, and deterministic under the simulated clock.
	//
	// The enqueue stays under the read lock so that Close — which sets
	// closed and drains leftover tokens under the write lock — can
	// never miss one: a token enqueued here is either served and
	// released by the dispatcher or reclaimed by Close's drain.
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return
	}
	//neat:allow tokenbalance -- gid-scoped handoff: the enqueue binds the token to the dispatcher, which releases it after serving; Close drains leftovers
	clock.AcquireScopedAs(e.clk, e.dispGid)
	select {
	case e.inbox <- pkt:
	default:
		// Inbox full: drop, as an overloaded server would.
		clock.ReleaseScopedAs(e.clk, e.dispGid)
	}
	e.mu.RUnlock()
}

func (e *Endpoint) dispatch(gidCh chan<- uint64) {
	gidCh <- clock.Gid()
	for {
		select {
		case <-e.done:
			return
		case pkt := <-e.inbox:
			// Serve under the token the sender bound to this goroutine;
			// retire it when the handler completes.
			e.serve(pkt)
			clock.ReleaseScoped(e.clk)
		}
	}
}

func (e *Endpoint) serve(pkt netsim.Packet) {
	env := pkt.Payload.(envelope)
	e.mu.RLock()
	h := e.handlers[env.Kind]
	e.mu.RUnlock()

	var (
		respBody any
		respErr  string
	)
	if h == nil {
		respErr = fmt.Sprintf("no handler for %q", env.Kind)
	} else {
		body, err := h(pkt.Src, env.Body)
		respBody = body
		if err != nil {
			respErr = err.Error()
		}
	}
	if env.ID == 0 {
		return // one-way notification
	}
	reply := envelope{Kind: env.Kind, ID: env.ID, IsReply: true, Body: respBody, Err: respErr}
	_ = e.send(pkt.Src, reply)
}

// Notify sends a one-way message; delivery is best effort.
func (e *Endpoint) Notify(dst netsim.NodeID, kind string, body any) error {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	return e.send(dst, envelope{Kind: kind, Body: body})
}

// Call sends a request and waits for the response or a timeout. A zero
// timeout uses DefaultTimeout.
func (e *Endpoint) Call(dst netsim.NodeID, kind string, body any, timeout time.Duration) (any, error) {
	if timeout == 0 {
		timeout = e.DefaultTimeout
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	id := e.seq.Add(1)
	p := &pendingCall{ch: make(chan envelope, 1)}
	e.pending[id] = p
	e.mu.Unlock()

	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		// Reclaim the busy token of a reply that arrived but was never
		// consumed (the timeout won the select, or Close raced us).
		select {
		case _, delivered := <-p.ch:
			if delivered {
				clock.Release(e.clk)
			}
		default:
		}
		e.mu.Unlock()
	}()

	env := envelope{Kind: kind, ID: id, Body: body}
	if err := e.send(dst, env); err != nil {
		return nil, err
	}

	// A wake timer's fire carries a busy token (released on the timeout
	// path below, reclaimed by the deferred Stop otherwise), so a caller
	// waking from a timeout observes virtual time at its deadline — time
	// cannot run further ahead while the scheduler resumes us.
	timer := clock.NewWakeTimer(e.clk, timeout)
	defer timer.Stop()
	// The select runs under clock.Idle: a caller holding scoped busy
	// tokens (a handler issuing a nested call) surrenders them while
	// blocked here, so the virtual clock can advance to this call's own
	// timeout.
	var (
		resp      envelope
		delivered bool
		timedOut  bool
	)
	clock.Idle(e.clk, func() {
		select {
		case r, ok := <-p.ch:
			resp, delivered = r, ok
		case <-timer.C():
			timedOut = true
		}
	})
	switch {
	case timedOut:
		clock.Release(e.clk)
		return nil, fmt.Errorf("%w: %s->%s %s after %v", ErrTimeout, e.id, dst, kind, timeout)
	case !delivered:
		return nil, ErrClosed
	}
	clock.Release(e.clk)
	if resp.Err != "" {
		return resp.Body, &RemoteError{Method: kind, Node: dst, Msg: resp.Err}
	}
	return resp.Body, nil
}

// RemoteError is an application-level error returned by the peer's
// handler (as opposed to a transport failure).
type RemoteError struct {
	Method string
	Node   netsim.NodeID
	Msg    string
}

// Error implements the error interface.
func (r *RemoteError) Error() string {
	return fmt.Sprintf("remote error from %s (%s): %s", r.Node, r.Method, r.Msg)
}

// IsRemote reports whether err is an application-level RemoteError.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// maybeExecutedError marks a failed operation some peer may
// nevertheless have applied — typically a transport-level failure
// where the request can have been fully executed with only the reply
// lost. Client packages share this one marker so the ambiguity
// classification that feeds the history checkers cannot drift between
// systems.
type maybeExecutedError struct{ err error }

func (e *maybeExecutedError) Error() string { return e.err.Error() }
func (e *maybeExecutedError) Unwrap() error { return e.err }

// MarkMaybeExecuted wraps err so that MaybeExecuted reports true for
// it (and for anything that later wraps it). nil stays nil.
func MarkMaybeExecuted(err error) error {
	if err == nil {
		return nil
	}
	return &maybeExecutedError{err: err}
}

// MaybeExecuted reports whether the failed operation was marked as
// possibly applied. Callers accounting for durability or at-most-once
// must treat such failures as ambiguous, not as definitive refusals.
func MaybeExecuted(err error) bool {
	var me *maybeExecutedError
	return errors.As(err, &me)
}

// Broadcast sends a one-way message to every destination.
func (e *Endpoint) Broadcast(dsts []netsim.NodeID, kind string, body any) {
	for _, d := range dsts {
		if d == e.id {
			continue
		}
		_ = e.Notify(d, kind, body)
	}
}
