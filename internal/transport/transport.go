// Package transport provides a request/response RPC layer over the
// netsim fabric. Each node owns an Endpoint; requests are dispatched to
// registered handlers serially (preserving per-node receive order, as a
// TCP connection with a single service loop would), while responses are
// matched to waiting callers directly so that a handler may itself
// issue nested calls without deadlocking.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"neat/internal/netsim"
)

// ErrTimeout is returned when the peer does not answer in time. A
// partitioned or crashed peer is indistinguishable from a slow one,
// which is precisely the ambiguity the studied systems mishandle.
var ErrTimeout = errors.New("transport: request timed out")

// ErrClosed is returned after the endpoint is closed.
var ErrClosed = errors.New("transport: endpoint closed")

// Handler processes one request and returns the response body.
type Handler func(from netsim.NodeID, body any) (any, error)

// envelope is the wire format carried as the netsim packet payload.
type envelope struct {
	Kind    string
	ID      uint64
	IsReply bool
	Body    any
	Err     string
}

type pendingCall struct {
	ch chan envelope
}

// Endpoint is one node's attachment to the RPC layer.
type Endpoint struct {
	id  netsim.NodeID
	net *netsim.Network

	mu       sync.RWMutex
	handlers map[string]Handler
	pending  map[uint64]*pendingCall
	closed   bool

	seq   atomic.Uint64
	inbox chan netsim.Packet
	done  chan struct{}

	// DefaultTimeout is used by Call when the caller passes 0.
	DefaultTimeout time.Duration
}

// InboxDepth is the request queue length per endpoint. If the queue
// fills (a node overwhelmed or hung), further requests are dropped,
// matching a saturated accept queue.
const InboxDepth = 1024

// NewEndpoint registers id on the fabric and starts its dispatcher.
func NewEndpoint(n *netsim.Network, id netsim.NodeID) *Endpoint {
	e := &Endpoint{
		id:             id,
		net:            n,
		handlers:       make(map[string]Handler),
		pending:        make(map[uint64]*pendingCall),
		inbox:          make(chan netsim.Packet, InboxDepth),
		done:           make(chan struct{}),
		DefaultTimeout: 250 * time.Millisecond,
	}
	n.Register(id, e.receive)
	go e.dispatch()
	return e
}

// ID returns the node this endpoint serves.
func (e *Endpoint) ID() netsim.NodeID { return e.id }

// Network returns the underlying fabric.
func (e *Endpoint) Network() *netsim.Network { return e.net }

// Handle registers the handler for a method name. Registering twice
// replaces the handler; registering a nil handler removes it.
func (e *Endpoint) Handle(kind string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if h == nil {
		delete(e.handlers, kind)
		return
	}
	e.handlers[kind] = h
}

// Close detaches the endpoint from the fabric and fails waiting calls.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	pend := e.pending
	e.pending = make(map[uint64]*pendingCall)
	e.mu.Unlock()

	e.net.Unregister(e.id)
	close(e.done)
	for _, p := range pend {
		close(p.ch)
	}
}

// receive is the netsim delivery handler. Replies are matched to
// waiting calls inline; requests are queued for the dispatcher.
func (e *Endpoint) receive(pkt netsim.Packet) {
	env, ok := pkt.Payload.(envelope)
	if !ok {
		return
	}
	if env.IsReply {
		e.mu.RLock()
		p := e.pending[env.ID]
		e.mu.RUnlock()
		if p != nil {
			select {
			case p.ch <- env:
			default:
			}
		}
		return
	}
	select {
	case e.inbox <- pkt:
	default:
		// Inbox full: drop, as an overloaded server would.
	}
}

func (e *Endpoint) dispatch() {
	for {
		select {
		case <-e.done:
			return
		case pkt := <-e.inbox:
			e.serve(pkt)
		}
	}
}

func (e *Endpoint) serve(pkt netsim.Packet) {
	env := pkt.Payload.(envelope)
	e.mu.RLock()
	h := e.handlers[env.Kind]
	e.mu.RUnlock()

	var (
		respBody any
		respErr  string
	)
	if h == nil {
		respErr = fmt.Sprintf("no handler for %q", env.Kind)
	} else {
		body, err := h(pkt.Src, env.Body)
		respBody = body
		if err != nil {
			respErr = err.Error()
		}
	}
	if env.ID == 0 {
		return // one-way notification
	}
	reply := envelope{Kind: env.Kind, ID: env.ID, IsReply: true, Body: respBody, Err: respErr}
	_ = e.net.Send(e.id, pkt.Src, reply)
}

// Notify sends a one-way message; delivery is best effort.
func (e *Endpoint) Notify(dst netsim.NodeID, kind string, body any) error {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	return e.net.Send(e.id, dst, envelope{Kind: kind, Body: body})
}

// Call sends a request and waits for the response or a timeout. A zero
// timeout uses DefaultTimeout.
func (e *Endpoint) Call(dst netsim.NodeID, kind string, body any, timeout time.Duration) (any, error) {
	if timeout == 0 {
		timeout = e.DefaultTimeout
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	id := e.seq.Add(1)
	p := &pendingCall{ch: make(chan envelope, 1)}
	e.pending[id] = p
	e.mu.Unlock()

	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
	}()

	env := envelope{Kind: kind, ID: id, Body: body}
	if err := e.net.Send(e.id, dst, env); err != nil {
		return nil, err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-p.ch:
		if !ok {
			return nil, ErrClosed
		}
		if resp.Err != "" {
			return resp.Body, &RemoteError{Method: kind, Node: dst, Msg: resp.Err}
		}
		return resp.Body, nil
	case <-timer.C:
		return nil, fmt.Errorf("%w: %s->%s %s after %v", ErrTimeout, e.id, dst, kind, timeout)
	}
}

// RemoteError is an application-level error returned by the peer's
// handler (as opposed to a transport failure).
type RemoteError struct {
	Method string
	Node   netsim.NodeID
	Msg    string
}

// Error implements the error interface.
func (r *RemoteError) Error() string {
	return fmt.Sprintf("remote error from %s (%s): %s", r.Node, r.Method, r.Msg)
}

// IsRemote reports whether err is an application-level RemoteError.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Broadcast sends a one-way message to every destination.
func (e *Endpoint) Broadcast(dsts []netsim.NodeID, kind string, body any) {
	for _, d := range dsts {
		if d == e.id {
			continue
		}
		_ = e.Notify(d, kind, body)
	}
}
