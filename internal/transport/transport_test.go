package transport

//neat:allow-file realclock -- real-deadline liveness polls on RPC delivery and timeouts

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neat/internal/netsim"
)

func pair(t *testing.T) (*netsim.Network, *Endpoint, *Endpoint) {
	t.Helper()
	n := netsim.New(netsim.Options{})
	a := NewEndpoint(n, "a")
	b := NewEndpoint(n, "b")
	t.Cleanup(func() { a.Close(); b.Close() })
	return n, a, b
}

func TestCallRoundTrip(t *testing.T) {
	_, a, b := pair(t)
	b.Handle("echo", func(from netsim.NodeID, body any) (any, error) {
		return fmt.Sprintf("%s said %v", from, body), nil
	})
	got, err := a.Call("b", "echo", "hi", time.Second)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if got != "a said hi" {
		t.Fatalf("got %v", got)
	}
}

func TestCallRemoteError(t *testing.T) {
	_, a, b := pair(t)
	b.Handle("fail", func(netsim.NodeID, any) (any, error) {
		return nil, errors.New("boom")
	})
	_, err := a.Call("b", "fail", nil, time.Second)
	if !IsRemote(err) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" || re.Node != "b" {
		t.Fatalf("unexpected remote error: %+v", re)
	}
}

func TestCallNoHandler(t *testing.T) {
	_, a, _ := pair(t)
	_, err := a.Call("b", "missing", nil, time.Second)
	if !IsRemote(err) {
		t.Fatalf("want remote no-handler error, got %v", err)
	}
}

func TestCallTimeoutWhenPartitioned(t *testing.T) {
	n, a, b := pair(t)
	b.Handle("echo", func(netsim.NodeID, any) (any, error) { return "x", nil })
	n.SetSwitch(netsim.FilterFunc(func(src, dst netsim.NodeID) netsim.Verdict {
		return netsim.VerdictDrop
	}))
	start := time.Now()
	_, err := a.Call("b", "echo", nil, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("timed out too early")
	}
}

func TestSimplexDropsReply(t *testing.T) {
	// The request reaches b but b's reply is dropped: the caller times
	// out even though the side effect happened. This is the request-
	// routing failure mode of Finding 4 (Elasticsearch issue #9967).
	n, a, b := pair(t)
	var executed atomic.Bool
	b.Handle("do", func(netsim.NodeID, any) (any, error) {
		executed.Store(true)
		return "done", nil
	})
	n.SetSwitch(netsim.FilterFunc(func(src, dst netsim.NodeID) netsim.Verdict {
		if src == "b" && dst == "a" {
			return netsim.VerdictDrop
		}
		return netsim.VerdictAccept
	}))
	_, err := a.Call("b", "do", nil, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	if !executed.Load() {
		t.Fatal("handler should have executed despite lost reply")
	}
}

func TestNotifyOneWay(t *testing.T) {
	_, a, b := pair(t)
	var mu sync.Mutex
	var got []any
	b.Handle("note", func(_ netsim.NodeID, body any) (any, error) {
		mu.Lock()
		got = append(got, body)
		mu.Unlock()
		return nil, nil
	})
	for i := 0; i < 3; i++ {
		if err := a.Notify("b", "note", i); err != nil {
			t.Fatalf("notify: %v", err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d notifications, want 3", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRequestsServedInOrder(t *testing.T) {
	_, a, b := pair(t)
	var mu sync.Mutex
	var order []int
	b.Handle("seq", func(_ netsim.NodeID, body any) (any, error) {
		mu.Lock()
		order = append(order, body.(int))
		mu.Unlock()
		return nil, nil
	})
	for i := 0; i < 50; i++ {
		if _, err := a.Call("b", "seq", i, time.Second); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; serial dispatch must preserve order", i, v)
		}
	}
}

func TestNestedCallFromHandler(t *testing.T) {
	// b's handler calls c while serving a: replies must bypass the
	// serial request queue or this deadlocks.
	n := netsim.New(netsim.Options{})
	a := NewEndpoint(n, "a")
	b := NewEndpoint(n, "b")
	c := NewEndpoint(n, "c")
	defer a.Close()
	defer b.Close()
	defer c.Close()
	c.Handle("leaf", func(netsim.NodeID, any) (any, error) { return 7, nil })
	b.Handle("mid", func(netsim.NodeID, any) (any, error) {
		return b.Call("c", "leaf", nil, time.Second)
	})
	got, err := a.Call("b", "mid", nil, 2*time.Second)
	if err != nil {
		t.Fatalf("nested call: %v", err)
	}
	if got != 7 {
		t.Fatalf("got %v, want 7", got)
	}
}

func TestCloseFailsPendingAndFutureCalls(t *testing.T) {
	n, a, b := pair(t)
	// Block replies so the call is pending when we close.
	n.SetSwitch(netsim.FilterFunc(func(src, dst netsim.NodeID) netsim.Verdict {
		if src == "b" {
			return netsim.VerdictDrop
		}
		return netsim.VerdictAccept
	}))
	b.Handle("x", func(netsim.NodeID, any) (any, error) { return nil, nil })
	done := make(chan error, 1)
	go func() {
		_, err := a.Call("b", "x", nil, time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("pending call after close: %v, want ErrClosed", err)
	}
	if _, err := a.Call("b", "x", nil, time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("future call after close: %v, want ErrClosed", err)
	}
}

func TestBroadcast(t *testing.T) {
	n := netsim.New(netsim.Options{})
	a := NewEndpoint(n, "a")
	defer a.Close()
	var mu sync.Mutex
	hits := map[netsim.NodeID]int{}
	mk := func(id netsim.NodeID) *Endpoint {
		e := NewEndpoint(n, id)
		e.Handle("ping", func(netsim.NodeID, any) (any, error) {
			mu.Lock()
			hits[id]++
			mu.Unlock()
			return nil, nil
		})
		return e
	}
	b, c := mk("b"), mk("c")
	defer b.Close()
	defer c.Close()
	a.Broadcast([]netsim.NodeID{"a", "b", "c"}, "ping", nil)
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		ok := hits["b"] == 1 && hits["c"] == 1 && hits["a"] == 0
		mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("hits = %v, want b:1 c:1 (self excluded)", hits)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConcurrentCallsMatchResponses(t *testing.T) {
	_, a, b := pair(t)
	b.Handle("id", func(_ netsim.NodeID, body any) (any, error) { return body, nil })
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := a.Call("b", "id", i, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if got != i {
				errs <- fmt.Errorf("got %v want %d", got, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDuplicateRequestAbsorbed: a link that duplicates packets must
// not make the application execute a request twice — the endpoint's
// per-peer sequence window absorbs the copy, as a TCP connection
// absorbs a retransmitted segment. Application-level retries (a new
// Call after a timeout) are a fresh sequence number and still execute.
func TestDuplicateRequestAbsorbed(t *testing.T) {
	n := netsim.New(netsim.Options{})
	n.AddChaos([][2]netsim.NodeID{{"a", "b"}, {"b", "a"}}, netsim.Chaos{Dup: 1})
	a := NewEndpoint(n, "a")
	b := NewEndpoint(n, "b")
	defer a.Close()
	defer b.Close()
	var served atomic.Int32
	b.Handle("incr", func(from netsim.NodeID, body any) (any, error) {
		return served.Add(1), nil
	})
	for i := 1; i <= 5; i++ {
		resp, err := a.Call("b", "incr", nil, time.Second)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.(int32) != int32(i) {
			t.Fatalf("call %d served as %v: a duplicated packet re-executed a request", i, resp)
		}
	}
	if served.Load() != 5 {
		t.Fatalf("handler ran %d times for 5 calls", served.Load())
	}
	// The fabric really did duplicate traffic; the endpoints absorbed it.
	if s := n.Stats(); s.Duplicated == 0 {
		t.Fatal("test fabric produced no duplicates; nothing was exercised")
	}
}

// TestNotifyDuplicateAbsorbed: one-way notifications are deduplicated
// by the same window.
func TestNotifyDuplicateAbsorbed(t *testing.T) {
	n := netsim.New(netsim.Options{})
	n.AddChaos([][2]netsim.NodeID{{"a", "b"}}, netsim.Chaos{Dup: 1})
	a := NewEndpoint(n, "a")
	b := NewEndpoint(n, "b")
	defer a.Close()
	defer b.Close()
	var got atomic.Int32
	b.Handle("evt", func(from netsim.NodeID, body any) (any, error) {
		got.Add(1)
		return nil, nil
	})
	for i := 0; i < 7; i++ {
		if err := a.Notify("b", "evt", i); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 7 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 7 {
		t.Fatalf("handler ran %d times for 7 notifies", got.Load())
	}
}
