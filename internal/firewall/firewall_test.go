package firewall

import (
	"strings"
	"testing"
	"testing/quick"

	"neat/internal/netsim"
)

func TestChainFirstMatchWins(t *testing.T) {
	c := NewChain("INPUT")
	c.Append(Rule{Src: "a", Target: Drop})
	c.Append(Rule{Src: "a", Target: Accept}) // shadowed
	if got := c.Verdict("a", "x"); got != Drop {
		t.Fatalf("verdict = %v, want Drop (first match wins)", got)
	}
	if got := c.Verdict("b", "x"); got != Accept {
		t.Fatalf("verdict for unmatched = %v, want policy Accept", got)
	}
}

func TestChainInsertPrecedesAppend(t *testing.T) {
	c := NewChain("OUTPUT")
	c.Append(Rule{Dst: "b", Target: Accept})
	c.Insert(Rule{Dst: "b", Target: Drop})
	if got := c.Verdict("x", "b"); got != Drop {
		t.Fatalf("verdict = %v, want Drop from inserted rule", got)
	}
}

func TestWildcardMatching(t *testing.T) {
	r := Rule{Target: Drop} // matches everything
	if !r.matches("any", "thing") {
		t.Fatal("empty rule fields must act as wildcards")
	}
	r = Rule{Src: "a", Target: Drop}
	if r.matches("b", "x") {
		t.Fatal("src mismatch must not match")
	}
	r = Rule{Dst: "d", Target: Drop}
	if r.matches("a", "x") {
		t.Fatal("dst mismatch must not match")
	}
}

func TestDeleteByComment(t *testing.T) {
	c := NewChain("INPUT")
	c.Append(Rule{Src: "a", Target: Drop, Comment: "p1"})
	c.Append(Rule{Src: "b", Target: Drop, Comment: "p2"})
	c.Append(Rule{Src: "c", Target: Drop, Comment: "p1"})
	if n := c.DeleteByComment("p1"); n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if got := c.Verdict("a", "x"); got != Accept {
		t.Fatal("rule for a should be gone")
	}
	if got := c.Verdict("b", "x"); got != Drop {
		t.Fatal("rule for b should remain")
	}
}

func TestHostChainsFilterDirectionally(t *testing.T) {
	h := NewHost("b")
	h.AppendInput(Rule{Src: "a", Target: Drop})
	if v := h.Input().Check("a", "b"); v != netsim.VerdictDrop {
		t.Fatal("input chain should drop packets from a")
	}
	if v := h.Output().Check("b", "a"); v != netsim.VerdictAccept {
		t.Fatal("output chain should be unaffected")
	}
	h.AppendOutput(Rule{Dst: "c", Target: Drop})
	if v := h.Output().Check("b", "c"); v != netsim.VerdictDrop {
		t.Fatal("output chain should drop packets to c")
	}
}

func TestSetWiresIntoNetwork(t *testing.T) {
	n := netsim.New(netsim.Options{})
	s := NewSet(n)
	delivered := 0
	n.Register("a", func(netsim.Packet) {})
	n.Register("b", func(netsim.Packet) { delivered++ })
	s.Host("b").AppendInput(Rule{Src: "a", Target: Drop, Comment: "t"})
	_ = n.Send("a", "b", nil)
	if delivered != 0 {
		t.Fatal("packet should be dropped by host firewall")
	}
	if removed := s.DeleteByComment("t"); removed != 1 {
		t.Fatalf("removed %d rules, want 1", removed)
	}
	_ = n.Send("a", "b", nil)
	if delivered != 1 {
		t.Fatal("packet should pass after rule removal")
	}
}

func TestHostFlushAndRuleCount(t *testing.T) {
	h := NewHost("x")
	h.AppendInput(Rule{Src: "a", Target: Drop})
	h.AppendOutput(Rule{Dst: "b", Target: Drop})
	if h.RuleCount() != 2 {
		t.Fatalf("RuleCount = %d, want 2", h.RuleCount())
	}
	h.Flush()
	if h.RuleCount() != 0 {
		t.Fatalf("RuleCount after flush = %d, want 0", h.RuleCount())
	}
}

func TestScriptRendersIptablesCommands(t *testing.T) {
	h := NewHost("n1")
	h.AppendInput(Rule{Src: "n2", Target: Drop, Comment: "neat-partition-1"})
	script := h.Script()
	for _, want := range []string{"iptables -A INPUT", "-s n2", "-j DROP", "neat-partition-1"} {
		if !strings.Contains(script, want) {
			t.Fatalf("script %q missing %q", script, want)
		}
	}
}

func TestRuleStringTargets(t *testing.T) {
	if got := (Rule{Target: Accept}).String(); !strings.Contains(got, "ACCEPT") {
		t.Fatalf("accept rule rendered as %q", got)
	}
	if got := (Rule{Target: Drop}).String(); !strings.Contains(got, "DROP") {
		t.Fatalf("drop rule rendered as %q", got)
	}
}

func TestDeleteByCommentIdempotent(t *testing.T) {
	// Property: deleting a tag twice removes nothing the second time,
	// and never affects rules with other tags.
	f := func(tagged, other uint8) bool {
		c := NewChain("INPUT")
		nt, no := int(tagged%20), int(other%20)
		for i := 0; i < nt; i++ {
			c.Append(Rule{Src: "a", Target: Drop, Comment: "tag"})
		}
		for i := 0; i < no; i++ {
			c.Append(Rule{Src: "b", Target: Drop, Comment: "keep"})
		}
		first := c.DeleteByComment("tag")
		second := c.DeleteByComment("tag")
		return first == nt && second == 0 && c.Len() == no
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
