// Package firewall implements an iptables-style host firewall: named
// chains of rules evaluated first-match-wins, with ACCEPT and DROP
// targets. The NEAT iptables partitioner backend programs these chains
// on every host, mirroring the paper's deployment mode for clusters
// without an OpenFlow switch.
package firewall

import (
	"fmt"
	"strings"
	"sync"

	"neat/internal/netsim"
)

// Target is a rule action.
type Target int

const (
	// Accept lets the packet through this chain.
	Accept Target = iota
	// Drop silently discards the packet.
	Drop
)

// String returns the iptables spelling of the target.
func (t Target) String() string {
	if t == Drop {
		return "DROP"
	}
	return "ACCEPT"
}

// Rule matches packets on (source, destination). An empty field is a
// wildcard, like omitting -s or -d in iptables.
type Rule struct {
	Src    netsim.NodeID
	Dst    netsim.NodeID
	Target Target
	// Comment mirrors iptables' -m comment --comment, used by the
	// partitioner to tag rules belonging to one partition so Heal can
	// delete exactly those rules.
	Comment string
}

func (r Rule) matches(src, dst netsim.NodeID) bool {
	if r.Src != "" && r.Src != src {
		return false
	}
	if r.Dst != "" && r.Dst != dst {
		return false
	}
	return true
}

// String renders the rule roughly as `iptables -A <chain>` arguments.
func (r Rule) String() string {
	var b strings.Builder
	if r.Src != "" {
		fmt.Fprintf(&b, "-s %s ", r.Src)
	}
	if r.Dst != "" {
		fmt.Fprintf(&b, "-d %s ", r.Dst)
	}
	if r.Comment != "" {
		fmt.Fprintf(&b, "-m comment --comment %q ", r.Comment)
	}
	fmt.Fprintf(&b, "-j %s", r.Target)
	return b.String()
}

// Chain is an ordered rule list with a default policy.
type Chain struct {
	Name   string
	Policy Target
	rules  []Rule
}

// NewChain creates a chain with policy ACCEPT, like the default
// INPUT/OUTPUT chains.
func NewChain(name string) *Chain {
	return &Chain{Name: name, Policy: Accept}
}

// Append adds a rule at the end (iptables -A).
func (c *Chain) Append(r Rule) { c.rules = append(c.rules, r) }

// Insert adds a rule at the head (iptables -I).
func (c *Chain) Insert(r Rule) { c.rules = append([]Rule{r}, c.rules...) }

// DeleteByComment removes every rule carrying the comment and reports
// how many were removed (iptables -D driven by a tag).
func (c *Chain) DeleteByComment(comment string) int {
	kept := c.rules[:0]
	removed := 0
	for _, r := range c.rules {
		if r.Comment == comment {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	c.rules = kept
	return removed
}

// Flush removes all rules (iptables -F).
func (c *Chain) Flush() { c.rules = nil }

// Len returns the number of rules in the chain.
func (c *Chain) Len() int { return len(c.rules) }

// Verdict evaluates the chain for a packet, first match wins, falling
// back to the chain policy.
func (c *Chain) Verdict(src, dst netsim.NodeID) Target {
	for _, r := range c.rules {
		if r.matches(src, dst) {
			return r.Target
		}
	}
	return c.Policy
}

// Host is the firewall state of one machine: an INPUT chain filtering
// packets addressed to it and an OUTPUT chain filtering packets it
// sends. It is safe for concurrent use and implements the two
// netsim.Filter hooks through Input()/Output().
type Host struct {
	mu     sync.RWMutex
	id     netsim.NodeID
	input  *Chain
	output *Chain
}

// NewHost creates the firewall for one host with empty ACCEPT chains.
func NewHost(id netsim.NodeID) *Host {
	return &Host{id: id, input: NewChain("INPUT"), output: NewChain("OUTPUT")}
}

// ID returns the host this firewall belongs to.
func (h *Host) ID() netsim.NodeID { return h.id }

// AppendInput appends a rule to the INPUT chain.
func (h *Host) AppendInput(r Rule) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.input.Append(r)
}

// AppendOutput appends a rule to the OUTPUT chain.
func (h *Host) AppendOutput(r Rule) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.output.Append(r)
}

// DeleteByComment removes tagged rules from both chains.
func (h *Host) DeleteByComment(comment string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.input.DeleteByComment(comment) + h.output.DeleteByComment(comment)
}

// Flush clears both chains.
func (h *Host) Flush() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.input.Flush()
	h.output.Flush()
}

// RuleCount returns the total number of installed rules.
func (h *Host) RuleCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.input.Len() + h.output.Len()
}

// Input returns a netsim.Filter view of the INPUT chain.
func (h *Host) Input() netsim.Filter {
	return netsim.FilterFunc(func(src, dst netsim.NodeID) netsim.Verdict {
		h.mu.RLock()
		defer h.mu.RUnlock()
		if h.input.Verdict(src, dst) == Drop {
			return netsim.VerdictDrop
		}
		return netsim.VerdictAccept
	})
}

// Output returns a netsim.Filter view of the OUTPUT chain.
func (h *Host) Output() netsim.Filter {
	return netsim.FilterFunc(func(src, dst netsim.NodeID) netsim.Verdict {
		h.mu.RLock()
		defer h.mu.RUnlock()
		if h.output.Verdict(src, dst) == Drop {
			return netsim.VerdictDrop
		}
		return netsim.VerdictAccept
	})
}

// Script renders the host's chains as the equivalent iptables commands,
// for debugging and for documenting what a real deployment would run.
func (h *Host) Script() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var b strings.Builder
	for _, pair := range []struct {
		name  string
		chain *Chain
	}{{"INPUT", h.input}, {"OUTPUT", h.output}} {
		for _, r := range pair.chain.rules {
			fmt.Fprintf(&b, "iptables -A %s %s\n", pair.name, r)
		}
	}
	return b.String()
}

// Set manages the firewalls of a whole cluster and wires them into a
// netsim.Network.
type Set struct {
	mu    sync.RWMutex
	net   *netsim.Network
	hosts map[netsim.NodeID]*Host
}

// NewSet creates an empty firewall set bound to a fabric.
func NewSet(n *netsim.Network) *Set {
	return &Set{net: n, hosts: make(map[netsim.NodeID]*Host)}
}

// Host returns (creating and attaching if needed) the firewall of id.
func (s *Set) Host(id netsim.NodeID) *Host {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hosts[id]
	if !ok {
		h = NewHost(id)
		s.hosts[id] = h
		s.net.SetIngress(id, h.Input())
		s.net.SetEgress(id, h.Output())
	}
	return h
}

// DeleteByComment removes tagged rules from every host, returning the
// number of rules removed.
func (s *Set) DeleteByComment(comment string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, h := range s.hosts {
		total += h.DeleteByComment(comment)
	}
	return total
}

// FlushAll clears every host's chains.
func (s *Set) FlushAll() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, h := range s.hosts {
		h.Flush()
	}
}
