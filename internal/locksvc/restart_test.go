package locksvc

import (
	"testing"
	"time"
)

// TestSyncBackupsRecoversAfterCrashRestart: with SyncBackups, a
// crashed backup makes mutations unavailable; once it restarts and
// rejoins, mutations must succeed again.
func TestSyncBackupsRecoversAfterCrashRestart(t *testing.T) {
	cfg := testConfig()
	cfg.SyncBackups = true
	cfg.ValidateRelease = true
	cfg.RejoinAfterHeal = true
	f := deploy(t, cfg)

	if err := f.c1.Lock("L0"); err != nil {
		t.Fatalf("healthy lock: %v", err)
	}
	f.eng.Crash("r2")
	f.eng.Sleep(100 * time.Millisecond)
	if err := f.c1.Lock("L1"); err == nil {
		t.Logf("lock during crash unexpectedly succeeded")
	} else {
		t.Logf("lock during crash: %v", err)
	}
	f.eng.Restart("r2")
	f.eng.Sleep(400 * time.Millisecond)
	t.Logf("views: r1=%v r2=%v r3=%v",
		f.sys.Replica("r1").View(), f.sys.Replica("r2").View(), f.sys.Replica("r3").View())
	if err := f.c1.Lock("L2"); err != nil {
		t.Fatalf("lock after restart: %v", err)
	}
}
