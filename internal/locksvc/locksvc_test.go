package locksvc

import (
	"testing"
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
)

var groupIDs = []netsim.NodeID{"r1", "r2", "r3"}

func testConfig() Config {
	return Config{
		Replicas:          groupIDs,
		HeartbeatInterval: 10 * time.Millisecond,
		MissesToSuspect:   3,
		LeaseTTL:          60 * time.Millisecond,
		RPCTimeout:        30 * time.Millisecond,
	}
}

type fixture struct {
	eng *core.Engine
	sys *System
	c1  *Client
	c2  *Client
}

func deploy(t *testing.T, cfg Config) *fixture {
	t.Helper()
	eng := core.NewEngine(core.Options{})
	for _, id := range cfg.Replicas {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("c1", core.RoleClient)
	eng.AddNode("c2", core.RoleClient)
	sys := NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	f := &fixture{
		eng: eng,
		sys: sys,
		c1:  NewClient(eng.Network(), "c1", cfg.Replicas, cfg.LeaseTTL),
		c2:  NewClient(eng.Network(), "c2", cfg.Replicas, cfg.LeaseTTL),
	}
	t.Cleanup(func() {
		f.c1.Close()
		f.c2.Close()
		eng.Shutdown()
	})
	return f
}

func (f *fixture) waitViewSize(t *testing.T, node netsim.NodeID, n int) {
	t.Helper()
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return len(f.sys.Replica(node).View()) == n
	})
	if !ok {
		t.Fatalf("%s view = %v, want size %d", node, f.sys.Replica(node).View(), n)
	}
}

func TestLockMutualExclusionHealthy(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.Lock("L"); err != nil {
		t.Fatalf("c1 lock: %v", err)
	}
	if err := f.c2.Lock("L"); !IsLockHeld(err) {
		t.Fatalf("c2 lock = %v, want lock-held", err)
	}
	if err := f.c1.Unlock("L"); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	if err := f.c2.Lock("L"); err != nil {
		t.Fatalf("c2 lock after unlock: %v", err)
	}
}

func TestSemaphoreBasics(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.SemCreate("S", 2); err != nil {
		t.Fatal(err)
	}
	if err := f.c1.SemAcquire("S", 2); err != nil {
		t.Fatal(err)
	}
	if err := f.c2.SemAcquire("S", 1); !IsNoPermits(err) {
		t.Fatalf("over-acquire = %v, want no-permits", err)
	}
	if err := f.c1.SemRelease("S", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.c2.SemAcquire("S", 1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestAtomicsHealthy(t *testing.T) {
	f := deploy(t, testConfig())
	v1, err := f.c1.IncrementAndGet("seq", 1)
	if err != nil || v1 != 1 {
		t.Fatalf("incr = %d, %v", v1, err)
	}
	v2, err := f.c2.IncrementAndGet("seq", 1)
	if err != nil || v2 != 2 {
		t.Fatalf("incr = %d, %v; sequence must not repeat", v2, err)
	}
	if err := f.c1.CompareAndSet("ref", "", "a"); err != nil {
		t.Fatal(err)
	}
	if err := f.c2.CompareAndSet("ref", "", "b"); !IsCASFailed(err) {
		t.Fatalf("second CAS from stale value = %v, want cas-failed", err)
	}
}

func TestRedirectToCoordinator(t *testing.T) {
	f := deploy(t, testConfig())
	// r1 is the coordinator (lowest ID); ops through any replica land
	// there via redirect, so state is shared.
	if err := f.c1.CachePut("k", "v"); err != nil {
		t.Fatal(err)
	}
	got, found, err := f.c2.CacheGet("k")
	if err != nil || !found || got != "v" {
		t.Fatalf("get = %q found=%v err=%v", got, found, err)
	}
}

// TestFigure5SemaphoreDoubleLocking reproduces Figure 5: a complete
// partition isolates one replica; both sides remove the unreachable
// nodes from their replica sets; clients on both sides acquire the
// same single-permit semaphore.
func TestFigure5SemaphoreDoubleLocking(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.SemCreate("S", 1); err != nil {
		t.Fatal(err)
	}
	// Step 1: isolate r3 with c2.
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"}); err != nil {
		t.Fatal(err)
	}
	f.waitViewSize(t, "r3", 1) // r3 forms its own cluster
	f.waitViewSize(t, "r1", 2)
	// Step 2: both sides acquire the same semaphore.
	if err := f.c1.SemAcquire("S", 1); err != nil {
		t.Fatalf("majority-side acquire: %v", err)
	}
	if err := f.c2.SemAcquire("S", 1); err != nil {
		t.Fatalf("minority-side acquire: %v (double locking requires both to succeed)", err)
	}
}

// TestLockDoubleAcquireAcrossPartition is the exclusive-lock variant
// of Figure 5 (Terracotta issue #904).
func TestLockDoubleAcquireAcrossPartition(t *testing.T) {
	f := deploy(t, testConfig())
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"}); err != nil {
		t.Fatal(err)
	}
	f.waitViewSize(t, "r3", 1)
	if err := f.c1.Lock("L"); err != nil {
		t.Fatal(err)
	}
	if err := f.c2.Lock("L"); err != nil {
		t.Fatalf("second acquire across partition = %v; double locking expected", err)
	}
}

// TestSemaphoreCorruptionAfterReclaim reproduces the Ignite semaphore
// corruption: the cluster reclaims an unreachable client's permit;
// after the heal the client releases anyway and the permit count
// exceeds capacity.
func TestSemaphoreCorruptionAfterReclaim(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.SemCreate("S", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.c1.SemAcquire("S", 1); err != nil {
		t.Fatal(err)
	}
	// Isolate the holder client only; the replicas stay connected.
	p, err := f.eng.Complete(
		[]netsim.NodeID{"c1"}, []netsim.NodeID{"r1", "r2", "r3", "c2"})
	if err != nil {
		t.Fatal(err)
	}
	// The lease expires and the permit is reclaimed.
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		permits, _, _ := f.sys.Replica("r1").SemStatus("S")
		return permits == 1
	})
	if !ok {
		t.Fatal("permit never reclaimed from the unreachable client")
	}
	if err := f.eng.Heal(p); err != nil {
		t.Fatal(err)
	}
	// The healed client releases the permit it thinks it still holds.
	if err := f.c1.SemRelease("S", 1); err != nil {
		t.Fatalf("late release: %v", err)
	}
	permits, max, corrupted := f.sys.Replica("r1").SemStatus("S")
	if !corrupted {
		t.Fatalf("permits=%d max=%d: semaphore should be corrupted (permits > max)", permits, max)
	}
}

// TestBrokenAtomicSequenceAcrossPartition reproduces IGNITE-9768: both
// sides of a partition hand out the same sequence numbers.
func TestBrokenAtomicSequenceAcrossPartition(t *testing.T) {
	f := deploy(t, testConfig())
	if _, err := f.c1.IncrementAndGet("seq", 5); err != nil { // seq = 5 everywhere
		t.Fatal(err)
	}
	f.eng.WaitUntil(time.Second, func() bool {
		f.sys.Replica("r3").mu.Lock()
		v := f.sys.Replica("r3").atomics["seq"]
		f.sys.Replica("r3").mu.Unlock()
		return v == 5
	})
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"}); err != nil {
		t.Fatal(err)
	}
	f.waitViewSize(t, "r3", 1)
	a, err := f.c1.IncrementAndGet("seq", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.c2.IncrementAndGet("seq", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("sides returned %d and %d; the failure is both handing out the same value", a, b)
	}
}

// TestBrokenCASAcrossPartition reproduces the broken AtomicRef: the
// same compare-and-set succeeds on both sides.
func TestBrokenCASAcrossPartition(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.CompareAndSet("ref", "", "base"); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(time.Second, func() bool {
		f.sys.Replica("r3").mu.Lock()
		v := f.sys.Replica("r3").refs["ref"]
		f.sys.Replica("r3").mu.Unlock()
		return v == "base"
	})
	if !ok {
		t.Fatal("base value never replicated to r3")
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"}); err != nil {
		t.Fatal(err)
	}
	f.waitViewSize(t, "r3", 1)
	if err := f.c1.CompareAndSet("ref", "base", "x"); err != nil {
		t.Fatalf("side-1 CAS: %v", err)
	}
	if err := f.c2.CompareAndSet("ref", "base", "y"); err != nil {
		t.Fatalf("side-2 CAS: %v — both succeeding from the same expected value is the failure", err)
	}
}

// TestCacheStaleReadAcrossPartition reproduces IGNITE-9762.
func TestCacheStaleReadAcrossPartition(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.CachePut("k", "v1"); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(time.Second, func() bool {
		f.sys.Replica("r3").mu.Lock()
		v := f.sys.Replica("r3").cache["k"]
		f.sys.Replica("r3").mu.Unlock()
		return v == "v1"
	})
	if !ok {
		t.Fatal("v1 never replicated to r3")
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"}); err != nil {
		t.Fatal(err)
	}
	f.waitViewSize(t, "r3", 1)
	if err := f.c1.CachePut("k", "v2"); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.c2.CacheGet("k")
	if err != nil {
		t.Fatal(err)
	}
	if got != "v1" {
		t.Fatalf("minority read %q, want the stale v1", got)
	}
}

// TestQueueDoubleDequeueAcrossPartition reproduces IGNITE-9765: the
// same element is popped on both sides.
func TestQueueDoubleDequeueAcrossPartition(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.QueuePush("q", "m1"); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(time.Second, func() bool {
		f.sys.Replica("r3").mu.Lock()
		n := len(f.sys.Replica("r3").queues["q"])
		f.sys.Replica("r3").mu.Unlock()
		return n == 1
	})
	if !ok {
		t.Fatal("element never replicated to r3")
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"}); err != nil {
		t.Fatal(err)
	}
	f.waitViewSize(t, "r3", 1)
	a, err := f.c1.QueuePop("q")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.c2.QueuePop("q")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("popped %q and %q; double dequeue means both get the same element", a, b)
	}
}

// TestLastingClusterSplitAfterHeal verifies Finding 3's lasting
// damage: without RejoinAfterHeal the two clusters never merge.
func TestLastingClusterSplitAfterHeal(t *testing.T) {
	f := deploy(t, testConfig())
	p, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"})
	if err != nil {
		t.Fatal(err)
	}
	f.waitViewSize(t, "r3", 1)
	f.waitViewSize(t, "r1", 2)
	if err := f.eng.Heal(p); err != nil {
		t.Fatal(err)
	}
	f.eng.Sleep(200 * time.Millisecond) // plenty of heartbeats
	if got := len(f.sys.Replica("r3").View()); got != 1 {
		t.Fatalf("r3 view size after heal = %d; the split must persist", got)
	}
	if got := len(f.sys.Replica("r1").View()); got != 2 {
		t.Fatalf("r1 view size after heal = %d; the split must persist", got)
	}
}

// TestRejoinAfterHealMerges is the control: with the knob set the
// views converge back.
func TestRejoinAfterHealMerges(t *testing.T) {
	cfg := testConfig()
	cfg.RejoinAfterHeal = true
	f := deploy(t, cfg)
	p, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"})
	if err != nil {
		t.Fatal(err)
	}
	f.waitViewSize(t, "r3", 1)
	if err := f.eng.Heal(p); err != nil {
		t.Fatal(err)
	}
	f.waitViewSize(t, "r3", 3)
	f.waitViewSize(t, "r1", 3)
}

// TestSyncBackupsTradesAvailability is the safe configuration: during
// the partition mutations fail instead of diverging (the CAP trade).
func TestSyncBackupsTradesAvailability(t *testing.T) {
	cfg := testConfig()
	cfg.SyncBackups = true
	f := deploy(t, cfg)
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"r3", "c2"}, []netsim.NodeID{"r1", "r2", "c1"}); err != nil {
		t.Fatal(err)
	}
	f.waitViewSize(t, "r1", 2)
	err := f.c1.CachePut("k", "v")
	if !IsUnavailable(err) {
		t.Fatalf("mutation during partition = %v, want unavailability", err)
	}
}

func TestQueueFIFOAndEmpty(t *testing.T) {
	f := deploy(t, testConfig())
	for _, m := range []string{"a", "b", "c"} {
		if err := f.c1.QueuePush("q", m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"a", "b", "c"} {
		got, err := f.c2.QueuePop("q")
		if err != nil || got != want {
			t.Fatalf("pop = %q, %v; want %q", got, err, want)
		}
	}
	if _, err := f.c2.QueuePop("q"); !IsEmpty(err) {
		t.Fatalf("pop empty = %v, want empty error", err)
	}
}

func TestLockLeaseReclaimedFromPartitionedClient(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.Lock("L"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"c1"}, []netsim.NodeID{"r1", "r2", "r3", "c2"}); err != nil {
		t.Fatal(err)
	}
	// The cluster reclaims the lock and hands it to c2 — while c1
	// still believes it holds it: broken mutual exclusion.
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return f.c2.Lock("L") == nil
	})
	if !ok {
		t.Fatal("lock never reclaimed from the partitioned holder")
	}
}

// TestValidateReleaseFencesStaleRelease: with fenced releases, an
// unlock from a client that does not hold the lock bounces with
// ErrNotHolder instead of silently deleting the real holder's grant —
// the defense against a resumed zombie blindly releasing a lock that
// was reclaimed and regranted while it was frozen.
func TestValidateReleaseFencesStaleRelease(t *testing.T) {
	cfg := testConfig()
	cfg.ValidateRelease = true
	f := deploy(t, cfg)
	if err := f.c1.Lock("L"); err != nil {
		t.Fatalf("c1 lock: %v", err)
	}
	if err := f.c2.Unlock("L"); !IsNotHolder(err) {
		t.Fatalf("stale unlock = %v, want ErrNotHolder", err)
	}
	// The fenced release must not have corrupted c1's grant.
	if err := f.c2.Lock("L"); err == nil {
		t.Fatal("c2 acquired a lock c1 still holds after its fenced release")
	}
	if err := f.c1.Unlock("L"); err != nil {
		t.Fatalf("real holder's unlock: %v", err)
	}
}
