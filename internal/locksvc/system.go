package locksvc

import (
	"neat/internal/core"
	"neat/internal/netsim"
)

// System bundles a replica group into NEAT's ISystem interface.
type System struct {
	cfg      Config
	net      *netsim.Network
	replicas map[netsim.NodeID]*Replica
}

// NewSystem creates the replica group, unstarted.
func NewSystem(n *netsim.Network, cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{cfg: cfg, net: n, replicas: make(map[netsim.NodeID]*Replica)}
	for _, id := range cfg.Replicas {
		s.replicas[id] = NewReplica(n, id, cfg)
	}
	return s
}

// Name implements core.ISystem.
func (s *System) Name() string { return "locksvc" }

// Start implements core.ISystem. Replicas boot in configured order so
// ticker registration (and virtual-time firing order) is identical
// between runs of the same seed.
func (s *System) Start() error {
	for _, id := range s.cfg.Replicas {
		s.replicas[id].Start()
	}
	return nil
}

// Stop implements core.ISystem.
func (s *System) Stop() error {
	for _, r := range s.replicas {
		r.Stop()
	}
	return nil
}

// Status implements core.ISystem.
func (s *System) Status() map[netsim.NodeID]core.NodeStatus {
	out := make(map[netsim.NodeID]core.NodeStatus, len(s.replicas))
	for id, r := range s.replicas {
		role := "member"
		if r.Coordinator() == id {
			role = "coordinator"
		}
		out[id] = core.NodeStatus{Up: s.net.IsUp(id), Role: role}
	}
	return out
}

// Replica returns the replica on a node.
func (s *System) Replica(id netsim.NodeID) *Replica { return s.replicas[id] }
