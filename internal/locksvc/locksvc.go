// Package locksvc implements a replicated distributed-coordination
// toolkit in the mould of Apache Ignite, Hazelcast, and Terracotta:
// named exclusive locks, counting semaphores, atomic longs/sequences/
// references with compare-and-set, and a small replicated cache.
//
// The package deliberately embodies the design decision behind every
// Ignite failure NEAT found (Table 15): "the assumption that an
// unreachable node has crashed; consequently, nodes on both sides of a
// partition remove the nodes they cannot reach from their replica
// set." Each replica maintains a membership view driven by a heartbeat
// failure detector; the lowest-ID member of the view coordinates
// grants. Once a partition splits the views, both sides keep operating
// on the full pre-partition state — double locking, duplicate sequence
// numbers, and CAS violations follow. Unless RejoinAfterHeal is set,
// the split views persist after the partition heals, reproducing the
// lasting-damage behaviour of Finding 3.
package locksvc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/fd"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// Config configures the replica group.
type Config struct {
	// Replicas is the full static membership.
	Replicas []netsim.NodeID
	// HeartbeatInterval is the membership failure-detector period.
	HeartbeatInterval time.Duration
	// MissesToSuspect is heartbeat misses before eviction from the view.
	MissesToSuspect int
	// LeaseTTL is how long a client's permits survive without renewal
	// before the coordinator reclaims them (the Ignite semaphore
	// reclaim behaviour).
	LeaseTTL time.Duration
	// RejoinAfterHeal re-admits evicted members when heartbeats
	// resume. The studied systems do NOT do this — the false default
	// reproduces their lasting cluster split.
	RejoinAfterHeal bool
	// SyncBackups requires acknowledgements from every member of the
	// ORIGINAL replica set for each mutation. This is the
	// safe-but-unavailable configuration: operations fail during a
	// partition instead of diverging.
	SyncBackups bool
	// ValidateRelease makes releases fenced: a lock release from a
	// non-holder and a semaphore release beyond the client's held
	// permits fail with ErrNotHolder instead of blindly mutating state.
	// This is the hardening against the paused-holder scenario: a
	// client that froze past its lease TTL finds its lock reclaimed and
	// regranted, and its stale release must bounce off the new holder
	// rather than silently unlock someone else's critical section.
	ValidateRelease bool
	// RPCTimeout bounds one replication round trip.
	RPCTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 10 * time.Millisecond
	}
	if c.MissesToSuspect == 0 {
		c.MissesToSuspect = 3
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 60 * time.Millisecond
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Millisecond
	}
	return c
}

// RPC method names.
const (
	mOp    = "lock.op"
	mRepl  = "lock.repl"
	mRenew = "lock.renew"
	mView  = "lock.view"
)

// opKind enumerates the replicated operations.
type opKind int

const (
	opLockAcquire opKind = iota
	opLockRelease
	opSemCreate
	opSemAcquire
	opSemRelease
	opIncr
	opCAS
	opCachePut
	opCacheGet
	opQueuePush
	opQueuePop
)

// opReq is a client operation.
type opReq struct {
	Kind   opKind
	Name   string
	Client netsim.NodeID
	Val    string
	Num    int64
	Old    string
}

// opResp is the operation result.
type opResp struct {
	OK    bool
	Val   string
	Num   int64
	Found bool
}

// replMsg replicates a state delta within the coordinator's view.
type replMsg struct {
	Req    opReq
	Result opResp
}

// renewMsg renews all leases of one client.
type renewMsg struct{ Client netsim.NodeID }

// NotCoordinatorError redirects the client.
type NotCoordinatorError struct{ Coordinator netsim.NodeID }

// Error implements the error interface.
func (e *NotCoordinatorError) Error() string {
	return fmt.Sprintf("not coordinator; try %s", e.Coordinator)
}

// ErrUnavailable is returned in SyncBackups mode when a backup cannot
// be reached: the operation fails rather than diverging.
var ErrUnavailable = errors.New("locksvc: backups unreachable, operation unavailable")

// ErrLockHeld is returned when an exclusive lock is already held.
var ErrLockHeld = errors.New("locksvc: lock already held")

// ErrNoPermits is returned when a semaphore has no free permits.
var ErrNoPermits = errors.New("locksvc: no permits available")

// ErrCASFailed is returned when compare-and-set sees a different value.
var ErrCASFailed = errors.New("locksvc: compare-and-set failed")

// ErrNotHolder is returned by fenced (ValidateRelease) configurations
// when a client releases a lock or permits it does not hold — typically
// a process that stalled past its lease TTL and lost its grant.
var ErrNotHolder = errors.New("locksvc: caller does not hold the lock")

// ErrEmpty is returned when popping an empty queue.
var ErrEmpty = errors.New("locksvc: queue empty")

type semState struct {
	Max     int64
	Permits int64
	Holders map[netsim.NodeID]int64
	Expiry  map[netsim.NodeID]time.Time
}

// Replica is one member of the coordination group.
type Replica struct {
	cfg Config
	id  netsim.NodeID
	ep  *transport.Endpoint
	det *fd.Detector

	mu      sync.Mutex
	view    map[netsim.NodeID]bool
	banned  map[netsim.NodeID]bool
	locks   map[string]netsim.NodeID
	lockExp map[string]time.Time
	sems    map[string]*semState
	atomics map[string]int64
	refs    map[string]string
	cache   map[string]string
	queues  map[string][]string
	stopped bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewReplica creates (but does not start) a replica.
func NewReplica(n *netsim.Network, id netsim.NodeID, cfg Config) *Replica {
	cfg = cfg.withDefaults()
	r := &Replica{
		cfg:     cfg,
		id:      id,
		ep:      transport.NewEndpoint(n, id),
		view:    make(map[netsim.NodeID]bool, len(cfg.Replicas)),
		banned:  make(map[netsim.NodeID]bool),
		locks:   make(map[string]netsim.NodeID),
		lockExp: make(map[string]time.Time),
		sems:    make(map[string]*semState),
		atomics: make(map[string]int64),
		refs:    make(map[string]string),
		cache:   make(map[string]string),
		queues:  make(map[string][]string),
		stopCh:  make(chan struct{}),
	}
	for _, m := range cfg.Replicas {
		r.view[m] = true
	}
	r.ep.DefaultTimeout = cfg.RPCTimeout
	r.ep.Handle(mOp, r.onOp)
	r.ep.Handle(mRepl, r.onRepl)
	r.ep.Handle(mRenew, r.onRenew)
	r.ep.Handle(mView, r.onView)
	r.det = fd.New(r.ep, cfg.Replicas, fd.Options{
		Interval:        cfg.HeartbeatInterval,
		MissesToSuspect: cfg.MissesToSuspect,
	}, r.onMembership)
	return r
}

// ID returns the replica's node ID.
func (r *Replica) ID() netsim.NodeID { return r.id }

// Start launches the failure detector and the lease sweeper, creating
// the sweep ticker on the caller for deterministic creation order.
func (r *Replica) Start() {
	r.det.Start()
	r.wg.Add(1)
	t := r.ep.Clock().NewTicker(r.cfg.HeartbeatInterval)
	go r.sweepLoop(t)
}

// Stop halts the replica.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	close(r.stopCh)
	r.det.Stop()
	r.wg.Wait()
	r.ep.Close()
}

// onMembership is the failure-detector listener: unreachable members
// are evicted from the view — "an unreachable node has crashed".
func (r *Replica) onMembership(ev fd.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch ev.Now {
	case fd.Suspected:
		delete(r.view, ev.Peer)
		if !r.cfg.RejoinAfterHeal {
			// The split is permanent: the member is never re-admitted,
			// so after the partition heals the cluster stays divided
			// (Finding 3's lasting damage).
			r.banned[ev.Peer] = true
		}
	case fd.Alive:
		if !r.banned[ev.Peer] {
			r.view[ev.Peer] = true
		}
	}
}

// View returns the replica's current membership view, sorted.
func (r *Replica) View() []netsim.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]netsim.NodeID, 0, len(r.view))
	for m := range r.view {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// coordinatorLocked returns the lowest ID in the view.
func (r *Replica) coordinatorLocked() netsim.NodeID {
	best := r.id
	for m := range r.view {
		if m < best {
			best = m
		}
	}
	return best
}

// Coordinator returns which node this replica currently defers to.
func (r *Replica) Coordinator() netsim.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.coordinatorLocked()
}

// viewCoversReplicaSetLocked reports whether this replica's view still
// contains every member of the original replica set. Only then may a
// SyncBackups coordinator serve: with the full set in view, every
// replica's full view names the same lowest-ID coordinator, so two
// coordinators can never exist at once.
func (r *Replica) viewCoversReplicaSetLocked() bool {
	for _, m := range r.cfg.Replicas {
		if m != r.id && !r.view[m] {
			return false
		}
	}
	return true
}

// sweepLoop reclaims permits and locks whose client lease expired —
// "an unreachable client that is holding a semaphore is assumed to
// have crashed; the system will reclaim the client's semaphore."
func (r *Replica) sweepLoop(t clock.Ticker) {
	defer r.wg.Done()
	defer t.Stop()
	clock.TickLoop(r.ep.Clock(), t, r.stopCh, r.sweepLeases)
}

func (r *Replica) sweepLeases() {
	now := r.ep.Clock().Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, s := range r.sems {
		for client, exp := range s.Expiry {
			if now.After(exp) {
				s.Permits += s.Holders[client]
				if s.Permits > s.Max {
					s.Permits = s.Max
				}
				delete(s.Holders, client)
				delete(s.Expiry, client)
				_ = name
			}
		}
	}
	for name, exp := range r.lockExp {
		if now.After(exp) {
			delete(r.locks, name)
			delete(r.lockExp, name)
		}
	}
}

// onRenew refreshes every lease of the given client.
func (r *Replica) onRenew(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(renewMsg)
	if !ok {
		return nil, errors.New("bad renew")
	}
	exp := r.ep.Clock().Now().Add(r.cfg.LeaseTTL)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.sems {
		if _, held := s.Holders[msg.Client]; held {
			s.Expiry[msg.Client] = exp
		}
	}
	for name, holder := range r.locks {
		if holder == msg.Client {
			r.lockExp[name] = exp
		}
	}
	return nil, nil
}

// onView reports the membership view (for clients and tests).
func (r *Replica) onView(netsim.NodeID, any) (any, error) {
	return r.View(), nil
}

// onOp handles a client operation. Only the coordinator of this
// replica's view executes; everyone else redirects.
func (r *Replica) onOp(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(opReq)
	if !ok {
		return nil, errors.New("bad op")
	}
	r.mu.Lock()
	coord := r.coordinatorLocked()
	if coord != r.id {
		r.mu.Unlock()
		return nil, &NotCoordinatorError{Coordinator: coord}
	}
	if r.cfg.SyncBackups && !r.viewCoversReplicaSetLocked() {
		// Sync mode is the CP trade: a coordinator whose view has lost
		// a member of the original replica set refuses to serve, before
		// touching local state. Serving from a partial view would let a
		// second coordinator exist — a client failing over around a
		// slow or partitioned link reaches a replica whose divergent
		// view names itself coordinator, and the two grant
		// independently even though every backup acknowledges.
		r.mu.Unlock()
		return nil, ErrUnavailable
	}
	resp, err := r.applyLocked(req)
	var backups []netsim.NodeID
	if err == nil {
		if r.cfg.SyncBackups {
			backups = r.allOthers()
		} else {
			backups = r.viewOthersLocked()
		}
	}
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if isMutation(req.Kind) {
		acked := r.replicate(backups, replMsg{Req: req, Result: resp})
		if r.cfg.SyncBackups && acked < len(backups) {
			return nil, ErrUnavailable
		}
	}
	return resp, nil
}

func isMutation(k opKind) bool { return k != opCacheGet }

func (r *Replica) allOthers() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(r.cfg.Replicas))
	for _, m := range r.cfg.Replicas {
		if m != r.id {
			out = append(out, m)
		}
	}
	return out
}

func (r *Replica) viewOthersLocked() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(r.view))
	for m := range r.view {
		if m != r.id {
			out = append(out, m)
		}
	}
	// The view is a map; broadcasts must walk it in a stable order.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *Replica) replicate(backups []netsim.NodeID, msg replMsg) int {
	acked := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range backups {
		b := b
		wg.Add(1)
		clock.Go(r.ep.Clock(), func() {
			defer wg.Done()
			//neat:allow ambiguity -- modeled lock replication counts only acked backups; replays are idempotent per token
			if _, err := r.ep.Call(b, mRepl, msg, r.cfg.RPCTimeout); err == nil {
				mu.Lock()
				acked++
				mu.Unlock()
			}
		})
	}
	clock.Idle(r.ep.Clock(), wg.Wait)
	return acked
}

// onRepl applies a delta replicated by a coordinator. Backups apply
// blindly — they trust their coordinator, even if (during a partition)
// another coordinator exists on the other side.
func (r *Replica) onRepl(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(replMsg)
	if !ok {
		return nil, errors.New("bad repl")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.applyLocked(msg.Req)
	// Replication of a failed op cannot happen; divergence errors are
	// swallowed exactly as the flawed systems swallow them.
	_ = err
	return nil, nil
}

// applyLocked executes one operation against local state.
func (r *Replica) applyLocked(req opReq) (opResp, error) {
	switch req.Kind {
	case opLockAcquire:
		if holder, held := r.locks[req.Name]; held && holder != req.Client {
			return opResp{}, ErrLockHeld
		}
		r.locks[req.Name] = req.Client
		r.lockExp[req.Name] = r.ep.Clock().Now().Add(r.cfg.LeaseTTL)
		return opResp{OK: true}, nil
	case opLockRelease:
		if r.cfg.ValidateRelease {
			// Fenced release: only the recorded holder may unlock. A
			// paused client whose lease was reclaimed (and whose lock
			// was regranted) gets ErrNotHolder instead of silently
			// unlocking the new holder's critical section.
			if holder, held := r.locks[req.Name]; !held || holder != req.Client {
				return opResp{}, ErrNotHolder
			}
		}
		// Blind release otherwise: no check that the caller holds the
		// lock. This is the broken-locks flaw — a reclaimed lock
		// released late silently unlocks someone else's critical
		// section.
		delete(r.locks, req.Name)
		delete(r.lockExp, req.Name)
		return opResp{OK: true}, nil
	case opSemCreate:
		if _, exists := r.sems[req.Name]; !exists {
			r.sems[req.Name] = &semState{
				Max: req.Num, Permits: req.Num,
				Holders: make(map[netsim.NodeID]int64),
				Expiry:  make(map[netsim.NodeID]time.Time),
			}
		}
		return opResp{OK: true}, nil
	case opSemAcquire:
		s, exists := r.sems[req.Name]
		if !exists || s.Permits < req.Num {
			return opResp{}, ErrNoPermits
		}
		s.Permits -= req.Num
		s.Holders[req.Client] += req.Num
		s.Expiry[req.Client] = r.ep.Clock().Now().Add(r.cfg.LeaseTTL)
		return opResp{OK: true, Num: s.Permits}, nil
	case opSemRelease:
		s, exists := r.sems[req.Name]
		if !exists {
			return opResp{}, ErrNoPermits
		}
		if r.cfg.ValidateRelease && s.Holders[req.Client] < req.Num {
			// Fenced: a release beyond the client's recorded holdings
			// (its permits were lease-reclaimed while it was stalled)
			// bounces instead of corrupting the permit count.
			return opResp{}, ErrNotHolder
		}
		// Blind increment otherwise: the release is not validated
		// against the holder table, so a late release after a lease
		// reclaim pushes the permit count past Max — the corrupted
		// semaphore NEAT reported against Ignite.
		s.Permits += req.Num
		if s.Holders[req.Client] > 0 {
			s.Holders[req.Client] -= req.Num
			if s.Holders[req.Client] <= 0 {
				delete(s.Holders, req.Client)
				delete(s.Expiry, req.Client)
			}
		}
		return opResp{OK: true, Num: s.Permits}, nil
	case opIncr:
		r.atomics[req.Name] += req.Num
		return opResp{OK: true, Num: r.atomics[req.Name]}, nil
	case opCAS:
		cur := r.refs[req.Name]
		if cur != req.Old {
			return opResp{OK: false, Val: cur}, ErrCASFailed
		}
		r.refs[req.Name] = req.Val
		return opResp{OK: true, Val: req.Val}, nil
	case opCachePut:
		r.cache[req.Name] = req.Val
		return opResp{OK: true}, nil
	case opCacheGet:
		v, found := r.cache[req.Name]
		return opResp{OK: true, Val: v, Found: found}, nil
	case opQueuePush:
		r.queues[req.Name] = append(r.queues[req.Name], req.Val)
		return opResp{OK: true}, nil
	case opQueuePop:
		q := r.queues[req.Name]
		if len(q) == 0 {
			return opResp{}, ErrEmpty
		}
		v := q[0]
		r.queues[req.Name] = q[1:]
		return opResp{OK: true, Val: v, Found: true}, nil
	default:
		return opResp{}, fmt.Errorf("locksvc: unknown op %d", req.Kind)
	}
}

// SemStatus reports a semaphore's permits, capacity, and whether the
// state is corrupted (permits exceeding capacity).
func (r *Replica) SemStatus(name string) (permits, max int64, corrupted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sems[name]
	if !ok {
		return 0, 0, false
	}
	return s.Permits, s.Max, s.Permits > s.Max
}

// QueueLen reports the local length of a distributed queue.
func (r *Replica) QueueLen(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queues[name])
}

// LockHolder returns who holds a lock on this replica's copy.
func (r *Replica) LockHolder(name string) (netsim.NodeID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.locks[name]
	return h, ok
}
