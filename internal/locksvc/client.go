package locksvc

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
	"neat/internal/resilience"
	"neat/internal/transport"
)

// Client is a coordination-service client. It renews its leases in the
// background; a client cut off by a partition stops renewing on the
// far side and its permits are reclaimed there.
type Client struct {
	ep       *transport.Endpoint
	replicas []netsim.NodeID
	timeout  time.Duration
	// renewTO bounds one renewal call; rng seeds its backoff. Both
	// live on the client so renewal timing stays deterministic per
	// client identity.
	renewTO time.Duration
	rng     *rand.Rand

	mu      sync.Mutex
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// NewClient attaches a client and starts its lease renewer at the
// default TTL/3 cadence.
func NewClient(n *netsim.Network, id netsim.NodeID, replicas []netsim.NodeID, leaseTTL time.Duration) *Client {
	return NewClientWithRenew(n, id, replicas, leaseTTL, 0)
}

// NewClientWithRenew attaches a client renewing every renewEvery (0
// means leaseTTL/3). A skew-tolerant deployment renews well inside the
// TTL — at TTL/6 a lease survives a clock jumping tens of milliseconds
// ahead on the server, where the TTL/3 default leaves no margin.
func NewClientWithRenew(n *netsim.Network, id netsim.NodeID, replicas []netsim.NodeID, leaseTTL, renewEvery time.Duration) *Client {
	if leaseTTL == 0 {
		leaseTTL = 60 * time.Millisecond
	}
	if renewEvery == 0 {
		renewEvery = leaseTTL / 3
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	c := &Client{
		ep:       transport.NewEndpoint(n, id),
		replicas: replicas,
		timeout:  100 * time.Millisecond,
		renewTO:  renewEvery,
		rng:      rand.New(rand.NewSource(int64(h.Sum64()))),
		stopCh:   make(chan struct{}),
	}
	c.wg.Add(1)
	t := c.ep.Clock().NewTicker(renewEvery)
	go c.renewLoop(t)
	return c
}

// ID returns the client's node ID.
func (c *Client) ID() netsim.NodeID { return c.ep.ID() }

// Close stops renewals and detaches the client.
func (c *Client) Close() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stopCh)
	c.wg.Wait()
	c.ep.Close()
}

// renewPolicy bounds one renewal per replica per beat: one quick
// in-beat retry with jittered backoff, then give up until the next
// beat. Renewals are idempotent, so every failure class is worth the
// retry.
var renewPolicy = resilience.Policy{
	Base:           time.Millisecond,
	Cap:            4 * time.Millisecond,
	MaxAttempts:    2,
	RetryAmbiguous: true,
}

// renewLoop keeps the client's leases alive. Renewals are
// acknowledged calls (not fire-and-forget notifies): a renewal lost on
// a lossy link gets one in-beat retry instead of waiting a full
// period, which is the margin that keeps a lease alive when the TTL
// budget is already eaten by skew or scheduling pauses.
func (c *Client) renewLoop(t clock.Ticker) {
	defer c.wg.Done()
	defer t.Stop()
	clock.TickLoop(c.ep.Clock(), t, c.stopCh, func() {
		for _, rep := range c.replicas {
			rep := rep
			resilience.Do(c.ep.Clock(), c.rng, renewPolicy, nil, func(int) error {
				_, err := c.ep.Call(rep, mRenew, renewMsg{Client: c.ep.ID()}, c.renewTO)
				return err
			})
		}
	})
}

// do routes an operation to the coordinator reachable from this
// client, following redirects.
// MaybeExecuted reports whether the failed operation may still have
// taken effect: an attempt failed at the transport level (request
// possibly executed, reply lost), or the coordinator answered
// Unavailable after mutating its local state. A lease-respecting
// client must treat such failures as doubt about everything it holds:
// if its requests are not reliably answered, neither are its lease
// renewals.
func MaybeExecuted(err error) bool {
	return transport.MaybeExecuted(err) || IsUnavailable(err)
}

func (c *Client) do(req opReq) (opResp, error) {
	req.Client = c.ep.ID()
	tried := make(map[netsim.NodeID]bool)
	maybe := false
	wrap := func(err error) error {
		if maybe {
			return transport.MarkMaybeExecuted(err)
		}
		return err
	}
	var lastErr error = errors.New("locksvc: no replicas")
	queue := append([]netsim.NodeID(nil), c.replicas...)
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if tried[node] {
			continue
		}
		tried[node] = true
		resp, err := c.ep.Call(node, mOp, req, c.timeout)
		if err == nil {
			r, _ := resp.(opResp)
			return r, nil
		}
		lastErr = err
		if hint, ok := redirectHint(err); ok {
			if !tried[hint] {
				queue = append([]netsim.NodeID{hint}, queue...)
			}
			continue
		}
		if transport.IsRemote(err) {
			// Definitive application error from a coordinator.
			return opResp{}, wrap(err)
		}
		// Transport failure: the coordinator may have executed the
		// request with only the reply lost.
		maybe = true
	}
	return opResp{}, wrap(lastErr)
}

func redirectHint(err error) (netsim.NodeID, bool) {
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		return "", false
	}
	const mark = "not coordinator; try "
	if strings.HasPrefix(re.Msg, mark) {
		return netsim.NodeID(re.Msg[len(mark):]), true
	}
	return "", false
}

// Lock acquires the named exclusive lock.
func (c *Client) Lock(name string) error {
	_, err := c.do(opReq{Kind: opLockAcquire, Name: name})
	return err
}

// Unlock releases the named lock.
func (c *Client) Unlock(name string) error {
	_, err := c.do(opReq{Kind: opLockRelease, Name: name})
	return err
}

// SemCreate creates a semaphore with the given permit capacity
// (idempotent).
func (c *Client) SemCreate(name string, permits int64) error {
	_, err := c.do(opReq{Kind: opSemCreate, Name: name, Num: permits})
	return err
}

// SemAcquire takes n permits.
func (c *Client) SemAcquire(name string, n int64) error {
	_, err := c.do(opReq{Kind: opSemAcquire, Name: name, Num: n})
	return err
}

// SemRelease returns n permits.
func (c *Client) SemRelease(name string, n int64) error {
	_, err := c.do(opReq{Kind: opSemRelease, Name: name, Num: n})
	return err
}

// IncrementAndGet adds delta to the named atomic long and returns the
// new value.
func (c *Client) IncrementAndGet(name string, delta int64) (int64, error) {
	resp, err := c.do(opReq{Kind: opIncr, Name: name, Num: delta})
	return resp.Num, err
}

// CompareAndSet swaps the named atomic reference from old to new.
func (c *Client) CompareAndSet(name, old, new string) error {
	_, err := c.do(opReq{Kind: opCAS, Name: name, Old: old, Val: new})
	return err
}

// CachePut stores key=val in the replicated cache.
func (c *Client) CachePut(key, val string) error {
	_, err := c.do(opReq{Kind: opCachePut, Name: key, Val: val})
	return err
}

// CacheGet reads key from the replicated cache.
func (c *Client) CacheGet(key string) (string, bool, error) {
	resp, err := c.do(opReq{Kind: opCacheGet, Name: key})
	return resp.Val, resp.Found, err
}

// QueuePush appends val to the named distributed queue.
func (c *Client) QueuePush(name, val string) error {
	_, err := c.do(opReq{Kind: opQueuePush, Name: name, Val: val})
	return err
}

// QueuePop removes and returns the queue head.
func (c *Client) QueuePop(name string) (string, error) {
	resp, err := c.do(opReq{Kind: opQueuePop, Name: name})
	return resp.Val, err
}

// IsLockHeld reports whether err is a lock-contention failure.
func IsLockHeld(err error) bool { return remoteIs(err, ErrLockHeld) }

// IsNoPermits reports whether err is a semaphore-exhausted failure.
func IsNoPermits(err error) bool { return remoteIs(err, ErrNoPermits) }

// IsCASFailed reports whether err is a failed compare-and-set.
func IsCASFailed(err error) bool { return remoteIs(err, ErrCASFailed) }

// IsUnavailable reports whether err is the SyncBackups unavailability.
func IsUnavailable(err error) bool { return remoteIs(err, ErrUnavailable) }

// IsNotHolder reports whether err is a fenced release bouncing off a
// lock or permit the caller no longer holds. A definitive answer: the
// caller's grant is gone, and its belief of holding should be dropped.
func IsNotHolder(err error) bool { return remoteIs(err, ErrNotHolder) }

// IsEmpty reports whether err is an empty-queue pop.
func IsEmpty(err error) bool { return remoteIs(err, ErrEmpty) }

func remoteIs(err error, target error) bool {
	if errors.Is(err, target) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == target.Error()
}
