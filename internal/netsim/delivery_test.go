package netsim

//neat:allow-file realclock -- real-deadline liveness polls on delayed fabric delivery

import (
	"sync"
	"testing"
	"time"
)

// TestDelayedDeliveryPreservesSendOrder: packets delayed by the same
// latency must arrive in send order — the pending heap breaks due-time
// ties by enqueue sequence, exactly as the per-packet timers it
// replaced did.
func TestDelayedDeliveryPreservesSendOrder(t *testing.T) {
	n := New(Options{Latency: 5 * time.Millisecond})
	var mu sync.Mutex
	var got []int
	n.Register("a", func(Packet) {})
	n.Register("b", func(p Packet) {
		mu.Lock()
		got = append(got, p.Payload.(int))
		mu.Unlock()
	})
	const sends = 64
	for i := 0; i < sends; i++ {
		if err := n.Send("a", "b", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		done := len(got) == sends
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("only %d/%d delayed packets delivered", len(got), sends)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery order broken at %d: got payload %d\nfull order: %v", i, v, got)
		}
	}
	if p := n.pendingDelayed(); p != 0 {
		t.Fatalf("pending queue still holds %d packets after full delivery", p)
	}
}

// TestNetsimDeliveryAllocs pins the delayed-send hot path's allocation
// cost: enqueueing onto the pooled pending heap must amortize to zero
// allocations per send — the closure-per-packet and timer-per-packet
// the old path paid are gone.
func TestNetsimDeliveryAllocs(t *testing.T) {
	n := New(Options{Latency: time.Minute})
	n.Register("a", func(Packet) {})
	n.Register("b", func(Packet) {})
	// Warm-up: arm the single shared timer and pre-grow the heap so the
	// measurement sees steady state.
	for i := 0; i < 4096; i++ {
		if err := n.Send("a", "b", nil); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := n.Send("a", "b", nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.5 {
		t.Fatalf("delayed send allocates %.2f objects/op, want amortized zero", avg)
	}
}

// BenchmarkNetsimDelivery measures the delayed-send enqueue path. The
// minute-long latency keeps every packet pending, so the benchmark
// isolates scheduling cost (heap push + single-timer re-arm check)
// from handler execution.
func BenchmarkNetsimDelivery(b *testing.B) {
	n := New(Options{Latency: time.Minute})
	n.Register("a", func(Packet) {})
	n.Register("b", func(Packet) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Send("a", "b", nil); err != nil {
			b.Fatal(err)
		}
	}
}
