package netsim

//neat:allow-file realclock -- real-deadline liveness polls under injected chaos

import (
	"sync"
	"testing"
	"time"

	"neat/internal/clock"
)

func pair(a, b NodeID) [][2]NodeID { return [][2]NodeID{{a, b}} }

// TestChaosLossDeterministic: two fabrics with the same seed and the
// same overlay must drop exactly the same packets of an identical send
// sequence, because loss decisions come from a per-link counter
// stream, not from call interleaving.
func TestChaosLossDeterministic(t *testing.T) {
	run := func() []bool {
		n := New(Options{Seed: 7})
		n.Register("a", func(Packet) {})
		var mu sync.Mutex
		got := make(map[int]bool)
		n.Register("b", func(p Packet) {
			mu.Lock()
			got[p.Payload.(int)] = true
			mu.Unlock()
		})
		n.AddChaos(pair("a", "b"), Chaos{Loss: 0.5})
		const total = 200
		out := make([]bool, total)
		for i := 0; i < total; i++ {
			if err := n.Send("a", "b", i); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		for i := range out {
			out[i] = got[i]
		}
		return out
	}
	a, b := run(), run()
	delivered := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d: delivered=%v in run 1, %v in run 2", i, a[i], b[i])
		}
		if a[i] {
			delivered++
		}
	}
	if delivered < 60 || delivered > 140 {
		t.Fatalf("delivered %d of 200 at loss 0.5, want roughly half", delivered)
	}
}

// TestChaosLossIndependentPerLink: traffic on an unrelated link must
// not perturb another link's decision stream.
func TestChaosLossIndependentPerLink(t *testing.T) {
	run := func(noise int) []bool {
		n := New(Options{Seed: 3})
		for _, id := range []NodeID{"a", "b", "c"} {
			n.Register(id, func(Packet) {})
		}
		var mu sync.Mutex
		got := make(map[int]bool)
		n.Register("b", func(p Packet) {
			mu.Lock()
			got[p.Payload.(int)] = true
			mu.Unlock()
		})
		n.AddChaos([][2]NodeID{{"a", "b"}, {"a", "c"}}, Chaos{Loss: 0.5})
		const total = 100
		out := make([]bool, total)
		for i := 0; i < total; i++ {
			for j := 0; j < noise; j++ {
				_ = n.Send("a", "c", j) // same rule, different link
			}
			_ = n.Send("a", "b", i)
		}
		mu.Lock()
		defer mu.Unlock()
		for i := range out {
			out[i] = got[i]
		}
		return out
	}
	quiet, noisy := run(0), run(3)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("packet %d: cross-link traffic changed the a->b loss decision", i)
		}
	}
}

// TestChaosDupCount: Dup=1 must deliver exactly two copies of every
// packet, and the Duplicated counter must match.
func TestChaosDupCount(t *testing.T) {
	n := New(Options{})
	n.Register("a", func(Packet) {})
	var mu sync.Mutex
	count := make(map[int]int)
	n.Register("b", func(p Packet) {
		mu.Lock()
		count[p.Payload.(int)]++
		mu.Unlock()
	})
	n.AddChaos(pair("a", "b"), Chaos{Dup: 1})
	const total = 50
	for i := 0; i < total; i++ {
		if err := n.Send("a", "b", i); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < total; i++ {
		if count[i] != 2 {
			t.Fatalf("packet %d delivered %d times, want exactly 2", i, count[i])
		}
	}
	if s := n.Stats(); s.Duplicated != total || s.Delivered != 2*total {
		t.Fatalf("stats %+v, want Duplicated=%d Delivered=%d", s, total, 2*total)
	}
}

// TestChaosReorderWindow: with Reorder=1 every packet is deferred by
// less than ReorderWindow of virtual time, and with distinct deferrals
// the arrival order differs from the send order.
func TestChaosReorderWindow(t *testing.T) {
	sim := clock.NewSim()
	defer sim.Stop()
	n := New(Options{Clock: sim, Seed: 11})
	n.Register("a", func(Packet) {})
	var mu sync.Mutex
	var order []int
	maxLatency := time.Duration(0)
	n.Register("b", func(p Packet) {
		mu.Lock()
		if l := sim.Now().Sub(p.SentAt); l > maxLatency {
			maxLatency = l
		}
		order = append(order, p.Payload.(int))
		mu.Unlock()
	})
	const window = 40 * time.Millisecond
	n.AddChaos(pair("a", "b"), Chaos{Reorder: 1, ReorderWindow: window})
	const total = 30
	for i := 0; i < total; i++ {
		if err := n.Send("a", "b", i); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := len(order) == total
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d packets arrived", len(order), total)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if maxLatency >= window {
		t.Fatalf("packet deferred by %v, window is %v", maxLatency, window)
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("30 packets with independent deferrals arrived in send order; reordering had no effect")
	}
}

// TestChaosDelayAddsLatency: a Slow-style overlay must defer delivery
// by at least its Delay of virtual time.
func TestChaosDelayAddsLatency(t *testing.T) {
	sim := clock.NewSim()
	defer sim.Stop()
	n := New(Options{Clock: sim})
	n.Register("a", func(Packet) {})
	var mu sync.Mutex
	var latency time.Duration
	delivered := false
	n.Register("b", func(p Packet) {
		mu.Lock()
		latency = sim.Now().Sub(p.SentAt)
		delivered = true
		mu.Unlock()
	})
	n.AddChaos(pair("a", "b"), Chaos{Delay: 25 * time.Millisecond})
	if err := n.Send("a", "b", nil); err != nil {
		t.Fatalf("send: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		ok := delivered
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("packet never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if latency < 25*time.Millisecond {
		t.Fatalf("delivered after %v of virtual time, want >= 25ms", latency)
	}
}

// TestChaosRemoveRestoresLink: removing an overlay stops its effects;
// overlays on the same link compose until then.
func TestChaosRemoveRestoresLink(t *testing.T) {
	n := New(Options{})
	n.Register("a", func(Packet) {})
	var count atomic32
	n.Register("b", func(Packet) { count.add(1) })
	id := n.AddChaos(pair("a", "b"), Chaos{Loss: 1})
	for i := 0; i < 5; i++ {
		_ = n.Send("a", "b", i)
	}
	if count.load() != 0 {
		t.Fatal("loss=1 overlay let a packet through")
	}
	if !n.RemoveChaos(id) {
		t.Fatal("RemoveChaos did not find the rule")
	}
	if n.RemoveChaos(id) {
		t.Fatal("RemoveChaos removed a rule twice")
	}
	_ = n.Send("a", "b", 99)
	if count.load() != 1 {
		t.Fatal("link still degraded after RemoveChaos")
	}
	if s := n.Stats(); s.DroppedChaos != 5 {
		t.Fatalf("DroppedChaos = %d, want 5", s.DroppedChaos)
	}
}

// TestChaosOnlyMatchingDirection: overlays are directed; the reverse
// link stays clean.
func TestChaosOnlyMatchingDirection(t *testing.T) {
	n := New(Options{})
	var toA, toB atomic32
	n.Register("a", func(Packet) { toA.add(1) })
	n.Register("b", func(Packet) { toB.add(1) })
	n.AddChaos(pair("a", "b"), Chaos{Loss: 1})
	_ = n.Send("a", "b", nil)
	_ = n.Send("b", "a", nil)
	if toB.load() != 0 {
		t.Fatal("a->b should be fully lossy")
	}
	if toA.load() != 1 {
		t.Fatal("b->a should be unaffected")
	}
}

// TestDeliverRechecksFilters is the delayed-packet bugfix: a packet
// sent before a partition was installed must not land through the
// active partition just because it was delayed in flight.
func TestDeliverRechecksFilters(t *testing.T) {
	sim := clock.NewSim()
	defer sim.Stop()
	n := New(Options{Clock: sim, Latency: 10 * time.Millisecond})
	n.Register("a", func(Packet) {})
	var count atomic32
	n.Register("b", func(Packet) { count.add(1) })
	if err := n.Send("a", "b", "pre-partition"); err != nil {
		t.Fatalf("send: %v", err)
	}
	// The packet is in flight; partition the pair before it lands.
	n.SetSwitch(FilterFunc(func(src, dst NodeID) Verdict {
		if src == "a" && dst == "b" {
			return VerdictDrop
		}
		return VerdictAccept
	}))
	deadline := time.Now().Add(5 * time.Second)
	for n.Stats().DroppedLate == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight packet neither delivered nor dropped late")
		}
		time.Sleep(time.Millisecond)
	}
	if count.load() != 0 {
		t.Fatal("delayed packet was delivered through an active partition")
	}
	if s := n.Stats(); s.DroppedLate != 1 {
		t.Fatalf("DroppedLate = %d, want 1", s.DroppedLate)
	}
}

// atomic32 is a tiny helper to keep the tests dependency-free.
type atomic32 struct {
	mu sync.Mutex
	v  int
}

func (a *atomic32) add(d int) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
