package netsim

//neat:allow-file realclock -- real-deadline liveness polls on fabric delivery

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func collector() (Handler, *[]Packet, *sync.Mutex) {
	var mu sync.Mutex
	var got []Packet
	return func(p Packet) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	}, &got, &mu
}

func TestSendDelivers(t *testing.T) {
	n := New(Options{})
	h, got, mu := collector()
	n.Register("a", func(Packet) {})
	n.Register("b", h)
	if err := n.Send("a", "b", "hello"); err != nil {
		t.Fatalf("send: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 || (*got)[0].Payload != "hello" {
		t.Fatalf("got %v, want one hello packet", *got)
	}
}

func TestSendUnknownSource(t *testing.T) {
	n := New(Options{})
	if err := n.Send("ghost", "b", nil); err == nil {
		t.Fatal("expected error for unknown source")
	}
}

func TestSendToUnknownDestinationIsSilent(t *testing.T) {
	n := New(Options{})
	n.Register("a", func(Packet) {})
	if err := n.Send("a", "nowhere", nil); err != nil {
		t.Fatalf("drops must be silent, got %v", err)
	}
	if s := n.Stats(); s.DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d, want 1", s.DroppedDown)
	}
}

func TestCrashSuppressesBothDirections(t *testing.T) {
	n := New(Options{})
	h, got, mu := collector()
	n.Register("a", func(Packet) {})
	n.Register("b", h)
	n.Crash("b")
	if err := n.Send("a", "b", 1); err != nil {
		t.Fatalf("send to crashed host must be silent: %v", err)
	}
	if err := n.Send("b", "a", 1); err == nil {
		t.Fatal("send from crashed host should error locally")
	}
	n.Restart("b")
	if err := n.Send("a", "b", 2); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 || (*got)[0].Payload != 2 {
		t.Fatalf("after restart got %v, want only payload 2", *got)
	}
}

func TestFilterStagesAndStats(t *testing.T) {
	cases := []struct {
		name    string
		install func(n *Network)
		check   func(s Stats) bool
	}{
		{"egress", func(n *Network) {
			n.SetEgress("a", FilterFunc(func(src, dst NodeID) Verdict { return VerdictDrop }))
		}, func(s Stats) bool { return s.DroppedEgress == 1 }},
		{"switch", func(n *Network) {
			n.SetSwitch(FilterFunc(func(src, dst NodeID) Verdict { return VerdictDrop }))
		}, func(s Stats) bool { return s.DroppedSwitch == 1 }},
		{"ingress", func(n *Network) {
			n.SetIngress("b", FilterFunc(func(src, dst NodeID) Verdict { return VerdictDrop }))
		}, func(s Stats) bool { return s.DroppedIngress == 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := New(Options{})
			var count atomic.Int32
			n.Register("a", func(Packet) {})
			n.Register("b", func(Packet) { count.Add(1) })
			tc.install(n)
			if err := n.Send("a", "b", nil); err != nil {
				t.Fatalf("send: %v", err)
			}
			if count.Load() != 0 {
				t.Fatal("packet should have been dropped")
			}
			if !tc.check(n.Stats()) {
				t.Fatalf("stats %+v missing expected drop", n.Stats())
			}
		})
	}
}

func TestReachableReflectsPipeline(t *testing.T) {
	n := New(Options{})
	n.Register("a", func(Packet) {})
	n.Register("b", func(Packet) {})
	if !n.Reachable("a", "b") {
		t.Fatal("a->b should start reachable")
	}
	n.SetSwitch(FilterFunc(func(src, dst NodeID) Verdict {
		if src == "a" && dst == "b" {
			return VerdictDrop
		}
		return VerdictAccept
	}))
	if n.Reachable("a", "b") {
		t.Fatal("a->b should be blocked by switch")
	}
	if !n.Reachable("b", "a") {
		t.Fatal("b->a should remain reachable (simplex)")
	}
	n.Crash("b")
	if n.Reachable("b", "a") {
		t.Fatal("crashed host is not reachable from")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(Options{Latency: 20 * time.Millisecond})
	var deliveredAt atomic.Int64
	n.Register("a", func(Packet) {})
	n.Register("b", func(Packet) { deliveredAt.Store(time.Now().UnixNano()) })
	start := time.Now()
	if err := n.Send("a", "b", nil); err != nil {
		t.Fatalf("send: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for deliveredAt.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("packet never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	if elapsed := time.Unix(0, deliveredAt.Load()).Sub(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~20ms", elapsed)
	}
}

func TestLossRateDropsApproximately(t *testing.T) {
	n := New(Options{LossRate: 0.5, Seed: 42})
	n.Register("a", func(Packet) {})
	n.Register("b", func(Packet) {})
	const total = 2000
	for i := 0; i < total; i++ {
		if err := n.Send("a", "b", i); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	s := n.Stats()
	if s.DroppedRandom < total/3 || s.DroppedRandom > 2*total/3 {
		t.Fatalf("dropped %d of %d, want roughly half", s.DroppedRandom, total)
	}
}

func TestCloseStopsTraffic(t *testing.T) {
	n := New(Options{})
	n.Register("a", func(Packet) {})
	n.Close()
	if err := n.Send("a", "a", nil); err == nil {
		t.Fatal("send after close should fail")
	}
}

func TestHostsSorted(t *testing.T) {
	n := New(Options{})
	for _, id := range []NodeID{"c", "a", "b"} {
		n.Register(id, func(Packet) {})
	}
	got := n.Hosts()
	want := []NodeID{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Hosts() = %v, want %v", got, want)
		}
	}
}

func TestStatsConservation(t *testing.T) {
	// Property: sent == delivered + sum(drops) once the fabric is
	// quiescent, for any mix of blocked pairs.
	f := func(blockAB, blockBA, crashC bool, k uint8) bool {
		n := New(Options{})
		for _, id := range []NodeID{"a", "b", "c"} {
			n.Register(id, func(Packet) {})
		}
		if crashC {
			n.Crash("c")
		}
		n.SetSwitch(FilterFunc(func(src, dst NodeID) Verdict {
			if blockAB && src == "a" && dst == "b" {
				return VerdictDrop
			}
			if blockBA && src == "b" && dst == "a" {
				return VerdictDrop
			}
			return VerdictAccept
		}))
		pairs := [][2]NodeID{{"a", "b"}, {"b", "a"}, {"a", "c"}, {"b", "c"}}
		sends := int(k%31) + 1
		for i := 0; i < sends; i++ {
			p := pairs[i%len(pairs)]
			_ = n.Send(p[0], p[1], i)
		}
		s := n.Stats()
		accounted := s.Delivered + s.DroppedEgress + s.DroppedSwitch +
			s.DroppedIngress + s.DroppedRandom + s.DroppedChaos +
			s.DroppedLate + s.DroppedDown
		return s.Sent+s.Duplicated == accounted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReRegisterReplacesHandler(t *testing.T) {
	n := New(Options{})
	var first, second atomic.Int32
	n.Register("a", func(Packet) {})
	n.Register("b", func(Packet) { first.Add(1) })
	n.Register("b", func(Packet) { second.Add(1) })
	_ = n.Send("a", "b", nil)
	if first.Load() != 0 || second.Load() != 1 {
		t.Fatalf("first=%d second=%d, want 0/1", first.Load(), second.Load())
	}
}

// TestPauseQueuesAndResumeFlushes: a paused host's arriving packets
// queue (links stay healthy — nothing is dropped) and Resume hands
// them to the handler in arrival order.
func TestPauseQueuesAndResumeFlushes(t *testing.T) {
	n := New(Options{})
	h, got, mu := collector()
	n.Register("a", func(Packet) {})
	n.Register("b", h)
	n.Pause("b")
	if !n.Paused("b") {
		t.Fatal("Paused(b) = false after Pause")
	}
	for i := 1; i <= 3; i++ {
		if err := n.Send("a", "b", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	mu.Lock()
	if len(*got) != 0 {
		t.Fatalf("paused host handled %v", *got)
	}
	mu.Unlock()
	n.Resume("b")
	if n.Paused("b") {
		t.Fatal("Paused(b) = true after Resume")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 3 {
		t.Fatalf("flush delivered %d packets, want 3", len(*got))
	}
	for i, p := range *got {
		if p.Payload != i+1 {
			t.Fatalf("flush out of order: %v", *got)
		}
	}
}

// TestPauseFlushRechecksFilters: a partition installed during the
// pause still stops a queued packet at flush time — the queue models
// socket buffers, not a bypass around the network.
func TestPauseFlushRechecksFilters(t *testing.T) {
	n := New(Options{})
	h, got, mu := collector()
	n.Register("a", func(Packet) {})
	n.Register("b", h)
	n.Pause("b")
	if err := n.Send("a", "b", 1); err != nil {
		t.Fatalf("send: %v", err)
	}
	n.SetIngress("b", FilterFunc(func(src, dst NodeID) Verdict { return VerdictDrop }))
	n.Resume("b")
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 0 {
		t.Fatalf("flush bypassed the ingress filter: %v", *got)
	}
	if s := n.Stats(); s.DroppedLate != 1 {
		t.Fatalf("DroppedLate = %d, want the flushed packet counted late-dropped", s.DroppedLate)
	}
}

// TestCrashDiscardsPauseQueue: a dead process's socket buffers die
// with it — crashing a paused host drops its queue, and a restart
// starts clean.
func TestCrashDiscardsPauseQueue(t *testing.T) {
	n := New(Options{})
	h, got, mu := collector()
	n.Register("a", func(Packet) {})
	n.Register("b", h)
	n.Pause("b")
	if err := n.Send("a", "b", 1); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := n.Send("a", "b", 2); err != nil {
		t.Fatalf("send: %v", err)
	}
	n.Crash("b")
	if n.Paused("b") {
		t.Fatal("crash left the host marked paused")
	}
	if s := n.Stats(); s.DroppedDown != 2 {
		t.Fatalf("DroppedDown = %d, want the 2 discarded queued packets", s.DroppedDown)
	}
	n.Restart("b")
	if err := n.Send("a", "b", 3); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 || (*got)[0].Payload != 3 {
		t.Fatalf("after restart got %v, want only payload 3", *got)
	}
}
