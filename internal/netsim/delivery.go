package netsim

import "time"

// Delayed delivery used to allocate one capture-closure and one clock
// timer per packet: n.clk.AfterFunc(d, func() { n.deliver(pkt, true) }).
// At campaign rates (every slow/flaky/reorder overlay delays packets)
// that closure+timer pair dominated the fabric's allocation profile.
//
// The fabric now parks delayed packets in a per-network min-heap of
// value entries ordered by (due, seq) — the backing array doubles as
// the packet pool, reused for the network's lifetime — and keeps a
// single armed timer for the earliest deadline. The timer callback is
// one method value bound at New, so arming never allocates a closure.
//
// Drain granularity depends on the clock. Under the real clock every
// due packet drains per fire (one timer per deadline bucket). Under a
// Sim clock the drain hands over exactly one packet per fire and
// re-arms: the simulated clock's determinism contract serializes
// same-instant work by firing one timer per advance with a settle
// (run-to-quiescence) cycle between, and delivering two packets
// back-to-back from one callback would let the first packet's
// dispatcher run concurrently with the second delivery — an inbox
// ordering race the one-per-fire contract exists to prevent.

// pendingPkt is one delayed packet awaiting delivery.
type pendingPkt struct {
	due time.Time
	seq uint64
	pkt Packet
}

// enqueueDelayed parks pkt in the pending heap and (re)arms the single
// delivery timer when pkt sets a new earliest deadline.
func (n *Network) enqueueDelayed(pkt Packet, d time.Duration) {
	due := n.clk.Now().Add(d)
	n.delayMu.Lock()
	n.delayHeap = append(n.delayHeap, pendingPkt{due: due, seq: n.delaySeq, pkt: pkt})
	n.delaySeq++
	siftUpPending(n.delayHeap, len(n.delayHeap)-1)
	if !n.delayArmed || due.Before(n.delayAt) {
		if n.delayTimer != nil {
			n.delayTimer.Stop()
		}
		n.delayArmed = true
		n.delayAt = due
		n.delayTimer = n.clk.AfterFunc(d, n.drainFn)
	}
	n.delayMu.Unlock()
}

// drainDelayed is the armed timer's callback: pop every due packet
// (one, under a Sim clock) in (due, seq) order, deliver outside the
// lock with the late-filter re-check, then re-arm for the next
// deadline if packets remain.
func (n *Network) drainDelayed() {
	n.delayMu.Lock()
	n.delayArmed = false
	now := n.clk.Now()
	buf := n.delayScratch
	n.delayScratch = nil // in use until deliveries finish
	buf = buf[:0]
	for len(n.delayHeap) > 0 && !n.delayHeap[0].due.After(now) {
		buf = append(buf, popPending(&n.delayHeap))
		if !n.delayBatch {
			break
		}
	}
	n.delayMu.Unlock()

	for i := range buf {
		n.deliver(buf[i].pkt, true)
	}

	n.delayMu.Lock()
	for i := range buf {
		buf[i] = pendingPkt{} // release payload references; the array is pooled
	}
	if n.delayScratch == nil {
		n.delayScratch = buf[:0]
	}
	if !n.delayArmed && len(n.delayHeap) > 0 {
		head := n.delayHeap[0].due
		d := head.Sub(n.clk.Now())
		if d < 0 {
			d = 0
		}
		n.delayArmed = true
		n.delayAt = head
		n.delayTimer = n.clk.AfterFunc(d, n.drainFn)
	}
	n.delayMu.Unlock()
}

// pendingDelayed reports how many packets are parked in the delay
// queue (diagnostics and tests).
func (n *Network) pendingDelayed() int {
	n.delayMu.Lock()
	defer n.delayMu.Unlock()
	return len(n.delayHeap)
}

func pendingLess(a, b pendingPkt) bool {
	if !a.due.Equal(b.due) {
		return a.due.Before(b.due)
	}
	return a.seq < b.seq
}

func siftUpPending(h []pendingPkt, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !pendingLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDownPending(h []pendingPkt, i int) {
	for {
		left := 2*i + 1
		if left >= len(h) {
			return
		}
		least := left
		if right := left + 1; right < len(h) && pendingLess(h[right], h[left]) {
			least = right
		}
		if !pendingLess(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

func popPending(hp *[]pendingPkt) pendingPkt {
	h := *hp
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = pendingPkt{} // release payload reference in the pooled array
	h = h[:last]
	siftDownPending(h, 0)
	*hp = h
	return top
}
