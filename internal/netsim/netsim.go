// Package netsim provides an in-memory network fabric for testing
// distributed systems under network-partitioning faults.
//
// The fabric models a set of hosts connected through a single switch, the
// topology NEAT uses (one test engine, three server nodes, two client
// nodes behind one switch). Every packet traverses a three-stage delivery
// pipeline:
//
//	source host OUTPUT chain -> switch flow table -> destination host INPUT chain
//
// The two NEAT partitioner backends program different stages of this
// pipeline: the OpenFlow-style backend installs drop rules in the switch
// flow table, and the iptables-style backend appends DROP rules to the
// host chains. Either way the fault is invisible to the application code
// running on the hosts, exactly as in a real deployment.
//
// Orthogonal to the drop pipeline, per-link chaos overlays (see
// chaos.go) degrade matching links netem-style — added latency and
// jitter, probabilistic loss, duplication, and reordering — modelling
// the partial and transient network conditions the study finds just as
// damaging as clean splits.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"neat/internal/clock"
)

// NodeID identifies a host on the fabric. IDs play the role of IP
// addresses: partition rules match on pairs of NodeIDs.
type NodeID string

// Hash returns a stable FNV-1a hash of the node ID. Systems use it to
// seed per-node deterministic randomness (election backoff jitter,
// randomized timeouts) so identical deployments behave identically.
func (n NodeID) Hash() uint32 {
	var h uint32 = 2166136261
	for _, c := range []byte(n) {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// Packet is a single message in flight. Payload is opaque to the fabric.
type Packet struct {
	Src     NodeID
	Dst     NodeID
	Payload any
	// SentAt records when the packet entered the fabric.
	SentAt time.Time
}

// Verdict is the outcome of a filtering stage for one packet.
type Verdict int

const (
	// VerdictAccept lets the packet continue through the pipeline.
	VerdictAccept Verdict = iota
	// VerdictDrop silently discards the packet, as a firewall DROP
	// target or a flow-table drop action would.
	VerdictDrop
)

// Filter is one stage of the delivery pipeline.
type Filter interface {
	// Check returns the verdict for a packet moving src->dst.
	Check(src, dst NodeID) Verdict
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(src, dst NodeID) Verdict

// Check implements Filter.
func (f FilterFunc) Check(src, dst NodeID) Verdict { return f(src, dst) }

// Handler receives packets delivered to a host.
type Handler func(pkt Packet)

// Options configures a Network.
type Options struct {
	// Latency is the one-way delivery delay applied to every packet.
	// Zero means synchronous in-order delivery on the sender's
	// goroutine, which keeps unit tests deterministic.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// LossRate drops packets uniformly at random with this
	// probability, independent of any partition rules. It models the
	// background unreliability of UDP-style transports.
	LossRate float64
	// Seed seeds the fabric's private RNG (jitter, loss). Zero selects
	// a fixed default so runs are reproducible.
	Seed int64
	// Clock is the time source for packet timestamps and delayed
	// delivery. Everything attached to the fabric (transport endpoints
	// and the systems built on them) draws its clock from here, so
	// setting a clock.Sim makes the whole deployment run on virtual
	// time. Nil means the real wall clock.
	Clock clock.Clock
}

// Network is the fabric. It is safe for concurrent use.
type Network struct {
	mu       sync.RWMutex
	hosts    map[NodeID]*host
	egress   map[NodeID]Filter // per-host OUTPUT chain
	ingress  map[NodeID]Filter // per-host INPUT chain
	switchFi Filter            // switch flow table
	opts     Options
	clk      clock.Clock
	seed     int64
	rng      *rand.Rand
	rngMu    sync.Mutex
	closed   bool

	// chaos holds the installed link-degradation overlays (see
	// chaos.go) in rule-id order.
	chaosMu  sync.RWMutex
	chaos    []*chaosRule
	chaosSeq uint64

	// views holds the lazily created per-node clock views (skew and
	// pause targets). Only populated when the fabric clock is a Sim.
	viewsMu sync.Mutex
	views   map[NodeID]*clock.NodeView

	// Batched delayed delivery (see delivery.go): a pooled min-heap of
	// pending packets drained by a single armed timer, replacing one
	// closure+timer allocation per delayed packet.
	delayMu      sync.Mutex
	delayHeap    []pendingPkt
	delaySeq     uint64
	delayTimer   clock.Timer
	delayArmed   bool
	delayAt      time.Time
	delayBatch   bool // real clock: drain every due packet per fire
	delayScratch []pendingPkt
	drainFn      func() // drainDelayed bound once; arming allocates no closure

	stats statCounters
}

// Stats is a snapshot of fabric-level packet outcomes. Conservation
// holds on a quiescent fabric: Sent + Duplicated equals Delivered plus
// the sum of every drop counter.
type Stats struct {
	Sent           uint64
	Delivered      uint64
	Duplicated     uint64 // extra copies created by duplication overlays
	DroppedEgress  uint64
	DroppedSwitch  uint64
	DroppedIngress uint64
	DroppedRandom  uint64
	DroppedChaos   uint64 // dropped by a link-loss overlay
	DroppedLate    uint64 // delayed packet hit a filter installed after send
	DroppedDown    uint64 // destination host crashed or unregistered
}

// statCounters is the live form of Stats: lock-free atomics, because
// Send is the fabric's hot path and previously took a stats mutex up
// to three times per packet.
type statCounters struct {
	sent           atomic.Uint64
	delivered      atomic.Uint64
	duplicated     atomic.Uint64
	droppedEgress  atomic.Uint64
	droppedSwitch  atomic.Uint64
	droppedIngress atomic.Uint64
	droppedRandom  atomic.Uint64
	droppedChaos   atomic.Uint64
	droppedLate    atomic.Uint64
	droppedDown    atomic.Uint64
}

type host struct {
	id      NodeID
	handler Handler
	up      bool
	// paused models a frozen (GC-stalled) process: the host is up and
	// its links pass traffic, but the process is not consuming, so
	// arriving packets queue in pauseQ instead of being handled — the
	// kernel's socket buffers filling behind a stalled process. Resume
	// flushes the queue in arrival order; Crash discards it (a dead
	// process's socket buffers die with it).
	paused bool
	pauseQ []Packet
}

// ErrUnknownHost is returned when sending from an unregistered host.
var ErrUnknownHost = errors.New("netsim: unknown host")

// ErrNetworkClosed is returned after Close.
var ErrNetworkClosed = errors.New("netsim: network closed")

// New creates a fabric with the given options.
func New(opts Options) *Network {
	seed := opts.Seed
	if seed == 0 {
		seed = 0x6e656174 // "neat"
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	n := &Network{
		hosts:   make(map[NodeID]*host),
		egress:  make(map[NodeID]Filter),
		ingress: make(map[NodeID]Filter),
		opts:    opts,
		clk:     clk,
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
	}
	// Only the real clock may drain several due packets per timer fire;
	// a Sim clock serializes same-instant work one timer per advance,
	// and the delay queue must honor that contract (see delivery.go).
	_, isReal := clk.(clock.Real)
	n.delayBatch = isReal
	n.drainFn = n.drainDelayed
	return n
}

// Clock returns the fabric's time source. Components attached to the
// fabric must take their timers and sleeps from here so that the whole
// deployment follows one clock.
func (n *Network) Clock() clock.Clock { return n.clk }

// ClockFor returns the clock a specific node should run on: a per-node
// NodeView of the fabric's Sim clock, created on first use, so clock
// skew and process pauses can be injected against that node alone. On a
// real (or otherwise non-Sim) clock it falls back to the shared fabric
// clock — skew faults then have no node-local clock to bend and
// degrade to no-ops.
func (n *Network) ClockFor(id NodeID) clock.Clock {
	v := n.NodeView(id)
	if v == nil {
		return n.clk
	}
	return v
}

// NodeView returns id's per-node clock view, or nil when the fabric is
// not running on a Sim clock.
func (n *Network) NodeView(id NodeID) *clock.NodeView {
	s, ok := n.clk.(*clock.Sim)
	if !ok {
		return nil
	}
	n.viewsMu.Lock()
	defer n.viewsMu.Unlock()
	if n.views == nil {
		n.views = make(map[NodeID]*clock.NodeView)
	}
	v, ok := n.views[id]
	if !ok {
		v = clock.NewNodeView(s)
		n.views[id] = v
	}
	return v
}

// Register attaches a host to the fabric. Registering an existing ID
// replaces its handler and marks the host up (modelling a process
// restart on the same machine).
func (n *Network) Register(id NodeID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[id] = &host{id: id, handler: h, up: true}
}

// Unregister detaches a host; packets to it are dropped.
func (n *Network) Unregister(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.hosts, id)
}

// SetEgress installs the OUTPUT-chain filter for a host. A nil filter
// accepts everything.
func (n *Network) SetEgress(id NodeID, f Filter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.egress[id] = f
}

// SetIngress installs the INPUT-chain filter for a host.
func (n *Network) SetIngress(id NodeID, f Filter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ingress[id] = f
}

// SetSwitch installs the switch flow-table filter.
func (n *Network) SetSwitch(f Filter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.switchFi = f
}

// Crash marks a host down: its handler stops receiving packets but the
// host stays registered, so a later Restart resumes delivery. Packets
// from a crashed host are also suppressed. Packets queued behind a
// pause are discarded — a dead process's socket buffers die with it.
func (n *Network) Crash(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[id]; ok {
		h.up = false
		if dropped := len(h.pauseQ); dropped > 0 {
			n.stats.droppedDown.Add(uint64(dropped))
		}
		h.paused = false
		h.pauseQ = nil
	}
}

// Pause freezes a host's packet consumption: arriving packets queue
// (they are NOT dropped — the links are healthy, the process is just
// not reading) until Resume. Pausing a host does not stop packets it
// sends: in-flight handler work on a freezing process still completes,
// as real threads mid-write do when a VM is suspended.
func (n *Network) Pause(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[id]; ok && h.up {
		h.paused = true
	}
}

// Resume unfreezes a paused host and flushes its queued packets in
// arrival order, re-checking the filter pipeline for each — a partition
// installed during the pause still stops a queued packet. The flush
// runs synchronously on the caller, so resume-order is deterministic.
func (n *Network) Resume(id NodeID) {
	n.mu.Lock()
	h, ok := n.hosts[id]
	if !ok || !h.paused {
		n.mu.Unlock()
		return
	}
	h.paused = false
	q := h.pauseQ
	h.pauseQ = nil
	n.mu.Unlock()
	for _, pkt := range q {
		n.deliver(pkt, true)
	}
}

// Paused reports whether the host is currently pause-frozen.
func (n *Network) Paused(id NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.hosts[id]
	return ok && h.paused
}

// Restart marks a crashed host up again.
func (n *Network) Restart(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[id]; ok {
		h.up = true
	}
}

// IsUp reports whether the host is registered and not crashed.
func (n *Network) IsUp(id NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.hosts[id]
	return ok && h.up
}

// Hosts returns the registered host IDs in sorted order.
func (n *Network) Hosts() []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ids := make([]NodeID, 0, len(n.hosts))
	for id := range n.hosts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Close shuts the fabric; subsequent sends fail.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

// Stats returns a snapshot of the fabric counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:           n.stats.sent.Load(),
		Delivered:      n.stats.delivered.Load(),
		Duplicated:     n.stats.duplicated.Load(),
		DroppedEgress:  n.stats.droppedEgress.Load(),
		DroppedSwitch:  n.stats.droppedSwitch.Load(),
		DroppedIngress: n.stats.droppedIngress.Load(),
		DroppedRandom:  n.stats.droppedRandom.Load(),
		DroppedChaos:   n.stats.droppedChaos.Load(),
		DroppedLate:    n.stats.droppedLate.Load(),
		DroppedDown:    n.stats.droppedDown.Load(),
	}
}

// Reachable reports whether a packet src->dst would currently be
// delivered by the pipeline (ignoring random loss). It is used by
// tests and by partitioner verification, mirroring NEAT's status API.
func (n *Network) Reachable(src, dst NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	sh, ok := n.hosts[src]
	if !ok || !sh.up {
		return false
	}
	dh, ok := n.hosts[dst]
	if !ok || !dh.up {
		return false
	}
	return n.pipelineVerdictLocked(src, dst) == VerdictAccept
}

func (n *Network) pipelineVerdictLocked(src, dst NodeID) Verdict {
	if f := n.egress[src]; f != nil && f.Check(src, dst) == VerdictDrop {
		return VerdictDrop
	}
	if n.switchFi != nil && n.switchFi.Check(src, dst) == VerdictDrop {
		return VerdictDrop
	}
	if f := n.ingress[dst]; f != nil && f.Check(src, dst) == VerdictDrop {
		return VerdictDrop
	}
	return VerdictAccept
}

// Send injects a packet. It returns an error only for local failures
// (unknown source, closed fabric); like a real network, drops along the
// path are silent.
func (n *Network) Send(src, dst NodeID, payload any) error {
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return ErrNetworkClosed
	}
	sh, ok := n.hosts[src]
	if !ok {
		n.mu.RUnlock()
		return fmt.Errorf("%w: %s", ErrUnknownHost, src)
	}
	if !sh.up {
		n.mu.RUnlock()
		return fmt.Errorf("netsim: host %s is down", src)
	}
	pkt := Packet{Src: src, Dst: dst, Payload: payload, SentAt: n.clk.Now()}
	n.stats.sent.Add(1)

	// Egress chain.
	if f := n.egress[src]; f != nil && f.Check(src, dst) == VerdictDrop {
		n.mu.RUnlock()
		n.stats.droppedEgress.Add(1)
		return nil
	}
	// Switch.
	if n.switchFi != nil && n.switchFi.Check(src, dst) == VerdictDrop {
		n.mu.RUnlock()
		n.stats.droppedSwitch.Add(1)
		return nil
	}
	// Ingress chain.
	if f := n.ingress[dst]; f != nil && f.Check(src, dst) == VerdictDrop {
		n.mu.RUnlock()
		n.stats.droppedIngress.Add(1)
		return nil
	}
	n.mu.RUnlock()

	// Link-chaos overlays: only packets that survived the filter
	// pipeline consume per-link decisions.
	eff := n.chaosFor(src, dst)
	if eff.drop {
		n.stats.droppedChaos.Add(1)
		return nil
	}

	// Random loss.
	if n.opts.LossRate > 0 {
		n.rngMu.Lock()
		lost := n.rng.Float64() < n.opts.LossRate
		n.rngMu.Unlock()
		if lost {
			n.stats.droppedRandom.Add(1)
			return nil
		}
	}

	delay := n.opts.Latency
	if n.opts.Jitter > 0 {
		n.rngMu.Lock()
		delay += time.Duration(n.rng.Int63n(int64(n.opts.Jitter)))
		n.rngMu.Unlock()
	}

	n.scheduleDeliver(pkt, delay+eff.delay)
	for _, extra := range eff.dups {
		n.stats.duplicated.Add(1)
		n.scheduleDeliver(pkt, delay+extra)
	}
	return nil
}

// scheduleDeliver hands the packet to the destination now (synchronous
// fast path) or after d on the fabric clock. Only delayed packets
// re-check the filter pipeline at delivery time — the synchronous path
// was checked an instant ago in Send. Delayed packets go through the
// pooled pending heap and its single armed timer (delivery.go) rather
// than a per-packet AfterFunc closure.
func (n *Network) scheduleDeliver(pkt Packet, d time.Duration) {
	if d == 0 {
		n.deliver(pkt, false)
		return
	}
	n.enqueueDelayed(pkt, d)
}

func (n *Network) deliver(pkt Packet, recheck bool) {
	n.mu.RLock()
	// A packet that spent time in flight must face the rules in force
	// when it arrives, not only the ones from when it was sent: a
	// partition installed while the packet was delayed still stops it
	// at the switch or the destination's INPUT chain. (The source's
	// OUTPUT chain is not re-evaluated — the packet left that host
	// long ago.)
	if recheck && n.lateVerdictLocked(pkt.Src, pkt.Dst) == VerdictDrop {
		n.mu.RUnlock()
		n.stats.droppedLate.Add(1)
		return
	}
	dh, ok := n.hosts[pkt.Dst]
	var handler Handler
	paused := false
	if ok && dh.up {
		handler = dh.handler
		paused = dh.paused
	}
	n.mu.RUnlock()
	if handler == nil {
		n.stats.droppedDown.Add(1)
		return
	}
	if paused {
		// The destination process is frozen: queue behind it rather
		// than drop. Upgrade to the write lock and re-check — the host
		// may have resumed (or crashed) in the window.
		n.mu.Lock()
		dh, ok = n.hosts[pkt.Dst]
		if ok && dh.up && dh.paused {
			dh.pauseQ = append(dh.pauseQ, pkt)
			n.mu.Unlock()
			return
		}
		if !ok || !dh.up {
			n.mu.Unlock()
			n.stats.droppedDown.Add(1)
			return
		}
		n.mu.Unlock()
	}
	n.stats.delivered.Add(1)
	handler(pkt)
}

// lateVerdictLocked re-evaluates the switch and destination-ingress
// stages for a packet that was delayed in flight.
func (n *Network) lateVerdictLocked(src, dst NodeID) Verdict {
	if n.switchFi != nil && n.switchFi.Check(src, dst) == VerdictDrop {
		return VerdictDrop
	}
	if f := n.ingress[dst]; f != nil && f.Check(src, dst) == VerdictDrop {
		return VerdictDrop
	}
	return VerdictAccept
}
