package netsim

import (
	"sync"
	"time"
)

// Chaos describes a link-degradation overlay: the netem-style knobs —
// added latency, jitter, loss, duplication, reordering — that the
// study's failure reports repeatedly implicate alongside clean
// partitions (slow links masquerading as dead ones, messages
// duplicated or reordered while a partition flaps).
//
// A zero field disables that effect. Effects are evaluated per packet
// in a fixed order: loss first (a lost packet consumes no further
// decisions), then delay and jitter, then reordering, then
// duplication.
type Chaos struct {
	// Delay is added to the one-way delivery latency of every
	// matching packet.
	Delay time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss drops matching packets with this probability.
	Loss float64
	// Dup delivers one extra copy of a matching packet with this
	// probability. The copy takes its own reorder draw, so duplicated
	// packets may also arrive out of order.
	Dup float64
	// Reorder defers a matching packet by an extra uniformly
	// distributed delay in [0, ReorderWindow) with this probability,
	// letting packets sent later arrive first.
	Reorder float64
	// ReorderWindow bounds the extra delay a reordered (or duplicated)
	// packet receives.
	ReorderWindow time.Duration
	// Seed, when nonzero, seeds this overlay's decision stream.
	// Zero derives a seed from the fabric seed and the rule id, which
	// keeps runs reproducible without any configuration.
	Seed int64
}

// Active reports whether the spec has any observable effect.
func (c Chaos) Active() bool {
	return c.Delay > 0 || c.Jitter > 0 || c.Loss > 0 || c.Dup > 0 || c.Reorder > 0
}

// linkKey identifies one directed link.
type linkKey struct{ src, dst NodeID }

// chaosRule is one installed overlay: a set of directed links plus the
// Chaos spec applied to packets traversing them. Each (rule, link)
// pair owns an independent decision stream — a counter hashed with the
// rule seed and the link identity — so decisions on one link are
// deterministic regardless of traffic interleaving on other links.
type chaosRule struct {
	id   uint64
	spec Chaos
	seed uint64

	mu    sync.Mutex
	pairs map[linkKey]bool
	seq   map[linkKey]uint64
}

// next returns the per-link decision stream for the next packet on the
// link, or false if the rule does not match the link.
func (r *chaosRule) next(k linkKey) (decStream, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.pairs[k] {
		return decStream{}, false
	}
	n := r.seq[k]
	r.seq[k] = n + 1
	base := r.seed ^ (uint64(k.src.Hash())<<32 | uint64(k.dst.Hash()))
	return decStream{x: splitmix64(base + 0x9e3779b97f4a7c15*n)}, true
}

// splitmix64 is the SplitMix64 mixing function: a bijective avalanche
// over uint64, the standard way to turn a counter into an independent
// uniform stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decStream yields a deterministic sequence of uniform draws for one
// packet's chaos decisions.
type decStream struct{ x uint64 }

func (d *decStream) next() uint64 {
	d.x = splitmix64(d.x)
	return d.x
}

// unit returns a uniform float64 in [0, 1).
func (d *decStream) unit() float64 {
	return float64(d.next()>>11) / (1 << 53)
}

// durIn returns a uniform duration in [0, w); zero when w <= 0.
func (d *decStream) durIn(w time.Duration) time.Duration {
	if w <= 0 {
		return 0
	}
	return time.Duration(d.unit() * float64(w))
}

// chaosEffect is the aggregate outcome of every matching overlay for
// one packet.
type chaosEffect struct {
	drop  bool
	delay time.Duration   // extra delay for the original packet
	dups  []time.Duration // extra delay for each duplicate copy
}

// AddChaos installs a link-chaos overlay on the given directed links
// and returns a rule id for RemoveChaos. Overlays compose: a packet
// traversing a link matched by several rules suffers each rule's
// effects in rule-id order (delays add, losses compound). Overlays are
// orthogonal to partitions — a link can be both slow and, later,
// partitioned — and are programmable at runtime like the filter
// stages.
func (n *Network) AddChaos(pairs [][2]NodeID, spec Chaos) uint64 {
	r := &chaosRule{
		spec:  spec,
		pairs: make(map[linkKey]bool, len(pairs)),
		seq:   make(map[linkKey]uint64),
	}
	for _, p := range pairs {
		r.pairs[linkKey{src: p[0], dst: p[1]}] = true
	}
	n.chaosMu.Lock()
	n.chaosSeq++
	r.id = n.chaosSeq
	if spec.Seed != 0 {
		r.seed = splitmix64(uint64(spec.Seed))
	} else {
		r.seed = splitmix64(uint64(n.seed) ^ 0xc5a0c5a0c5a0c5a0 ^ r.id)
	}
	n.chaos = append(n.chaos, r)
	n.chaosMu.Unlock()
	return r.id
}

// RemoveChaos uninstalls the overlay with the given rule id, reporting
// whether it was installed. Packets already in flight keep the delays
// they were assigned at send time.
func (n *Network) RemoveChaos(id uint64) bool {
	n.chaosMu.Lock()
	defer n.chaosMu.Unlock()
	for i, r := range n.chaos {
		if r.id == id {
			n.chaos = append(n.chaos[:i], n.chaos[i+1:]...)
			return true
		}
	}
	return false
}

// ClearChaos removes every installed overlay.
func (n *Network) ClearChaos() {
	n.chaosMu.Lock()
	n.chaos = nil
	n.chaosMu.Unlock()
}

// ActiveChaos returns how many overlays are currently installed.
func (n *Network) ActiveChaos() int {
	n.chaosMu.RLock()
	defer n.chaosMu.RUnlock()
	return len(n.chaos)
}

// chaosFor evaluates every matching overlay for one packet. Only
// packets that survived the filter pipeline consume decisions, so a
// partitioned link's stream does not advance.
func (n *Network) chaosFor(src, dst NodeID) chaosEffect {
	n.chaosMu.RLock()
	rules := n.chaos
	var eff chaosEffect
	k := linkKey{src: src, dst: dst}
	for _, r := range rules {
		d, ok := r.next(k)
		if !ok {
			continue
		}
		spec := r.spec
		if spec.Loss > 0 && d.unit() < spec.Loss {
			eff.drop = true
			eff.dups = nil
			break
		}
		eff.delay += spec.Delay
		if spec.Jitter > 0 {
			eff.delay += d.durIn(spec.Jitter)
		}
		if spec.Reorder > 0 && d.unit() < spec.Reorder {
			eff.delay += d.durIn(spec.ReorderWindow)
		}
		if spec.Dup > 0 && d.unit() < spec.Dup {
			// The copy inherits the delay accumulated so far plus its
			// own reorder draw, so the two copies may split and land
			// out of order.
			eff.dups = append(eff.dups, eff.delay+d.durIn(spec.ReorderWindow))
		}
	}
	n.chaosMu.RUnlock()
	return eff
}
