package fd

//neat:allow-file realclock -- real-deadline liveness polls waiting on detector verdicts

import (
	"sync"
	"testing"
	"time"

	"neat/internal/netsim"
	"neat/internal/transport"
)

type harness struct {
	net  *netsim.Network
	eps  map[netsim.NodeID]*transport.Endpoint
	dets map[netsim.NodeID]*Detector

	mu     sync.Mutex
	events []Event
}

func newHarness(t *testing.T, ids []netsim.NodeID, opts Options) *harness {
	t.Helper()
	h := &harness{
		net:  netsim.New(netsim.Options{}),
		eps:  make(map[netsim.NodeID]*transport.Endpoint),
		dets: make(map[netsim.NodeID]*Detector),
	}
	for _, id := range ids {
		ep := transport.NewEndpoint(h.net, id)
		h.eps[id] = ep
		h.dets[id] = New(ep, ids, opts, func(ev Event) {
			h.mu.Lock()
			h.events = append(h.events, ev)
			h.mu.Unlock()
		})
	}
	for _, d := range h.dets {
		d.Start()
	}
	t.Cleanup(func() {
		for _, d := range h.dets {
			d.Stop()
		}
		for _, ep := range h.eps {
			ep.Close()
		}
	})
	return h
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAllAliveWithoutFaults(t *testing.T) {
	ids := []netsim.NodeID{"a", "b", "c"}
	h := newHarness(t, ids, Options{Interval: 5 * time.Millisecond, MissesToSuspect: 3})
	time.Sleep(60 * time.Millisecond)
	for _, d := range h.dets {
		if n := len(d.SuspectedPeers()); n != 0 {
			t.Fatalf("suspected %d peers on a healthy network", n)
		}
	}
}

func TestPartitionCausesMutualSuspicion(t *testing.T) {
	// The core ambiguity of Finding: both sides of a complete
	// partition declare the other dead while all nodes are healthy.
	ids := []netsim.NodeID{"a", "b", "c"}
	h := newHarness(t, ids, Options{Interval: 5 * time.Millisecond, MissesToSuspect: 3})
	h.net.SetSwitch(netsim.FilterFunc(func(src, dst netsim.NodeID) netsim.Verdict {
		if (src == "a") != (dst == "a") { // isolate a completely
			return netsim.VerdictDrop
		}
		return netsim.VerdictAccept
	}))
	waitFor(t, time.Second, func() bool {
		return h.dets["a"].StateOf("b") == Suspected &&
			h.dets["a"].StateOf("c") == Suspected &&
			h.dets["b"].StateOf("a") == Suspected &&
			h.dets["c"].StateOf("a") == Suspected
	}, "mutual suspicion never established")
	// b and c still see each other.
	if h.dets["b"].StateOf("c") != Alive || h.dets["c"].StateOf("b") != Alive {
		t.Fatal("majority side should remain mutually alive")
	}
}

func TestHealRestoresAlive(t *testing.T) {
	ids := []netsim.NodeID{"a", "b"}
	h := newHarness(t, ids, Options{Interval: 5 * time.Millisecond, MissesToSuspect: 3})
	var blocked sync.Mutex
	blockOn := true
	h.net.SetSwitch(netsim.FilterFunc(func(src, dst netsim.NodeID) netsim.Verdict {
		blocked.Lock()
		defer blocked.Unlock()
		if blockOn {
			return netsim.VerdictDrop
		}
		return netsim.VerdictAccept
	}))
	waitFor(t, time.Second, func() bool {
		return h.dets["a"].StateOf("b") == Suspected
	}, "suspicion never established")
	blocked.Lock()
	blockOn = false
	blocked.Unlock()
	waitFor(t, time.Second, func() bool {
		return h.dets["a"].StateOf("b") == Alive && h.dets["b"].StateOf("a") == Alive
	}, "peers never recovered after heal")
	h.mu.Lock()
	defer h.mu.Unlock()
	sawUp := false
	for _, ev := range h.events {
		if ev.Now == Alive {
			sawUp = true
		}
	}
	if !sawUp {
		t.Fatal("no Alive transition event emitted on heal")
	}
}

func TestSimplexPartitionOneSidedSuspicion(t *testing.T) {
	// a->b flows, b->a is dropped: a never hears b and suspects it,
	// while b keeps hearing a and trusts it — the HDFS-577 asymmetry.
	ids := []netsim.NodeID{"a", "b"}
	h := newHarness(t, ids, Options{Interval: 5 * time.Millisecond, MissesToSuspect: 3})
	h.net.SetSwitch(netsim.FilterFunc(func(src, dst netsim.NodeID) netsim.Verdict {
		if src == "b" && dst == "a" {
			return netsim.VerdictDrop
		}
		return netsim.VerdictAccept
	}))
	waitFor(t, time.Second, func() bool {
		return h.dets["a"].StateOf("b") == Suspected
	}, "a should suspect silent b")
	if h.dets["b"].StateOf("a") != Alive {
		t.Fatal("b should still trust a (heartbeats still arrive)")
	}
}

func TestSuspectTimeoutDerivation(t *testing.T) {
	d := New(transport.NewEndpoint(netsim.New(netsim.Options{}), "x"),
		nil, Options{Interval: 10 * time.Millisecond, MissesToSuspect: 3}, nil)
	if d.SuspectTimeout() != 30*time.Millisecond {
		t.Fatalf("SuspectTimeout = %v, want 30ms", d.SuspectTimeout())
	}
	if d.Interval() != 10*time.Millisecond {
		t.Fatalf("Interval = %v", d.Interval())
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := New(transport.NewEndpoint(netsim.New(netsim.Options{}), "x"),
		nil, Options{}, nil)
	def := DefaultOptions()
	if d.Interval() != def.Interval {
		t.Fatalf("interval default not applied: %v", d.Interval())
	}
	if d.SuspectTimeout() != time.Duration(def.MissesToSuspect)*def.Interval {
		t.Fatalf("suspect timeout default not applied: %v", d.SuspectTimeout())
	}
}

func TestStateOfUnknownPeerIsSuspected(t *testing.T) {
	d := New(transport.NewEndpoint(netsim.New(netsim.Options{}), "x"),
		[]netsim.NodeID{"x"}, Options{}, nil)
	if d.StateOf("stranger") != Suspected {
		t.Fatal("unknown peers must not be reported alive")
	}
}

func TestAlivePeersSorted(t *testing.T) {
	ids := []netsim.NodeID{"c", "a", "b", "self"}
	net := netsim.New(netsim.Options{})
	ep := transport.NewEndpoint(net, "self")
	d := New(ep, ids, Options{}, nil)
	peers := d.AlivePeers()
	want := []netsim.NodeID{"a", "b", "c"}
	if len(peers) != len(want) {
		t.Fatalf("AlivePeers = %v", peers)
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("AlivePeers = %v, want %v", peers, want)
		}
	}
}
