// Package fd implements a heartbeat-based failure detector of the kind
// every studied system uses: each node periodically broadcasts a
// heartbeat, and a peer is suspected after a configurable number of
// missed periods.
//
// The detector deliberately has the property the paper identifies as
// the root of many failures: an unreachable node is indistinguishable
// from a crashed node, so both sides of a partition may declare each
// other dead while both are healthy.
package fd

import (
	"sort"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// heartbeatKind is the RPC method name used for heartbeats.
const heartbeatKind = "fd.heartbeat"

// State is a peer's health as seen by the local detector.
type State int

const (
	// Alive means heartbeats are arriving.
	Alive State = iota
	// Suspected means the peer missed enough heartbeats to be
	// declared failed.
	Suspected
)

// String returns "alive" or "suspected".
func (s State) String() string {
	if s == Suspected {
		return "suspected"
	}
	return "alive"
}

// Event is delivered to the listener on a state transition.
type Event struct {
	Peer netsim.NodeID
	Now  State
	At   time.Time
}

// Listener receives state-transition events. Calls are serialized.
type Listener func(Event)

// Options configures a detector.
type Options struct {
	// Interval is the heartbeat period.
	Interval time.Duration
	// MissesToSuspect is the number of consecutive missed periods
	// after which a peer is suspected (the "three heartbeats" rule in
	// RabbitMQ/Redis/Hazelcast/VoltDB that Table 11's fixed timing
	// constraints reference).
	MissesToSuspect int
}

// DefaultOptions returns the detector configuration used in tests:
// 10 ms heartbeats, suspect after 3 misses.
func DefaultOptions() Options {
	return Options{Interval: 10 * time.Millisecond, MissesToSuspect: 3}
}

type peerState struct {
	lastHeard time.Time
	state     State
}

// Detector tracks the health of a peer set.
type Detector struct {
	ep    *transport.Endpoint
	clk   clock.Clock
	opts  Options
	peers []netsim.NodeID

	mu       sync.Mutex
	states   map[netsim.NodeID]*peerState
	listener Listener
	stopped  bool
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New creates a detector for the given peer set (excluding self) on an
// endpoint. Call Start to begin exchanging heartbeats.
func New(ep *transport.Endpoint, peers []netsim.NodeID, opts Options, l Listener) *Detector {
	if opts.Interval <= 0 {
		opts.Interval = DefaultOptions().Interval
	}
	if opts.MissesToSuspect <= 0 {
		opts.MissesToSuspect = DefaultOptions().MissesToSuspect
	}
	d := &Detector{
		ep:       ep,
		clk:      ep.Clock(),
		opts:     opts,
		states:   make(map[netsim.NodeID]*peerState),
		listener: l,
		stopCh:   make(chan struct{}),
	}
	now := ep.Clock().Now()
	for _, p := range peers {
		if p == ep.ID() {
			continue
		}
		d.peers = append(d.peers, p)
		d.states[p] = &peerState{lastHeard: now, state: Alive}
	}
	ep.Handle(heartbeatKind, d.onHeartbeat)
	return d
}

// Start launches the heartbeat sender and the monitor loop. Tickers
// are created here, on the caller, so their creation order — which is
// also their same-instant firing order under a virtual clock — is the
// deterministic deployment order rather than a goroutine-startup race.
func (d *Detector) Start() {
	d.wg.Add(2)
	sendT := d.clk.NewTicker(d.opts.Interval)
	checkT := d.clk.NewTicker(d.opts.Interval)
	go d.sendLoop(sendT)
	go d.checkLoop(checkT)
}

// Stop halts both loops. The detector cannot be restarted.
func (d *Detector) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	d.mu.Unlock()
	close(d.stopCh)
	d.wg.Wait()
}

// Interval returns the configured heartbeat period.
func (d *Detector) Interval() time.Duration { return d.opts.Interval }

// SuspectTimeout returns the time after which a silent peer is
// suspected.
func (d *Detector) SuspectTimeout() time.Duration {
	return time.Duration(d.opts.MissesToSuspect) * d.opts.Interval
}

func (d *Detector) onHeartbeat(from netsim.NodeID, _ any) (any, error) {
	now := d.clk.Now()
	var ev *Event
	d.mu.Lock()
	ps, ok := d.states[from]
	if ok {
		ps.lastHeard = now
		if ps.state == Suspected {
			ps.state = Alive
			ev = &Event{Peer: from, Now: Alive, At: now}
		}
	}
	l := d.listener
	d.mu.Unlock()
	if ev != nil && l != nil {
		l(*ev)
	}
	return nil, nil
}

func (d *Detector) sendLoop(t clock.Ticker) {
	defer d.wg.Done()
	defer t.Stop()
	clock.TickLoop(d.clk, t, d.stopCh, func() {
		for _, p := range d.peers {
			_ = d.ep.Notify(p, heartbeatKind, nil)
		}
	})
}

func (d *Detector) checkLoop(t clock.Ticker) {
	defer d.wg.Done()
	defer t.Stop()
	clock.TickLoop(d.clk, t, d.stopCh, d.sweep)
}

func (d *Detector) sweep() {
	now := d.clk.Now()
	cutoff := d.SuspectTimeout()
	var events []Event
	d.mu.Lock()
	for id, ps := range d.states {
		if ps.state == Alive && now.Sub(ps.lastHeard) > cutoff {
			ps.state = Suspected
			events = append(events, Event{Peer: id, Now: Suspected, At: now})
		}
	}
	l := d.listener
	d.mu.Unlock()
	if l == nil {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Peer < events[j].Peer })
	for _, ev := range events {
		l(ev)
	}
}

// StateOf returns the current view of a peer.
func (d *Detector) StateOf(id netsim.NodeID) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ps, ok := d.states[id]; ok {
		return ps.state
	}
	return Suspected
}

// AlivePeers returns the peers currently considered alive, sorted.
func (d *Detector) AlivePeers() []netsim.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []netsim.NodeID
	for id, ps := range d.states {
		if ps.state == Alive {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SuspectedPeers returns the peers currently suspected, sorted.
func (d *Detector) SuspectedPeers() []netsim.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []netsim.NodeID
	for id, ps := range d.states {
		if ps.state == Suspected {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
