// Package election models the leader-election criteria used by the
// studied systems and the four flaw families of Table 4:
//
//   - overlapping successive leaders (57.4% of election failures): the
//     deposed leader keeps serving during the window before it learns it
//     lost the majority;
//   - electing bad leaders (20.4%): simple criteria — longest log wins
//     (VoltDB), latest operation timestamp wins (MongoDB), lowest ID
//     wins (Elasticsearch) — can elect a node from the minority side and
//     erase the majority's updates;
//   - voting for two candidates (18.5%): nodes vote for a new leader
//     while still connected to the current one, producing intersecting
//     splits with two simultaneous leaders (Elasticsearch issue #2488);
//   - conflicting election criteria (3.7%): a priority rule and a
//     latest-timestamp rule can each veto the other's candidate, leaving
//     the cluster leaderless (MongoDB SERVER-14885).
//
// The package is pure logic — vote evaluation and candidate comparison —
// so it can be reused by every substrate and tested exhaustively.
package election

import (
	"fmt"

	"neat/internal/netsim"
)

// Mode selects the election criterion.
type Mode int

const (
	// ModeQuorum is majority voting with a log-completeness check,
	// the proven-protocol shape (Raft/Paxos-like). It still exhibits
	// the leader-overlap window.
	ModeQuorum Mode = iota
	// ModeLongestLog elects the reachable node with the longest log,
	// without requiring a majority (VoltDB-style).
	ModeLongestLog
	// ModeLatestTS elects the reachable node with the newest
	// operation timestamp (MongoDB-style).
	ModeLatestTS
	// ModeLowestID elects the reachable node with the smallest ID
	// (Elasticsearch-style) and lets nodes vote while they can still
	// reach the current leader.
	ModeLowestID
	// ModePriority elects by administrator-assigned priority and lets
	// high-priority and latest-timestamp nodes veto other candidates
	// (the conflicting-criteria flaw).
	ModePriority
)

// String names the mode after the archetype system.
func (m Mode) String() string {
	switch m {
	case ModeLongestLog:
		return "longest-log"
	case ModeLatestTS:
		return "latest-ts"
	case ModeLowestID:
		return "lowest-id"
	case ModePriority:
		return "priority"
	default:
		return "quorum"
	}
}

// RequiresMajority reports whether the mode only elects with a
// majority of the full replica set. The flawed criteria elect within
// whatever set of nodes is reachable — that is exactly what lets a
// minority side elect its own leader.
func (m Mode) RequiresMajority() bool { return m == ModeQuorum }

// Flaw is the Table 4 classification.
type Flaw int

const (
	// FlawOverlap is the window with two simultaneous leaders before
	// the deposed one steps down.
	FlawOverlap Flaw = iota
	// FlawBadLeader is electing a leader with an incomplete data set.
	FlawBadLeader
	// FlawDoubleVote is voting for a candidate while connected to a
	// live leader.
	FlawDoubleVote
	// FlawConflictingCriteria is mutually vetoing election rules.
	FlawConflictingCriteria
)

// String returns the Table 4 row name.
func (f Flaw) String() string {
	switch f {
	case FlawBadLeader:
		return "electing bad leaders"
	case FlawDoubleVote:
		return "voting for two candidates"
	case FlawConflictingCriteria:
		return "conflicting election criteria"
	default:
		return "overlapping between successive leaders"
	}
}

// FlawsOf returns the flaw families a mode is vulnerable to. Every
// mode has the overlap window; the flawed criteria add their own.
func FlawsOf(m Mode) []Flaw {
	switch m {
	case ModeLongestLog, ModeLatestTS:
		return []Flaw{FlawOverlap, FlawBadLeader}
	case ModeLowestID:
		return []Flaw{FlawOverlap, FlawBadLeader, FlawDoubleVote}
	case ModePriority:
		return []Flaw{FlawOverlap, FlawConflictingCriteria}
	default:
		return []Flaw{FlawOverlap}
	}
}

// Candidate carries the attributes election criteria examine.
type Candidate struct {
	ID     netsim.NodeID
	Term   uint64
	LogLen int
	// LogTerm is the term of the last log entry, the Raft up-to-date
	// attribute. The flawed criteria ignore it — that is what lets a
	// log padded with uncommitted writes win an election.
	LogTerm  uint64
	LastTS   int64
	Priority int
}

// String renders the candidate for logs.
func (c Candidate) String() string {
	return fmt.Sprintf("%s(term=%d log=%d ts=%d prio=%d)", c.ID, c.Term, c.LogLen, c.LastTS, c.Priority)
}

// Beats reports whether candidate a wins over candidate b under the
// mode's criterion, with the candidate ID as the deterministic
// tie-break (lower wins, matching the systems' use of node IDs).
func Beats(m Mode, a, b Candidate) bool {
	switch m {
	case ModeLongestLog:
		if a.LogLen != b.LogLen {
			return a.LogLen > b.LogLen
		}
	case ModeLatestTS:
		if a.LastTS != b.LastTS {
			return a.LastTS > b.LastTS
		}
	case ModeLowestID:
		return a.ID < b.ID
	case ModePriority:
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
	default: // ModeQuorum: term, then log up-to-dateness
		if a.Term != b.Term {
			return a.Term > b.Term
		}
		if a.LogTerm != b.LogTerm {
			return a.LogTerm > b.LogTerm
		}
		if a.LogLen != b.LogLen {
			return a.LogLen > b.LogLen
		}
	}
	return a.ID < b.ID
}

// Voter is the local state a node consults when asked for a vote.
type Voter struct {
	Self Candidate
	// CurrentTerm is the highest term the voter has seen.
	CurrentTerm uint64
	// VotedFor is the candidate granted a vote in CurrentTerm ("" if
	// none).
	VotedFor netsim.NodeID
	// LeaderAlive reports whether the voter currently receives
	// heartbeats from a leader.
	LeaderAlive bool
}

// GrantVote decides whether the voter grants its vote. The decision
// embeds the mode's flaw: under ModeLowestID the voter ignores both
// the one-vote-per-term rule and the liveness of its current leader,
// which is precisely the double-voting flaw.
func GrantVote(m Mode, v Voter, cand Candidate) bool {
	switch m {
	case ModeLowestID:
		// Flaw: votes for any lower-ID candidate even while its
		// current leader is alive, and regardless of having voted.
		return cand.ID < v.Self.ID || !v.LeaderAlive
	case ModeLongestLog:
		return cand.LogLen >= v.Self.LogLen
	case ModeLatestTS:
		return cand.LastTS >= v.Self.LastTS
	case ModePriority:
		return !Veto(v, cand)
	default: // ModeQuorum
		if cand.Term < v.CurrentTerm {
			return false
		}
		if cand.Term == v.CurrentTerm && v.VotedFor != "" && v.VotedFor != cand.ID {
			return false
		}
		// Raft-style up-to-date check: last log term, then length. A
		// log padded with stale-term entries cannot win however long.
		if cand.LogTerm != v.Self.LogTerm {
			return cand.LogTerm > v.Self.LogTerm
		}
		return cand.LogLen >= v.Self.LogLen
	}
}

// Veto implements the conflicting-criteria flaw: a voter with a higher
// priority than the candidate rejects the proposal, and independently a
// voter holding a newer operation timestamp rejects it too. With one
// node winning each criterion, every proposal is vetoed and the
// cluster stays leaderless (MongoDB SERVER-14885).
func Veto(v Voter, cand Candidate) bool {
	if v.Self.Priority > cand.Priority {
		return true
	}
	if v.Self.LastTS > cand.LastTS {
		return true
	}
	return false
}

// Winner returns the candidate that wins an election among the given
// contenders under the mode, or false if the contender set is empty or
// (ModePriority) every contender is vetoed by another.
func Winner(m Mode, contenders []Candidate) (Candidate, bool) {
	if len(contenders) == 0 {
		return Candidate{}, false
	}
	if m == ModePriority {
		// A contender only wins if no other contender vetoes it.
		for _, c := range contenders {
			vetoed := false
			for _, other := range contenders {
				if other.ID == c.ID {
					continue
				}
				if Veto(Voter{Self: other}, c) {
					vetoed = true
					break
				}
			}
			if !vetoed {
				return c, true
			}
		}
		return Candidate{}, false
	}
	best := contenders[0]
	for _, c := range contenders[1:] {
		if Beats(m, c, best) {
			best = c
		}
	}
	return best, true
}
