package election

import (
	"testing"
	"testing/quick"

	"neat/internal/netsim"
)

func c(id string, term uint64, log int, ts int64, prio int) Candidate {
	return Candidate{ID: netsim.NodeID(id), Term: term, LogLen: log, LastTS: ts, Priority: prio}
}

func TestBeatsLongestLog(t *testing.T) {
	if !Beats(ModeLongestLog, c("b", 0, 5, 0, 0), c("a", 0, 3, 0, 0)) {
		t.Fatal("longer log must win")
	}
	// Tie-break on ID.
	if !Beats(ModeLongestLog, c("a", 0, 5, 0, 0), c("b", 0, 5, 0, 0)) {
		t.Fatal("equal logs: lower ID wins")
	}
}

func TestBeatsLatestTS(t *testing.T) {
	if !Beats(ModeLatestTS, c("b", 0, 0, 90, 0), c("a", 0, 0, 10, 0)) {
		t.Fatal("newer timestamp must win")
	}
}

func TestBeatsLowestID(t *testing.T) {
	if !Beats(ModeLowestID, c("s1", 0, 0, 0, 0), c("s2", 9, 99, 99, 9)) {
		t.Fatal("lowest ID wins regardless of anything else")
	}
}

func TestBeatsQuorumTermFirst(t *testing.T) {
	if !Beats(ModeQuorum, c("b", 3, 1, 0, 0), c("a", 2, 99, 0, 0)) {
		t.Fatal("higher term must dominate log length")
	}
	if !Beats(ModeQuorum, c("b", 2, 5, 0, 0), c("a", 2, 3, 0, 0)) {
		t.Fatal("same term: longer log wins")
	}
}

func TestBeatsPriority(t *testing.T) {
	if !Beats(ModePriority, c("b", 0, 0, 0, 7), c("a", 0, 0, 0, 1)) {
		t.Fatal("higher priority must win")
	}
}

func TestRequiresMajority(t *testing.T) {
	if !ModeQuorum.RequiresMajority() {
		t.Fatal("quorum mode requires majority")
	}
	for _, m := range []Mode{ModeLongestLog, ModeLatestTS, ModeLowestID, ModePriority} {
		if m.RequiresMajority() {
			t.Fatalf("%v must not require majority (that is the flaw)", m)
		}
	}
}

func TestGrantVoteQuorumOnePerTerm(t *testing.T) {
	v := Voter{Self: c("v", 2, 3, 0, 0), CurrentTerm: 2, VotedFor: "x"}
	if GrantVote(ModeQuorum, v, c("y", 2, 5, 0, 0)) {
		t.Fatal("already voted this term, must refuse")
	}
	if !GrantVote(ModeQuorum, v, c("x", 2, 5, 0, 0)) {
		t.Fatal("repeat vote for the same candidate is allowed")
	}
	if !GrantVote(ModeQuorum, v, c("y", 3, 5, 0, 0)) {
		t.Fatal("higher term resets the vote")
	}
}

func TestGrantVoteQuorumLogCheck(t *testing.T) {
	v := Voter{Self: c("v", 1, 10, 0, 0), CurrentTerm: 1}
	if GrantVote(ModeQuorum, v, c("x", 2, 4, 0, 0)) {
		t.Fatal("candidate with shorter log must be refused")
	}
	if GrantVote(ModeQuorum, v, c("x", 0, 99, 0, 0)) {
		t.Fatal("stale term must be refused")
	}
}

func TestGrantVoteLowestIDDoubleVotingFlaw(t *testing.T) {
	// The Elasticsearch #2488 flaw: s3 votes for s2 even though it
	// still hears the current leader s1 — because s2 < s3.
	v := Voter{Self: c("s3", 0, 0, 0, 0), LeaderAlive: true}
	if !GrantVote(ModeLowestID, v, c("s2", 0, 0, 0, 0)) {
		t.Fatal("lowest-ID voter must grant while leader alive (the flaw)")
	}
	// With a higher-ID candidate and live leader it refuses.
	if GrantVote(ModeLowestID, v, c("s9", 0, 0, 0, 0)) {
		t.Fatal("higher-ID candidate refused while leader alive")
	}
	// Without a live leader, any candidate gets the vote.
	v.LeaderAlive = false
	if !GrantVote(ModeLowestID, v, c("s9", 0, 0, 0, 0)) {
		t.Fatal("leaderless voter grants to anyone")
	}
}

func TestVetoConflictingCriteria(t *testing.T) {
	// MongoDB SERVER-14885: priority node vetoes latest-ts candidate,
	// latest-ts node vetoes priority candidate, no leader emerges.
	prio := c("p", 0, 0, 10, 9) // high priority, old data
	ts := c("t", 0, 0, 99, 1)   // latest data, low priority
	if !Veto(Voter{Self: prio}, ts) {
		t.Fatal("priority node must veto low-priority candidate")
	}
	if !Veto(Voter{Self: ts}, prio) {
		t.Fatal("latest-ts node must veto stale candidate")
	}
	if _, ok := Winner(ModePriority, []Candidate{prio, ts}); ok {
		t.Fatal("conflicting criteria must leave the cluster leaderless")
	}
}

func TestWinnerPriorityWithoutConflict(t *testing.T) {
	a := c("a", 0, 0, 50, 9) // highest priority AND latest ts
	b := c("b", 0, 0, 10, 1)
	w, ok := Winner(ModePriority, []Candidate{a, b})
	if !ok || w.ID != "a" {
		t.Fatalf("winner = %v ok=%v, want a", w, ok)
	}
}

func TestWinnerEmpty(t *testing.T) {
	if _, ok := Winner(ModeQuorum, nil); ok {
		t.Fatal("no contenders, no winner")
	}
}

func TestWinnerBadLeaderScenario(t *testing.T) {
	// Finding 4: a minority node with a longer (but uncommitted) log
	// beats the majority's leader under longest-log.
	minority := c("m", 1, 12, 0, 0) // padded with unreplicated writes
	majority := c("j", 2, 10, 0, 0) // has all committed data
	w, _ := Winner(ModeLongestLog, []Candidate{minority, majority})
	if w.ID != "m" {
		t.Fatal("longest-log must (wrongly) pick the minority node")
	}
	w, _ = Winner(ModeQuorum, []Candidate{minority, majority})
	if w.ID != "j" {
		t.Fatal("quorum mode picks by term and avoids the bad leader")
	}
}

func TestFlawsOfTaxonomy(t *testing.T) {
	has := func(fs []Flaw, f Flaw) bool {
		for _, x := range fs {
			if x == f {
				return true
			}
		}
		return false
	}
	for _, m := range []Mode{ModeQuorum, ModeLongestLog, ModeLatestTS, ModeLowestID, ModePriority} {
		if !has(FlawsOf(m), FlawOverlap) {
			t.Fatalf("%v: every mode has the overlap window", m)
		}
	}
	if !has(FlawsOf(ModeLowestID), FlawDoubleVote) {
		t.Fatal("lowest-id carries the double-vote flaw")
	}
	if !has(FlawsOf(ModeLongestLog), FlawBadLeader) {
		t.Fatal("longest-log carries the bad-leader flaw")
	}
	if !has(FlawsOf(ModePriority), FlawConflictingCriteria) {
		t.Fatal("priority carries the conflicting-criteria flaw")
	}
	if has(FlawsOf(ModeQuorum), FlawBadLeader) {
		t.Fatal("quorum mode does not elect bad leaders")
	}
}

func TestStrings(t *testing.T) {
	if ModeLowestID.String() != "lowest-id" || ModeQuorum.String() != "quorum" {
		t.Fatal("mode names")
	}
	if FlawOverlap.String() != "overlapping between successive leaders" {
		t.Fatal("flaw names")
	}
}

func TestBeatsTotalOrderProperty(t *testing.T) {
	// Property: for any two distinct candidates exactly one beats the
	// other (Beats is a strict total order) for every mode.
	modes := []Mode{ModeQuorum, ModeLongestLog, ModeLatestTS, ModeLowestID, ModePriority}
	f := func(t1, t2 uint64, l1, l2 uint8, s1, s2 int16, p1, p2 int8) bool {
		a := Candidate{ID: "a", Term: t1, LogLen: int(l1), LastTS: int64(s1), Priority: int(p1)}
		b := Candidate{ID: "b", Term: t2, LogLen: int(l2), LastTS: int64(s2), Priority: int(p2)}
		for _, m := range modes {
			if Beats(m, a, b) == Beats(m, b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWinnerIsUnbeatenProperty(t *testing.T) {
	// Property: for the comparison-based modes the winner beats every
	// other contender.
	modes := []Mode{ModeQuorum, ModeLongestLog, ModeLatestTS, ModeLowestID}
	f := func(logs []uint8) bool {
		if len(logs) == 0 {
			return true
		}
		var cands []Candidate
		for i, l := range logs {
			cands = append(cands, Candidate{
				ID:     netsim.NodeID(rune('a' + i%26)),
				Term:   uint64(l % 5),
				LogLen: int(l),
				LastTS: int64(l) * 3,
			})
		}
		for _, m := range modes {
			w, ok := Winner(m, cands)
			if !ok {
				return false
			}
			for _, c := range cands {
				if c.ID != w.ID && Beats(m, c, w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
