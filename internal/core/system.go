package core

import "neat/internal/netsim"

// ISystem is the lifecycle interface a system under test implements so
// NEAT can deploy it, mirroring the paper's ISystem (install, start,
// obtain the status of, and shut down the target system).
type ISystem interface {
	// Name identifies the system in traces and reports.
	Name() string
	// Start boots every node of the system.
	Start() error
	// Stop shuts the system down.
	Stop() error
	// Status reports per-node health as seen from outside the system.
	Status() map[netsim.NodeID]NodeStatus
}

// NodeStatus is the externally observable state of one system node.
type NodeStatus struct {
	Up   bool
	Role string // system-specific: "leader", "follower", "master", ...
}
