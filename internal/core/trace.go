package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"neat/internal/clock"
)

// EventKind classifies trace events using the taxonomy of Table 8 (the
// input events involved in failures) plus framework events.
type EventKind int

const (
	// EvPartition is a network-partitioning fault injection.
	EvPartition EventKind = iota
	// EvHeal removes a partition.
	EvHeal
	// EvWrite is a client write request.
	EvWrite
	// EvRead is a client read request.
	EvRead
	// EvDelete is a client delete request.
	EvDelete
	// EvAcquireLock is a lock/semaphore acquisition.
	EvAcquireLock
	// EvReleaseLock is a lock/semaphore release.
	EvReleaseLock
	// EvAdmin is an administrative action (add/remove node, change
	// replication).
	EvAdmin
	// EvReboot is a whole-cluster reboot.
	EvReboot
	// EvCrash is a node crash injected by the engine.
	EvCrash
	// EvRestart restarts a crashed node.
	EvRestart
	// EvSleep is a timing step (waiting out an election period etc.).
	EvSleep
	// EvDeploy records a system deployment.
	EvDeploy
	// EvCheck is a verification step.
	EvCheck
	// EvPause freezes a node's process (GC-stall model): timers and
	// packet consumption stop while its links stay up.
	EvPause
	// EvResume unfreezes a paused node.
	EvResume
	// EvSkew bends one node's clock by an offset and drift rate (or
	// clears the drift when the fault heals).
	EvSkew
	// EvDisk injects (or clears) a disk fault on one node's local store.
	EvDisk
)

var eventNames = map[EventKind]string{
	EvPartition:   "partition",
	EvHeal:        "heal",
	EvWrite:       "write",
	EvRead:        "read",
	EvDelete:      "delete",
	EvAcquireLock: "acquire-lock",
	EvReleaseLock: "release-lock",
	EvAdmin:       "admin",
	EvReboot:      "reboot",
	EvCrash:       "crash",
	EvRestart:     "restart",
	EvSleep:       "sleep",
	EvDeploy:      "deploy",
	EvCheck:       "check",
	EvPause:       "pause",
	EvResume:      "resume",
	EvSkew:        "skew",
	EvDisk:        "disk",
}

// String returns the event-kind name used in reports.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// InputEvent reports whether the kind counts as an input event in the
// study's manifestation-sequence analysis (Tables 7-9): partitions,
// client requests, lock operations, admin actions, and reboots count;
// sleeps, checks, and framework bookkeeping do not.
func (k EventKind) InputEvent() bool {
	switch k {
	case EvPartition, EvWrite, EvRead, EvDelete, EvAcquireLock,
		EvReleaseLock, EvAdmin, EvReboot:
		return true
	}
	return false
}

// Event is one entry in a test's manifestation sequence.
type Event struct {
	Seq    int
	At     time.Time
	Kind   EventKind
	Detail string
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s", e.Seq, e.Kind, e.Detail)
}

// Trace records the globally ordered sequence of events of one test.
// It is what makes the study's Tables 7-9 measurable on live runs.
type Trace struct {
	mu     sync.Mutex
	clk    clock.Clock
	events []Event
}

// NewTrace creates an empty trace that timestamps events from clk, so
// traces of virtual-time runs carry virtual timestamps and replay
// byte-identically.
func NewTrace(clk clock.Clock) *Trace { return &Trace{clk: clk} }

// Record appends an event.
func (t *Trace) Record(kind EventKind, detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{
		Seq:    len(t.events) + 1,
		At:     t.clk.Now(),
		Kind:   kind,
		Detail: detail,
	})
}

// Events returns a copy of the recorded sequence.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// InputEvents returns only the events that count in the study's
// event-count analysis.
func (t *Trace) InputEvents() []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind.InputEvent() {
			out = append(out, e)
		}
	}
	return out
}

// EventCount returns the number of input events (the measure used in
// Table 7, which counts the network-partitioning fault as an event).
func (t *Trace) EventCount() int { return len(t.InputEvents()) }

// PartitionFirst reports whether the first input event is the
// network-partitioning fault (the 84% case of Table 9).
func (t *Trace) PartitionFirst() bool {
	ev := t.InputEvents()
	return len(ev) > 0 && ev[0].Kind == EvPartition
}

// String renders the whole trace, one event per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Events() {
		fmt.Fprintf(&b, "%s\n", e)
	}
	return b.String()
}
