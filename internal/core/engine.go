package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/firewall"
	"neat/internal/netsim"
	"neat/internal/switchfab"
)

// Backend selects which partitioner implementation an Engine uses.
type Backend int

const (
	// SwitchBackend programs the switch flow table (OpenFlow mode).
	SwitchBackend Backend = iota
	// FirewallBackend programs host firewalls (iptables mode).
	FirewallBackend
)

// String returns "openflow" or "iptables".
func (b Backend) String() string {
	if b == FirewallBackend {
		return "iptables"
	}
	return "openflow"
}

// Options configures an Engine.
type Options struct {
	// Backend selects the partitioner implementation.
	Backend Backend
	// Net configures the underlying fabric.
	Net netsim.Options
}

// Engine is NEAT's central test engine. It owns the fabric, deploys
// the system under test, runs client operations in a single global
// order (the engine itself is the serialization point: test code calls
// into clients sequentially from one goroutine), injects and heals
// partitions, and crashes nodes.
type Engine struct {
	net   *netsim.Network
	clk   clock.Clock
	sw    *switchfab.Switch
	fwset *firewall.Set
	part  Partitioner

	mu      sync.Mutex
	nodes   []Node
	systems []ISystem
	trace   *Trace

	// flaps tracks active flapping partitions so HealAll can stop
	// their cycles before healing whatever phase they are in.
	flapMu sync.Mutex
	flaps  map[*Partition]*flapper

	// paused tracks pause-frozen nodes so Shutdown can resume them:
	// stopping a system with its timers suspended and its packets
	// queued would hang teardown.
	pausedMu sync.Mutex
	paused   map[netsim.NodeID]bool
}

// NewEngine builds an engine with a fresh fabric.
func NewEngine(opts Options) *Engine {
	n := netsim.New(opts.Net)
	sw := switchfab.New()
	n.SetSwitch(sw)
	fwset := firewall.NewSet(n)
	e := &Engine{net: n, clk: n.Clock(), sw: sw, fwset: fwset, trace: NewTrace(n.Clock()),
		flaps: make(map[*Partition]*flapper)}
	switch opts.Backend {
	case FirewallBackend:
		e.part = NewFirewallPartitioner(fwset, n)
	default:
		e.part = NewSwitchPartitioner(sw, n)
	}
	return e
}

// Network exposes the fabric so systems can attach endpoints.
func (e *Engine) Network() *netsim.Network { return e.net }

// Clock returns the engine's time source (set through Options.Net.Clock;
// the real wall clock by default). Test and workload code must sleep and
// take deadlines from here so that a virtual-time engine never touches
// the wall clock.
func (e *Engine) Clock() clock.Clock { return e.clk }

// Switch exposes the software switch (for flow-table inspection).
func (e *Engine) Switch() *switchfab.Switch { return e.sw }

// Firewalls exposes the host firewall set.
func (e *Engine) Firewalls() *firewall.Set { return e.fwset }

// Trace returns the recorded manifestation sequence of this test.
func (e *Engine) Trace() *Trace { return e.trace }

// AddNode declares a node with the given role, making it visible to
// Rest() and coverage checks.
func (e *Engine) AddNode(id netsim.NodeID, role Role) Node {
	n := Node{ID: id, Role: role}
	e.mu.Lock()
	e.nodes = append(e.nodes, n)
	e.mu.Unlock()
	// Touch the firewall so iptables-mode rules can be installed even
	// before the node sends its first packet.
	e.fwset.Host(id)
	return n
}

// Servers returns the declared server-role node IDs.
func (e *Engine) Servers() []netsim.NodeID { return e.nodesWithRole(RoleServer) }

// Clients returns the declared client-role node IDs.
func (e *Engine) Clients() []netsim.NodeID { return e.nodesWithRole(RoleClient) }

// AllNodes returns every declared node ID in declaration order.
func (e *Engine) AllNodes() []netsim.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]netsim.NodeID, len(e.nodes))
	for i, n := range e.nodes {
		ids[i] = n.ID
	}
	return ids
}

func (e *Engine) nodesWithRole(r Role) []netsim.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	var ids []netsim.NodeID
	for _, n := range e.nodes {
		if n.Role == r {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Rest returns all declared nodes not in group (Partitioner.rest in
// the paper's Listing 2).
func (e *Engine) Rest(group []netsim.NodeID) []netsim.NodeID {
	return Rest(e.AllNodes(), group)
}

// Deploy registers a system under test and starts it.
func (e *Engine) Deploy(sys ISystem) error {
	if err := sys.Start(); err != nil {
		return fmt.Errorf("core: starting %s: %w", sys.Name(), err)
	}
	e.mu.Lock()
	e.systems = append(e.systems, sys)
	e.mu.Unlock()
	e.trace.Record(EvDeploy, sys.Name())
	return nil
}

// Shutdown stops every deployed system (in reverse deployment order)
// and closes the fabric. Flapping partitions are stopped first: their
// cycles reschedule themselves on the engine clock, and a simulated
// clock that is stopped later would otherwise run each rescheduled
// toggle immediately, forever.
func (e *Engine) Shutdown() {
	e.flapMu.Lock()
	flaps := make([]*Partition, 0, len(e.flaps))
	for p := range e.flaps {
		flaps = append(flaps, p)
	}
	e.flapMu.Unlock()
	sortPartitions(flaps)
	for _, p := range flaps {
		_ = p.heal()
	}
	e.resumeAll()
	e.mu.Lock()
	systems := append([]ISystem(nil), e.systems...)
	e.mu.Unlock()
	for i := len(systems) - 1; i >= 0; i-- {
		_ = systems[i].Stop()
	}
	e.net.Close()
}

// --- Partition API (the paper's Partitioner methods, with tracing) ---

// Complete creates a complete partition between the two groups.
func (e *Engine) Complete(a, b []netsim.NodeID) (*Partition, error) {
	p, err := e.part.Complete(a, b)
	if err == nil {
		e.trace.Record(EvPartition, p.String())
	}
	return p, err
}

// Partial creates a partial partition between the two groups.
func (e *Engine) Partial(a, b []netsim.NodeID) (*Partition, error) {
	p, err := e.part.Partial(a, b)
	if err == nil {
		e.trace.Record(EvPartition, p.String())
	}
	return p, err
}

// Simplex creates a one-way partition src->dst.
func (e *Engine) Simplex(src, dst []netsim.NodeID) (*Partition, error) {
	p, err := e.part.Simplex(src, dst)
	if err == nil {
		e.trace.Record(EvPartition, p.String())
	}
	return p, err
}

// Slow adds delay (plus up to jitter of random extra delay) to every
// link between the two groups, in both directions.
func (e *Engine) Slow(a, b []netsim.NodeID, delay, jitter time.Duration) (*Partition, error) {
	p, err := e.part.Slow(a, b, delay, jitter)
	if err == nil {
		e.trace.Record(EvPartition, p.String())
	}
	return p, err
}

// Lossy drops packets between the two groups with probability rate,
// in both directions.
func (e *Engine) Lossy(a, b []netsim.NodeID, rate float64) (*Partition, error) {
	p, err := e.part.Lossy(a, b, rate)
	if err == nil {
		e.trace.Record(EvPartition, p.String())
	}
	return p, err
}

// Flaky degrades every link between the two groups with the given
// chaos mix (duplication, reordering, loss, delay), in both
// directions.
func (e *Engine) Flaky(a, b []netsim.NodeID, spec netsim.Chaos) (*Partition, error) {
	p, err := e.part.Flaky(a, b, spec)
	if err == nil {
		e.trace.Record(EvPartition, p.String())
	}
	return p, err
}

// flapper drives one flapping partition: a clock-driven cycle that
// alternately injects and heals a partial partition between two
// groups. Toggles run inside clock callbacks, which on a simulated
// clock fire serially on the advancer — installing or removing drop
// rules is short and never blocks on the clock, as required there.
type flapper struct {
	part   Partitioner
	clk    clock.Clock
	a, b   []netsim.NodeID
	period time.Duration

	mu      sync.Mutex
	inner   *Partition // non-nil while in the partitioned phase
	timer   clock.Timer
	stopped bool
}

func (fl *flapper) toggle() {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.stopped {
		return
	}
	if fl.inner != nil {
		_ = fl.part.Heal(fl.inner)
		fl.inner = nil
	} else {
		// Reinstalling cannot fail: the groups were validated when the
		// flap was created and never change.
		fl.inner, _ = fl.part.Partial(fl.a, fl.b)
	}
	fl.timer = fl.clk.AfterFunc(fl.period, fl.toggle)
}

// stop ends the cycle and heals the partitioned phase if it is active.
func (fl *flapper) stop() {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.stopped {
		return
	}
	fl.stopped = true
	if fl.timer != nil {
		fl.timer.Stop()
	}
	if fl.inner != nil {
		_ = fl.part.Heal(fl.inner)
		fl.inner = nil
	}
}

// Flap injects a flapping partition: a partial partition between the
// two groups that is repeatedly healed and reinstalled every period of
// engine time, starting in the partitioned phase. It models the
// transient, recurring partitions the study reports as a major failure
// trigger — each flap cycle re-runs the system's failover and
// recovery paths, and packets crossing a heal window may be delivered,
// duplicated, or reordered by concurrent chaos overlays. Healing the
// returned Partition stops the cycle and removes whatever phase is
// active.
func (e *Engine) Flap(a, b []netsim.NodeID, period time.Duration) (*Partition, error) {
	if period <= 0 {
		return nil, fmt.Errorf("core: flap period must be positive, got %v", period)
	}
	inner, err := e.part.Partial(a, b)
	if err != nil {
		return nil, err
	}
	fl := &flapper{part: e.part, clk: e.clk, period: period,
		a:     append([]netsim.NodeID(nil), a...),
		b:     append([]netsim.NodeID(nil), b...),
		inner: inner,
	}
	p := newPartition(FlapPartition, a, b)
	p.undo = func() {
		fl.stop()
		e.flapMu.Lock()
		delete(e.flaps, p)
		e.flapMu.Unlock()
	}
	e.flapMu.Lock()
	e.flaps[p] = fl
	e.flapMu.Unlock()
	fl.mu.Lock()
	fl.timer = e.clk.AfterFunc(period, fl.toggle)
	fl.mu.Unlock()
	e.trace.Record(EvPartition, p.String())
	return p, nil
}

// Heal removes the fault injected for p.
func (e *Engine) Heal(p *Partition) error {
	err := e.part.Heal(p)
	if err == nil {
		e.trace.Record(EvHeal, p.String())
	}
	return err
}

// HealAll removes every active fault. Flapping partitions are stopped
// first so a mid-cycle timer cannot reinstall a partition the backend
// just removed.
func (e *Engine) HealAll() error {
	e.flapMu.Lock()
	flaps := make([]*Partition, 0, len(e.flaps))
	for p := range e.flaps {
		flaps = append(flaps, p)
	}
	e.flapMu.Unlock()
	sortPartitions(flaps)
	for _, p := range flaps {
		_ = p.heal()
	}
	return e.part.HealAll()
}

// VerifyPartition checks that the fabric actually honours an injected
// (or healed) partition, pair by pair — the sanity check a NEAT test
// performs through the system-status API before trusting its workload
// results.
func (e *Engine) VerifyPartition(p *Partition) error {
	healed := p.Healed()
	if p.Type == FlapPartition && !healed {
		// A live flap alternates between blocked and clear phases on
		// its own clock; there is no static reachability to verify.
		return nil
	}
	for _, a := range p.GroupA {
		for _, b := range p.GroupB {
			abBlocked := !e.net.Reachable(a, b)
			baBlocked := !e.net.Reachable(b, a)
			switch {
			case healed:
				if abBlocked || baBlocked {
					return fmt.Errorf("core: healed partition still blocks %s<->%s", a, b)
				}
			case p.Type == SlowPartition, p.Type == LossyPartition, p.Type == FlakyPartition:
				// Chaos overlays degrade links without installing drop
				// rules; the pipeline must still pass both directions.
				if abBlocked || baBlocked {
					return fmt.Errorf("core: chaos overlay blocks %s<->%s", a, b)
				}
			case p.Type == SimplexPartition:
				// Simplex(src=A, dst=B): A->B flows, B->A is dropped.
				if abBlocked {
					return fmt.Errorf("core: simplex partition blocks the allowed direction %s->%s", a, b)
				}
				if !baBlocked {
					return fmt.Errorf("core: simplex partition lets %s->%s through", b, a)
				}
			default:
				if !abBlocked || !baBlocked {
					return fmt.Errorf("core: partition does not block %s<->%s", a, b)
				}
			}
		}
	}
	return nil
}

// --- Node lifecycle ---

// Crash stops a node abruptly (power-off model: no goodbye messages).
func (e *Engine) Crash(id netsim.NodeID) {
	e.net.Crash(id)
	e.trace.Record(EvCrash, string(id))
}

// Restart brings a crashed node back.
func (e *Engine) Restart(id netsim.NodeID) {
	e.net.Restart(id)
	e.trace.Record(EvRestart, string(id))
}

// CrashGroup crashes a set of nodes at once — the paper's test engine
// "provides an API for crashing any group of nodes", which models the
// correlated failures (rack power loss, bad upgrade wave) the studied
// networks exhibit.
func (e *Engine) CrashGroup(ids []netsim.NodeID) {
	for _, id := range ids {
		e.net.Crash(id)
	}
	e.trace.Record(EvCrash, fmt.Sprintf("group %v", ids))
}

// RestartGroup restarts a crashed group.
func (e *Engine) RestartGroup(ids []netsim.NodeID) {
	for _, id := range ids {
		e.net.Restart(id)
	}
	e.trace.Record(EvRestart, fmt.Sprintf("group %v", ids))
}

// RestartAt schedules a recovery restart of a crashed node after d of
// engine time, returning the timer so the caller can cancel it. Unlike
// Restart it fires mid-round, between whatever operations happen to
// straddle the deadline, exercising the system's recovery path while
// the workload is still running. onRestart, if non-nil, runs after the
// node is back up — inside a clock callback on simulated time, so it
// must be short and must not block on the clock.
func (e *Engine) RestartAt(id netsim.NodeID, d time.Duration, onRestart func()) clock.Timer {
	return e.clk.AfterFunc(d, func() {
		e.net.Restart(id)
		e.trace.Record(EvRestart, string(id)+" (scheduled recovery)")
		if onRestart != nil {
			onRestart()
		}
	})
}

// Pause freezes a node's process — the GC stall / VM suspend model.
// The node's timers stop firing and arriving packets queue behind it
// (links stay up: peers see silence, not resets), while in-flight
// handler work completes. Distinct from Crash: state survives, and on
// Resume the node continues from where it froze, typically with a
// stale view of the cluster.
func (e *Engine) Pause(id netsim.NodeID) {
	e.net.Pause(id)
	if v := e.net.NodeView(id); v != nil {
		v.Pause()
	}
	e.pausedMu.Lock()
	if e.paused == nil {
		e.paused = make(map[netsim.NodeID]bool)
	}
	e.paused[id] = true
	e.pausedMu.Unlock()
	e.trace.Record(EvPause, string(id))
}

// Resume unfreezes a paused node: queued packets flush in arrival
// order, then frozen timers re-arm (deadlines that passed during the
// pause fire immediately — the coalesced catch-up burst after a stall).
func (e *Engine) Resume(id netsim.NodeID) {
	e.net.Resume(id)
	if v := e.net.NodeView(id); v != nil {
		v.Resume()
	}
	e.pausedMu.Lock()
	delete(e.paused, id)
	e.pausedMu.Unlock()
	e.trace.Record(EvResume, string(id))
}

// IsPaused reports whether the node is currently pause-frozen.
func (e *Engine) IsPaused(id netsim.NodeID) bool {
	return e.net.Paused(id)
}

// resumeAll unfreezes every node still paused — teardown safety, so a
// round that errored out mid-pause cannot hang Shutdown on suspended
// timers or leave queued packets unaccounted.
func (e *Engine) resumeAll() {
	e.pausedMu.Lock()
	ids := make([]netsim.NodeID, 0, len(e.paused))
	for id := range e.paused {
		ids = append(ids, id)
	}
	e.pausedMu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e.Resume(id)
	}
}

// Skew bends one node's clock: its view of now jumps by offset and
// then drifts at rate relative to the rest of the cluster, so lease
// expiries and heartbeat deadlines on that node fire early or late
// while every other node keeps true time. No-op on a real clock (there
// is no per-node virtual view to bend).
func (e *Engine) Skew(id netsim.NodeID, offset time.Duration, rate float64) {
	if v := e.net.NodeView(id); v != nil {
		v.SetSkew(offset, rate)
	}
	e.trace.Record(EvSkew, fmt.Sprintf("%s offset=%v rate=%.2f", id, offset, rate))
}

// ClearSkew heals a skew fault: the node's clock returns to true rate.
// The offset it accumulated stays (clocks do not jump backwards); it
// cancels out of any duration computed from two readings of the view.
func (e *Engine) ClearSkew(id netsim.NodeID) {
	if v := e.net.NodeView(id); v != nil {
		v.ClearSkew()
	}
	e.trace.Record(EvSkew, string(id)+" cleared")
}

// RebootCluster crashes and immediately restarts every declared node —
// Table 8's "whole cluster reboot" input event.
func (e *Engine) RebootCluster() {
	ids := e.AllNodes()
	for _, id := range ids {
		e.net.Crash(id)
	}
	for _, id := range ids {
		e.net.Restart(id)
	}
	e.trace.Record(EvReboot, fmt.Sprintf("%d nodes", len(ids)))
}

// --- Timing helpers ---

// Sleep pauses the global order for d, recording it in the trace. The
// study's timing constraints (Finding 10) are expressed with these
// sleeps: e.g. sleeping one leader-election period after a partition.
func (e *Engine) Sleep(d time.Duration) {
	e.trace.Record(EvSleep, d.String())
	e.clk.Sleep(d)
}

// WaitUntil polls cond every millisecond of engine time until it
// returns true or the timeout elapses, and reports whether the
// condition was met. It is the bounded-wait alternative to a raw
// sleep; under a virtual clock each poll interval costs only an
// advance of the simulated clock.
func (e *Engine) WaitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := e.clk.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if e.clk.Now().After(deadline) {
			return false
		}
		e.clk.Sleep(time.Millisecond)
	}
}

// Record appends a client-operation event to the trace; clients call
// this so the manifestation sequence of the test is reconstructable.
func (e *Engine) Record(kind EventKind, format string, args ...any) {
	e.trace.Record(kind, fmt.Sprintf(format, args...))
}
