package core

import (
	"fmt"
	"sync"
	"time"

	"neat/internal/firewall"
	"neat/internal/netsim"
	"neat/internal/switchfab"
)

// Partitioner creates and heals network faults. The two
// implementations mirror the paper's two backends: an OpenFlow-style
// switch controller and an iptables-style host-firewall manipulator.
// Both additionally inject link-level chaos faults (slow, lossy, and
// flaky links) by programming netem-style overlays directly on the
// fabric — the same qdisc either backend would drive in a real
// deployment — so chaos composes with either drop-rule substrate.
type Partitioner interface {
	// Complete creates a complete partition between groupA and groupB:
	// no packet crosses between the groups in either direction. The two
	// groups are expected to jointly cover the cluster.
	Complete(groupA, groupB []netsim.NodeID) (*Partition, error)
	// Partial creates a partition between groupA and groupB without
	// affecting their communication with the rest of the cluster.
	Partial(groupA, groupB []netsim.NodeID) (*Partition, error)
	// Simplex creates a one-way partition: packets flow from groupSrc
	// to groupDst, but not in the other direction.
	Simplex(groupSrc, groupDst []netsim.NodeID) (*Partition, error)
	// Slow adds delay (plus up to jitter of random extra delay) to
	// every link between the groups, in both directions. Nothing is
	// dropped: the groups merely look far away — or, once timeouts
	// expire, dead.
	Slow(groupA, groupB []netsim.NodeID, delay, jitter time.Duration) (*Partition, error)
	// Lossy drops packets between the groups with the given
	// probability, in both directions.
	Lossy(groupA, groupB []netsim.NodeID, rate float64) (*Partition, error)
	// Flaky degrades every link between the groups with an arbitrary
	// chaos mix (duplication, reordering, loss, delay), in both
	// directions.
	Flaky(groupA, groupB []netsim.NodeID, spec netsim.Chaos) (*Partition, error)
	// Heal removes the fault injected for p.
	Heal(p *Partition) error
	// HealAll removes every fault this partitioner has injected.
	HealAll() error
}

func validateGroups(a, b []netsim.NodeID) error {
	if len(a) == 0 || len(b) == 0 {
		return fmt.Errorf("core: partition groups must be non-empty (got %d and %d nodes)", len(a), len(b))
	}
	seen := make(map[netsim.NodeID]bool, len(a))
	for _, id := range a {
		seen[id] = true
	}
	for _, id := range b {
		if seen[id] {
			return fmt.Errorf("core: node %s appears on both sides of the partition", id)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Shared chaos arm
// ---------------------------------------------------------------------

// chaosInjector is the link-chaos arm both backends share: it programs
// per-link overlays on the fabric (the simulated counterpart of a
// netem qdisc on each affected interface) and tracks them so Heal and
// HealAll work uniformly across partitions and chaos faults.
type chaosInjector struct {
	net *netsim.Network

	mu     sync.Mutex
	active map[*Partition]uint64 // partition -> chaos rule id
}

func newChaosInjector(net *netsim.Network) chaosInjector {
	return chaosInjector{net: net, active: make(map[*Partition]uint64)}
}

// crossPairs enumerates both directions of every (a, b) link.
func crossPairs(a, b []netsim.NodeID) [][2]netsim.NodeID {
	pairs := make([][2]netsim.NodeID, 0, 2*len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			pairs = append(pairs, [2]netsim.NodeID{x, y}, [2]netsim.NodeID{y, x})
		}
	}
	return pairs
}

func (ci *chaosInjector) install(t PartitionType, a, b []netsim.NodeID, spec netsim.Chaos) (*Partition, error) {
	if err := validateGroups(a, b); err != nil {
		return nil, err
	}
	id := ci.net.AddChaos(crossPairs(a, b), spec)
	p := newPartition(t, a, b)
	p.undo = func() {
		ci.net.RemoveChaos(id)
		ci.mu.Lock()
		delete(ci.active, p)
		ci.mu.Unlock()
	}
	ci.mu.Lock()
	ci.active[p] = id
	ci.mu.Unlock()
	return p, nil
}

func (ci *chaosInjector) slow(a, b []netsim.NodeID, delay, jitter time.Duration) (*Partition, error) {
	if delay <= 0 && jitter <= 0 {
		return nil, fmt.Errorf("core: slow fault needs a positive delay or jitter")
	}
	return ci.install(SlowPartition, a, b, netsim.Chaos{Delay: delay, Jitter: jitter})
}

func (ci *chaosInjector) lossy(a, b []netsim.NodeID, rate float64) (*Partition, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("core: loss rate %v outside (0, 1]", rate)
	}
	return ci.install(LossyPartition, a, b, netsim.Chaos{Loss: rate})
}

func (ci *chaosInjector) flaky(a, b []netsim.NodeID, spec netsim.Chaos) (*Partition, error) {
	if !spec.Active() {
		return nil, fmt.Errorf("core: flaky fault needs at least one nonzero chaos effect")
	}
	return ci.install(FlakyPartition, a, b, spec)
}

func (ci *chaosInjector) healAll() error {
	ci.mu.Lock()
	parts := make([]*Partition, 0, len(ci.active))
	for p := range ci.active {
		parts = append(parts, p)
	}
	ci.mu.Unlock()
	sortPartitions(parts)
	for _, p := range parts {
		if err := p.heal(); err != nil {
			return err
		}
	}
	return nil
}

func (ci *chaosInjector) count() int {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	return len(ci.active)
}

// ---------------------------------------------------------------------
// OpenFlow-style backend
// ---------------------------------------------------------------------

// SwitchPartitioner injects partitions by installing drop rules in the
// switch flow table at a priority above the learning-switch rule,
// exactly as the paper's Floodlight controller module does.
type SwitchPartitioner struct {
	sw    *switchfab.Switch
	chaos chaosInjector

	mu     sync.Mutex
	active map[*Partition]uint64 // partition -> flow cookie
}

// NewSwitchPartitioner creates the OpenFlow-style backend. The fabric
// is needed for the chaos primitives (Slow, Lossy, Flaky), which
// program link overlays rather than flow-table drop rules.
func NewSwitchPartitioner(sw *switchfab.Switch, net *netsim.Network) *SwitchPartitioner {
	return &SwitchPartitioner{sw: sw, chaos: newChaosInjector(net), active: make(map[*Partition]uint64)}
}

func (sp *SwitchPartitioner) install(t PartitionType, a, b []netsim.NodeID, bidir bool) (*Partition, error) {
	if err := validateGroups(a, b); err != nil {
		return nil, err
	}
	cookie := sp.sw.NextCookie()
	for _, src := range a {
		for _, dst := range b {
			sp.sw.Install(switchfab.PartitionPriority,
				switchfab.Match{Src: src, Dst: dst}, switchfab.DropAction, cookie)
			if bidir {
				sp.sw.Install(switchfab.PartitionPriority,
					switchfab.Match{Src: dst, Dst: src}, switchfab.DropAction, cookie)
			}
		}
	}
	p := newPartition(t, a, b)
	p.undo = func() {
		sp.sw.RemoveCookie(cookie)
		sp.mu.Lock()
		delete(sp.active, p)
		sp.mu.Unlock()
	}
	sp.mu.Lock()
	sp.active[p] = cookie
	sp.mu.Unlock()
	return p, nil
}

// Complete implements Partitioner.
func (sp *SwitchPartitioner) Complete(a, b []netsim.NodeID) (*Partition, error) {
	return sp.install(CompletePartition, a, b, true)
}

// Partial implements Partitioner.
func (sp *SwitchPartitioner) Partial(a, b []netsim.NodeID) (*Partition, error) {
	return sp.install(PartialPartition, a, b, true)
}

// Simplex implements Partitioner. Packets may still flow from src
// group to dst group; the reverse direction is dropped. install(a, b)
// blocks a->b, so the rule set blocks dst->src; the Partition record
// is normalized to GroupA=src, GroupB=dst.
func (sp *SwitchPartitioner) Simplex(src, dst []netsim.NodeID) (*Partition, error) {
	p, err := sp.install(SimplexPartition, dst, src, false)
	if err != nil {
		return nil, err
	}
	p.GroupA, p.GroupB = append([]netsim.NodeID(nil), src...), append([]netsim.NodeID(nil), dst...)
	return p, nil
}

// Slow implements Partitioner.
func (sp *SwitchPartitioner) Slow(a, b []netsim.NodeID, delay, jitter time.Duration) (*Partition, error) {
	return sp.chaos.slow(a, b, delay, jitter)
}

// Lossy implements Partitioner.
func (sp *SwitchPartitioner) Lossy(a, b []netsim.NodeID, rate float64) (*Partition, error) {
	return sp.chaos.lossy(a, b, rate)
}

// Flaky implements Partitioner.
func (sp *SwitchPartitioner) Flaky(a, b []netsim.NodeID, spec netsim.Chaos) (*Partition, error) {
	return sp.chaos.flaky(a, b, spec)
}

// Heal implements Partitioner.
func (sp *SwitchPartitioner) Heal(p *Partition) error { return p.heal() }

// HealAll implements Partitioner.
func (sp *SwitchPartitioner) HealAll() error {
	sp.mu.Lock()
	parts := make([]*Partition, 0, len(sp.active))
	for p := range sp.active {
		parts = append(parts, p)
	}
	sp.mu.Unlock()
	sortPartitions(parts)
	for _, p := range parts {
		if err := p.heal(); err != nil {
			return err
		}
	}
	return sp.chaos.healAll()
}

// ActivePartitions returns how many faults (partitions and chaos
// overlays) are currently injected.
func (sp *SwitchPartitioner) ActivePartitions() int {
	sp.mu.Lock()
	n := len(sp.active)
	sp.mu.Unlock()
	return n + sp.chaos.count()
}

// ---------------------------------------------------------------------
// iptables-style backend
// ---------------------------------------------------------------------

// FirewallPartitioner injects partitions by appending DROP rules to the
// INPUT and OUTPUT chains of every affected host, tagged with a comment
// so Heal removes exactly the rules of one partition. This mirrors the
// paper's backend for deployments without an OpenFlow switch.
type FirewallPartitioner struct {
	set   *firewall.Set
	chaos chaosInjector

	mu     sync.Mutex
	seq    int
	active map[*Partition]string // partition -> rule comment tag
}

// NewFirewallPartitioner creates the iptables-style backend. The
// fabric is needed for the chaos primitives (Slow, Lossy, Flaky),
// which program link overlays rather than firewall DROP rules.
func NewFirewallPartitioner(set *firewall.Set, net *netsim.Network) *FirewallPartitioner {
	return &FirewallPartitioner{set: set, chaos: newChaosInjector(net), active: make(map[*Partition]string)}
}

func (fp *FirewallPartitioner) nextTag() string {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.seq++
	return fmt.Sprintf("neat-partition-%d", fp.seq)
}

func (fp *FirewallPartitioner) install(t PartitionType, a, b []netsim.NodeID, bidir bool) (*Partition, error) {
	if err := validateGroups(a, b); err != nil {
		return nil, err
	}
	tag := fp.nextTag()
	// Block b->a at both ends: a's INPUT drops packets from b, and b's
	// OUTPUT drops packets to a. Installing at both ends is redundant
	// on a healthy host but matches what the real tool does and keeps
	// the fault in place even if one host's firewall is flushed.
	for _, x := range a {
		hx := fp.set.Host(x)
		for _, y := range b {
			hy := fp.set.Host(y)
			hx.AppendInput(firewall.Rule{Src: y, Target: firewall.Drop, Comment: tag})
			hy.AppendOutput(firewall.Rule{Dst: x, Target: firewall.Drop, Comment: tag})
			if bidir {
				hy.AppendInput(firewall.Rule{Src: x, Target: firewall.Drop, Comment: tag})
				hx.AppendOutput(firewall.Rule{Dst: y, Target: firewall.Drop, Comment: tag})
			}
		}
	}
	p := newPartition(t, a, b)
	p.undo = func() {
		fp.set.DeleteByComment(tag)
		fp.mu.Lock()
		delete(fp.active, p)
		fp.mu.Unlock()
	}
	fp.mu.Lock()
	fp.active[p] = tag
	fp.mu.Unlock()
	return p, nil
}

// Complete implements Partitioner.
func (fp *FirewallPartitioner) Complete(a, b []netsim.NodeID) (*Partition, error) {
	return fp.install(CompletePartition, a, b, true)
}

// Partial implements Partitioner.
func (fp *FirewallPartitioner) Partial(a, b []netsim.NodeID) (*Partition, error) {
	return fp.install(PartialPartition, a, b, true)
}

// Simplex implements Partitioner. Packets may flow src->dst; dst->src
// is dropped. Note install(a, b, false) blocks the b->a direction.
func (fp *FirewallPartitioner) Simplex(src, dst []netsim.NodeID) (*Partition, error) {
	return fp.install(SimplexPartition, src, dst, false)
}

// Slow implements Partitioner.
func (fp *FirewallPartitioner) Slow(a, b []netsim.NodeID, delay, jitter time.Duration) (*Partition, error) {
	return fp.chaos.slow(a, b, delay, jitter)
}

// Lossy implements Partitioner.
func (fp *FirewallPartitioner) Lossy(a, b []netsim.NodeID, rate float64) (*Partition, error) {
	return fp.chaos.lossy(a, b, rate)
}

// Flaky implements Partitioner.
func (fp *FirewallPartitioner) Flaky(a, b []netsim.NodeID, spec netsim.Chaos) (*Partition, error) {
	return fp.chaos.flaky(a, b, spec)
}

// Heal implements Partitioner.
func (fp *FirewallPartitioner) Heal(p *Partition) error { return p.heal() }

// HealAll implements Partitioner.
func (fp *FirewallPartitioner) HealAll() error {
	fp.mu.Lock()
	parts := make([]*Partition, 0, len(fp.active))
	for p := range fp.active {
		parts = append(parts, p)
	}
	fp.mu.Unlock()
	sortPartitions(parts)
	for _, p := range parts {
		if err := p.heal(); err != nil {
			return err
		}
	}
	return fp.chaos.healAll()
}

// ActivePartitions returns how many faults (partitions and chaos
// overlays) are currently injected.
func (fp *FirewallPartitioner) ActivePartitions() int {
	fp.mu.Lock()
	n := len(fp.active)
	fp.mu.Unlock()
	return n + fp.chaos.count()
}
