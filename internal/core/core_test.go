package core

import (
	"fmt"
	"testing"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
)

// eachBackend runs a subtest under both partitioner backends, since
// they must be behaviourally identical.
func eachBackend(t *testing.T, fn func(t *testing.T, e *Engine)) {
	t.Helper()
	for _, b := range []Backend{SwitchBackend, FirewallBackend} {
		t.Run(b.String(), func(t *testing.T) {
			e := NewEngine(Options{Backend: b})
			defer e.Shutdown()
			fn(t, e)
		})
	}
}

func registerNodes(e *Engine, ids ...netsim.NodeID) {
	for _, id := range ids {
		e.AddNode(id, RoleServer)
		e.Network().Register(id, func(netsim.Packet) {})
	}
}

func TestCompletePartitionBlocksBothDirections(t *testing.T) {
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "s1", "s2", "s3")
		p, err := e.Complete([]netsim.NodeID{"s1"}, []netsim.NodeID{"s2", "s3"})
		if err != nil {
			t.Fatalf("complete: %v", err)
		}
		n := e.Network()
		for _, pair := range [][2]netsim.NodeID{{"s1", "s2"}, {"s2", "s1"}, {"s1", "s3"}, {"s3", "s1"}} {
			if n.Reachable(pair[0], pair[1]) {
				t.Fatalf("%s->%s should be blocked", pair[0], pair[1])
			}
		}
		if !n.Reachable("s2", "s3") || !n.Reachable("s3", "s2") {
			t.Fatal("majority side should communicate freely")
		}
		if err := e.Heal(p); err != nil {
			t.Fatalf("heal: %v", err)
		}
		if !n.Reachable("s1", "s2") || !n.Reachable("s2", "s1") {
			t.Fatal("connectivity should be restored after heal")
		}
	})
}

func TestPartialPartitionThirdGroupSeesBoth(t *testing.T) {
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "g1", "g2", "g3")
		if _, err := e.Partial([]netsim.NodeID{"g1"}, []netsim.NodeID{"g2"}); err != nil {
			t.Fatalf("partial: %v", err)
		}
		n := e.Network()
		if n.Reachable("g1", "g2") || n.Reachable("g2", "g1") {
			t.Fatal("g1<->g2 should be blocked")
		}
		for _, pair := range [][2]netsim.NodeID{{"g3", "g1"}, {"g1", "g3"}, {"g3", "g2"}, {"g2", "g3"}} {
			if !n.Reachable(pair[0], pair[1]) {
				t.Fatalf("%s->%s should still flow (Figure 1.b)", pair[0], pair[1])
			}
		}
	})
}

func TestSimplexPartitionOneWay(t *testing.T) {
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "p", "f")
		// Traffic flows p->f but not f->p (Figure 1.c).
		if _, err := e.Simplex([]netsim.NodeID{"p"}, []netsim.NodeID{"f"}); err != nil {
			t.Fatalf("simplex: %v", err)
		}
		n := e.Network()
		if !n.Reachable("p", "f") {
			t.Fatal("src->dst should flow in a simplex partition")
		}
		if n.Reachable("f", "p") {
			t.Fatal("dst->src should be dropped")
		}
	})
}

func TestHealTwiceFails(t *testing.T) {
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "a", "b")
		p, err := e.Complete([]netsim.NodeID{"a"}, []netsim.NodeID{"b"})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Heal(p); err != nil {
			t.Fatal(err)
		}
		if err := e.Heal(p); err == nil {
			t.Fatal("second heal must fail")
		}
		if !p.Healed() {
			t.Fatal("partition should report healed")
		}
	})
}

func TestOverlappingGroupsRejected(t *testing.T) {
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "a", "b")
		if _, err := e.Complete([]netsim.NodeID{"a"}, []netsim.NodeID{"a", "b"}); err == nil {
			t.Fatal("node on both sides must be rejected")
		}
		if _, err := e.Complete(nil, []netsim.NodeID{"b"}); err == nil {
			t.Fatal("empty group must be rejected")
		}
	})
}

func TestMultiplePartitionsHealIndependently(t *testing.T) {
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "a", "b", "c")
		p1, err := e.Partial([]netsim.NodeID{"a"}, []netsim.NodeID{"b"})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := e.Partial([]netsim.NodeID{"b"}, []netsim.NodeID{"c"})
		if err != nil {
			t.Fatal(err)
		}
		n := e.Network()
		if err := e.Heal(p1); err != nil {
			t.Fatal(err)
		}
		if !n.Reachable("a", "b") {
			t.Fatal("p1 healed, a<->b should flow")
		}
		if n.Reachable("b", "c") {
			t.Fatal("p2 must survive p1's heal")
		}
		if err := e.Heal(p2); err != nil {
			t.Fatal(err)
		}
		if !n.Reachable("b", "c") {
			t.Fatal("all healed")
		}
	})
}

func TestHealAll(t *testing.T) {
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "a", "b", "c")
		if _, err := e.Partial([]netsim.NodeID{"a"}, []netsim.NodeID{"b"}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Partial([]netsim.NodeID{"a"}, []netsim.NodeID{"c"}); err != nil {
			t.Fatal(err)
		}
		if err := e.HealAll(); err != nil {
			t.Fatal(err)
		}
		n := e.Network()
		if !n.Reachable("a", "b") || !n.Reachable("a", "c") {
			t.Fatal("HealAll should restore everything")
		}
	})
}

func TestRestHelper(t *testing.T) {
	cluster := []netsim.NodeID{"s1", "s2", "s3", "c1"}
	rest := Rest(cluster, []netsim.NodeID{"s1", "c1"})
	if len(rest) != 2 || rest[0] != "s2" || rest[1] != "s3" {
		t.Fatalf("Rest = %v, want [s2 s3]", rest)
	}
}

func TestEngineRest(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	e.AddNode("s1", RoleServer)
	e.AddNode("s2", RoleServer)
	e.AddNode("c1", RoleClient)
	rest := e.Rest([]netsim.NodeID{"s1"})
	if len(rest) != 2 {
		t.Fatalf("Rest = %v", rest)
	}
}

func TestEngineRoleQueries(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	e.AddNode("s1", RoleServer)
	e.AddNode("c1", RoleClient)
	e.AddNode("zk", RoleService)
	if s := e.Servers(); len(s) != 1 || s[0] != "s1" {
		t.Fatalf("Servers = %v", s)
	}
	if c := e.Clients(); len(c) != 1 || c[0] != "c1" {
		t.Fatalf("Clients = %v", c)
	}
	if all := e.AllNodes(); len(all) != 3 {
		t.Fatalf("AllNodes = %v", all)
	}
}

func TestCrashAndRestartThroughEngine(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	registerNodes(e, "a", "b")
	e.Crash("b")
	if e.Network().Reachable("a", "b") {
		t.Fatal("crashed node reachable")
	}
	e.Restart("b")
	if !e.Network().Reachable("a", "b") {
		t.Fatal("restarted node unreachable")
	}
}

type fakeSystem struct {
	name             string
	started, stopped bool
	failStart        bool
}

func (f *fakeSystem) Name() string { return f.name }
func (f *fakeSystem) Start() error {
	if f.failStart {
		return fmt.Errorf("nope")
	}
	f.started = true
	return nil
}
func (f *fakeSystem) Stop() error { f.stopped = true; return nil }
func (f *fakeSystem) Status() map[netsim.NodeID]NodeStatus {
	return map[netsim.NodeID]NodeStatus{}
}

func TestDeployAndShutdown(t *testing.T) {
	e := NewEngine(Options{})
	sys := &fakeSystem{name: "toy"}
	if err := e.Deploy(sys); err != nil {
		t.Fatal(err)
	}
	if !sys.started {
		t.Fatal("system not started")
	}
	e.Shutdown()
	if !sys.stopped {
		t.Fatal("system not stopped on shutdown")
	}
}

func TestDeployFailure(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	if err := e.Deploy(&fakeSystem{name: "bad", failStart: true}); err == nil {
		t.Fatal("deploy should propagate start failure")
	}
}

func TestTraceRecordsManifestationSequence(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	registerNodes(e, "a", "b")
	p, _ := e.Complete([]netsim.NodeID{"a"}, []netsim.NodeID{"b"})
	e.Record(EvWrite, "write k=%d", 1)
	e.Record(EvRead, "read k")
	_ = e.Heal(p)
	tr := e.Trace()
	if got := tr.EventCount(); got != 3 { // partition + write + read
		t.Fatalf("EventCount = %d, want 3 (heal is not an input event)", got)
	}
	if !tr.PartitionFirst() {
		t.Fatal("trace should start with the partition event")
	}
	evs := tr.Events()
	if evs[0].Kind != EvPartition || evs[len(evs)-1].Kind != EvHeal {
		t.Fatalf("unexpected event order: %v", evs)
	}
}

func TestWaitUntil(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	flips := 0
	ok := e.WaitUntil(time.Second, func() bool {
		flips++
		return flips >= 3
	})
	if !ok {
		t.Fatal("condition should have been met")
	}
	if e.WaitUntil(10*time.Millisecond, func() bool { return false }) {
		t.Fatal("unmeetable condition should time out")
	}
}

func TestEventKindStrings(t *testing.T) {
	if EvPartition.String() != "partition" || EvAcquireLock.String() != "acquire-lock" {
		t.Fatal("event names wrong")
	}
	if EvSleep.InputEvent() || EvCheck.InputEvent() {
		t.Fatal("sleep/check must not count as input events")
	}
	if !EvAdmin.InputEvent() || !EvReboot.InputEvent() {
		t.Fatal("admin/reboot must count as input events")
	}
}

func TestPartitionTypeStrings(t *testing.T) {
	for pt, want := range map[PartitionType]string{
		CompletePartition: "complete",
		PartialPartition:  "partial",
		SimplexPartition:  "simplex",
	} {
		if pt.String() != want {
			t.Fatalf("%v.String() = %q", int(pt), pt.String())
		}
	}
}

func TestRoleStrings(t *testing.T) {
	for r, want := range map[Role]string{
		RoleServer: "server", RoleClient: "client", RoleService: "service",
	} {
		if r.String() != want {
			t.Fatalf("role string %q != %q", r.String(), want)
		}
	}
}

func TestCrashGroupAndRestartGroup(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	registerNodes(e, "a", "b", "c")
	e.CrashGroup([]netsim.NodeID{"a", "b"})
	if e.Network().Reachable("c", "a") || e.Network().Reachable("c", "b") {
		t.Fatal("crashed group still reachable")
	}
	if !e.Network().IsUp("c") {
		t.Fatal("uninvolved node went down")
	}
	e.RestartGroup([]netsim.NodeID{"a", "b"})
	if !e.Network().Reachable("c", "a") || !e.Network().Reachable("c", "b") {
		t.Fatal("restarted group unreachable")
	}
}

func TestRebootClusterRecordsEvent(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	registerNodes(e, "a", "b")
	e.RebootCluster()
	if !e.Network().IsUp("a") || !e.Network().IsUp("b") {
		t.Fatal("nodes should be up after reboot")
	}
	evs := e.Trace().Events()
	if evs[len(evs)-1].Kind != EvReboot {
		t.Fatalf("last event = %v, want reboot", evs[len(evs)-1])
	}
}

func TestPartialPartitionMultiNodeGroups(t *testing.T) {
	// Figure 1.b with real groups: Group1={a,b}, Group2={c,d},
	// Group3={e} sees both.
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "a", "b", "c", "d", "e")
		if _, err := e.Partial(
			[]netsim.NodeID{"a", "b"}, []netsim.NodeID{"c", "d"}); err != nil {
			t.Fatal(err)
		}
		n := e.Network()
		for _, src := range []netsim.NodeID{"a", "b"} {
			for _, dst := range []netsim.NodeID{"c", "d"} {
				if n.Reachable(src, dst) || n.Reachable(dst, src) {
					t.Fatalf("%s<->%s should be cut", src, dst)
				}
			}
		}
		// Intra-group and Group3 connectivity intact.
		if !n.Reachable("a", "b") || !n.Reachable("c", "d") {
			t.Fatal("intra-group traffic broken")
		}
		for _, peer := range []netsim.NodeID{"a", "b", "c", "d"} {
			if !n.Reachable("e", peer) || !n.Reachable(peer, "e") {
				t.Fatalf("group3 lost contact with %s", peer)
			}
		}
	})
}

func TestVerifyPartition(t *testing.T) {
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "a", "b", "c")
		p, err := e.Complete([]netsim.NodeID{"a"}, []netsim.NodeID{"b", "c"})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.VerifyPartition(p); err != nil {
			t.Fatalf("active complete partition failed verification: %v", err)
		}
		if err := e.Heal(p); err != nil {
			t.Fatal(err)
		}
		if err := e.VerifyPartition(p); err != nil {
			t.Fatalf("healed partition failed verification: %v", err)
		}

		sp, err := e.Simplex([]netsim.NodeID{"a"}, []netsim.NodeID{"b"})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.VerifyPartition(sp); err != nil {
			t.Fatalf("simplex verification: %v", err)
		}
	})
}

func TestVerifyPartitionDetectsTampering(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	registerNodes(e, "a", "b")
	p, err := e.Complete([]netsim.NodeID{"a"}, []netsim.NodeID{"b"})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: clear the switch rules behind the partitioner's back.
	e.Switch().RemoveCookie(1)
	if err := e.VerifyPartition(p); err == nil {
		t.Fatal("verification should notice the missing drop rules")
	}
}

// --- Link-chaos primitives (Slow, Lossy, Flaky, Flap) ---

func TestChaosPrimitivesKeepLinksReachable(t *testing.T) {
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "a", "b", "c")
		slow, err := e.Slow([]netsim.NodeID{"a"}, []netsim.NodeID{"b"}, 10*time.Millisecond, 0)
		if err != nil {
			t.Fatalf("slow: %v", err)
		}
		lossy, err := e.Lossy([]netsim.NodeID{"a"}, []netsim.NodeID{"c"}, 0.5)
		if err != nil {
			t.Fatalf("lossy: %v", err)
		}
		flaky, err := e.Flaky([]netsim.NodeID{"b"}, []netsim.NodeID{"c"}, netsim.Chaos{Dup: 0.5, Reorder: 0.5, ReorderWindow: 5 * time.Millisecond})
		if err != nil {
			t.Fatalf("flaky: %v", err)
		}
		for _, p := range []*Partition{slow, lossy, flaky} {
			if err := e.VerifyPartition(p); err != nil {
				t.Fatalf("verify %s: %v", p.Type, err)
			}
		}
		if n := e.Network().ActiveChaos(); n != 3 {
			t.Fatalf("ActiveChaos = %d, want 3", n)
		}
		if err := e.Heal(slow); err != nil {
			t.Fatalf("heal slow: %v", err)
		}
		if err := e.HealAll(); err != nil {
			t.Fatalf("heal all: %v", err)
		}
		if n := e.Network().ActiveChaos(); n != 0 {
			t.Fatalf("ActiveChaos after HealAll = %d, want 0", n)
		}
	})
}

func TestChaosPrimitivesValidateArguments(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	registerNodes(e, "a", "b")
	if _, err := e.Slow([]netsim.NodeID{"a"}, []netsim.NodeID{"b"}, 0, 0); err == nil {
		t.Fatal("zero-delay slow fault should be rejected")
	}
	if _, err := e.Lossy([]netsim.NodeID{"a"}, []netsim.NodeID{"b"}, 1.5); err == nil {
		t.Fatal("loss rate above 1 should be rejected")
	}
	if _, err := e.Lossy([]netsim.NodeID{"a"}, nil, 0.5); err == nil {
		t.Fatal("empty group should be rejected")
	}
	if _, err := e.Flap([]netsim.NodeID{"a"}, []netsim.NodeID{"b"}, 0); err == nil {
		t.Fatal("zero flap period should be rejected")
	}
}

func TestLossyDropsApproximately(t *testing.T) {
	eachBackend(t, func(t *testing.T, e *Engine) {
		registerNodes(e, "a", "b")
		if _, err := e.Lossy([]netsim.NodeID{"a"}, []netsim.NodeID{"b"}, 0.5); err != nil {
			t.Fatal(err)
		}
		n := e.Network()
		before := n.Stats().Delivered
		const total = 400
		for i := 0; i < total; i++ {
			if err := n.Send("a", "b", i); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		delivered := n.Stats().Delivered - before
		if delivered < total/4 || delivered > 3*total/4 {
			t.Fatalf("delivered %d of %d at loss 0.5, want roughly half", delivered, total)
		}
		if err := e.HealAll(); err != nil {
			t.Fatal(err)
		}
		before = n.Stats().Delivered
		for i := 0; i < 10; i++ {
			_ = n.Send("a", "b", i)
		}
		if got := n.Stats().Delivered - before; got != 10 {
			t.Fatalf("after heal delivered %d of 10", got)
		}
	})
}

// TestFlapAlternates drives a flapping partition on a simulated clock:
// it must start partitioned, heal after one period, re-partition after
// the next, and stay healed once the flap itself is healed.
func TestFlapAlternates(t *testing.T) {
	sim := clock.NewSim()
	defer sim.Stop()
	e := NewEngine(Options{Net: netsim.Options{Clock: sim}})
	defer e.Shutdown()
	registerNodes(e, "a", "b", "c")
	const period = 50 * time.Millisecond
	p, err := e.Flap([]netsim.NodeID{"a"}, []netsim.NodeID{"b"}, period)
	if err != nil {
		t.Fatal(err)
	}
	n := e.Network()
	if n.Reachable("a", "b") || n.Reachable("b", "a") {
		t.Fatal("flap must start in the partitioned phase")
	}
	if !n.Reachable("a", "c") {
		t.Fatal("flap must not touch uninvolved links")
	}
	sim.Sleep(period + period/2) // t=75ms: one toggle (heal) behind us
	if !n.Reachable("a", "b") || !n.Reachable("b", "a") {
		t.Fatal("after one period the flap should be in the healed phase")
	}
	sim.Sleep(period) // t=125ms: second toggle (re-partition) behind us
	if n.Reachable("a", "b") {
		t.Fatal("after two periods the flap should be partitioned again")
	}
	if err := e.Heal(p); err != nil {
		t.Fatal(err)
	}
	if !n.Reachable("a", "b") || !n.Reachable("b", "a") {
		t.Fatal("healing the flap must restore connectivity")
	}
	sim.Sleep(4 * period)
	if !n.Reachable("a", "b") {
		t.Fatal("a healed flap must never re-partition")
	}
	if err := e.Heal(p); err == nil {
		t.Fatal("double heal should fail")
	}
}

// TestHealAllStopsFlap: HealAll must stop the cycle, not merely heal
// the current phase and let the timer reinstall it.
func TestHealAllStopsFlap(t *testing.T) {
	sim := clock.NewSim()
	defer sim.Stop()
	e := NewEngine(Options{Net: netsim.Options{Clock: sim}})
	defer e.Shutdown()
	registerNodes(e, "a", "b")
	const period = 20 * time.Millisecond
	if _, err := e.Flap([]netsim.NodeID{"a"}, []netsim.NodeID{"b"}, period); err != nil {
		t.Fatal(err)
	}
	if err := e.HealAll(); err != nil {
		t.Fatal(err)
	}
	n := e.Network()
	for i := 0; i < 4; i++ {
		sim.Sleep(period)
		if !n.Reachable("a", "b") {
			t.Fatalf("flap re-partitioned %v after HealAll", time.Duration(i+1)*period)
		}
	}
}

func TestFlakyRejectsInertSpec(t *testing.T) {
	e := NewEngine(Options{})
	defer e.Shutdown()
	registerNodes(e, "a", "b")
	if _, err := e.Flaky([]netsim.NodeID{"a"}, []netsim.NodeID{"b"}, netsim.Chaos{}); err == nil {
		t.Fatal("a zero-valued chaos spec must be rejected, not installed as a no-op fault")
	}
}
