// Package core implements NEAT, the network-partitioning testing
// framework from "An Analysis of Network-Partitioning Failures in Cloud
// Systems" (OSDI'18).
//
// NEAT has three parts, all provided here:
//
//   - a Partitioner with the paper's exact API — Complete, Partial,
//     Simplex, Heal, and Rest — available in two backends: one that
//     programs drop rules into an OpenFlow-style switch flow table and
//     one that appends DROP rules to iptables-style host firewalls;
//   - a test Engine that deploys systems (the ISystem interface),
//     coordinates clients under a single global operation order, crashes
//     and restarts nodes, and records the manifestation sequence of every
//     test as an event trace;
//   - helpers for the timing idioms the study identifies (sleeping for a
//     leader-election period, bounded condition waits).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"neat/internal/netsim"
)

// Node is a host participating in a test: a server, a client, or a
// helper service.
type Node struct {
	ID   netsim.NodeID
	Role Role
}

// Role classifies a node for reporting purposes.
type Role int

const (
	// RoleServer runs the system under test.
	RoleServer Role = iota
	// RoleClient issues workload operations.
	RoleClient
	// RoleService runs auxiliary infrastructure (e.g. a coordination
	// service the system under test depends on).
	RoleService
)

// String returns the lowercase role name.
func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RoleService:
		return "service"
	default:
		return "server"
	}
}

// PartitionType is one of the paper's three network-partitioning fault
// classes (Figure 1), or one of the link-degradation faults the study's
// failure reports implicate alongside clean splits: slow, lossy, and
// flaky (duplicating/reordering) links, and flapping partitions.
type PartitionType int

const (
	// CompletePartition splits the system into two disconnected
	// groups (Figure 1.a).
	CompletePartition PartitionType = iota
	// PartialPartition disconnects two groups while a third group
	// still reaches both (Figure 1.b).
	PartialPartition
	// SimplexPartition lets traffic flow in one direction only
	// (Figure 1.c).
	SimplexPartition
	// SlowPartition adds latency (and jitter) to every link between
	// the groups without dropping anything — the slow link that
	// masquerades as a partition once timeouts expire.
	SlowPartition
	// LossyPartition drops packets between the groups with a fixed
	// probability in both directions.
	LossyPartition
	// FlakyPartition degrades the links with an arbitrary chaos mix
	// (duplication, reordering, loss, delay).
	FlakyPartition
	// FlapPartition alternates between a live partition and a healed
	// network on a fixed clock-driven cycle — the transient, flapping
	// partitions the study singles out as especially damaging.
	FlapPartition
)

// String returns the name of the partition type.
func (t PartitionType) String() string {
	switch t {
	case CompletePartition:
		return "complete"
	case PartialPartition:
		return "partial"
	case SimplexPartition:
		return "simplex"
	case SlowPartition:
		return "slow"
	case LossyPartition:
		return "lossy"
	case FlakyPartition:
		return "flaky"
	case FlapPartition:
		return "flap"
	default:
		return fmt.Sprintf("partitiontype(%d)", int(t))
	}
}

// Partition is a handle to an injected network-partitioning fault,
// returned by the Partitioner and consumed by Heal.
type Partition struct {
	Type   PartitionType
	GroupA []netsim.NodeID
	GroupB []netsim.NodeID

	seq    uint64
	mu     sync.Mutex
	healed bool
	undo   func()
}

// partitionSeq stamps each injected partition with its installation
// order, giving bulk heals a replay-stable order to walk.
var partitionSeq atomic.Uint64

// newPartition builds a sequence-stamped handle for an injected fault.
func newPartition(t PartitionType, a, b []netsim.NodeID) *Partition {
	return &Partition{
		Type:   t,
		GroupA: append([]netsim.NodeID(nil), a...),
		GroupB: append([]netsim.NodeID(nil), b...),
		seq:    partitionSeq.Add(1),
	}
}

// sortPartitions orders a bulk-heal set by installation order. The
// sets live in maps keyed by handle, so without this the heal order —
// and with it the fabric's event order — would vary run to run.
func sortPartitions(ps []*Partition) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].seq < ps[j].seq })
}

// Healed reports whether the partition has been healed.
func (p *Partition) Healed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healed
}

func (p *Partition) heal() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.healed {
		return errors.New("core: partition already healed")
	}
	p.healed = true
	if p.undo != nil {
		p.undo()
	}
	return nil
}

// String describes the partition for logs.
func (p *Partition) String() string {
	return fmt.Sprintf("%s partition %v <-> %v", p.Type, p.GroupA, p.GroupB)
}

// NodeIDs extracts the IDs from a node list, preserving order.
func NodeIDs(nodes []Node) []netsim.NodeID {
	ids := make([]netsim.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	return ids
}

// Rest returns all cluster nodes not present in group, sorted. It
// mirrors NEAT's Partitioner.rest helper used in Listing 2.
func Rest(cluster []netsim.NodeID, group []netsim.NodeID) []netsim.NodeID {
	in := make(map[netsim.NodeID]bool, len(group))
	for _, id := range group {
		in[id] = true
	}
	var out []netsim.NodeID
	for _, id := range cluster {
		if !in[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
