package switchfab

import (
	"strings"
	"testing"
	"testing/quick"

	"neat/internal/netsim"
)

func TestDefaultLearningRuleForwards(t *testing.T) {
	s := New()
	if v := s.Check("a", "b"); v != netsim.VerdictAccept {
		t.Fatal("learning rule must forward by default")
	}
	if s.FlowCount() != 1 {
		t.Fatalf("FlowCount = %d, want 1 (learning rule)", s.FlowCount())
	}
}

func TestHigherPriorityDropWins(t *testing.T) {
	s := New()
	cookie := s.NextCookie()
	s.Install(PartitionPriority, Match{Src: "a", Dst: "b"}, DropAction, cookie)
	if v := s.Check("a", "b"); v != netsim.VerdictDrop {
		t.Fatal("partition rule must shadow the learning rule")
	}
	if v := s.Check("b", "a"); v != netsim.VerdictAccept {
		t.Fatal("reverse direction must be unaffected")
	}
	if v := s.Check("a", "c"); v != netsim.VerdictAccept {
		t.Fatal("other destinations must be unaffected")
	}
}

func TestRemoveCookieRestoresConnectivity(t *testing.T) {
	s := New()
	c1 := s.NextCookie()
	c2 := s.NextCookie()
	s.Install(PartitionPriority, Match{Src: "a", Dst: "b"}, DropAction, c1)
	s.Install(PartitionPriority, Match{Src: "b", Dst: "a"}, DropAction, c1)
	s.Install(PartitionPriority, Match{Src: "a", Dst: "c"}, DropAction, c2)
	if n := s.RemoveCookie(c1); n != 2 {
		t.Fatalf("removed %d entries, want 2", n)
	}
	if v := s.Check("a", "b"); v != netsim.VerdictAccept {
		t.Fatal("a->b should flow after heal")
	}
	if v := s.Check("a", "c"); v != netsim.VerdictDrop {
		t.Fatal("unrelated partition must survive heal of another")
	}
}

func TestRemoveCookieZeroRemovesNothing(t *testing.T) {
	s := New()
	if n := s.RemoveCookie(0); n != 0 {
		t.Fatalf("cookie 0 (learning rule) must never be removed, got %d", n)
	}
	if s.FlowCount() != 1 {
		t.Fatal("learning rule vanished")
	}
}

func TestEntryPacketCounters(t *testing.T) {
	s := New()
	e := s.Install(PartitionPriority, Match{Src: "a", Dst: "b"}, DropAction, s.NextCookie())
	for i := 0; i < 5; i++ {
		s.Check("a", "b")
	}
	s.Check("b", "a")
	if e.Packets() != 5 {
		t.Fatalf("entry matched %d packets, want 5", e.Packets())
	}
}

func TestTableMissLearning(t *testing.T) {
	s := New()
	s.Check("a", "b")
	s.Check("a", "c") // a already learned
	s.Check("b", "a")
	if s.Misses() != 2 {
		t.Fatalf("misses = %d, want 2 (a and b each learned once)", s.Misses())
	}
}

func TestDumpRendersEntries(t *testing.T) {
	s := New()
	s.Install(PartitionPriority, Match{Src: "s1", Dst: "s2"}, DropAction, s.NextCookie())
	d := s.Dump()
	for _, want := range []string{"priority=100", "nw_src=s1", "nw_dst=s2", "actions=drop", "priority=0"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump %q missing %q", d, want)
		}
	}
}

func TestWildcardMatch(t *testing.T) {
	s := New()
	s.Install(PartitionPriority, Match{Src: "a"}, DropAction, s.NextCookie())
	if v := s.Check("a", "anything"); v != netsim.VerdictDrop {
		t.Fatal("src-only match must drop all destinations")
	}
	if v := s.Check("b", "a"); v != netsim.VerdictAccept {
		t.Fatal("other sources unaffected")
	}
}

func TestInstallRemoveConservesFlowCount(t *testing.T) {
	// Property: installing k entries under one cookie then removing the
	// cookie always returns the table to exactly the learning rule.
	f := func(k uint8) bool {
		s := New()
		cookie := s.NextCookie()
		n := int(k%50) + 1
		for i := 0; i < n; i++ {
			s.Install(PartitionPriority, Match{Src: "x", Dst: netsim.NodeID(rune('a' + i%26))}, DropAction, cookie)
		}
		removed := s.RemoveCookie(cookie)
		return removed == n && s.FlowCount() == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
