// Package switchfab implements a software switch with an OpenFlow-style
// priority-ordered flow table on top of a basic learning switch.
//
// This mirrors the paper's OpenFlow partitioner backend: the controller
// first installs the rules of a basic learning switch, then installs
// partitioning rules that drop packets from a set of source addresses to
// a set of destination addresses at a higher priority than the learning
// rules.
package switchfab

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"neat/internal/netsim"
)

// Action is what a matching flow entry does with a packet.
type Action int

const (
	// Forward sends the packet toward its destination port.
	Forward Action = iota
	// DropAction discards the packet.
	DropAction
)

// String returns the OpenFlow-ish spelling of the action.
func (a Action) String() string {
	if a == DropAction {
		return "drop"
	}
	return "output:learned"
}

// Match selects packets by source and destination address; empty fields
// are wildcards.
type Match struct {
	Src netsim.NodeID
	Dst netsim.NodeID
}

func (m Match) covers(src, dst netsim.NodeID) bool {
	if m.Src != "" && m.Src != src {
		return false
	}
	if m.Dst != "" && m.Dst != dst {
		return false
	}
	return true
}

// FlowEntry is one row of the flow table.
type FlowEntry struct {
	Priority int
	Match    Match
	Action   Action
	// Cookie tags entries installed for one partition so they can be
	// removed together when the partition heals, like OpenFlow cookies.
	Cookie uint64

	packets atomic.Uint64
}

// Packets returns how many packets matched this entry.
func (e *FlowEntry) Packets() uint64 { return e.packets.Load() }

// String renders the entry like `ovs-ofctl dump-flows` output.
func (e *FlowEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cookie=0x%x, priority=%d", e.Cookie, e.Priority)
	if e.Match.Src != "" {
		fmt.Fprintf(&b, ",nw_src=%s", e.Match.Src)
	}
	if e.Match.Dst != "" {
		fmt.Fprintf(&b, ",nw_dst=%s", e.Match.Dst)
	}
	fmt.Fprintf(&b, " actions=%s", e.Action)
	return b.String()
}

// LearningPriority is the priority of the base learning-switch rule.
// Partition rules are installed above it.
const LearningPriority = 0

// PartitionPriority is the priority the partitioner uses for drop rules.
const PartitionPriority = 100

// Switch is the software switch. It implements netsim.Filter so it can
// be installed as the fabric's switch stage.
type Switch struct {
	mu      sync.RWMutex
	entries []*FlowEntry // kept sorted by descending priority, stable
	// macTable is the learning switch's address table: it records which
	// hosts have been seen, standing in for MAC->port learning.
	macTable map[netsim.NodeID]bool
	seq      uint64

	missCount atomic.Uint64
}

// New creates a switch whose flow table holds only the learning rule:
// a priority-0 wildcard entry that forwards everything.
func New() *Switch {
	s := &Switch{macTable: make(map[netsim.NodeID]bool)}
	s.entries = append(s.entries, &FlowEntry{
		Priority: LearningPriority,
		Action:   Forward,
	})
	return s
}

// Install adds a flow entry and returns it. Entries with equal priority
// keep insertion order (later entries match after earlier ones).
func (s *Switch) Install(priority int, m Match, a Action, cookie uint64) *FlowEntry {
	e := &FlowEntry{Priority: priority, Match: m, Action: a, Cookie: cookie}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, e)
	sort.SliceStable(s.entries, func(i, j int) bool {
		return s.entries[i].Priority > s.entries[j].Priority
	})
	return e
}

// NextCookie allocates a fresh cookie for a group of entries.
func (s *Switch) NextCookie() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return s.seq
}

// RemoveCookie deletes every entry tagged with the cookie and reports
// how many entries were removed.
func (s *Switch) RemoveCookie(cookie uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.entries[:0]
	removed := 0
	for _, e := range s.entries {
		if e.Cookie == cookie && cookie != 0 {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	s.entries = kept
	return removed
}

// FlowCount returns the number of installed entries (including the
// learning rule).
func (s *Switch) FlowCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Misses returns how many packets fell through to the learning rule
// from an unknown host (table-miss events sent to the controller).
func (s *Switch) Misses() uint64 { return s.missCount.Load() }

// Check implements netsim.Filter: find the highest-priority matching
// entry and apply its action.
func (s *Switch) Check(src, dst netsim.NodeID) netsim.Verdict {
	s.mu.Lock()
	if !s.macTable[src] {
		// First packet from this host: the learning switch records
		// its port; in OpenFlow terms this is a table-miss punt to
		// the controller, which installs the learned forwarding.
		s.macTable[src] = true
		s.missCount.Add(1)
	}
	var hit *FlowEntry
	for _, e := range s.entries {
		if e.Match.covers(src, dst) {
			hit = e
			break
		}
	}
	s.mu.Unlock()
	if hit == nil {
		return netsim.VerdictAccept
	}
	hit.packets.Add(1)
	if hit.Action == DropAction {
		return netsim.VerdictDrop
	}
	return netsim.VerdictAccept
}

// Dump renders the flow table like `ovs-ofctl dump-flows`.
func (s *Switch) Dump() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	for _, e := range s.entries {
		fmt.Fprintf(&b, "%s\n", e)
	}
	return b.String()
}
