package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter reports range loops over maps whose bodies are
// order-sensitive: appending to a slice declared outside the loop,
// writing output (fmt printing, Write* methods), or sending on a
// channel. Go randomizes map iteration order per run, so any of these
// leaks nondeterminism straight into findings, reports, and replayed
// histories — the classic replay-divergence source. The sanctioned
// idiom is collect-keys/sort/iterate: an append that is later passed
// to a sort call in the same function is recognized and allowed.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "forbid order-sensitive bodies (appends to outer slices, output writes, channel sends) in " +
		"range-over-map loops unless the collected slice is sorted afterwards",
	Run: runMapIter,
}

// sortCallNames are the package-level sort entry points that establish
// a deterministic order over a collected slice.
var sortCallNames = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	// Any slices.Sort* variant counts (Sort, SortFunc, SortStableFunc).
	"slices": nil,
}

// writeMethodNames are io-ish methods whose call inside a map range
// emits output in iteration order.
var writeMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMapIter(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(p, body)
			}
			return true
		})
	}
	return nil
}

// checkMapRanges examines the range statements whose innermost
// enclosing function body is funcBody; nested function literals are
// visited on their own pass.
func checkMapRanges(p *Pass, funcBody *ast.BlockStmt) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok && m != n {
				return false
			}
			rs, ok := m.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				checkMapRangeBody(p, rs, funcBody)
			}
			return true
		})
	}
	walk(funcBody)
}

func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch sink := n.(type) {
		case *ast.SendStmt:
			p.Reportf(rs.For,
				"range over map sends on a channel in iteration order; map order is random per run — iterate sorted keys instead")
			return true
		case *ast.CallExpr:
			switch fun := sink.Fun.(type) {
			case *ast.Ident:
				if fun.Name != "append" || len(sink.Args) == 0 {
					return true
				}
				if _, isBuiltin := p.Info.Uses[fun].(*types.Builtin); !isBuiltin {
					return true
				}
				obj := exprObject(p, sink.Args[0])
				if obj == nil {
					return true
				}
				// A slice declared inside the loop body cannot outlive an
				// iteration, so its order cannot leak.
				if obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End() {
					return true
				}
				if sortedAfter(p, funcBody, rs, obj) {
					return true
				}
				p.Reportf(rs.For,
					"range over map appends to %q in iteration order and %q is never sorted afterwards; map order is random per run — sort the collected slice or iterate sorted keys",
					obj.Name(), obj.Name())
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if pkg := p.PkgNameOf(fun.X); pkg == "fmt" &&
					(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
					p.Reportf(rs.For,
						"range over map writes output (fmt.%s) in iteration order; map order is random per run — iterate sorted keys instead", name)
					return true
				}
				if writeMethodNames[name] && p.Info.Selections[fun] != nil {
					p.Reportf(rs.For,
						"range over map writes output (%s) in iteration order; map order is random per run — iterate sorted keys instead", name)
				}
			}
		}
		return true
	})
}

// exprObject resolves the variable (or field) an expression names.
func exprObject(p *Pass, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return obj
		}
		return p.Info.Defs[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// sortedAfter reports whether, lexically after the range loop in the
// same function body, obj is passed to a sort call — the second half
// of the collect/sort/iterate idiom.
func sortedAfter(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			pkg := p.PkgNameOf(fun.X)
			names, isSortPkg := sortCallNames[pkg]
			if !isSortPkg {
				return true
			}
			if names != nil && !names[fun.Sel.Name] {
				return true
			}
			if pkg == "slices" && !strings.HasPrefix(fun.Sel.Name, "Sort") {
				return true
			}
		case *ast.Ident:
			// A local helper named sortX (sortPartitions, sortKeys)
			// counts: the name is the idiom's declaration of intent.
			if !strings.HasPrefix(fun.Name, "sort") && !strings.HasPrefix(fun.Name, "Sort") {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			if argReferences(p, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func argReferences(p *Pass, arg ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
