package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, parsed, and type-checked unit of analysis.
// In-package test files are checked together with the package proper;
// an external test package (package foo_test) becomes its own Package
// with Path "<importpath>_test".
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. Analyzer results for
	// a package with type errors are best-effort; the driver surfaces
	// these as hard failures so the gate never silently under-checks.
	TypeErrors []error
}

// A Loader resolves, parses, and type-checks packages using only the
// go command and the standard library: package metadata comes from
// `go list`, and imports are satisfied from the build cache's export
// data (`go list -export`) — no network, no third-party modules.
type Loader struct {
	// Dir is the working directory for go commands (any directory
	// inside the module). Empty means the current directory.
	Dir string

	fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.ImporterFrom
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: map[string]string{},
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

// listPkg is the subset of `go list -json` fields the loader reads.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	Standard     bool
	ForTest      string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// goList runs `go list -e -json=...` with args and decodes the stream.
func (l *Loader) goList(args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// harvestExports records every export-data file in the listing. Test
// variants ("p [p.test]") are skipped: analysis type-checks test files
// from source, and the bracketed variants would shadow the base
// package's export data.
func (l *Loader) harvestExports(pkgs []listPkg) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range pkgs {
		if p.Export == "" || p.ForTest != "" || strings.Contains(p.ImportPath, " [") {
			continue
		}
		if _, ok := l.exports[p.ImportPath]; !ok {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// lookup satisfies go/importer's export-data lookup: resolve the
// import path to its build-cache export file, shelling out to go list
// for paths the bulk listing did not cover.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		pkgs, err := l.goList("-export", "-json=ImportPath,Export,Standard,ForTest", path)
		if err != nil {
			return nil, err
		}
		l.harvestExports(pkgs)
		l.mu.Lock()
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Load resolves patterns ("./...", explicit directories) into parsed,
// type-checked packages ready for analysis.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One bulk listing warms the export map with every dependency —
	// including test-only dependencies — so type-checking never shells
	// out per import.
	deps, err := l.goList(append([]string{"-deps", "-test", "-export",
		"-json=ImportPath,Export,Standard,ForTest"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l.harvestExports(deps)
	roots, err := l.goList(append([]string{
		"-json=ImportPath,Dir,Standard,GoFiles,TestGoFiles,XTestGoFiles,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range roots {
		if p.Standard || p.ImportPath == "" {
			continue
		}
		if p.Error != nil && len(p.GoFiles) == 0 {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := l.check(p.ImportPath, p.Dir, append(p.GoFiles, p.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		if len(p.XTestGoFiles) > 0 {
			xt, err := l.check(p.ImportPath+"_test", p.Dir, p.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			out = append(out, xt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads the single package rooted at dir (every .go file,
// including in-package _test.go files) under the given import path —
// the fixture-loading entry point used by linttest, where the
// directory is not part of the module's package graph.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.check(path, dir, files)
}

// check parses and type-checks one package's files.
func (l *Loader) check(path, dir string, files []string) (*Package, error) {
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// FirstTypeError summarizes type-check failures across packages, nil
// when every package checked cleanly.
func FirstTypeError(pkgs []*Package) error {
	var msgs []string
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			msgs = append(msgs, fmt.Sprintf("%s: %v", p.Path, e))
			if len(msgs) >= 10 {
				msgs = append(msgs, "...")
				return errors.New(strings.Join(msgs, "\n"))
			}
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return errors.New(strings.Join(msgs, "\n"))
}
