package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// clockPkgPath is the one package allowed to touch the wall clock: it
// is the abstraction everything else draws time from.
const clockPkgPath = "neat/internal/clock"

// realClockFuncs are the package time entry points that read or wait
// on the wall clock. Pure value constructors (time.Duration,
// time.Date, time.Unix) are fine — they involve no clock.
var realClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// RealClock reports direct wall-clock use outside internal/clock. A
// single time.Now in a simulated system desynchronizes every same-seed
// replay (PR 5 fixed exactly this across three subsystems); time must
// flow from clock.Clock so the Sim clock can substitute virtual time.
// Benchmark bodies in _test.go files are exempt — they measure the
// wall clock on purpose; everything else carries an audited
// //neat:allow escape or gets fixed.
var RealClock = &Analyzer{
	Name: "realclock",
	Doc: "forbid time.Now/Sleep/After/Tick/NewTimer/NewTicker/AfterFunc outside internal/clock; " +
		"simulated components draw time from clock.Clock",
	Run: runRealClock,
}

func runRealClock(p *Pass) error {
	if p.PkgPath == clockPkgPath || p.PkgPath == clockPkgPath+"_test" {
		return nil
	}
	for _, f := range p.Files {
		benchmarks := benchmarkRanges(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !realClockFuncs[sel.Sel.Name] {
				return true
			}
			if p.PkgNameOf(sel.X) != "time" {
				return true
			}
			for _, r := range benchmarks {
				if call.Pos() >= r[0] && call.Pos() < r[1] {
					return true
				}
			}
			p.Reportf(call.Pos(),
				"time.%s outside internal/clock: draw time from clock.Clock (ep.Clock(), eng.Clock()) so virtual-time runs stay deterministic",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}

// benchmarkRanges returns the position ranges of Benchmark* function
// bodies in a test file — the one test context where wall-clock reads
// are the point.
func benchmarkRanges(p *Pass, f *ast.File) [][2]token.Pos {
	if !p.IsTestFile(f) {
		return nil
	}
	var out [][2]token.Pos
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Recv != nil {
			continue
		}
		if strings.HasPrefix(fd.Name.Name, "Benchmark") {
			out = append(out, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
		}
	}
	return out
}
