package lint_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"neat/internal/lint"
)

// renderJSON loads the badpkg fixture from scratch and renders the
// full nine-analyzer report.
func renderJSON(t *testing.T) []byte {
	t.Helper()
	abs, err := filepath.Abs("testdata/src/badpkg")
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(moduleRoot(t))
	pkg, err := loader.LoadDir(abs, "fixture/badpkg")
	if err != nil {
		t.Fatal(err)
	}
	diags, escapes, err := lint.Run([]*lint.Package{pkg}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, filepath.Dir(abs), diags, escapes); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWriteJSONByteStable re-loads and re-renders the same fixture and
// requires byte-identical reports: the JSON output is part of the
// determinism contract (CI artifacts and editor integrations diff it).
func TestWriteJSONByteStable(t *testing.T) {
	first := renderJSON(t)
	for i := 0; i < 3; i++ {
		if next := renderJSON(t); !bytes.Equal(first, next) {
			t.Fatalf("JSON report not byte-stable across run %d:\n--- first ---\n%s\n--- run %d ---\n%s",
				i+1, first, i+1, next)
		}
	}
}

// TestWriteJSONShape decodes the report and spot-checks structure: all
// nine analyzers present, positions populated, empty escape list
// rendered as [] rather than null.
func TestWriteJSONShape(t *testing.T) {
	raw := renderJSON(t)
	var rep struct {
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Escapes []struct {
			File string `json:"file"`
			Line int    `json:"line"`
		} `json:"escapes"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not decode: %v\n%s", err, raw)
	}
	seen := map[string]bool{}
	for _, d := range rep.Diagnostics {
		seen[d.Analyzer] = true
		if d.File == "" || d.Line == 0 || d.Column == 0 || d.Message == "" {
			t.Errorf("diagnostic with empty position/message: %+v", d)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("diagnostic path not relativized: %s", d.File)
		}
	}
	for _, a := range lint.All() {
		if !seen[a.Name] {
			t.Errorf("badpkg JSON report missing analyzer %s", a.Name)
		}
	}
	if !bytes.Contains(raw, []byte(`"escapes": []`)) {
		t.Errorf("empty escape audit should render as [], got:\n%s", raw)
	}
}
