package lint

import (
	"go/ast"
	"go/types"
)

// accountingNames are the internal/clock entry points that tie a
// goroutine (or the work it consumes) into the virtual clock's
// busy-token scheme. A spawned body that engages any of them is
// accounted by construction: clock.Go rebinds the spawn token,
// clock.TickLoop hands the consumer a token per tick, and the
// Acquire/Scoped family moves tokens explicitly.
var accountingNames = map[string]bool{
	"Go": true, "TickLoop": true, "Idle": true, "Gid": true,
	"Acquire": true, "Release": true,
	"AcquireScoped": true, "ReleaseScoped": true, "BecomeScoped": true,
	"AcquireScopedAs": true, "ReleaseScopedAs": true,
}

// GoAccount reports bare go statements in clock-participating packages
// (anything importing internal/clock, which is exactly the set of
// packages that can run on virtual time). An unaccounted goroutine is
// invisible to the Sim clock's quiescence rule: virtual time can
// advance across the gap between the spawn and the goroutine's first
// observable action, landing fresh work nondeterministically before or
// after the next timer. Spawns must go through clock.Go, or launch a
// body that engages the token scheme itself (a clock.TickLoop service
// loop, a dispatcher doing scoped-token accounting). Test files are
// exempt — test-driver goroutines run outside the simulation.
var GoAccount = &Analyzer{
	Name: "goaccount",
	Doc: "forbid bare go statements in packages importing internal/clock; goroutines are accounted " +
		"via clock.Go or a token-accounting body (clock.TickLoop, scoped tokens)",
	Run: runGoAccount,
}

func runGoAccount(p *Pass) error {
	if p.PkgPath == clockPkgPath || p.PkgPath == clockPkgPath+"_test" || !p.Imports(clockPkgPath) {
		return nil
	}
	decls := packageFuncDecls(p)
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if body := spawnedBody(p, g, decls); body != nil && referencesAccounting(p, body) {
				return true
			}
			p.Reportf(g.Pos(),
				"bare go statement in a clock-participating package: spawn with clock.Go, or launch a token-accounting loop (clock.TickLoop), so the virtual clock accounts the goroutine")
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes the package's function declarations by
// their type-checker objects, so a spawned same-package callee's body
// can be inspected.
func packageFuncDecls(p *Pass) map[types.Object]*ast.FuncDecl {
	out := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// spawnedBody resolves the body the go statement runs: a function
// literal directly, or the declaration of a same-package function or
// method. Cross-package callees resolve to nil — their bodies are not
// in this pass, so the spawn needs clock.Go or an escape.
func spawnedBody(p *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[p.Info.Uses[fun]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[p.Info.Uses[fun.Sel]]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// referencesAccounting reports whether body engages the busy-token
// scheme: a qualified call into internal/clock's accounting API, or a
// method call of the Busy interface's methods.
func referencesAccounting(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !accountingNames[sel.Sel.Name] {
			return true
		}
		if obj, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == clockPkgPath {
			found = true
			return false
		}
		if p.Info.Selections[sel] != nil {
			// A method with an accounting name (Busy's Acquire/Idle/...).
			found = true
			return false
		}
		return true
	})
	return found
}
