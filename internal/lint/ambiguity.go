package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// transportPkgPath hosts Endpoint.Call, the one place an RPC can time
// out with the request possibly executed — the paper's silent-success
// window.
const transportPkgPath = "neat/internal/transport"

// Ambiguity reports Endpoint.Call sites that swallow the ambiguous
// outcome: the (reply, error) pair discarded outright, the error bound
// to the blank identifier, or the error merely compared against nil
// and never classified or propagated. A timed-out Call may still have
// executed; if the error never reaches transport.MaybeExecuted /
// MarkMaybeExecuted, history.OutcomeOf, resilience classification, or
// the caller, a silent success becomes undetectable and the checkers
// lose the Ambiguous outcome they exist to judge. Test files are
// exempt — they assert on outcomes directly.
var Ambiguity = &Analyzer{
	Name: "ambiguity",
	Doc: "forbid dropping or merely nil-checking the error of transport Endpoint.Call; the " +
		"silent-success window must be classified (MaybeExecuted/OutcomeOf) or propagated",
	Run: runAmbiguity,
}

func runAmbiguity(p *Pass) error {
	if p.PkgPath == transportPkgPath || p.PkgPath == transportPkgPath+"_test" || !p.Imports(transportPkgPath) {
		return nil
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isEndpointCall(p, call) {
				return true
			}
			checkCallSite(p, f, call, parents)
			return true
		})
	}
	return nil
}

// isEndpointCall reports whether call invokes (*transport.Endpoint).Call.
func isEndpointCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Call" {
		return false
	}
	s := p.Info.Selections[sel]
	if s == nil {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == transportPkgPath
}

func checkCallSite(p *Pass, f *ast.File, call *ast.CallExpr, parents map[ast.Node]ast.Node) {
	switch parent := parents[call].(type) {
	case *ast.ExprStmt, *ast.GoStmt, *ast.DeferStmt:
		p.Reportf(call.Pos(),
			"Endpoint.Call outcome discarded: a timed-out Call may still have executed (silent-success window); classify the error or propagate it")
	case *ast.ReturnStmt:
		// Both results flow to the caller — classification is theirs.
	case *ast.AssignStmt:
		if len(parent.Rhs) != 1 || len(parent.Lhs) != 2 {
			return
		}
		checkBoundError(p, f, call, parent.Lhs[1])
	case *ast.ValueSpec:
		if len(parent.Values) != 1 || len(parent.Names) != 2 {
			return
		}
		checkBoundError(p, f, call, parent.Names[1])
	}
}

// checkBoundError inspects what happens to the error the Call bound:
// blank is a drop; a named error must flow somewhere beyond nil
// comparisons — into a call (MaybeExecuted, OutcomeOf, wrapping), a
// return, an assignment, a composite literal — before the analyzer
// believes the ambiguity was handled.
func checkBoundError(p *Pass, f *ast.File, call *ast.CallExpr, errExpr ast.Expr) {
	id, ok := errExpr.(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		p.Reportf(call.Pos(),
			"Endpoint.Call error discarded: a timed-out Call may still have executed (silent-success window); classify the error or propagate it")
		return
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	classified := false
	ast.Inspect(f, func(n ast.Node) bool {
		if classified {
			return false
		}
		use, ok := n.(*ast.Ident)
		if !ok || use.Pos() <= call.End() || p.Info.Uses[use] != obj {
			return true
		}
		if errUseClassifies(p, f, use) {
			classified = true
			return false
		}
		return true
	})
	if !classified {
		p.Reportf(call.Pos(),
			"Endpoint.Call error %q is nil-checked but never classified or propagated: ambiguous outcomes must reach MaybeExecuted/OutcomeOf or the caller",
			id.Name)
	}
}

// errUseClassifies decides whether one use of the bound error handles
// the ambiguity: passed to any call, returned, re-assigned onward,
// stored in a composite literal, sent, or address-taken. A bare
// `err != nil` comparison is a liveness check, not a classification.
func errUseClassifies(p *Pass, f *ast.File, use *ast.Ident) bool {
	parents := parentMap(f)
	var child ast.Node = use
	for parent := parents[child]; parent != nil; parent = parents[child] {
		switch pn := parent.(type) {
		case *ast.BinaryExpr:
			if pn.Op == token.EQL || pn.Op == token.NEQ {
				return false
			}
			child = parent
		case *ast.CallExpr:
			if child == pn.Fun {
				return false
			}
			return true
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.UnaryExpr,
			*ast.SwitchStmt, *ast.TypeSwitchStmt:
			return true
		case *ast.AssignStmt:
			for _, lhs := range pn.Lhs {
				if lhs == child {
					return false // overwrite, not a read
				}
			}
			return true
		case *ast.ParenExpr, *ast.IfStmt, *ast.CaseClause, *ast.ExprStmt, *ast.BlockStmt:
			child = parent
		default:
			// Unknown context: assume handled rather than cry wolf.
			return true
		}
	}
	return false
}

// parentMap builds (and caches per file) the child-to-parent relation
// used to interpret expression contexts.
var parentCache = map[*ast.File]map[ast.Node]ast.Node{}

func parentMap(f *ast.File) map[ast.Node]ast.Node {
	if m, ok := parentCache[f]; ok {
		return m
	}
	m := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	parentCache[f] = m
	return m
}
