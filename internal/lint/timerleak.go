package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TimerLeak reports clock.Timer/clock.Ticker values that may never
// reach Stop on some path to the function's exit — including early
// error returns and explicit panic paths. Under clock.Sim a leaked
// ticker is a standing appointment with the scheduler: quiescence
// auto-advance always finds a next deadline, the round never settles,
// and the failure only surfaces minutes later as a wall-clock
// watchdog engine-error with no pointer back to the leak site. The
// analysis is a forward may-be-unstopped dataflow over the function's
// CFG (lostcancel-shaped): creating a timer or ticker gens a fact;
// calling Stop, deferring a Stop (directly or inside a deferred
// closure), or letting the value escape the function — returned,
// passed to a call, captured by a spawned or stored closure, written
// to a field — kills it, on the grounds that whoever received the
// value owns the Stop obligation. clock.AfterFunc timers are exempt:
// they self-complete, and netsim's delivery fabric depends on exactly
// that. Test files and internal/clock itself are out of scope.
var TimerLeak = &Analyzer{
	Name: "timerleak",
	Doc: "require every clock.Clock NewTimer/NewTicker result to reach Stop (or escape to a new owner) " +
		"on all paths, including early returns and panics; a leaked timer wedges Sim quiescence",
	Run: runTimerLeak,
}

func runTimerLeak(p *Pass) error {
	if p.PkgPath == clockPkgPath || !summarizable(p) || !importsTransitively(p, clockPkgPath) {
		return nil
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, u := range funcUnits(f) {
			checkTimerUnit(p, u)
		}
	}
	return nil
}

// importsTransitively reports whether the package can see path at all
// — directly or through any import. Creation sites are recognized by
// result type, which can flow through re-exporting helpers, so scope
// is wider than direct importers.
func importsTransitively(p *Pass, path string) bool {
	if p.Pkg == nil {
		return false
	}
	seen := map[*types.Package]bool{}
	var visit func(pkg *types.Package) bool
	visit = func(pkg *types.Package) bool {
		if pkg.Path() == path {
			return true
		}
		if seen[pkg] {
			return false
		}
		seen[pkg] = true
		for _, im := range pkg.Imports() {
			if visit(im) {
				return true
			}
		}
		return false
	}
	for _, im := range p.Pkg.Imports() {
		if visit(im) {
			return true
		}
	}
	return false
}

// A timerSite is one tracked creation: the call, the variable it was
// bound to, and what was created.
type timerSite struct {
	pos  token.Pos
	obj  types.Object // nil when the result was discarded
	kind string       // "NewTimer", "NewTicker", "NewWakeTimer"
}

func checkTimerUnit(p *Pass, u funcUnit) {
	g := buildCFG(u.body)
	reach := g.reachable()

	// Collect creation sites in deterministic (block, node) order.
	var sites []*timerSite
	siteBits := map[types.Object]uint64{} // kill mask per bound variable
	for _, b := range reach {
		for _, n := range b.nodes {
			inspectShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, ok := timerCreationKind(p, call)
				if !ok {
					return true
				}
				if len(sites) >= 64 {
					return true // bitmask capacity; no real function comes close
				}
				obj, discarded := boundVar(p, n, call)
				if discarded {
					p.Reportf(call.Pos(),
						"result of %s discarded: the %s can never be stopped and will wedge Sim quiescence; bind it and defer Stop",
						kind, timerNoun(kind))
					return true
				}
				if obj == nil {
					// Escaped at birth — returned or passed directly;
					// the receiver owns the Stop obligation.
					return true
				}
				sites = append(sites, &timerSite{pos: call.Pos(), kind: kind, obj: obj})
				siteBits[obj] |= uint64(1) << (len(sites) - 1)
				return true
			})
		}
	}
	if len(sites) == 0 {
		return
	}

	transfer := func(b *cfgBlock, in uint64) uint64 {
		facts := in
		for _, n := range b.nodes {
			facts = timerNodeTransfer(p, n, sites, siteBits, facts)
		}
		return facts
	}
	in := forward(g, 0, bitLattice(transfer))

	leakedExit := in[g.exit.index]
	leakedPanic := in[g.panicExit.index]
	for i, s := range sites {
		bit := uint64(1) << i
		switch {
		case leakedExit&bit != 0:
			p.Reportf(s.pos,
				"%s result %q may not reach Stop on every path (early return leaks the %s and wedges Sim quiescence); defer %s.Stop() after creation",
				s.kind, objName(s.obj), timerNoun(s.kind), objName(s.obj))
		case leakedPanic&bit != 0:
			p.Reportf(s.pos,
				"%s result %q is not stopped on a panic path; only a deferred Stop survives the unwind — defer %s.Stop() after creation",
				s.kind, objName(s.obj), objName(s.obj))
		}
	}
}

// timerNodeTransfer applies one statement's gen/kill effects.
func timerNodeTransfer(p *Pass, n ast.Node, sites []*timerSite, siteBits map[types.Object]uint64, facts uint64) uint64 {
	// Defers kill: a deferred v.Stop() (or a deferred closure that
	// stops v, or a deferred call receiving v) runs on every later
	// exit, normal or panicking.
	if d, ok := n.(*ast.DeferStmt); ok {
		for obj, bits := range siteBits {
			if deferStops(p, d, obj) {
				facts &^= bits
			}
		}
		return facts
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			// Gen: a creation site reached here.
			for i, s := range sites {
				if s.pos == m.Pos() {
					facts |= uint64(1) << i
				}
			}
			// Kill: v.Stop().
			if obj := stopReceiver(p, m); obj != nil {
				facts &^= siteBits[obj]
			}
		case *ast.GoStmt:
			// A spawned body that stops (or receives) the value owns it.
			for obj, bits := range siteBits {
				if facts&bits != 0 && nodeUsesObj(p, m.Call, obj) {
					facts &^= bits
				}
			}
		case *ast.Ident:
			// Any other use — returned, passed, stored, captured —
			// escapes the value to a new owner. Receiving from v.C()
			// and calling v.Stop()/v.Reset() do not escape.
			obj := p.Info.Uses[m]
			if obj == nil || siteBits[obj] == 0 {
				return true
			}
			if isTimerSelfUse(p, m) || isAssignTarget(p, m) {
				return true
			}
			facts &^= siteBits[obj]
		}
		return true
	})
	return facts
}

// timerCreationKind recognizes calls whose result is a clock.Timer or
// clock.Ticker that the caller must stop: the Clock interface's
// NewTimer/NewTicker (through any implementation or wrapper) and
// clock.NewWakeTimer. AfterFunc is exempt — it self-completes.
func timerCreationKind(p *Pass, call *ast.CallExpr) (string, bool) {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return "", false
	}
	if !isClockTimerType(tv.Type) {
		return "", false
	}
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	switch name {
	case "NewTimer", "NewTicker", "NewWakeTimer":
		return name, true
	}
	return "", false
}

// isClockTimerType reports whether t is clock.Timer or clock.Ticker.
func isClockTimerType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != clockPkgPath {
		return false
	}
	return obj.Name() == "Timer" || obj.Name() == "Ticker"
}

// boundVar resolves the variable a creation call binds, walking the
// enclosing statement: t := clk.NewTicker(d), t = ..., var t = ... .
// discarded is true when the result is dropped outright (an ExprStmt
// or a blank assignment); a nil obj with discarded false means the
// value flows into a larger expression — returned or passed directly
// — and escapes at birth to a new owner.
func boundVar(p *Pass, stmt ast.Node, call *ast.CallExpr) (obj types.Object, discarded bool) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			if ast.Unparen(rhs) == call && i < len(s.Lhs) {
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					return nil, false // field/element target: stored away
				}
				if id.Name == "_" {
					return nil, true
				}
				if obj := p.Info.Defs[id]; obj != nil {
					return obj, false
				}
				return p.Info.Uses[id], false
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if ast.Unparen(v) == call && i < len(vs.Names) {
						if vs.Names[i].Name == "_" {
							return nil, true
						}
						return p.Info.Defs[vs.Names[i]], false
					}
				}
			}
		}
	case *ast.ExprStmt:
		if ast.Unparen(s.X) == call {
			return nil, true
		}
	}
	return nil, false
}

// stopReceiver resolves v from a v.Stop() call, nil otherwise.
func stopReceiver(p *Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stop" {
		return nil
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return p.Info.Uses[id]
	}
	return nil
}

// deferStops reports whether the deferred call discharges obj's Stop
// obligation: defer v.Stop(), a deferred closure whose body uses v,
// or v passed to the deferred call.
func deferStops(p *Pass, d *ast.DeferStmt, obj types.Object) bool {
	if recv := stopReceiver(p, d.Call); recv == obj {
		return true
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && nodeUsesObj(p, lit.Body, obj) {
		return true
	}
	for _, arg := range d.Call.Args {
		if nodeUsesObj(p, arg, obj) {
			return true
		}
	}
	return false
}

// nodeUsesObj reports whether any identifier under n (including
// inside nested function literals) resolves to obj.
func nodeUsesObj(p *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isTimerSelfUse reports whether id's use is v.Stop(), v.Reset(...),
// or a v.C() receive — uses that neither escape nor abandon the value.
func isTimerSelfUse(p *Pass, id *ast.Ident) bool {
	parents := parentMap(fileOf(p, id.Pos()))
	sel, ok := parents[id].(*ast.SelectorExpr)
	if !ok || sel.X != id {
		return false
	}
	switch sel.Sel.Name {
	case "Stop", "C", "Reset":
		_, isCall := parents[sel].(*ast.CallExpr)
		return isCall
	}
	return false
}

// isAssignTarget reports whether id is the target of an assignment
// (an overwrite, not a read).
func isAssignTarget(p *Pass, id *ast.Ident) bool {
	parents := parentMap(fileOf(p, id.Pos()))
	as, ok := parents[id].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if lhs == id {
			return true
		}
	}
	return false
}

// fileOf finds the pass file containing pos.
func fileOf(p *Pass, pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return p.Files[0]
}

func timerNoun(kind string) string {
	if strings.Contains(kind, "Ticker") {
		return "ticker"
	}
	return "timer"
}

func objName(obj types.Object) string {
	if obj == nil {
		return "_"
	}
	return obj.Name()
}
