package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder reports cycles in the inter-procedural mutex
// acquisition-order graph: if one path acquires lock A and then —
// directly or through any chain of calls — lock B, while another
// acquires B then A, two goroutines interleaving those paths can
// deadlock. In this codebase the stakes are sharper than a hang:
// netsim delivery, transport dispatch, and the campaign runner all
// hold locks on the packet hot path, and a deadlock there freezes the
// round until the wall-clock watchdog converts it into an engine-error
// finding with no pointer back at the ordering bug.
//
// Locks are abstracted by their declaration — all instances of
// netsim.Network.mu are one vertex, package-level and function-local
// mutexes get their own — which is the classic static-lockorder
// abstraction: it cannot distinguish two instances of the same struct,
// so self-edges (A while A) are skipped rather than reported. Each
// function's Summarize pass runs a forward may-hold dataflow over its
// CFG (Lock gens, Unlock kills, a deferred Unlock holds to exit) to
// record direct edges and the held-set at every static call site;
// spawned goroutine bodies start with an empty held-set, since lock
// order constrains single threads. A global fixpoint then propagates
// "may acquire" facts up the call graph, every edge keeping a witness
// chain of positions. Cycles are reported once, at the first witness
// site, with the full chain.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "forbid cycles in the inter-procedural mutex acquisition-order graph; a cycle is a potential " +
		"deadlock reported with the full witness chain of lock sites",
	Run:       runLockOrder,
	Summarize: summarizeLockOrder,
}

// lockFacts is the store's lock-order state: per-function summaries
// during Summarize, the finalized graph and cycles after.
type lockFacts struct {
	funcs map[string]*lockSummary
	order []string // deterministic summary insertion order

	finalized bool
	cycles    []lockCycle
}

func newLockFacts() *lockFacts {
	return &lockFacts{funcs: map[string]*lockSummary{}}
}

type lockSummary struct {
	// acquires maps each lock class this function directly acquires to
	// its first acquisition site.
	acquires map[string]token.Position
	// edges are the direct ordering edges: to acquired at pos while
	// from was held.
	edges []lockEdge
	// calls are the static call sites, with the held-set at each.
	calls []lockCall
}

type lockEdge struct {
	from, to string
	// site is where `to` is acquired; via is the call chain leading
	// there (empty for a direct edge).
	site token.Position
	via  []token.Position
}

type lockCall struct {
	callee string
	held   []string // sorted lock classes held at the call
	pos    token.Position
}

type lockCycle struct {
	locks []string // canonical rotation: lexicographically smallest first
	edges []lockEdge
}

// summarizeLockOrder records one package's function summaries.
func summarizeLockOrder(p *Pass, store *Store) error {
	if !summarizable(p) {
		return nil
	}
	lf := store.lockFacts()
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		units := funcUnits(f)
		ids := unitIDs(p, units)
		for i, u := range units {
			sum := summarizeLockUnit(p, u)
			if sum == nil {
				continue
			}
			id := ids[i]
			if _, dup := lf.funcs[id]; !dup {
				lf.funcs[id] = sum
				lf.order = append(lf.order, id)
			}
		}
	}
	return nil
}

// summarizeLockUnit runs the may-hold dataflow over one function and
// extracts its summary; nil when the function touches no locks and
// makes no calls worth recording.
func summarizeLockUnit(p *Pass, u funcUnit) *lockSummary {
	g := buildCFG(u.body)
	reach := g.reachable()

	// Intern the lock classes this function mentions.
	lockIdx := map[string]int{}
	var lockIDs []string
	intern := func(id string) int {
		if i, ok := lockIdx[id]; ok {
			return i
		}
		i := len(lockIDs)
		if i >= 64 {
			return -1
		}
		lockIdx[id] = i
		lockIDs = append(lockIDs, id)
		return i
	}
	type lockEvent struct {
		idx      int
		acquire  bool
		deferred bool
		pos      token.Pos
	}
	type callEvent struct {
		fn  *types.Func
		pos token.Pos
		gof bool // spawned via go: callee runs with an empty held-set
	}
	// Per-node events, computed once; the transfer function and the
	// final recording pass both replay them.
	events := map[ast.Node][]any{}
	touches := false
	for _, b := range reach {
		for _, n := range b.nodes {
			_, isDefer := n.(*ast.DeferStmt)
			_, isGo := n.(*ast.GoStmt)
			inspectShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, acquire, ok := lockCallSite(p, call); ok {
					if i := intern(id); i >= 0 {
						touches = true
						events[n] = append(events[n], lockEvent{idx: i, acquire: acquire, deferred: isDefer, pos: call.Pos()})
					}
					return true
				}
				if fn, ok := staticCallee(p, call); ok {
					events[n] = append(events[n], callEvent{fn: fn, pos: call.Pos(), gof: isGo})
				}
				return true
			})
		}
	}
	if !touches && len(events) == 0 {
		return nil
	}

	transfer := func(b *cfgBlock, in uint64) uint64 {
		held := in
		for _, n := range b.nodes {
			for _, ev := range events[n] {
				le, ok := ev.(lockEvent)
				if !ok {
					continue
				}
				switch {
				case le.acquire && !le.deferred:
					held |= uint64(1) << le.idx
				case !le.acquire && !le.deferred:
					held &^= uint64(1) << le.idx
				}
				// A deferred Unlock keeps the lock held to exit; a
				// deferred Lock is nonsense and ignored.
			}
		}
		return held
	}
	in := forward(g, 0, bitLattice(transfer))

	heldSet := func(mask uint64) []string {
		var out []string
		for i, id := range lockIDs {
			if mask&(uint64(1)<<i) != 0 {
				out = append(out, id)
			}
		}
		sort.Strings(out)
		return out
	}

	sum := &lockSummary{acquires: map[string]token.Position{}}
	for _, b := range reach {
		held := in[b.index]
		for _, n := range b.nodes {
			for _, ev := range events[n] {
				switch ev := ev.(type) {
				case lockEvent:
					id := lockIDs[ev.idx]
					if ev.acquire {
						pos := p.Fset.Position(ev.pos)
						if first, ok := sum.acquires[id]; !ok || posLess(pos, first) {
							sum.acquires[id] = pos
						}
						for _, h := range heldSet(held) {
							if h != id {
								sum.edges = append(sum.edges, lockEdge{from: h, to: id, site: pos})
							}
						}
						if !ev.deferred {
							held |= uint64(1) << ev.idx
						}
					} else if !ev.deferred {
						held &^= uint64(1) << ev.idx
					}
				case callEvent:
					h := heldSet(held)
					if ev.gof {
						h = nil // a spawned goroutine starts lock-free
					}
					sum.calls = append(sum.calls, lockCall{
						callee: funcID(ev.fn),
						held:   h,
						pos:    p.Fset.Position(ev.pos),
					})
				}
			}
		}
	}
	if len(sum.acquires) == 0 && len(sum.calls) == 0 {
		return nil
	}
	return sum
}

// lockCallSite recognizes sync mutex operations and resolves the lock
// class: ("pkg.Type.field" | "pkg.var" | "pkg.func.local@line",
// acquire?, ok).
func lockCallSite(p *Pass, call *ast.CallExpr) (string, bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	id, ok := lockClass(p, sel.X)
	if !ok {
		return "", false, false
	}
	return id, acquire, true
}

// lockClass abstracts the mutex operand to its declaration.
func lockClass(p *Pass, expr ast.Expr) (string, bool) {
	expr = ast.Unparen(expr)
	if un, ok := expr.(*ast.UnaryExpr); ok && un.Op == token.AND {
		expr = ast.Unparen(un.X)
	}
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		// x.mu — identify by the field's owning named type.
		s := p.Info.Selections[e]
		if s == nil {
			// Package-qualified var: pkg.Mu.
			if path := p.PkgNameOf(e.X); path != "" {
				return path + "." + e.Sel.Name, true
			}
			return "", false
		}
		recv := s.Recv()
		for {
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
				continue
			}
			break
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return "", false
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name, true
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			return "", false
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", false
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
		// Function-local mutex: scoped by declaration position, so two
		// locals of the same name in different functions stay distinct.
		return fmt.Sprintf("%s.%s@%d", v.Pkg().Path(), v.Name(), p.Fset.Position(v.Pos()).Line), true
	}
	return "", false
}

// runLockOrder finalizes the global graph once, then reports the
// cycles whose witness lives in this package — so escapes filter at
// the lock site they annotate.
func runLockOrder(p *Pass) error {
	if p.Store == nil || p.Store.locks == nil {
		return nil
	}
	lf := p.Store.locks
	lf.finalize()
	if len(lf.cycles) == 0 {
		return nil
	}
	files := map[string]bool{}
	for _, f := range p.Files {
		files[p.Fset.Position(f.Pos()).Filename] = true
	}
	for _, c := range lf.cycles {
		if !files[c.edges[0].site.Filename] {
			continue
		}
		p.report(Diagnostic{
			Analyzer: p.Analyzer.Name,
			Pos:      c.edges[0].site,
			Message:  c.message(),
		})
	}
	return nil
}

func (c lockCycle) message() string {
	var b strings.Builder
	fmt.Fprintf(&b, "potential deadlock: lock acquisition cycle %s", strings.Join(append(append([]string{}, c.locks...), c.locks[0]), " -> "))
	for _, e := range c.edges {
		fmt.Fprintf(&b, "; %s acquired at %s while %s held", shortLock(e.to), shortPos(e.site), shortLock(e.from))
		if len(e.via) > 0 {
			var via []string
			for _, v := range e.via {
				via = append(via, shortPos(v))
			}
			fmt.Fprintf(&b, " (via %s)", strings.Join(via, " -> "))
		}
	}
	return b.String()
}

// shortLock trims the module path prefix from a lock class for the
// message ("netsim.Network.mu").
func shortLock(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

func shortPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// finalize runs the global fixpoint and cycle detection.
func (lf *lockFacts) finalize() {
	if lf.finalized {
		return
	}
	lf.finalized = true

	ids := append([]string{}, lf.order...)
	sort.Strings(ids)

	// reach[f][lock] = witness trail to an acquisition of lock from f:
	// the call positions walked, ending at the acquire site.
	reach := map[string]map[string][]token.Position{}
	for _, f := range ids {
		m := map[string][]token.Position{}
		for lock, pos := range lf.funcs[f].acquires {
			m[lock] = []token.Position{pos}
		}
		reach[f] = m
	}
	for changed := true; changed; {
		changed = false
		for _, f := range ids {
			for _, call := range lf.funcs[f].calls {
				sub := reach[call.callee]
				if sub == nil {
					continue
				}
				locks := make([]string, 0, len(sub))
				for l := range sub {
					locks = append(locks, l)
				}
				sort.Strings(locks)
				for _, l := range locks {
					if _, ok := reach[f][l]; ok {
						continue
					}
					trail := append([]token.Position{call.pos}, sub[l]...)
					if len(trail) > 6 {
						trail = trail[:6] // cap witness depth
					}
					reach[f][l] = trail
					changed = true
				}
			}
		}
	}

	// Assemble the global edge set: direct edges plus held-at-call ×
	// transitively-acquired-by-callee. Deduplicate by (from, to),
	// keeping the positionally-smallest witness for determinism.
	edges := map[[2]string]lockEdge{}
	addEdge := func(e lockEdge) {
		key := [2]string{e.from, e.to}
		if old, ok := edges[key]; ok {
			if witnessLess(old, e) {
				return
			}
		}
		edges[key] = e
	}
	for _, f := range ids {
		sum := lf.funcs[f]
		for _, e := range sum.edges {
			addEdge(e)
		}
		for _, call := range sum.calls {
			if len(call.held) == 0 {
				continue
			}
			sub := reach[call.callee]
			if sub == nil {
				continue
			}
			locks := make([]string, 0, len(sub))
			for l := range sub {
				locks = append(locks, l)
			}
			sort.Strings(locks)
			for _, to := range locks {
				trail := sub[to]
				site := trail[len(trail)-1]
				via := append([]token.Position{call.pos}, trail[:len(trail)-1]...)
				for _, from := range call.held {
					if from == to {
						continue
					}
					addEdge(lockEdge{from: from, to: to, site: site, via: via})
				}
			}
		}
	}

	lf.cycles = findLockCycles(edges)
}

func witnessLess(a, b lockEdge) bool {
	if !posEq(a.site, b.site) {
		return posLess(a.site, b.site)
	}
	return len(a.via) < len(b.via)
}

func posEq(a, b token.Position) bool {
	return a.Filename == b.Filename && a.Line == b.Line && a.Column == b.Column
}

// findLockCycles enumerates the elementary cycles of the edge graph,
// canonicalized to start at their lexicographically-smallest lock, in
// deterministic order.
func findLockCycles(edges map[[2]string]lockEdge) []lockCycle {
	adj := map[string][]string{}
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	for _, succs := range adj {
		sort.Strings(succs)
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var cycles []lockCycle
	const maxCycles, maxLen = 64, 8
	var path []string
	onPath := map[string]bool{}
	var dfs func(start, at string)
	dfs = func(start, at string) {
		if len(cycles) >= maxCycles || len(path) > maxLen {
			return
		}
		for _, next := range adj[at] {
			if next < start {
				continue // cycles are discovered from their smallest node
			}
			if next == start {
				locks := append([]string{}, path...)
				var es []lockEdge
				for i := range locks {
					es = append(es, edges[[2]string{locks[i], locks[(i+1)%len(locks)]}])
				}
				cycles = append(cycles, lockCycle{locks: locks, edges: es})
				continue
			}
			if onPath[next] {
				continue
			}
			path = append(path, next)
			onPath[next] = true
			dfs(start, next)
			onPath[next] = false
			path = path[:len(path)-1]
		}
	}
	for _, n := range nodes {
		path = append(path[:0], n)
		onPath = map[string]bool{n: true}
		dfs(n, n)
	}
	return cycles
}
