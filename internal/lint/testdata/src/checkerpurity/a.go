// Package checkerpurity exercises the checker-purity call-graph walk:
// impurity directly in a checker, reached through helpers and nested
// closures, History mutation and in-place sorting — and the silent
// shapes: pure checkers, and impure functions no checker reaches.
package checkerpurity

import (
	"fmt"
	"sort"
	"time"

	"neat/internal/history"
)

var hits int

// A checker writing package state.
func CheckCounts(h history.History) []history.Violation {
	hits++ // want `writes package-level state hits`
	return nil
}

// A checker reaching the wall clock through a helper.
func CheckFresh(h history.History) []history.Violation {
	if stale() {
		return nil
	}
	return nil
}

func stale() bool {
	return time.Now().IsZero() // want `reads the wall clock`
}

// Sorting the shared History reorders the recorder's slice under
// every other checker.
func CheckSorted(h history.History) []history.Violation {
	sort.Slice(h, func(i, j int) bool { return i < j }) // want `sorts the History argument h in place`
	return nil
}

// Overwriting an element corrupts the shared history.
func CheckScrub(h history.History) []history.Violation {
	h[0] = history.Op{} // want `mutates the History argument h in place`
	return nil
}

// The closure runs under the checker: its impurity counts.
func CheckNested(h history.History) []history.Violation {
	debug := func() {
		println("checking") // want `writes to stderr`
	}
	debug()
	return nil
}

// Pure: reads, allocates, formats — fine.
func CheckPure(h history.History) []history.Violation {
	var out []history.Violation
	for _, op := range h {
		_ = fmt.Sprintf("%v", op)
	}
	return out
}

// Impure but unreachable from any checker: out of scope.
func logStats() {
	fmt.Println("stats")
}
