// Package tokenbalance exercises the busy-token balance dataflow:
// tokens leaked on early returns and panic paths, flavour mismatches,
// and the legal shapes — deferred releases, both-arm releases, the
// goroutine handoff idiom, and consuming a token acquired elsewhere.
package tokenbalance

import (
	"errors"

	"neat/internal/clock"
)

type worker struct {
	clk clock.Clock
	ch  chan int
}

// The error path returns with the token outstanding.
func (w *worker) leakOnError(down bool) error {
	clock.Acquire(w.clk) // want `may not be released on every path`
	if down {
		return errors.New("down")
	}
	clock.Release(w.clk)
	return nil
}

// Only a deferred release survives a panic unwind.
func (w *worker) leakOnPanic(bad bool) {
	clock.AcquireScoped(w.clk) // want `not released on a panic path`
	if bad {
		panic("bad")
	}
	clock.ReleaseScoped(w.clk)
}

// Flavours don't cross: a scoped release cannot retire a transfer
// token.
func (w *worker) flavourMismatch() {
	clock.Acquire(w.clk) // want `may not be released on every path`
	clock.ReleaseScoped(w.clk)
}

// Deferred release covers every exit, panics included.
func (w *worker) deferred(bad bool) {
	clock.Acquire(w.clk)
	defer clock.Release(w.clk)
	if bad {
		panic("bad")
	}
}

// A deferred closure performing the release also covers the unwind.
func (w *worker) deferredClosure() {
	clock.AcquireScoped(w.clk)
	defer func() {
		clock.ReleaseScoped(w.clk)
	}()
}

// Release on both arms: clean.
func (w *worker) bothArms(fast bool) error {
	clock.Acquire(w.clk)
	if fast {
		clock.Release(w.clk)
		return nil
	}
	clock.Release(w.clk)
	return errors.New("slow")
}

// The handoff idiom: the spawned body takes ownership and releases.
func (w *worker) handoff() {
	clock.Acquire(w.clk)
	go func() {
		w.ch <- 1
		clock.Release(w.clk)
	}()
}

// A release with no local acquire is the transfer scheme working as
// designed: the token arrived from another goroutine.
func (w *worker) consumer() {
	<-w.ch
	clock.Release(w.clk)
}

// BecomeScoped retires the transfer obligation by rebinding it into
// the goroutine's scope.
func (w *worker) rebind() {
	clock.Acquire(w.clk)
	clock.BecomeScoped(w.clk)
}
