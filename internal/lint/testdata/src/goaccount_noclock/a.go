// Fixture for the goaccount analyzer's scope rule: a package that
// does not import neat/internal/clock never participates in virtual
// time, so its bare go statements are out of scope — no diagnostics.
package goaccountnoclock

func work(done chan struct{}) {
	go func() {
		close(done)
	}()
}
