// Fixture for the realclock analyzer: every package time entry point
// that reads or waits on the wall clock is flagged; pure value
// constructors and Duration arithmetic are not.
package realclockfix

import (
	"time"

	tt "time"
)

func now() time.Time { return time.Now() } // want "time.Now outside internal/clock"

func sleep() { time.Sleep(time.Millisecond) } // want "time.Sleep outside internal/clock"

func after() <-chan time.Time { return time.After(1) } // want "time.After outside internal/clock"

func tick() <-chan time.Time { return time.Tick(1) } // want "time.Tick outside internal/clock"

func timer() *time.Timer { return time.NewTimer(1) } // want "time.NewTimer outside internal/clock"

func ticker() *time.Ticker { return time.NewTicker(1) } // want "time.NewTicker outside internal/clock"

func afterFunc() *time.Timer { return time.AfterFunc(1, func() {}) } // want "time.AfterFunc outside internal/clock"

// The analyzer resolves the package through the type checker, so a
// renamed import does not evade it.
func renamed() tt.Time { return tt.Now() } // want "time.Now outside internal/clock"

func durationsFine() time.Duration { return 5 * time.Second }

func dateFine() time.Time { return time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC) }

func escapedSameLine() time.Time {
	return time.Now() //neat:allow realclock -- fixture: audited same-line exception
}

func escapedLineAbove() time.Time {
	//neat:allow realclock -- fixture: audited comment-above exception
	return time.Now()
}
