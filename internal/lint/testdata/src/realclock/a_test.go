package realclockfix

import (
	"testing"
	"time"
)

// Benchmark bodies measure the wall clock on purpose — exempt.
func BenchmarkFine(b *testing.B) {
	start := time.Now()
	for i := 0; i < b.N; i++ {
		_ = i
	}
	_ = start
}

// Everything else in a test file is still flagged; deliberate
// real-clock tests carry a //neat:allow-file escape instead.
func TestFlagged(t *testing.T) {
	time.Sleep(time.Millisecond) // want "time.Sleep outside internal/clock"
}
