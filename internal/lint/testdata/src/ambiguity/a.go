// Fixture for the ambiguity analyzer: Endpoint.Call's error is the
// carrier of the silent-success window; dropping it, blanking it, or
// merely nil-checking it is flagged. Propagating or classifying it is
// the sanctioned shape. Type-checks against the real transport
// package — the multi-package case.
package ambiguityfix

import (
	"fmt"
	"time"

	"neat/internal/netsim"
	"neat/internal/transport"
)

func drop(ep *transport.Endpoint) {
	ep.Call("n1", "ping", nil, time.Second) // want "outcome discarded"
}

func dropAsync(ep *transport.Endpoint) {
	go ep.Call("n1", "ping", nil, time.Second) // want "outcome discarded"
}

func blank(ep *transport.Endpoint) any {
	r, _ := ep.Call("n1", "ping", nil, time.Second) // want "error discarded"
	return r
}

func nilOnly(ep *transport.Endpoint) string {
	r, err := ep.Call("n1", "ping", nil, time.Second) // want `error "err" is nil-checked but never classified`
	if err != nil {
		return "failed"
	}
	return fmt.Sprint(r)
}

func propagated(ep *transport.Endpoint) (any, error) {
	return ep.Call("n1", "ping", nil, time.Second)
}

func rethrown(ep *transport.Endpoint) error {
	_, err := ep.Call("n1", "ping", nil, time.Second)
	if err != nil {
		return fmt.Errorf("ping: %w", err)
	}
	return nil
}

func classified(ep *transport.Endpoint, dst netsim.NodeID) bool {
	_, err := ep.Call(dst, "ping", nil, time.Second)
	return transport.MaybeExecuted(err)
}

func escaped(ep *transport.Endpoint) {
	//neat:allow ambiguity -- fixture: fire-and-forget probe, outcome irrelevant
	ep.Call("n1", "ping", nil, time.Second)
}
