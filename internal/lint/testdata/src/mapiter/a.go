// Fixture for the mapiter analyzer: order-sensitive bodies inside
// range-over-map loops are flagged; the collect/sort/iterate idiom and
// order-independent bodies are not.
package mapiterfix

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to "out" in iteration order`
		out = append(out, k)
	}
	return out
}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func keysSortSlice(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func keysSlicesSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func sortNodes(xs []string) { sort.Strings(xs) }

func keysHelperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortNodes(out)
	return out
}

func prints(m map[string]int) {
	for k, v := range m { // want `writes output \(fmt.Printf\)`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func builds(m map[string]int, b *strings.Builder) {
	for k := range m { // want `writes output \(WriteString\)`
		b.WriteString(k)
	}
}

func sends(m map[string]int, ch chan string) {
	for k := range m { // want "sends on a channel"
		ch <- k
	}
}

func sums(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func copies(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func innerSlice(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// A nested function literal is its own scope: the append inside it
// targets a slice declared outside the map range, so it is flagged
// there, not suppressed by the outer function's structure.
func closure(m map[string]int) func() []string {
	var out []string
	collect := func() {
		for k := range m { // want `appends to "out" in iteration order`
			out = append(out, k)
		}
	}
	collect()
	return func() []string { return out }
}
