// Fixture for the escape-comment convention: line escapes cover their
// own line and the line below, file escapes (see b.go) cover a whole
// file, and a malformed escape — no reason — is itself a diagnostic
// and suppresses nothing.
package escapesfix

import "time"

//neat:allow realclock -- fixture: covers the declaration below
var t0 = time.Now()

func sameLine() time.Time {
	return time.Now() //neat:allow realclock -- fixture: same-line escape
}

func emDash() time.Time {
	return time.Now() //neat:allow realclock — fixture: em-dash separator
}

func malformed() {
	//neat:allow realclock // want "escape comment needs a reason"
	time.Sleep(1) // want "time.Sleep outside internal/clock"
}

func uncovered() time.Time {
	//neat:allow mapiter -- fixture: names the wrong analyzer
	return time.Now() // want "time.Now outside internal/clock"
}
