//neat:allow-file realclock -- fixture: whole file is wall-clock territory
package escapesfix

import "time"

func wallOne() time.Time { return time.Now() }

func wallTwo() { time.Sleep(time.Millisecond) }
