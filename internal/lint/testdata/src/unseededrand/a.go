// Fixture for the unseededrand analyzer: global math/rand calls,
// wall-clock seeds, and crypto/rand imports are flagged; explicitly
// seeded sources are the sanctioned shape.
package unseededrandfix

import (
	crand "crypto/rand" // want "crypto/rand in deterministic code"
	mrand "math/rand"
	r2 "math/rand/v2"
	"time"
)

var _ = crand.Reader

func global() int { return mrand.Intn(10) } // want "global math/rand.Intn"

func globalV2() int { return r2.IntN(10) } // want "global math/rand/v2.IntN"

func wallSeed() *mrand.Rand {
	return mrand.New(mrand.NewSource(time.Now().UnixNano())) // want "math/rand.NewSource seeded from the wall clock"
}

func seededFine(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed))
}

func seededV2Fine(a, b uint64) *r2.Rand {
	return r2.New(r2.NewPCG(a, b))
}

func derivedFine(rng *mrand.Rand) int { return rng.Intn(10) }
