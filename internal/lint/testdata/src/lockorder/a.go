// Package lockorder exercises the inter-procedural acquisition-order
// graph: a direct two-lock cycle, a cycle closed through a call chain,
// and the shapes that must stay silent — consistent ordering, deferred
// unlocks, goroutine separation, and same-class instance pairs.
package lockorder

import "sync"

var mu1, mu2 sync.Mutex

// The A->B half of the direct cycle.
func firstThenSecond() {
	mu1.Lock()
	mu2.Lock() // want `lock acquisition cycle`
	mu2.Unlock()
	mu1.Unlock()
}

// The B->A half.
func secondThenFirst() {
	mu2.Lock()
	mu1.Lock()
	mu1.Unlock()
	mu2.Unlock()
}

var mu3, mu4 sync.Mutex

// Half a cycle through a call: mu3 held across the call into
// grabFourth.
func thirdThenCall() {
	mu3.Lock()
	grabFourth()
	mu3.Unlock()
}

func grabFourth() {
	mu4.Lock() // want `lock acquisition cycle`
	mu4.Unlock()
}

// The reverse order closes the cycle directly.
func fourthThenThird() {
	mu4.Lock()
	mu3.Lock()
	mu3.Unlock()
	mu4.Unlock()
}

var mu5, mu6 sync.Mutex

// Consistent ordering everywhere, deferred unlocks included: silent.
func orderedA() {
	mu5.Lock()
	defer mu5.Unlock()
	mu6.Lock()
	defer mu6.Unlock()
}

func orderedB() {
	mu5.Lock()
	mu6.Lock()
	mu6.Unlock()
	mu5.Unlock()
}

var mu7, mu8 sync.Mutex

// Holding mu7 while spawning a goroutine that locks mu8 orders
// nothing: the spawned goroutine starts lock-free.
func spawnWhileHolding() {
	mu7.Lock()
	go lockEighth()
	mu7.Unlock()
}

func lockEighth() {
	mu8.Lock()
	mu8.Unlock()
}

// So the reverse order elsewhere is not a cycle.
func eighthThenSeventh() {
	mu8.Lock()
	mu7.Lock()
	mu7.Unlock()
	mu8.Unlock()
}

type node struct{ mu sync.Mutex }

// Two instances of one class: the abstraction cannot tell them apart,
// so the self-edge is skipped rather than reported.
func handover(a, b *node) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
