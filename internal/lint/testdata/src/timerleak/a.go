// Package timerleak exercises the may-be-unstopped timer dataflow:
// leaks on early returns and panic paths, and every kill — Stop on all
// paths, deferred Stop, escape to a new owner — plus the CFG corner
// cases (defer-in-loop, labeled break, panic/recover).
package timerleak

import (
	"errors"
	"time"

	"neat/internal/clock"
)

type svc struct {
	clk  clock.Clock
	tick clock.Ticker
}

// The error path returns before Stop.
func (s *svc) leakOnError(down bool) error {
	t := s.clk.NewTicker(time.Second) // want `may not reach Stop on every path`
	if down {
		return errors.New("down")
	}
	<-t.C()
	t.Stop()
	return nil
}

// Every normal path stops, but only a deferred Stop survives a panic
// unwind.
func (s *svc) leakOnPanic(bad bool) {
	t := s.clk.NewTimer(time.Second) // want `not stopped on a panic path`
	if bad {
		panic("bad")
	}
	t.Stop()
}

// Discarded outright: nothing can ever stop it.
func (s *svc) discard() {
	s.clk.NewTicker(time.Second) // want `result of NewTicker discarded`
}

// Deferred Stop covers every exit, panics included.
func (s *svc) deferred(bad bool) {
	t := s.clk.NewTimer(time.Second)
	defer t.Stop()
	if bad {
		panic("bad")
	}
	<-t.C()
}

// Stop on both arms of the branch: clean.
func (s *svc) bothArms(fast bool) {
	t := s.clk.NewTimer(time.Second)
	if fast {
		t.Stop()
		return
	}
	<-t.C()
	t.Stop()
}

// Handing the ticker to a spawned loop transfers the Stop obligation.
func (s *svc) handoff(stop chan struct{}) {
	t := s.clk.NewTicker(time.Second)
	go func() {
		defer t.Stop()
		<-stop
	}()
}

// Storing into a field transfers ownership to the struct's Close path.
func (s *svc) stash() {
	s.tick = s.clk.NewTicker(time.Second)
}

// Defer-in-loop: each iteration's registration is conditional on the
// iteration executing, and each deferred Stop covers its ticker.
func (s *svc) deferInLoop(n int) {
	for i := 0; i < n; i++ {
		t := s.clk.NewTicker(time.Second)
		defer t.Stop()
	}
}

// Labeled break: the exit through the label still passes Stop.
func (s *svc) labeledBreak(stop chan struct{}) {
	t := s.clk.NewTicker(time.Second)
outer:
	for {
		select {
		case <-t.C():
		case <-stop:
			break outer
		}
	}
	t.Stop()
}

// The return inside the select skips the Stop after the labeled loop.
func (s *svc) labeledLeak(stop chan struct{}, drop bool) {
	t := s.clk.NewTicker(time.Second) // want `may not reach Stop on every path`
outer:
	for {
		select {
		case <-t.C():
			if drop {
				return
			}
		case <-stop:
			break outer
		}
	}
	t.Stop()
}

// A deferred recover-closure that stops the timer discharges the
// obligation on both the normal and the panicking exit.
func (s *svc) recoverStop(bad bool) {
	t := s.clk.NewTimer(time.Second)
	defer func() {
		recover()
		t.Stop()
	}()
	if bad {
		panic("bad")
	}
}
