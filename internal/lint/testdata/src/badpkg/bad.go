// Package badpkg deliberately violates every determinism-contract
// analyzer. It compiles cleanly — CI's lint-smoke step runs neat-lint
// against it and asserts the gate fires, so a silently broken checker
// cannot pass for a clean repo.
package badpkg

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/history"
	"neat/internal/netsim"
	"neat/internal/transport"
)

type noisy struct {
	clk clock.Clock
}

// realclock: wall-clock read outside internal/clock.
func Wall() time.Time { return time.Now() }

// unseededrand: draws from the process-global source.
func Roll() int { return rand.Intn(6) }

// mapiter: iteration order leaks into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// goaccount: bare spawn in a clock-importing package.
func (n *noisy) Spawn() {
	go fmt.Println("unaccounted")
}

// ambiguity: the silent-success window is dropped on the floor.
func Fire(ep *transport.Endpoint, dst netsim.NodeID) {
	ep.Call(dst, "ping", nil, time.Second)
}

// timerleak: the error path returns without stopping the ticker.
func (n *noisy) Tick(down bool) error {
	t := n.clk.NewTicker(time.Second)
	if down {
		return fmt.Errorf("down")
	}
	<-t.C()
	t.Stop()
	return nil
}

// tokenbalance: the panic path unwinds past the inline release.
func (n *noisy) Work(bad bool) {
	clock.Acquire(n.clk)
	if bad {
		panic("wedged")
	}
	clock.Release(n.clk)
}

var (
	muA sync.Mutex
	muB sync.Mutex
)

// lockorder: A-then-B here, B-then-A below — an acquisition cycle.
func BothAB() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func BothBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

var checked int

// checkerpurity: a history checker mutating package state.
func CheckNothing(h history.History) []history.Violation {
	checked++
	return nil
}
