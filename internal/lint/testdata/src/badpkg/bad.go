// Package badpkg deliberately violates every determinism-contract
// analyzer. It compiles cleanly — CI's lint-smoke step runs neat-lint
// against it and asserts the gate fires, so a silently broken checker
// cannot pass for a clean repo.
package badpkg

import (
	"fmt"
	"math/rand"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
	"neat/internal/transport"
)

type noisy struct {
	clk clock.Clock
}

// realclock: wall-clock read outside internal/clock.
func Wall() time.Time { return time.Now() }

// unseededrand: draws from the process-global source.
func Roll() int { return rand.Intn(6) }

// mapiter: iteration order leaks into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// goaccount: bare spawn in a clock-importing package.
func (n *noisy) Spawn() {
	go fmt.Println("unaccounted")
}

// ambiguity: the silent-success window is dropped on the floor.
func Fire(ep *transport.Endpoint, dst netsim.NodeID) {
	ep.Call(dst, "ping", nil, time.Second)
}
