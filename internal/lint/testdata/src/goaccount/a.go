// Fixture for the goaccount analyzer: bare go statements in a
// clock-importing package are flagged unless the spawned body engages
// the busy-token scheme (clock.Go, clock.TickLoop, scoped tokens).
// This fixture type-checks against the real neat/internal/clock
// package — the multi-package case.
package goaccountfix

import (
	"neat/internal/clock"
)

type svc struct {
	clk  clock.Clock
	stop chan struct{}
}

// tickLoop engages TickLoop, so launching it with a bare go statement
// is the repo's sanctioned service-loop idiom.
func (s *svc) tickLoop(tk clock.Ticker) {
	clock.TickLoop(s.clk, tk, s.stop, func() {})
}

// plainLoop never touches the token scheme.
func (s *svc) plainLoop() {
	for range s.stop {
	}
}

func (s *svc) Start() {
	tk := s.clk.NewTicker(1)
	go s.tickLoop(tk)
	go s.plainLoop() // want "bare go statement in a clock-participating package"
	go func() {      // want "bare go statement in a clock-participating package"
		<-s.stop
	}()
	go func() {
		clock.TickLoop(s.clk, tk, s.stop, func() {})
	}()
	clock.Go(s.clk, func() {})
	clock.Idle(s.clk, func() { <-s.stop })
}

// A spawned body doing scoped-token accounting (the dispatcher idiom)
// is accounted by construction.
func (s *svc) dispatch() {
	gid := clock.Gid()
	_ = gid
	clock.ReleaseScoped(s.clk)
}

func (s *svc) StartDispatcher() {
	go s.dispatch()
}

func (s *svc) Escaped() {
	//neat:allow goaccount -- fixture: deliberate unaccounted helper
	go s.plainLoop()
}
