package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseCFG builds the CFG of the first function declared in src.
func parseCFG(t *testing.T, body string) *funcCFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	decl := f.Decls[0].(*ast.FuncDecl)
	return buildCFG(decl.Body)
}

func reaches(g *funcCFG, b *cfgBlock) bool {
	for _, r := range g.reachable() {
		if r == b {
			return true
		}
	}
	return false
}

func TestCFGStraightLine(t *testing.T) {
	g := parseCFG(t, "x := 1\n_ = x")
	if !reaches(g, g.exit) {
		t.Error("straight-line body: exit should be reachable")
	}
	if reaches(g, g.panicExit) {
		t.Error("straight-line body: panic exit should be unreachable")
	}
}

func TestCFGPanicOnly(t *testing.T) {
	g := parseCFG(t, `panic("x")`)
	if reaches(g, g.exit) {
		t.Error("unconditional panic: normal exit should be unreachable")
	}
	if !reaches(g, g.panicExit) {
		t.Error("unconditional panic: panic exit should be reachable")
	}
}

func TestCFGConditionalPanic(t *testing.T) {
	g := parseCFG(t, "if cond() {\n\tpanic(\"x\")\n}")
	if !reaches(g, g.exit) || !reaches(g, g.panicExit) {
		t.Error("conditional panic: both exits should be reachable")
	}
}

func TestCFGInfiniteLoop(t *testing.T) {
	g := parseCFG(t, "for {\n\tstep()\n}")
	if reaches(g, g.exit) {
		t.Error("bare for{}: exit should be unreachable")
	}
}

func TestCFGLoopBreak(t *testing.T) {
	g := parseCFG(t, "for {\n\tif cond() {\n\t\tbreak\n\t}\n}")
	if !reaches(g, g.exit) {
		t.Error("for with break: exit should be reachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := parseCFG(t, "outer:\nfor {\n\tfor {\n\t\tif cond() {\n\t\t\tbreak outer\n\t\t}\n\t}\n}")
	if !reaches(g, g.exit) {
		t.Error("labeled break out of a nested loop: exit should be reachable")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	g := parseCFG(t, "outer:\nfor i := 0; i < n; i++ {\n\tfor {\n\t\tcontinue outer\n\t}\n}")
	if !reaches(g, g.exit) {
		t.Error("labeled continue: the outer post/cond path to exit should be reachable")
	}
}

func TestCFGGotoLoop(t *testing.T) {
	// A goto cycle must neither hang construction nor reach exit.
	g := parseCFG(t, "l:\ngoto l")
	if reaches(g, g.exit) {
		t.Error("goto self-loop: exit should be unreachable")
	}
}

func TestCFGSelectBlocksForever(t *testing.T) {
	g := parseCFG(t, "select {}")
	if reaches(g, g.exit) {
		t.Error("empty select blocks forever: exit should be unreachable")
	}
}

func TestCFGSwitchDefaultExhausts(t *testing.T) {
	// Every clause returns, default included: fallthrough to exit only
	// via the returns.
	g := parseCFG(t, "switch x() {\ncase 1:\n\treturn\ndefault:\n\treturn\n}\nstep()")
	// The trailing step() is dead; exit is still reachable through the
	// returns.
	if !reaches(g, g.exit) {
		t.Error("switch of returns: exit should be reachable")
	}
}

func TestCFGReachableDeterministic(t *testing.T) {
	g := parseCFG(t, "for i := 0; i < n; i++ {\n\tif cond() {\n\t\tcontinue\n\t}\n\tstep()\n}")
	a := g.reachable()
	b := g.reachable()
	if len(a) != len(b) {
		t.Fatalf("reachable() not stable: %d vs %d blocks", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reachable() order not stable at %d", i)
		}
	}
}

// TestForwardJoin drives the solver over a diamond: a fact genned in
// one arm must be present (may-analysis) at the join and at exit.
func TestForwardJoin(t *testing.T) {
	g := parseCFG(t, "if cond() {\n\tgen()\n}\nstep()")
	// Transfer: seeing the gen() call sets bit 0.
	lat := bitLattice(func(b *cfgBlock, in uint64) uint64 {
		out := in
		for _, n := range b.nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "gen" {
						out |= 1
					}
				}
				return true
			})
		}
		return out
	})
	in := forward(g, 0, lat)
	if in[g.exit.index]&1 == 0 {
		t.Error("may-fact genned on one arm should survive the join to exit")
	}
}
