package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// The machine-readable report: what CI dashboards and editor
// integrations consume instead of scraping the text output. Field
// order, slice order (position-sorted by Run), and the trailing
// newline are all fixed, so the same diagnostics always serialize to
// the same bytes — the report is diffable and cacheable like any other
// build artifact.
type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Escapes     []jsonEscape     `json:"escapes"`
}

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonEscape struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	FileWide  bool     `json:"fileWide"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
	// Used counts the diagnostics the escape suppressed in this run;
	// 0 under the full suite means the escape is stale.
	Used int `json:"used"`
}

// WriteJSON renders the run's diagnostics and escape audit as
// deterministic, indented JSON. File paths are relativized to root
// when they live under it, so reports are stable across checkouts.
func WriteJSON(w io.Writer, root string, diags []Diagnostic, escapes []*Escape) error {
	rep := jsonReport{
		Diagnostics: make([]jsonDiagnostic, 0, len(diags)),
		Escapes:     make([]jsonEscape, 0, len(escapes)),
	}
	for _, d := range diags {
		rep.Diagnostics = append(rep.Diagnostics, jsonDiagnostic{
			File:     jsonRel(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	for _, e := range escapes {
		rep.Escapes = append(rep.Escapes, jsonEscape{
			File:      jsonRel(root, e.Pos.Filename),
			Line:      e.Pos.Line,
			FileWide:  e.FileWide,
			Analyzers: e.Analyzers,
			Reason:    e.Reason,
			Used:      e.Used,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(rep)
}

// jsonRel relativizes path to root, keeping forward slashes so the
// bytes match across platforms; paths outside root stay absolute.
func jsonRel(root, path string) string {
	if root == "" {
		return path
	}
	r, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(r, "..") {
		return path
	}
	return filepath.ToSlash(r)
}
