package lint

// All returns the determinism-contract analyzer suite, in reporting
// order: the five statement-local analyzers plus the four
// flow-sensitive ones built on the CFG/dataflow engine.
func All() []*Analyzer {
	return []*Analyzer{
		Ambiguity,
		CheckerPurity,
		GoAccount,
		LockOrder,
		MapIter,
		RealClock,
		TimerLeak,
		TokenBalance,
		UnseededRand,
	}
}

// ByName resolves analyzer names ("realclock,mapiter"); unknown names
// return nil, false.
func ByName(names []string) ([]*Analyzer, bool) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
