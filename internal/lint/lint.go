// Package lint is the determinism-contract checker: a suite of static
// analyzers, in the shape of golang.org/x/tools/go/analysis but built
// on the standard library alone, that machine-checks the invariants
// everything in this reproduction rests on — byte-identical same-seed
// replays, exact distributed shrinking, witness traces that mean
// something. No compiler enforces them; before this package they were
// guarded by a three-package CI grep and reviewer vigilance.
//
// The statement-local analyzers:
//
//   - realclock: no time.Now/Sleep/After/Tick/NewTimer/NewTicker/
//     AfterFunc outside internal/clock (and _test.go benchmarks) —
//     time flows from clock.Clock.
//   - unseededrand: no global math/rand source, no wall-clock-seeded
//     sources, no crypto/rand in deterministic code — randomness flows
//     from the seeded schedule.
//   - mapiter: no range over a map that appends to an outer slice,
//     writes output, or sends on a channel without the sorted-keys
//     idiom — the classic replay-divergence source.
//   - goaccount: no bare go statements in clock-participating packages
//     — goroutines are accounted to the virtual clock's busy-token
//     scheme via clock.Go / clock.TickLoop.
//   - ambiguity: no transport Endpoint.Call error dropped or merely
//     nil-checked — the silent-success window must be classified
//     (MarkMaybeExecuted / OutcomeOf) or propagated, never swallowed.
//
// The flow-sensitive analyzers, built on this package's CFG +
// forward-dataflow engine (cfg.go, dataflow.go) and the cross-package
// summary store (summary.go):
//
//   - lockorder: no cycles in the inter-procedural mutex
//     acquisition-order graph — a cycle is a potential deadlock on the
//     netsim/transport/campaign hot paths, reported with the full
//     witness chain of lock sites.
//   - timerleak: every clock.Clock NewTimer/NewTicker result reaches
//     Stop on all paths, early returns and panics included — a leaked
//     timer wedges Sim quiescence and surfaces only as a watchdog
//     engine-error.
//   - tokenbalance: busy-token Acquire/Release (transfer, scoped, and
//     gid-scoped flavours) balanced on every path — an unreleased
//     token freezes virtual time.
//   - checkerpurity: functions with the history.Check shape, and
//     everything they call, stay pure — no package-level writes, no
//     clock/rand/IO, no mutation of the received History — so
//     violation replay is exact and parallel checking is safe.
//
// Intentional exceptions are written in the code as audited escape
// comments (see escape.go):
//
//	//neat:allow realclock -- wall-clock watchdog, outside the sim
//	//neat:allow-file realclock -- real-deadline liveness polls
//
// cmd/neat-lint is the multichecker; CI runs it over the whole repo
// and fails on any diagnostic, printing the escape audit.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one determinism-contract check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and escape comments.
	Name string
	// Doc is the one-paragraph contract statement.
	Doc string
	// Run executes the check over one package, reporting findings via
	// pass.Reportf.
	Run func(pass *Pass) error
	// Summarize, when set, runs over every loaded package before any
	// Run pass, accumulating cross-package facts (function summaries)
	// into the store. Run passes read the store via pass.Store.
	Summarize func(pass *Pass, store *Store) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed sources (GoFiles plus in-package
	// test files; external test packages are separate passes).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type information recorded during the check.
	Info *types.Info
	// PkgPath is the package's import path ("neat/internal/clock").
	PkgPath string
	// Store holds the cross-package summaries accumulated during the
	// Summarize phase of this Run.
	Store *Store

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Imports reports whether the package imports path (directly).
func (p *Pass) Imports(path string) bool {
	for _, im := range p.Pkg.Imports() {
		if im.Path() == path {
			return true
		}
	}
	return false
}

// PkgNameOf resolves the package an identifier qualifies, when expr is
// a plain `pkg` qualifier in a selector — the import's path, or "".
func (p *Pass) PkgNameOf(expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run executes the analyzers over the loaded packages, filters out
// diagnostics covered by escape comments, and returns the surviving
// diagnostics (sorted by position, then analyzer) together with the
// escape audit.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []*Escape, error) {
	store := NewStore()
	// Phase 1: cross-package summaries. Every summarizing analyzer
	// sees every loaded package before any per-package Run pass, so
	// call-graph facts (lock acquisition sets, purity verdicts) are
	// complete regardless of package order.
	for _, a := range analyzers {
		if a.Summarize == nil {
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				Store:    store,
			}
			if err := a.Summarize(pass, store); err != nil {
				return nil, nil, fmt.Errorf("%s: summarizing %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	var diags []Diagnostic
	var escapes []*Escape
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				Store:    store,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		kept, esc := filterEscapes(pkg, raw)
		diags = append(diags, kept...)
		escapes = append(escapes, esc...)
	}
	sortDiagnostics(diags)
	sort.Slice(escapes, func(i, j int) bool {
		a, b := escapes[i].Pos, escapes[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return diags, escapes, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
