package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Busy-token flavours. Transfer tokens (Acquire/Release) follow a
// unit of work between goroutines; scoped tokens (AcquireScoped/
// ReleaseScoped) bind to the calling goroutine and are surrendered
// while it parks in a clock wait; gid-scoped tokens (AcquireScopedAs/
// ReleaseScopedAs) bind to another goroutine's scope. A token of one
// flavour can only be retired by its own flavour's release (or, for
// transfer tokens, rebound by BecomeScoped).
type tokenFlavour int

const (
	tokenTransfer tokenFlavour = iota
	tokenScoped
	tokenGid
	tokenNone
)

func (fl tokenFlavour) String() string {
	switch fl {
	case tokenTransfer:
		return "transfer"
	case tokenScoped:
		return "scoped"
	case tokenGid:
		return "gid-scoped"
	}
	return "?"
}

// acquireFlavours maps internal/clock's token entry points to the
// flavour they acquire, releaseFlavours to the flavour they retire.
// BecomeScoped retires a transfer token (rebinding it into the
// goroutine's scope, where it becomes a scoped obligation).
var acquireFlavours = map[string]tokenFlavour{
	"Acquire":         tokenTransfer,
	"AcquireScoped":   tokenScoped,
	"AcquireScopedAs": tokenGid,
}

var releaseFlavours = map[string]tokenFlavour{
	"Release":         tokenTransfer,
	"BecomeScoped":    tokenTransfer,
	"ReleaseScoped":   tokenScoped,
	"ReleaseScopedAs": tokenGid,
}

// TokenBalance reports busy-token acquisitions that may never be
// released on some path to the function's exit — including early
// error returns and explicit panic paths. The busy-token ledger is
// what lets clock.Sim decide "the system is quiescent, advance to the
// next timer": a token acquired and never released freezes virtual
// time forever (the round wedges until the wall-clock watchdog kills
// it), while a silently unbalanced path that releases elsewhere makes
// the freeze schedule-dependent — the worst kind of flaky. The
// analysis is a forward may-be-outstanding dataflow per function:
// clock.Acquire/AcquireScoped/AcquireScopedAs (package helpers or
// Busy methods) gen a fact of their flavour; a release of the same
// flavour — inline, deferred, deferred inside a closure, or inside a
// spawned goroutine body that takes ownership of the handoff — kills
// it. Releases without a matching local acquire are the transfer
// scheme working as designed (the token arrived from another
// goroutine) and are never reported. Test files and internal/clock
// itself are out of scope.
var TokenBalance = &Analyzer{
	Name: "tokenbalance",
	Doc: "require every busy-token Acquire/AcquireScoped to reach a same-flavour Release on all paths " +
		"(early returns and panics included); an unreleased token freezes Sim quiescence",
	Run: runTokenBalance,
}

func runTokenBalance(p *Pass) error {
	if p.PkgPath == clockPkgPath || !summarizable(p) || !p.Imports(clockPkgPath) {
		return nil
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, u := range funcUnits(f) {
			checkTokenUnit(p, u)
		}
	}
	return nil
}

// A tokenSite is one tracked acquisition.
type tokenSite struct {
	pos     token.Pos
	flavour tokenFlavour
	name    string // the acquiring call's name, for the message
}

func checkTokenUnit(p *Pass, u funcUnit) {
	g := buildCFG(u.body)
	reach := g.reachable()

	var sites []*tokenSite
	for _, b := range reach {
		for _, n := range b.nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue // a deferred acquire would be perverse; ignore
			}
			inspectShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, fl := tokenCallFlavour(p, call, acquireFlavours)
				if fl == tokenNone || len(sites) >= 64 {
					return true
				}
				sites = append(sites, &tokenSite{pos: call.Pos(), flavour: fl, name: name})
				return true
			})
		}
	}
	if len(sites) == 0 {
		return
	}
	flavourMask := func(fl tokenFlavour) uint64 {
		var m uint64
		for i, s := range sites {
			if s.flavour == fl {
				m |= uint64(1) << i
			}
		}
		return m
	}

	transfer := func(b *cfgBlock, in uint64) uint64 {
		facts := in
		for _, n := range b.nodes {
			facts = tokenNodeTransfer(p, n, sites, flavourMask, facts)
		}
		return facts
	}
	in := forward(g, 0, bitLattice(transfer))

	leakedExit := in[g.exit.index]
	leakedPanic := in[g.panicExit.index]
	for i, s := range sites {
		bit := uint64(1) << i
		switch {
		case leakedExit&bit != 0:
			p.Reportf(s.pos,
				"busy token from %s may not be released on every path: an outstanding %s token freezes Sim quiescence until the watchdog kills the round; release it (or defer the release) before every return",
				s.name, s.flavour)
		case leakedPanic&bit != 0:
			p.Reportf(s.pos,
				"busy token from %s is not released on a panic path: only a deferred release survives the unwind; defer the %s-flavour release",
				s.name, s.flavour)
		}
	}
}

// tokenNodeTransfer applies one statement's gen/kill effects. Any
// release of flavour fl kills every outstanding site of fl: tokens
// are counters, not values, so a release balances whichever
// acquisition is outstanding. (Two simultaneous outstanding tokens
// balanced by one release slip through — acceptable for an analyzer
// that must never cry wolf; no function in this codebase holds two.)
func tokenNodeTransfer(p *Pass, n ast.Node, sites []*tokenSite, flavourMask func(tokenFlavour) uint64, facts uint64) uint64 {
	if d, ok := n.(*ast.DeferStmt); ok {
		// defer clock.Release(c) / defer clock.ReleaseScoped(c) — or a
		// deferred closure performing the release — runs on every
		// later exit, normal or panicking.
		if _, fl := tokenCallFlavour(p, d.Call, releaseFlavours); fl != tokenNone {
			return facts &^ flavourMask(fl)
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			for _, fl := range nestedReleaseFlavours(p, lit.Body) {
				facts &^= flavourMask(fl)
			}
		}
		return facts
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			for i, s := range sites {
				if s.pos == m.Pos() {
					facts |= uint64(1) << i
				}
			}
			if _, fl := tokenCallFlavour(p, m, releaseFlavours); fl != tokenNone {
				facts &^= flavourMask(fl)
			}
		case *ast.GoStmt:
			// The handoff idiom: acquire, then spawn a body that
			// releases — ownership of the token moves to the spawned
			// goroutine. clock.Go performs exactly this internally.
			if lit, ok := m.Call.Fun.(*ast.FuncLit); ok {
				for _, fl := range nestedReleaseFlavours(p, lit.Body) {
					facts &^= flavourMask(fl)
				}
			}
		}
		return true
	})
	return facts
}

// tokenCallFlavour resolves a call against one of the flavour tables:
// a package-level helper (clock.Acquire(c)) or a Busy method
// (b.Acquire()), both living in internal/clock.
func tokenCallFlavour(p *Pass, call *ast.CallExpr, table map[string]tokenFlavour) (string, tokenFlavour) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", tokenNone
	}
	fl, ok := table[sel.Sel.Name]
	if !ok {
		return "", tokenNone
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != clockPkgPath {
		return "", tokenNone
	}
	if p.PkgNameOf(sel.X) == clockPkgPath {
		return "clock." + sel.Sel.Name, fl
	}
	return sel.Sel.Name, fl
}

// nestedReleaseFlavours lists the flavours released anywhere under
// body, nested lits included.
func nestedReleaseFlavours(p *Pass, body ast.Node) []tokenFlavour {
	seen := map[tokenFlavour]bool{}
	var out []tokenFlavour
	ast.Inspect(body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, fl := tokenCallFlavour(p, call, releaseFlavours); fl != tokenNone && !seen[fl] {
			seen[fl] = true
			out = append(out, fl)
		}
		return true
	})
	return out
}
