package lint_test

import (
	"path/filepath"
	"testing"

	"neat/internal/lint"
	"neat/internal/lint/linttest"
)

func TestRealClock(t *testing.T) {
	linttest.Run(t, "testdata/src/realclock", lint.RealClock)
}

func TestUnseededRand(t *testing.T) {
	linttest.Run(t, "testdata/src/unseededrand", lint.UnseededRand)
}

func TestMapIter(t *testing.T) {
	linttest.Run(t, "testdata/src/mapiter", lint.MapIter)
}

func TestGoAccount(t *testing.T) {
	linttest.Run(t, "testdata/src/goaccount", lint.GoAccount)
}

func TestGoAccountOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/src/goaccount_noclock", lint.GoAccount)
}

func TestAmbiguity(t *testing.T) {
	linttest.Run(t, "testdata/src/ambiguity", lint.Ambiguity)
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/lockorder", lint.LockOrder)
}

func TestTimerLeak(t *testing.T) {
	linttest.Run(t, "testdata/src/timerleak", lint.TimerLeak)
}

func TestTokenBalance(t *testing.T) {
	linttest.Run(t, "testdata/src/tokenbalance", lint.TokenBalance)
}

func TestCheckerPurity(t *testing.T) {
	linttest.Run(t, "testdata/src/checkerpurity", lint.CheckerPurity)
}

func TestEscapes(t *testing.T) {
	linttest.Run(t, "testdata/src/escapes", lint.RealClock)
}

// TestEscapeAudit checks the bookkeeping behind the audit summary:
// use counts on honored escapes, and idle escapes surfacing as such.
func TestEscapeAudit(t *testing.T) {
	abs, err := filepath.Abs("testdata/src/escapes")
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader("")
	pkg, err := loader.LoadDir(abs, "fixture/escapes")
	if err != nil {
		t.Fatal(err)
	}
	_, escapes, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.RealClock})
	if err != nil {
		t.Fatal(err)
	}
	byLine := map[int]*lint.Escape{}
	fileWide := 0
	for _, e := range escapes {
		if e.FileWide {
			fileWide++
			if e.Used != 2 {
				t.Errorf("file-wide escape suppressed %d diagnostics, want 2", e.Used)
			}
			continue
		}
		byLine[e.Pos.Line] = e
	}
	if fileWide != 1 {
		t.Fatalf("got %d file-wide escapes, want 1", fileWide)
	}
	var active, idle int
	for _, e := range byLine {
		if e.Reason == "" {
			t.Errorf("escape at line %d has empty reason", e.Pos.Line)
		}
		if e.Used > 0 {
			active++
		} else {
			idle++
		}
	}
	if active != 3 {
		t.Errorf("got %d active line escapes, want 3 (above-line, same-line, em-dash)", active)
	}
	if idle != 1 {
		t.Errorf("got %d idle line escapes, want 1 (the wrong-analyzer escape)", idle)
	}
}

// TestBadPkgFiresAll loads the CI smoke fixture and checks that every
// analyzer in the suite reports at least one diagnostic — the gate
// demonstrably fires for each contract.
func TestBadPkgFiresAll(t *testing.T) {
	abs, err := filepath.Abs("testdata/src/badpkg")
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader("")
	pkg, err := loader.LoadDir(abs, "fixture/badpkg")
	if err != nil {
		t.Fatal(err)
	}
	if err := lint.FirstTypeError([]*lint.Package{pkg}); err != nil {
		t.Fatalf("badpkg must compile cleanly:\n%v", err)
	}
	diags, _, err := lint.Run([]*lint.Package{pkg}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Analyzer] = true
	}
	for _, a := range lint.All() {
		if !fired[a.Name] {
			t.Errorf("analyzer %s reported nothing on badpkg", a.Name)
		}
	}
}

// TestByName covers the -run flag's resolution.
func TestByName(t *testing.T) {
	as, ok := lint.ByName([]string{"realclock", "mapiter"})
	if !ok || len(as) != 2 || as[0].Name != "realclock" || as[1].Name != "mapiter" {
		t.Errorf("ByName(realclock,mapiter) = %v, %v", as, ok)
	}
	if _, ok := lint.ByName([]string{"nosuch"}); ok {
		t.Error("ByName accepted an unknown analyzer name")
	}
}

// TestRepoLintClean is the dogfood gate: the entire module must be
// lint-clean under the full suite. This is the same check CI's lint
// job runs via cmd/neat-lint.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := lint.NewLoader(moduleRoot(t))
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if err := lint.FirstTypeError(pkgs); err != nil {
		t.Fatalf("module does not type-check:\n%v", err)
	}
	diags, _, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}
