package lint

// Control-flow graphs for flow-sensitive analyzers. A funcCFG is the
// intra-procedural CFG of one function body: basic blocks of
// statements in execution order, with explicit edges for branches,
// loops, switches, selects, labeled break/continue, and goto. Two
// virtual blocks terminate every function: exit (reached by return
// statements and by falling off the end of the body) and panicExit
// (reached by statement-level panic(...) calls). Deferred calls run on
// both, so analyzers that honor defer-registered cleanups treat a fact
// killed by a DeferStmt as killed on every path that postdates the
// registration — which is exactly Go's semantics, including the
// defer-in-loop case where registration is conditional on the loop
// body having executed.
//
// The builder is syntactic: it needs no type information and treats
// every non-branching statement as an opaque node. Nested function
// literals are not flattened into the enclosing graph — a FuncLit
// executes at call time, not at its lexical position — so analyzers
// walk block nodes shallowly (inspectShallow) and decide per-analyzer
// what a lit's presence means (escape, deferred cleanup, spawned
// body).

import (
	"go/ast"
	"go/token"
)

// A cfgBlock is one basic block: nodes execute in order, then control
// transfers to one of succs (or the function terminates, for the exit
// blocks).
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

func (b *cfgBlock) addSucc(s *cfgBlock) {
	for _, t := range b.succs {
		if t == s {
			return
		}
	}
	b.succs = append(b.succs, s)
}

// A funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock // blocks[0] is the entry
	// exit is the normal-termination block: targeted by returns and by
	// the body's fallthrough end. It holds no nodes.
	exit *cfgBlock
	// panicExit is targeted by statement-level panic(...) calls.
	panicExit *cfgBlock
}

func (g *funcCFG) entry() *cfgBlock { return g.blocks[0] }

// reachable returns the blocks reachable from the entry, in a
// deterministic order (DFS preorder). Unreachable blocks — code after
// a return, say — contribute no facts.
func (g *funcCFG) reachable() []*cfgBlock {
	seen := make([]bool, len(g.blocks))
	var out []*cfgBlock
	var visit func(b *cfgBlock)
	visit = func(b *cfgBlock) {
		if seen[b.index] {
			return
		}
		seen[b.index] = true
		out = append(out, b)
		for _, s := range b.succs {
			visit(s)
		}
	}
	visit(g.entry())
	return out
}

// cfgBuilder accumulates the graph while walking one body.
type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock
	// targets is the innermost-first stack of break/continue targets.
	targets *branchTargets
	// labels maps label names to their blocks, created on demand so
	// forward gotos resolve.
	labels map[string]*cfgBlock
	// pendingLabel names the label attached to the next loop/switch/
	// select statement, so `break L` / `continue L` resolve to it.
	pendingLabel string
}

type branchTargets struct {
	outer      *branchTargets
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select scopes
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g, labels: map[string]*cfgBlock{}}
	entry := b.newBlock()
	g.exit = b.newBlock()
	g.panicExit = b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	b.cur.addSucc(g.exit)
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// startFrom begins a new block succeeding from.
func (b *cfgBuilder) startFrom(from *cfgBlock) *cfgBlock {
	blk := b.newBlock()
	from.addSucc(blk)
	return blk
}

// dead replaces cur with an unreachable block, for code following a
// terminating statement.
func (b *cfgBuilder) dead() { b.cur = b.newBlock() }

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	takeLabel := func() string {
		l := b.pendingLabel
		b.pendingLabel = ""
		return l
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ReturnStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		b.cur.addSucc(b.g.exit)
		b.dead()
	case *ast.ExprStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		if isPanicCall(s.X) {
			b.cur.addSucc(b.g.panicExit)
			b.dead()
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.nodes = append(b.cur.nodes, s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s.Cond)
		cond := b.cur
		after := b.newBlock()
		b.cur = b.startFrom(cond)
		b.stmtList(s.Body.List)
		b.cur.addSucc(after)
		if s.Else != nil {
			b.cur = b.startFrom(cond)
			b.stmt(s.Else)
			b.cur.addSucc(after)
		} else {
			cond.addSucc(after)
		}
		b.cur = after
	case *ast.ForStmt:
		label := takeLabel()
		if s.Init != nil {
			b.cur.nodes = append(b.cur.nodes, s.Init)
		}
		head := b.startFrom(b.cur)
		after := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
			head.addSucc(after)
		}
		b.targets = &branchTargets{outer: b.targets, label: label, breakTo: after, continueTo: post}
		b.cur = b.startFrom(head)
		b.stmtList(s.Body.List)
		b.targets = b.targets.outer
		b.cur.addSucc(post)
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
		}
		post.addSucc(head)
		b.cur = after
	case *ast.RangeStmt:
		label := takeLabel()
		head := b.startFrom(b.cur)
		head.nodes = append(head.nodes, s) // the range clause itself
		after := b.newBlock()
		head.addSucc(after) // zero iterations
		b.targets = &branchTargets{outer: b.targets, label: label, breakTo: after, continueTo: head}
		b.cur = b.startFrom(head)
		b.stmtList(s.Body.List)
		b.targets = b.targets.outer
		b.cur.addSucc(head)
		b.cur = after
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := takeLabel()
		var body *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				b.cur.nodes = append(b.cur.nodes, sw.Init)
			}
			if sw.Tag != nil {
				b.cur.nodes = append(b.cur.nodes, sw.Tag)
			}
			body = sw.Body
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				b.cur.nodes = append(b.cur.nodes, sw.Init)
			}
			b.cur.nodes = append(b.cur.nodes, sw.Assign)
			body = sw.Body
		}
		head := b.cur
		after := b.newBlock()
		b.targets = &branchTargets{outer: b.targets, label: label, breakTo: after}
		// One block per clause; fallthrough chains to the next clause's
		// block. A switch with no default may match nothing.
		var clauseBlocks []*cfgBlock
		var clauses []*ast.CaseClause
		hasDefault := false
		for _, cs := range body.List {
			cc := cs.(*ast.CaseClause)
			clauses = append(clauses, cc)
			clauseBlocks = append(clauseBlocks, b.startFrom(head))
			if cc.List == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			head.addSucc(after)
		}
		for i, cc := range clauses {
			blk := clauseBlocks[i]
			for _, e := range cc.List {
				blk.nodes = append(blk.nodes, e)
			}
			b.cur = blk
			for _, cs := range cc.Body {
				if br, ok := cs.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					if i+1 < len(clauseBlocks) {
						b.cur.addSucc(clauseBlocks[i+1])
					}
					b.dead()
					continue
				}
				b.stmt(cs)
			}
			b.cur.addSucc(after)
		}
		b.targets = b.targets.outer
		b.cur = after
	case *ast.SelectStmt:
		label := takeLabel()
		head := b.cur
		after := b.newBlock()
		b.targets = &branchTargets{outer: b.targets, label: label, breakTo: after}
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			b.cur = b.startFrom(head)
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.cur.addSucc(after)
		}
		b.targets = b.targets.outer
		if len(s.Body.List) == 0 {
			// select{} blocks forever.
			b.dead()
			return
		}
		b.cur = after
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.cur.addSucc(lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				b.cur.addSucc(t)
			}
			b.dead()
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				b.cur.addSucc(t)
			}
			b.dead()
		case token.GOTO:
			b.cur.addSucc(b.labelBlock(s.Label.Name))
			b.dead()
		case token.FALLTHROUGH:
			// Handled by the switch builder; a stray one is dead code.
			b.dead()
		}
	default:
		// Defer, go, assignments, declarations, sends, inc/dec: opaque.
		b.cur.nodes = append(b.cur.nodes, s)
	}
}

// labelBlock returns (creating on demand) the block a label names —
// both the LabeledStmt itself and any gotos targeting it land here.
func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// findTarget resolves a break/continue to its block: the innermost
// enclosing scope, or the labeled one.
func (b *cfgBuilder) findTarget(label *ast.Ident, cont bool) *cfgBlock {
	for t := b.targets; t != nil; t = t.outer {
		if label != nil && t.label != label.Name {
			continue
		}
		if cont {
			if t.continueTo != nil {
				return t.continueTo
			}
			if label != nil {
				return nil
			}
			continue // unlabeled continue skips switch/select scopes
		}
		return t.breakTo
	}
	return nil
}

// isPanicCall reports whether expr is a call of the panic builtin.
func isPanicCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}

// inspectShallow walks n without descending into nested function
// literals: a lit's body executes at call time, not at its lexical
// position, so flow-sensitive analyzers must not attribute its effects
// to the enclosing block. The lit node itself is still visited.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if !fn(m) {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return true
	})
}

// funcUnits enumerates the function bodies of one file in source
// order: every FuncDecl and every FuncLit (including lits nested in
// other lits), each its own unit of flow-sensitive analysis. name is
// the enclosing declaration's name ("(*Replica).Start"), shared by its
// lits.
type funcUnit struct {
	name string
	decl *ast.FuncDecl // nil for lits
	lit  *ast.FuncLit  // nil for decls
	body *ast.BlockStmt
}

func funcUnits(f *ast.File) []funcUnit {
	var out []funcUnit
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := declName(fd)
		out = append(out, funcUnit{name: name, decl: fd, body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcUnit{name: name, lit: lit, body: lit.Body})
			}
			return true
		})
	}
	return out
}

// declName renders a FuncDecl's name with its receiver type:
// "(*Replica).Start", "Run".
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
