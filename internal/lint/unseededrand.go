package lint

import (
	"go/ast"
	"strconv"
)

// randPkgs are the math/rand variants whose process-global top-level
// functions share one unseeded (or wall-clock-seeded) source.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// seededConstructors are the math/rand entry points that build an
// explicit source — the sanctioned shape, provided the seed is not the
// wall clock.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// UnseededRand reports randomness that does not flow from the seeded
// schedule: global math/rand top-level calls (rand.Intn and friends
// share a process-wide source, so concurrent rounds perturb each
// other's streams), sources seeded from the wall clock, and any
// crypto/rand import — cryptographic randomness is unreproducible by
// design and has no place in a deterministic simulation. Test files
// are exempt: their randomness never feeds a campaign round.
var UnseededRand = &Analyzer{
	Name: "unseededrand",
	Doc: "forbid global math/rand functions, wall-clock-seeded sources, and crypto/rand in " +
		"deterministic code; randomness flows from the seeded schedule",
	Run: runUnseededRand,
}

func runUnseededRand(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "crypto/rand" {
				p.Reportf(imp.Pos(),
					"crypto/rand in deterministic code: unreproducible by design; randomness must flow from the seeded schedule")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := p.PkgNameOf(sel.X)
			if !randPkgs[pkg] {
				return true
			}
			name := sel.Sel.Name
			if !seededConstructors[name] {
				p.Reportf(call.Pos(),
					"global %s.%s draws from the process-wide source: build a seeded *rand.Rand (rand.New(rand.NewSource(seed))) from the schedule instead",
					pkg, name)
				return true
			}
			// A constructor is fine unless its seed is the wall clock —
			// rand.NewSource(time.Now().UnixNano()) is the classic
			// nondeterminism-by-default idiom. Nested constructor calls
			// (rand.New(rand.NewSource(...))) report once, at the inner
			// call that actually takes the seed.
			for _, arg := range call.Args {
				if wallClockExpr(p, arg) {
					p.Reportf(call.Pos(),
						"%s.%s seeded from the wall clock: every run gets a different stream; seed from the schedule instead",
						pkg, name)
					break
				}
			}
			return true
		})
	}
	return nil
}

// wallClockExpr reports whether expr contains a call into package
// time that reads the wall clock. Nested rand constructor calls are
// not descended into — rand.New(rand.NewSource(time.Now())) reports
// once, at the NewSource that actually takes the seed.
func wallClockExpr(p *Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				seededConstructors[sel.Sel.Name] && randPkgs[p.PkgNameOf(sel.X)] {
				return false
			}
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if realClockFuncs[sel.Sel.Name] && p.PkgNameOf(sel.X) == "time" {
			found = true
			return false
		}
		return true
	})
	return found
}
