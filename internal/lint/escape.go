package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// An Escape is one audited exception to the determinism contract: a
// `//neat:allow` comment that suppresses diagnostics on its line (or
// the line below it), or a `//neat:allow-file` comment that covers its
// whole file. Every escape carries a mandatory reason and is reported
// in the lint summary, so exceptions stay visible instead of rotting
// silently.
//
//	//neat:allow realclock -- wall-clock watchdog, outside the sim
//	//neat:allow-file realclock -- real-deadline liveness polls
//
// Several analyzers may share one escape, comma-separated:
//
//	//neat:allow realclock,goaccount -- driver-side worker pool
type Escape struct {
	// Analyzers are the analyzer names the escape covers.
	Analyzers []string
	// Pos locates the escape comment.
	Pos token.Position
	// Reason is the mandatory justification after the `--` separator.
	Reason string
	// FileWide is true for //neat:allow-file.
	FileWide bool
	// Used counts the diagnostics this escape suppressed in the run.
	Used int
}

func (e *Escape) covers(name string) bool {
	for _, a := range e.Analyzers {
		if a == name {
			return true
		}
	}
	return false
}

const (
	allowPrefix     = "neat:allow "
	allowFilePrefix = "neat:allow-file "
)

// parseEscapes extracts the escape comments of one file. Malformed
// escapes (missing reason or analyzer list) become diagnostics — an
// unexplained exception is itself a contract violation.
func parseEscapes(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []*Escape {
	var out []*Escape
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			var fileWide bool
			var body string
			switch {
			case strings.HasPrefix(text, allowFilePrefix):
				fileWide, body = true, strings.TrimPrefix(text, allowFilePrefix)
			case strings.HasPrefix(text, allowPrefix):
				body = strings.TrimPrefix(text, allowPrefix)
			case text == "neat:allow" || text == "neat:allow-file":
				report(Diagnostic{
					Analyzer: "escape",
					Pos:      fset.Position(c.Pos()),
					Message:  "escape comment names no analyzer: //neat:allow <analyzer> -- <reason>",
				})
				continue
			default:
				continue
			}
			names, reason, ok := splitEscape(body)
			if !ok || len(names) == 0 {
				report(Diagnostic{
					Analyzer: "escape",
					Pos:      fset.Position(c.Pos()),
					Message:  "escape comment needs a reason: //neat:allow <analyzer> -- <reason>",
				})
				continue
			}
			out = append(out, &Escape{
				Analyzers: names,
				Pos:       fset.Position(c.Pos()),
				Reason:    reason,
				FileWide:  fileWide,
			})
		}
	}
	return out
}

// splitEscape separates "name1,name2 -- reason" into its parts. Both
// the ASCII "--" and the em dash "—" separate names from reason.
func splitEscape(body string) (names []string, reason string, ok bool) {
	sep := -1
	sepLen := 0
	for _, s := range []string{" -- ", " — ", "\t--\t", "--"} {
		if i := strings.Index(body, s); i >= 0 && (sep < 0 || i < sep) {
			sep, sepLen = i, len(s)
		}
	}
	if i := strings.Index(body, "—"); i >= 0 && (sep < 0 || i < sep) {
		sep, sepLen = i, len("—")
	}
	if sep < 0 {
		return nil, "", false
	}
	reason = strings.TrimSpace(body[sep+sepLen:])
	if reason == "" {
		return nil, "", false
	}
	for _, n := range strings.Split(body[:sep], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, reason, true
}

// filterEscapes splits raw diagnostics into the kept set and the
// escape audit. A line escape covers diagnostics on its own line and
// on the line directly below it (comment-above style); a file escape
// covers its whole file.
func filterEscapes(pkg *Package, raw []Diagnostic) ([]Diagnostic, []*Escape) {
	type fileEscapes struct {
		byLine   map[int][]*Escape
		fileWide []*Escape
	}
	perFile := map[string]*fileEscapes{}
	var all []*Escape
	var kept []Diagnostic
	report := func(d Diagnostic) { kept = append(kept, d) }
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		fe := &fileEscapes{byLine: map[int][]*Escape{}}
		for _, e := range parseEscapes(pkg.Fset, f, report) {
			all = append(all, e)
			if e.FileWide {
				fe.fileWide = append(fe.fileWide, e)
				continue
			}
			fe.byLine[e.Pos.Line] = append(fe.byLine[e.Pos.Line], e)
		}
		perFile[name] = fe
	}
	for _, d := range raw {
		fe := perFile[d.Pos.Filename]
		if fe == nil {
			kept = append(kept, d)
			continue
		}
		var match *Escape
		for _, e := range append(fe.byLine[d.Pos.Line], fe.byLine[d.Pos.Line-1]...) {
			if e.covers(d.Analyzer) {
				match = e
				break
			}
		}
		if match == nil {
			for _, e := range fe.fileWide {
				if e.covers(d.Analyzer) {
					match = e
					break
				}
			}
		}
		if match == nil {
			kept = append(kept, d)
			continue
		}
		match.Used++
	}
	return kept, all
}
