package lint

// The cross-package summary store. Intra-procedural dataflow answers
// path questions inside one function; call-graph-shaped facts — which
// locks a callee may acquire, whether a helper a checker calls is
// pure — need per-function summaries visible across packages. The
// store is filled by the analyzers' Summarize phase, which lint.Run
// drives over every loaded package before any Run pass, and is then
// read (and lazily finalized into global facts: the lock-order graph,
// the purity verdicts) during the per-package passes.
//
// Functions are keyed by a stable string identity (funcID) rather
// than by *types.Func: every package is type-checked separately, so
// the same function is a different types object seen from its own
// source check and from a dependent's export-data import. FullName
// ("(*neat/internal/netsim.Network).Pause") is identical from both
// sides. Function literals get positional identities scoped to their
// enclosing declaration ("pkg.Fn$1", in source order), since nothing
// outside the enclosing function can name them.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// A Store accumulates cross-package facts during the Summarize phase.
type Store struct {
	locks  *lockFacts
	purity *purityFacts
}

// NewStore returns an empty summary store.
func NewStore() *Store { return &Store{} }

func (s *Store) lockFacts() *lockFacts {
	if s.locks == nil {
		s.locks = newLockFacts()
	}
	return s.locks
}

func (s *Store) purityFacts() *purityFacts {
	if s.purity == nil {
		s.purity = newPurityFacts()
	}
	return s.purity
}

// funcID returns the stable cross-package identity of fn.
func funcID(fn *types.Func) string { return fn.FullName() }

// unitIDs assigns a funcID to every funcUnit of a file: declarations
// get their types identity, lits get "<parent>$<n>" in source order.
func unitIDs(p *Pass, units []funcUnit) []string {
	ids := make([]string, len(units))
	litSeq := 0
	parent := ""
	for i, u := range units {
		if u.decl != nil {
			if fn, ok := p.Info.Defs[u.decl.Name].(*types.Func); ok && fn != nil {
				parent = funcID(fn)
			} else {
				parent = fmt.Sprintf("%s.%s@%d", p.PkgPath, u.decl.Name.Name, p.Fset.Position(u.decl.Pos()).Line)
			}
			litSeq = 0
			ids[i] = parent
			continue
		}
		litSeq++
		ids[i] = fmt.Sprintf("%s$%d", parent, litSeq)
	}
	return ids
}

// staticCallee resolves a call expression to the funcID of its
// statically-known callee: a package function, a method (including
// interface methods — resolved to the interface's method, which is
// how clock.Clock calls are recognized), or nothing for builtins,
// function values, and conversions.
func staticCallee(p *Pass, call *ast.CallExpr) (*types.Func, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return nil, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	return fn, true
}

// summarizable reports whether this pass's package participates in
// the Summarize phase: external test packages and test files are the
// analyzers' blind spot by design — test drivers run outside the
// simulation's contracts.
func summarizable(p *Pass) bool {
	return !strings.HasSuffix(p.PkgPath, "_test")
}
