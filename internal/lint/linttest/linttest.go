// Package linttest runs lint analyzers over golden fixture packages,
// in the shape of golang.org/x/tools/go/analysis/analysistest: fixture
// sources carry `// want "regexp"` comments on the lines where
// diagnostics are expected, escapes are honored exactly as in the real
// driver, and both missing and surplus diagnostics fail the test.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"neat/internal/lint"
)

// wantRE matches one expected-diagnostic clause — double-quoted or
// backtick-quoted; several may share a line: // want "first" `second`
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// Run loads the fixture package at dir (relative to the test's
// working directory, conventionally testdata/src/<name>) and checks
// the analyzers' filtered diagnostics against the fixture's want
// comments.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(moduleRoot(t))
	pkg, err := loader.LoadDir(abs, "fixture/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if err := lint.FirstTypeError([]*lint.Package{pkg}); err != nil {
		t.Fatalf("fixture %s does not type-check:\n%v", dir, err)
	}
	diags, _, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := map[key][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ok := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", rel(t, d.Pos.Filename), fmt.Sprintf("%d: %s: %s", d.Pos.Line, d.Analyzer, d.Message))
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", rel(t, k.file), k.line, re)
			}
		}
	}
}

// moduleRoot locates the repo root so fixture imports of in-module
// packages ("neat/internal/clock") resolve regardless of test cwd.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("linttest: no go.mod above test directory")
		}
		dir = parent
	}
}

func rel(t *testing.T, path string) string {
	t.Helper()
	wd, err := filepath.Abs(".")
	if err != nil {
		return path
	}
	if r, err := filepath.Rel(wd, path); err == nil {
		return r
	}
	return path
}
