package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const historyPkgPath = "neat/internal/history"

// CheckerPurity reports impure operations reachable from history
// checkers. A checker — any function with the history.Check shape,
// func(history.History) []history.Violation — is the judge of a
// recorded round: the determinism contract requires that re-running it
// over an equal history yields equal violations in equal order, which
// is what makes violation replay exact, shrinking trustworthy, and the
// parallel per-key checking introduced for the linearizability hot
// path safe to merge in key order. That property dies quietly if a
// checker (or any helper it calls, in any package) writes
// package-level state, consults a clock or randomness, performs IO,
// or mutates the History it was handed — the recorder shares that
// slice across checkers and with the witness renderer.
//
// The Summarize phase records a purity summary for every function in
// every loaded package: direct impure operations (with positions) and
// static call edges, nested function literals summarized as callees of
// their enclosing function since comparators and parallel workers run
// under the checker. The Run phase walks the call graph from every
// checker root and reports each reachable impure operation at its own
// site — the line an audited escape would annotate — naming the
// checker that reaches it.
var CheckerPurity = &Analyzer{
	Name: "checkerpurity",
	Doc: "require functions with the history.Check shape (and everything they call) to be pure: no " +
		"package-level writes, no clock/rand/IO, no mutation of the received History",
	Run:       runCheckerPurity,
	Summarize: summarizeCheckerPurity,
}

// purityFacts is the store's checker-purity state.
type purityFacts struct {
	funcs map[string]*puritySummary
	// roots are the checker-shaped functions, in discovery order.
	roots []string

	finalized bool
	// reachedBy maps each function reachable from a root to the first
	// root that reaches it.
	reachedBy map[string]string
}

func newPurityFacts() *purityFacts {
	return &purityFacts{funcs: map[string]*puritySummary{}, reachedBy: map[string]string{}}
}

type puritySummary struct {
	name   string // enclosing declaration name, for messages
	events []purityEvent
	calls  []purityCall
}

type purityEvent struct {
	pos token.Position
	msg string
}

type purityCall struct {
	callee string
	pos    token.Position
}

// forbiddenCalls maps stdlib callees to the contract they break.
// Packages not listed are assumed pure — sort, strings, fmt.Sprintf
// and friends are the checkers' bread and butter.
var forbiddenPkgs = map[string]string{
	clockPkgPath:  "consults the clock",
	"math/rand":   "draws unseeded randomness",
	"math/rand/v2": "draws unseeded randomness",
	"crypto/rand": "draws randomness",
	"os":          "performs IO",
	"io":          "performs IO",
	"io/ioutil":   "performs IO",
	"net":         "performs IO",
	"bufio":       "performs IO",
}

// forbiddenFuncs lists individually-forbidden functions in otherwise
// tolerated packages.
var forbiddenFuncs = map[string]string{
	"time.Now":    "reads the wall clock",
	"time.Since":  "reads the wall clock",
	"time.Until":  "reads the wall clock",
	"time.Sleep":  "sleeps on the wall clock",
	"time.After":  "waits on the wall clock",
	"time.Tick":   "ticks on the wall clock",
	"fmt.Print":   "writes to stdout",
	"fmt.Printf":  "writes to stdout",
	"fmt.Println": "writes to stdout",
	"fmt.Fprint":  "performs IO",
	"fmt.Fprintf": "performs IO",
	"fmt.Fprintln": "performs IO",
	"print":       "writes to stderr",
	"println":     "writes to stderr",
}

// inPlaceSorters are the sort entry points that mutate their argument:
// handing them the History parameter reorders the shared slice.
var inPlaceSorters = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
}

func summarizeCheckerPurity(p *Pass, store *Store) error {
	if !summarizable(p) {
		return nil
	}
	pf := store.purityFacts()
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		units := funcUnits(f)
		ids := unitIDs(p, units)
		// Lit units are callees of their enclosing unit: comparators,
		// map/filter closures, and parallel workers all run under the
		// checker that created them.
		for i, u := range units {
			if _, dup := pf.funcs[ids[i]]; dup {
				continue
			}
			sum := summarizePurityUnit(p, u, units, ids, i)
			pf.funcs[ids[i]] = sum
			if isCheckShape(p, u) {
				pf.roots = append(pf.roots, ids[i])
			}
		}
	}
	return nil
}

// isCheckShape reports whether the unit has the history.Check
// signature: one parameter of type history.History, one result
// []history.Violation.
func isCheckShape(p *Pass, u funcUnit) bool {
	var sig *types.Signature
	if u.decl != nil {
		if fn, ok := p.Info.Defs[u.decl.Name].(*types.Func); ok && fn != nil {
			sig, _ = fn.Type().(*types.Signature)
		}
	} else if tv, ok := p.Info.Types[u.lit]; ok {
		sig, _ = tv.Type.(*types.Signature)
	}
	if sig == nil || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !isHistoryNamed(sig.Params().At(0).Type(), "History") {
		return false
	}
	sl, ok := sig.Results().At(0).Type().(*types.Slice)
	return ok && isHistoryNamed(sl.Elem(), "Violation")
}

func isHistoryNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == historyPkgPath && obj.Name() == name
}

// summarizePurityUnit collects one unit's direct impure operations and
// call edges. The unit's nested lits become call edges at their
// lexical position.
func summarizePurityUnit(p *Pass, u funcUnit, units []funcUnit, ids []string, idx int) *puritySummary {
	sum := &puritySummary{name: u.name}

	// History-typed parameters visible in this unit: its own, plus any
	// captured from enclosing units (a comparator closing over h).
	paramObjs := historyParams(p, u)
	if u.lit != nil {
		for j, uj := range units {
			if j != idx && containsPos(uj.body, u.body.Pos()) {
				for o := range historyParams(p, uj) {
					paramObjs[o] = true
				}
			}
		}
	}

	inspectShallow(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == u.lit {
				return true
			}
			for j := idx + 1; j < len(units); j++ {
				if units[j].lit == n {
					sum.calls = append(sum.calls, purityCall{callee: ids[j], pos: p.Fset.Position(n.Pos())})
					break
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkPurityWrite(p, lhs, paramObjs, sum)
			}
		case *ast.IncDecStmt:
			checkPurityWrite(p, n.X, paramObjs, sum)
		case *ast.CallExpr:
			checkPurityCall(p, n, paramObjs, sum)
		}
		return true
	})
	return sum
}

// historyParams returns the unit's parameters (and named receivers)
// of type history.History.
func historyParams(p *Pass, u funcUnit) map[types.Object]bool {
	out := map[types.Object]bool{}
	var ft *ast.FuncType
	if u.decl != nil {
		ft = u.decl.Type
	} else {
		ft = u.lit.Type
	}
	if ft.Params == nil {
		return out
	}
	for _, fld := range ft.Params.List {
		for _, name := range fld.Names {
			if obj := p.Info.Defs[name]; obj != nil && isHistoryNamed(obj.Type(), "History") {
				out[obj] = true
			}
		}
	}
	return out
}

func containsPos(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// checkPurityWrite flags assignments to package-level state and to
// the History argument's elements.
func checkPurityWrite(p *Pass, lhs ast.Expr, paramObjs map[types.Object]bool, sum *puritySummary) {
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := p.Info.Uses[root]
	if obj == nil {
		return
	}
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		// Writing the var itself or through it — either way shared
		// mutable state.
		sum.events = append(sum.events, purityEvent{
			pos: p.Fset.Position(lhs.Pos()),
			msg: fmt.Sprintf("writes package-level state %s", v.Name()),
		})
		return
	}
	if paramObjs[obj] && lhs != ast.Expr(root) {
		// h[i] = ..., h[i].Field = ... — mutating the shared history.
		sum.events = append(sum.events, purityEvent{
			pos: p.Fset.Position(lhs.Pos()),
			msg: fmt.Sprintf("mutates the History argument %s in place", root.Name),
		})
	}
}

// rootIdent unwraps index/selector/star chains to the base identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// checkPurityCall flags forbidden callees and in-place sorts of the
// History argument, and records call edges for everything else that
// statically resolves.
func checkPurityCall(p *Pass, call *ast.CallExpr, paramObjs map[types.Object]bool, sum *puritySummary) {
	// println/print builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if why, bad := forbiddenFuncs[id.Name]; bad {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				sum.events = append(sum.events, purityEvent{pos: p.Fset.Position(call.Pos()), msg: why})
				return
			}
		}
	}
	fn, ok := staticCallee(p, call)
	if !ok {
		return
	}
	path := fn.Pkg().Path()
	qual := path + "." + fn.Name()
	if why, bad := forbiddenPkgs[path]; bad {
		sum.events = append(sum.events, purityEvent{
			pos: p.Fset.Position(call.Pos()),
			msg: fmt.Sprintf("%s (%s.%s)", why, shortLock(path), fn.Name()),
		})
		return
	}
	if why, bad := forbiddenFuncs[shortQual(qual)]; bad {
		sum.events = append(sum.events, purityEvent{
			pos: p.Fset.Position(call.Pos()),
			msg: fmt.Sprintf("%s (%s)", why, shortQual(qual)),
		})
		return
	}
	if inPlaceSorters[shortQual(qual)] && len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && paramObjs[p.Info.Uses[id]] {
			sum.events = append(sum.events, purityEvent{
				pos: p.Fset.Position(call.Pos()),
				msg: fmt.Sprintf("sorts the History argument %s in place (%s)", id.Name, shortQual(qual)),
			})
			return
		}
	}
	sum.calls = append(sum.calls, purityCall{callee: funcID(fn), pos: p.Fset.Position(call.Pos())})
}

// shortQual shortens "a/b/pkg.Fn" to "pkg.Fn".
func shortQual(qual string) string {
	if i := strings.LastIndex(qual, "/"); i >= 0 {
		return qual[i+1:]
	}
	return qual
}

// runCheckerPurity reports, for this package, every impure operation
// reachable from any checker root.
func runCheckerPurity(p *Pass) error {
	if p.Store == nil || p.Store.purity == nil {
		return nil
	}
	pf := p.Store.purity
	pf.finalize()
	if len(pf.reachedBy) == 0 {
		return nil
	}
	files := map[string]bool{}
	for _, f := range p.Files {
		files[p.Fset.Position(f.Pos()).Filename] = true
	}
	ids := make([]string, 0, len(pf.reachedBy))
	for id := range pf.reachedBy {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sum := pf.funcs[id]
		for _, ev := range sum.events {
			if !files[ev.pos.Filename] {
				continue
			}
			root := pf.reachedBy[id]
			rootName := root
			if rs := pf.funcs[root]; rs != nil {
				rootName = rs.name
			}
			p.report(Diagnostic{
				Analyzer: p.Analyzer.Name,
				Pos:      ev.pos,
				Message: fmt.Sprintf("%s, inside code reachable from history checker %s: checkers must be pure "+
					"so violation replay is exact and parallel checking stays deterministic", ev.msg, rootName),
			})
		}
	}
	return nil
}

// finalize walks the call graph from every root, recording which
// functions a checker can reach.
func (pf *purityFacts) finalize() {
	if pf.finalized {
		return
	}
	pf.finalized = true
	var visit func(root, id string)
	visit = func(root, id string) {
		if _, seen := pf.reachedBy[id]; seen {
			return
		}
		sum := pf.funcs[id]
		if sum == nil {
			return // out-of-scope callee: assumed pure
		}
		pf.reachedBy[id] = root
		for _, c := range sum.calls {
			visit(root, c.callee)
		}
	}
	for _, r := range pf.roots {
		visit(r, r)
	}
}
