package lint

// A generic forward-dataflow worklist solver over funcCFGs. Each
// analyzer supplies its own lattice: a bottom element, a join
// (least-upper-bound over the analyzer's may/must semantics), an
// equality test for the fixpoint check, and a transfer function
// applying one block's effects. The solver iterates reachable blocks
// in deterministic order until the facts stabilize; unreachable
// blocks keep bottom and so contribute nothing.
//
// The concrete lattices in this package are small: timerleak and
// tokenbalance use bitmasks over per-function sites (join = union, a
// may-be-outstanding analysis), lockorder uses bitmasks over
// per-function lock classes (join = union, a may-hold analysis).

// A lattice packages one analyzer's dataflow behavior over fact
// type F.
type lattice[F any] struct {
	bottom   func() F
	join     func(F, F) F
	equal    func(F, F) bool
	transfer func(b *cfgBlock, in F) F
}

// forward solves the forward-dataflow problem over g, starting from
// entry fact at the entry block, and returns the in-fact of every
// block (indexed by block index). Analyzers needing out-facts or
// per-node facts re-apply their transfer over the stabilized in-facts.
func forward[F any](g *funcCFG, entry F, lat lattice[F]) []F {
	blocks := g.reachable()
	in := make([]F, len(g.blocks))
	out := make([]F, len(g.blocks))
	for i := range g.blocks {
		in[i] = lat.bottom()
		out[i] = lat.bottom()
	}
	in[g.entry().index] = entry

	// Worklist in deterministic (reachability-preorder) seed order;
	// every reachable block is processed at least once, and re-queued
	// whenever a predecessor's out-fact grows its in-fact. Facts only
	// move up the lattice, so the fixpoint terminates. Skipping a block
	// whose out-fact did not change is sound: joining an unchanged fact
	// into a successor is a no-op.
	work := make([]*cfgBlock, len(blocks))
	copy(work, blocks)
	queued := make([]bool, len(g.blocks))
	for _, b := range blocks {
		queued[b.index] = true
	}
	first := make([]bool, len(g.blocks))
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.index] = false
		o := lat.transfer(b, in[b.index])
		if first[b.index] && lat.equal(o, out[b.index]) {
			continue
		}
		first[b.index] = true
		out[b.index] = o
		for _, s := range b.succs {
			ni := lat.join(in[s.index], o)
			if !lat.equal(ni, in[s.index]) {
				in[s.index] = ni
				if !queued[s.index] {
					queued[s.index] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

// bitLattice builds the common bitmask lattice (join = union) over a
// per-block transfer.
func bitLattice(transfer func(b *cfgBlock, in uint64) uint64) lattice[uint64] {
	return lattice[uint64]{
		bottom:   func() uint64 { return 0 },
		join:     func(a, b uint64) uint64 { return a | b },
		equal:    func(a, b uint64) bool { return a == b },
		transfer: transfer,
	}
}
