package campaign

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/core"
	"neat/internal/history"
	"neat/internal/netsim"
)

// RoundOutcome is the result of executing one schedule against one
// target.
type RoundOutcome struct {
	Target     string
	Round      int
	Schedule   Schedule
	Violations []Violation
	// History is the round's full recorded operation history,
	// retained only when the round ran with tracing on.
	History history.History
	Err     error
}

// DefaultSettle is the runner's post-heal quiescence wait: how long
// the round's clock runs after the last fault heals before the
// observation phase reads the settled state. One clock-driven wait,
// uniform across targets, replaces the per-target settle sleeps the
// embedded checkers used to carry; Config.Settle tunes it.
const DefaultSettle = 250 * time.Millisecond

// runOpts bundles the execution knobs a single round runs under.
type runOpts struct {
	virtual bool
	settle  time.Duration
	trace   bool
}

func (o runOpts) withDefaults() runOpts {
	if o.settle <= 0 {
		o.settle = DefaultSettle
	}
	return o
}

// RunSchedule deploys a fresh instance of the target on its own
// engine, executes the schedule's workload rounds with faults injected
// and healed at their scheduled indices, then heals everything,
// restarts crashed nodes, waits out the quiescence settle, runs the
// observation phase, and judges the recorded history with the
// target's checkers. It runs on the real wall clock; campaigns
// normally use RunScheduleVirtual.
func RunSchedule(t Target, sched Schedule) RoundOutcome {
	return runSchedule(t, sched, runOpts{})
}

// RunScheduleVirtual runs the schedule against a fresh simulated clock
// owned by this round alone: timing waits (election timeouts,
// heartbeat periods, workload pacing) complete at CPU speed, and the
// round's timer sequence depends only on the schedule — not on how
// loaded the host is — so identical seeds yield identical outcomes.
// Each round getting its own clock keeps rounds independent and lets
// them run concurrently.
func RunScheduleVirtual(t Target, sched Schedule) RoundOutcome {
	return runSchedule(t, sched, runOpts{virtual: true})
}

func runSchedule(t Target, sched Schedule, opts runOpts) RoundOutcome {
	opts = opts.withDefaults()
	out := RoundOutcome{Target: t.Name(), Schedule: sched}
	var engOpts core.Options
	if opts.virtual {
		sim := clock.NewSim()
		defer sim.Stop()
		engOpts.Net.Clock = sim
	}
	eng := core.NewEngine(engOpts)
	defer eng.Shutdown()
	topo := t.Topology()
	for _, id := range topo.Servers {
		eng.AddNode(id, core.RoleServer)
	}
	for _, id := range topo.Services {
		eng.AddNode(id, core.RoleService)
	}
	for _, id := range topo.Clients {
		eng.AddNode(id, core.RoleClient)
	}
	rec := history.NewRecorder(eng.Clock())
	inst, err := t.Deploy(eng, rec)
	if err != nil {
		out.Err = fmt.Errorf("campaign: deploying %s: %w", t.Name(), err)
		return out
	}
	defer inst.Close()
	// The round's driving goroutine holds a scoped busy token for the
	// workload and check phases: virtual time cannot overtake it while
	// it computes between operations, yet the token is surrendered
	// whenever it blocks in a clock wait (a workload sleep, an RPC
	// timeout). Released before the deferred teardown so that Stop-time
	// joins can still let time advance.
	clock.AcquireScoped(eng.Clock())
	defer clock.ReleaseScoped(eng.Clock())

	// The workload rng is derived from the schedule seed so a replay
	// of the schedule replays the workload too.
	rng := rand.New(rand.NewSource(sched.Seed ^ 0x6e6561742d66757a)) // "neat-fuz"
	active := make([]*core.Partition, len(sched.Faults))
	crashed := make([]bool, len(sched.Faults))
	paused := make([]bool, len(sched.Faults))
	skewed := make([]bool, len(sched.Faults))
	diskOn := make([]bool, len(sched.Faults))
	// Restart-fault recovery bookkeeping. The recovery callback runs on
	// the clock's advancer (only while this goroutine is parked in a
	// clock wait), but downMu keeps the shared state honest anyway.
	restartTimers := make([]clock.Timer, len(sched.Faults))
	restartDone := make([]bool, len(sched.Faults))
	var downMu sync.Mutex
	// downRef refcounts crashed nodes: two crash faults may share a
	// victim, and healing one must not restart a node another fault
	// still holds down.
	downRef := make(map[netsim.NodeID]int)
	activeCount := 0
	heal := func(i int) {
		f := sched.Faults[i]
		switch f.Kind {
		case FaultCrash:
			if crashed[i] {
				v := f.GroupA[0]
				downMu.Lock()
				if downRef[v]--; downRef[v] == 0 {
					eng.Restart(v)
				}
				downMu.Unlock()
				crashed[i] = false
				activeCount--
			}
			return
		case FaultPause:
			if paused[i] {
				eng.Resume(f.GroupA[0])
				paused[i] = false
				activeCount--
			}
			return
		case FaultSkew:
			if skewed[i] {
				eng.ClearSkew(f.GroupA[0])
				skewed[i] = false
				activeCount--
			}
			return
		case FaultDisk:
			if diskOn[i] {
				inst.(DiskFaulter).SetDiskFault(f.GroupA[0], "")
				diskOn[i] = false
				activeCount--
			}
			return
		case FaultRestart:
			// Force the recovery now if its timer has not fired yet.
			v := f.GroupA[0]
			downMu.Lock()
			if !restartDone[i] {
				restartDone[i] = true
				if tm := restartTimers[i]; tm != nil {
					tm.Stop()
				}
				if downRef[v]--; downRef[v] == 0 {
					eng.Restart(v)
				}
				activeCount--
			}
			downMu.Unlock()
			return
		}
		if active[i] != nil {
			_ = eng.Heal(active[i])
			active[i] = nil
			activeCount--
		}
	}
	for op := 0; op < sched.Ops; op++ {
		for i, f := range sched.Faults {
			if f.HealAt == op {
				heal(i)
			}
		}
		for i, f := range sched.Faults {
			if f.At != op {
				continue
			}
			var err error
			switch f.Kind {
			case FaultComplete:
				active[i], err = eng.Complete(f.GroupA, f.GroupB)
			case FaultPartial:
				active[i], err = eng.Partial(f.GroupA, f.GroupB)
			case FaultSimplex:
				active[i], err = eng.Simplex(f.GroupA, f.GroupB)
			case FaultSlow:
				d := time.Duration(f.DelayMs) * time.Millisecond
				active[i], err = eng.Slow(f.GroupA, f.GroupB, d, d/4)
			case FaultLoss:
				active[i], err = eng.Lossy(f.GroupA, f.GroupB, f.Rate)
			case FaultFlaky:
				active[i], err = eng.Flaky(f.GroupA, f.GroupB, netsim.Chaos{
					Dup:           f.Rate,
					Reorder:       f.Rate,
					ReorderWindow: time.Duration(f.DelayMs) * time.Millisecond,
				})
			case FaultFlap:
				active[i], err = eng.Flap(f.GroupA, f.GroupB, time.Duration(f.DelayMs)*time.Millisecond)
			case FaultCrash:
				v := f.GroupA[0]
				downMu.Lock()
				if downRef[v] == 0 {
					eng.Crash(v)
				}
				downRef[v]++
				downMu.Unlock()
				crashed[i] = true
			case FaultSkew:
				eng.Skew(f.GroupA[0], time.Duration(f.DelayMs)*time.Millisecond, f.Rate)
				skewed[i] = true
			case FaultPause:
				eng.Pause(f.GroupA[0])
				paused[i] = true
			case FaultDisk:
				df, ok := inst.(DiskFaulter)
				if !ok {
					err = fmt.Errorf("target declares DiskNodes but its instance lacks SetDiskFault")
					break
				}
				df.SetDiskFault(f.GroupA[0], f.Mode)
				diskOn[i] = true
			case FaultRestart:
				v := f.GroupA[0]
				downMu.Lock()
				if downRef[v] == 0 {
					eng.Crash(v)
				}
				downRef[v]++
				downMu.Unlock()
				idx := i
				restartTimers[i] = eng.RestartAt(v, time.Duration(f.DelayMs)*time.Millisecond, func() {
					downMu.Lock()
					if !restartDone[idx] {
						restartDone[idx] = true
						downRef[v]--
					}
					downMu.Unlock()
				})
			default:
				err = fmt.Errorf("unknown fault kind %v", f.Kind)
			}
			if err != nil {
				// A round whose faults never took effect must not be
				// reported as a clean run of this schedule.
				out.Err = fmt.Errorf("campaign: injecting %q: %w", f.String(), err)
				return out
			}
			activeCount++
		}
		rec.SetFaults(activeCount)
		inst.Step(&StepCtx{Rng: rng, Clock: eng.Clock(), Op: op, ActiveFaults: activeCount, Paused: eng.IsPaused})
	}
	// End-of-schedule heal: resume frozen nodes, clear skews, disarm
	// lying disks, and cancel pending recovery timers (their victims
	// are revived with the crashed nodes below), so the observation
	// phase reads a fault-free fabric. Corruption already written by a
	// disk fault stays — that is the failure under test.
	for i, f := range sched.Faults {
		switch f.Kind {
		case FaultPause:
			if paused[i] {
				eng.Resume(f.GroupA[0])
				paused[i] = false
			}
		case FaultSkew:
			if skewed[i] {
				eng.ClearSkew(f.GroupA[0])
				skewed[i] = false
			}
		case FaultDisk:
			if diskOn[i] {
				inst.(DiskFaulter).SetDiskFault(f.GroupA[0], "")
				diskOn[i] = false
			}
		case FaultRestart:
			downMu.Lock()
			if !restartDone[i] {
				restartDone[i] = true
				if tm := restartTimers[i]; tm != nil {
					tm.Stop()
				}
				// downRef stays counted; the revive loop below restarts
				// every node still held down.
			}
			downMu.Unlock()
		}
	}
	_ = eng.HealAll()
	downMu.Lock()
	for v, n := range downRef {
		if n > 0 {
			eng.Restart(v)
		}
	}
	downMu.Unlock()
	rec.SetFaults(0)
	// Quiescence: one clock-driven settle, uniform across targets, so
	// re-elections, session re-establishment, and post-heal
	// consolidation complete before the settled state is observed.
	eng.Clock().Sleep(opts.settle)
	inst.Observe(&StepCtx{Rng: rng, Clock: eng.Clock(), Op: -1, Paused: eng.IsPaused})
	h := rec.History()
	for _, check := range t.Checks() {
		for _, v := range check(h) {
			out.Violations = append(out.Violations, Violation{
				Target:    t.Name(),
				Invariant: v.Invariant,
				Subject:   v.Subject,
				Detail:    v.Detail,
				Trace:     v.Witness,
			})
		}
	}
	if opts.trace {
		out.History = h
	}
	return out
}

// scheduleSeed derives the deterministic schedule seed for one
// (campaign seed, target, round) triple.
func scheduleSeed(base int64, target string, round int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", base, target, round)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// TargetStats aggregates one target's campaign outcome.
type TargetStats struct {
	Rounds     int
	Violations int
	Unique     int
	Errors     int
}

// Config configures a campaign.
type Config struct {
	// Targets are the systems to fuzz.
	Targets []Target
	// Rounds is how many schedules to run per target.
	Rounds int
	// Seed derives every schedule seed; equal seeds regenerate equal
	// schedules.
	Seed int64
	// FaultKinds restricts which fault kinds Generate draws; nil or
	// empty means AllFaultKinds. cmd/neat-fuzz sets it from -faults.
	FaultKinds []FaultKind
	// VirtualTime runs every round (and every shrink re-execution) on
	// its own fresh simulated clock, so timing waits complete at CPU
	// speed instead of wall-clock speed and identical seeds yield
	// identical outcomes. cmd/neat-fuzz enables this by default.
	VirtualTime bool
	// Workers bounds concurrent rounds; 0 means a default based on
	// GOMAXPROCS. Real-clock rounds spend most of their time in timing
	// sleeps, so modest oversubscription helps wall-clock even on one
	// CPU. Virtual-time rounds are mostly CPU-bound; their default is
	// GOMAXPROCS*2 clamped to [8, 16] — the extra workers cover the
	// brief settle waits each round's clock takes between advances.
	// Outcomes are identical at any worker count.
	Workers int
	// Shrink greedily minimizes one failing schedule per unique
	// violation signature.
	Shrink bool
	// ShrinkAttempts is how many times a candidate schedule is run
	// while shrinking before concluding it no longer reproduces
	// (default 1).
	ShrinkAttempts int
	// Settle is the post-heal quiescence wait on the round's clock
	// before the observation phase; 0 means DefaultSettle. Uniform
	// across targets and virtually free under VirtualTime.
	Settle time.Duration
	// Trace retains every finding's full recorded operation history
	// (the witness trace is always kept). cmd/neat-fuzz sets it from
	// -trace.
	Trace bool
	// Log, when set, receives one line per completed round.
	Log io.Writer
}

// Result is the campaign outcome.
type Result struct {
	Seed     int64
	Rounds   int
	Targets  []string
	Stats    map[string]*TargetStats
	Findings []Finding
	// Errors counts rounds that failed to deploy or execute.
	Errors int
}

// TotalViolations sums every violation found, before deduplication.
func (r *Result) TotalViolations() int {
	n := 0
	for _, s := range r.Stats {
		n += s.Violations
	}
	return n
}

// Run executes a campaign: Rounds seeded schedules per target on a
// worker pool, violations deduplicated by signature, and (optionally)
// one greedy shrink per unique signature.
func Run(cfg Config) *Result {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 10
	}
	if cfg.Workers <= 0 {
		// Virtual-time rounds are mostly CPU-bound with brief settle
		// waits between clock advances, so they take a higher floor and
		// ceiling; real-clock rounds sleep most of the time, so a small
		// pool suffices either way. Rounds stay deterministic regardless
		// of the worker count: each runs on its own engine, clock, and
		// seed-derived rng.
		lo, hi := 2, 8
		if cfg.VirtualTime {
			lo, hi = 8, 16
		}
		cfg.Workers = min(max(runtime.GOMAXPROCS(0)*2, lo), hi)
	}
	res := &Result{
		Seed:   cfg.Seed,
		Rounds: cfg.Rounds,
		Stats:  make(map[string]*TargetStats),
	}
	for _, t := range cfg.Targets {
		res.Targets = append(res.Targets, t.Name())
		res.Stats[t.Name()] = &TargetStats{}
	}

	opts := runOpts{virtual: cfg.VirtualTime, settle: cfg.Settle, trace: cfg.Trace}
	type job struct {
		target Target
		round  int
	}
	jobs := make(chan job)
	var mu sync.Mutex
	var found []Finding
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				seed := scheduleSeed(cfg.Seed, j.target.Name(), j.round)
				gen := rand.New(rand.NewSource(seed))
				sched := Generate(gen, j.target.Topology(), cfg.FaultKinds...)
				sched.Seed = seed
				out := runSchedule(j.target, sched, opts)
				out.Round = j.round
				mu.Lock()
				st := res.Stats[out.Target]
				st.Rounds++
				st.Violations += len(out.Violations)
				if out.Err != nil {
					st.Errors++
					res.Errors++
				}
				for _, v := range out.Violations {
					found = append(found, Finding{
						Violation: v,
						Round:     j.round,
						Schedule:  sched,
						History:   out.History,
					})
				}
				if cfg.Log != nil {
					fmt.Fprintf(cfg.Log, "round %3d  %-22s violations=%d%s\n",
						j.round, out.Target, len(out.Violations), errSuffix(out.Err))
				}
				mu.Unlock()
			}
		}()
	}
	for _, t := range cfg.Targets {
		for r := 0; r < cfg.Rounds; r++ {
			jobs <- job{target: t, round: r}
		}
	}
	close(jobs)
	wg.Wait()

	res.Findings = Dedup(found)
	for _, f := range res.Findings {
		if st, ok := res.Stats[f.Violation.Target]; ok {
			st.Unique++
		}
	}
	if cfg.Shrink {
		res.shrinkAll(cfg)
	}
	return res
}

func errSuffix(err error) string {
	if err == nil {
		return ""
	}
	return "  error=" + err.Error()
}

// shrinkAll minimizes one schedule per unique finding, in parallel up
// to the worker bound.
func (r *Result) shrinkAll(cfg Config) {
	byName := make(map[string]Target, len(cfg.Targets))
	for _, t := range cfg.Targets {
		byName[t.Name()] = t
	}
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	var logMu sync.Mutex
	for i := range r.Findings {
		f := &r.Findings[i]
		t, ok := byName[f.Violation.Target]
		if !ok {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			shrunk, confirmed := shrink(t, f.Schedule, f.Violation.Signature(), cfg.ShrinkAttempts,
				runOpts{virtual: cfg.VirtualTime, settle: cfg.Settle})
			// Only a schedule that actually re-reproduced the signature
			// is reported as a minimal reproducer.
			if confirmed {
				f.Shrunk = &shrunk
			}
			if cfg.Log != nil {
				logMu.Lock()
				if confirmed {
					fmt.Fprintf(cfg.Log, "shrunk %s: %d faults/%d ops -> %d faults/%d ops\n",
						f.Violation.Signature(), len(f.Schedule.Faults), f.Schedule.Ops,
						len(shrunk.Faults), shrunk.Ops)
				} else {
					fmt.Fprintf(cfg.Log, "shrink %s: violation did not re-reproduce; keeping the original schedule unconfirmed\n",
						f.Violation.Signature())
				}
				logMu.Unlock()
			}
		}()
	}
	wg.Wait()
	sortFindings(r.Findings)
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Count != fs[j].Count {
			return fs[i].Count > fs[j].Count
		}
		return fs[i].Signature() < fs[j].Signature()
	})
}

// ids builds a node-ID slice "prefix1".."prefixN".
func ids(prefix string, n int) []netsim.NodeID {
	out := make([]netsim.NodeID, n)
	for i := range out {
		out[i] = netsim.NodeID(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return out
}
