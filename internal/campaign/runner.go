package campaign

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"neat/internal/clock"
	"neat/internal/core"
	"neat/internal/coverage"
	"neat/internal/history"
	"neat/internal/netsim"
)

// RoundOutcome is the result of executing one schedule against one
// target.
type RoundOutcome struct {
	Target     string
	Round      int
	Schedule   Schedule
	Violations []Violation
	// History is the round's full recorded operation history,
	// retained only when the round ran with tracing on.
	History history.History
	// Recovery summarizes the post-heal recovery-validation phase; nil
	// when probing was disabled.
	Recovery *RecoveryStats
	// Net is the fabric's final packet-outcome counters, snapshotted at
	// a deterministic virtual instant (after the checks, with the
	// round's busy token still held).
	Net netsim.Stats
	// Coverage is the round's deterministic coverage signature (see
	// roundCoverage); zero when the round failed before judging.
	Coverage coverage.Signature
	Err      error
}

// RecoveryStats summarizes one round's recovery-validation phase.
type RecoveryStats struct {
	// Recovered reports whether the prober confirmed full recovery
	// inside the RTO window.
	Recovered bool
	// RecoveryTime is the offset from probe start at which the prober
	// first confirmed full recovery; -1 when it never did (or the
	// target has no Prober).
	RecoveryTime time.Duration
	// Passes counts probe passes driven; Ops counts the operations
	// they recorded; Retries counts resilience-layer retry attempts
	// they spent.
	Passes, Ops, Retries int
	// FirstOk maps each probed group (key, or key@node) to the offset
	// from probe start of its first successful probe operation; groups
	// that never succeeded are absent.
	FirstOk map[string]time.Duration
}

// DefaultSettle is the runner's post-heal quiescence wait: how long
// the round's clock runs after the last fault heals before the
// observation phase reads the settled state. One clock-driven wait,
// uniform across targets, replaces the per-target settle sleeps the
// embedded checkers used to carry; Config.Settle tunes it.
const DefaultSettle = 250 * time.Millisecond

// DefaultRTO is the default recovery-time objective: how long, on the
// round's clock, the post-heal probe phase gives the system to come
// back before the Recovery checker's violation classes apply. Virtual
// time makes the window essentially free when the target recovers on
// the first probe pass.
const DefaultRTO = time.Second

// DefaultRoundTimeout is the per-round wall-clock watchdog: a round
// that has not completed within it is abandoned as an engine-error
// finding (its goroutine is leaked) and the campaign keeps going. It
// is far above any healthy round — virtual rounds complete in
// milliseconds, real-clock rounds in seconds.
const DefaultRoundTimeout = 2 * time.Minute

// runOpts bundles the execution knobs a single round runs under.
type runOpts struct {
	virtual bool
	settle  time.Duration
	trace   bool
	// noProbe disables the post-heal recovery-validation phase. Probe
	// on is the zero value: replays and shrinks must preserve the
	// probe phase or recovery violations could never re-reproduce.
	noProbe bool
	// rto bounds the probe phase on the round's clock; 0 means
	// DefaultRTO.
	rto time.Duration
	// watchdog is the per-round wall-clock bound; 0 means
	// DefaultRoundTimeout, negative disables the watchdog.
	watchdog time.Duration
}

func (o runOpts) withDefaults() runOpts {
	if o.settle <= 0 {
		o.settle = DefaultSettle
	}
	if o.rto <= 0 {
		o.rto = DefaultRTO
	}
	if o.watchdog == 0 {
		o.watchdog = DefaultRoundTimeout
	}
	return o
}

// RunSchedule deploys a fresh instance of the target on its own
// engine, executes the schedule's workload rounds with faults injected
// and healed at their scheduled indices, then heals everything,
// restarts crashed nodes, waits out the quiescence settle, runs the
// observation phase, and judges the recorded history with the
// target's checkers. It runs on the real wall clock; campaigns
// normally use RunScheduleVirtual.
func RunSchedule(t Target, sched Schedule) RoundOutcome {
	return runSchedule(t, sched, runOpts{})
}

// RunScheduleVirtual runs the schedule against a fresh simulated clock
// owned by this round alone: timing waits (election timeouts,
// heartbeat periods, workload pacing) complete at CPU speed, and the
// round's timer sequence depends only on the schedule — not on how
// loaded the host is — so identical seeds yield identical outcomes.
// Each round getting its own clock keeps rounds independent and lets
// them run concurrently.
func RunScheduleVirtual(t Target, sched Schedule) RoundOutcome {
	return runSchedule(t, sched, runOpts{virtual: true})
}

// runSchedule hardens one round's execution: the round body runs on
// its own goroutine under a wall-clock watchdog, and a panicking or
// wedged round becomes an "engine-error" finding instead of killing
// or hanging the campaign. A wedged round's goroutine (and engine) is
// leaked deliberately — joining it is what the watchdog exists to
// avoid.
func runSchedule(t Target, sched Schedule, opts runOpts) RoundOutcome {
	opts = opts.withDefaults()
	done := make(chan RoundOutcome, 1)
	//neat:allow goaccount -- driver-side round isolation: this goroutine hosts the round's engine, it does not run inside one
	go func() {
		defer func() {
			if r := recover(); r != nil {
				// The body's own defers (engine shutdown, clock stop)
				// already ran during unwinding; report the round as an
				// engine error carrying the stack.
				buf := make([]byte, 64<<10)
				n := runtime.Stack(buf, false)
				o := RoundOutcome{Target: t.Name(), Schedule: sched}
				o.Err = fmt.Errorf("campaign: round panicked: %v", r)
				o.Violations = []Violation{{
					Target:    t.Name(),
					Invariant: "engine-error",
					Subject:   "panic",
					Detail:    fmt.Sprintf("round panicked: %v\n%s", r, buf[:n]),
				}}
				done <- o
			}
		}()
		done <- runScheduleBody(t, sched, opts)
	}()
	var timeoutC <-chan time.Time
	if opts.watchdog > 0 {
		//neat:allow realclock -- the watchdog must run on the wall clock: a wedged round's virtual clock never advances
		tm := time.NewTimer(opts.watchdog)
		defer tm.Stop()
		timeoutC = tm.C
	}
	select {
	case o := <-done:
		return o
	case <-timeoutC:
		buf := make([]byte, 256<<10)
		n := runtime.Stack(buf, true)
		out := RoundOutcome{Target: t.Name(), Schedule: sched}
		out.Err = fmt.Errorf("campaign: round wedged: exceeded the %v wall-clock watchdog", opts.watchdog)
		out.Violations = []Violation{{
			Target:    t.Name(),
			Invariant: "engine-error",
			Subject:   "watchdog",
			Detail: fmt.Sprintf("round made no progress within the %v wall-clock watchdog; goroutine dump:\n%s",
				opts.watchdog, buf[:n]),
		}}
		return out
	}
}

func runScheduleBody(t Target, sched Schedule, opts runOpts) RoundOutcome {
	out := RoundOutcome{Target: t.Name(), Schedule: sched}
	var engOpts core.Options
	if opts.virtual {
		sim := clock.NewSim()
		defer sim.Stop()
		engOpts.Net.Clock = sim
	}
	eng := core.NewEngine(engOpts)
	defer eng.Shutdown()
	topo := t.Topology()
	for _, id := range topo.Servers {
		eng.AddNode(id, core.RoleServer)
	}
	for _, id := range topo.Services {
		eng.AddNode(id, core.RoleService)
	}
	for _, id := range topo.Clients {
		eng.AddNode(id, core.RoleClient)
	}
	rec := history.NewRecorder(eng.Clock())
	inst, err := t.Deploy(eng, rec)
	if err != nil {
		out.Err = fmt.Errorf("campaign: deploying %s: %w", t.Name(), err)
		return out
	}
	defer inst.Close()
	// The round's driving goroutine holds a scoped busy token for the
	// workload and check phases: virtual time cannot overtake it while
	// it computes between operations, yet the token is surrendered
	// whenever it blocks in a clock wait (a workload sleep, an RPC
	// timeout). Released before the deferred teardown so that Stop-time
	// joins can still let time advance.
	clock.AcquireScoped(eng.Clock())
	defer clock.ReleaseScoped(eng.Clock())

	// The workload rng is derived from the schedule seed so a replay
	// of the schedule replays the workload too.
	rng := rand.New(rand.NewSource(sched.Seed ^ 0x6e6561742d66757a)) // "neat-fuz"
	active := make([]*core.Partition, len(sched.Faults))
	crashed := make([]bool, len(sched.Faults))
	paused := make([]bool, len(sched.Faults))
	skewed := make([]bool, len(sched.Faults))
	diskOn := make([]bool, len(sched.Faults))
	// Restart-fault recovery bookkeeping. The recovery callback runs on
	// the clock's advancer (only while this goroutine is parked in a
	// clock wait), but downMu keeps the shared state honest anyway.
	restartTimers := make([]clock.Timer, len(sched.Faults))
	restartDone := make([]bool, len(sched.Faults))
	var downMu sync.Mutex
	// downRef refcounts crashed nodes: two crash faults may share a
	// victim, and healing one must not restart a node another fault
	// still holds down. activeCount is guarded by downMu too, because a
	// restart fault ends on the clock's advancer goroutine when its
	// timer fires — the count must drop there, or every later
	// operation would be stamped with a fault that is already over.
	downRef := make(map[netsim.NodeID]int)
	activeCount := 0
	addActive := func(d int) {
		downMu.Lock()
		activeCount += d
		downMu.Unlock()
	}
	curActive := func() int {
		downMu.Lock()
		defer downMu.Unlock()
		return activeCount
	}
	heal := func(i int) {
		f := sched.Faults[i]
		switch f.Kind {
		case FaultCrash:
			if crashed[i] {
				v := f.GroupA[0]
				downMu.Lock()
				activeCount--
				if downRef[v]--; downRef[v] == 0 {
					eng.Restart(v)
				}
				downMu.Unlock()
				crashed[i] = false
			}
			return
		case FaultPause:
			if paused[i] {
				eng.Resume(f.GroupA[0])
				paused[i] = false
				addActive(-1)
			}
			return
		case FaultSkew:
			if skewed[i] {
				eng.ClearSkew(f.GroupA[0])
				skewed[i] = false
				addActive(-1)
			}
			return
		case FaultDisk:
			if diskOn[i] {
				inst.(DiskFaulter).SetDiskFault(f.GroupA[0], "")
				diskOn[i] = false
				addActive(-1)
			}
			return
		case FaultRestart:
			// Force the recovery now if its timer has not fired yet.
			v := f.GroupA[0]
			downMu.Lock()
			if !restartDone[i] {
				restartDone[i] = true
				if tm := restartTimers[i]; tm != nil {
					tm.Stop()
				}
				activeCount--
				if downRef[v]--; downRef[v] == 0 {
					eng.Restart(v)
				}
			}
			downMu.Unlock()
			return
		}
		if active[i] != nil {
			_ = eng.Heal(active[i])
			active[i] = nil
			addActive(-1)
		}
	}
	for op := 0; op < sched.Ops; op++ {
		for i, f := range sched.Faults {
			if f.HealAt == op {
				heal(i)
			}
		}
		for i, f := range sched.Faults {
			if f.At != op {
				continue
			}
			var err error
			switch f.Kind {
			case FaultComplete:
				active[i], err = eng.Complete(f.GroupA, f.GroupB)
			case FaultPartial:
				active[i], err = eng.Partial(f.GroupA, f.GroupB)
			case FaultSimplex:
				active[i], err = eng.Simplex(f.GroupA, f.GroupB)
			case FaultSlow:
				d := time.Duration(f.DelayMs) * time.Millisecond
				active[i], err = eng.Slow(f.GroupA, f.GroupB, d, d/4)
			case FaultLoss:
				active[i], err = eng.Lossy(f.GroupA, f.GroupB, f.Rate)
			case FaultFlaky:
				active[i], err = eng.Flaky(f.GroupA, f.GroupB, netsim.Chaos{
					Dup:           f.Rate,
					Reorder:       f.Rate,
					ReorderWindow: time.Duration(f.DelayMs) * time.Millisecond,
				})
			case FaultFlap:
				active[i], err = eng.Flap(f.GroupA, f.GroupB, time.Duration(f.DelayMs)*time.Millisecond)
			case FaultCrash:
				v := f.GroupA[0]
				downMu.Lock()
				if downRef[v] == 0 {
					eng.Crash(v)
				}
				downRef[v]++
				downMu.Unlock()
				crashed[i] = true
			case FaultSkew:
				eng.Skew(f.GroupA[0], time.Duration(f.DelayMs)*time.Millisecond, f.Rate)
				skewed[i] = true
			case FaultPause:
				eng.Pause(f.GroupA[0])
				paused[i] = true
			case FaultDisk:
				df, ok := inst.(DiskFaulter)
				if !ok {
					err = fmt.Errorf("target declares DiskNodes but its instance lacks SetDiskFault")
					break
				}
				df.SetDiskFault(f.GroupA[0], f.Mode)
				diskOn[i] = true
			case FaultRestart:
				v := f.GroupA[0]
				downMu.Lock()
				if downRef[v] == 0 {
					eng.Crash(v)
				}
				downRef[v]++
				downMu.Unlock()
				idx := i
				// The scheduled recovery ends the fault on the round's
				// clock: the active count drops, and the victim restarts
				// only if no other fault still holds it down — a crash
				// fault sharing the victim must keep it dark.
				restartTimers[i] = eng.Clock().AfterFunc(time.Duration(f.DelayMs)*time.Millisecond, func() {
					downMu.Lock()
					if !restartDone[idx] {
						restartDone[idx] = true
						activeCount--
						if downRef[v]--; downRef[v] == 0 {
							eng.Restart(v)
						}
					}
					downMu.Unlock()
				})
			default:
				err = fmt.Errorf("unknown fault kind %v", f.Kind)
			}
			if err != nil {
				// A round whose faults never took effect must not be
				// reported as a clean run of this schedule.
				out.Err = fmt.Errorf("campaign: injecting %q: %w", f.String(), err)
				return out
			}
			addActive(1)
		}
		n := curActive()
		rec.SetFaults(n)
		inst.Step(&StepCtx{Rng: rng, Clock: eng.Clock(), Op: op, ActiveFaults: n, Paused: eng.IsPaused})
	}
	// End-of-schedule heal: resume frozen nodes, clear skews, disarm
	// lying disks, and cancel pending recovery timers (their victims
	// are revived with the crashed nodes below), so the observation
	// phase reads a fault-free fabric. Corruption already written by a
	// disk fault stays — that is the failure under test.
	for i, f := range sched.Faults {
		switch f.Kind {
		case FaultPause:
			if paused[i] {
				eng.Resume(f.GroupA[0])
				paused[i] = false
			}
		case FaultSkew:
			if skewed[i] {
				eng.ClearSkew(f.GroupA[0])
				skewed[i] = false
			}
		case FaultDisk:
			if diskOn[i] {
				inst.(DiskFaulter).SetDiskFault(f.GroupA[0], "")
				diskOn[i] = false
			}
		case FaultRestart:
			downMu.Lock()
			if !restartDone[i] {
				restartDone[i] = true
				if tm := restartTimers[i]; tm != nil {
					tm.Stop()
				}
				activeCount--
				// downRef stays counted; the forced-restart loop below
				// revives every node still held down.
			}
			downMu.Unlock()
		}
	}
	_ = eng.HealAll()
	// Force every still-down victim back up, in sorted order for
	// determinism — crash faults that never healed and restart faults
	// whose timer never fired — so the recovery-validation phase
	// measures real post-heal recovery rather than a permanently dark
	// node.
	downMu.Lock()
	victims := make([]netsim.NodeID, 0, len(downRef))
	for v, n := range downRef {
		if n > 0 {
			victims = append(victims, v)
		}
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a] < victims[b] })
	for _, v := range victims {
		eng.Restart(v)
		downRef[v] = 0
	}
	downMu.Unlock()
	rec.SetFaults(0)
	// Quiescence: one clock-driven settle, uniform across targets, so
	// re-elections, session re-establishment, and post-heal
	// consolidation complete before the settled state is observed.
	eng.Clock().Sleep(opts.settle)
	if !opts.noProbe {
		out.Recovery = runProbe(inst, rec, eng, rng, sched, opts)
	}
	inst.Observe(&StepCtx{Rng: rng, Clock: eng.Clock(), Op: -1, Paused: eng.IsPaused})
	h := rec.History()
	for _, check := range t.Checks() {
		for _, v := range check(h) {
			out.Violations = append(out.Violations, Violation{
				Target:    t.Name(),
				Invariant: v.Invariant,
				Subject:   v.Subject,
				Detail:    v.Detail,
				Trace:     v.Witness,
			})
		}
	}
	if opts.trace {
		out.History = h
	}
	out.Net = eng.Network().Stats()
	out.Coverage = roundCoverage(&out, h)
	return out
}

// runProbe drives the recovery-validation phase: with every fault
// healed and every victim back up, probe passes run on the round's
// clock inside the RTO window — a Prober instance's deterministic
// probe workload, or a generic fallback that keeps re-running the
// workload slice with continuing op indices. Probe operations are
// recorded under history.PhaseProbe, which is all the Recovery
// checker judges; a Prober that confirms full recovery ends the phase
// early.
func runProbe(inst Instance, rec *history.Recorder, eng *core.Engine, rng *rand.Rand, sched Schedule, opts runOpts) *RecoveryStats {
	stats := &RecoveryStats{RecoveryTime: -1, FirstOk: map[string]time.Duration{}}
	clk := eng.Clock()
	prober, hasProber := inst.(Prober)
	start := clk.Now()
	// Probe pacing: up to 8 passes across the RTO window, the first
	// immediately — a healthy target recovers on pass one and pays
	// almost nothing.
	interval := opts.rto / 8
	if interval <= 0 {
		interval = time.Millisecond
	}
	rec.SetPhase(history.PhaseProbe)
	for pass := 0; ; pass++ {
		ctx := &StepCtx{
			Rng: rng, Clock: clk, Op: sched.Ops + pass,
			Paused: eng.IsPaused, Probe: true, retries: &stats.Retries,
		}
		before := rec.Len()
		recovered := false
		if hasProber {
			recovered = prober.Probe(ctx)
		} else {
			inst.Step(ctx)
		}
		stats.Passes++
		stats.Ops += rec.Len() - before
		if recovered {
			stats.Recovered = true
			stats.RecoveryTime = clk.Now().Sub(start)
			break
		}
		if clk.Now().Sub(start)+interval >= opts.rto {
			break
		}
		clk.Sleep(interval)
	}
	rec.SetPhase(history.PhaseMain)
	// Per-group first-success offsets, for the report's recovery_ns.
	probes := rec.History().Filter(func(op history.Op) bool { return op.Phase == history.PhaseProbe })
	if len(probes) > 0 {
		base := probes[0].Invoke
		for _, op := range probes {
			if op.Outcome != history.Ok {
				continue
			}
			g := op.Key
			if op.Node != "" {
				g = op.Key + "@" + op.Node
			}
			if _, seen := stats.FirstOk[g]; !seen {
				stats.FirstOk[g] = op.Invoke - base
			}
		}
	}
	return stats
}

// scheduleSeed derives the deterministic schedule seed for one
// (campaign seed, target, round) triple.
func scheduleSeed(base int64, target string, round int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", base, target, round)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// TargetStats aggregates one target's campaign outcome.
type TargetStats struct {
	Rounds     int
	Violations int
	Unique     int
	Errors     int
	// ProbedRounds counts rounds whose recovery-validation phase ran;
	// RecoveredRounds how many of those confirmed full recovery within
	// the RTO window.
	ProbedRounds    int
	RecoveredRounds int
	// ProbeOps and ProbeRetries total the recorded probe operations
	// and the resilience-layer retry attempts they spent.
	ProbeOps     int
	ProbeRetries int
	// MaxRecoveryNs is the slowest confirmed full recovery (virtual
	// nanoseconds from probe start).
	MaxRecoveryNs int64
	// Signatures counts the distinct coverage signatures the target's
	// rounds produced during this run.
	Signatures int
	// MutatedRounds counts rounds whose schedule was derived by corpus
	// mutation rather than fresh generation.
	MutatedRounds int
	// CorpusNew counts rounds whose signature was novel for the corpus
	// (including one pre-seeded from a prior campaign), so their
	// schedules were added as mutation parents.
	CorpusNew int
	// RecoveryNs is the worst-case per-group recovery time (virtual
	// nanoseconds from probe start to the group's first successful
	// probe), across the target's rounds.
	RecoveryNs map[string]int64
}

// Config configures a campaign.
type Config struct {
	// Targets are the systems to fuzz.
	Targets []Target
	// Rounds is how many schedules to run per target.
	Rounds int
	// Seed derives every schedule seed; equal seeds regenerate equal
	// schedules.
	Seed int64
	// FaultKinds restricts which fault kinds Generate draws; nil or
	// empty means AllFaultKinds. cmd/neat-fuzz sets it from -faults.
	FaultKinds []FaultKind
	// VirtualTime runs every round (and every shrink re-execution) on
	// its own fresh simulated clock, so timing waits complete at CPU
	// speed instead of wall-clock speed and identical seeds yield
	// identical outcomes. cmd/neat-fuzz enables this by default.
	VirtualTime bool
	// Workers bounds concurrent rounds; 0 means a default based on
	// GOMAXPROCS. Real-clock rounds spend most of their time in timing
	// sleeps, so modest oversubscription helps wall-clock even on one
	// CPU. Virtual-time rounds are mostly CPU-bound; their default is
	// GOMAXPROCS*2 clamped to [8, 16] — the extra workers cover the
	// brief settle waits each round's clock takes between advances.
	// Outcomes are identical at any worker count.
	Workers int
	// Shrink greedily minimizes one failing schedule per unique
	// violation signature.
	Shrink bool
	// ShrinkAttempts is how many times a candidate schedule is run
	// while shrinking before concluding it no longer reproduces
	// (default 1).
	ShrinkAttempts int
	// Settle is the post-heal quiescence wait on the round's clock
	// before the observation phase; 0 means DefaultSettle. Uniform
	// across targets and virtually free under VirtualTime.
	Settle time.Duration
	// RTO is the recovery-time objective: how long, on the round's
	// clock, the post-heal probe phase gives the system to come back
	// before the Recovery checker's stuck/degraded/data-loss classes
	// apply; 0 means DefaultRTO. cmd/neat-fuzz sets it from -rto.
	RTO time.Duration
	// NoProbe disables the recovery-validation phase entirely; the
	// campaign then judges only in-window safety, as before the phase
	// existed. cmd/neat-fuzz sets it from -probe=false.
	NoProbe bool
	// RoundTimeout is the per-round wall-clock watchdog: a round
	// exceeding it is abandoned as an engine-error finding and the
	// campaign keeps going; 0 means DefaultRoundTimeout, negative
	// disables the watchdog.
	RoundTimeout time.Duration
	// Mutate turns on coverage-guided search: rounds run in small
	// generations, and once the corpus has parents for a target most of
	// its later schedules are derived by mutating corpus entries
	// instead of fresh random generation. Schedules stay a pure
	// function of (Seed, target, round, corpus-at-generation-start), so
	// mutate campaigns are byte-identical across worker counts too.
	// cmd/neat-fuzz sets it from -mutate.
	Mutate bool
	// Corpus, when set, seeds the coverage corpus (typically loaded
	// from a prior campaign's -corpus file) and receives this
	// campaign's novel schedules. Nil means start empty.
	Corpus *Corpus
	// Trace retains every finding's full recorded operation history
	// (the witness trace is always kept). cmd/neat-fuzz sets it from
	// -trace.
	Trace bool
	// Log, when set, receives one line per completed round.
	Log io.Writer
}

// Result is the campaign outcome.
type Result struct {
	Seed     int64
	Rounds   int
	Targets  []string
	Stats    map[string]*TargetStats
	Findings []Finding
	// Errors counts rounds that failed to deploy or execute.
	Errors int
	// Mutate records whether the campaign ran the coverage-guided
	// search; Corpus is the coverage corpus after the run (pre-seeded
	// entries plus every schedule that reached a novel signature).
	Mutate bool
	Corpus *Corpus
}

// TotalViolations sums every violation found, before deduplication.
func (r *Result) TotalViolations() int {
	n := 0
	for _, s := range r.Stats {
		n += s.Violations
	}
	return n
}

// mutateGenerationSize is how many rounds per target run between
// corpus barriers in mutate mode. Corpus additions apply only at the
// barrier, in (target, round) order, so every schedule in a generation
// depends on the corpus as it stood at the generation's start — never
// on which worker finished a sibling round first.
const mutateGenerationSize = 5

// mutateFreshFraction is the share of mutate-mode rounds that still
// run a freshly generated schedule once the corpus has parents, so the
// search keeps exploring states no ancestor reached.
const mutateFreshFraction = 0.4

// runJob is one scheduled round: the schedule is fixed before the
// generation starts, so workers only execute.
type runJob struct {
	target  Target
	round   int
	sched   Schedule
	mutated bool
}

// Run executes a campaign: Rounds seeded schedules per target on a
// worker pool, violations deduplicated by signature, and (optionally)
// one greedy shrink per unique signature. With cfg.Mutate the rounds
// run in generations and most schedules are derived by mutating corpus
// entries once the corpus has any.
func Run(cfg Config) *Result {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 10
	}
	if cfg.Workers <= 0 {
		// Virtual-time rounds are mostly CPU-bound with brief settle
		// waits between clock advances, so they take a higher floor and
		// ceiling; real-clock rounds sleep most of the time, so a small
		// pool suffices either way. Rounds stay deterministic regardless
		// of the worker count: each runs on its own engine, clock, and
		// seed-derived rng.
		lo, hi := 2, 8
		if cfg.VirtualTime {
			lo, hi = 8, 16
		}
		cfg.Workers = min(max(runtime.GOMAXPROCS(0)*2, lo), hi)
	}
	corpus := cfg.Corpus
	if corpus == nil {
		corpus = NewCorpus()
	}
	res := &Result{
		Seed:   cfg.Seed,
		Rounds: cfg.Rounds,
		Stats:  make(map[string]*TargetStats),
		Mutate: cfg.Mutate,
		Corpus: corpus,
	}
	for _, t := range cfg.Targets {
		res.Targets = append(res.Targets, t.Name())
		res.Stats[t.Name()] = &TargetStats{}
	}

	opts := runOpts{
		virtual: cfg.VirtualTime, settle: cfg.Settle, trace: cfg.Trace,
		noProbe: cfg.NoProbe, rto: cfg.RTO, watchdog: cfg.RoundTimeout,
	}
	// Generation size: the whole campaign at once without mutation
	// (schedules never depend on earlier outcomes), small batches with
	// it (each generation mutates what the previous ones learned).
	genSize := cfg.Rounds
	if cfg.Mutate {
		genSize = mutateGenerationSize
	}
	covSets := make(map[string]*coverage.Set, len(cfg.Targets))
	var found []Finding
	for g0 := 0; g0 < cfg.Rounds; g0 += genSize {
		gEnd := min(g0+genSize, cfg.Rounds)
		jobs := make([]runJob, 0, len(cfg.Targets)*(gEnd-g0))
		for _, t := range cfg.Targets {
			var pool []Schedule
			if cfg.Mutate {
				pool = corpus.ForTarget(t.Name())
			}
			for r := g0; r < gEnd; r++ {
				seed := scheduleSeed(cfg.Seed, t.Name(), r)
				gen := rand.New(rand.NewSource(seed))
				j := runJob{target: t, round: r}
				if cfg.Mutate && len(pool) > 0 && gen.Float64() >= mutateFreshFraction {
					j.sched = Mutate(gen, t.Topology(), cfg.FaultKinds, pool)
					j.mutated = true
				} else {
					j.sched = Generate(gen, t.Topology(), cfg.FaultKinds...)
				}
				j.sched.Seed = seed
				jobs = append(jobs, j)
			}
		}
		outs := runGeneration(cfg, jobs, opts)
		res.aggregate(corpus, covSets, jobs, outs, &found)
	}

	res.Findings = Dedup(found)
	for _, f := range res.Findings {
		if st, ok := res.Stats[f.Violation.Target]; ok {
			st.Unique++
		}
	}
	if cfg.Shrink {
		res.shrinkAll(cfg)
	}
	return res
}

// runGeneration executes one generation's jobs on the worker pool and
// returns the outcomes slotted by job index. Log lines stream in
// completion order (they are progress, not part of the result); the
// outcomes themselves are consumed in job order by aggregate.
func runGeneration(cfg Config, jobs []runJob, opts runOpts) []RoundOutcome {
	outs := make([]RoundOutcome, len(jobs))
	workers := min(cfg.Workers, len(jobs))
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var logMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//neat:allow goaccount -- campaign worker pool: drivers run rounds, each round owns its own virtual clock
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				out := runSchedule(j.target, j.sched, opts)
				out.Round = j.round
				outs[i] = out
				if cfg.Log != nil {
					logMu.Lock()
					fmt.Fprintf(cfg.Log, "round %3d  %-22s violations=%d%s%s\n",
						j.round, out.Target, len(out.Violations), recoverySuffix(out.Recovery), errSuffix(out.Err))
					logMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return outs
}

// aggregate folds one generation's outcomes into the result and the
// corpus, strictly in job order — (target, round) — so stats, corpus
// insertion order, and finding order are independent of worker
// scheduling.
func (r *Result) aggregate(corpus *Corpus, covSets map[string]*coverage.Set, jobs []runJob, outs []RoundOutcome, found *[]Finding) {
	for i, j := range jobs {
		out := outs[i]
		name := j.target.Name()
		st := r.Stats[name]
		st.Rounds++
		st.Violations += len(out.Violations)
		if j.mutated {
			st.MutatedRounds++
		}
		if out.Err != nil {
			st.Errors++
			r.Errors++
		}
		if rcv := out.Recovery; rcv != nil {
			st.ProbedRounds++
			st.ProbeOps += rcv.Ops
			st.ProbeRetries += rcv.Retries
			if rcv.Recovered {
				st.RecoveredRounds++
				if ns := rcv.RecoveryTime.Nanoseconds(); ns > st.MaxRecoveryNs {
					st.MaxRecoveryNs = ns
				}
			}
			for g, d := range rcv.FirstOk {
				if st.RecoveryNs == nil {
					st.RecoveryNs = make(map[string]int64)
				}
				if ns := d.Nanoseconds(); ns > st.RecoveryNs[g] {
					st.RecoveryNs[g] = ns
				}
			}
		}
		if out.Err == nil {
			// Coverage accounting only for rounds that actually ran to
			// judgment: a deploy failure or wedged round has no signature.
			set := covSets[name]
			if set == nil {
				set = &coverage.Set{}
				covSets[name] = set
			}
			if set.Add(out.Coverage) {
				st.Signatures++
			}
			if corpus.Add(name, out.Coverage, j.sched) {
				st.CorpusNew++
			}
		}
		for _, v := range out.Violations {
			*found = append(*found, Finding{
				Violation: v,
				Round:     j.round,
				Schedule:  j.sched,
				History:   out.History,
			})
		}
	}
}

func errSuffix(err error) string {
	if err == nil {
		return ""
	}
	return "  error=" + err.Error()
}

func recoverySuffix(rcv *RecoveryStats) string {
	switch {
	case rcv == nil:
		return ""
	case rcv.Recovered:
		return fmt.Sprintf("  recovery=%v", rcv.RecoveryTime)
	default:
		return "  recovery=unconfirmed"
	}
}

// shrinkAll minimizes one schedule per unique finding, in parallel up
// to the worker bound.
func (r *Result) shrinkAll(cfg Config) {
	byName := make(map[string]Target, len(cfg.Targets))
	for _, t := range cfg.Targets {
		byName[t.Name()] = t
	}
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	var logMu sync.Mutex
	for i := range r.Findings {
		f := &r.Findings[i]
		t, ok := byName[f.Violation.Target]
		if !ok {
			continue
		}
		if f.Violation.Invariant == "engine-error" {
			// Re-running a wedged or panicking round would cost a
			// watchdog timeout per shrink attempt; the schedule itself
			// is the reproducer.
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		//neat:allow goaccount -- shrink worker pool: driver-side re-runs, outside any simulated clock
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// The shrink re-runs carry the round options — including the
			// probe phase and its RTO — or recovery violations could
			// never re-reproduce during minimization.
			shrunk, confirmed := shrink(t, f.Schedule, f.Violation.Signature(), cfg.ShrinkAttempts,
				runOpts{virtual: cfg.VirtualTime, settle: cfg.Settle,
					noProbe: cfg.NoProbe, rto: cfg.RTO, watchdog: cfg.RoundTimeout})
			// Only a schedule that actually re-reproduced the signature
			// is reported as a minimal reproducer.
			if confirmed {
				f.Shrunk = &shrunk
			}
			if cfg.Log != nil {
				logMu.Lock()
				if confirmed {
					fmt.Fprintf(cfg.Log, "shrunk %s: %d faults/%d ops -> %d faults/%d ops\n",
						f.Violation.Signature(), len(f.Schedule.Faults), f.Schedule.Ops,
						len(shrunk.Faults), shrunk.Ops)
				} else {
					fmt.Fprintf(cfg.Log, "shrink %s: violation did not re-reproduce; keeping the original schedule unconfirmed\n",
						f.Violation.Signature())
				}
				logMu.Unlock()
			}
		}()
	}
	wg.Wait()
	sortFindings(r.Findings)
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Count != fs[j].Count {
			return fs[i].Count > fs[j].Count
		}
		return fs[i].Signature() < fs[j].Signature()
	})
}

// ids builds a node-ID slice "prefix1".."prefixN".
func ids(prefix string, n int) []netsim.NodeID {
	out := make([]netsim.NodeID, n)
	for i := range out {
		out[i] = netsim.NodeID(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return out
}
