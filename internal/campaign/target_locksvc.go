package campaign

import (
	"fmt"
	"strconv"
	"time"

	"neat/internal/core"
	"neat/internal/history"
	"neat/internal/locksvc"
	"neat/internal/netsim"
	"neat/internal/resilience"
)

// lockTarget fuzzes the Ignite-style coordination toolkit. With
// asynchronous view-based replication (the studied default) a
// partition splits the membership views and both sides keep granting
// from the full pre-partition state: double locking and duplicate
// sequence numbers follow (Table 15). With SyncBackups every mutation
// needs acknowledgements from the entire original replica set, so
// operations fail during partitions instead of diverging — the safe
// configuration.
//
// The instance records lock/unlock/increment operations; the generic
// mutual-exclusion checker replays them with lease semantics (an
// ambiguous outcome abandons the client's holds, so SyncBackups lease
// handoffs are not misread as double grants), and the unique-outputs
// checker reports duplicate sequence values.
type lockTarget struct {
	name        string
	syncBackups bool
}

func (t *lockTarget) Name() string { return t.name }

// Safe marks the SyncBackups + fenced-release variant for the CI safe
// gate.
func (t *lockTarget) Safe() bool { return t.syncBackups }

func (t *lockTarget) Topology() Topology {
	return Topology{Servers: ids("l", 3), Clients: []netsim.NodeID{"c1", "c2"}}
}

func (t *lockTarget) Checks() []history.Check {
	return []history.Check{
		// LeaseTTL gives the replay lease semantics against silence: a
		// holder frozen by a FaultPause past the TTL is legitimately
		// reclaimed, so only grants against recently-active holders —
		// and the stale holder's blind release corrupting the new
		// grant — are flagged.
		history.MutualExclusion(history.MutexSpec{LeaseTTL: lockLeaseTTL}),
		history.UniqueOutputs("incr", "unique-sequence"),
		// Post-heal liveness over the dedicated probe lock. No
		// data-loss rule: a lock service protects exclusion, not data.
		history.Recovery(history.RecoverySpec{}),
	}
}

const lockLeaseTTL = 60 * time.Millisecond

func (t *lockTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	replicas := t.Topology().Servers
	cfg := locksvc.Config{
		Replicas:          replicas,
		HeartbeatInterval: 10 * time.Millisecond,
		MissesToSuspect:   3,
		LeaseTTL:          lockLeaseTTL,
		SyncBackups:       t.syncBackups,
		// The safe variant fences releases: a client whose lease was
		// reclaimed while it was frozen gets ErrNotHolder instead of
		// silently deleting the next holder's grant.
		ValidateRelease: t.syncBackups,
		// The safe variant also re-admits evicted members once their
		// heartbeats resume. Without it the split views persist after
		// the heal — SyncBackups then refuses every mutation forever
		// (the recovery probes report the flawed variant's permanent
		// unavailability as stuck-after-heal).
		RejoinAfterHeal: t.syncBackups,
		RPCTimeout:      20 * time.Millisecond,
	}
	sys := locksvc.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	in := &lockInstance{rec: rec}
	// The safe variant renews at TTL/6 instead of the TTL/3 default:
	// the extra margin keeps leases alive across the clock jumps a
	// FaultSkew puts on a coordinator.
	renew := time.Duration(0)
	if t.syncBackups {
		renew = lockLeaseTTL / 6
	}
	in.clients[0] = locksvc.NewClientWithRenew(eng.Network(), "c1", replicas, lockLeaseTTL, renew)
	in.clients[1] = locksvc.NewClientWithRenew(eng.Network(), "c2", replicas, lockLeaseTTL, renew)
	return in, nil
}

// lockInstance drives two clients competing for one exclusive lock
// and one shared sequence counter. holds is each client's *belief*
// about the lock — it drives the workload (hold a while, then
// release); judging which beliefs were simultaneously justified is
// the mutual-exclusion checker's job, over the recorded history.
type lockInstance struct {
	rec     *history.Recorder
	clients [2]*locksvc.Client
	holds   [2]bool
}

func (in *lockInstance) Step(ctx *StepCtx) {
	for i, cl := range in.clients {
		client := fmt.Sprintf("c%d", i+1)
		// A frozen client issues nothing: its requests would neither
		// leave nor time out until it resumes.
		if ctx.IsPaused(cl.ID()) {
			continue
		}
		if in.holds[i] {
			if ctx.Rng.Intn(2) == 0 {
				ref := in.rec.Begin(history.Op{Client: client, Kind: "unlock", Key: "L"})
				err := cl.Unlock("L")
				ref.End(history.OutcomeOf(err, locksvc.MaybeExecuted(err)), "")
				// A released or ambiguously-released lock cannot be
				// relied on either way; the client stops assuming it
				// holds. A fenced ErrNotHolder is a definitive "your
				// grant is gone" — the belief is corrected too.
				if err == nil || locksvc.MaybeExecuted(err) || locksvc.IsNotHolder(err) {
					in.holds[i] = false
				}
			}
		} else {
			ref := in.rec.Begin(history.Op{Client: client, Kind: "lock", Key: "L"})
			err := cl.Lock("L")
			ref.End(history.OutcomeOf(err, locksvc.MaybeExecuted(err)), "")
			if err == nil {
				in.holds[i] = true
			}
		}
	}
	for i, cl := range in.clients {
		client := fmt.Sprintf("c%d", i+1)
		if ctx.IsPaused(cl.ID()) {
			continue
		}
		ref := in.rec.Begin(history.Op{Client: client, Kind: "incr", Key: "seq"})
		v, err := cl.IncrementAndGet("seq", 1)
		switch {
		case err == nil:
			ref.End(history.Ok, strconv.FormatInt(v, 10))
		default:
			ref.End(history.OutcomeOf(err, locksvc.MaybeExecuted(err)), "")
			// The cluster is not answering reliably: a lease-respecting
			// client must assume its renewals fare no better and stop
			// relying on its lock, exactly like a Chubby client whose
			// lease lapsed. The checker applies the same rule.
			if locksvc.MaybeExecuted(err) {
				in.holds[i] = false
			}
		}
	}
	ctx.Clock.Sleep(time.Duration(5+ctx.Rng.Intn(10)) * time.Millisecond)
}

// Observe records nothing: the lock invariants are judged entirely
// from the in-round history.
func (in *lockInstance) Observe(*StepCtx) {}

// lockProbeKey is the dedicated probe lock — never the workload's "L",
// which may be legitimately held when the round's schedule ends.
const lockProbeKey = "PL"

// Probe validates recovery with a lock/unlock round-trip on the
// dedicated probe lock through c1. Grants are reentrant per client,
// so a previous pass's ambiguously-acquired grant (kept alive by the
// client's renewal) cannot wedge later passes.
func (in *lockInstance) Probe(ctx *StepCtx) bool {
	ok := in.probeOp(ctx, "probe-lock", func() error { return in.clients[0].Lock(lockProbeKey) })
	ok = in.probeOp(ctx, "probe-unlock", func() error { return in.clients[0].Unlock(lockProbeKey) }) && ok
	return ok
}

func (in *lockInstance) probeOp(ctx *StepCtx, kind string, fn func() error) bool {
	ref := in.rec.Begin(history.Op{Client: "c1", Kind: kind, Key: lockProbeKey})
	err := probeDo(ctx, func(err error) resilience.Class {
		if locksvc.MaybeExecuted(err) {
			return resilience.Retryable
		}
		// A definitive refusal (fenced ErrNotHolder, a held lock) is
		// the service answering; retrying cannot change it.
		return resilience.Fatal
	}, fn)
	ref.End(history.OutcomeOf(err, locksvc.MaybeExecuted(err)), "")
	return err == nil
}

func (in *lockInstance) Close() {
	for _, cl := range in.clients {
		cl.Close()
	}
}
