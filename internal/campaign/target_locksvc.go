package campaign

import (
	"fmt"
	"time"

	"neat/internal/core"
	"neat/internal/locksvc"
	"neat/internal/netsim"
)

// lockTarget fuzzes the Ignite-style coordination toolkit. With
// asynchronous view-based replication (the studied default) a
// partition splits the membership views and both sides keep granting
// from the full pre-partition state: double locking and duplicate
// sequence numbers follow (Table 15). With SyncBackups every mutation
// needs acknowledgements from the entire original replica set, so
// operations fail during partitions instead of diverging — the safe
// configuration.
type lockTarget struct {
	name        string
	syncBackups bool
}

func (t *lockTarget) Name() string { return t.name }

func (t *lockTarget) Topology() Topology {
	return Topology{Servers: ids("l", 3), Clients: []netsim.NodeID{"c1", "c2"}}
}

const lockLeaseTTL = 60 * time.Millisecond

func (t *lockTarget) Deploy(eng *core.Engine) (Instance, error) {
	replicas := t.Topology().Servers
	cfg := locksvc.Config{
		Replicas:          replicas,
		HeartbeatInterval: 10 * time.Millisecond,
		MissesToSuspect:   3,
		LeaseTTL:          lockLeaseTTL,
		SyncBackups:       t.syncBackups,
		RPCTimeout:        20 * time.Millisecond,
	}
	sys := locksvc.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	in := &lockInstance{eng: eng}
	in.clients[0] = locksvc.NewClient(eng.Network(), "c1", replicas, lockLeaseTTL)
	in.clients[1] = locksvc.NewClient(eng.Network(), "c2", replicas, lockLeaseTTL)
	return in, nil
}

// lockInstance drives two clients competing for one exclusive lock and
// one shared sequence counter. Steps run in the engine's single global
// order, so the instance can track which client believes it holds the
// lock and judge mutual exclusion exactly.
type lockInstance struct {
	eng        *core.Engine
	clients    [2]*locksvc.Client
	holds      [2]bool
	seqSeen    map[int64]int // sequence value -> client index that drew it
	violations []Violation
}

func (in *lockInstance) Step(ctx *StepCtx) {
	if in.seqSeen == nil {
		in.seqSeen = make(map[int64]int)
	}
	for i, cl := range in.clients {
		if in.holds[i] {
			if ctx.Rng.Intn(2) == 0 {
				err := cl.Unlock("L")
				// An unavailable release is ambiguous: the coordinator
				// applied it locally before replication failed, so the
				// lock may genuinely be free. Treat it as released to
				// avoid charging the safe configuration with phantom
				// double grants.
				if err == nil || locksvc.IsUnavailable(err) {
					in.holds[i] = false
				}
			}
		} else if cl.Lock("L") == nil {
			if in.holds[1-i] {
				in.violations = append(in.violations, Violation{
					Invariant: "mutual-exclusion",
					Subject:   "L",
					Detail: fmt.Sprintf("both clients hold the exclusive lock at op %d (split views grant independently)",
						ctx.Op),
				})
			}
			in.holds[i] = true
		}
	}
	for i, cl := range in.clients {
		v, err := cl.IncrementAndGet("seq", 1)
		switch {
		case err == nil:
			if other, dup := in.seqSeen[v]; dup {
				in.violations = append(in.violations, Violation{
					Invariant: "unique-sequence",
					Subject:   "seq",
					Detail: fmt.Sprintf("sequence value %d issued twice (first to c%d, again to c%d at op %d)",
						v, other+1, i+1, ctx.Op),
				})
			} else {
				in.seqSeen[v] = i
			}
		case locksvc.IsUnavailable(err):
			// The cluster cannot replicate: a lease-respecting client
			// must assume its renewals are equally unreliable and stop
			// relying on its lock, exactly like a Chubby client whose
			// lease lapsed. Without this, the legitimate lease handoff
			// of the SyncBackups configuration would be misread as a
			// double grant.
			in.holds[i] = false
		}
	}
	ctx.Clock.Sleep(time.Duration(5+ctx.Rng.Intn(10)) * time.Millisecond)
}

func (in *lockInstance) Check() []Violation { return in.violations }

func (in *lockInstance) Close() {
	for _, cl := range in.clients {
		cl.Close()
	}
}
