package campaign

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"neat/internal/core"
	"neat/internal/history"
	"neat/internal/netsim"
	"neat/internal/transport"
)

func testTopology() Topology {
	return Topology{
		Servers:  ids("s", 3),
		Services: []netsim.NodeID{"zk"},
		Clients:  []netsim.NodeID{"c1", "c2"},
	}
}

// TestGenerateDeterministic: equal seeds must generate equal
// schedules; different seeds must (eventually) differ.
func TestGenerateDeterministic(t *testing.T) {
	topo := testTopology()
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(rand.New(rand.NewSource(seed)), topo)
		b := Generate(rand.New(rand.NewSource(seed)), topo)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%v\n%v", seed, a, b)
		}
	}
	a := Generate(rand.New(rand.NewSource(1)), topo)
	differs := false
	for seed := int64(2); seed < 12; seed++ {
		if !reflect.DeepEqual(a, Generate(rand.New(rand.NewSource(seed)), topo)) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("10 different seeds all generated the schedule of seed 1")
	}
}

// TestGenerateValid checks structural invariants over many seeds:
// bounds on ops and fault counts, in-range fault indices, heals after
// injections, and disjoint non-empty partition groups.
func TestGenerateValid(t *testing.T) {
	topo := testTopology()
	for seed := int64(0); seed < 200; seed++ {
		s := Generate(rand.New(rand.NewSource(seed)), topo)
		if s.Ops < minOps || s.Ops > maxOps {
			t.Fatalf("seed %d: ops %d out of range", seed, s.Ops)
		}
		if len(s.Faults) < 1 || len(s.Faults) > maxFaults {
			t.Fatalf("seed %d: %d faults", seed, len(s.Faults))
		}
		for _, f := range s.Faults {
			if f.At < 0 || f.At >= s.Ops {
				t.Fatalf("seed %d: fault at %d with %d ops", seed, f.At, s.Ops)
			}
			if f.HealAt != -1 && (f.HealAt <= f.At || f.HealAt >= s.Ops) {
				t.Fatalf("seed %d: heal %d for injection at %d (%d ops)", seed, f.HealAt, f.At, s.Ops)
			}
			if len(f.GroupA) == 0 {
				t.Fatalf("seed %d: empty group A in %v", seed, f)
			}
			if !f.Kind.SingleVictim() {
				if len(f.GroupB) == 0 {
					t.Fatalf("seed %d: empty group B in %v", seed, f)
				}
				inA := map[netsim.NodeID]bool{}
				for _, id := range f.GroupA {
					inA[id] = true
				}
				for _, id := range f.GroupB {
					if inA[id] {
						t.Fatalf("seed %d: %s on both sides of %v", seed, id, f)
					}
				}
			}
		}
	}
}

// TestDedup: identical signatures collapse with summed counts and the
// earliest round kept; distinct signatures survive.
func TestDedup(t *testing.T) {
	v1 := Violation{Target: "t", Invariant: "durability", Subject: "k1", Detail: "a"}
	v2 := Violation{Target: "t", Invariant: "durability", Subject: "k1", Detail: "b (different detail, same signature)"}
	v3 := Violation{Target: "t", Invariant: "durability", Subject: "k2"}
	out := Dedup([]Finding{
		{Violation: v1, Round: 5},
		{Violation: v2, Round: 2},
		{Violation: v3, Round: 7},
	})
	if len(out) != 2 {
		t.Fatalf("got %d findings, want 2", len(out))
	}
	byKey := map[string]Finding{}
	for _, f := range out {
		byKey[f.Signature()] = f
	}
	f1 := byKey["t|durability|k1"]
	if f1.Count != 2 {
		t.Fatalf("k1 count = %d, want 2", f1.Count)
	}
	if f1.Round != 2 {
		t.Fatalf("k1 kept round %d, want the earliest (2)", f1.Round)
	}
	if byKey["t|durability|k2"].Count != 1 {
		t.Fatalf("k2 count = %d, want 1", byKey["t|durability|k2"].Count)
	}
}

// fakeTarget is a deterministic target for runner/shrinker tests: it
// violates its invariant iff, during some step, s1 cannot reach s2.
// Reachability is a pure function of the injected faults, so runs are
// exactly reproducible. Each step records a probe operation into the
// shared history; the target's check judges the recorded probes —
// exercising the same record-then-check path real targets use.
type fakeTarget struct{}

func (t *fakeTarget) Name() string { return "fake" }

func (t *fakeTarget) Topology() Topology {
	return Topology{Servers: ids("s", 3)}
}

func (t *fakeTarget) Checks() []history.Check {
	return []history.Check{func(h history.History) []history.Violation {
		for _, op := range h {
			if op.Kind == "probe" && op.Outcome == history.Failed {
				return []history.Violation{{
					Invariant: "fake-inv",
					Subject:   "s1-s2",
					Detail:    "link was cut",
					Witness:   []history.Op{op},
				}}
			}
		}
		return nil
	}}
}

func (t *fakeTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	in := &fakeInstance{eng: eng, rec: rec}
	// Reachability is only defined for registered hosts, so attach an
	// endpoint per server like a real system would.
	for _, id := range t.Topology().Servers {
		in.eps = append(in.eps, transport.NewEndpoint(eng.Network(), id))
	}
	return in, nil
}

type fakeInstance struct {
	eng   *core.Engine
	rec   *history.Recorder
	eps   []*transport.Endpoint
	steps int
}

func (in *fakeInstance) Step(ctx *StepCtx) {
	in.steps++
	ref := in.rec.Begin(history.Op{Client: "s1", Kind: "probe", Key: "s1-s2"})
	if in.eng.Network().Reachable("s1", "s2") {
		ref.End(history.Ok, "")
	} else {
		ref.End(history.Failed, "")
	}
}

func (in *fakeInstance) Observe(*StepCtx) {}

func (in *fakeInstance) Close() {
	for _, ep := range in.eps {
		ep.Close()
	}
}

// TestRunScheduleExecutes: the runner drives exactly Ops steps,
// injects scheduled faults, and heals them for the check.
func TestRunScheduleExecutes(t *testing.T) {
	tgt := &fakeTarget{}
	sched := Schedule{
		Seed: 42,
		Ops:  7,
		Faults: []Fault{
			{Kind: FaultPartial, At: 2, HealAt: 4,
				GroupA: []netsim.NodeID{"s1"}, GroupB: []netsim.NodeID{"s2"}},
		},
	}
	out := RunSchedule(tgt, sched)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Violations) != 1 {
		t.Fatalf("violations = %v, want the fake-inv violation", out.Violations)
	}
	if got := out.Violations[0].Signature(); got != "fake|fake-inv|s1-s2" {
		t.Fatalf("signature = %q", got)
	}
	// A schedule whose partition does not touch the watched link must
	// pass.
	sched.Faults[0].GroupB = []netsim.NodeID{"s3"}
	if out := RunSchedule(tgt, sched); len(out.Violations) != 0 {
		t.Fatalf("unrelated partition produced %v", out.Violations)
	}
}

// TestShrink: the shrinker must drop the irrelevant faults and
// truncate the workload while the schedule keeps reproducing the
// violation signature.
func TestShrink(t *testing.T) {
	tgt := &fakeTarget{}
	sched := Schedule{
		Seed: 7,
		Ops:  12,
		Faults: []Fault{
			{Kind: FaultCrash, At: 1, HealAt: 3, GroupA: []netsim.NodeID{"s3"}},
			{Kind: FaultComplete, At: 2, HealAt: -1,
				GroupA: []netsim.NodeID{"s1"}, GroupB: []netsim.NodeID{"s2", "s3"}},
			{Kind: FaultSimplex, At: 5, HealAt: 8,
				GroupA: []netsim.NodeID{"s2"}, GroupB: []netsim.NodeID{"s3"}},
		},
	}
	sig := "fake|fake-inv|s1-s2"
	if !reproduces(tgt, sched, sig, 1, runOpts{}) {
		t.Fatal("original schedule does not fail; test setup broken")
	}
	shrunk, confirmed := Shrink(tgt, sched, sig, 1)
	if !confirmed {
		t.Fatal("deterministic violation reported as unconfirmed")
	}
	if len(shrunk.Faults) != 1 {
		t.Fatalf("shrunk to %d faults, want 1: %v", len(shrunk.Faults), shrunk)
	}
	if shrunk.Faults[0].Kind != FaultComplete {
		t.Fatalf("kept the wrong fault: %v", shrunk.Faults[0])
	}
	if shrunk.Ops >= sched.Ops {
		t.Fatalf("ops not reduced: %d", shrunk.Ops)
	}
	if !reproduces(tgt, shrunk, sig, 1, runOpts{}) {
		t.Fatal("shrunk schedule no longer fails")
	}
}

// TestRunDeterministicSchedules: two identical campaigns generate
// identical per-round schedules and identical finding signatures.
func TestRunDeterministicSchedules(t *testing.T) {
	run := func() []string {
		res := Run(Config{
			Targets: []Target{&fakeTarget{}},
			Rounds:  6,
			Seed:    99,
			Workers: 3,
		})
		var sigs []string
		for _, f := range res.Findings {
			sigs = append(sigs, f.Signature())
		}
		return sigs
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("campaign not deterministic: %v vs %v", a, b)
	}
}

// TestSelect: target specs resolve, reject unknowns, and expand "all".
func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 6 {
		t.Fatalf("only %d registered targets; the campaign needs at least 6", len(all))
	}
	two, err := Select("kvstore/lowest-id, raftkv")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name() != "kvstore/lowest-id" || two[1].Name() != "raftkv" {
		t.Fatalf("bad selection: %v", two)
	}
	if _, err := Select("no-such-target"); err == nil || !strings.Contains(err.Error(), "unknown target") {
		t.Fatalf("expected unknown-target error, got %v", err)
	}
}

// TestReportShape: the JSON report carries targets, violations, and
// shrunk schedules.
func TestReportShape(t *testing.T) {
	res := Run(Config{
		Targets: []Target{&fakeTarget{}},
		Rounds:  4,
		Seed:    5,
		Workers: 2,
		Shrink:  true,
	})
	rep := res.Report()
	if rep.Tool != "neat-fuzz" || rep.Seed != 5 || rep.RoundsPerTarget != 4 {
		t.Fatalf("bad header: %+v", rep)
	}
	if len(rep.Targets) != 1 || rep.Targets[0].Name != "fake" || rep.Targets[0].Rounds != 4 {
		t.Fatalf("bad targets: %+v", rep.Targets)
	}
	for _, v := range rep.Violations {
		if v.Signature == "" || len(v.Schedule) == 0 {
			t.Fatalf("violation missing schedule context: %+v", v)
		}
		if len(v.Shrunk) == 0 {
			t.Fatalf("shrinking was requested but violation has no shrunk schedule: %+v", v)
		}
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateChaosParams: chaos faults must carry in-range magnitudes
// and probabilities.
func TestGenerateChaosParams(t *testing.T) {
	topo := testTopology()
	for seed := int64(0); seed < 300; seed++ {
		s := Generate(rand.New(rand.NewSource(seed)), topo)
		for _, f := range s.Faults {
			switch f.Kind {
			case FaultSlow:
				if f.DelayMs < minSlowDelayMs || f.DelayMs > maxSlowDelayMs {
					t.Fatalf("seed %d: slow delay %dms out of range", seed, f.DelayMs)
				}
			case FaultLoss:
				if f.Rate < minLossRate || f.Rate > maxLossRate {
					t.Fatalf("seed %d: loss rate %v out of range", seed, f.Rate)
				}
			case FaultFlaky:
				if f.Rate < minFlakyRate || f.Rate > maxFlakyRate {
					t.Fatalf("seed %d: flaky rate %v out of range", seed, f.Rate)
				}
				if f.DelayMs < minWindowMs || f.DelayMs > maxWindowMs {
					t.Fatalf("seed %d: flaky window %dms out of range", seed, f.DelayMs)
				}
			case FaultFlap:
				if f.DelayMs < minFlapMs || f.DelayMs > maxFlapMs {
					t.Fatalf("seed %d: flap period %dms out of range", seed, f.DelayMs)
				}
			}
		}
	}
}

// TestGenerateCoversAllKinds: the default mix must eventually draw
// every fault kind.
func TestGenerateCoversAllKinds(t *testing.T) {
	topo := testTopology()
	// Disk faults need disk-bearing nodes or they degrade to crashes.
	topo.DiskNodes = topo.Servers
	seen := make(map[FaultKind]bool)
	for seed := int64(0); seed < 400; seed++ {
		for _, f := range Generate(rand.New(rand.NewSource(seed)), topo).Faults {
			seen[f.Kind] = true
		}
	}
	for _, k := range AllFaultKinds {
		if !seen[k] {
			t.Fatalf("kind %v never generated in 400 seeds", k)
		}
	}
}

// TestGenerateRestrictedKinds: Generate must draw only from the given
// kind set.
func TestGenerateRestrictedKinds(t *testing.T) {
	topo := testTopology()
	allowed := map[FaultKind]bool{FaultSlow: true, FaultLoss: true, FaultFlaky: true, FaultFlap: true}
	for seed := int64(0); seed < 100; seed++ {
		for _, f := range Generate(rand.New(rand.NewSource(seed)), topo, ChaosFaultKinds...).Faults {
			if !allowed[f.Kind] {
				t.Fatalf("seed %d: kind %v outside the chaos set", seed, f.Kind)
			}
		}
	}
}

// TestGenerateEdgeTopologies is the complete-partition fixup bugfix:
// degenerate topologies must still yield valid faults — both partition
// sides nonempty and disjoint with the victim in GroupA, falling back
// to a crash when the topology has no possible peer.
func TestGenerateEdgeTopologies(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
	}{
		{"single-server", Topology{Servers: ids("s", 1)}},
		{"two-servers", Topology{Servers: ids("s", 2)}},
		{"server-and-client", Topology{Servers: ids("s", 1), Clients: []netsim.NodeID{"c1"}}},
		{"server-and-service", Topology{Servers: ids("s", 1), Services: []netsim.NodeID{"zk"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			soloNode := len(tc.topo.All()) == 1
			for seed := int64(0); seed < 300; seed++ {
				s := Generate(rand.New(rand.NewSource(seed)), tc.topo)
				for _, f := range s.Faults {
					if len(f.GroupA) == 0 {
						t.Fatalf("seed %d: empty GroupA in %v", seed, f)
					}
					if soloNode && !f.Kind.SingleVictim() {
						t.Fatalf("seed %d: single-node topology generated %v", seed, f)
					}
					if f.Kind.SingleVictim() {
						continue
					}
					if len(f.GroupB) == 0 {
						t.Fatalf("seed %d: empty GroupB in %v", seed, f)
					}
					inA := map[netsim.NodeID]bool{}
					for _, id := range f.GroupA {
						inA[id] = true
					}
					for _, id := range f.GroupB {
						if inA[id] {
							t.Fatalf("seed %d: %s on both sides of %v", seed, id, f)
						}
					}
					if f.Kind == FaultComplete || f.Kind == FaultFlap {
						if !inA["s1"] && f.GroupA[0] != "s2" {
							t.Fatalf("seed %d: victim not in GroupA of %v", seed, f)
						}
					}
				}
			}
		})
	}
}

// TestFaultKindStrings is the mislabelling bugfix: every kind renders
// its own name, and an out-of-range kind renders as faultkind(N)
// rather than silently borrowing another kind's name.
func TestFaultKindStrings(t *testing.T) {
	want := map[FaultKind]string{
		FaultComplete: "complete", FaultPartial: "partial",
		FaultSimplex: "simplex", FaultCrash: "crash",
		FaultSlow: "slow", FaultLoss: "loss",
		FaultFlaky: "flaky", FaultFlap: "flap",
		FaultSkew: "skew", FaultPause: "pause",
		FaultDisk: "disk", FaultRestart: "restart",
	}
	if len(want) != len(AllFaultKinds) {
		t.Fatalf("test covers %d kinds, enum has %d", len(want), len(AllFaultKinds))
	}
	for k, name := range want {
		if got := k.String(); got != name {
			t.Fatalf("kind %d renders %q, want %q", int(k), got, name)
		}
	}
	if got := FaultKind(99).String(); got != "faultkind(99)" {
		t.Fatalf("out-of-range kind renders %q", got)
	}
	if got := FaultKind(-1).String(); got != "faultkind(-1)" {
		t.Fatalf("negative kind renders %q", got)
	}
}

// TestParseFaultKinds: presets resolve, lists resolve, junk errors.
func TestParseFaultKinds(t *testing.T) {
	all, err := ParseFaultKinds("all")
	if err != nil || len(all) != len(AllFaultKinds) {
		t.Fatalf("all -> %v, %v", all, err)
	}
	chaos, err := ParseFaultKinds("chaos")
	if err != nil || len(chaos) != 4 || chaos[0] != FaultSlow {
		t.Fatalf("chaos -> %v, %v", chaos, err)
	}
	classic, err := ParseFaultKinds("classic")
	if err != nil || len(classic) != 4 || classic[0] != FaultComplete {
		t.Fatalf("classic -> %v, %v", classic, err)
	}
	list, err := ParseFaultKinds("complete, flap")
	if err != nil || len(list) != 2 || list[0] != FaultComplete || list[1] != FaultFlap {
		t.Fatalf("list -> %v, %v", list, err)
	}
	if _, err := ParseFaultKinds("warp"); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := ParseFaultKinds(" , "); err == nil {
		t.Fatal("empty list must error")
	}
}

// TestFaultStringsRenderParams: chaos fault lines must carry their
// magnitudes so JSON reports are replayable by inspection.
func TestFaultStringsRenderParams(t *testing.T) {
	a, b := []netsim.NodeID{"s1"}, []netsim.NodeID{"s2"}
	cases := []struct {
		f    Fault
		want string
	}{
		{Fault{Kind: FaultSlow, At: 1, HealAt: 3, GroupA: a, GroupB: b, DelayMs: 40},
			"slow [s1]|[s2] delay=40ms at=1 heal=3"},
		{Fault{Kind: FaultLoss, At: 0, HealAt: -1, GroupA: a, GroupB: b, Rate: 0.25},
			"loss [s1]|[s2] rate=0.25 at=0 heal=end"},
		{Fault{Kind: FaultFlaky, At: 2, HealAt: -1, GroupA: a, GroupB: b, Rate: 0.5, DelayMs: 10},
			"flaky [s1]|[s2] rate=0.50 window=10ms at=2 heal=end"},
		{Fault{Kind: FaultFlap, At: 4, HealAt: 6, GroupA: a, GroupB: b, DelayMs: 20},
			"flap [s1]|[s2] period=20ms at=4 heal=6"},
		{Fault{Kind: FaultSkew, At: 1, HealAt: 5, GroupA: a, DelayMs: -15, Rate: 1.25},
			"skew s1 offset=-15ms rate=1.25 at=1 heal=5"},
		{Fault{Kind: FaultPause, At: 2, HealAt: 7, GroupA: a},
			"pause s1 at=2 resume=7"},
		{Fault{Kind: FaultDisk, At: 0, HealAt: -1, GroupA: a, Mode: DiskModeTorn},
			"disk s1 mode=torn at=0 heal=end"},
		{Fault{Kind: FaultRestart, At: 3, HealAt: -1, GroupA: a, DelayMs: 40},
			"restart s1 after=40ms at=3"},
	}
	for _, tc := range cases {
		if got := tc.f.String(); got != tc.want {
			t.Fatalf("got %q, want %q", got, tc.want)
		}
	}
}

// TestRunScheduleChaosKinds: the runner must inject, hold, and heal
// every chaos kind. The fake target watches s1->s2 reachability: pure
// link degradation never blocks it, while a flap's partitioned phase
// does.
func TestRunScheduleChaosKinds(t *testing.T) {
	tgt := &fakeTarget{}
	a, b := []netsim.NodeID{"s1"}, []netsim.NodeID{"s2"}
	for _, f := range []Fault{
		{Kind: FaultSlow, At: 1, HealAt: 3, GroupA: a, GroupB: b, DelayMs: 20},
		{Kind: FaultLoss, At: 1, HealAt: -1, GroupA: a, GroupB: b, Rate: 0.5},
		{Kind: FaultFlaky, At: 0, HealAt: -1, GroupA: a, GroupB: b, Rate: 0.4, DelayMs: 10},
	} {
		out := RunSchedule(tgt, Schedule{Seed: 3, Ops: 5, Faults: []Fault{f}})
		if out.Err != nil {
			t.Fatalf("%v: %v", f, out.Err)
		}
		if len(out.Violations) != 0 {
			t.Fatalf("%v blocked the link: %v", f, out.Violations)
		}
	}
	flap := Fault{Kind: FaultFlap, At: 1, HealAt: -1, GroupA: a, GroupB: b, DelayMs: 30}
	out := RunSchedule(tgt, Schedule{Seed: 3, Ops: 5, Faults: []Fault{flap}})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Violations) != 1 {
		t.Fatalf("flap's partitioned phase never observed: %v", out.Violations)
	}
}

// alwaysTarget violates its invariant on every run, faults or none —
// the workload-only failure shape.
type alwaysTarget struct{}

func (t *alwaysTarget) Name() string       { return "always" }
func (t *alwaysTarget) Topology() Topology { return Topology{Servers: ids("s", 3)} }
func (t *alwaysTarget) Checks() []history.Check {
	return []history.Check{func(h history.History) []history.Violation {
		return []history.Violation{{Invariant: "always", Subject: "x", Detail: "fires unconditionally", Witness: h}}
	}}
}
func (t *alwaysTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	return &alwaysInstance{rec: rec}, nil
}

type alwaysInstance struct{ rec *history.Recorder }

func (in *alwaysInstance) Step(*StepCtx) {
	ref := in.rec.Begin(history.Op{Client: "s1", Kind: "noop", Key: "x"})
	ref.End(history.Ok, "")
}
func (in *alwaysInstance) Observe(*StepCtx) {}
func (in *alwaysInstance) Close()           {}

// TestShrinkToZeroFaults is the spurious-fault bugfix: a violation the
// workload triggers with no faults at all must shrink to an empty
// fault list instead of keeping one irrelevant fault in the "minimal"
// reproducer.
func TestShrinkToZeroFaults(t *testing.T) {
	tgt := &alwaysTarget{}
	sched := Schedule{
		Seed: 11,
		Ops:  8,
		Faults: []Fault{
			{Kind: FaultCrash, At: 1, HealAt: 3, GroupA: []netsim.NodeID{"s2"}},
			{Kind: FaultPartial, At: 2, HealAt: -1,
				GroupA: []netsim.NodeID{"s1"}, GroupB: []netsim.NodeID{"s3"}},
		},
	}
	shrunk, confirmed := Shrink(tgt, sched, "always|always|x", 1)
	if !confirmed {
		t.Fatal("unconditional violation reported as unconfirmed")
	}
	if len(shrunk.Faults) != 0 {
		t.Fatalf("kept %d spurious faults in the minimal reproducer: %v", len(shrunk.Faults), shrunk)
	}
	if shrunk.Ops >= sched.Ops {
		t.Fatalf("ops not reduced: %d", shrunk.Ops)
	}
}
