//go:build race

package campaign

// Race-enabled builds slow every goroutine by roughly an order of
// magnitude, so heavy worker oversubscription on top of the race
// detector starves round goroutines for entire scheduler quanta and
// can flip borderline rounds (a timeout landing where a reply would
// have). The determinism tests therefore run at modest parallelism
// under -race: the property being proven — same seed, same findings —
// is identical; only the CPU-starvation level differs.
const (
	detWorkersDefault  = 2
	detWorkersSerial   = 1
	detWorkersParallel = 2
	// One retry of the whole comparison: under tsan an occasional
	// scheduler-starvation window can flip one borderline round, which
	// is an execution-robustness limit, not a determinism bug. A real
	// determinism regression fails both fresh pairs.
	detRetries = 1
)
