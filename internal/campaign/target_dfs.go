package campaign

import (
	"fmt"
	"strings"
	"time"

	"neat/internal/core"
	"neat/internal/dfs"
	"neat/internal/history"
	"neat/internal/netsim"
	"neat/internal/resilience"
)

// dfsTarget fuzzes the HDFS/MooseFS-style distributed file system —
// the data-plane archetype that dominates the paper's failure catalog.
// The flawed configuration reproduces three studied failures:
//
//   - HDFS-1384: rack-aware placement keeps re-offering nodes from the
//     rack the client already reported unreachable, down to re-offering
//     the excluded nodes themselves (unreachable-scheduling).
//   - HDFS-577: a simplex partition lets a DataNode heartbeat out while
//     receiving nothing; the NameNode keeps it "healthy" and keeps
//     placing work on it, which ends in the same provable re-offer
//     (unreachable-scheduling).
//   - MooseFS #131/#132: with single-replica placement a partial
//     partition between the client and the chunk holder makes the file
//     system look inconsistent — metadata says the file exists, reads
//     fail (namespace-inconsistency).
//
// The instance records the logical write/read register history (judged
// by the generic Registers checker for read-your-writes/durability)
// plus the pipeline's alloc/store steps (judged by the Tasks checker).
// The safe variant turns on CrossRackRetry — placement then respects
// exclusions, so HDFS-1384/577 cannot manifest — and, because
// exclusion-respecting placement makes an unreachable sole replica a
// transient availability loss rather than the flawed allocator
// pinning every write to it, does not judge the single-replica
// namespace rule.
type dfsTarget struct {
	name string
	safe bool
}

func (t *dfsTarget) Name() string { return t.name }

// Safe marks the replicated + checksummed variant for the CI safe
// gate.
func (t *dfsTarget) Safe() bool { return t.safe }

func (t *dfsTarget) Topology() Topology {
	return Topology{
		Servers:   []netsim.NodeID{"nn", "d1", "d2", "d3", "d4"},
		Clients:   []netsim.NodeID{"c1"},
		DiskNodes: []netsim.NodeID{"d1", "d2", "d3", "d4"},
	}
}

func (t *dfsTarget) Checks() []history.Check {
	spec := history.TasksSpec{
		SubmitKind:   "write",
		ScheduleKind: "alloc",
		ReadKind:     "read",
	}
	if !t.safe {
		spec.MetaNote = "meta-exists"
	}
	// The recovery data-loss rule mirrors the Tasks namespace rule: only
	// the flawed variant claims metadata authority over unreadable bytes
	// (MooseFS #131), so only there is a definitive meta-exists read
	// after the heal data-loss evidence. The safe variant's replicated,
	// checksummed files can exhaust their fault budget to a lying disk —
	// a definitive failure, but not a namespace lie.
	rspec := history.RecoverySpec{WriteKind: "write", ReadKind: "probe-read"}
	if !t.safe {
		rspec.MetaNote = "meta-exists"
	}
	return []history.Check{
		history.Registers(history.RegisterSpec{WriteKind: "write", ReadKind: "read"}),
		history.Tasks(spec),
		history.Recovery(rspec),
	}
}

func (t *dfsTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	cfg := dfs.Config{
		NameNode: "nn",
		Racks: map[netsim.NodeID]string{
			"d1": "rack0", "d2": "rack0",
			"d3": "rack1", "d4": "rack1",
		},
		CrossRackRetry:    t.safe,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMisses:   3,
		RPCTimeout:        20 * time.Millisecond,
	}
	// The safe variant survives a lying disk the way HDFS does: two
	// replicas per write, end-to-end checksums verified at read, and
	// read-repair of the replica the checksum condemns.
	if t.safe {
		cfg.ReplicaCount = 2
		cfg.VerifyChecksums = true
	}
	sys := dfs.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &dfsInstance{
		eng:      eng,
		rec:      rec,
		sys:      sys,
		replicas: max(cfg.ReplicaCount, 1),
		cl:       dfs.NewClient(eng.Network(), "c1", cfg),
	}, nil
}

// dfsInstance drives a single pipeline-writing client over a small
// fixed file set (one logical register per file; unique values per
// write) and reads files back both mid-round and after the heal.
type dfsInstance struct {
	eng      *core.Engine
	rec      *history.Recorder
	sys      *dfs.System
	replicas int
	cl       *dfs.Client
}

// SetDiskFault arms (or with mode "" disarms) a DataNode's lying-disk
// mode for the runner's FaultDisk — the campaign's mode names are the
// dfs layer's own.
func (in *dfsInstance) SetDiskFault(node netsim.NodeID, mode string) {
	if dn := in.sys.DataNode(node); dn != nil {
		dn.SetDiskFault(mode)
	}
}

const dfsFiles = 3

// write drives one recorded pipeline write: the logical register op
// plus each placement/store step, so the Tasks checker can prove an
// exclusion-violating re-offer and the Registers checker can judge
// what the acknowledgement promised.
func (in *dfsInstance) write(file, data string) {
	wref := in.rec.Begin(history.Op{Client: "c1", Kind: "write", Key: file, Input: data})
	ver := in.cl.NewVersion()
	var excluded []netsim.NodeID
	committed := 0
	for attempt := 0; attempt < dfs.MaxPlacementRetries && committed < in.replicas; attempt++ {
		aref := in.rec.Begin(history.Op{Client: "c1", Kind: "alloc", Key: file, Input: joinIDs(excluded)})
		node, err := in.cl.Allocate(file, excluded)
		if err != nil {
			aref.End(history.OutcomeOf(err, dfs.MaybeExecuted(err)), "")
			if committed > 0 {
				// Short of the replica goal but committed somewhere:
				// visible now, yet one lying disk from gone.
				wref.End(history.Ambiguous, "")
			} else {
				// Nothing stored, nothing committed: the write's effect
				// can never become visible.
				wref.End(history.Failed, "")
			}
			return
		}
		aref.SetNode(string(node))
		aref.End(history.Ok, string(node))
		sref := in.rec.Begin(history.Op{Client: "c1", Kind: "store", Key: file, Node: string(node), Input: data})
		if err := in.cl.Store(node, file, ver, data); err != nil {
			// The store may have landed with only the reply lost, but
			// the version stays uncommitted and therefore invisible.
			sref.End(history.OutcomeOf(err, dfs.MaybeExecuted(err)), "")
			excluded = append(excluded, node)
			continue
		}
		sref.End(history.Ok, "")
		if err := in.cl.Commit(file, node, ver); err != nil {
			if committed > 0 {
				wref.End(history.Ambiguous, "")
				return
			}
			// The partial pipeline write: commit may have been applied
			// with only the reply lost — ambiguous, never definitive.
			wref.End(history.OutcomeOf(err, dfs.MaybeExecuted(err)), "")
			return
		}
		committed++
		excluded = append(excluded, node)
	}
	switch {
	case committed >= in.replicas:
		wref.End(history.Ok, "")
	case committed > 0:
		wref.End(history.Ambiguous, "")
	default:
		// HDFS-1384's give-up: five placements, no commit, effect
		// invisible.
		wref.End(history.Failed, "")
	}
}

func (in *dfsInstance) read(file string) {
	ref := in.rec.Begin(history.Op{Client: "c1", Kind: "read", Key: file})
	v, err := in.cl.Read(file)
	switch {
	case err == nil:
		ref.End(history.Ok, v)
	case dfs.IsUnreachable(err):
		// Metadata listed replicas; no replica served. A definitive
		// failure carrying the namespace's own assertion of existence.
		ref.EndNote(history.Failed, "", "meta-exists")
	case dfs.IsNotFound(err):
		// The namespace's authoritative "no such file".
		ref.EndNote(history.Ok, "", "missing")
	default:
		ref.End(history.OutcomeOf(err, dfs.MaybeExecuted(err)), "")
	}
}

func (in *dfsInstance) Step(ctx *StepCtx) {
	if !ctx.IsPaused(in.cl.ID()) {
		file := fmt.Sprintf("f%d", ctx.Op%dfsFiles)
		in.write(file, fmt.Sprintf("%s-op%d", file, ctx.Op))
		in.read(fmt.Sprintf("f%d", ctx.Rng.Intn(dfsFiles)))
	}
	ctx.Clock.Sleep(time.Duration(5+ctx.Rng.Intn(10)) * time.Millisecond)
}

// Observe reads every file's settled value after the heal. With all
// partitions healed and crashed nodes restarted, an acknowledged write
// must be readable — the Registers checker judges the reads against
// the recorded acknowledgements.
func (in *dfsInstance) Observe(*StepCtx) {
	for _, file := range in.rec.History().Keys("write") {
		in.eng.WaitUntil(time.Second, func() bool {
			_, err := in.cl.Read(file)
			return err == nil || dfs.IsNotFound(err)
		})
		in.read(file)
	}
}

// dfsProbeFile is the dedicated probe file: probe pipeline writes land
// here, never on the workload's register files.
const dfsProbeFile = "pf"

// Probe validates recovery: one pipeline write of the dedicated probe
// file plus probe reads of it and every workload file. The re-reads
// feed the Recovery checker's data-loss rule — on the flawed variant,
// metadata asserting a file exists whose bytes every post-heal read
// definitively fails to produce is data loss, not a transient.
func (in *dfsInstance) Probe(ctx *StepCtx) bool {
	ok := in.probeWrite(ctx, fmt.Sprintf("pf-op%d", ctx.Op))
	for i := 0; i < dfsFiles; i++ {
		ok = in.probeRead(ctx, fmt.Sprintf("f%d", i)) && ok
	}
	ok = in.probeRead(ctx, dfsProbeFile) && ok
	return ok
}

// probeWrite records one retried single-replica pipeline write — the
// liveness payload. One committed replica proves the alloc/store/commit
// path alive; replica fan-out is the workload's business.
func (in *dfsInstance) probeWrite(ctx *StepCtx, data string) bool {
	ref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-write", Key: dfsProbeFile, Input: data})
	err := probeDo(ctx, nil, func() error {
		ver := in.cl.NewVersion()
		node, err := in.cl.Allocate(dfsProbeFile, nil)
		if err != nil {
			return err
		}
		if err := in.cl.Store(node, dfsProbeFile, ver, data); err != nil {
			return err
		}
		return in.cl.Commit(dfsProbeFile, node, ver)
	})
	ref.End(history.OutcomeOf(err, dfs.MaybeExecuted(err)), "")
	return err == nil
}

// probeRead records one retried probe read with the same outcome
// classification as the workload's read. Every definitive answer —
// the value, an authoritative not-found, or the meta-exists failure —
// reports the service alive; what the answer means is the checker's
// business.
func (in *dfsInstance) probeRead(ctx *StepCtx, file string) bool {
	ref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-read", Key: file})
	var got string
	err := probeDo(ctx, func(err error) resilience.Class {
		if dfs.IsNotFound(err) || dfs.IsUnreachable(err) {
			return resilience.Fatal
		}
		return resilience.Retryable
	}, func() error {
		v, err := in.cl.Read(file)
		got = v
		return err
	})
	switch {
	case err == nil:
		ref.End(history.Ok, got)
		return true
	case dfs.IsUnreachable(err):
		ref.EndNote(history.Failed, "", "meta-exists")
		return true
	case dfs.IsNotFound(err):
		ref.EndNote(history.Ok, "", "missing")
		return true
	default:
		ref.End(history.OutcomeOf(err, dfs.MaybeExecuted(err)), "")
		return false
	}
}

func (in *dfsInstance) Close() { in.cl.Close() }

func joinIDs(ids []netsim.NodeID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ",")
}
