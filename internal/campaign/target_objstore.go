package campaign

import (
	"fmt"
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
	"neat/internal/objstore"
)

// objstoreTarget fuzzes the Ceph-style replicated object store. The
// NEAT-discovered failure (tracker #24193) lives in the gap between
// "applied" and "acknowledged": under a partition the primary applies
// an operation, replicates to the reachable secondaries, then reports
// a timeout — a silent success that leaves the replicas divergent.
type objstoreTarget struct{}

func (t *objstoreTarget) Name() string { return "objstore" }

func (t *objstoreTarget) Topology() Topology {
	return Topology{Servers: ids("o", 3), Clients: []netsim.NodeID{"c1"}}
}

func (t *objstoreTarget) Deploy(eng *core.Engine) (Instance, error) {
	cfg := objstore.Config{OSDs: t.Topology().Servers, RPCTimeout: 20 * time.Millisecond}
	sys := objstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &objInstance{
		eng:     eng,
		osds:    cfg.OSDs,
		cl:      objstore.NewClient(eng.Network(), "c1", cfg),
		touched: make(map[string]bool),
	}, nil
}

type objInstance struct {
	eng     *core.Engine
	osds    []netsim.NodeID
	cl      *objstore.Client
	touched map[string]bool
	silent  []Violation
}

func (in *objInstance) Step(ctx *StepCtx) {
	obj := fmt.Sprintf("obj%d", ctx.Op%3)
	in.touched[obj] = true
	var err error
	var op string
	if ctx.Rng.Intn(5) == 0 {
		op = "delete"
		err = in.cl.Delete(obj)
	} else {
		op = "write"
		err = in.cl.Write(obj, fmt.Sprintf("%s-op%d", obj, ctx.Op))
	}
	// ErrTimeout is the primary's own verdict, returned after it
	// already applied the operation: every occurrence is a silent
	// success (client told "failed", operation happened).
	if objstore.IsTimeout(err) {
		in.silent = append(in.silent, Violation{
			Invariant: "no-silent-success",
			Subject:   obj,
			Detail:    fmt.Sprintf("%s of %s reported a timeout after the primary applied it (op %d)", op, obj, ctx.Op),
		})
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

// Check reads every touched object from every OSD. The store has no
// repair protocol, so any disagreement that survives the heal is
// lasting damage (Finding 3).
func (in *objInstance) Check() []Violation {
	out := append([]Violation(nil), in.silent...)
	for obj := range in.touched {
		vals := make([]string, len(in.osds))
		for i, osd := range in.osds {
			v, err := in.cl.ReadFrom(osd, obj)
			switch {
			case err == nil:
				vals[i] = v
			case objstore.IsNotFound(err):
				vals[i] = "(missing)"
			default:
				vals[i] = "(unreachable)"
			}
		}
		diverged := false
		for _, v := range vals[1:] {
			if v != vals[0] {
				diverged = true
			}
		}
		if diverged {
			out = append(out, Violation{
				Invariant: "replica-agreement",
				Subject:   obj,
				Detail:    fmt.Sprintf("replicas diverged after heal: %v on %v", vals, in.osds),
			})
		}
	}
	return out
}

func (in *objInstance) Close() { in.cl.Close() }
