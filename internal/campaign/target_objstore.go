package campaign

import (
	"fmt"

	"time"

	"neat/internal/core"
	"neat/internal/history"
	"neat/internal/netsim"
	"neat/internal/objstore"
)

// objstoreTarget fuzzes the Ceph-style replicated object store. The
// NEAT-discovered failure (tracker #24193) lives in the gap between
// "applied" and "acknowledged": under a partition the primary applies
// an operation, replicates to the reachable secondaries, then reports
// a timeout — a silent success that leaves the replicas divergent.
//
// The instance records writes/deletes (the primary's lying timeout as
// Ambiguous with the "applied" marker — its own admission) and final
// per-replica reads; the generic convergence checker reports lasting
// divergence as "replica-agreement" and the silent-writes checker the
// admissions as "silent-success".
type objstoreTarget struct{}

func (t *objstoreTarget) Name() string { return "objstore" }

func (t *objstoreTarget) Topology() Topology {
	return Topology{Servers: ids("o", 3), Clients: []netsim.NodeID{"c1"}}
}

func (t *objstoreTarget) Checks() []history.Check {
	return []history.Check{
		history.Convergence(history.ConvergeSpec{
			ReadKind:          "read",
			DisagreeInvariant: "replica-agreement",
		}),
		history.SilentWrites(history.SilentSpec{
			WriteKind:   "write",
			ReadKind:    "read",
			AppliedNote: "applied",
		}),
		// Deletes lie the same way writes do; the primary's "applied"
		// admission flags them even though absence cannot be matched
		// against later reads.
		history.SilentWrites(history.SilentSpec{
			WriteKind:   "del",
			ReadKind:    "read",
			AppliedNote: "applied",
		}),
	}
}

func (t *objstoreTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	cfg := objstore.Config{OSDs: t.Topology().Servers, RPCTimeout: 20 * time.Millisecond}
	sys := objstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &objInstance{
		rec:  rec,
		osds: cfg.OSDs,
		cl:   objstore.NewClient(eng.Network(), "c1", cfg),
	}, nil
}

type objInstance struct {
	rec  *history.Recorder
	osds []netsim.NodeID
	cl   *objstore.Client
}

func (in *objInstance) Step(ctx *StepCtx) {
	if ctx.IsPaused(in.cl.ID()) {
		ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
		return
	}
	obj := fmt.Sprintf("obj%d", ctx.Op%3)
	if ctx.Rng.Intn(5) == 0 {
		ref := in.rec.Begin(history.Op{Client: "c1", Kind: "del", Key: obj})
		err := in.cl.Delete(obj)
		ref.EndNote(history.OutcomeOf(err, objstore.MaybeExecuted(err)), "", appliedNote(err))
	} else {
		val := fmt.Sprintf("%s-op%d", obj, ctx.Op)
		ref := in.rec.Begin(history.Op{Client: "c1", Kind: "write", Key: obj, Input: val})
		err := in.cl.Write(obj, val)
		ref.EndNote(history.OutcomeOf(err, objstore.MaybeExecuted(err)), "", appliedNote(err))
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

// appliedNote marks the primary's own timeout verdict: it is returned
// after the primary already applied the operation, so every
// occurrence is an admitted silent success, visible later or not.
func appliedNote(err error) string {
	if objstore.IsTimeout(err) {
		return "applied"
	}
	return ""
}

// Observe reads every touched object from every OSD into the history.
// The store has no repair protocol, so any disagreement that survives
// the heal is lasting damage (Finding 3).
func (in *objInstance) Observe(*StepCtx) {
	touched := in.rec.History().Keys("write", "del")
	for _, obj := range touched {
		for _, osd := range in.osds {
			ref := in.rec.Begin(history.Op{Client: "c1", Kind: "read", Key: obj, Node: string(osd)})
			v, err := in.cl.ReadFrom(osd, obj)
			switch {
			case err == nil:
				ref.End(history.Ok, v)
			case objstore.IsNotFound(err):
				ref.EndNote(history.Ok, "", "missing")
			default:
				ref.End(history.OutcomeOf(err, false), "")
			}
		}
	}
}

func (in *objInstance) Close() { in.cl.Close() }
