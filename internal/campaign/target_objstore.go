package campaign

import (
	"fmt"

	"time"

	"neat/internal/core"
	"neat/internal/history"
	"neat/internal/netsim"
	"neat/internal/objstore"
	"neat/internal/resilience"
)

// objstoreTarget fuzzes the Ceph-style replicated object store. The
// NEAT-discovered failure (tracker #24193) lives in the gap between
// "applied" and "acknowledged": under a partition the primary applies
// an operation, replicates to the reachable secondaries, then reports
// a timeout — a silent success that leaves the replicas divergent.
//
// The instance records writes/deletes (the primary's lying timeout as
// Ambiguous with the "applied" marker — its own admission) and final
// per-replica reads; the generic convergence checker reports lasting
// divergence as "replica-agreement" and the silent-writes checker the
// admissions as "silent-success".
type objstoreTarget struct{}

func (t *objstoreTarget) Name() string { return "objstore" }

func (t *objstoreTarget) Topology() Topology {
	return Topology{Servers: ids("o", 3), Clients: []netsim.NodeID{"c1"}}
}

func (t *objstoreTarget) Checks() []history.Check {
	return []history.Check{
		history.Convergence(history.ConvergeSpec{
			ReadKind:          "read",
			DisagreeInvariant: "replica-agreement",
		}),
		history.SilentWrites(history.SilentSpec{
			WriteKind:   "write",
			ReadKind:    "read",
			AppliedNote: "applied",
		}),
		// Deletes lie the same way writes do; the primary's "applied"
		// admission flags them even though absence cannot be matched
		// against later reads.
		history.SilentWrites(history.SilentSpec{
			WriteKind:   "del",
			ReadKind:    "read",
			AppliedNote: "applied",
		}),
		// Post-heal liveness over the dedicated probe object. No
		// data-loss rule: acknowledged deletes make authoritative
		// absence legitimate here.
		history.Recovery(history.RecoverySpec{}),
	}
}

func (t *objstoreTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	cfg := objstore.Config{OSDs: t.Topology().Servers, RPCTimeout: 20 * time.Millisecond}
	sys := objstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &objInstance{
		rec:  rec,
		osds: cfg.OSDs,
		cl:   objstore.NewClient(eng.Network(), "c1", cfg),
	}, nil
}

type objInstance struct {
	rec  *history.Recorder
	osds []netsim.NodeID
	cl   *objstore.Client
}

func (in *objInstance) Step(ctx *StepCtx) {
	if ctx.IsPaused(in.cl.ID()) {
		ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
		return
	}
	obj := fmt.Sprintf("obj%d", ctx.Op%3)
	if ctx.Rng.Intn(5) == 0 {
		ref := in.rec.Begin(history.Op{Client: "c1", Kind: "del", Key: obj})
		err := in.cl.Delete(obj)
		ref.EndNote(history.OutcomeOf(err, objstore.MaybeExecuted(err)), "", appliedNote(err))
	} else {
		val := fmt.Sprintf("%s-op%d", obj, ctx.Op)
		ref := in.rec.Begin(history.Op{Client: "c1", Kind: "write", Key: obj, Input: val})
		err := in.cl.Write(obj, val)
		ref.EndNote(history.OutcomeOf(err, objstore.MaybeExecuted(err)), "", appliedNote(err))
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

// appliedNote marks the primary's own timeout verdict: it is returned
// after the primary already applied the operation, so every
// occurrence is an admitted silent success, visible later or not.
func appliedNote(err error) string {
	if objstore.IsTimeout(err) {
		return "applied"
	}
	return ""
}

// Observe reads every touched object from every OSD into the history.
// The store has no repair protocol, so any disagreement that survives
// the heal is lasting damage (Finding 3).
func (in *objInstance) Observe(*StepCtx) {
	touched := in.rec.History().Keys("write", "del")
	for _, obj := range touched {
		for _, osd := range in.osds {
			ref := in.rec.Begin(history.Op{Client: "c1", Kind: "read", Key: obj, Node: string(osd)})
			v, err := in.cl.ReadFrom(osd, obj)
			switch {
			case err == nil:
				ref.End(history.Ok, v)
			case objstore.IsNotFound(err):
				ref.EndNote(history.Ok, "", "missing")
			default:
				ref.End(history.OutcomeOf(err, false), "")
			}
		}
	}
}

// objProbeKey is the dedicated probe object, outside the workload's
// obj0..obj2 rotation.
const objProbeKey = "pobj"

// Probe validates recovery: one write of the dedicated probe object
// plus a read of it from every OSD. The store has no repair protocol,
// but a post-heal write replicates to every reachable secondary, so a
// healthy round answers from all three.
func (in *objInstance) Probe(ctx *StepCtx) bool {
	val := fmt.Sprintf("pobj-op%d", ctx.Op)
	ref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-write", Key: objProbeKey, Input: val})
	err := probeDo(ctx, nil, func() error { return in.cl.Write(objProbeKey, val) })
	ref.End(history.OutcomeOf(err, objstore.MaybeExecuted(err)), "")
	ok := err == nil
	for _, osd := range in.osds {
		rref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-read", Key: objProbeKey, Node: string(osd)})
		var got string
		rerr := probeDo(ctx, func(err error) resilience.Class {
			if objstore.IsNotFound(err) {
				return resilience.Fatal
			}
			return resilience.Retryable
		}, func() error {
			v, err := in.cl.ReadFrom(osd, objProbeKey)
			got = v
			return err
		})
		switch {
		case rerr == nil:
			rref.End(history.Ok, got)
		case objstore.IsNotFound(rerr):
			rref.EndNote(history.Ok, "", "missing")
		default:
			rref.End(history.OutcomeOf(rerr, false), "")
			ok = false
		}
	}
	return ok
}

func (in *objInstance) Close() { in.cl.Close() }
