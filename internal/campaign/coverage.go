package campaign

import (
	"sort"

	"neat/internal/coverage"
	"neat/internal/history"
	"neat/internal/netsim"
)

// roundCoverage computes the round's deterministic coverage signature
// from everything the round exhibited:
//
//   - the recorded history's shape — client, kind, key, node, outcome,
//     note, phase, and whether faults were active per operation, but
//     NOT timestamps or payload values, so two rounds that drove the
//     same operation pattern hash identically even when virtual
//     timings differ;
//   - the violation classes triggered, as sorted dedup signatures;
//   - the fabric's packet-outcome counters, log2-bucketed per event
//     class (delivered/dropped/duplicated/late/down), so order-of-
//     magnitude changes register and noise-level ones do not;
//   - the recovery-phase verdict: whether the prober confirmed
//     recovery, how many passes it took, and which probed groups ever
//     succeeded.
//
// Everything folded is already deterministically ordered (history by
// index, violations sorted here, stats in struct order, probe groups
// sorted here), so the signature is byte-stable across runs, hosts,
// and worker counts.
func roundCoverage(out *RoundOutcome, h history.History) coverage.Signature {
	hs := coverage.NewHasher()
	hs.WriteInt(int64(len(h)))
	for _, op := range h {
		hs.WriteString(op.Client)
		hs.WriteString(op.Kind)
		hs.WriteString(op.Key)
		hs.WriteString(op.Node)
		hs.WriteString(op.Outcome.String())
		hs.WriteString(op.Note)
		hs.WriteString(op.Phase)
		hs.WriteBool(op.Faults > 0)
	}

	sigs := make([]string, 0, len(out.Violations))
	for i := range out.Violations {
		sigs = append(sigs, out.Violations[i].Signature())
	}
	sort.Strings(sigs)
	hs.WriteInt(int64(len(sigs)))
	for _, s := range sigs {
		hs.WriteString(s)
	}

	hashNetStats(hs, out.Net)

	if rcv := out.Recovery; rcv != nil {
		hs.WriteBool(true)
		hs.WriteBool(rcv.Recovered)
		hs.WriteInt(int64(rcv.Passes))
		groups := make([]string, 0, len(rcv.FirstOk))
		for g := range rcv.FirstOk {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		hs.WriteInt(int64(len(groups)))
		for _, g := range groups {
			hs.WriteString(g)
		}
	} else {
		hs.WriteBool(false)
	}
	return hs.Signature()
}

// hashNetStats folds the fabric's event-class counters, one log2
// bucket per class in declaration order.
func hashNetStats(hs *coverage.Hasher, st netsim.Stats) {
	for _, c := range [...]uint64{
		st.Sent, st.Delivered, st.Duplicated,
		st.DroppedEgress, st.DroppedSwitch, st.DroppedIngress,
		st.DroppedRandom, st.DroppedChaos, st.DroppedLate, st.DroppedDown,
	} {
		hs.WriteUint(coverage.Bucket(c))
	}
}
