//go:build !race

package campaign

// Worker counts for the determinism tests in regular builds: the
// default campaign parallelism plus a deliberately oversubscribed
// variant, to prove outcomes are independent of scheduling pressure.
const (
	detWorkersDefault  = 0 // campaign default
	detWorkersSerial   = 1
	detWorkersParallel = 8
	detRetries         = 0 // plain builds must be byte-deterministic on the first pair
)
