package campaign

import (
	"math/rand"
	"strings"
	"testing"
)

// grayGenerate builds a schedule for tgt drawn only from the given
// kinds, seeded like a campaign round.
func grayGenerate(tgt Target, base int64, round int, kinds ...FaultKind) Schedule {
	seed := scheduleSeed(base, tgt.Name(), round)
	gen := rand.New(rand.NewSource(seed))
	sched := Generate(gen, tgt.Topology(), kinds...)
	sched.Seed = seed
	return sched
}

// selectOne resolves a single registry target by name.
func selectOne(t *testing.T, name string) Target {
	t.Helper()
	targets, err := Select(name)
	if err != nil {
		t.Fatal(err)
	}
	return targets[0]
}

// TestParseFaultKindsRoundTrip: every kind's rendered name must parse
// back to itself — the -faults flag and the JSON reports share this
// vocabulary — and the gray preset must resolve to exactly the gray
// kinds.
func TestParseFaultKindsRoundTrip(t *testing.T) {
	for _, k := range AllFaultKinds {
		got, err := ParseFaultKinds(k.String())
		if err != nil || len(got) != 1 || got[0] != k {
			t.Fatalf("%v round-trips to %v, %v", k, got, err)
		}
	}
	gray, err := ParseFaultKinds("gray")
	if err != nil || len(gray) != len(GrayFaultKinds) {
		t.Fatalf("gray -> %v, %v", gray, err)
	}
	for i, k := range GrayFaultKinds {
		if gray[i] != k {
			t.Fatalf("gray preset = %v, want %v", gray, GrayFaultKinds)
		}
	}
	if len(AllFaultKinds) != len(ClassicFaultKinds)+len(ChaosFaultKinds)+len(GrayFaultKinds) {
		t.Fatal("AllFaultKinds does not cover the three presets exactly")
	}
}

// TestGenerateGrayParams: gray faults must carry in-range magnitudes
// and respect their victim pools — skew on servers/services, pause
// anywhere a process runs, disk only on declared DiskNodes (one per
// schedule), restart on servers with a bounded recovery delay and no
// scheduled heal.
func TestGenerateGrayParams(t *testing.T) {
	topo := testTopology()
	topo.DiskNodes = topo.Servers
	diskable := make(map[string]bool)
	for _, id := range topo.DiskNodes {
		diskable[string(id)] = true
	}
	for seed := int64(0); seed < 300; seed++ {
		s := Generate(rand.New(rand.NewSource(seed)), topo, GrayFaultKinds...)
		disks := 0
		for _, f := range s.Faults {
			if len(f.GroupA) != 1 || len(f.GroupB) != 0 {
				t.Fatalf("seed %d: gray fault %v is not single-victim", seed, f)
			}
			switch f.Kind {
			case FaultSkew:
				if off := f.DelayMs; off < -maxSkewOffMs || off > maxSkewOffMs ||
					(off > -minSkewOffMs && off < minSkewOffMs) {
					t.Fatalf("seed %d: skew offset %dms out of range", seed, f.DelayMs)
				}
				if f.Rate < minSkewRate || f.Rate > maxSkewRate {
					t.Fatalf("seed %d: skew rate %v out of range", seed, f.Rate)
				}
			case FaultPause:
				// Any process can stall; no magnitude to check.
			case FaultDisk:
				disks++
				if !diskable[string(f.GroupA[0])] {
					t.Fatalf("seed %d: disk fault on %s, not a DiskNode", seed, f.GroupA[0])
				}
				if f.Mode != DiskModeLost && f.Mode != DiskModeTorn {
					t.Fatalf("seed %d: disk mode %q", seed, f.Mode)
				}
			case FaultRestart:
				if f.DelayMs < minRestartMs || f.DelayMs > maxRestartMs {
					t.Fatalf("seed %d: restart delay %dms out of range", seed, f.DelayMs)
				}
				if f.HealAt != -1 {
					t.Fatalf("seed %d: restart fault carries a heal index %d", seed, f.HealAt)
				}
			case FaultCrash:
				// The one-disk-per-schedule rule degrades a second disk
				// draw to a plain crash.
			default:
				t.Fatalf("seed %d: non-gray kind %v from a gray-only draw", seed, f.Kind)
			}
		}
		if disks > 1 {
			t.Fatalf("seed %d: %d disk faults in one schedule, want at most 1", seed, disks)
		}
	}
	// Without declared DiskNodes the disk kind degrades to a crash
	// rather than inventing a victim.
	for seed := int64(0); seed < 50; seed++ {
		s := Generate(rand.New(rand.NewSource(seed)), testTopology(), FaultDisk)
		for _, f := range s.Faults {
			if f.Kind != FaultCrash {
				t.Fatalf("seed %d: disk fault %v on a diskless topology", seed, f)
			}
		}
	}
}

// findGrayViolation scans seeded rounds of kind-restricted schedules
// until the target produces a violation whose invariant matches want.
func findGrayViolation(t *testing.T, tgt Target, want string, rounds int, kinds ...FaultKind) (Schedule, Violation) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		sched := grayGenerate(tgt, 7, round, kinds...)
		for _, v := range RunScheduleVirtual(tgt, sched).Violations {
			if strings.Contains(v.Invariant, want) {
				return sched, v
			}
		}
	}
	t.Fatalf("%s produced no %s violation in %d rounds", tgt.Name(), want, rounds)
	return Schedule{}, Violation{}
}

// TestGrayPauseSplitBrainLocksvc is the paused-lock-holder golden
// case: pause-only schedules against the flawed lock service freeze a
// coordinator mid-round, its heartbeats stop, the survivors fail over,
// and the resumed zombie serves from stale state — duplicate sequence
// values with no partition ever installed. The shrunk reproducer must
// keep failing.
func TestGrayPauseSplitBrainLocksvc(t *testing.T) {
	tgt := selectOne(t, "locksvc")
	sched, v := findGrayViolation(t, tgt, "unique-sequence", 40, FaultPause)
	sig := v.Signature()
	shrunk, confirmed := shrink(tgt, sched, sig, 2, runOpts{virtual: true})
	if !confirmed {
		t.Fatalf("gray violation %s did not survive shrinking", sig)
	}
	if len(shrunk.Faults) > len(sched.Faults) || shrunk.Ops > sched.Ops {
		t.Fatalf("shrink grew the schedule: %v -> %v", sched, shrunk)
	}
	if !reproduces(tgt, shrunk, sig, 2, runOpts{virtual: true}) {
		t.Fatal("shrunk gray schedule no longer fails")
	}
}

// TestGrayDiskFaultDirtyReadDFS is the torn-replica golden case: a
// disk-only schedule against the flawed (checksum-free) file system
// serves truncated bytes as a successful read — the dirty-read class.
func TestGrayDiskFaultDirtyReadDFS(t *testing.T) {
	findGrayViolation(t, selectOne(t, "dfs"), "dirty-read", 40, FaultDisk)
}

// TestGraySafeTargetsClean: the hardened variants must hold their
// invariants under the gray vocabulary — skew-tolerant lease renewal,
// fenced releases, freshness-fenced masters, checksummed replicas.
// (CI runs the full 6-seed safe gate; this is the in-tree smoke.)
func TestGraySafeTargetsClean(t *testing.T) {
	for _, name := range []string{"locksvc/sync", "mqueue/safe", "dfs/safe"} {
		t.Run(name, func(t *testing.T) {
			tgt := selectOne(t, name)
			for round := 0; round < 8; round++ {
				sched := grayGenerate(tgt, 7, round, GrayFaultKinds...)
				out := RunScheduleVirtual(tgt, sched)
				if out.Err != nil {
					t.Fatalf("round %d: %v", round, out.Err)
				}
				if len(out.Violations) > 0 {
					t.Fatalf("round %d (%s) violated: %v", round, sched, out.Violations)
				}
			}
		})
	}
}
