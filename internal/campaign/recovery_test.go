package campaign

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"neat/internal/core"
	"neat/internal/history"
	"neat/internal/netsim"
)

// wedgeTarget deploys an instance whose first Step blocks forever on a
// real channel — a wedged round the virtual clock cannot advance past.
type wedgeTarget struct{}

func (t *wedgeTarget) Name() string            { return "wedge" }
func (t *wedgeTarget) Topology() Topology      { return Topology{Servers: ids("s", 1)} }
func (t *wedgeTarget) Checks() []history.Check { return nil }
func (t *wedgeTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	return &wedgeInstance{}, nil
}

type wedgeInstance struct{}

func (in *wedgeInstance) Step(*StepCtx)    { select {} }
func (in *wedgeInstance) Observe(*StepCtx) {}
func (in *wedgeInstance) Close()           {}

// TestWatchdogAbandonsWedgedRound: a round that stops making progress
// must come back as an engine-error/watchdog finding within the
// wall-clock bound instead of hanging the campaign.
func TestWatchdogAbandonsWedgedRound(t *testing.T) {
	sched := Schedule{Seed: 1, Ops: 3}
	//neat:allow realclock -- measures the wall-clock watchdog actually firing
	start := time.Now()
	out := runSchedule(&wedgeTarget{}, sched, runOpts{virtual: true, watchdog: 300 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
	if out.Err == nil {
		t.Fatal("wedged round reported no error")
	}
	if len(out.Violations) != 1 || out.Violations[0].Invariant != "engine-error" ||
		out.Violations[0].Subject != "watchdog" {
		t.Fatalf("violations = %+v, want one engine-error/watchdog", out.Violations)
	}
	if !strings.Contains(out.Violations[0].Detail, "goroutine") {
		t.Fatalf("watchdog detail carries no goroutine dump: %q", out.Violations[0].Detail)
	}
}

// panicTarget deploys an instance whose first Step panics.
type panicTarget struct{}

func (t *panicTarget) Name() string            { return "panicky" }
func (t *panicTarget) Topology() Topology      { return Topology{Servers: ids("s", 1)} }
func (t *panicTarget) Checks() []history.Check { return nil }
func (t *panicTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	return &panicInstance{}, nil
}

type panicInstance struct{}

func (in *panicInstance) Step(*StepCtx)    { panic("instance bug") }
func (in *panicInstance) Observe(*StepCtx) {}
func (in *panicInstance) Close()           {}

// TestPanicBecomesEngineError: a panicking round must be isolated as
// an engine-error/panic finding, not kill the process.
func TestPanicBecomesEngineError(t *testing.T) {
	out := runSchedule(&panicTarget{}, Schedule{Seed: 1, Ops: 3}, runOpts{virtual: true})
	if out.Err == nil {
		t.Fatal("panicked round reported no error")
	}
	if len(out.Violations) != 1 || out.Violations[0].Invariant != "engine-error" ||
		out.Violations[0].Subject != "panic" {
		t.Fatalf("violations = %+v, want one engine-error/panic", out.Violations)
	}
	if !strings.Contains(out.Violations[0].Detail, "instance bug") {
		t.Fatalf("panic detail lost the panic value: %q", out.Violations[0].Detail)
	}
}

// TestPanicInCampaignKeepsGoing: Run must absorb a panicking target's
// rounds as errors and still finish the campaign.
func TestPanicInCampaignKeepsGoing(t *testing.T) {
	res := Run(Config{
		Targets:     []Target{&panicTarget{}},
		Rounds:      3,
		Seed:        7,
		VirtualTime: true,
		Workers:     2,
	})
	if res.Errors != 3 {
		t.Fatalf("errors = %d, want every round counted", res.Errors)
	}
	if len(res.Findings) == 0 {
		t.Fatal("no engine-error finding surfaced")
	}
}

// TestProbePhaseRecords: the recovery-validation phase drives a real
// Prober after a crash-and-heal schedule, records probe-phase
// operations, and reports confirmed recovery with per-group first-ok
// offsets.
func TestProbePhaseRecords(t *testing.T) {
	tgts, err := Select("raftkv")
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{
		Seed: 11,
		Ops:  6,
		Faults: []Fault{
			{Kind: FaultCrash, At: 2, HealAt: 4, GroupA: []netsim.NodeID{"r2"}},
		},
	}
	out := runSchedule(tgts[0], sched, runOpts{virtual: true, trace: true})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Recovery == nil {
		t.Fatal("no recovery stats recorded")
	}
	if !out.Recovery.Recovered {
		t.Fatalf("raftkv did not confirm recovery: %+v", out.Recovery)
	}
	if out.Recovery.RecoveryTime < 0 {
		t.Fatalf("recovered without a recovery time: %+v", out.Recovery)
	}
	if out.Recovery.Passes < 1 || out.Recovery.Ops < 1 {
		t.Fatalf("no probe work recorded: %+v", out.Recovery)
	}
	if len(out.Recovery.FirstOk) == 0 {
		t.Fatalf("no per-group first-ok offsets: %+v", out.Recovery)
	}
	probeOps := 0
	for _, op := range out.History {
		switch op.Phase {
		case history.PhaseProbe:
			probeOps++
			if !strings.HasPrefix(op.Kind, "probe-") {
				t.Fatalf("probe-phase op with main-workload kind %q", op.Kind)
			}
		case history.PhaseMain:
			if strings.HasPrefix(op.Kind, "probe-") {
				t.Fatalf("main-phase op with probe kind %q", op.Kind)
			}
		default:
			t.Fatalf("unknown phase %q", op.Phase)
		}
	}
	if probeOps != out.Recovery.Ops {
		t.Fatalf("history has %d probe ops, stats say %d", probeOps, out.Recovery.Ops)
	}
}

// TestNoProbeSkipsPhase: with probing disabled the round records no
// probe-phase operations and no recovery stats.
func TestNoProbeSkipsPhase(t *testing.T) {
	tgts, err := Select("raftkv")
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{Seed: 11, Ops: 4}
	out := runSchedule(tgts[0], sched, runOpts{virtual: true, trace: true, noProbe: true})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Recovery != nil {
		t.Fatalf("recovery stats recorded with probing off: %+v", out.Recovery)
	}
	for _, op := range out.History {
		if op.Phase == history.PhaseProbe {
			t.Fatalf("probe-phase op recorded with probing off: %+v", op)
		}
	}
}

// TestProbePhaseDeterministic: two runs of the same schedule record
// identical probe-phase histories and identical recovery stats —
// probe passes, backoff retries included, replay under the virtual
// clock.
func TestProbePhaseDeterministic(t *testing.T) {
	tgts, err := Select("raftkv")
	if err != nil {
		t.Fatal(err)
	}
	sched := Generate(rand.New(rand.NewSource(23)), tgts[0].Topology())
	a := runSchedule(tgts[0], sched, runOpts{virtual: true, trace: true})
	b := runSchedule(tgts[0], sched, runOpts{virtual: true, trace: true})
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if (a.Recovery == nil) != (b.Recovery == nil) {
		t.Fatalf("recovery presence differs: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if a.Recovery.Passes != b.Recovery.Passes || a.Recovery.Ops != b.Recovery.Ops ||
		a.Recovery.Retries != b.Recovery.Retries ||
		a.Recovery.Recovered != b.Recovery.Recovered ||
		a.Recovery.RecoveryTime != b.Recovery.RecoveryTime {
		t.Fatalf("recovery stats differ:\n%+v\n%+v", a.Recovery, b.Recovery)
	}
	pa, pb := probeHistory(a.History), probeHistory(b.History)
	if len(pa) != len(pb) {
		t.Fatalf("probe histories differ in length: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("probe op %d differs:\n%+v\n%+v", i, pa[i], pb[i])
		}
	}
}

func probeHistory(h history.History) []history.Op {
	var out []history.Op
	for _, op := range h {
		if op.Phase == history.PhaseProbe {
			out = append(out, op)
		}
	}
	return out
}
