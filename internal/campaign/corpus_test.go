package campaign

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"neat/internal/coverage"
)

// corpusTestEntries builds a corpus with entries spanning several
// targets and fault kinds.
func corpusTestEntries(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus()
	rng := rand.New(rand.NewSource(11))
	for _, name := range []string{"dfs", "mqueue"} {
		targets, err := Select(name)
		if err != nil {
			t.Fatal(err)
		}
		topo := targets[0].Topology()
		for i := 0; i < 5; i++ {
			sched := Generate(rng, topo)
			sched.Seed = rng.Int63()
			if !c.Add(name, coverage.Signature(rng.Uint64()), sched) {
				t.Fatalf("fresh signature for %s entry %d reported as duplicate", name, i)
			}
		}
	}
	return c
}

// TestCorpusJSONRoundTrip: write → read → write must be byte-identical
// and reproduce the decoded schedules exactly — a resumed campaign
// mutates precisely what the previous one saved.
func TestCorpusJSONRoundTrip(t *testing.T) {
	c := corpusTestEntries(t)
	var first bytes.Buffer
	if err := c.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCorpus(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := loaded.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip changed the corpus:\n--- written ---\n%s\n--- reloaded ---\n%s", first.Bytes(), second.Bytes())
	}
	for _, name := range []string{"dfs", "mqueue"} {
		if got, want := loaded.ForTarget(name), c.ForTarget(name); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s schedules changed across the round trip:\n%v\nvs\n%v", name, got, want)
		}
	}
	if got, want := loaded.Len(), c.Len(); got != want {
		t.Fatalf("entry count changed across the round trip: %d vs %d", got, want)
	}
}

// TestCorpusDedup: a signature already stored for a target adds
// nothing; the same signature under another target is still novel.
func TestCorpusDedup(t *testing.T) {
	c := NewCorpus()
	sched := Schedule{Ops: 6, Faults: []Fault{{Kind: FaultCrash, At: 1, HealAt: -1, GroupA: nodeIDs([]string{"n1"})}}}
	if !c.Add("a", 7, sched) {
		t.Fatal("first add rejected")
	}
	if c.Add("a", 7, sched) {
		t.Fatal("duplicate (target, signature) accepted")
	}
	if !c.Add("b", 7, sched) {
		t.Fatal("same signature under a different target rejected")
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := c.LenTarget("a"); got != 1 {
		t.Fatalf("LenTarget(a) = %d, want 1", got)
	}
}

// TestCorpusSelfMergeIsNoOp: re-reading a file into a campaign that
// already holds its entries must add nothing — resuming twice from the
// same corpus file cannot inflate it.
func TestCorpusSelfMergeIsNoOp(t *testing.T) {
	c := corpusTestEntries(t)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	before := c.Len()
	loaded, err := ReadCorpus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range loaded.entries {
		sig, err := coverage.Parse(e.Signature)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := decodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		if c.Add(e.Target, sig, sched) {
			t.Fatalf("re-adding stored entry %q/%s was accepted as novel", e.Target, e.Signature)
		}
	}
	if got := c.Len(); got != before {
		t.Fatalf("self-merge grew the corpus: %d -> %d", before, got)
	}
}

// TestReadCorpusRejectsMalformed: a corrupt corpus must fail loudly —
// silently fuzzing without the requested seeds would waste a campaign.
func TestReadCorpusRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{"tool": "neat-fuzz", "entries": [`,
		"bad signature": `{"entries": [{"target": "a", "signature": "zz", "ops": 5, "faults": []}]}`,
		"bad kind":      `{"entries": [{"target": "a", "signature": "0000000000000007", "ops": 5, "faults": [{"kind": "nope", "at": 0, "heal_at": -1}]}]}`,
		"bad ops":       `{"entries": [{"target": "a", "signature": "0000000000000007", "ops": 0, "faults": []}]}`,
	}
	for name, in := range cases {
		if _, err := ReadCorpus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadCorpus accepted malformed input", name)
		}
	}
}
