package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"neat/internal/coverage"
	"neat/internal/netsim"
)

// Corpus is the per-target seed pool of the coverage-guided search:
// every schedule that produced a coverage signature not seen before
// for its target. In mutate mode the runner derives most new rounds
// by mutating corpus entries; the JSON form lets a campaign export
// what it learned and a later campaign resume from it.
//
// Entries are deduplicated by (target, signature) — re-running a
// schedule that reaches an already-seen state adds nothing — and kept
// in insertion order, which the runner makes deterministic by
// applying additions at generation barriers in (target, round) order.
type Corpus struct {
	mu      sync.Mutex
	entries []CorpusEntry
	seen    map[string]*coverage.Set // per target
	perTgt  map[string][]Schedule    // decoded schedules, insertion order
}

// CorpusEntry is one stored schedule in its serialized form.
type CorpusEntry struct {
	Target    string        `json:"target"`
	Signature string        `json:"signature"`
	Seed      int64         `json:"seed"`
	Ops       int           `json:"ops"`
	Faults    []corpusFault `json:"faults"`
}

// corpusFault is the JSON form of one Fault. Kind travels by name so
// corpus files survive enum renumbering; HealAt keeps its -1
// open-until-end sentinel explicitly.
type corpusFault struct {
	Kind    string   `json:"kind"`
	At      int      `json:"at"`
	HealAt  int      `json:"heal_at"`
	GroupA  []string `json:"group_a,omitempty"`
	GroupB  []string `json:"group_b,omitempty"`
	DelayMs int      `json:"delay_ms,omitempty"`
	Rate    float64  `json:"rate,omitempty"`
	Mode    string   `json:"mode,omitempty"`
}

// corpusFile is the on-disk envelope.
type corpusFile struct {
	Tool    string        `json:"tool"`
	Entries []CorpusEntry `json:"entries"`
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{
		seen:   make(map[string]*coverage.Set),
		perTgt: make(map[string][]Schedule),
	}
}

// Add records sched under target if sig is novel for that target and
// reports whether it was added.
func (c *Corpus) Add(target string, sig coverage.Signature, sched Schedule) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.seen[target]
	if set == nil {
		set = &coverage.Set{}
		c.seen[target] = set
	}
	if !set.Add(sig) {
		return false
	}
	c.entries = append(c.entries, encodeEntry(target, sig, sched))
	c.perTgt[target] = append(c.perTgt[target], cloneSchedule(sched))
	return true
}

// ForTarget returns the target's schedules in insertion order. The
// slice is a snapshot: mutating it, or Adding afterwards, does not
// affect the other.
func (c *Corpus) ForTarget(target string) []Schedule {
	c.mu.Lock()
	defer c.mu.Unlock()
	pool := c.perTgt[target]
	out := make([]Schedule, len(pool))
	copy(out, pool)
	return out
}

// Len is the total number of stored entries across targets.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// LenTarget is the number of stored entries for one target.
func (c *Corpus) LenTarget(target string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.perTgt[target])
}

// WriteJSON serializes the corpus, entries in insertion order, with a
// trailing newline. The output is byte-stable for equal corpora.
func (c *Corpus) WriteJSON(w io.Writer) error {
	c.mu.Lock()
	entries := make([]CorpusEntry, len(c.entries))
	copy(entries, c.entries)
	c.mu.Unlock()
	b, err := json.MarshalIndent(corpusFile{Tool: "neat-fuzz", Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadCorpus loads a corpus written by WriteJSON. Entries whose
// signature is a duplicate for their target are dropped, so merging a
// file into itself is a no-op.
func ReadCorpus(r io.Reader) (*Corpus, error) {
	var file corpusFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("campaign: reading corpus: %w", err)
	}
	c := NewCorpus()
	for i, e := range file.Entries {
		sig, err := coverage.Parse(e.Signature)
		if err != nil {
			return nil, fmt.Errorf("campaign: corpus entry %d: %w", i, err)
		}
		sched, err := decodeEntry(e)
		if err != nil {
			return nil, fmt.Errorf("campaign: corpus entry %d: %w", i, err)
		}
		c.Add(e.Target, sig, sched)
	}
	return c, nil
}

func encodeEntry(target string, sig coverage.Signature, sched Schedule) CorpusEntry {
	e := CorpusEntry{
		Target:    target,
		Signature: sig.String(),
		Seed:      sched.Seed,
		Ops:       sched.Ops,
		Faults:    make([]corpusFault, len(sched.Faults)),
	}
	for i, f := range sched.Faults {
		e.Faults[i] = corpusFault{
			Kind:    f.Kind.String(),
			At:      f.At,
			HealAt:  f.HealAt,
			GroupA:  nodeStrings(f.GroupA),
			GroupB:  nodeStrings(f.GroupB),
			DelayMs: f.DelayMs,
			Rate:    f.Rate,
			Mode:    f.Mode,
		}
	}
	return e
}

func decodeEntry(e CorpusEntry) (Schedule, error) {
	sched := Schedule{Seed: e.Seed, Ops: e.Ops}
	if sched.Ops <= 0 {
		return sched, fmt.Errorf("non-positive ops %d", e.Ops)
	}
	for _, cf := range e.Faults {
		kind, err := ParseFaultKind(cf.Kind)
		if err != nil {
			return sched, err
		}
		sched.Faults = append(sched.Faults, Fault{
			Kind:    kind,
			At:      cf.At,
			HealAt:  cf.HealAt,
			GroupA:  nodeIDs(cf.GroupA),
			GroupB:  nodeIDs(cf.GroupB),
			DelayMs: cf.DelayMs,
			Rate:    cf.Rate,
			Mode:    cf.Mode,
		})
	}
	return sched, nil
}

func nodeStrings(g []netsim.NodeID) []string {
	if len(g) == 0 {
		return nil
	}
	out := make([]string, len(g))
	for i, id := range g {
		out[i] = string(id)
	}
	return out
}

func nodeIDs(g []string) []netsim.NodeID {
	if len(g) == 0 {
		return nil
	}
	out := make([]netsim.NodeID, len(g))
	for i, s := range g {
		out[i] = netsim.NodeID(s)
	}
	return out
}

// cloneSchedule deep-copies a schedule so corpus entries and mutation
// parents never share fault slices with live rounds.
func cloneSchedule(s Schedule) Schedule {
	out := Schedule{Seed: s.Seed, Ops: s.Ops}
	if len(s.Faults) > 0 {
		out.Faults = make([]Fault, len(s.Faults))
		copy(out.Faults, s.Faults)
		for i := range out.Faults {
			out.Faults[i].GroupA = append([]netsim.NodeID(nil), out.Faults[i].GroupA...)
			out.Faults[i].GroupB = append([]netsim.NodeID(nil), out.Faults[i].GroupB...)
		}
	}
	return out
}
