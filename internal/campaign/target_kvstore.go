package campaign

import (
	"fmt"
	"time"

	"neat/internal/core"
	"neat/internal/election"
	"neat/internal/history"
	"neat/internal/kvstore"
	"neat/internal/netsim"
)

// kvTarget fuzzes the primary/backup kvstore under one election mode.
// The flawed modes (longest-log, latest-ts, lowest-id) lose
// acknowledged writes during post-heal consolidation; quorum closes
// that window but is still exposed to the request-routing class — a
// simplex partition that drops acknowledgements but not requests makes
// a write that was reported failed survive and become readable
// (Finding 4, Elasticsearch issue #9967).
//
// The workload records single-writer-per-key register histories with
// concurrent cross-client reads; the generic register linearizability
// checker then reports consolidation data loss as "durability" and
// the silent-writes checker reports the request-routing class as
// "silent-success".
type kvTarget struct {
	name string
	mode election.Mode
}

func (t *kvTarget) Name() string { return t.name }

func (t *kvTarget) Topology() Topology {
	return Topology{Servers: ids("s", 3), Clients: []netsim.NodeID{"c1", "c2"}}
}

func (t *kvTarget) Checks() []history.Check {
	return []history.Check{
		history.Registers(history.RegisterSpec{}),
		history.SilentWrites(history.SilentSpec{}),
	}
}

func (t *kvTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	replicas := t.Topology().Servers
	cfg := kvstore.Config{
		Replicas:               replicas,
		ElectionMode:           t.mode,
		WriteConcern:           kvstore.WriteMajority,
		ApplyBeforeReplicate:   true,
		StepDownOnLostMajority: true,
		HeartbeatInterval:      10 * time.Millisecond,
		ElectionTimeout:        40 * time.Millisecond,
		LeaseMisses:            8,
		RPCTimeout:             30 * time.Millisecond,
	}
	sys := kvstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &kvInstance{
		eng: eng,
		rec: rec,
		c1:  kvstore.NewClient(eng.Network(), "c1", replicas, 80*time.Millisecond),
		c2:  kvstore.NewClient(eng.Network(), "c2", replicas, 80*time.Millisecond),
	}, nil
}

// kvInstance drives single-writer-per-key workloads from two clients,
// with each client also reading the other's key, so the recorded
// history holds concurrent registers the linearizability checker can
// judge.
type kvInstance struct {
	eng    *core.Engine
	rec    *history.Recorder
	c1, c2 *kvstore.Client
}

func (in *kvInstance) put(cl *kvstore.Client, client, key, val string) {
	ref := in.rec.Begin(history.Op{Client: client, Kind: "put", Key: key, Input: val})
	err := cl.Put(key, val)
	ref.End(history.OutcomeOf(err, kvstore.MaybeExecuted(err)), "")
}

func (in *kvInstance) get(cl *kvstore.Client, client, key string) {
	ref := in.rec.Begin(history.Op{Client: client, Kind: "get", Key: key})
	got, err := cl.Get(key)
	switch {
	case err == nil:
		ref.End(history.Ok, got)
	case kvstore.IsNotFound(err):
		ref.EndNote(history.Ok, "", "missing")
	default:
		ref.End(history.OutcomeOf(err, kvstore.MaybeExecuted(err)), "")
	}
}

func (in *kvInstance) Step(ctx *StepCtx) {
	// A client frozen by a FaultPause issues nothing until it resumes.
	p1, p2 := ctx.IsPaused(in.c1.ID()), ctx.IsPaused(in.c2.ID())
	if !p1 {
		in.put(in.c1, "c1", "k1", fmt.Sprintf("k1-op%d-%d", ctx.Op, ctx.Rng.Intn(1000)))
	}
	if !p2 {
		in.put(in.c2, "c2", "k2", fmt.Sprintf("k2-op%d-%d", ctx.Op, ctx.Rng.Intn(1000)))
	}
	// Cross-client reads make dirty and stale values observable while
	// the fault is still active — the paper's dirty-read condition —
	// instead of only at the final settled read.
	if ctx.Op%2 == 0 {
		if !p2 {
			in.get(in.c2, "c2", "k1")
		}
	} else if !p1 {
		in.get(in.c1, "c1", "k2")
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

// Observe reads each key's settled value into the history. The final
// reads, judged against the recorded writes by the register checker,
// subsume the seed fuzzer's embedded acked-list bookkeeping.
func (in *kvInstance) Observe(*StepCtx) {
	for _, key := range []string{"k1", "k2"} {
		in.eng.WaitUntil(time.Second, func() bool {
			_, err := in.c2.Get(key)
			return err == nil || kvstore.IsNotFound(err)
		})
		in.get(in.c2, "c2", key)
	}
}

func (in *kvInstance) Close() {
	in.c1.Close()
	in.c2.Close()
}
