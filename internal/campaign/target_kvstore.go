package campaign

import (
	"fmt"
	"time"

	"neat/internal/core"
	"neat/internal/election"
	"neat/internal/history"
	"neat/internal/kvstore"
	"neat/internal/netsim"
	"neat/internal/resilience"
)

// kvTarget fuzzes the primary/backup kvstore under one election mode.
// The flawed modes (longest-log, latest-ts, lowest-id) lose
// acknowledged writes during post-heal consolidation; quorum closes
// that window but is still exposed to the request-routing class — a
// simplex partition that drops acknowledgements but not requests makes
// a write that was reported failed survive and become readable
// (Finding 4, Elasticsearch issue #9967).
//
// The workload records single-writer-per-key register histories with
// concurrent cross-client reads; the generic register linearizability
// checker then reports consolidation data loss as "durability" and
// the silent-writes checker reports the request-routing class as
// "silent-success".
type kvTarget struct {
	name string
	mode election.Mode
}

func (t *kvTarget) Name() string { return t.name }

func (t *kvTarget) Topology() Topology {
	return Topology{Servers: ids("s", 3), Clients: []netsim.NodeID{"c1", "c2"}}
}

func (t *kvTarget) Checks() []history.Check {
	return []history.Check{
		history.Registers(history.RegisterSpec{}),
		history.SilentWrites(history.SilentSpec{}),
		// Post-heal liveness plus the data-loss rule over the probe
		// phase's re-reads: an acknowledged workload write whose key
		// every probe read proves authoritatively absent is
		// data-loss-after-heal (a flawed mode consolidating onto a side
		// that never saw the key).
		history.Recovery(history.RecoverySpec{WriteKind: "put", ReadKind: "probe-get"}),
	}
}

func (t *kvTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	replicas := t.Topology().Servers
	cfg := kvstore.Config{
		Replicas:               replicas,
		ElectionMode:           t.mode,
		WriteConcern:           kvstore.WriteMajority,
		ApplyBeforeReplicate:   true,
		StepDownOnLostMajority: true,
		HeartbeatInterval:      10 * time.Millisecond,
		ElectionTimeout:        40 * time.Millisecond,
		LeaseMisses:            8,
		RPCTimeout:             30 * time.Millisecond,
	}
	sys := kvstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &kvInstance{
		eng: eng,
		rec: rec,
		c1:  kvstore.NewClientWithRetry(eng.Network(), "c1", replicas, 80*time.Millisecond, kvRetryPolicy),
		c2:  kvstore.NewClientWithRetry(eng.Network(), "c2", replicas, 80*time.Millisecond, kvRetryPolicy),
	}, nil
}

// kvRetryPolicy is the workload clients' sweep retry: one backed-off
// second sweep on a definitively-refused operation (a leaderless
// window an election is about to close). Ambiguous failures are NOT
// retried — the silent-success window is a studied behaviour the
// checkers must keep seeing, not one for the client to paper over.
var kvRetryPolicy = resilience.Policy{
	Base:        2 * time.Millisecond,
	Cap:         16 * time.Millisecond,
	MaxAttempts: 2,
}

// kvInstance drives single-writer-per-key workloads from two clients,
// with each client also reading the other's key, so the recorded
// history holds concurrent registers the linearizability checker can
// judge.
type kvInstance struct {
	eng    *core.Engine
	rec    *history.Recorder
	c1, c2 *kvstore.Client
}

func (in *kvInstance) put(cl *kvstore.Client, client, key, val string) {
	ref := in.rec.Begin(history.Op{Client: client, Kind: "put", Key: key, Input: val})
	err := cl.Put(key, val)
	ref.End(history.OutcomeOf(err, kvstore.MaybeExecuted(err)), "")
}

func (in *kvInstance) get(cl *kvstore.Client, client, key string) {
	ref := in.rec.Begin(history.Op{Client: client, Kind: "get", Key: key})
	got, err := cl.Get(key)
	switch {
	case err == nil:
		ref.End(history.Ok, got)
	case kvstore.IsNotFound(err):
		ref.EndNote(history.Ok, "", "missing")
	default:
		ref.End(history.OutcomeOf(err, kvstore.MaybeExecuted(err)), "")
	}
}

func (in *kvInstance) Step(ctx *StepCtx) {
	// A client frozen by a FaultPause issues nothing until it resumes.
	p1, p2 := ctx.IsPaused(in.c1.ID()), ctx.IsPaused(in.c2.ID())
	if !p1 {
		in.put(in.c1, "c1", "k1", fmt.Sprintf("k1-op%d-%d", ctx.Op, ctx.Rng.Intn(1000)))
	}
	if !p2 {
		in.put(in.c2, "c2", "k2", fmt.Sprintf("k2-op%d-%d", ctx.Op, ctx.Rng.Intn(1000)))
	}
	// Cross-client reads make dirty and stale values observable while
	// the fault is still active — the paper's dirty-read condition —
	// instead of only at the final settled read.
	if ctx.Op%2 == 0 {
		if !p2 {
			in.get(in.c2, "c2", "k1")
		}
	} else if !p1 {
		in.get(in.c1, "c1", "k2")
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

// Observe reads each key's settled value into the history. The final
// reads, judged against the recorded writes by the register checker,
// subsume the seed fuzzer's embedded acked-list bookkeeping.
func (in *kvInstance) Observe(*StepCtx) {
	for _, key := range []string{"k1", "k2"} {
		in.eng.WaitUntil(time.Second, func() bool {
			_, err := in.c2.Get(key)
			return err == nil || kvstore.IsNotFound(err)
		})
		in.get(in.c2, "c2", key)
	}
}

// kvProbeKey is the dedicated probe register: liveness round-trips
// land here, never on the workload's contended keys.
const kvProbeKey = "pk"

// Probe validates recovery: a put/get round-trip on the dedicated
// probe key, plus re-reads of both workload keys whose authoritative
// absence would prove an acknowledged write gone (the Recovery
// checker's data-loss rule).
func (in *kvInstance) Probe(ctx *StepCtx) bool {
	ok := in.probePut(ctx, fmt.Sprintf("pk-op%d", ctx.Op))
	ok = in.probeGet(ctx, kvProbeKey) && ok
	for _, key := range []string{"k1", "k2"} {
		ok = in.probeGet(ctx, key) && ok
	}
	return ok
}

func (in *kvInstance) probePut(ctx *StepCtx, val string) bool {
	ref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-put", Key: kvProbeKey, Input: val})
	err := probeDo(ctx, nil, func() error { return in.c1.Put(kvProbeKey, val) })
	ref.End(history.OutcomeOf(err, kvstore.MaybeExecuted(err)), "")
	return err == nil
}

// probeGet records one retried probe read; any definitive answer — a
// value or the store's authoritative not-found — reports the service
// alive.
func (in *kvInstance) probeGet(ctx *StepCtx, key string) bool {
	ref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-get", Key: key})
	var got string
	err := probeDo(ctx, func(err error) resilience.Class {
		if kvstore.IsNotFound(err) {
			return resilience.Fatal
		}
		return resilience.Retryable
	}, func() error {
		v, err := in.c1.Get(key)
		got = v
		return err
	})
	switch {
	case err == nil:
		ref.End(history.Ok, got)
		return true
	case kvstore.IsNotFound(err):
		ref.EndNote(history.Ok, "", "missing")
		return true
	default:
		ref.End(history.OutcomeOf(err, kvstore.MaybeExecuted(err)), "")
		return false
	}
}

func (in *kvInstance) Close() {
	in.c1.Close()
	in.c2.Close()
}
