package campaign

import (
	"fmt"
	"time"

	"neat/internal/core"
	"neat/internal/election"
	"neat/internal/kvstore"
	"neat/internal/netsim"
)

// kvTarget fuzzes the primary/backup kvstore under one election mode.
// The flawed modes (longest-log, latest-ts, lowest-id) lose
// acknowledged writes during post-heal consolidation; quorum closes
// that window but is still exposed to the request-routing class — a
// simplex partition that drops acknowledgements but not requests makes
// a write that was reported failed survive and become readable
// (Finding 4, Elasticsearch issue #9967).
type kvTarget struct {
	name string
	mode election.Mode
}

func (t *kvTarget) Name() string { return t.name }

func (t *kvTarget) Topology() Topology {
	return Topology{Servers: ids("s", 3), Clients: []netsim.NodeID{"c1", "c2"}}
}

func (t *kvTarget) Deploy(eng *core.Engine) (Instance, error) {
	replicas := t.Topology().Servers
	cfg := kvstore.Config{
		Replicas:               replicas,
		ElectionMode:           t.mode,
		WriteConcern:           kvstore.WriteMajority,
		ApplyBeforeReplicate:   true,
		StepDownOnLostMajority: true,
		HeartbeatInterval:      10 * time.Millisecond,
		ElectionTimeout:        40 * time.Millisecond,
		LeaseMisses:            8,
		RPCTimeout:             30 * time.Millisecond,
	}
	sys := kvstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &kvInstance{
		eng: eng,
		c1:  kvstore.NewClient(eng.Network(), "c1", replicas, 80*time.Millisecond),
		c2:  kvstore.NewClient(eng.Network(), "c2", replicas, 80*time.Millisecond),
	}, nil
}

// kvInstance drives single-writer-per-key workloads from two clients,
// so every surviving value can be judged against that key's
// acknowledgement history.
type kvInstance struct {
	eng    *core.Engine
	c1, c2 *kvstore.Client
	acked1 []string
	acked2 []string
}

func (in *kvInstance) Step(ctx *StepCtx) {
	v1 := fmt.Sprintf("k1-op%d-%d", ctx.Op, ctx.Rng.Intn(1000))
	if in.c1.Put("k1", v1) == nil {
		in.acked1 = append(in.acked1, v1)
	}
	v2 := fmt.Sprintf("k2-op%d-%d", ctx.Op, ctx.Rng.Intn(1000))
	if in.c2.Put("k2", v2) == nil {
		in.acked2 = append(in.acked2, v2)
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

func (in *kvInstance) Check() []Violation {
	// Let re-elections and post-heal consolidation settle before
	// judging, as the seed fuzzer did.
	in.eng.Clock().Sleep(250 * time.Millisecond)
	var out []Violation
	out = append(out, in.checkKey("k1", in.acked1)...)
	out = append(out, in.checkKey("k2", in.acked2)...)
	return out
}

// checkKey verifies the two invariants of the seed fuzzer: the
// surviving value of a key must be one its writer had acknowledged
// (no dirty or resurrected values), and acknowledged writes must not
// vanish entirely.
func (in *kvInstance) checkKey(key string, acked []string) []Violation {
	var got string
	var err error
	in.eng.WaitUntil(time.Second, func() bool {
		got, err = in.c2.Get(key)
		return err == nil || kvstore.IsNotFound(err)
	})
	if err != nil {
		if len(acked) > 0 {
			return []Violation{{
				Invariant: "durability",
				Subject:   key,
				Detail:    fmt.Sprintf("all %d acknowledged writes lost (%v)", len(acked), err),
			}}
		}
		return nil
	}
	for _, v := range acked {
		if v == got {
			return nil
		}
	}
	return []Violation{{
		Invariant: "no-dirty-value",
		Subject:   key,
		Detail:    fmt.Sprintf("read %q, never acknowledged (dirty or resurrected)", got),
	}}
}

func (in *kvInstance) Close() {
	in.c1.Close()
	in.c2.Close()
}
