package campaign

// Shrink greedily minimizes a failing schedule while it keeps
// reproducing a violation with the given signature: it repeatedly
// tries dropping one fault, then truncating the operation count, and
// keeps any reduction that still fails. A schedule may shrink all the
// way to zero faults — a violation the workload triggers on a healthy
// network must not be pinned on a spurious fault in its "minimal"
// reproducer. attempts bounds how many times each candidate is
// executed before concluding it no longer reproduces
// (timing-sensitive failures sometimes need more than one run);
// attempts <= 0 means 1.
//
// The second result reports whether the returned schedule reproduced
// the signature during shrinking: a false means even the original
// never failed again (a timing-flaky finding), so the result must not
// be presented as a confirmed minimal reproducer.
func Shrink(t Target, sched Schedule, signature string, attempts int) (Schedule, bool) {
	return shrink(t, sched, signature, attempts, runOpts{})
}

func shrink(t Target, sched Schedule, signature string, attempts int, opts runOpts) (Schedule, bool) {
	if attempts <= 0 {
		attempts = 1
	}
	cur := sched
	confirmed := false
	improved := true
	for improved {
		improved = false
		// Pass 1: drop one fault at a time (down to zero faults, for
		// workload-only violations).
		for i := 0; i < len(cur.Faults); i++ {
			cand := cur
			cand.Faults = append(append([]Fault{}, cur.Faults[:i]...), cur.Faults[i+1:]...)
			if reproduces(t, cand, signature, attempts, opts) {
				cur = cand
				confirmed = true
				improved = true
				break
			}
		}
		if improved {
			continue
		}
		// Pass 2: truncate the tail of the workload. Faults that would
		// start after the new end are dropped; heals are clamped to
		// "end".
		for _, ops := range []int{cur.Ops / 2, cur.Ops - 1} {
			if ops < 1 || ops >= cur.Ops {
				continue
			}
			cand := truncate(cur, ops)
			if reproduces(t, cand, signature, attempts, opts) {
				cur = cand
				confirmed = true
				improved = true
				break
			}
		}
	}
	if !confirmed {
		// No reduction ever failed; check whether at least the
		// original still does.
		confirmed = reproduces(t, cur, signature, attempts, opts)
	}
	return cur, confirmed
}

func truncate(s Schedule, ops int) Schedule {
	out := Schedule{Seed: s.Seed, Ops: ops}
	for _, f := range s.Faults {
		if f.At >= ops {
			continue
		}
		if f.HealAt >= ops {
			f.HealAt = -1
		}
		out.Faults = append(out.Faults, f)
	}
	return out
}

func reproduces(t Target, sched Schedule, signature string, attempts int, opts runOpts) bool {
	for i := 0; i < attempts; i++ {
		out := runSchedule(t, sched, opts)
		for _, v := range out.Violations {
			if v.Signature() == signature {
				return true
			}
		}
	}
	return false
}
