package campaign

import (
	"time"

	"neat/internal/resilience"
)

// probePolicy is the shared retry policy probe operations run under:
// one quick in-pass retry with decorrelated-jitter backoff, budgeted
// well under one probe interval so a wedged service can never stall a
// pass. Attempts stay low because the pass loop itself is the outer
// retry — an op that keeps failing is re-driven next pass anyway, and
// every extra attempt against a down service burns an RPC timeout on
// the round's critical path. Ambiguous outcomes are retried too —
// probes touch dedicated probe objects or read, so a duplicated
// effect cannot violate any main-phase invariant.
var probePolicy = resilience.Policy{
	Base:           2 * time.Millisecond,
	Cap:            20 * time.Millisecond,
	MaxAttempts:    2,
	Budget:         60 * time.Millisecond,
	RetryAmbiguous: true,
}

// probeDo runs one probe operation under probePolicy on the round's
// clock and reports the extra attempts into the round's recovery
// metrics. classify may be nil (retry every failure); probes typically
// classify authoritative answers — a not-found, an unknown-job — as
// Fatal so a definitive response is never retried into the budget.
func probeDo(ctx *StepCtx, classify resilience.Classifier, fn func() error) error {
	res := resilience.Do(ctx.Clock, ctx.Rng, probePolicy, classify, func(int) error { return fn() })
	ctx.Retried(res.Attempts - 1)
	return res.Err
}
