package campaign

import (
	"neat/internal/history"
	"neat/internal/report"
)

// traceOps converts recorded operations into their report form.
func traceOps(ops []history.Op) []report.TraceOp {
	out := make([]report.TraceOp, len(ops))
	for i, op := range ops {
		out[i] = report.TraceOp{
			Index:    op.Index,
			Client:   op.Client,
			Kind:     op.Kind,
			Phase:    op.Phase,
			Key:      op.Key,
			Node:     op.Node,
			Input:    op.Input,
			Output:   op.Output,
			Outcome:  op.Outcome.String(),
			Note:     op.Note,
			Aux:      op.Aux,
			Faults:   op.Faults,
			InvokeNs: op.Invoke.Nanoseconds(),
			ReturnNs: op.Return.Nanoseconds(),
		}
	}
	return out
}

// Report converts the campaign result into the machine-readable
// report form consumed by pipelines and emitted by cmd/neat-fuzz.
func (r *Result) Report() report.Campaign {
	out := report.Campaign{
		Tool:            "neat-fuzz",
		Seed:            r.Seed,
		RoundsPerTarget: r.Rounds,
		Errors:          r.Errors,
		// A clean campaign must serialize as an empty violation list,
		// not null, for JSON consumers.
		Violations: []report.CampaignViolation{},
		Mutate:     r.Mutate,
	}
	if r.Corpus != nil {
		out.CorpusSize = r.Corpus.Len()
	}
	for _, name := range r.Targets {
		st := r.Stats[name]
		out.Targets = append(out.Targets, report.CampaignTarget{
			Name:       name,
			Rounds:     st.Rounds,
			Violations: st.Violations,
			Unique:     st.Unique,
			Errors:     st.Errors,

			ProbedRounds:    st.ProbedRounds,
			RecoveredRounds: st.RecoveredRounds,
			ProbeOps:        st.ProbeOps,
			ProbeRetries:    st.ProbeRetries,
			MaxRecoveryNs:   st.MaxRecoveryNs,
			RecoveryNs:      st.RecoveryNs,

			CoverageSignatures: st.Signatures,
			MutatedRounds:      st.MutatedRounds,
			CorpusNew:          st.CorpusNew,
		})
	}
	for _, f := range r.Findings {
		v := report.CampaignViolation{
			Target:       f.Violation.Target,
			Invariant:    f.Invariant,
			Subject:      f.Subject,
			Detail:       f.Detail,
			Signature:    f.Signature(),
			Count:        f.Count,
			FirstRound:   f.Round,
			ScheduleSeed: f.Schedule.Seed,
			Schedule:     f.Schedule.Describe(),
			Trace:        traceOps(f.Violation.Trace),
		}
		if f.Shrunk != nil {
			v.Shrunk = f.Shrunk.Describe()
		}
		if len(f.History) > 0 {
			v.History = traceOps(f.History)
		}
		out.Violations = append(out.Violations, v)
	}
	return out
}
