package campaign

import "neat/internal/report"

// Report converts the campaign result into the machine-readable
// report form consumed by pipelines and emitted by cmd/neat-fuzz.
func (r *Result) Report() report.Campaign {
	out := report.Campaign{
		Tool:            "neat-fuzz",
		Seed:            r.Seed,
		RoundsPerTarget: r.Rounds,
		Errors:          r.Errors,
		// A clean campaign must serialize as an empty violation list,
		// not null, for JSON consumers.
		Violations: []report.CampaignViolation{},
	}
	for _, name := range r.Targets {
		st := r.Stats[name]
		out.Targets = append(out.Targets, report.CampaignTarget{
			Name:       name,
			Rounds:     st.Rounds,
			Violations: st.Violations,
			Unique:     st.Unique,
			Errors:     st.Errors,
		})
	}
	for _, f := range r.Findings {
		v := report.CampaignViolation{
			Target:       f.Violation.Target,
			Invariant:    f.Invariant,
			Subject:      f.Subject,
			Detail:       f.Detail,
			Signature:    f.Signature(),
			Count:        f.Count,
			FirstRound:   f.Round,
			ScheduleSeed: f.Schedule.Seed,
			Schedule:     f.Schedule.Describe(),
		}
		if f.Shrunk != nil {
			v.Shrunk = f.Shrunk.Describe()
		}
		out.Violations = append(out.Violations, v)
	}
	return out
}
