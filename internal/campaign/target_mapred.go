package campaign

import (
	"fmt"
	"time"

	"neat/internal/core"
	"neat/internal/history"
	"neat/internal/mapred"
	"neat/internal/netsim"
	"neat/internal/resilience"
)

// mapredTarget fuzzes the MapReduce control plane of Figure 3. The
// studied flaw (MAPREDUCE-4819): the AppMaster tells the user "done"
// BEFORE reporting completion to the ResourceManager, so a partial
// partition that isolates the AM from the RM — while both still reach
// the workers and the user — makes the RM start a second attempt whose
// completion the user also receives: the job output is delivered
// twice, with no client interaction after the partition at all.
//
// The instance records job submissions, the completion notifications
// the user received, and the RM's authoritative completion tally; the
// generic Tasks checker reports a job finishing twice as
// dup-execution and an acknowledged job that never ran as lost-ack.
// The safe variant turns on FencedCompletion: the AM commits
// completion at the RM first (which fences stale attempts) and stays
// silent when refused, so at most one "done" ever reaches the user.
type mapredTarget struct {
	name string
	safe bool
}

func (t *mapredTarget) Name() string { return t.name }

// Safe marks the fixed variant for the CI safe gate.
func (t *mapredTarget) Safe() bool { return t.safe }

func (t *mapredTarget) Topology() Topology {
	return Topology{
		Servers: []netsim.NodeID{"rm", "w1", "w2", "w3"},
		Clients: []netsim.NodeID{"user"},
	}
}

func (t *mapredTarget) Checks() []history.Check {
	return []history.Check{
		history.Tasks(history.TasksSpec{}),
		// Post-heal liveness plus data-loss over the probe status
		// queries: an acknowledged submission the RM no longer knows —
		// and never completes — is the user's work gone.
		history.Recovery(history.RecoverySpec{WriteKind: "submit", ReadKind: "probe-status"}),
	}
}

func (t *mapredTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	cfg := mapred.Config{
		RM:      "rm",
		Workers: []netsim.NodeID{"w1", "w2", "w3"},
		// Six missed heartbeats before a restart: transient scheduling
		// noise must not fake a dead AppMaster, only real partitions.
		AMHeartbeat:      10 * time.Millisecond,
		AMMisses:         6,
		TaskDuration:     20 * time.Millisecond,
		RPCTimeout:       20 * time.Millisecond,
		FencedCompletion: t.safe,
	}
	sys := mapred.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &mapredInstance{
		eng: eng,
		rec: rec,
		cl:  mapred.NewClient(eng.Network(), "user", cfg),
	}, nil
}

// mapredInstance submits a few small jobs over the round and, after
// the heal, waits for the control plane to finish and records what the
// user and the RM each believe happened.
type mapredInstance struct {
	eng  *core.Engine
	rec  *history.Recorder
	cl   *mapred.Client
	jobs []string
}

func (in *mapredInstance) Step(ctx *StepCtx) {
	if ctx.Op%4 == 0 && !ctx.IsPaused(in.cl.ID()) {
		job := fmt.Sprintf("j%02d", ctx.Op)
		ref := in.rec.Begin(history.Op{Client: "user", Kind: "submit", Key: job})
		err := in.cl.Submit(job, 1+ctx.Rng.Intn(3))
		ref.End(history.OutcomeOf(err, mapred.MaybeExecuted(err)), "")
		in.jobs = append(in.jobs, job)
	}
	ctx.Clock.Sleep(time.Duration(5+ctx.Rng.Intn(10)) * time.Millisecond)
}

// Observe waits for every submitted job to complete at the RM (the
// post-heal monitor keeps restarting AppMasters until one reports in),
// then records the RM's completion tally and each completion
// notification the user received. Judgment belongs to the Tasks
// checker.
func (in *mapredInstance) Observe(*StepCtx) {
	for _, job := range in.jobs {
		job := job
		in.eng.WaitUntil(3*time.Second, func() bool {
			st, err := in.cl.JobStatus(job)
			if err != nil {
				// Unknown job: an ambiguous submission that never
				// registered. Nothing will ever complete it.
				return true
			}
			return st.Completed
		})
		ref := in.rec.Begin(history.Op{Client: "user", Kind: "exec", Key: job, Node: "rm"})
		st, err := in.cl.JobStatus(job)
		switch {
		case err == nil && st.Completed:
			ref.EndNote(history.Ok, "1", "count")
		case err == nil:
			ref.EndNote(history.Ok, "0", "count")
		default:
			// Unknown job (an ambiguous submission that never
			// registered) or an unreachable RM: a non-Ok tally is not
			// execution evidence either way, and the checker skips it.
			ref.EndNote(history.OutcomeOf(err, mapred.MaybeExecuted(err)), "0", "count")
		}
	}
	for _, r := range in.cl.Results() {
		if !r.Final {
			continue
		}
		ref := in.rec.Begin(history.Op{Client: "user", Kind: "exec", Key: r.JobID})
		ref.EndNote(history.Ok, fmt.Sprintf("attempt%d", r.Attempt), "final")
	}
}

// Probe validates recovery by asking the RM for every submitted job's
// status. A definitive "unknown job" is recorded as an authoritative
// absence (the data-loss rule's evidence); a pass confirms recovery
// once every query gets a definitive answer and every still-known job
// has completed — the post-heal monitor is expected to finish the
// round's work inside the RTO. A round that submitted nothing has
// nothing to probe.
func (in *mapredInstance) Probe(ctx *StepCtx) bool {
	ok := true
	for _, job := range in.jobs {
		job := job
		ref := in.rec.Begin(history.Op{Client: "user", Kind: "probe-status", Key: job, Node: "rm"})
		var st mapred.JobState
		err := probeDo(ctx, func(err error) resilience.Class {
			if mapred.MaybeExecuted(err) {
				return resilience.Retryable
			}
			// The RM answered: an unknown job will stay unknown.
			return resilience.Fatal
		}, func() error {
			s, err := in.cl.JobStatus(job)
			st = s
			return err
		})
		switch {
		case err == nil && st.Completed:
			ref.End(history.Ok, "completed")
		case err == nil:
			ref.End(history.Ok, "running")
			ok = false
		case !mapred.MaybeExecuted(err):
			ref.EndNote(history.Ok, "", "missing")
		default:
			ref.End(history.Ambiguous, "")
			ok = false
		}
	}
	return ok
}

func (in *mapredInstance) Close() { in.cl.Close() }
