package campaign

import (
	"fmt"
	"time"

	"neat/internal/core"
	"neat/internal/history"
	"neat/internal/netsim"
	"neat/internal/raftkv"
	"neat/internal/resilience"
)

// raftTarget fuzzes the proper-Raft group. Quorum elections plus
// commit-before-ack make it the safe configuration: campaigns are
// expected to find zero violations here, whatever the schedule.
//
// Writes that time out or fail commit are recorded as Ambiguous —
// Raft legitimately commits such entries after the heal — so the
// register linearizability checker accepts their late appearance
// while still requiring every acknowledged write to survive. The
// silent-writes checker deliberately does not run here: late commit
// of an ambiguous write is Raft's contract, not a lie.
type raftTarget struct{}

func (t *raftTarget) Name() string { return "raftkv" }

// Safe marks raftkv for the CI safe gate: consensus holds under every
// fault kind.
func (t *raftTarget) Safe() bool { return true }

func (t *raftTarget) Topology() Topology {
	return Topology{Servers: ids("r", 3), Clients: []netsim.NodeID{"c1", "c2"}}
}

func (t *raftTarget) Checks() []history.Check {
	return []history.Check{
		history.Registers(history.RegisterSpec{}),
		// Post-heal liveness plus data-loss over the probe re-reads: a
		// committed (acknowledged) write can never be authoritatively
		// absent once the healed cluster answers again.
		history.Recovery(history.RecoverySpec{WriteKind: "put", ReadKind: "probe-get"}),
	}
}

func (t *raftTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	peers := t.Topology().Servers
	cfg := raftkv.Config{
		Peers:              peers,
		HeartbeatInterval:  10 * time.Millisecond,
		ElectionTimeoutMin: 40 * time.Millisecond,
		ElectionTimeoutMax: 80 * time.Millisecond,
		RPCTimeout:         20 * time.Millisecond,
		CommitWait:         120 * time.Millisecond,
	}
	sys := raftkv.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	c1 := raftkv.NewClient(eng.Network(), "c1", peers)
	c2 := raftkv.NewClient(eng.Network(), "c2", peers)
	c1.SetTimeout(150 * time.Millisecond)
	c2.SetTimeout(150 * time.Millisecond)
	sys.WaitForLeaderAmong(peers, 2*time.Second)
	return &raftInstance{
		eng: eng, rec: rec, sys: sys, peers: peers,
		keys: []*raftKeyState{
			{cl: c1, client: "c1", key: "rk1", lastAcked: -1},
			{cl: c2, client: "c2", key: "rk2", lastAcked: -1},
		},
	}, nil
}

// raftKeyState tracks one single-writer key: every attempted value in
// order and the index of the last acknowledged one — observation
// state that tells Observe when the healed cluster has converged, not
// checking logic.
type raftKeyState struct {
	cl        *raftkv.Client
	client    string
	key       string
	attempts  []string
	lastAcked int
}

type raftInstance struct {
	eng   *core.Engine
	rec   *history.Recorder
	sys   *raftkv.System
	peers []netsim.NodeID
	keys  []*raftKeyState
}

func (in *raftInstance) Step(ctx *StepCtx) {
	for _, ks := range in.keys {
		if ctx.IsPaused(ks.cl.ID()) {
			continue
		}
		val := fmt.Sprintf("%s-op%d-%d", ks.key, ctx.Op, ctx.Rng.Intn(1000))
		ks.attempts = append(ks.attempts, val)
		ref := in.rec.Begin(history.Op{Client: ks.client, Kind: "put", Key: ks.key, Input: val})
		err := ks.cl.Put(ks.key, val)
		if err == nil {
			ks.lastAcked = len(ks.attempts) - 1
		}
		ref.End(history.OutcomeOf(err, raftkv.MaybeExecuted(err)), "")
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

// Observe waits for the healed cluster to elect a leader and for each
// key to converge to a state at least as new as its last acknowledged
// write, then records one final read per key. If the state never
// converges the stale read is recorded as observed, and the register
// checker reports the durability breach.
func (in *raftInstance) Observe(*StepCtx) {
	in.sys.WaitForLeaderAmong(in.peers, 3*time.Second)
	for _, ks := range in.keys {
		if len(ks.attempts) == 0 {
			continue
		}
		in.eng.WaitUntil(2*time.Second, func() bool {
			got, err := ks.cl.Get(ks.key)
			if err != nil {
				return raftkv.IsNotFound(err) && ks.lastAcked < 0
			}
			idx := indexOf(ks.attempts, got)
			return idx >= 0 && idx >= ks.lastAcked
		})
		ref := in.rec.Begin(history.Op{Client: ks.client, Kind: "get", Key: ks.key})
		got, err := ks.cl.Get(ks.key)
		switch {
		case err == nil:
			ref.End(history.Ok, got)
		case raftkv.IsNotFound(err):
			ref.EndNote(history.Ok, "", "missing")
		default:
			ref.End(history.OutcomeOf(err, raftkv.MaybeExecuted(err)), "")
		}
	}
}

// Probe validates recovery: one put on a dedicated probe key through
// c1, then re-reads of the probe key and both workload keys. Early
// probe passes legitimately time out while the healed cluster is
// still electing; a pass confirms recovery only when every operation
// got a definitive answer and the put was acknowledged.
func (in *raftInstance) Probe(ctx *StepCtx) bool {
	cl := in.keys[0].cl
	val := fmt.Sprintf("pk-op%d", ctx.Op)
	pref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-put", Key: "pk", Input: val})
	err := probeDo(ctx, nil, func() error { return cl.Put("pk", val) })
	pref.End(history.OutcomeOf(err, raftkv.MaybeExecuted(err)), "")
	ok := err == nil
	for _, key := range []string{"pk", "rk1", "rk2"} {
		ok = in.probeGet(ctx, cl, key) && ok
	}
	return ok
}

func (in *raftInstance) probeGet(ctx *StepCtx, cl *raftkv.Client, key string) bool {
	ref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-get", Key: key})
	var got string
	err := probeDo(ctx, func(err error) resilience.Class {
		if raftkv.IsNotFound(err) {
			return resilience.Fatal
		}
		return resilience.Retryable
	}, func() error {
		v, err := cl.Get(key)
		got = v
		return err
	})
	switch {
	case err == nil:
		ref.End(history.Ok, got)
		return true
	case raftkv.IsNotFound(err):
		ref.EndNote(history.Ok, "", "missing")
		return true
	default:
		ref.End(history.OutcomeOf(err, raftkv.MaybeExecuted(err)), "")
		return false
	}
}

func (in *raftInstance) Close() {
	for _, ks := range in.keys {
		ks.cl.Close()
	}
}

func indexOf(vals []string, v string) int {
	for i, x := range vals {
		if x == v {
			return i
		}
	}
	return -1
}
