package campaign

import (
	"fmt"
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
	"neat/internal/raftkv"
)

// raftTarget fuzzes the proper-Raft group. Quorum elections plus
// commit-before-ack make it the safe configuration: campaigns are
// expected to find zero violations here, whatever the schedule.
type raftTarget struct{}

func (t *raftTarget) Name() string { return "raftkv" }

func (t *raftTarget) Topology() Topology {
	return Topology{Servers: ids("r", 3), Clients: []netsim.NodeID{"c1", "c2"}}
}

func (t *raftTarget) Deploy(eng *core.Engine) (Instance, error) {
	peers := t.Topology().Servers
	cfg := raftkv.Config{
		Peers:              peers,
		HeartbeatInterval:  10 * time.Millisecond,
		ElectionTimeoutMin: 40 * time.Millisecond,
		ElectionTimeoutMax: 80 * time.Millisecond,
		RPCTimeout:         20 * time.Millisecond,
		CommitWait:         120 * time.Millisecond,
	}
	sys := raftkv.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	c1 := raftkv.NewClient(eng.Network(), "c1", peers)
	c2 := raftkv.NewClient(eng.Network(), "c2", peers)
	c1.SetTimeout(150 * time.Millisecond)
	c2.SetTimeout(150 * time.Millisecond)
	sys.WaitForLeaderAmong(peers, 2*time.Second)
	return &raftInstance{
		eng: eng, sys: sys, peers: peers,
		keys: []*raftKeyState{
			{cl: c1, key: "rk1", lastAcked: -1},
			{cl: c2, key: "rk2", lastAcked: -1},
		},
	}, nil
}

// raftKeyState tracks one single-writer key: every attempted value in
// order, and the index of the last acknowledged one.
type raftKeyState struct {
	cl        *raftkv.Client
	key       string
	attempts  []string
	lastAcked int
}

type raftInstance struct {
	eng   *core.Engine
	sys   *raftkv.System
	peers []netsim.NodeID
	keys  []*raftKeyState
}

func (in *raftInstance) Step(ctx *StepCtx) {
	for _, ks := range in.keys {
		val := fmt.Sprintf("%s-op%d-%d", ks.key, ctx.Op, ctx.Rng.Intn(1000))
		ks.attempts = append(ks.attempts, val)
		if ks.cl.Put(ks.key, val) == nil {
			ks.lastAcked = len(ks.attempts) - 1
		}
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

// Check verifies linearizable durability: once the healed cluster has
// a leader, each key must converge to an attempted value at least as
// new as its last acknowledged write. A write that was reported failed
// may legitimately commit later (its entry survived in a log), but an
// acknowledged write must never roll back.
func (in *raftInstance) Check() []Violation {
	in.sys.WaitForLeaderAmong(in.peers, 3*time.Second)
	var out []Violation
	for _, ks := range in.keys {
		if len(ks.attempts) == 0 {
			continue
		}
		var lastObs string
		ok := in.eng.WaitUntil(2*time.Second, func() bool {
			got, err := ks.cl.Get(ks.key)
			if err != nil {
				if raftkv.IsNotFound(err) {
					lastObs = "(not found)"
					return ks.lastAcked < 0
				}
				lastObs = fmt.Sprintf("(error: %v)", err)
				return false
			}
			lastObs = fmt.Sprintf("%q", got)
			idx := indexOf(ks.attempts, got)
			return idx >= 0 && idx >= ks.lastAcked
		})
		if !ok {
			out = append(out, Violation{
				Invariant: "durability",
				Subject:   ks.key,
				Detail: fmt.Sprintf("state never converged past acknowledged write #%d; last observed %s",
					ks.lastAcked, lastObs),
			})
		}
	}
	return out
}

func (in *raftInstance) Close() {
	for _, ks := range in.keys {
		ks.cl.Close()
	}
}

func indexOf(vals []string, v string) int {
	for i, x := range vals {
		if x == v {
			return i
		}
	}
	return -1
}
