package campaign

import (
	"fmt"
	"strconv"
	"time"

	"neat/internal/core"
	"neat/internal/history"
	"neat/internal/jobsched"
	"neat/internal/netsim"
)

// jobschedTarget fuzzes the DKron-style job scheduler. The studied
// flaw (DKron issue #379): the leader judges a job by acknowledgement
// count, so a partial partition that separates it from its agents —
// but not from the central status store — makes it record FAILED for a
// job that genuinely ran (on the leader itself, which is an agent
// too). The user is told the task failed when it executed; a manual
// retry then doubles the work.
//
// The instance records each triggered run (the leader's definitive
// FAILED verdict as a Failed outcome — that is the claim the checker
// holds it to), retries "failed" jobs the way the misled user would,
// and after the heal reads every node's per-job execution tally. The
// generic Tasks checker reports a tally above the acknowledged
// submissions as exactly-once (the misleading status, or the doubled
// retry) and an acked job with all-zero tallies as lost-ack. The safe
// variant turns on TruthfulStatus: the recorded status reflects
// whether the job actually executed, so the user is never misled into
// retrying.
type jobschedTarget struct {
	name string
	safe bool
}

func (t *jobschedTarget) Name() string { return t.name }

// Safe marks the fixed variant for the CI safe gate.
func (t *jobschedTarget) Safe() bool { return t.safe }

func (t *jobschedTarget) Topology() Topology {
	return Topology{
		Servers:  []netsim.NodeID{"s1", "s2", "s3"},
		Services: []netsim.NodeID{"store"},
		Clients:  []netsim.NodeID{"c1"},
	}
}

func (t *jobschedTarget) Checks() []history.Check {
	return []history.Check{
		history.Tasks(history.TasksSpec{SubmitKind: "run"}),
		// Post-heal liveness: one dedicated probe job per pass plus
		// per-node tally reads. No data-loss rule — executions are
		// judged by the Tasks checker.
		history.Recovery(history.RecoverySpec{}),
	}
}

func (t *jobschedTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	cfg := jobsched.Config{
		Nodes:          t.Topology().Servers,
		Store:          "store",
		TruthfulStatus: t.safe,
		RPCTimeout:     20 * time.Millisecond,
	}
	sys := jobsched.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &jobschedInstance{
		eng:   eng,
		rec:   rec,
		nodes: cfg.Nodes,
		cl:    jobsched.NewClient(eng.Network(), "c1", cfg),
	}, nil
}

type jobschedInstance struct {
	eng   *core.Engine
	rec   *history.Recorder
	nodes []netsim.NodeID
	cl    *jobsched.Client
	jobs  []string
	retry []string
}

// run triggers one job and records what the user learned: an
// acknowledged success, the leader's definitive FAILED verdict, or a
// transport-level loss that may have executed anyway.
func (in *jobschedInstance) run(job string) {
	ref := in.rec.Begin(history.Op{Client: "c1", Kind: "run", Key: job})
	status, err := in.cl.Run(job)
	switch {
	case err == nil && status == jobsched.StatusSucceeded:
		ref.End(history.Ok, status)
	case jobsched.MaybeExecuted(err):
		ref.End(history.Ambiguous, "")
	default:
		// The leader's explicit verdict: the job failed. The checker
		// holds the system to that claim.
		ref.End(history.Failed, status)
		in.retry = append(in.retry, job)
	}
}

func (in *jobschedInstance) Step(ctx *StepCtx) {
	if ctx.IsPaused(in.cl.ID()) {
		ctx.Clock.Sleep(time.Duration(5+ctx.Rng.Intn(10)) * time.Millisecond)
		return
	}
	if len(in.retry) > 0 && ctx.Rng.Intn(2) == 0 {
		// The misled user reruns a job the system swore had failed.
		job := in.retry[0]
		in.retry = in.retry[1:]
		in.run(job)
	} else if ctx.Op%3 == 0 {
		job := fmt.Sprintf("job%02d", ctx.Op)
		in.jobs = append(in.jobs, job)
		in.run(job)
	}
	ctx.Clock.Sleep(time.Duration(5+ctx.Rng.Intn(10)) * time.Millisecond)
}

// Observe reads each node's execution tally for every triggered job
// into the history — the per-node evidence the exactly-once and
// lost-ack rules judge.
func (in *jobschedInstance) Observe(*StepCtx) {
	for _, job := range in.jobs {
		for _, node := range in.nodes {
			ref := in.rec.Begin(history.Op{Client: "c1", Kind: "exec", Key: job, Node: string(node)})
			n, err := in.cl.ExecutionsOn(node, job)
			if err != nil {
				ref.End(history.OutcomeOf(err, jobsched.MaybeExecuted(err)), "")
				continue
			}
			ref.EndNote(history.Ok, strconv.Itoa(n), "count")
		}
	}
}

// jobschedProbeKey is the stable probe-group key; each pass's unique
// probe job rides in Input so violation subjects stay stable.
const jobschedProbeKey = "pj"

// Probe validates recovery: trigger one dedicated probe job (never
// tallied by Observe, so the Tasks checker stays blind to it) and read
// every node's execution tally for it. The pass confirms recovery when
// the run succeeded and every node answered.
func (in *jobschedInstance) Probe(ctx *StepCtx) bool {
	job := fmt.Sprintf("pj%02d", ctx.Op)
	ref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-run", Key: jobschedProbeKey, Input: job})
	var status string
	err := probeDo(ctx, nil, func() error {
		s, err := in.cl.Run(job)
		status = s
		return err
	})
	ok := false
	switch {
	case err == nil && status == jobsched.StatusSucceeded:
		ref.End(history.Ok, status)
		ok = true
	case err == nil:
		ref.End(history.Failed, status)
	default:
		ref.End(history.OutcomeOf(err, jobsched.MaybeExecuted(err)), "")
	}
	for _, node := range in.nodes {
		eref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-exec", Key: jobschedProbeKey, Node: string(node)})
		var n int
		err := probeDo(ctx, nil, func() error {
			v, err := in.cl.ExecutionsOn(node, job)
			n = v
			return err
		})
		if err != nil {
			eref.End(history.OutcomeOf(err, jobsched.MaybeExecuted(err)), "")
			ok = false
			continue
		}
		eref.End(history.Ok, strconv.Itoa(n))
	}
	return ok
}

func (in *jobschedInstance) Close() { in.cl.Close() }
