package campaign

import (
	"fmt"
	"math/rand"
	"strings"

	"neat/internal/netsim"
)

// FaultKind enumerates the injectable faults: the paper's three
// partition types and node crashes, plus the link-level chaos faults
// its failure reports implicate alongside clean splits — slow, lossy,
// and flaky (duplicating/reordering) links and flapping partitions.
type FaultKind int

const (
	// FaultComplete is a complete partition covering the whole
	// cluster (no packets cross between the sides).
	FaultComplete FaultKind = iota
	// FaultPartial isolates two groups from each other while both
	// keep talking to the rest.
	FaultPartial
	// FaultSimplex drops one direction of traffic between two groups.
	FaultSimplex
	// FaultCrash power-offs one server (GroupA[0]); GroupB is unused.
	FaultCrash
	// FaultSlow adds DelayMs of one-way latency (plus jitter) to every
	// link between the groups — the slow link that masquerades as a
	// partition once timeouts expire.
	FaultSlow
	// FaultLoss drops packets between the groups with probability
	// Rate, in both directions.
	FaultLoss
	// FaultFlaky duplicates and reorders packets between the groups,
	// each with probability Rate, deferring reordered packets by up to
	// DelayMs.
	FaultFlaky
	// FaultFlap repeatedly injects and heals a partition between the
	// groups every DelayMs of schedule time, starting partitioned.
	FaultFlap
	// FaultSkew skews GroupA[0]'s clock: its view of time jumps by
	// DelayMs milliseconds (signed) and then drifts at Rate versus the
	// cluster. Leases expire early, timestamps disagree, timeouts
	// misfire — the gray failure behind "the lock was still mine".
	FaultSkew
	// FaultPause freezes GroupA[0] as a GC stall or VM migration
	// would: its timers stop and inbound packets queue (links stay up,
	// nothing is dropped); on heal the node resumes with stale state
	// and a burst of deferred work.
	FaultPause
	// FaultDisk makes GroupA[0]'s disk lie: writes are acknowledged
	// but the bytes are lost (Mode "lost") or torn (Mode "torn").
	// Data-plane only — the victim comes from Topology.DiskNodes.
	FaultDisk
	// FaultRestart crashes GroupA[0] and brings it back after DelayMs
	// of clock time, mid-round — the recovery restart that replays
	// stale state into a cluster that has moved on.
	FaultRestart
)

// String names the fault kind. The switch is exhaustive: an
// out-of-range kind renders as "faultkind(N)" rather than silently
// borrowing another kind's name and mislabelling reports.
func (k FaultKind) String() string {
	switch k {
	case FaultComplete:
		return "complete"
	case FaultPartial:
		return "partial"
	case FaultSimplex:
		return "simplex"
	case FaultCrash:
		return "crash"
	case FaultSlow:
		return "slow"
	case FaultLoss:
		return "loss"
	case FaultFlaky:
		return "flaky"
	case FaultFlap:
		return "flap"
	case FaultSkew:
		return "skew"
	case FaultPause:
		return "pause"
	case FaultDisk:
		return "disk"
	case FaultRestart:
		return "restart"
	default:
		return fmt.Sprintf("faultkind(%d)", int(k))
	}
}

// SingleVictim reports whether the kind targets one node (GroupA[0])
// with no peer group: crashes, clock skews, process pauses, disk
// faults, and recovery restarts.
func (k FaultKind) SingleVictim() bool {
	switch k {
	case FaultCrash, FaultSkew, FaultPause, FaultDisk, FaultRestart:
		return true
	}
	return false
}

// Fault-kind sets for Generate and the -faults flag of cmd/neat-fuzz.
var (
	// ClassicFaultKinds are the seed engine's four kinds: the paper's
	// three partition types plus crashes.
	ClassicFaultKinds = []FaultKind{FaultComplete, FaultPartial, FaultSimplex, FaultCrash}
	// ChaosFaultKinds are the link-level degradations.
	ChaosFaultKinds = []FaultKind{FaultSlow, FaultLoss, FaultFlaky, FaultFlap}
	// GrayFaultKinds are the gray failures: nodes that are neither up
	// nor down — skewed clocks, frozen processes, lying disks, and
	// mid-round recovery restarts.
	GrayFaultKinds = []FaultKind{FaultSkew, FaultPause, FaultDisk, FaultRestart}
	// AllFaultKinds is the default generation mix.
	AllFaultKinds = append(append(append([]FaultKind{},
		ClassicFaultKinds...), ChaosFaultKinds...), GrayFaultKinds...)
)

// ParseFaultKinds resolves a -faults spec: the presets "all" (or
// empty), "classic", "chaos", and "gray", or a comma-separated list of
// kind names ("complete,slow,pause"). Duplicates are kept: they bias
// the generator toward the repeated kind, which is occasionally useful.
func ParseFaultKinds(spec string) ([]FaultKind, error) {
	switch strings.TrimSpace(spec) {
	case "", "all":
		return append([]FaultKind{}, AllFaultKinds...), nil
	case "classic":
		return append([]FaultKind{}, ClassicFaultKinds...), nil
	case "chaos":
		return append([]FaultKind{}, ChaosFaultKinds...), nil
	case "gray":
		return append([]FaultKind{}, GrayFaultKinds...), nil
	}
	var out []FaultKind
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, err := ParseFaultKind(name)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty fault-kind spec %q", spec)
	}
	return out, nil
}

// ParseFaultKind resolves one fault-kind name ("complete", "slow",
// "pause", ...). Corpus files store kinds by name, so imports resolve
// through here.
func ParseFaultKind(name string) (FaultKind, error) {
	for _, k := range AllFaultKinds {
		if k.String() == name {
			return k, nil
		}
	}
	known := make([]string, 0, len(AllFaultKinds))
	for _, kk := range AllFaultKinds {
		known = append(known, kk.String())
	}
	return 0, fmt.Errorf("campaign: unknown fault kind %q (known: %s, or the presets all/classic/chaos/gray)",
		name, strings.Join(known, ", "))
}

// Fault is one scheduled fault. It is injected just before operation
// round At and healed (partition removed, crashed node restarted)
// just before round HealAt; HealAt < 0 means it stays active until
// the end of the schedule, when the runner heals everything.
type Fault struct {
	Kind   FaultKind
	At     int
	HealAt int
	// GroupA/GroupB are the partition sides (for FaultSimplex packets
	// flow GroupA->GroupB and the reverse is dropped). For FaultCrash
	// only GroupA[0], the victim, is used.
	GroupA []netsim.NodeID
	GroupB []netsim.NodeID
	// DelayMs is the magnitude in milliseconds of schedule time: the
	// added one-way link delay for FaultSlow, the reordering window
	// for FaultFlaky, the inject/heal half-period for FaultFlap, the
	// signed clock jump for FaultSkew, and the recovery delay for
	// FaultRestart. Zero for the other kinds.
	DelayMs int
	// Rate is the kind's ratio: packet loss for FaultLoss, per-packet
	// duplication/reordering probability for FaultFlaky, and the
	// drift rate (1 = no drift) for FaultSkew. Zero for the other
	// kinds.
	Rate float64
	// Mode is the FaultDisk failure mode: "lost" (write acked, bytes
	// never stored) or "torn" (write acked, bytes truncated). Empty
	// for the other kinds.
	Mode string
}

// String renders one fault line, e.g.
// "complete [s1 c1]|[s2 s3 c2] at=2 heal=5" or
// "loss [s1]|[s2 zk] rate=0.35 at=1 heal=end".
func (f Fault) String() string {
	heal := "end"
	if f.HealAt >= 0 {
		heal = fmt.Sprintf("%d", f.HealAt)
	}
	groups := func() string {
		return groupString(f.GroupA) + "|" + groupString(f.GroupB)
	}
	switch f.Kind {
	case FaultCrash:
		return fmt.Sprintf("crash %s at=%d restart=%s", f.GroupA[0], f.At, heal)
	case FaultSlow:
		return fmt.Sprintf("slow %s delay=%dms at=%d heal=%s", groups(), f.DelayMs, f.At, heal)
	case FaultLoss:
		return fmt.Sprintf("loss %s rate=%.2f at=%d heal=%s", groups(), f.Rate, f.At, heal)
	case FaultFlaky:
		return fmt.Sprintf("flaky %s rate=%.2f window=%dms at=%d heal=%s", groups(), f.Rate, f.DelayMs, f.At, heal)
	case FaultFlap:
		return fmt.Sprintf("flap %s period=%dms at=%d heal=%s", groups(), f.DelayMs, f.At, heal)
	case FaultSkew:
		return fmt.Sprintf("skew %s offset=%+dms rate=%.2f at=%d heal=%s", f.GroupA[0], f.DelayMs, f.Rate, f.At, heal)
	case FaultPause:
		return fmt.Sprintf("pause %s at=%d resume=%s", f.GroupA[0], f.At, heal)
	case FaultDisk:
		return fmt.Sprintf("disk %s mode=%s at=%d heal=%s", f.GroupA[0], f.Mode, f.At, heal)
	case FaultRestart:
		return fmt.Sprintf("restart %s after=%dms at=%d", f.GroupA[0], f.DelayMs, f.At)
	}
	return fmt.Sprintf("%s %s at=%d heal=%s", f.Kind, groups(), f.At, heal)
}

func groupString(g []netsim.NodeID) string {
	parts := make([]string, len(g))
	for i, id := range g {
		parts[i] = string(id)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Schedule is a seeded, reproducible multi-fault plan: Ops workload
// rounds with Faults injected and healed at fixed round indices. The
// same Seed and topology always generate the same schedule, and the
// Seed also drives the workload's randomness during execution.
type Schedule struct {
	Seed   int64
	Ops    int
	Faults []Fault
}

// Describe renders the schedule as one line per fault, prefixed with
// the op-count line — the shape embedded in JSON reports.
func (s Schedule) Describe() []string {
	out := []string{fmt.Sprintf("ops=%d seed=%d", s.Ops, s.Seed)}
	for _, f := range s.Faults {
		out = append(out, f.String())
	}
	return out
}

// String renders the schedule on one line.
func (s Schedule) String() string { return strings.Join(s.Describe(), "; ") }

// Generation bounds. Kept small so single rounds stay fast; campaigns
// get their scenario diversity from round count, not round size.
const (
	minOps    = 5
	maxOps    = 12
	maxFaults = 3
)

// Chaos-fault magnitude bounds. Delays sit below the transport's
// 250 ms RPC timeout so a slow link usually looks slow rather than
// dead, but stacked overlays can push a round trip past it —
// reproducing the "slow link masquerading as a partition" class.
const (
	minSlowDelayMs = 10
	maxSlowDelayMs = 80
	minLossRate    = 0.10
	maxLossRate    = 0.60
	minFlakyRate   = 0.15
	maxFlakyRate   = 0.50
	minWindowMs    = 5
	maxWindowMs    = 40
	minFlapMs      = 10
	maxFlapMs      = 50
)

// Gray-fault magnitude bounds. Skew jumps stay small against the
// transport's timeouts but large against lease renewal margins, so a
// skewed node keeps working while its leases quietly expire early; the
// drift band brackets 1 from both sides. Restart delays keep the
// victim down long enough to miss real work but bring it back within
// the same round.
const (
	minSkewOffMs = 5
	maxSkewOffMs = 25
	minSkewRate  = 0.80
	maxSkewRate  = 1.25
	minRestartMs = 10
	maxRestartMs = 50
)

// FaultDisk modes. Targets translate these to their storage layer's
// fault injection (internal/dfs uses the same names).
const (
	DiskModeLost = "lost"
	DiskModeTorn = "torn"
)

// Generate produces a random schedule for the topology, drawn
// entirely from rng so equal seeds yield equal schedules. Schedules
// may contain up to maxFaults overlapping faults with timed heals,
// drawn from the given kinds (defaulting to AllFaultKinds).
func Generate(rng *rand.Rand, topo Topology, kinds ...FaultKind) Schedule {
	if len(kinds) == 0 {
		kinds = AllFaultKinds
	}
	ops := minOps + rng.Intn(maxOps-minOps+1)
	n := 1 + rng.Intn(maxFaults)
	sched := Schedule{Ops: ops}
	// At most one disk fault per schedule: a second lying disk mostly
	// drowns the first's signal (every replica torn is a different,
	// less interesting failure than one bad replica among good ones).
	diskUsed := false
	for i := 0; i < n; i++ {
		sched.Faults = append(sched.Faults, genFault(rng, topo, ops, kinds, &diskUsed))
	}
	return sched
}

// crash degrades a fault to a crash of its victim — the fallback for
// edge topologies where the drawn kind needs a peer the topology does
// not have (a single server with no services or clients, or a disk
// fault against a target that declares no disk-bearing nodes).
func (f Fault) crash(victim netsim.NodeID) Fault {
	f.Kind = FaultCrash
	f.GroupA = []netsim.NodeID{victim}
	f.GroupB = nil
	f.DelayMs, f.Rate, f.Mode = 0, 0, ""
	return f
}

func genFault(rng *rand.Rand, topo Topology, ops int, kinds []FaultKind, diskUsed *bool) Fault {
	f := Fault{Kind: kinds[rng.Intn(len(kinds))], At: rng.Intn(ops)}
	// Half the faults heal mid-run (the study's timed heals); the
	// rest persist until the end-of-schedule HealAll.
	f.HealAt = -1
	if rng.Intn(2) == 0 {
		h := f.At + 1 + rng.Intn(ops-f.At)
		if h < ops {
			f.HealAt = h
		}
	}
	victim := topo.Servers[rng.Intn(len(topo.Servers))]
	switch f.Kind {
	case FaultComplete, FaultFlap:
		// Whole-cluster split: the victim server forms the minority;
		// services and clients land on a random side each, so some
		// rounds reproduce "client access to one side". A flap cycles
		// the same split in and out.
		a := []netsim.NodeID{victim}
		var b []netsim.NodeID
		for _, id := range topo.Servers {
			if id != victim {
				b = append(b, id)
			}
		}
		for _, id := range append(append([]netsim.NodeID{}, topo.Services...), topo.Clients...) {
			if rng.Intn(2) == 0 {
				a = append(a, id)
			} else {
				b = append(b, id)
			}
		}
		if len(b) == 0 {
			// No other servers and nothing drawn onto side B. Move a
			// non-victim member of A across — a[0] is always the
			// victim, so both sides end up nonempty with the victim
			// still in GroupA. If the victim is the only node in the
			// topology a partition is impossible; crash it instead.
			if len(a) < 2 {
				return f.crash(victim)
			}
			b = append(b, a[len(a)-1])
			a = a[:len(a)-1]
		}
		f.GroupA, f.GroupB = a, b
		if f.Kind == FaultFlap {
			f.DelayMs = minFlapMs + rng.Intn(maxFlapMs-minFlapMs+1)
		}
	case FaultPartial:
		// Isolate the victim from a random nonempty subset of the
		// other servers and services; everyone keeps talking to the
		// rest (including all clients).
		var others []netsim.NodeID
		for _, id := range topo.Servers {
			if id != victim {
				others = append(others, id)
			}
		}
		others = append(others, topo.Services...)
		if len(others) == 0 {
			return f.crash(victim)
		}
		var b []netsim.NodeID
		for _, id := range others {
			if rng.Intn(2) == 0 {
				b = append(b, id)
			}
		}
		if len(b) == 0 {
			b = append(b, others[rng.Intn(len(others))])
		}
		f.GroupA, f.GroupB = []netsim.NodeID{victim}, b
	case FaultSimplex:
		// One-way loss between the victim and the other servers —
		// the direction decides whether requests or acknowledgements
		// are dropped (the request-routing failure class).
		var rest []netsim.NodeID
		for _, id := range topo.Servers {
			if id != victim {
				rest = append(rest, id)
			}
		}
		rest = append(rest, topo.Services...)
		if len(rest) == 0 {
			return f.crash(victim)
		}
		if rng.Intn(2) == 0 {
			f.GroupA, f.GroupB = []netsim.NodeID{victim}, rest
		} else {
			f.GroupA, f.GroupB = rest, []netsim.NodeID{victim}
		}
	case FaultSlow, FaultLoss, FaultFlaky:
		// Degrade the links between the victim and a random nonempty
		// subset of everyone else — including clients, so a lossy or
		// slow client link reproduces retry storms and duplicated
		// requests, not just server-to-server degradation.
		var peers []netsim.NodeID
		for _, id := range topo.Servers {
			if id != victim {
				peers = append(peers, id)
			}
		}
		peers = append(peers, topo.Services...)
		peers = append(peers, topo.Clients...)
		if len(peers) == 0 {
			return f.crash(victim)
		}
		var b []netsim.NodeID
		for _, id := range peers {
			if rng.Intn(2) == 0 {
				b = append(b, id)
			}
		}
		if len(b) == 0 {
			b = append(b, peers[rng.Intn(len(peers))])
		}
		f.GroupA, f.GroupB = []netsim.NodeID{victim}, b
		switch f.Kind {
		case FaultSlow:
			f.DelayMs = minSlowDelayMs + rng.Intn(maxSlowDelayMs-minSlowDelayMs+1)
		case FaultLoss:
			f.Rate = minLossRate + (maxLossRate-minLossRate)*rng.Float64()
		case FaultFlaky:
			f.Rate = minFlakyRate + (maxFlakyRate-minFlakyRate)*rng.Float64()
			f.DelayMs = minWindowMs + rng.Intn(maxWindowMs-minWindowMs+1)
		}
	case FaultCrash:
		f.GroupA = []netsim.NodeID{victim}
	case FaultSkew:
		// Skew a server or service clock: the node keeps serving while
		// its view of time disagrees with everyone else's.
		pool := append(append([]netsim.NodeID{}, topo.Servers...), topo.Services...)
		v := pool[rng.Intn(len(pool))]
		off := minSkewOffMs + rng.Intn(maxSkewOffMs-minSkewOffMs+1)
		if rng.Intn(2) == 0 {
			off = -off
		}
		f.GroupA = []netsim.NodeID{v}
		f.DelayMs = off
		f.Rate = minSkewRate + (maxSkewRate-minSkewRate)*rng.Float64()
	case FaultPause:
		// Freeze a server or a client: a paused client is the classic
		// GC-stalled lock holder, a paused server the stalled primary.
		pool := append(append([]netsim.NodeID{}, topo.Servers...), topo.Clients...)
		f.GroupA = []netsim.NodeID{pool[rng.Intn(len(pool))]}
	case FaultDisk:
		if len(topo.DiskNodes) == 0 || *diskUsed {
			return f.crash(victim)
		}
		*diskUsed = true
		f.GroupA = []netsim.NodeID{topo.DiskNodes[rng.Intn(len(topo.DiskNodes))]}
		if rng.Intn(2) == 0 {
			f.Mode = DiskModeLost
		} else {
			f.Mode = DiskModeTorn
		}
	case FaultRestart:
		f.GroupA = []netsim.NodeID{victim}
		f.HealAt = -1 // the scheduled recovery is the heal
		f.DelayMs = minRestartMs + rng.Intn(maxRestartMs-minRestartMs+1)
	}
	return f
}
