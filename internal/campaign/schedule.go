package campaign

import (
	"fmt"
	"math/rand"
	"strings"

	"neat/internal/netsim"
)

// FaultKind enumerates the injectable faults: the paper's three
// partition types plus node crashes.
type FaultKind int

const (
	// FaultComplete is a complete partition covering the whole
	// cluster (no packets cross between the sides).
	FaultComplete FaultKind = iota
	// FaultPartial isolates two groups from each other while both
	// keep talking to the rest.
	FaultPartial
	// FaultSimplex drops one direction of traffic between two groups.
	FaultSimplex
	// FaultCrash power-offs one server (GroupA[0]); GroupB is unused.
	FaultCrash
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultComplete:
		return "complete"
	case FaultPartial:
		return "partial"
	case FaultSimplex:
		return "simplex"
	default:
		return "crash"
	}
}

// Fault is one scheduled fault. It is injected just before operation
// round At and healed (partition removed, crashed node restarted)
// just before round HealAt; HealAt < 0 means it stays active until
// the end of the schedule, when the runner heals everything.
type Fault struct {
	Kind   FaultKind
	At     int
	HealAt int
	// GroupA/GroupB are the partition sides (for FaultSimplex packets
	// flow GroupA->GroupB and the reverse is dropped). For FaultCrash
	// only GroupA[0], the victim, is used.
	GroupA []netsim.NodeID
	GroupB []netsim.NodeID
}

// String renders one fault line, e.g.
// "complete [s1 c1]|[s2 s3 c2] at=2 heal=5".
func (f Fault) String() string {
	heal := "end"
	if f.HealAt >= 0 {
		heal = fmt.Sprintf("%d", f.HealAt)
	}
	if f.Kind == FaultCrash {
		return fmt.Sprintf("crash %s at=%d restart=%s", f.GroupA[0], f.At, heal)
	}
	return fmt.Sprintf("%s %s|%s at=%d heal=%s",
		f.Kind, groupString(f.GroupA), groupString(f.GroupB), f.At, heal)
}

func groupString(g []netsim.NodeID) string {
	parts := make([]string, len(g))
	for i, id := range g {
		parts[i] = string(id)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Schedule is a seeded, reproducible multi-fault plan: Ops workload
// rounds with Faults injected and healed at fixed round indices. The
// same Seed and topology always generate the same schedule, and the
// Seed also drives the workload's randomness during execution.
type Schedule struct {
	Seed   int64
	Ops    int
	Faults []Fault
}

// Describe renders the schedule as one line per fault, prefixed with
// the op-count line — the shape embedded in JSON reports.
func (s Schedule) Describe() []string {
	out := []string{fmt.Sprintf("ops=%d seed=%d", s.Ops, s.Seed)}
	for _, f := range s.Faults {
		out = append(out, f.String())
	}
	return out
}

// String renders the schedule on one line.
func (s Schedule) String() string { return strings.Join(s.Describe(), "; ") }

// Generation bounds. Kept small so single rounds stay fast; campaigns
// get their scenario diversity from round count, not round size.
const (
	minOps    = 5
	maxOps    = 12
	maxFaults = 3
)

// Generate produces a random schedule for the topology, drawn
// entirely from rng so equal seeds yield equal schedules. Schedules
// may contain up to maxFaults overlapping faults of all kinds with
// timed heals.
func Generate(rng *rand.Rand, topo Topology) Schedule {
	ops := minOps + rng.Intn(maxOps-minOps+1)
	n := 1 + rng.Intn(maxFaults)
	sched := Schedule{Ops: ops}
	for i := 0; i < n; i++ {
		sched.Faults = append(sched.Faults, genFault(rng, topo, ops))
	}
	return sched
}

func genFault(rng *rand.Rand, topo Topology, ops int) Fault {
	f := Fault{Kind: FaultKind(rng.Intn(4)), At: rng.Intn(ops)}
	// Half the faults heal mid-run (the study's timed heals); the
	// rest persist until the end-of-schedule HealAll.
	f.HealAt = -1
	if rng.Intn(2) == 0 {
		h := f.At + 1 + rng.Intn(ops-f.At)
		if h < ops {
			f.HealAt = h
		}
	}
	victim := topo.Servers[rng.Intn(len(topo.Servers))]
	switch f.Kind {
	case FaultComplete:
		// Whole-cluster split: the victim server forms the minority;
		// services and clients land on a random side each, so some
		// rounds reproduce "client access to one side".
		a := []netsim.NodeID{victim}
		var b []netsim.NodeID
		for _, id := range topo.Servers {
			if id != victim {
				b = append(b, id)
			}
		}
		for _, id := range append(append([]netsim.NodeID{}, topo.Services...), topo.Clients...) {
			if rng.Intn(2) == 0 {
				a = append(a, id)
			} else {
				b = append(b, id)
			}
		}
		if len(b) == 0 {
			b = append(b, a[len(a)-1])
			a = a[:len(a)-1]
		}
		f.GroupA, f.GroupB = a, b
	case FaultPartial:
		// Isolate the victim from a random nonempty subset of the
		// other servers and services; everyone keeps talking to the
		// rest (including all clients).
		var others []netsim.NodeID
		for _, id := range topo.Servers {
			if id != victim {
				others = append(others, id)
			}
		}
		others = append(others, topo.Services...)
		var b []netsim.NodeID
		for _, id := range others {
			if rng.Intn(2) == 0 {
				b = append(b, id)
			}
		}
		if len(b) == 0 {
			b = append(b, others[rng.Intn(len(others))])
		}
		f.GroupA, f.GroupB = []netsim.NodeID{victim}, b
	case FaultSimplex:
		// One-way loss between the victim and the other servers —
		// the direction decides whether requests or acknowledgements
		// are dropped (the request-routing failure class).
		var rest []netsim.NodeID
		for _, id := range topo.Servers {
			if id != victim {
				rest = append(rest, id)
			}
		}
		rest = append(rest, topo.Services...)
		if rng.Intn(2) == 0 {
			f.GroupA, f.GroupB = []netsim.NodeID{victim}, rest
		} else {
			f.GroupA, f.GroupB = rest, []netsim.NodeID{victim}
		}
	case FaultCrash:
		f.GroupA = []netsim.NodeID{victim}
	}
	return f
}
