package campaign

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// determinismTargets is the mix the reproducibility tests fuzz: flawed
// configurations covering distinct failure classes (kvstore
// consolidation data loss, locksvc split views, mqueue double dequeue,
// the dfs placement/namespace failures, mapred double execution,
// jobsched misleading status) plus one safe configuration that must
// stay clean.
func determinismTargets(t *testing.T) []Target {
	t.Helper()
	targets, err := Select("kvstore/lowest-id,locksvc,mqueue,locksvc/sync,dfs,mapred,jobsched")
	if err != nil {
		t.Fatal(err)
	}
	return targets
}

// runVirtualCampaign executes one virtual-time campaign and returns
// its full JSON report — signatures, first rounds, counts, schedules,
// shrunk reproducers, witness traces, and (Trace on) the full
// recorded operation histories with their virtual-clock timestamps,
// canonically serialized. The kinds restrict fault generation (nil =
// the full default mix, chaos included).
func runVirtualCampaign(t *testing.T, workers int, kinds ...FaultKind) []byte {
	t.Helper()
	res := Run(Config{
		Targets:     determinismTargets(t),
		Rounds:      6,
		Seed:        42,
		Workers:     workers,
		FaultKinds:  kinds,
		Shrink:      true,
		Trace:       true,
		VirtualTime: true,
	})
	if res.Errors > 0 {
		t.Fatalf("campaign reported %d round errors", res.Errors)
	}
	var buf bytes.Buffer
	if err := res.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignDeterministicUnderSimClock is the virtual clock's core
// determinism promise: two campaigns with the same seed produce
// byte-identical findings — signatures, first rounds, counts, fault
// schedules, and greedily shrunk reproducers — because each round runs
// on its own simulated clock whose timer sequence depends only on the
// seed, not on host load or scheduling luck.
func TestCampaignDeterministicUnderSimClock(t *testing.T) {
	var a, b []byte
	for attempt := 0; ; attempt++ {
		a = runVirtualCampaign(t, detWorkersDefault)
		b = runVirtualCampaign(t, detWorkersDefault)
		if bytes.Equal(a, b) {
			break
		}
		if attempt >= detRetries {
			t.Fatalf("same-seed campaigns diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
		}
		t.Logf("attempt %d diverged; retrying with a fresh pair (allowed under -race)", attempt)
	}
	if !bytes.Contains(a, []byte(`"signature"`)) {
		t.Fatal("campaign found no violations; the determinism check compared empty reports")
	}
}

// TestCampaignDeterministicChaosOnly pins the chaos subsystem's
// determinism in isolation: schedules drawn purely from the link-level
// fault kinds (slow, loss, flaky, flap) must replay byte-identically,
// which exercises the per-link decision streams, delayed AfterFunc
// delivery, and flap toggling under the simulated clock.
func TestCampaignDeterministicChaosOnly(t *testing.T) {
	for attempt := 0; ; attempt++ {
		a := runVirtualCampaign(t, detWorkersDefault, ChaosFaultKinds...)
		b := runVirtualCampaign(t, detWorkersDefault, ChaosFaultKinds...)
		if bytes.Equal(a, b) {
			return
		}
		if attempt >= detRetries {
			t.Fatalf("same-seed chaos campaigns diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
		}
		t.Logf("attempt %d diverged; retrying with a fresh pair (allowed under -race)", attempt)
	}
}

// TestCampaignDeterministicGrayOnly pins the gray-failure subsystem's
// determinism in isolation: schedules drawn purely from the gray kinds
// (skew, pause, disk, restart) must replay byte-identically, which
// exercises per-node clock views (skew retiming, suspended timers),
// the pause queue flush order, lying-disk modes, and the mid-round
// restart callbacks under the simulated clock — across worker counts,
// so restart timers firing on the advancer cannot leak cross-round
// nondeterminism.
func TestCampaignDeterministicGrayOnly(t *testing.T) {
	for attempt := 0; ; attempt++ {
		a := runVirtualCampaign(t, detWorkersSerial, GrayFaultKinds...)
		b := runVirtualCampaign(t, detWorkersParallel, GrayFaultKinds...)
		if bytes.Equal(a, b) {
			return
		}
		if attempt >= detRetries {
			t.Fatalf("same-seed gray campaigns diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
		}
		t.Logf("attempt %d diverged; retrying with a fresh pair (allowed under -race)", attempt)
	}
}

// TestCampaignDeterministicAcrossWorkerCounts: the worker pool only
// schedules rounds; it must not influence their outcomes. A campaign
// run one round at a time must match a heavily parallel one.
func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	for attempt := 0; ; attempt++ {
		serial := runVirtualCampaign(t, detWorkersSerial)
		parallel := runVirtualCampaign(t, detWorkersParallel)
		if bytes.Equal(serial, parallel) {
			return
		}
		if attempt >= detRetries {
			t.Fatalf("worker count changed campaign outcomes:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
		}
		t.Logf("attempt %d diverged; retrying with a fresh pair (allowed under -race)", attempt)
	}
}

// runMutateCampaign executes one coverage-guided campaign and returns
// the JSON report concatenated with the exported corpus: both must be
// byte-identical for campaigns to count as deterministic, because the
// corpus is what a resumed campaign mutates next. Rounds exceed
// mutateGenerationSize so later generations really do derive schedules
// from what the first one learned.
func runMutateCampaign(t *testing.T, workers int) []byte {
	t.Helper()
	res := Run(Config{
		Targets:     determinismTargets(t),
		Rounds:      mutateGenerationSize + 3,
		Seed:        42,
		Workers:     workers,
		Shrink:      true,
		Trace:       true,
		VirtualTime: true,
		Mutate:      true,
	})
	if res.Errors > 0 {
		t.Fatalf("campaign reported %d round errors", res.Errors)
	}
	mutated := 0
	for _, st := range res.Stats {
		mutated += st.MutatedRounds
	}
	if mutated == 0 {
		t.Fatal("mutate campaign derived no schedules by mutation; the determinism check is vacuous")
	}
	var buf bytes.Buffer
	if err := res.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.Corpus.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignDeterministicMutate: coverage-guided search must be as
// reproducible as random search. Schedules are a pure function of
// (seed, target, round, corpus-at-generation-start) and corpus updates
// apply at generation barriers in (target, round) order, so the worker
// pool cannot influence which parent a round mutates — a serial
// campaign and a heavily parallel one must produce byte-identical
// reports AND byte-identical corpora.
func TestCampaignDeterministicMutate(t *testing.T) {
	for attempt := 0; ; attempt++ {
		serial := runMutateCampaign(t, detWorkersSerial)
		parallel := runMutateCampaign(t, detWorkersParallel)
		if bytes.Equal(serial, parallel) {
			return
		}
		if attempt >= detRetries {
			t.Fatalf("worker count changed mutate-campaign outcomes:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
		}
		t.Logf("attempt %d diverged; retrying with a fresh pair (allowed under -race)", attempt)
	}
}

// TestVirtualRoundReplaysExactly: a single schedule replayed
// virtually must reproduce the same violation signatures every time —
// the property the shrinker depends on to confirm minimal reproducers.
func TestVirtualRoundReplaysExactly(t *testing.T) {
	targets, err := Select("kvstore/lowest-id")
	if err != nil {
		t.Fatal(err)
	}
	tgt := targets[0]
	// Find a failing schedule first.
	var failing *Schedule
	for round := 0; round < 12 && failing == nil; round++ {
		sched := generateFor(tgt, 42, round)
		if out := RunScheduleVirtual(tgt, sched); len(out.Violations) > 0 {
			failing = &sched
		}
	}
	if failing == nil {
		t.Skip("no failing schedule in 12 rounds; nothing to replay")
	}
	first := RunScheduleVirtual(tgt, *failing)
	for i := 0; i < 3; i++ {
		again := RunScheduleVirtual(tgt, *failing)
		if got, want := sigsOf(again.Violations), sigsOf(first.Violations); got != want {
			t.Fatalf("replay %d produced %q, first run produced %q", i, got, want)
		}
	}
}

// TestVirtualTimeIsFast pins the perf_opt itself: a schedule whose
// wall-clock execution spends over a second in timing waits must
// complete far faster than real time under the simulated clock. The
// bound is loose (10x slack against CI noise); the recorded benchmarks
// in BENCH_campaign.json track the real margin, which is >100x.
func TestVirtualTimeIsFast(t *testing.T) {
	targets, err := Select("kvstore/lowest-id")
	if err != nil {
		t.Fatal(err)
	}
	tgt := targets[0]
	sched := generateFor(tgt, 7, 0)
	//neat:allow realclock -- asserts the virtual-time run finishes fast on the wall clock
	start := time.Now()
	out := RunScheduleVirtual(tgt, sched)
	took := time.Since(start)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	// The check phase alone sleeps 250ms of virtual time; the workload
	// adds more. Real-clock execution of this schedule takes >1s.
	if took > 30*time.Second {
		t.Fatalf("virtual round took %v of wall time", took)
	}
	t.Logf("virtual round completed in %v wall time", took)
}

// TestHistoryDeterministicAcrossRuns: the recorded operation history
// itself — indices, outcomes, payloads, and virtual-clock timestamps
// — must be byte-identical across same-seed runs; witness traces
// inherit that. Runs over the kvstore baseline and the three
// data-plane targets, whose multi-step pipelines (placement retries,
// AppMaster attempts, dispatch fan-outs) are the most
// timing-sensitive recorders in the registry.
func TestHistoryDeterministicAcrossRuns(t *testing.T) {
	for _, name := range []string{"kvstore/lowest-id", "dfs", "mapred", "jobsched"} {
		t.Run(name, func(t *testing.T) {
			targets, err := Select(name)
			if err != nil {
				t.Fatal(err)
			}
			tgt := targets[0]
			sched := generateFor(tgt, 42, 0)
			first := runSchedule(tgt, sched, runOpts{virtual: true, trace: true})
			if first.Err != nil {
				t.Fatal(first.Err)
			}
			if len(first.History) == 0 {
				t.Fatal("round recorded no operations")
			}
			for i := 0; i < 3; i++ {
				again := runSchedule(tgt, sched, runOpts{virtual: true, trace: true})
				if !reflect.DeepEqual(first.History, again.History) {
					t.Fatalf("replay %d recorded a different history:\n%v\nvs\n%v", i, first.History, again.History)
				}
				if !reflect.DeepEqual(first.Violations, again.Violations) {
					t.Fatalf("replay %d produced different violations (traces included):\n%v\nvs\n%v",
						i, first.Violations, again.Violations)
				}
			}
		})
	}
}

func generateFor(tgt Target, base int64, round int) Schedule {
	seed := scheduleSeed(base, tgt.Name(), round)
	gen := rand.New(rand.NewSource(seed))
	sched := Generate(gen, tgt.Topology())
	sched.Seed = seed
	return sched
}

func sigsOf(vs []Violation) string {
	out := ""
	for _, v := range vs {
		out += v.Signature() + ";"
	}
	return out
}
