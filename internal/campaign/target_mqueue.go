package campaign

import (
	"fmt"
	"sort"
	"time"

	"neat/internal/coord"
	"neat/internal/core"
	"neat/internal/mqueue"
	"neat/internal/netsim"
)

// mqueueTarget fuzzes the ZooKeeper-coordinated broker group. The
// studied default (masters keep serving without the coordination
// service, acks before replication) yields double dequeues (Listing 2,
// AMQ-6978) and lost acknowledged messages under partitions. The safe
// variant applies both fixes — StepDownOnZKLoss (KAFKA-6173) and
// RequireReplicaAcks — trading availability for correctness.
type mqueueTarget struct {
	name string
	safe bool
}

func (t *mqueueTarget) Name() string { return t.name }

func (t *mqueueTarget) Topology() Topology {
	return Topology{
		Servers:  ids("b", 3),
		Services: []netsim.NodeID{"zk"},
		Clients:  []netsim.NodeID{"c1", "c2"},
	}
}

func (t *mqueueTarget) Deploy(eng *core.Engine) (Instance, error) {
	cfg := mqueue.Config{
		Brokers:            t.Topology().Servers,
		ZK:                 "zk",
		SessionPing:        10 * time.Millisecond,
		RolePoll:           10 * time.Millisecond,
		RequireReplicaAcks: t.safe,
		StepDownOnZKLoss:   t.safe,
		RPCTimeout:         20 * time.Millisecond,
	}
	sys := mqueue.NewSystem(eng.Network(), cfg,
		coord.Options{SessionTTL: 60 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &mqueueInstance{
		eng: eng,
		clients: [2]*mqueue.Client{
			mqueue.NewClient(eng.Network(), "c1", cfg.Brokers),
			mqueue.NewClient(eng.Network(), "c2", cfg.Brokers),
		},
		received: make(map[string]int),
	}, nil
}

// mqueueInstance sends uniquely numbered messages from one client and
// receives from both, checking at-most-once delivery and durability of
// acknowledged sends.
type mqueueInstance struct {
	eng     *core.Engine
	clients [2]*mqueue.Client

	ackedSent []string
	received  map[string]int
	// ambiguousRecvs counts receives that failed in a way that may
	// still have consumed a message invisibly (mqueue.MaybeExecuted):
	// ErrUnavailable (the master dequeued locally before replication
	// failed) and transport timeouts against any attempted broker (on
	// a slow or lossy link the request may have been fully executed
	// with only the reply lost — a silent success). Definitive
	// refusals (redirect exhaustion, suspended brokers) consume
	// nothing and are not counted, so the forgiveness window stays as
	// tight as the ambiguity is real. Durability accounting forgives
	// that many missing messages.
	ambiguousRecvs int
}

func (in *mqueueInstance) Step(ctx *StepCtx) {
	// Produce faster than the in-round consumption so a replicated
	// backlog builds up: a partition then leaves copies of the same
	// pending messages on both sides, which is what the double-dequeue
	// and lost-message failures need to manifest.
	for _, suffix := range []string{"a", "b"} {
		msg := fmt.Sprintf("m%03d%s", ctx.Op, suffix)
		if in.clients[0].Send("q", msg) == nil {
			in.ackedSent = append(in.ackedSent, msg)
		}
	}
	m, err := in.clients[ctx.Op%2].Recv("q")
	switch {
	case err == nil:
		in.received[m]++
	case mqueue.MaybeExecuted(err):
		in.ambiguousRecvs++
	}
	ctx.Clock.Sleep(time.Duration(5+ctx.Rng.Intn(10)) * time.Millisecond)
}

func (in *mqueueInstance) Check() []Violation {
	// Let sessions re-establish and roles settle, then drain what is
	// left through whichever broker now claims mastership.
	in.eng.Clock().Sleep(150 * time.Millisecond)
	drained := in.drain(in.clients[1])
	drained = in.drain(in.clients[0]) || drained

	var out []Violation
	var dupes []string
	for m, n := range in.received {
		if n > 1 {
			dupes = append(dupes, fmt.Sprintf("%s x%d", m, n))
		}
	}
	if len(dupes) > 0 {
		sort.Strings(dupes)
		out = append(out, Violation{
			Invariant: "at-most-once",
			Subject:   "q",
			Detail:    fmt.Sprintf("messages delivered more than once: %v", dupes),
		})
	}
	// Durability is only judged when a drain completed: an expired
	// coordination session is never re-established in this model, so a
	// round can end with every broker masterless — the backlog is then
	// unreachable but not lost, and the safe configuration is allowed
	// to trade availability for correctness.
	if !drained {
		return out
	}
	var missing []string
	for _, m := range in.ackedSent {
		if in.received[m] == 0 {
			missing = append(missing, m)
		}
	}
	if len(missing) > in.ambiguousRecvs {
		out = append(out, Violation{
			Invariant: "durability",
			Subject:   "q",
			Detail: fmt.Sprintf("acknowledged messages never delivered: %v (%d ambiguous receives)",
				missing, in.ambiguousRecvs),
		})
	}
	return out
}

// drain consumes the queue until the serving broker reports it empty,
// bounding retries against transient post-heal unavailability. It
// reports whether it reached the authoritative "queue empty" answer.
func (in *mqueueInstance) drain(cl *mqueue.Client) bool {
	fails := 0
	for i := 0; i < 100 && fails < 3; i++ {
		m, err := cl.Recv("q")
		if err != nil && mqueue.MaybeExecuted(err) {
			// Some attempt may have consumed a message invisibly (see
			// ambiguousRecvs) — even when the final answer below is an
			// authoritative "empty".
			in.ambiguousRecvs++
		}
		switch {
		case err == nil:
			in.received[m]++
			fails = 0
		case mqueue.IsEmpty(err):
			return true
		default:
			fails++
			in.eng.Clock().Sleep(20 * time.Millisecond)
		}
	}
	return false
}

func (in *mqueueInstance) Close() {
	for _, cl := range in.clients {
		cl.Close()
	}
}
