package campaign

import (
	"fmt"
	"time"

	"neat/internal/coord"
	"neat/internal/core"
	"neat/internal/history"
	"neat/internal/mqueue"
	"neat/internal/netsim"
	"neat/internal/resilience"
)

// mqueueTarget fuzzes the ZooKeeper-coordinated broker group. The
// studied default (masters keep serving without the coordination
// service, acks before replication) yields double dequeues (Listing 2,
// AMQ-6978) and lost acknowledged messages under partitions. The safe
// variant applies both fixes — StepDownOnZKLoss (KAFKA-6173) and
// RequireReplicaAcks — trading availability for correctness.
//
// The instance records send/receive operations (transport-timeout
// receives as Ambiguous — each may have consumed a message invisibly,
// a silent success); the generic queue checker judges at-most-once,
// durability of acknowledged sends, and phantom deliveries.
type mqueueTarget struct {
	name string
	safe bool
}

func (t *mqueueTarget) Name() string { return t.name }

// Safe marks the step-down variant for the CI safe gate.
func (t *mqueueTarget) Safe() bool { return t.safe }

func (t *mqueueTarget) Topology() Topology {
	return Topology{
		Servers:  ids("b", 3),
		Services: []netsim.NodeID{"zk"},
		Clients:  []netsim.NodeID{"c1", "c2"},
	}
}

func (t *mqueueTarget) Checks() []history.Check {
	// CheckOrder stays off: the broker's contract permits inversions —
	// an ambiguous receive may tombstone a message on a master whose
	// replication then fails, and the message is legitimately
	// redelivered after the heal, behind messages the other side
	// already served (verified on mqueue/safe, seed 7). At-most-once
	// and durability are the queue's real invariants here.
	return []history.Check{
		history.Queue(history.QueueSpec{}),
		// Post-heal liveness over the dedicated probe queue. The flawed
		// variant's expired coordination sessions are never
		// re-established, so a round can end permanently masterless —
		// the paper's "failure persists after the partition heals",
		// reported as stuck-after-heal.
		history.Recovery(history.RecoverySpec{}),
	}
}

func (t *mqueueTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	cfg := mqueue.Config{
		Brokers:            t.Topology().Servers,
		ZK:                 "zk",
		SessionPing:        10 * time.Millisecond,
		RolePoll:           10 * time.Millisecond,
		RequireReplicaAcks: t.safe,
		StepDownOnZKLoss:   t.safe,
		// The safe variant re-establishes expired coordination sessions
		// (the real ZooKeeper client's behaviour). Without it a round
		// whose faults outlive every session TTL ends permanently
		// masterless — the flawed variant keeps that studied behaviour
		// and the probes report it as stuck-after-heal.
		ReestablishSession: t.safe,
		RPCTimeout:         20 * time.Millisecond,
	}
	sys := mqueue.NewSystem(eng.Network(), cfg,
		coord.Options{SessionTTL: 60 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	return &mqueueInstance{
		eng: eng,
		rec: rec,
		clients: [2]*mqueue.Client{
			mqueue.NewClient(eng.Network(), "c1", cfg.Brokers),
			mqueue.NewClient(eng.Network(), "c2", cfg.Brokers),
		},
	}, nil
}

// mqueueInstance sends uniquely numbered messages from one client and
// receives from both; every operation lands in the shared history.
type mqueueInstance struct {
	eng     *core.Engine
	rec     *history.Recorder
	clients [2]*mqueue.Client
	// observing flips when the post-heal observation phase starts:
	// only then is an empty-queue answer recorded as the checker's
	// authoritative "empty" marker. A mid-round empty can come from a
	// stale master that never saw the backlog — treating it as a drain
	// would let the durability check judge an unreachable (not lost)
	// backlog.
	observing bool
}

// recv drives one receive and records what the client learned: a
// message, an authoritative "queue empty" answer (observation phase
// only), an ambiguous failure that may have consumed a message
// invisibly (mqueue.MaybeExecuted: ErrUnavailable after a local
// dequeue, or a transport timeout with only the reply lost — a silent
// success), or a definitive refusal.
func (in *mqueueInstance) recv(cl *mqueue.Client, client string) (string, error) {
	ref := in.rec.Begin(history.Op{Client: client, Kind: "recv", Key: "q"})
	m, err := cl.Recv("q")
	switch {
	case err == nil:
		ref.End(history.Ok, m)
	case mqueue.IsEmpty(err):
		if in.observing {
			ref.EndNote(history.Ok, "", "empty")
		} else {
			ref.End(history.Ok, "")
		}
	default:
		ref.End(history.OutcomeOf(err, mqueue.MaybeExecuted(err)), "")
	}
	return m, err
}

func (in *mqueueInstance) Step(ctx *StepCtx) {
	// Produce faster than the in-round consumption so a replicated
	// backlog builds up: a partition then leaves copies of the same
	// pending messages on both sides, which is what the double-dequeue
	// and lost-message failures need to manifest.
	if !ctx.IsPaused(in.clients[0].ID()) {
		for _, suffix := range []string{"a", "b"} {
			msg := fmt.Sprintf("m%03d%s", ctx.Op, suffix)
			ref := in.rec.Begin(history.Op{Client: "c1", Kind: "send", Key: "q", Input: msg})
			err := in.clients[0].Send("q", msg)
			ref.End(history.OutcomeOf(err, mqueue.MaybeExecuted(err)), "")
		}
	}
	if cl := in.clients[ctx.Op%2]; !ctx.IsPaused(cl.ID()) {
		in.recv(cl, fmt.Sprintf("c%d", ctx.Op%2+1))
	}
	ctx.Clock.Sleep(time.Duration(5+ctx.Rng.Intn(10)) * time.Millisecond)
}

// Observe drains what is left through whichever broker now claims
// mastership, from both clients. The drain's authoritative "queue
// empty" answer — recorded after the last send — is what licenses the
// checker to judge durability: the flawed variant never re-establishes
// an expired coordination session, so its rounds can end with every
// broker masterless, and the backlog is then unreachable but not
// lost.
func (in *mqueueInstance) Observe(*StepCtx) {
	in.observing = true
	in.drain(in.clients[1], "c2")
	in.drain(in.clients[0], "c1")
}

// drain consumes the queue until the serving broker reports it empty,
// bounding retries against transient post-heal unavailability.
func (in *mqueueInstance) drain(cl *mqueue.Client, client string) {
	fails := 0
	for i := 0; i < 100 && fails < 3; i++ {
		_, err := in.recv(cl, client)
		switch {
		case err == nil:
			fails = 0
		case mqueue.IsEmpty(err):
			return
		default:
			fails++
			in.eng.Clock().Sleep(20 * time.Millisecond)
		}
	}
}

// mqProbeQueue is the dedicated probe queue: probe traffic must not
// consume the workload backlog Observe's drain will judge.
const mqProbeQueue = "pq"

// Probe validates recovery with a send/receive round-trip on the
// dedicated probe queue through c1. With every broker masterless
// (the flawed variant's permanently-expired sessions) both operations
// keep failing and the round ends stuck-after-heal.
func (in *mqueueInstance) Probe(ctx *StepCtx) bool {
	cl := in.clients[0]
	msg := fmt.Sprintf("p%03d", ctx.Op)
	sref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-send", Key: mqProbeQueue, Input: msg})
	serr := probeDo(ctx, nil, func() error { return cl.Send(mqProbeQueue, msg) })
	sref.End(history.OutcomeOf(serr, mqueue.MaybeExecuted(serr)), "")

	rref := in.rec.Begin(history.Op{Client: "c1", Kind: "probe-recv", Key: mqProbeQueue})
	var got string
	rerr := probeDo(ctx, func(err error) resilience.Class {
		if mqueue.IsEmpty(err) {
			return resilience.Fatal
		}
		return resilience.Retryable
	}, func() error {
		m, err := cl.Recv(mqProbeQueue)
		got = m
		return err
	})
	switch {
	case rerr == nil:
		rref.End(history.Ok, got)
	case mqueue.IsEmpty(rerr):
		rref.End(history.Ok, "")
	default:
		rref.End(history.OutcomeOf(rerr, mqueue.MaybeExecuted(rerr)), "")
	}
	return serr == nil && (rerr == nil || mqueue.IsEmpty(rerr))
}

func (in *mqueueInstance) Close() {
	for _, cl := range in.clients {
		cl.Close()
	}
}
