package campaign

import (
	"testing"
)

// TestRoundCoverageSignatureStable: the coverage signal must be a pure
// function of what the round exhibited — recomputing it from the same
// outcome 50 times and re-executing the same schedule must all yield
// one signature, or corpus dedup and mutate-mode determinism fall
// apart.
func TestRoundCoverageSignatureStable(t *testing.T) {
	targets, err := Select("kvstore/lowest-id")
	if err != nil {
		t.Fatal(err)
	}
	tgt := targets[0]
	sched := generateFor(tgt, 42, 1)
	first := runSchedule(tgt, sched, runOpts{virtual: true, trace: true})
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Coverage == 0 {
		t.Fatal("round carries no coverage signature")
	}
	for i := 0; i < 50; i++ {
		if got := roundCoverage(&first, first.History); got != first.Coverage {
			t.Fatalf("recompute %d: signature %s, round reported %s", i, got, first.Coverage)
		}
	}
	for i := 0; i < 5; i++ {
		again := runSchedule(tgt, sched, runOpts{virtual: true, trace: true})
		if again.Err != nil {
			t.Fatal(again.Err)
		}
		if again.Coverage != first.Coverage {
			t.Fatalf("re-execution %d: signature %s, first run %s", i, again.Coverage, first.Coverage)
		}
	}
}

// TestRoundCoverageDistinguishesSchedules: different schedules driving
// different histories must (for this pinned seed) produce different
// signatures — a collapsing signal would dedup every round into one
// corpus entry and starve the mutation pool.
func TestRoundCoverageDistinguishesSchedules(t *testing.T) {
	targets, err := Select("kvstore/lowest-id")
	if err != nil {
		t.Fatal(err)
	}
	tgt := targets[0]
	a := runSchedule(tgt, generateFor(tgt, 42, 0), runOpts{virtual: true})
	b := runSchedule(tgt, generateFor(tgt, 42, 2), runOpts{virtual: true})
	if a.Err != nil || b.Err != nil {
		t.Fatalf("round errors: %v / %v", a.Err, b.Err)
	}
	if a.Coverage == b.Coverage {
		t.Fatalf("distinct rounds hashed to one signature %s", a.Coverage)
	}
}
