package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"neat/internal/core"
	"neat/internal/eventual"
	"neat/internal/netsim"
)

// eventualTarget fuzzes the Dynamo-style eventually consistent store
// under a consolidation policy. Two clients write the same key through
// different coordinators; after the heal the replicas must converge,
// and no acknowledged write that was concurrent with the surviving
// one may be silently discarded. Last-writer-wins (the studied
// default) fails that: it consolidates by wall-clock timestamp and
// drops one side of every concurrent pair (the Jepsen Redis data
// loss). Vector causality keeps concurrent writes as siblings — the
// safe configuration.
type eventualTarget struct {
	name   string
	policy eventual.ConsolidationPolicy
}

func (t *eventualTarget) Name() string { return t.name }

func (t *eventualTarget) Topology() Topology {
	return Topology{Servers: ids("e", 3), Clients: []netsim.NodeID{"c1", "c2"}}
}

func (t *eventualTarget) Deploy(eng *core.Engine) (Instance, error) {
	cfg := eventual.Config{
		Replicas:            t.Topology().Servers,
		Policy:              t.policy,
		AntiEntropyInterval: 15 * time.Millisecond,
		RPCTimeout:          20 * time.Millisecond,
	}
	sys := eventual.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	in := &eventualInstance{eng: eng, replicas: cfg.Replicas}
	in.writers[0] = &eventualWriter{cl: eventual.NewClient(eng.Network(), "c1"), coord: "e1"}
	in.writers[1] = &eventualWriter{cl: eventual.NewClient(eng.Network(), "c2"), coord: "e2"}
	return in, nil
}

// eventualWriter is one client bound to its coordinator replica, the
// way a partitioned application instance keeps talking to its side.
type eventualWriter struct {
	cl    *eventual.Client
	coord netsim.NodeID
	// last is the writer's last acknowledged value and lastClock the
	// vector clock the coordinator returned with the acknowledgement
	// (the write context); ackFaulted records whether a fault was
	// active when it was acknowledged.
	last       string
	lastClock  eventual.VClock
	ackFaulted bool
}

const eventualKey = "ek"

type eventualInstance struct {
	eng      *core.Engine
	replicas []netsim.NodeID
	writers  [2]*eventualWriter
}

func (in *eventualInstance) Step(ctx *StepCtx) {
	for i, w := range in.writers {
		val := fmt.Sprintf("c%d-op%d", i+1, ctx.Op)
		if ver, err := w.cl.PutV(w.coord, eventualKey, val); err == nil {
			w.last = val
			w.lastClock = ver.Clock
			w.ackFaulted = ctx.ActiveFaults > 0
		}
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

func (in *eventualInstance) Check() []Violation {
	// Anti-entropy must reconcile every replica onto one sibling set.
	var final []eventual.Version
	converged := in.eng.WaitUntil(2*time.Second, func() bool {
		sets := make([][]eventual.Version, 0, len(in.replicas))
		for _, rep := range in.replicas {
			vers, err := in.writers[0].cl.GetVersions(rep, eventualKey)
			if err != nil && !eventual.IsNotFound(err) {
				return false
			}
			sort.Slice(vers, func(i, j int) bool { return vers[i].Val < vers[j].Val })
			sets = append(sets, vers)
		}
		for _, s := range sets[1:] {
			if versionVals(s) != versionVals(sets[0]) {
				return false
			}
		}
		final = sets[0]
		return true
	})
	if !converged {
		return []Violation{{
			Invariant: "convergence",
			Subject:   eventualKey,
			Detail:    "replicas never reconciled onto one sibling set after the heal",
		}}
	}

	// Causality witness: a last acknowledged write that is missing
	// from the final sibling set was legitimately superseded only if
	// some survivor causally dominates it (its clock is After the
	// acknowledged write's clock — the survivor incorporated it, even
	// if no client-visible read ever exposed the incorporation: a
	// timed-out Put that the coordinator applied anyway extends the
	// same causal chain). A missing write that is concurrent with
	// every survivor was consolidated away — the paper's
	// acknowledged-write data loss. Vector causality never drops a
	// non-dominated version; last-writer-wins does.
	var out []Violation
	for _, w := range in.writers {
		if w.last == "" || !w.ackFaulted || versionVal(final, w.last) {
			continue
		}
		superseded := false
		for _, v := range final {
			if o := v.Clock.Compare(w.lastClock); o == eventual.After || o == eventual.Equal {
				superseded = true
				break
			}
		}
		if !superseded {
			out = append(out, Violation{
				Invariant: "acked-write-survives",
				Subject:   eventualKey,
				Detail: fmt.Sprintf("acknowledged write %q was concurrent with every survivor yet consolidated away (final siblings %v)",
					w.last, versionVals(final)),
			})
		}
	}
	return out
}

func versionVals(vs []eventual.Version) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.Val
	}
	return strings.Join(parts, ",")
}

func versionVal(vs []eventual.Version, val string) bool {
	for _, v := range vs {
		if v.Val == val {
			return true
		}
	}
	return false
}

func (in *eventualInstance) Close() {
	for _, w := range in.writers {
		w.cl.Close()
	}
}

