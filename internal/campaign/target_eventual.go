package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"neat/internal/core"
	"neat/internal/eventual"
	"neat/internal/netsim"
)

// eventualTarget fuzzes the Dynamo-style eventually consistent store
// under a consolidation policy. Two clients write the same key through
// different coordinators; after the heal the replicas must converge,
// and no acknowledged write that was concurrent with the surviving
// one may be silently discarded. Last-writer-wins (the studied
// default) fails that: it consolidates by wall-clock timestamp and
// drops one side of every concurrent pair (the Jepsen Redis data
// loss). Vector causality keeps concurrent writes as siblings — the
// safe configuration.
type eventualTarget struct {
	name   string
	policy eventual.ConsolidationPolicy
}

func (t *eventualTarget) Name() string { return t.name }

func (t *eventualTarget) Topology() Topology {
	return Topology{Servers: ids("e", 3), Clients: []netsim.NodeID{"c1", "c2"}}
}

func (t *eventualTarget) Deploy(eng *core.Engine) (Instance, error) {
	cfg := eventual.Config{
		Replicas:            t.Topology().Servers,
		Policy:              t.policy,
		AntiEntropyInterval: 15 * time.Millisecond,
		RPCTimeout:          20 * time.Millisecond,
	}
	sys := eventual.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	in := &eventualInstance{eng: eng, replicas: cfg.Replicas}
	in.writers[0] = &eventualWriter{cl: eventual.NewClient(eng.Network(), "c1"), coord: "e1"}
	in.writers[1] = &eventualWriter{cl: eventual.NewClient(eng.Network(), "c2"), coord: "e2"}
	return in, nil
}

// eventualWriter is one client bound to its coordinator replica, the
// way a partitioned application instance keeps talking to its side.
type eventualWriter struct {
	cl    *eventual.Client
	coord netsim.NodeID
	// last is the writer's last acknowledged value; ackFaulted records
	// whether a fault was active when it was acknowledged.
	last       string
	ackFaulted bool
	// seen accumulates every value this writer's coordinator ever
	// exposed in a pre-write read. If the other writer's value shows
	// up here, that value was incorporated into this side's causal
	// history (even if later writes dominated it out of the sibling
	// set), so consolidating it away is legitimate supersession, not
	// concurrent data loss.
	seen map[string]bool
}

const eventualKey = "ek"

type eventualInstance struct {
	eng      *core.Engine
	replicas []netsim.NodeID
	writers  [2]*eventualWriter
}

func (in *eventualInstance) Step(ctx *StepCtx) {
	for i, w := range in.writers {
		if w.seen == nil {
			w.seen = make(map[string]bool)
		}
		pre, _ := w.cl.Get(w.coord, eventualKey)
		for _, v := range pre {
			w.seen[v] = true
		}
		val := fmt.Sprintf("c%d-op%d", i+1, ctx.Op)
		if w.cl.Put(w.coord, eventualKey, val) == nil {
			w.last = val
			w.ackFaulted = ctx.ActiveFaults > 0
		}
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

func (in *eventualInstance) Check() []Violation {
	// Anti-entropy must reconcile every replica onto one sibling set.
	var final []string
	converged := in.eng.WaitUntil(2*time.Second, func() bool {
		sets := make([][]string, 0, len(in.replicas))
		for _, rep := range in.replicas {
			vals, err := in.writers[0].cl.Get(rep, eventualKey)
			if err != nil && !eventual.IsNotFound(err) {
				return false
			}
			sort.Strings(vals)
			sets = append(sets, vals)
		}
		for _, s := range sets[1:] {
			if strings.Join(s, ",") != strings.Join(sets[0], ",") {
				return false
			}
		}
		final = sets[0]
		return true
	})
	if !converged {
		return []Violation{{
			Invariant: "convergence",
			Subject:   eventualKey,
			Detail:    "replicas never reconciled onto one sibling set after the heal",
		}}
	}

	// Concurrency witness: the two last acknowledged writes are
	// concurrent iff both were acknowledged while a fault was active
	// and neither side's coordinator ever incorporated the other's
	// value into its causal history. Concurrent acknowledged writes
	// must both survive (as siblings); consolidation that drops one is
	// the paper's acknowledged-write data loss.
	w1, w2 := in.writers[0], in.writers[1]
	if w1.last == "" || w2.last == "" || !w1.ackFaulted || !w2.ackFaulted {
		return nil
	}
	if w1.seen[w2.last] || w2.seen[w1.last] {
		return nil
	}
	var out []Violation
	for _, w := range in.writers {
		if !contains(final, w.last) {
			out = append(out, Violation{
				Invariant: "acked-write-survives",
				Subject:   eventualKey,
				Detail: fmt.Sprintf("acknowledged write %q was concurrent with the survivor yet consolidated away (final siblings %v)",
					w.last, final),
			})
		}
	}
	return out
}

func (in *eventualInstance) Close() {
	for _, w := range in.writers {
		w.cl.Close()
	}
}

func contains(vals []string, v string) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}
